module javasim

go 1.24
