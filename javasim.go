// Package javasim reproduces "Factors Affecting Scalability of
// Multithreaded Java Applications on Manycore Systems" (Qian, Li,
// Srisa-an, Jiang, Seth — ISPASS 2015) as a deterministic discrete-event
// simulation, and exposes the experiment framework that regenerates every
// figure and table in the paper.
//
// The simulated system is a 48-core four-socket NUMA machine running a
// HotSpot-style JVM: an OS scheduler with per-core run queues, a
// generational heap with TLAB allocation, a stop-the-world parallel
// collector with safepoints, Java object monitors, and models of six
// DaCapo-9.12 benchmarks (sunflow, lusearch, xalan, h2, eclipse, jython).
// Object lifespans are measured in allocation-clock bytes exactly as the
// paper's Elephant Tracks methodology defines them, and lock behavior is
// profiled the way the paper's DTrace scripts counted acquisitions and
// contention events.
//
// # Quick start
//
//	spec, _ := javasim.BenchmarkByName("xalan")
//	res, err := javasim.Run(spec, javasim.Config{Threads: 8, Seed: 42})
//	if err != nil { ... }
//	fmt.Println(res.TotalTime, res.GCTime, res.Lifespans.FractionBelow(1024))
//
// # Reproducing the paper
//
//	suite := javasim.NewSuite(javasim.ExperimentConfig{})
//	tables, err := suite.AllArtifacts() // Fig 1a-1d, Fig 2, all tables
//
// Runs are deterministic: the same Config.Seed reproduces a run
// bit-for-bit. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-versus-measured record.
package javasim

import (
	"javasim/internal/core"
	"javasim/internal/lockprof"
	"javasim/internal/metrics"
	"javasim/internal/report"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// Core run types.
type (
	// Config selects machine and JVM parameters for one run; the zero
	// value reproduces the paper's defaults (Opteron 6168, cores =
	// threads, 3x min heap).
	Config = vm.Config
	// Result is the full measurement record of one run.
	Result = vm.Result
	// Spec describes one benchmark workload.
	Spec = workload.Spec
	// Time is virtual time in nanoseconds.
	Time = sim.Time
)

// Analysis types.
type (
	// Sweep is one workload measured across thread counts.
	Sweep = core.Sweep
	// SweepConfig drives RunSweep.
	SweepConfig = core.SweepConfig
	// Classification is the scalable/non-scalable verdict for a sweep.
	Classification = core.Classification
	// Factors is the paper's scalability-factor decomposition.
	Factors = core.Factors
	// ExperimentConfig parameterizes the reproduction suite.
	ExperimentConfig = core.ExperimentConfig
	// Suite regenerates the paper's figures and tables.
	Suite = core.Suite
	// Table is a rendered figure or table.
	Table = report.Table
	// Histogram is a power-of-two bucketed distribution (lifespans,
	// pauses).
	Histogram = metrics.Histogram
	// LockProfiler aggregates DTrace-style per-lock statistics.
	LockProfiler = lockprof.Profiler
	// TraceSink receives Elephant-Tracks-style object events.
	TraceSink = trace.Sink
	// MemoryTrace buffers trace events in memory.
	MemoryTrace = trace.MemorySink
)

// DefaultThreadCounts is the paper's sweep: 4 to 48 threads with cores =
// threads.
var DefaultThreadCounts = core.DefaultThreadCounts

// Run executes one benchmark configuration on the simulated JVM.
func Run(spec Spec, cfg Config) (*Result, error) { return vm.Run(spec, cfg) }

// RunSweep measures spec across thread counts.
func RunSweep(spec Spec, cfg SweepConfig) (*Sweep, error) { return core.RunSweep(spec, cfg) }

// NewSuite builds the experiment suite that regenerates every figure and
// table from the paper.
func NewSuite(cfg ExperimentConfig) *Suite { return core.NewSuite(cfg) }

// NewLockProfiler returns an empty DTrace-style lock profiler to attach to
// Config.LockProfiler.
func NewLockProfiler() *LockProfiler { return lockprof.New() }

// Benchmarks returns the six DaCapo-9.12 workload models in the paper's
// order: the scalable trio, then the non-scalable trio.
func Benchmarks() []Spec { return workload.All() }

// ExtensionBenchmarks returns workloads beyond the paper's six (e.g. the
// "server" model used by the future-work studies).
func ExtensionBenchmarks() []Spec { return workload.Extensions() }

// BenchmarkByName looks up one of the six benchmarks.
func BenchmarkByName(name string) (Spec, bool) { return workload.ByName(name) }

// PaperScalable reports the paper's published classification for a
// benchmark name.
func PaperScalable(name string) bool { return workload.Scalable(name) }
