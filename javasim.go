// Package javasim reproduces "Factors Affecting Scalability of
// Multithreaded Java Applications on Manycore Systems" (Qian, Li,
// Srisa-an, Jiang, Seth — ISPASS 2015) as a deterministic discrete-event
// simulation, and exposes the experiment framework that regenerates every
// figure and table in the paper.
//
// The simulated system is a 48-core four-socket NUMA machine running a
// HotSpot-style JVM: an OS scheduler with per-core run queues, a
// generational heap with TLAB allocation, a stop-the-world parallel
// collector with safepoints, Java object monitors, and models of six
// DaCapo-9.12 benchmarks (sunflow, lusearch, xalan, h2, eclipse, jython).
// Object lifespans are measured in allocation-clock bytes exactly as the
// paper's Elephant Tracks methodology defines them, and lock behavior is
// profiled the way the paper's DTrace scripts counted acquisitions and
// contention events.
//
// # The Engine
//
// All simulation dispatches through an Engine: a long-lived object owning
// a bounded worker pool and a memoizing result cache, safe for any number
// of concurrent callers. Every entry point takes a context, so large
// batches can be canceled mid-run, and observers stream progress events
// as runs, sweep points, and figures complete.
//
//	eng := javasim.NewEngine(
//		javasim.WithParallelism(8),
//		javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
//			log.Println(ev)
//		})),
//	)
//	spec, _ := javasim.BenchmarkByName("xalan")
//	res, err := eng.Run(ctx, spec, javasim.Config{Threads: 8, Seed: 42})
//	if err != nil { ... }
//	fmt.Println(res.TotalTime, res.GCTime, res.Lifespans.FractionBelow(1024))
//
// # Reproducing the paper
//
//	suite := eng.Suite(javasim.ExperimentConfig{})
//	tables, err := suite.AllArtifacts(ctx) // Fig 1a-1d, Fig 2, all tables
//
// # Workloads and declarative plans
//
// Every workload model lives in a registry: the six DaCapo benchmarks and
// the bundled extensions are pre-registered, custom models join via
// RegisterWorkload, and LookupWorkload resolves any of them by name.
// Experiments are declared as data: a Scenario names a workload (by
// registry name or inline Spec), thread counts, config overrides, and
// repeats; a Plan bundles scenarios with cross-scenario reports; and
// Engine.RunPlan executes the whole matrix through the pool and cache.
// Plans round-trip through JSON (LoadPlan / Plan.WriteJSON), so entire
// experiment matrices live in files and run with cmd/javasim -plan. The
// paper's own figure suite is the built-in PaperPlan.
//
// # Pluggable policies
//
// The mechanisms the paper treats as fixed JVM behavior are swappable
// policies resolved from string-keyed registries: Config.LockPolicy
// selects the contended-monitor discipline ("fifo" — the paper's
// baseline — "barging", "spin-then-park", or "restricted"),
// Config.Sched.Placement selects the scheduler's run-queue placement
// ("affinity", "round-robin", or "least-loaded"), and Config.GCPolicy
// selects the collection discipline ("stw-serial" — the paper's
// throughput collector — "stw-parallel", "concurrent", or
// "compartment"). Plans select the same names per scenario, so one plan
// A/Bs whole disciplines, and custom policies join through
// RegisterLockPolicy / RegisterPlacement / RegisterGCPolicy.
//
// The hardware itself is pluggable the same way: Config.MachineName (or
// a plan's Machine field) selects a registered machine model —
// "opteron-6168", the paper's testbed and the default; "sparc-t3-4", a
// 512-hardware-thread CMT system whose strands share per-core issue
// pipelines; or "opteron-6168-bw", the testbed with a finite per-socket
// memory-bandwidth budget — and custom machines join through
// RegisterMachine.
//
// Runs are deterministic: the same Config.Seed reproduces a run
// bit-for-bit, whether points execute sequentially or across the worker
// pool. Identical runs requested twice (by figures, studies, or
// concurrent callers) simulate once and share the memoized Result. See
// README.md for the quickstart, docs/architecture.md for the system
// map, docs/paper.md for the paper-to-code mapping, and
// docs/extending.md for custom registrations and the migration table
// from the old free-function API.
package javasim

import (
	"context"
	"io"

	"javasim/internal/core"
	"javasim/internal/fit"
	"javasim/internal/gc"
	"javasim/internal/lockprof"
	"javasim/internal/locks"
	"javasim/internal/machine"
	"javasim/internal/metrics"
	"javasim/internal/report"
	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/store"
	"javasim/internal/trace"
	"javasim/internal/traffic"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// Core run types.
type (
	// Config selects machine and JVM parameters for one run; the zero
	// value reproduces the paper's defaults (Opteron 6168, cores =
	// threads, 3x min heap).
	Config = vm.Config
	// Result is the full measurement record of one run.
	Result = vm.Result
	// Spec describes one benchmark workload.
	Spec = workload.Spec
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Rand is the deterministic simulation RNG handed to custom
	// arrival processes; all process randomness must come from it so
	// equal seeds reproduce equal traces.
	Rand = sim.Rand
	// Snapshot is the warm-start state shared by every point of a sweep:
	// pre-generated workload unit tapes plus end-of-tape RNG stream
	// states. Engine.Sweep builds one automatically; construct explicitly
	// (NewSnapshot) to warm-start hand-rolled point loops via
	// ContextWithSnapshot. Replay is bit-identical to cold generation, so
	// cache keys and result fingerprints are unaffected.
	Snapshot = vm.Snapshot
)

// NewSnapshot pre-generates the workload tapes every iteration of runs
// configured like cfg will consume; runs sharing the spec and seed can
// warm-start from it at any thread count or offered rate.
func NewSnapshot(spec Spec, cfg Config) (*Snapshot, error) { return vm.NewSnapshot(spec, cfg) }

// ContextWithSnapshot returns a context carrying the snapshot; runs
// dispatched with it warm-start when their spec and seed match (unless
// Config.DisableSnapshot is set).
func ContextWithSnapshot(ctx context.Context, s *Snapshot) context.Context {
	return vm.ContextWithSnapshot(ctx, s)
}

// Engine types.
type (
	// Engine owns a bounded simulation worker pool and a memoizing result
	// cache; all runs, sweeps, and suites dispatch through it. Safe for
	// concurrent use.
	Engine = core.Engine
	// Option configures an Engine at construction.
	Option = core.Option
	// EngineStats is a snapshot of an engine's lifetime counters.
	EngineStats = core.Stats
	// Observer receives engine progress events; implementations must be
	// safe for concurrent use.
	Observer = core.Observer
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = core.ObserverFunc
	// Event is one progress notification from an engine.
	Event = core.Event
	// EventKind classifies a progress event.
	EventKind = core.EventKind
	// CacheStats breaks the engine's cache behavior down by tier:
	// memory hits, disk hits, singleflight shares, and misses.
	CacheStats = core.CacheStats
	// ResultStore is the persistent second cache tier behind the
	// engine's in-memory LRU, keyed by Fingerprint hashes.
	ResultStore = core.ResultStore
	// Store is the content-addressed on-disk ResultStore (one JSON entry
	// per fingerprint, written atomically, corrupt entries read as
	// misses). Open with OpenStore, attach with WithDiskCache, and Close
	// it on shutdown to drain pending writes.
	Store = store.Store
	// StoreStats is a snapshot of a Store's hit/miss/corruption counters.
	StoreStats = store.Stats
	// Runner executes one simulation on behalf of an engine; see
	// WithRunner.
	Runner = core.Runner
)

// Progress event kinds streamed to observers.
const (
	// RunStarted fires when a simulation is dispatched to a worker slot.
	RunStarted = core.RunStarted
	// RunFinished fires when a dispatched simulation returns.
	RunFinished = core.RunFinished
	// RunCached fires when a run is answered from the memoizing cache.
	RunCached = core.RunCached
	// SweepPointDone fires as each point of a sweep completes.
	SweepPointDone = core.SweepPointDone
	// SweepDone fires when a whole sweep is assembled.
	SweepDone = core.SweepDone
	// ArtifactRendered fires when a suite figure, table, or study is done.
	ArtifactRendered = core.ArtifactRendered
	// ScenarioDone fires when a plan scenario completes.
	ScenarioDone = core.ScenarioDone
	// PlanDone fires when a whole plan has executed.
	PlanDone = core.PlanDone
)

// Declarative plan types. A Plan is an ordered set of Scenarios plus
// cross-scenario ReportSpecs; Engine.RunPlan executes it through the
// engine's bounded pool and memoizing cache, and plans round-trip
// through JSON so experiment matrices can live in files.
type (
	// Scenario declaratively describes one experiment.
	Scenario = core.Scenario
	// Plan is an ordered set of scenarios plus cross-scenario reports.
	Plan = core.Plan
	// PlanResult is the complete outcome of Engine.RunPlan.
	PlanResult = core.PlanResult
	// ScenarioResult is one scenario's execution record.
	ScenarioResult = core.ScenarioResult
	// ReportSpec declares one cross-scenario artifact of a plan.
	ReportSpec = core.ReportSpec
	// ReportKind names a cross-scenario report shape.
	ReportKind = core.ReportKind
	// Metric selects the number a series report extracts per sweep point.
	Metric = core.Metric
	// Output names a per-scenario artifact.
	Output = core.Output
	// ConfigOverrides is the serializable subset of Config a scenario may
	// override.
	ConfigOverrides = core.ConfigOverrides
	// TrafficSpec switches a scenario to the open-system model: a swept
	// offered rate feeding a fixed server pool.
	TrafficSpec = core.TrafficSpec
	// WorkloadRef references a workload by registered name or inline Spec.
	WorkloadRef = workload.Ref
)

// Per-scenario output kinds.
const (
	OutputSweep          = core.OutputSweep
	OutputClassification = core.OutputClassification
	OutputFactors        = core.OutputFactors
	OutputLifespanCDF    = core.OutputLifespanCDF
	OutputReplication    = core.OutputReplication
	OutputGoodput        = core.OutputGoodput
	OutputUSL            = core.OutputUSL
)

// Cross-scenario report kinds.
const (
	ReportSeries           = core.ReportSeries
	ReportLifespanCDF      = core.ReportLifespanCDF
	ReportMutatorGC        = core.ReportMutatorGC
	ReportClassification   = core.ReportClassification
	ReportWorkDistribution = core.ReportWorkDistribution
	ReportFactors          = core.ReportFactors
	ReportCompare          = core.ReportCompare
	ReportGoodput          = core.ReportGoodput
	ReportUSL              = core.ReportUSL
)

// Series metrics.
const (
	MetricAcquisitions   = core.MetricAcquisitions
	MetricContentions    = core.MetricContentions
	MetricTotalSeconds   = core.MetricTotalSeconds
	MetricMutatorSeconds = core.MetricMutatorSeconds
	MetricGCSeconds      = core.MetricGCSeconds
	MetricGCShare        = core.MetricGCShare
	MetricCDFBelow1KB    = core.MetricCDFBelow1KB
)

// LoadPlan reads and validates a declarative plan from JSON; unknown
// fields are rejected so typos in plan files surface immediately.
func LoadPlan(r io.Reader) (*Plan, error) { return core.LoadPlan(r) }

// PaperPlan returns the paper's entire figure suite as a declarative
// plan; the zero ExperimentConfig selects the full-scale setup.
// Suite.AllArtifacts executes exactly this plan.
func PaperPlan(cfg ExperimentConfig) *Plan { return core.PaperPlan(cfg) }

// NameWorkload references a registered workload by name in a Scenario.
func NameWorkload(name string) WorkloadRef { return workload.NameRef(name) }

// InlineWorkload embeds a complete Spec in a Scenario.
func InlineWorkload(s Spec) WorkloadRef { return workload.SpecRef(s) }

// Analysis types.
type (
	// Sweep is one workload measured across thread counts.
	Sweep = core.Sweep
	// SweepConfig drives Engine.Sweep.
	SweepConfig = core.SweepConfig
	// Classification is the scalable/non-scalable verdict for a sweep.
	Classification = core.Classification
	// Factors is the paper's scalability-factor decomposition.
	Factors = core.Factors
	// ExperimentConfig parameterizes the reproduction suite.
	ExperimentConfig = core.ExperimentConfig
	// Suite regenerates the paper's figures and tables through its
	// engine's pool and cache.
	Suite = core.Suite
	// Table is a rendered figure or table.
	Table = report.Table
	// Histogram is a power-of-two bucketed distribution (lifespans,
	// pauses).
	Histogram = metrics.Histogram
	// LockProfiler aggregates DTrace-style per-lock statistics.
	LockProfiler = lockprof.Profiler
	// TraceSink receives Elephant-Tracks-style object events.
	TraceSink = trace.Sink
	// MemoryTrace buffers trace events in memory.
	MemoryTrace = trace.MemorySink
)

// Analytic scalability-fitting types. The fit package least-squares-fits
// Gunther's Universal Scalability Law C(N) = N / (1 + σ(N−1) + κN(N−1))
// and the Amdahl special case (κ = 0) to any (concurrency, throughput)
// sweep, separating contention cost (σ — what the paper ablates with
// lock disciplines) from coherency cost (κ — the GC/bandwidth/placement
// flavored losses). Sweep.FitUSL fits a simulated sweep directly, and
// the "usl" report kind (ReportUSL / OutputUSL) renders fits inside
// plans.
type (
	// USLFit is a complete fitting result: the USL and Amdahl models
	// plus the residual-based choice between them.
	USLFit = fit.Fit
	// USLModel is one fitted scalability law: sigma, kappa, the
	// throughput scale, R^2, and the predicted peak via PeakN.
	USLModel = fit.Model
	// FitPoint is one measured (concurrency, throughput) observation.
	FitPoint = fit.Point
)

// Fitted model kinds reported in USLFit.Preferred and USLModel.Kind.
const (
	// USLKind marks the full two-parameter law (sigma and kappa free).
	USLKind = fit.KindUSL
	// AmdahlKind marks the contention-only special case (kappa = 0).
	AmdahlKind = fit.KindAmdahl
)

// MinFitPoints is the smallest sweep the fitter accepts: with two shape
// parameters plus the throughput scale, fewer than three points is an
// interpolation, not a fit.
const MinFitPoints = fit.MinPoints

// FitUSL fits the Universal Scalability Law and the Amdahl special case
// to a measured (concurrency, throughput) series and selects between
// them by residual. Points must be strictly ascending in concurrency
// with positive finite throughput, and at least MinFitPoints long.
// Fitting is fully deterministic: equal inputs produce bit-equal fits.
func FitUSL(pts []FitPoint) (USLFit, error) { return fit.Both(pts) }

// FitSeries pairs a thread-count sweep with its measured throughputs as
// fit points, validating them for FitUSL.
func FitSeries(threads []int, throughput []float64) ([]FitPoint, error) {
	return fit.Series(threads, throughput)
}

// DefaultThreadCounts is the paper's sweep: 4 to 48 threads with cores =
// threads.
var DefaultThreadCounts = core.DefaultThreadCounts

// NewEngine builds an Engine from functional options. With no options it
// parallelizes up to runtime.GOMAXPROCS(0) simulations and memoizes 256
// results.
func NewEngine(opts ...Option) *Engine { return core.NewEngine(opts...) }

// WithParallelism bounds the number of simulations the engine executes
// concurrently; sweeps never spawn more simulation goroutines than this.
func WithParallelism(n int) Option { return core.WithParallelism(n) }

// WithSeed sets the seed substituted into runs whose Config.Seed is zero.
func WithSeed(seed uint64) Option { return core.WithSeed(seed) }

// WithObserver registers an observer for the engine's progress events.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// WithCache sizes the engine's memoizing result cache in entries; zero or
// negative disables memoization.
func WithCache(entries int) Option { return core.WithCache(entries) }

// WithDiskCache backs the engine's in-memory result cache with a
// persistent store: misses read through to it before simulating, and
// every completed cacheable simulation is written through, so no
// fingerprint the store has ever seen is simulated twice — across
// engines, processes, or restarts. Typically an OpenStore Store; any
// ResultStore implementation works.
func WithDiskCache(s ResultStore) Option { return core.WithDiskStore(s) }

// WithRunner replaces the engine's simulation executor (default
// vm.RunContext run in-process). The serving daemon uses this to shard
// simulations across worker processes. Runners must be deterministic
// for equal (spec, canonical config) inputs.
func WithRunner(r Runner) Option { return core.WithRunner(r) }

// OpenStore creates (if needed) and opens the content-addressed on-disk
// result store rooted at dir. Close it to drain pending writes.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Fingerprint returns the content hash identifying one (spec,
// canonical config) run everywhere results are shared — the in-memory
// cache, the disk store, and the serving daemon's shard protocol. The
// second return is false for runs that cannot be cached (those carrying
// a TraceSink or LockProfiler).
func Fingerprint(spec Spec, cfg Config) (string, bool) { return core.Fingerprint(spec, cfg) }

// ContextWithObserver returns a context that routes every engine event
// produced by work dispatched under it to o, in addition to the
// engine's own observers — how a server multiplexing many concurrent
// plans over one shared engine attributes progress to the right client.
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	return core.ContextWithObserver(ctx, o)
}

// Run executes one benchmark configuration on the shared default engine.
// Unlike earlier releases, which simulated afresh on every call, the
// default engine memoizes: repeated identical runs may return the same
// shared *Result, which must be treated as immutable.
//
// Deprecated: construct an Engine and call Engine.Run, which adds
// context cancellation, bounded parallelism, memoization, and progress
// observation.
func Run(spec Spec, cfg Config) (*Result, error) {
	return core.DefaultEngine().Run(context.Background(), spec, cfg)
}

// RunSweep measures spec across thread counts on the shared default
// engine. As with Run, repeated identical sweeps share memoized Results,
// which must be treated as immutable.
//
// Deprecated: construct an Engine and call Engine.Sweep.
func RunSweep(spec Spec, cfg SweepConfig) (*Sweep, error) {
	return core.DefaultEngine().Sweep(context.Background(), spec, cfg)
}

// NewSuite builds the experiment suite that regenerates every figure and
// table from the paper, bound to the shared default engine.
//
// Deprecated: construct an Engine and call Engine.Suite.
func NewSuite(cfg ExperimentConfig) *Suite { return core.NewSuite(cfg) }

// NewLockProfiler returns an empty DTrace-style lock profiler to attach to
// Config.LockProfiler.
func NewLockProfiler() *LockProfiler { return lockprof.New() }

// RegisterWorkload adds a custom workload model to the registry, making
// it resolvable by name everywhere — scenario plans, the experiment
// suite, and the command-line drivers. Names are unique; registering an
// existing name (including the built-ins) is an error.
func RegisterWorkload(s Spec) error { return workload.Register(s) }

// Workloads returns every registered workload model in registration
// order: the six paper benchmarks, the bundled extensions, then user
// registrations.
func Workloads() []Spec { return workload.Registered() }

// WorkloadNames returns every registered workload name in registration
// order.
func WorkloadNames() []string { return workload.Names() }

// LookupWorkload resolves a registered workload by name.
func LookupWorkload(name string) (Spec, bool) { return workload.Lookup(name) }

// PaperBenchmarks returns the six DaCapo-9.12 workload models in the
// paper's order: the scalable trio, then the non-scalable trio.
func PaperBenchmarks() []Spec { return workload.PaperSet() }

// Policy types. The contended-monitor discipline, the scheduler's
// thread-placement discipline, and the GC collection discipline are
// pluggable: built-ins are selected by registry name through
// Config.LockPolicy, Config.Sched.Placement, and Config.GCPolicy (or the
// matching plan fields), and custom implementations join the registries
// below.
type (
	// LockPolicy is the contended-monitor discipline of a run: what a
	// thread does when it finds a monitor held, and who gets the monitor
	// on release.
	LockPolicy = locks.Policy
	// Placement chooses the run queue for every waking thread.
	Placement = sched.Placement
	// GCPolicy is the collection discipline of a run: how stop-the-world
	// work maps onto pause time, whether the old generation is collected
	// concurrently, and how the heap is laid out over the machine.
	GCPolicy = gc.Policy
)

// Registry names of the built-in lock policies.
const (
	// LockPolicyFIFO parks contenders FIFO with direct handoff — the
	// paper's baseline (HotSpot-style) discipline and the default.
	LockPolicyFIFO = locks.PolicyFIFO
	// LockPolicyBarging frees the monitor on release and lets woken
	// waiters and latecomers race for it.
	LockPolicyBarging = locks.PolicyBarging
	// LockPolicySpinThenPark busy-waits a virtual-time budget before
	// parking; the spin is charged as mutator CPU.
	LockPolicySpinThenPark = locks.PolicySpinThenPark
	// LockPolicyRestricted caps the threads circulating over a monitor,
	// per Dice & Kogan's concurrency restriction.
	LockPolicyRestricted = locks.PolicyRestricted
)

// Registry names of the built-in placements.
const (
	// PlacementAffinity prefers a thread's last core, then least-loaded
	// with a home-socket tie-break — the default.
	PlacementAffinity = sched.PlacementAffinity
	// PlacementRoundRobin rotates wakeups across cores.
	PlacementRoundRobin = sched.PlacementRoundRobin
	// PlacementLeastLoaded always picks the shortest run queue.
	PlacementLeastLoaded = sched.PlacementLeastLoaded
)

// Registry names of the built-in GC policies.
const (
	// GCPolicyStwSerial is the paper's stop-the-world throughput
	// collector with the calibrated cost model — the default.
	GCPolicyStwSerial = gc.PolicyStwSerial
	// GCPolicyStwParallel splits collection work across the GC workers
	// with an explicit per-worker fork/join synchronization tax.
	GCPolicyStwParallel = gc.PolicyStwParallel
	// GCPolicyConcurrent collects the old generation with a CMS-style
	// background cycle, trading pause time for mutator-overlap CPU.
	GCPolicyConcurrent = gc.PolicyConcurrent
	// GCPolicyCompartment splits eden into per-thread-group compartments
	// homed on NUMA sockets (paper §IV, suggestion 2).
	GCPolicyCompartment = gc.PolicyCompartment
)

// RegisterLockPolicy adds a lock-policy factory to the registry, making
// it selectable by name through Config.LockPolicy, plan files, and
// cmd/javasim -lock-policy. The factory must return a fresh instance per
// call (policies hold per-run state); names are unique and registering an
// existing one — including the built-ins — is an error.
//
// Tuned variants of the built-ins are buildable anywhere via
// SpinThenParkPolicy and RestrictedPolicy. Policies with novel
// disciplines implement the Policy interface against internal/locks
// types, so they can only be authored inside this module.
func RegisterLockPolicy(name string, factory func() LockPolicy) error {
	return locks.RegisterPolicy(name, factory)
}

// LockPolicyNames returns every registered lock-policy name in
// registration order: the four built-ins, then user registrations.
func LockPolicyNames() []string { return locks.PolicyNames() }

// RegisterPlacement adds a placement factory to the registry, making it
// selectable by name through Config.Sched.Placement, plan files, and
// cmd/javasim -placement. The same uniqueness, freshness, and
// in-module-authorship rules as RegisterLockPolicy apply.
func RegisterPlacement(name string, factory func() Placement) error {
	return sched.RegisterPlacement(name, factory)
}

// PlacementNames returns every registered placement name in registration
// order: the three built-ins, then user registrations.
func PlacementNames() []string { return sched.PlacementNames() }

// SpinThenParkPolicy builds a spin-then-park lock policy with a custom
// busy-wait budget — register tuned variants under their own names, e.g.
// RegisterLockPolicy("spin-10us", func() LockPolicy {
// return SpinThenParkPolicy(10 * Microsecond) }).
func SpinThenParkPolicy(budget Time) LockPolicy { return locks.SpinThenPark(budget) }

// RestrictedPolicy builds a concurrency-restricting lock policy with a
// custom circulating-set cap (the built-in "restricted" uses 4).
func RestrictedPolicy(cap int) LockPolicy { return locks.Restricted(cap) }

// RegisterGCPolicy adds a GC-policy factory to the registry, making it
// selectable by name through Config.GCPolicy, plan files, and
// cmd/javasim -gc-policy. The same uniqueness, freshness, and
// in-module-authorship rules as RegisterLockPolicy apply.
func RegisterGCPolicy(name string, factory func() GCPolicy) error {
	return gc.RegisterPolicy(name, factory)
}

// GCPolicyNames returns every registered GC-policy name in registration
// order: the four built-ins, then user registrations.
func GCPolicyNames() []string { return gc.PolicyNames() }

// ParallelGCPolicy builds a stw-parallel GC policy with a custom
// efficiency-curve alpha and per-worker synchronization tax (the
// built-in "stw-parallel" uses 0.02 and 3µs) — register tuned variants
// under their own names, e.g. RegisterGCPolicy("stw-parallel-10us",
// func() GCPolicy { return ParallelGCPolicy(0.02, 10*Microsecond) }).
func ParallelGCPolicy(alpha float64, syncTax Time) GCPolicy { return gc.StwParallel(alpha, syncTax) }

// CompartmentGCPolicy builds a compartment GC policy with a fixed
// thread-group count (the built-in "compartment" defaults to one group
// per NUMA socket the enabled cores span).
func CompartmentGCPolicy(groups int) GCPolicy { return gc.Compartment(groups) }

// Machine-model types. The hardware a run executes on is itself a
// registry entry: Config.MachineName (or a plan's Machine field) selects
// a registered model by name, and custom machines join via
// RegisterMachine.
type (
	// MachineModel is a named, registrable hardware description: a
	// MachineConfig plus the socket-distance topology hook.
	MachineModel = machine.Model
	// MachineConfig describes a NUMA machine: sockets, cores, hardware
	// threads per core sharing an issue pipeline, per-node memory,
	// access latencies, and an optional per-socket bandwidth ceiling.
	MachineConfig = machine.Config
)

// Registry names of the built-in machine models.
const (
	// MachineOpteron6168 is the paper's testbed — four Opteron 6168
	// sockets, 12 cores each — and the default.
	MachineOpteron6168 = machine.DefaultModel
	// MachineSparcT3 is a four-socket SPARC T3-4 CMT system: 512
	// hardware threads, 8 per core sharing a dual-issue pipeline.
	MachineSparcT3 = machine.ModelSparcT3
	// MachineOpteron6168BW is the Opteron testbed with a finite
	// per-socket memory-bandwidth budget.
	MachineOpteron6168BW = machine.ModelOpteronBW
)

// RegisterMachine adds a machine model to the registry, making it
// selectable by name through Config.MachineName, plan files, and
// cmd/javasim -machine. Models are stateless descriptions (per-run state
// lives in the machine instantiated from them), names are unique, and
// registering an existing one — including the built-ins — is an error.
// Invalid configurations are rejected at registration time.
func RegisterMachine(m MachineModel) error { return machine.RegisterModel(m) }

// NewMachineModel wraps a MachineConfig as a registrable model with the
// default flat socket topology (every remote socket one hop away).
// Implement the MachineModel interface directly for routed multi-hop
// systems.
func NewMachineModel(name string, cfg MachineConfig) MachineModel { return machine.NewModel(name, cfg) }

// MachineNames returns every registered machine-model name in
// registration order: the three built-ins, then user registrations.
func MachineNames() []string { return machine.ModelNames() }

// LookupMachine resolves a registered machine model by name.
func LookupMachine(name string) (MachineModel, error) { return machine.LookupModel(name) }

// SparcT3Config returns the SPARC T3-4 configuration the "sparc-t3-4"
// model is registered with — a starting point for tuned CMT variants.
func SparcT3Config() MachineConfig { return machine.SparcT3_4() }

// Opteron6168Config returns the paper-testbed configuration the
// "opteron-6168" model is registered with.
func Opteron6168Config() MachineConfig { return machine.Opteron6168() }

// Open-system traffic types. Setting Config.Traffic (or a scenario's
// TrafficSpec) switches a run from the paper's closed loop — a fixed
// thread pool looping over the workload — to an open system: requests
// arrive from a seeded generator process, queue for the server pool, and
// each carries an arrival-to-completion latency. The Result then carries
// TrafficStats with the latency and queue-wait distributions, timeout
// accounting, and queue-depth trajectory — the goodput-under-overload
// measurements closed loops cannot express.
type (
	// TrafficConfig configures a run's arrival process; the zero value
	// (or Process "closed") keeps the closed-loop model.
	TrafficConfig = traffic.Config
	// ArrivalProcess generates successive inter-arrival gaps on the
	// virtual-time axis.
	ArrivalProcess = traffic.Process
	// ArrivalFactory builds an ArrivalProcess from a canonicalized
	// TrafficConfig. Returning a nil Process (and nil error) selects the
	// closed-loop model.
	ArrivalFactory = traffic.Factory
	// TrafficStats is the open-system measurement record of one run.
	TrafficStats = traffic.Stats
	// QueueSample is one decimated point of the queue-depth trajectory.
	QueueSample = traffic.QueueSample
)

// Registry names of the built-in arrival processes.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps — the
	// memoryless open-system baseline.
	ArrivalPoisson = traffic.ProcessPoisson
	// ArrivalBursty modulates a Poisson process with MMPP-style on/off
	// phases: bursts at BurstFactor times the mean rate, separated by
	// quiet stretches that preserve the long-run mean.
	ArrivalBursty = traffic.ProcessBursty
	// ArrivalDiurnal modulates the rate sinusoidally around the mean —
	// the load-follows-the-sun shape, compressed to simulation scale.
	ArrivalDiurnal = traffic.ProcessDiurnal
	// ArrivalClosed names the closed-loop adapter: selecting it runs the
	// paper's fixed-thread-pool model unchanged.
	ArrivalClosed = traffic.ProcessClosed
)

// RegisterArrivalProcess adds an arrival-process factory to the traffic
// registry, making it selectable by name through Config.Traffic.Process,
// plan Traffic blocks, and cmd/javasim -arrival. The factory must return
// a fresh instance per call (processes hold per-run state); names are
// unique and registering an existing one — including the built-ins — is
// an error.
func RegisterArrivalProcess(name string, factory ArrivalFactory) error {
	return traffic.Register(name, factory)
}

// ArrivalProcessNames returns every registered arrival-process name in
// registration order: the built-ins, then user registrations.
func ArrivalProcessNames() []string { return traffic.Names() }

// Virtual-time units, for policy budgets and config durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Benchmarks returns the six DaCapo-9.12 workload models in the paper's
// order: the scalable trio, then the non-scalable trio.
//
// Deprecated: use PaperBenchmarks, which reads the same six models from
// the workload registry (see also Workloads for the whole catalog).
func Benchmarks() []Spec { return workload.PaperSet() }

// ExtensionBenchmarks returns workloads beyond the paper's six (e.g. the
// "server" model used by the future-work studies).
//
// Deprecated: use Workloads for the whole registered catalog, or
// LookupWorkload for one model.
func ExtensionBenchmarks() []Spec { return workload.Extensions() }

// BenchmarkByName looks up a workload by name.
//
// Deprecated: use LookupWorkload, which resolves any registered workload
// (built-in or user-registered) through the registry.
func BenchmarkByName(name string) (Spec, bool) { return workload.Lookup(name) }

// PaperScalable reports the paper's published classification for a
// benchmark name.
func PaperScalable(name string) bool { return workload.Scalable(name) }
