package javasim_test

import (
	"context"
	"fmt"
	"os"
	"strings"

	"javasim"
)

// tolerateDup ignores the duplicate-registration error the process-global
// registries return when examples rerun in one binary (go test -count=2).
func tolerateDup(err error) {
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		panic(err)
	}
}

// ExampleEngine_Run executes one benchmark configuration through an
// engine and reads the paper's three headline measurements.
func ExampleEngine_Run() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("xalan")
	res, err := eng.Run(context.Background(), spec.Scale(0.05), javasim.Config{Threads: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gc share: %.1f%%\n", 100*res.GCShare())
	fmt.Printf("contended acquisitions: %d\n", res.LockContentions)
	fmt.Printf("objects dying < 1KB: %.0f%%\n", 100*res.Lifespans.FractionBelow(1024))
	// Deterministic for a fixed seed, but tied to the calibrated workload
	// models — so this example asserts nothing about the exact values.
}

// ExampleEngine_Sweep sweeps thread counts on the engine's bounded worker
// pool and applies the paper's scalability classification.
func ExampleEngine_Sweep() {
	eng := javasim.NewEngine(javasim.WithParallelism(2))
	spec, _ := javasim.LookupWorkload("jython")
	sw, err := eng.Sweep(context.Background(), spec.Scale(0.05), javasim.SweepConfig{
		ThreadCounts: []int{4, 16},
	})
	if err != nil {
		panic(err)
	}
	c := sw.Classify(2.0)
	fmt.Println("scalable:", c.Scalable)
	// Output: scalable: false
}

// ExampleConfig_lockPolicy A/Bs two contended-monitor disciplines on the
// same workload and seed: the paper's baseline FIFO park/handoff against
// Dice & Kogan-style concurrency restriction, which parks excess threads
// at an admission gate that never fires the contended-enter probe.
func ExampleConfig_lockPolicy() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("server")
	run := func(policy string) *javasim.Result {
		res, err := eng.Run(context.Background(), spec.Scale(0.05),
			javasim.Config{Threads: 32, Seed: 42, LockPolicy: policy})
		if err != nil {
			panic(err)
		}
		return res
	}
	fifo := run(javasim.LockPolicyFIFO)
	restricted := run(javasim.LockPolicyRestricted)
	fmt.Println("restricted tames contention:", restricted.LockContentions < fifo.LockContentions)
	// Output: restricted tames contention: true
}

// ExampleRegisterWorkload registers a custom application model under its
// own name, after which plans, the suite, and the CLI resolve it like a
// built-in. (docs/extending.md, "Custom workloads".)
func ExampleRegisterWorkload() {
	spec, _ := javasim.LookupWorkload("xalan")
	spec.Name = "docs-miniapp"
	tolerateDup(javasim.RegisterWorkload(spec))
	reg, ok := javasim.LookupWorkload("docs-miniapp")
	fmt.Println("registered:", ok && reg.Name == "docs-miniapp")
	// Output: registered: true
}

// ExampleRegisterLockPolicy registers a tuned spin-then-park variant and
// selects it by name; the Result records the selected name.
// (docs/extending.md, "Custom lock policies".)
func ExampleRegisterLockPolicy() {
	tolerateDup(javasim.RegisterLockPolicy("docs-spin-10us", func() javasim.LockPolicy {
		return javasim.SpinThenParkPolicy(10 * javasim.Microsecond)
	}))
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("server")
	res, err := eng.Run(context.Background(), spec.Scale(0.05),
		javasim.Config{Threads: 8, Seed: 42, LockPolicy: "docs-spin-10us"})
	if err != nil {
		panic(err)
	}
	fmt.Println("ran under:", res.LockPolicy)
	// Output: ran under: docs-spin-10us
}

// ExampleRegisterGCPolicy registers a tuned stw-parallel variant with a
// harsher synchronization tax and selects it by name.
// (docs/extending.md, "Custom GC policies".)
func ExampleRegisterGCPolicy() {
	tolerateDup(javasim.RegisterGCPolicy("docs-stw-parallel-10us", func() javasim.GCPolicy {
		return javasim.ParallelGCPolicy(0.02, 10*javasim.Microsecond)
	}))
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("xalan")
	res, err := eng.Run(context.Background(), spec.Scale(0.05),
		javasim.Config{Threads: 8, Seed: 42, GCPolicy: "docs-stw-parallel-10us"})
	if err != nil {
		panic(err)
	}
	fmt.Println("ran under:", res.GCPolicy)
	// Output: ran under: docs-stw-parallel-10us
}

// ExampleConfig_gcPolicy A/Bs two collection disciplines on the same
// workload and seed: the paper's stop-the-world throughput collector
// against NUMA-homed per-group heap compartments, whose slice-local
// collections are more numerous but individually smaller.
func ExampleConfig_gcPolicy() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("xalan")
	run := func(policy string) *javasim.Result {
		res, err := eng.Run(context.Background(), spec.Scale(0.1),
			javasim.Config{Threads: 24, Seed: 42, GCPolicy: policy})
		if err != nil {
			panic(err)
		}
		return res
	}
	serial := run(javasim.GCPolicyStwSerial)
	comp := run(javasim.GCPolicyCompartment)
	fmt.Println("compartment slices collections:", len(comp.GCPauses) > len(serial.GCPauses))
	// Output: compartment slices collections: true
}

// ExampleConfig_placement selects a scheduler placement by registry name
// (docs/extending.md, "Custom placements").
func ExampleConfig_placement() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("jython")
	cfg := javasim.Config{Threads: 4, Seed: 42}
	cfg.Sched.Placement = javasim.PlacementRoundRobin
	res, err := eng.Run(context.Background(), spec.Scale(0.05), cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("ran under:", res.Placement)
	// Output: ran under: round-robin
}

// ExampleSuite_Fig1d regenerates one of the paper's figures as a table.
func ExampleSuite_Fig1d() {
	suite := javasim.NewEngine().Suite(javasim.ExperimentConfig{
		ThreadCounts: []int{4, 16},
		Scale:        0.05,
	})
	table, err := suite.Fig1d(context.Background())
	if err != nil {
		panic(err)
	}
	table.WriteASCII(os.Stdout)
	// The rendered table lists the lifespan CDF of xalan at both thread
	// counts; values depend on the calibrated models.
}

// ExampleWithObserver streams progress events while a sweep runs and
// counts how many simulations the engine actually executed.
func ExampleWithObserver() {
	var started int
	eng := javasim.NewEngine(
		javasim.WithParallelism(1),
		javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
			if ev.Kind == javasim.RunStarted {
				started++
			}
		})),
	)
	spec, _ := javasim.LookupWorkload("jython")
	cfg := javasim.SweepConfig{ThreadCounts: []int{2, 4}}
	if _, err := eng.Sweep(context.Background(), spec.Scale(0.05), cfg); err != nil {
		panic(err)
	}
	if _, err := eng.Sweep(context.Background(), spec.Scale(0.05), cfg); err != nil {
		panic(err)
	}
	// The second sweep is answered entirely from the memoizing cache.
	fmt.Println("simulations:", started)
	// Output: simulations: 2
}

// ExampleRegisterArrivalProcess registers a deterministic fixed-gap
// arrival process and drives an open-system run with it.
// (docs/extending.md, "Custom arrival processes".)
func ExampleRegisterArrivalProcess() {
	tolerateDup(javasim.RegisterArrivalProcess("docs-fixed", func(cfg javasim.TrafficConfig) (javasim.ArrivalProcess, error) {
		if cfg.RatePerSec <= 0 {
			return nil, fmt.Errorf("docs-fixed needs a positive rate")
		}
		return fixedGap{gap: javasim.Time(1e9 / cfg.RatePerSec)}, nil
	}))
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("server")
	res, err := eng.Run(context.Background(), spec.Scale(0.1), javasim.Config{
		Threads: 8, Seed: 42,
		Traffic: javasim.TrafficConfig{Process: "docs-fixed", RatePerSec: 100000, Requests: 500},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d of %d requests completed\n",
		res.Traffic.Process, res.Traffic.Completed, res.Traffic.Offered)
	// Output: docs-fixed: 500 of 500 requests completed
}

// fixedGap emits one request every gap of virtual time — the simplest
// possible ArrivalProcess, used by ExampleRegisterArrivalProcess.
type fixedGap struct{ gap javasim.Time }

func (p fixedGap) Next(now javasim.Time, rng *javasim.Rand) javasim.Time { return p.gap }

// ExampleRegisterMachine registers a custom hardware model — a
// single-socket desktop — and runs a workload on it by name. The
// compiled version of the "Custom machine models" guide in
// docs/extending.md.
func ExampleRegisterMachine() {
	tolerateDup(javasim.RegisterMachine(javasim.NewMachineModel("docs-desktop", javasim.MachineConfig{
		Sockets:        1,
		CoresPerSocket: 8,
		MemoryPerNode:  32 << 30,
		LocalAccess:    70,
		MigrationCost:  3000,
	})))
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("xalan")
	res, err := eng.Run(context.Background(), spec.Scale(0.05), javasim.Config{
		Threads: 16, Seed: 42, MachineName: "docs-desktop",
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d threads on %d cores\n", res.Machine, res.Threads, res.Cores)
	// Output: docs-desktop: 16 threads on 8 cores
}
