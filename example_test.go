package javasim_test

import (
	"fmt"
	"os"

	"javasim"
)

// ExampleRun executes one benchmark configuration and reads the paper's
// three headline measurements.
func ExampleRun() {
	spec, _ := javasim.BenchmarkByName("xalan")
	res, err := javasim.Run(spec.Scale(0.05), javasim.Config{Threads: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gc share: %.1f%%\n", 100*res.GCShare())
	fmt.Printf("contended acquisitions: %d\n", res.LockContentions)
	fmt.Printf("objects dying < 1KB: %.0f%%\n", 100*res.Lifespans.FractionBelow(1024))
	// Deterministic for a fixed seed, but tied to the calibrated workload
	// models — so this example asserts nothing about the exact values.
}

// ExampleRunSweep sweeps thread counts and applies the paper's
// scalability classification.
func ExampleRunSweep() {
	spec, _ := javasim.BenchmarkByName("jython")
	sw, err := javasim.RunSweep(spec.Scale(0.05), javasim.SweepConfig{
		ThreadCounts: []int{4, 16},
	})
	if err != nil {
		panic(err)
	}
	c := sw.Classify(2.0)
	fmt.Println("scalable:", c.Scalable)
	// Output: scalable: false
}

// ExampleSuite_Fig1d regenerates one of the paper's figures as a table.
func ExampleSuite_Fig1d() {
	suite := javasim.NewSuite(javasim.ExperimentConfig{
		ThreadCounts: []int{4, 16},
		Scale:        0.05,
	})
	table, err := suite.Fig1d()
	if err != nil {
		panic(err)
	}
	table.WriteASCII(os.Stdout)
	// The rendered table lists the lifespan CDF of xalan at both thread
	// counts; values depend on the calibrated models.
}
