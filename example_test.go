package javasim_test

import (
	"context"
	"fmt"
	"os"

	"javasim"
)

// ExampleEngine_Run executes one benchmark configuration through an
// engine and reads the paper's three headline measurements.
func ExampleEngine_Run() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("xalan")
	res, err := eng.Run(context.Background(), spec.Scale(0.05), javasim.Config{Threads: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gc share: %.1f%%\n", 100*res.GCShare())
	fmt.Printf("contended acquisitions: %d\n", res.LockContentions)
	fmt.Printf("objects dying < 1KB: %.0f%%\n", 100*res.Lifespans.FractionBelow(1024))
	// Deterministic for a fixed seed, but tied to the calibrated workload
	// models — so this example asserts nothing about the exact values.
}

// ExampleEngine_Sweep sweeps thread counts on the engine's bounded worker
// pool and applies the paper's scalability classification.
func ExampleEngine_Sweep() {
	eng := javasim.NewEngine(javasim.WithParallelism(2))
	spec, _ := javasim.LookupWorkload("jython")
	sw, err := eng.Sweep(context.Background(), spec.Scale(0.05), javasim.SweepConfig{
		ThreadCounts: []int{4, 16},
	})
	if err != nil {
		panic(err)
	}
	c := sw.Classify(2.0)
	fmt.Println("scalable:", c.Scalable)
	// Output: scalable: false
}

// ExampleConfig_lockPolicy A/Bs two contended-monitor disciplines on the
// same workload and seed: the paper's baseline FIFO park/handoff against
// Dice & Kogan-style concurrency restriction, which parks excess threads
// at an admission gate that never fires the contended-enter probe.
func ExampleConfig_lockPolicy() {
	eng := javasim.NewEngine()
	spec, _ := javasim.LookupWorkload("server")
	run := func(policy string) *javasim.Result {
		res, err := eng.Run(context.Background(), spec.Scale(0.05),
			javasim.Config{Threads: 32, Seed: 42, LockPolicy: policy})
		if err != nil {
			panic(err)
		}
		return res
	}
	fifo := run(javasim.LockPolicyFIFO)
	restricted := run(javasim.LockPolicyRestricted)
	fmt.Println("restricted tames contention:", restricted.LockContentions < fifo.LockContentions)
	// Output: restricted tames contention: true
}

// ExampleSuite_Fig1d regenerates one of the paper's figures as a table.
func ExampleSuite_Fig1d() {
	suite := javasim.NewEngine().Suite(javasim.ExperimentConfig{
		ThreadCounts: []int{4, 16},
		Scale:        0.05,
	})
	table, err := suite.Fig1d(context.Background())
	if err != nil {
		panic(err)
	}
	table.WriteASCII(os.Stdout)
	// The rendered table lists the lifespan CDF of xalan at both thread
	// counts; values depend on the calibrated models.
}

// ExampleWithObserver streams progress events while a sweep runs and
// counts how many simulations the engine actually executed.
func ExampleWithObserver() {
	var started int
	eng := javasim.NewEngine(
		javasim.WithParallelism(1),
		javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
			if ev.Kind == javasim.RunStarted {
				started++
			}
		})),
	)
	spec, _ := javasim.LookupWorkload("jython")
	cfg := javasim.SweepConfig{ThreadCounts: []int{2, 4}}
	if _, err := eng.Sweep(context.Background(), spec.Scale(0.05), cfg); err != nil {
		panic(err)
	}
	if _, err := eng.Sweep(context.Background(), spec.Scale(0.05), cfg); err != nil {
		panic(err)
	}
	// The second sweep is answered entirely from the memoizing cache.
	fmt.Println("simulations:", started)
	// Output: simulations: 2
}
