// Command javasim runs one benchmark configuration on the simulated JVM
// and prints the measurement record — the per-run driver behind the
// paper's methodology (§II-B). The run dispatches through a
// javasim.Engine, so Ctrl-C cancels it mid-simulation.
//
// Usage:
//
//	javasim -workload xalan -threads 16 [-heap-factor 3] [-seed 42]
//	        [-scale 1.0] [-compartments 4] [-bias-groups 2]
//	        [-trace out.trace] [-lockprof] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"javasim"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/workload"
)

func main() {
	var (
		name         = flag.String("workload", "xalan", "benchmark: sunflow|lusearch|xalan|h2|eclipse|jython|server")
		specFile     = flag.String("spec", "", "load a custom workload Spec from this JSON file (overrides -workload)")
		dumpSpec     = flag.Bool("dump-spec", false, "print the selected workload's Spec as JSON and exit")
		threads      = flag.Int("threads", 4, "mutator threads (cores = threads, per the paper)")
		cores        = flag.Int("cores", 0, "enabled cores; 0 means cores = threads")
		heapFactor   = flag.Float64("heap-factor", 3, "heap size as a multiple of the minimum heap")
		seed         = flag.Uint64("seed", 42, "deterministic seed")
		scale        = flag.Float64("scale", 1, "workload scale factor (0,1]")
		iterations   = flag.Int("iterations", 1, "DaCapo-style iterations inside one JVM")
		compartments = flag.Int("compartments", 0, "heap compartments (future-work b); 0 = off")
		biasGroups   = flag.Int("bias-groups", 0, "phase-bias scheduling groups (future-work a); 0 = off")
		biasPhase    = flag.Duration("bias-phase", 0, "phase length for biased scheduling (default 2ms)")
		traceOut     = flag.String("trace", "", "write an Elephant-Tracks-style binary trace to this file")
		lockprofFlag = flag.Bool("lockprof", false, "print the DTrace-style lock profile")
		verbose      = flag.Bool("v", false, "print per-thread detail")
	)
	flag.Parse()

	var spec javasim.Spec
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatalf("open spec: %v", err)
		}
		spec, err = workload.LoadSpec(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		var ok bool
		spec, ok = javasim.BenchmarkByName(*name)
		if !ok {
			names := make([]string, 0, 6)
			for _, s := range javasim.Benchmarks() {
				names = append(names, s.Name)
			}
			fatalf("unknown workload %q; choose one of %s (or an extension)", *name, strings.Join(names, ", "))
		}
	}
	if *dumpSpec {
		if err := spec.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *scale != 1 {
		spec = spec.Scale(*scale)
	}

	cfg := javasim.Config{
		Threads:      *threads,
		Cores:        *cores,
		HeapFactor:   *heapFactor,
		Seed:         *seed,
		Compartments: *compartments,
		Iterations:   *iterations,
	}
	if *biasGroups > 1 {
		cfg.Sched.Bias.Groups = *biasGroups
		cfg.Sched.Bias.PhaseLength = sim.Time(biasPhase.Nanoseconds())
		if cfg.Sched.Bias.PhaseLength <= 0 {
			cfg.Sched.Bias.PhaseLength = 2 * sim.Millisecond
		}
	}

	var traceFile *os.File
	var tw *trace.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create trace: %v", err)
		}
		traceFile = f
		tw = trace.NewWriter(f)
		cfg.TraceSink = tw
	}
	var prof *javasim.LockProfiler
	if *lockprofFlag {
		prof = javasim.NewLockProfiler()
		cfg.LockProfiler = prof
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := javasim.NewEngine(javasim.WithParallelism(1))
	res, err := eng.Run(ctx, spec, cfg)
	if err != nil {
		fatalf("run: %v", err)
	}

	fmt.Printf("workload      %s (scale %.2f)\n", res.Workload, *scale)
	fmt.Printf("threads/cores %d/%d\n", res.Threads, res.Cores)
	fmt.Printf("total time    %v\n", res.TotalTime)
	fmt.Printf("mutator time  %v\n", res.MutatorTime)
	fmt.Printf("gc time       %v (%.1f%%, safepoints %v)\n", res.GCTime, 100*res.GCShare(), res.SafepointTime)
	fmt.Printf("collections   %d minor, %d full\n", res.GCStats.MinorCount, res.GCStats.FullCount)
	fmt.Printf("allocated     %d objects, %.1f MB\n", res.ObjectsAllocated, float64(res.AllocatedBytes)/(1<<20))
	fmt.Printf("promoted      %.2f MB, copied %.2f MB\n",
		float64(res.GCStats.PromotedBytes)/(1<<20), float64(res.GCStats.CopiedBytes)/(1<<20))
	fmt.Printf("locks         %d acquisitions, %d contentions (%.2f%%)\n",
		res.LockAcquisitions, res.LockContentions,
		100*float64(res.LockContentions)/float64(max64(res.LockAcquisitions, 1)))
	fmt.Printf("lifespans     %.1f%% < 1KB, mean %.0f B\n",
		100*res.Lifespans.FractionBelow(1024), res.Lifespans.Mean())
	fmt.Printf("utilization   %.2f\n", res.Utilization)
	if len(res.Iterations) > 1 {
		fmt.Println("iterations    (duration / gc / collections)")
		for _, it := range res.Iterations {
			fmt.Printf("  #%-2d %12v %12v %4d\n", it.Index, it.Duration, it.GCTime, it.Collections)
		}
	}

	if *verbose {
		fmt.Println("\nper-thread: units cpu ready-wait")
		for i, u := range res.PerThreadUnits {
			fmt.Printf("  worker-%-3d %6d %12v %12v\n", i, u, res.PerThreadCPU[i], res.PerThreadReadyWait[i])
		}
		fmt.Println("\ngc pauses: kind start duration (setup/scan/copy)")
		for _, p := range res.GCPauses {
			fmt.Printf("  %-5s %12v %12v (%v/%v/%v)\n", p.Kind, p.Start, p.Duration,
				p.Phases.Setup, p.Phases.Scan, p.Phases.Copy)
		}
	}
	if prof != nil {
		fmt.Println()
		prof.Report(os.Stdout, 10)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fatalf("flush trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("close trace: %v", err)
		}
		fmt.Printf("\ntrace: %d events written to %s\n", tw.Count(), *traceOut)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "javasim: "+format+"\n", args...)
	os.Exit(1)
}
