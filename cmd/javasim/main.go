// Command javasim runs one benchmark configuration on the simulated JVM
// and prints the measurement record — the per-run driver behind the
// paper's methodology (§II-B). It also executes declarative scenario
// plans (-plan) and enumerates the workload registry (-list). Everything
// dispatches through a javasim.Engine, so Ctrl-C cancels mid-simulation.
//
// Usage:
//
//	javasim -workload xalan -threads 16 [-heap-factor 3] [-seed 42]
//	        [-scale 1.0] [-compartments 4] [-bias-groups 2]
//	        [-lock-policy restricted] [-placement round-robin]
//	        [-gc-policy concurrent] [-machine sparc-t3-4]
//	        [-trace out.trace] [-lockprof] [-v]
//	javasim -workload server -arrival poisson -rate 200000 -threads 16
//	        [-requests 4000] [-timeout 5ms]
//	javasim -plan plan.json [-parallel 8] [-progress]
//	javasim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"javasim"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/workload"
)

func main() {
	var (
		name         = flag.String("workload", "xalan", "benchmark: any registered workload (see -list)")
		specFile     = flag.String("spec", "", "load a custom workload Spec from this JSON file (overrides -workload)")
		dumpSpec     = flag.Bool("dump-spec", false, "print the selected workload's Spec as JSON and exit")
		planFile     = flag.String("plan", "", "execute a declarative scenario plan from this JSON file and exit")
		list         = flag.Bool("list", false, "list the workload registry and exit")
		parallel     = flag.Int("parallel", 0, "with -plan: max concurrent simulations (0 = GOMAXPROCS)")
		progress     = flag.Bool("progress", false, "with -plan: stream engine progress events to stderr")
		storeDir     = flag.String("store", "", "with -plan: back the result cache with this content-addressed store directory")
		threads      = flag.Int("threads", 4, "mutator threads (cores = threads, per the paper)")
		cores        = flag.Int("cores", 0, "enabled cores; 0 means cores = threads")
		heapFactor   = flag.Float64("heap-factor", 3, "heap size as a multiple of the minimum heap")
		seed         = flag.Uint64("seed", 42, "deterministic seed")
		scale        = flag.Float64("scale", 1, "workload scale factor (0,1]")
		iterations   = flag.Int("iterations", 1, "DaCapo-style iterations inside one JVM")
		compartments = flag.Int("compartments", 0, "heap compartments (future-work b); 0 = off")
		biasGroups   = flag.Int("bias-groups", 0, "phase-bias scheduling groups (future-work a); 0 = off")
		biasPhase    = flag.Duration("bias-phase", 0, "phase length for biased scheduling (default 2ms)")
		arrival      = flag.String("arrival", "", "open-system arrival process: "+strings.Join(javasim.ArrivalProcessNames(), ", ")+" (default closed loop)")
		rate         = flag.Float64("rate", 0, "with -arrival: offered request rate per second")
		requests     = flag.Int("requests", 0, "with -arrival: offered requests per run (0 = workload unit budget)")
		reqTimeout   = flag.Duration("timeout", 0, "with -arrival: abandon requests queued longer than this (0 = never)")
		lockPolicy   = flag.String("lock-policy", "", "contended-monitor discipline: "+strings.Join(javasim.LockPolicyNames(), ", ")+" (default fifo)")
		placement    = flag.String("placement", "", "run-queue placement: "+strings.Join(javasim.PlacementNames(), ", ")+" (default affinity)")
		gcPolicy     = flag.String("gc-policy", "", "collection discipline: "+strings.Join(javasim.GCPolicyNames(), ", ")+" (default stw-serial)")
		machineName  = flag.String("machine", "", "hardware model: "+strings.Join(javasim.MachineNames(), ", ")+" (default opteron-6168)")
		traceOut     = flag.String("trace", "", "write an Elephant-Tracks-style binary trace to this file")
		lockprofFlag = flag.Bool("lockprof", false, "print the DTrace-style lock profile")
		verbose      = flag.Bool("v", false, "print per-thread detail")
	)
	flag.Parse()

	if *list {
		listWorkloads()
		return
	}
	if *planFile != "" {
		runPlan(*planFile, *parallel, *progress, *storeDir)
		return
	}

	var spec javasim.Spec
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatalf("open spec: %v", err)
		}
		spec, err = workload.LoadSpec(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		var ok bool
		spec, ok = javasim.LookupWorkload(*name)
		if !ok {
			fatalf("unknown workload %q; choose one of %s (or -spec a custom file)",
				*name, strings.Join(javasim.WorkloadNames(), ", "))
		}
	}
	if *dumpSpec {
		if err := spec.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *scale != 1 {
		spec = spec.Scale(*scale)
	}

	cfg := javasim.Config{
		Threads:      *threads,
		Cores:        *cores,
		HeapFactor:   *heapFactor,
		Seed:         *seed,
		Compartments: *compartments,
		Iterations:   *iterations,
		LockPolicy:   *lockPolicy,
		GCPolicy:     *gcPolicy,
		MachineName:  *machineName,
	}
	cfg.Sched.Placement = *placement
	if *arrival != "" && *arrival != javasim.ArrivalClosed {
		cfg.Traffic = javasim.TrafficConfig{
			Process:    *arrival,
			RatePerSec: *rate,
			Requests:   *requests,
			Timeout:    sim.Time(reqTimeout.Nanoseconds()),
		}
	} else if *rate != 0 || *requests != 0 || *reqTimeout != 0 {
		fatalf("-rate/-requests/-timeout need -arrival naming an open process")
	}
	if *biasGroups > 1 {
		cfg.Sched.Bias.Groups = *biasGroups
		cfg.Sched.Bias.PhaseLength = sim.Time(biasPhase.Nanoseconds())
		if cfg.Sched.Bias.PhaseLength <= 0 {
			cfg.Sched.Bias.PhaseLength = 2 * sim.Millisecond
		}
	}

	var traceFile *os.File
	var tw *trace.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create trace: %v", err)
		}
		traceFile = f
		tw = trace.NewWriter(f)
		cfg.TraceSink = tw
	}
	var prof *javasim.LockProfiler
	if *lockprofFlag {
		prof = javasim.NewLockProfiler()
		cfg.LockProfiler = prof
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := javasim.NewEngine(javasim.WithParallelism(1))
	res, err := eng.Run(ctx, spec, cfg)
	if err != nil {
		fatalf("run: %v", err)
	}

	fmt.Printf("workload      %s (scale %.2f)\n", res.Workload, *scale)
	fmt.Printf("threads/cores %d/%d\n", res.Threads, res.Cores)
	fmt.Printf("policies      lock=%s placement=%s gc=%s\n", res.LockPolicy, res.Placement, res.GCPolicy)
	if res.Machine != "" && res.Machine != javasim.MachineOpteron6168 {
		fmt.Printf("machine       %s\n", res.Machine)
	}
	fmt.Printf("total time    %v\n", res.TotalTime)
	fmt.Printf("mutator time  %v\n", res.MutatorTime)
	fmt.Printf("gc time       %v (%.1f%%, safepoints %v)\n", res.GCTime, 100*res.GCShare(), res.SafepointTime)
	fmt.Printf("collections   %d minor, %d full\n", res.GCStats.MinorCount, res.GCStats.FullCount)
	fmt.Printf("allocated     %d objects, %.1f MB\n", res.ObjectsAllocated, float64(res.AllocatedBytes)/(1<<20))
	fmt.Printf("promoted      %.2f MB, copied %.2f MB\n",
		float64(res.GCStats.PromotedBytes)/(1<<20), float64(res.GCStats.CopiedBytes)/(1<<20))
	fmt.Printf("locks         %d acquisitions, %d contentions (%.2f%%)\n",
		res.LockAcquisitions, res.LockContentions,
		100*float64(res.LockContentions)/float64(max64(res.LockAcquisitions, 1)))
	fmt.Printf("lifespans     %.1f%% < 1KB, mean %.0f B\n",
		100*res.Lifespans.FractionBelow(1024), res.Lifespans.Mean())
	fmt.Printf("utilization   %.2f\n", res.Utilization)
	if res.MemTraffic > 0 {
		fmt.Printf("mem traffic   %.1f MB billed, %v stalled on channel backlog\n",
			float64(res.MemTraffic)/(1<<20), res.MemBWStall)
	}
	if st := res.Traffic; st != nil {
		fmt.Printf("traffic       %s at %.0f req/s offered\n", st.Process, st.RatePerSec)
		fmt.Printf("requests      %d offered, %d completed, %d timed out\n",
			st.Offered, st.Completed, st.TimedOut)
		fmt.Printf("goodput       %.0f req/s\n", st.GoodputPerSec(res.TotalTime))
		fmt.Printf("latency       p50 %v, p99 %v, p99.9 %v\n",
			sim.Time(st.Latency.Percentile(50)),
			sim.Time(st.Latency.Percentile(99)),
			sim.Time(st.Latency.Percentile(99.9)))
		fmt.Printf("queue         max depth %d, mean %.1f, wait p99 %v\n",
			st.QueueDepthMax, st.QueueDepthMean, sim.Time(st.QueueWait.Percentile(99)))
	}
	if len(res.Iterations) > 1 {
		fmt.Println("iterations    (duration / gc / collections)")
		for _, it := range res.Iterations {
			fmt.Printf("  #%-2d %12v %12v %4d\n", it.Index, it.Duration, it.GCTime, it.Collections)
		}
	}

	if *verbose {
		fmt.Println("\nper-thread: units cpu ready-wait")
		for i, u := range res.PerThreadUnits {
			fmt.Printf("  worker-%-3d %6d %12v %12v\n", i, u, res.PerThreadCPU[i], res.PerThreadReadyWait[i])
		}
		fmt.Println("\ngc pauses: kind start duration (setup/scan/copy)")
		for _, p := range res.GCPauses {
			fmt.Printf("  %-5s %12v %12v (%v/%v/%v)\n", p.Kind, p.Start, p.Duration,
				p.Phases.Setup, p.Phases.Scan, p.Phases.Copy)
		}
	}
	if prof != nil {
		fmt.Println()
		prof.Report(os.Stdout, 10)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			fatalf("flush trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatalf("close trace: %v", err)
		}
		fmt.Printf("\ntrace: %d events written to %s\n", tw.Count(), *traceOut)
	}
}

// listWorkloads prints the registry: every runnable workload with its
// provenance and the paper's scalability classification.
func listWorkloads() {
	fmt.Printf("%-12s %-10s %-14s %8s %s\n", "NAME", "SET", "DISTRIBUTION", "UNITS", "PAPER-VERDICT")
	paper := make(map[string]bool)
	for _, s := range javasim.PaperBenchmarks() {
		paper[s.Name] = true
	}
	for _, s := range javasim.Workloads() {
		set := "extension"
		verdict := "-"
		if paper[s.Name] {
			set = "paper"
			verdict = map[bool]string{true: "scalable", false: "non-scalable"}[javasim.PaperScalable(s.Name)]
		}
		fmt.Printf("%-12s %-10s %-14s %8d %s\n", s.Name, set, s.Distribution, s.TotalUnits, verdict)
	}
}

// runPlan executes a declarative scenario plan file through an engine and
// prints every rendered table. With storeDir, the engine's result cache
// reads through to (and writes through to) the content-addressed disk
// store, so a plan already run by any process sharing the store — an
// earlier invocation, a javasimd daemon — simulates nothing.
func runPlan(path string, parallel int, progress bool, storeDir string) {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open plan: %v", err)
	}
	plan, err := javasim.LoadPlan(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	opts := []javasim.Option{}
	if parallel > 0 {
		opts = append(opts, javasim.WithParallelism(parallel))
	}
	if progress {
		opts = append(opts, javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
			fmt.Fprintf(os.Stderr, "javasim: %v\n", ev)
		})))
	}
	if storeDir != "" {
		st, err := javasim.OpenStore(storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				fatalf("store: %v", err)
			}
		}()
		opts = append(opts, javasim.WithDiskCache(st))
	}
	eng := javasim.NewEngine(opts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	pr, err := eng.RunPlan(ctx, plan)
	if err != nil {
		fatalf("plan: %v", err)
	}
	for i, t := range pr.Tables() {
		if i > 0 {
			fmt.Println()
		}
		if err := t.WriteASCII(os.Stdout); err != nil {
			fatalf("render: %v", err)
		}
	}
	if progress {
		cs := eng.CacheStats()
		fmt.Fprintf(os.Stderr, "javasim: %d simulations, %d memory hits, %d disk hits, %d shared in flight, %d disk writes, %d memoized\n",
			cs.Misses, cs.MemoryHits, cs.DiskHits, cs.Shared, cs.DiskWrites, cs.Entries)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "javasim: "+format+"\n", args...)
	os.Exit(1)
}
