// Command tracetool inspects the Elephant-Tracks-style binary traces
// produced by javasim -trace. Like the other binaries, it is
// context-aware: Ctrl-C cancels an analysis mid-stream, which matters for
// the multi-gigabyte traces long runs produce.
//
// Usage:
//
//	tracetool stats trace.bin          # lifespan distribution + counters
//	tracetool cdf trace.bin            # Figure 1c/1d-style lifespan CDF
//	tracetool threads trace.bin        # per-thread allocation breakdown
//	tracetool dump trace.bin [-n 100]  # human-readable event listing
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"javasim/internal/trace"
)

func main() {
	dumpN := flag.Int("n", 50, "dump: number of events to print (0 = all)")
	flag.Parse()
	args := flag.Args()
	if len(args) != 2 {
		usage()
	}
	cmd, path := args[0], args[1]
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	r := trace.NewReader(f)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch cmd {
	case "stats":
		stats(ctx, r)
	case "cdf":
		cdf(ctx, r)
	case "threads":
		threads(ctx, r)
	case "dump":
		dump(ctx, r, *dumpN)
	default:
		usage()
	}
}

// threads prints the per-thread allocation and lifespan breakdown.
func threads(ctx context.Context, r *trace.Reader) {
	a, err := trace.AnalyzeDetailedContext(ctx, r, 0)
	if err != nil {
		fatalf("analyze: %v", err)
	}
	fmt.Printf("%-8s %10s %12s %14s %12s\n", "THREAD", "ALLOCS", "BYTES", "MEAN-LIFESPAN", "<1KB")
	for _, tp := range a.Threads {
		fmt.Printf("t%-7d %10d %12d %13.0fB %11.1f%%\n",
			tp.Thread, tp.Allocs, tp.AllocBytes,
			tp.Lifespans.Mean(), 100*tp.Lifespans.FractionBelow(1024))
	}
	fmt.Printf("\nchurn: %d windows of %v; peak alloc %s/window\n",
		len(a.Churn), a.WindowSize, peakChurn(a.Churn))
}

func peakChurn(ws []trace.ChurnWindow) string {
	var max int64
	for _, w := range ws {
		if w.AllocBytes > max {
			max = w.AllocBytes
		}
	}
	return fmt.Sprintf("%dB", max)
}

// cdf prints the cumulative lifespan distribution in the paper's
// Figure 1c/1d bucket layout.
func cdf(ctx context.Context, r *trace.Reader) {
	a, err := trace.AnalyzeContext(ctx, r)
	if err != nil {
		fatalf("analyze: %v", err)
	}
	fmt.Printf("%-14s %10s\n", "lifespan <", "objects")
	for _, lim := range []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		fmt.Printf("%-14d %9.1f%%\n", lim, 100*a.Lifespans.FractionBelow(lim))
	}
}

func stats(ctx context.Context, r *trace.Reader) {
	a, err := trace.AnalyzeContext(ctx, r)
	if err != nil {
		fatalf("analyze: %v", err)
	}
	fmt.Printf("events     %d\n", a.Events)
	fmt.Printf("allocs     %d\n", a.Allocs)
	fmt.Printf("deaths     %d\n", a.Deaths)
	fmt.Printf("gcs        %d\n", a.GCs)
	fmt.Printf("leaked     %d (allocated, never died)\n", a.Leaked)
	fmt.Printf("\nlifespan distribution (bytes allocated between birth and death):\n")
	fmt.Print(a.Lifespans.String())
	for _, lim := range []int64{1 << 10, 64 << 10, 1 << 20} {
		fmt.Printf("  %% below %-8d = %.1f%%\n", lim, 100*a.Lifespans.FractionBelow(lim))
	}
}

func dump(ctx context.Context, r *trace.Reader, n int) {
	for i := 0; n == 0 || i < n; i++ {
		if i%1024 == 0 && ctx.Err() != nil {
			fatalf("dump: %v", ctx.Err())
		}
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			return
		}
		if err != nil {
			fatalf("read: %v", err)
		}
		switch ev.Kind {
		case trace.Alloc:
			fmt.Printf("%12v t%-3d alloc  obj=%d size=%d clock=%d\n",
				ev.Time, ev.Thread, ev.Object, ev.Size, ev.Clock)
		case trace.Death:
			fmt.Printf("%12v t%-3d death  obj=%d clock=%d\n",
				ev.Time, ev.Thread, ev.Object, ev.Clock)
		case trace.GCStart:
			fmt.Printf("%12v      gc-start kind=%d clock=%d\n", ev.Time, ev.Arg, ev.Clock)
		case trace.GCEnd:
			fmt.Printf("%12v      gc-end   pause=%dns\n", ev.Time, ev.Arg)
		default:
			fmt.Printf("%12v t%-3d %s\n", ev.Time, ev.Thread, ev.Kind)
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool <stats|cdf|threads|dump> <trace-file> [-n N]")
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracetool: "+format+"\n", args...)
	os.Exit(1)
}
