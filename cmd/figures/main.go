// Command figures regenerates the paper's figures and tables (DESIGN.md
// experiment index E1-E9).
//
// Usage:
//
//	figures                         # all artifacts, full scale
//	figures -fig 1a                 # one figure: 1a|1b|1c|1d|2
//	figures -table classification   # classification|workdist|factors|biased|compartment
//	figures -scale 0.2 -threads 4,16,48 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"javasim"
)

func main() {
	var (
		fig     = flag.String("fig", "", "figure to regenerate: 1a|1b|1c|1d|2 (empty = all artifacts)")
		table   = flag.String("table", "", "table to regenerate: classification|workdist|factors|biased|compartment")
		study   = flag.String("study", "", "design-choice study: heapfactor|gcworkers|tenuring|numa|collector|pretenure|replication|all")
		scale   = flag.Float64("scale", 1, "workload scale factor (0,1]")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		threads = flag.String("threads", "", "comma-separated thread counts (default 4,8,16,24,32,48)")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		chart   = flag.Bool("chart", false, "with -fig 2: render ASCII charts instead of the table")
	)
	flag.Parse()

	cfg := javasim.ExperimentConfig{Scale: *scale, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatalf("bad -threads entry %q", part)
			}
			cfg.ThreadCounts = append(cfg.ThreadCounts, n)
		}
	}
	suite := javasim.NewSuite(cfg)

	var tables []*javasim.Table
	add := func(t *javasim.Table, err error) {
		if err != nil {
			fatalf("%v", err)
		}
		tables = append(tables, t)
	}

	switch {
	case *fig != "":
		switch *fig {
		case "1a":
			add(suite.Fig1a())
		case "1b":
			add(suite.Fig1b())
		case "1c":
			add(suite.Fig1c())
		case "1d":
			add(suite.Fig1d())
		case "2":
			if *chart {
				charts, err := suite.Fig2Chart()
				if err != nil {
					fatalf("%v", err)
				}
				for _, c := range charts {
					if err := c.WriteASCII(os.Stdout); err != nil {
						fatalf("%v", err)
					}
					fmt.Println()
				}
				return
			}
			add(suite.Fig2())
		default:
			fatalf("unknown figure %q (1a|1b|1c|1d|2)", *fig)
		}
	case *table != "":
		switch *table {
		case "classification":
			add(suite.ClassificationTable())
		case "workdist":
			add(suite.WorkDistributionTable())
		case "factors":
			add(suite.FactorsTable())
		case "biased":
			add(suite.AblationBias())
		case "compartment":
			add(suite.AblationCompartments())
		default:
			fatalf("unknown table %q", *table)
		}
	case *study != "":
		switch *study {
		case "heapfactor":
			add(suite.StudyHeapFactor())
		case "gcworkers":
			add(suite.StudyGCWorkers())
		case "tenuring":
			add(suite.StudyTenuring())
		case "numa":
			add(suite.StudyNUMA())
		case "replication":
			add(suite.StudyReplication())
		case "collector":
			add(suite.StudyCollector())
		case "pretenure":
			add(suite.StudyPretenuring())
		case "all":
			all, err := suite.AllStudies()
			if err != nil {
				fatalf("%v", err)
			}
			tables = all
		default:
			fatalf("unknown study %q", *study)
		}
	default:
		all, err := suite.AllArtifacts()
		if err != nil {
			fatalf("%v", err)
		}
		tables = all
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		var err error
		if *csvOut {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteASCII(os.Stdout)
		}
		if err != nil {
			fatalf("render: %v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
