// Command figures regenerates the paper's figures and tables through a
// javasim.Engine: sweeps run on a bounded worker pool, repeated
// configurations are memoized, Ctrl-C cancels the batch mid-run, and
// -progress streams per-run events while long batches execute.
//
// Usage:
//
//	figures                         # all artifacts, full scale
//	figures -fig 1a                 # one figure: 1a|1b|1c|1d|2
//	figures -table classification   # classification|workdist|factors|biased|compartment
//	figures -scale 0.2 -threads 4,16,48 -csv
//	figures -study all -parallel 8 -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"javasim"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 1a|1b|1c|1d|2 (empty = all artifacts)")
		table    = flag.String("table", "", "table to regenerate: classification|workdist|factors|biased|compartment")
		study    = flag.String("study", "", "design-choice study: heapfactor|gcworkers|tenuring|numa|collector|pretenure|replication|all")
		scale    = flag.Float64("scale", 1, "workload scale factor (0,1]")
		seed     = flag.Uint64("seed", 42, "deterministic seed")
		threads  = flag.String("threads", "", "comma-separated thread counts (default 4,8,16,24,32,48)")
		csvOut   = flag.Bool("csv", false, "emit CSV instead of ASCII tables")
		chart    = flag.Bool("chart", false, "with -fig 2: render ASCII charts instead of the table")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream engine progress events to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []javasim.Option{}
	if *parallel > 0 {
		opts = append(opts, javasim.WithParallelism(*parallel))
	}
	if *progress {
		opts = append(opts, javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
			fmt.Fprintf(os.Stderr, "figures: %v\n", ev)
		})))
	}
	eng := javasim.NewEngine(opts...)

	cfg := javasim.ExperimentConfig{Scale: *scale, Seed: *seed}
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fatalf("bad -threads entry %q", part)
			}
			cfg.ThreadCounts = append(cfg.ThreadCounts, n)
		}
	}
	suite := eng.Suite(cfg)

	var tables []*javasim.Table
	add := func(t *javasim.Table, err error) {
		if err != nil {
			fatalf("%v", err)
		}
		tables = append(tables, t)
	}

	switch {
	case *fig != "":
		switch *fig {
		case "1a":
			add(suite.Fig1a(ctx))
		case "1b":
			add(suite.Fig1b(ctx))
		case "1c":
			add(suite.Fig1c(ctx))
		case "1d":
			add(suite.Fig1d(ctx))
		case "2":
			if *chart {
				charts, err := suite.Fig2Chart(ctx)
				if err != nil {
					fatalf("%v", err)
				}
				for _, c := range charts {
					if err := c.WriteASCII(os.Stdout); err != nil {
						fatalf("%v", err)
					}
					fmt.Println()
				}
				return
			}
			add(suite.Fig2(ctx))
		default:
			fatalf("unknown figure %q (1a|1b|1c|1d|2)", *fig)
		}
	case *table != "":
		switch *table {
		case "classification":
			add(suite.ClassificationTable(ctx))
		case "workdist":
			add(suite.WorkDistributionTable(ctx))
		case "factors":
			add(suite.FactorsTable(ctx))
		case "biased":
			add(suite.AblationBias(ctx))
		case "compartment":
			add(suite.AblationCompartments(ctx))
		default:
			fatalf("unknown table %q", *table)
		}
	case *study != "":
		switch *study {
		case "heapfactor":
			add(suite.StudyHeapFactor(ctx))
		case "gcworkers":
			add(suite.StudyGCWorkers(ctx))
		case "tenuring":
			add(suite.StudyTenuring(ctx))
		case "numa":
			add(suite.StudyNUMA(ctx))
		case "replication":
			add(suite.StudyReplication(ctx))
		case "collector":
			add(suite.StudyCollector(ctx))
		case "pretenure":
			add(suite.StudyPretenuring(ctx))
		case "all":
			all, err := suite.AllStudies(ctx)
			if err != nil {
				fatalf("%v", err)
			}
			tables = all
		default:
			fatalf("unknown study %q", *study)
		}
	default:
		all, err := suite.AllArtifacts(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		tables = all
	}

	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		var err error
		if *csvOut {
			err = t.WriteCSV(os.Stdout)
		} else {
			err = t.WriteASCII(os.Stdout)
		}
		if err != nil {
			fatalf("render: %v", err)
		}
	}
	if *progress {
		st := eng.Stats()
		fmt.Fprintf(os.Stderr, "figures: %d simulations, %d cache hits, %d memoized\n",
			st.Simulations, st.CacheHits, st.CachedResults)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
