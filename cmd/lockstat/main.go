// Command lockstat profiles lock behavior of a benchmark run — the
// simulator's equivalent of the DTrace scripts the paper used to count
// lock acquisitions and contention instances (§II-B). Runs dispatch
// through a javasim.Engine: the -sweep mode executes its points on the
// engine's bounded worker pool, and Ctrl-C cancels mid-run.
//
// Usage:
//
//	lockstat -workload xalan -threads 48 [-top 10] [-sweep]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"javasim"
)

func main() {
	var (
		name    = flag.String("workload", "xalan", "benchmark name")
		threads = flag.Int("threads", 8, "mutator threads")
		top     = flag.Int("top", 10, "hottest locks to list")
		scale   = flag.Float64("scale", 1, "workload scale factor")
		seed    = flag.Uint64("seed", 42, "deterministic seed")
		sweep   = flag.Bool("sweep", false, "sweep the paper's thread counts and print the growth series")
	)
	flag.Parse()

	spec, ok := javasim.LookupWorkload(*name)
	if !ok {
		fatalf("unknown workload %q", *name)
	}
	if *scale != 1 {
		spec = spec.Scale(*scale)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := javasim.NewEngine()

	if *sweep {
		sw, err := eng.Sweep(ctx, spec, javasim.SweepConfig{Base: javasim.Config{Seed: *seed}})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%-8s %14s %14s %10s\n", "threads", "acquisitions", "contentions", "rate")
		for _, p := range sw.Points {
			res := p.Result
			rate := 0.0
			if res.LockAcquisitions > 0 {
				rate = float64(res.LockContentions) / float64(res.LockAcquisitions)
			}
			fmt.Printf("%-8d %14d %14d %9.2f%%\n", p.Threads, res.LockAcquisitions, res.LockContentions, 100*rate)
		}
		return
	}

	prof := javasim.NewLockProfiler()
	res, err := eng.Run(ctx, spec, javasim.Config{Threads: *threads, Seed: *seed, LockProfiler: prof})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s @ %d threads: total %v (gc %v)\n\n", res.Workload, res.Threads, res.TotalTime, res.GCTime)
	prof.Report(os.Stdout, *top)
	fmt.Printf("\ncontended wait times: mean %v\n", prof.Summary().MeanWait)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lockstat: "+format+"\n", args...)
	os.Exit(1)
}
