// Command javasimd is the simulation serving daemon: a long-running
// HTTP service that accepts declarative plan JSON, executes it on a
// shared engine worker pool, streams progress as server-sent events,
// and serves the rendered artifacts. With -store, the engine's result
// cache is backed by a content-addressed on-disk store, so no plan any
// client has ever submitted is simulated twice — across requests,
// daemons, or restarts. With -workers, sweep points are sharded across
// child worker processes (the daemon re-executes itself with -worker).
// Submitted plans may target any registered machine model (the plan's
// Machine field or a per-scenario override); unknown model names are
// rejected at plan load, before any simulation runs, and the selected
// model is part of every result's cache fingerprint.
//
// Usage:
//
//	javasimd [-addr :8077] [-store DIR] [-parallel N] [-cache N]
//	         [-workers N] [-drain 30s] [-max-jobs N] [-v]
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503, running
// plans get -drain to finish (then they are canceled), and the store is
// flushed before exit. See docs/serving.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"javasim"
	"javasim/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		storeDir = flag.String("store", "", "content-addressed result store directory (empty = memory-only)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 0, "in-memory result cache entries (0 = default)")
		workers  = flag.Int("workers", 0, "shard simulations across this many worker processes (0 = in-process)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for running plans")
		maxJobs  = flag.Int("max-jobs", 0, "max concurrently running plans (0 = default)")
		verbose  = flag.Bool("v", false, "log requests and job progress")
		worker   = flag.Bool("worker", false, "internal: serve the shard protocol on stdin/stdout and exit")
	)
	flag.Parse()

	if *worker {
		// Child mode: one shard of the parent's worker pool. stdin EOF
		// (the parent closing the pipe) is the shutdown signal.
		if err := serve.RunWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			log.Fatalf("javasimd: worker: %v", err)
		}
		return
	}

	logf := func(string, ...any) {}
	if *verbose {
		logger := log.New(os.Stderr, "javasimd: ", log.LstdFlags)
		logf = logger.Printf
	}

	opts := []javasim.Option{}
	if *parallel > 0 {
		opts = append(opts, javasim.WithParallelism(*parallel))
	}
	if *cache > 0 {
		opts = append(opts, javasim.WithCache(*cache))
	}

	var st *javasim.Store
	if *storeDir != "" {
		var err error
		st, err = javasim.OpenStore(*storeDir)
		if err != nil {
			log.Fatalf("javasimd: %v", err)
		}
		opts = append(opts, javasim.WithDiskCache(st))
		logf("store: %s (%d entries)", st.Dir(), st.Len())
	}

	var pool *serve.WorkerPool
	if *workers > 0 {
		bin, err := os.Executable()
		if err != nil {
			log.Fatalf("javasimd: locate executable for workers: %v", err)
		}
		pool, err = serve.StartWorkerPool(*workers, bin, []string{"-worker"}, logf)
		if err != nil {
			log.Fatalf("javasimd: %v", err)
		}
		opts = append(opts, javasim.WithRunner(pool.Run))
		logf("sharding simulations across %d worker processes", *workers)
	}

	eng := javasim.NewEngine(opts...)
	srv, err := serve.New(serve.Options{
		Engine:  eng,
		Store:   st,
		MaxJobs: *maxJobs,
		Logf:    logf,
	})
	if err != nil {
		log.Fatalf("javasimd: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "javasimd: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "javasimd: %v: draining (deadline %v)\n", sig, *drain)
	case err := <-errc:
		log.Fatalf("javasimd: %v", err)
	}

	// Shutdown order: stop accepting and drain plan jobs, then close
	// HTTP connections, then make every completed result durable.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("javasimd: drain: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("javasimd: http shutdown: %v", err)
	}
	if pool != nil {
		if err := pool.Close(); err != nil {
			log.Printf("javasimd: worker pool: %v", err)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			log.Fatalf("javasimd: store: %v", err)
		}
	}
	fmt.Fprintln(os.Stderr, "javasimd: drained, exiting")
}
