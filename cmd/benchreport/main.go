// Command benchreport runs the repository's benchmark smoke and writes a
// machine-readable JSON report — benchmark name to ns/op, allocs/op,
// bytes/op, and any custom b.ReportMetric figures — seeding the perf
// trajectory that successive PRs compare against (BENCH_<n>.json at the
// repo root).
//
// Usage:
//
//	go run ./cmd/benchreport -out BENCH_5.json -bench 'BenchmarkVMRun' -benchtime 3x .
//	go run ./cmd/benchreport -baseline BENCH_4.json -out BENCH_5.json ./...
//	go run ./cmd/benchreport -baseline BENCH_5.json,BENCH_8.json -out BENCH_10.json ./...
//
// The positional arguments are the packages to benchmark (default ./...).
// -baseline takes one or more previous reports, comma-separated in
// oldest-to-newest order. The newest is embedded under "baseline" and is
// what the regression gate compares against; all of them are embedded
// under "trajectory" and printed as a per-benchmark delta table, so a
// report shows the whole optimization arc (BENCH_5 -> BENCH_8 -> now),
// not just the last hop. -max-ns-regress and -max-allocs-regress turn
// the comparison into a gate: the command exits non-zero when any
// benchmark regresses past the percentage ceiling, which is how CI holds
// the perf trajectory (allocations are deterministic, so their ceiling
// can sit tight; wall time on shared runners needs a generous one).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's parsed result line.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Metrics holds custom b.ReportMetric figures (the headline statistic
	// each figure benchmark reports, e.g. "xalan-gc-growth-x").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file format: a schema tag, the toolchain, the
// measurements, and optionally previous reports' measurements for
// trajectory comparisons.
type Report struct {
	Schema     string                 `json:"schema"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	BenchTime  string                 `json:"bench_time"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
	// Baseline holds the newest prior report's measurements — the gate's
	// comparison point.
	Baseline map[string]Measurement `json:"baseline,omitempty"`
	// Trajectory holds every prior report passed to -baseline, oldest
	// first, so the file records the optimization arc across PRs.
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
}

// TrajectoryPoint is one prior report in the perf trajectory.
type TrajectoryPoint struct {
	Source     string                 `json:"source"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	out := flag.String("out", "BENCH_5.json", "output report path")
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	baseline := flag.String("baseline", "",
		"previous report(s) to compare against, comma-separated oldest first; the newest gates")
	maxNs := flag.Float64("max-ns-regress", -1,
		"with -baseline: fail when a benchmark's ns/op regresses more than this percentage (negative disables)")
	maxAllocs := flag.Float64("max-allocs-regress", -1,
		"with -baseline: fail when a benchmark's allocs/op regresses more than this percentage (negative disables)")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	args := append([]string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := Report{
		Schema:     "javasim-bench-report/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		BenchTime:  *benchtime,
		Benchmarks: map[string]Measurement{},
	}
	for _, line := range strings.Split(string(raw), "\n") {
		name, m, ok := parseLine(line)
		if ok {
			rep.Benchmarks[name] = m
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines in go test output")
		os.Exit(1)
	}

	if *baseline != "" {
		for _, path := range strings.Split(*baseline, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			prev, err := readReport(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchreport: baseline: %v\n", err)
				os.Exit(1)
			}
			rep.Trajectory = append(rep.Trajectory, TrajectoryPoint{Source: path, Benchmarks: prev.Benchmarks})
		}
		if len(rep.Trajectory) == 0 {
			fmt.Fprintln(os.Stderr, "benchreport: -baseline named no readable reports")
			os.Exit(1)
		}
		rep.Baseline = rep.Trajectory[len(rep.Trajectory)-1].Benchmarks
		printTrajectory(rep)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchreport: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)

	if violations := gate(rep, *maxNs, *maxAllocs); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchreport: REGRESSION %s\n", v)
		}
		os.Exit(1)
	}
}

// gate returns one violation line per benchmark whose time or allocation
// movement against the baseline exceeds its percentage ceiling. Negative
// ceilings disable that axis; benchmarks absent from the baseline pass
// (they are new, with nothing to regress from).
func gate(rep Report, maxNs, maxAllocs float64) []string {
	var bad []string
	for name, cur := range rep.Benchmarks {
		base, ok := rep.Baseline[name]
		if !ok {
			continue
		}
		check := func(axis string, b, c, ceiling float64) {
			if ceiling < 0 {
				return
			}
			if b == 0 {
				// A zero baseline is a pinned invariant (e.g. a benchmark
				// holding 0 allocs/op): any increase is a regression, since
				// no percentage ceiling can be computed from zero.
				if c > 0 {
					bad = append(bad, fmt.Sprintf("%s %s 0 -> %.0f (was pinned at zero)", name, axis, c))
				}
				return
			}
			if pct := 100 * (c - b) / b; pct > ceiling {
				bad = append(bad, fmt.Sprintf("%s %s %.0f -> %.0f (%+.1f%%, ceiling %.0f%%)",
					name, axis, b, c, pct, ceiling))
			}
		}
		check("ns/op", base.NsPerOp, cur.NsPerOp, maxNs)
		check("allocs/op", base.AllocsPerOp, cur.AllocsPerOp, maxAllocs)
	}
	sort.Strings(bad)
	return bad
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkVMRun-8  3  16170192 ns/op  9837909 virtual-ns/run  970 B/op  119 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs; unknown
// units land in Metrics.
func parseLine(line string) (string, Measurement, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", Measurement{}, false
	}
	name := cpuSuffix.ReplaceAllString(f[0], "")
	m := Measurement{}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", Measurement{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			if m.Metrics == nil {
				m.Metrics = map[string]float64{}
			}
			m.Metrics[unit] = v
		}
	}
	return name, m, true
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// printTrajectory prints, per benchmark and axis, the measurement chain
// across every baseline plus the current run, with the percentage
// movement against the newest baseline — the axis the gate judges.
func printTrajectory(rep Report) {
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	last := rep.Trajectory[len(rep.Trajectory)-1]
	for _, axis := range []struct {
		label string
		pick  func(Measurement) float64
	}{
		{"ns/op", func(m Measurement) float64 { return m.NsPerOp }},
		{"allocs/op", func(m Measurement) float64 { return m.AllocsPerOp }},
	} {
		fmt.Printf("trajectory (%s):\n", axis.label)
		for _, name := range names {
			cur := axis.pick(rep.Benchmarks[name])
			chain := make([]string, 0, len(rep.Trajectory)+1)
			for _, pt := range rep.Trajectory {
				if base, ok := pt.Benchmarks[name]; ok {
					chain = append(chain, fmt.Sprintf("%.0f", axis.pick(base)))
				} else {
					chain = append(chain, "-")
				}
			}
			chain = append(chain, fmt.Sprintf("%.0f", cur))
			tail := "(new)"
			if base, ok := last.Benchmarks[name]; ok {
				if b := axis.pick(base); b != 0 {
					tail = fmt.Sprintf("(%+.1f%% vs %s)", 100*(cur-b)/b, last.Source)
				} else if cur == 0 {
					tail = "(0, unchanged)"
				} else {
					tail = fmt.Sprintf("(regressed from 0 in %s)", last.Source)
				}
			}
			fmt.Printf("  %-36s %s  %s\n", name, strings.Join(chain, " -> "), tail)
		}
	}
}
