package javasim_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links; images share the shape.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinks walks README.md and docs/ and fails on any relative link
// whose target does not exist — the docs-link check CI runs, kept in the
// test suite so a doc rename cannot silently strand its references.
func TestDocsLinks(t *testing.T) {
	files := []string{"README.md"}
	entries, err := os.ReadDir("docs")
	if err != nil {
		t.Fatalf("docs directory missing: %v", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".md") {
			files = append(files, filepath.Join("docs", e.Name()))
		}
	}
	if len(files) < 4 {
		t.Fatalf("expected README plus at least three docs guides, found %v", files)
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; availability is not this test's business
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // in-page anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead relative link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}
