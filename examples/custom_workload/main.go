// Custom workload: build a benchmark model from scratch with the public
// Spec API, sweep it, and let the framework classify it — the path a
// downstream user takes to study their *own* application's scalability
// factors.
//
// The example constructs two hypothetical applications: a lock-free
// analytics pipeline (should scale) and a config-store with one global
// write lock (should not), then runs the paper's methodology on both. It
// also exercises the bundled "server" extension workload.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
	"javasim/internal/sim"
)

// analyticsSpec is an embarrassingly parallel aggregation: uniform work,
// tiny critical sections, short-lived records.
func analyticsSpec() javasim.Spec {
	return javasim.Spec{
		Name:        "analytics",
		TotalUnits:  8000,
		UnitCompute: 50 * sim.Microsecond,
		ComputeCV:   0.3,

		AllocsPerUnit: 20,
		ObjSizeMeanB:  96,
		ObjSizeSigma:  0.6,
		AllocGap:      80 * sim.Nanosecond,

		FracIntraBurst:    0.8,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.1,
		CrossUnitMeanDist: 3,
		FracLongLived:     0.02,

		SharedLocks:    2,
		LockOpsPerUnit: 0.2,
		LockHold:       300 * sim.Nanosecond,
		QueueLockHold:  150 * sim.Nanosecond,

		Phases:             40,
		SequentialFraction: 0.02,
		MemoryIntensity:    0.4,
		HelperThreads:      2,
	}
}

// configStoreSpec serializes every update behind one global lock held for
// most of each operation — a textbook non-scalable design.
func configStoreSpec() javasim.Spec {
	s := analyticsSpec()
	s.Name = "config-store"
	s.SharedLocks = 1
	s.LockOpsPerUnit = 1
	s.LockHold = 40 * sim.Microsecond // ~80% of the unit under the lock
	s.SequentialFraction = 0.1
	return s
}

// eng sweeps every custom workload through one bounded worker pool.
var eng = javasim.NewEngine(javasim.WithParallelism(4))

func study(spec javasim.Spec) {
	sw, err := eng.Sweep(context.Background(), spec, javasim.SweepConfig{
		ThreadCounts: []int{4, 8, 16, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	c := sw.Classify(2.0)
	f := sw.ComputeFactors()
	fmt.Printf("%-14s max speedup %.2fx @%d threads — %s\n",
		spec.Name, c.MaxSpeedup, c.AtThreads,
		map[bool]string{true: "SCALABLE", false: "NON-SCALABLE"}[c.Scalable])
	fmt.Printf("               amdahl-f=%.2f contention-growth=%.1fx gc-share %.1f%%->%.1f%%\n",
		f.SequentialFraction, f.ContentionGrowth,
		100*f.GCShareFirst, 100*f.GCShareLast)
}

func main() {
	// Registering a custom model makes it resolvable by name everywhere —
	// scenario plans, cmd/javasim -workload, the experiment suite.
	if err := javasim.RegisterWorkload(analyticsSpec()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("classifying custom workloads with the paper's methodology:")
	analytics, _ := javasim.LookupWorkload("analytics")
	study(analytics)
	study(configStoreSpec())

	server, _ := javasim.LookupWorkload("server")
	study(server.Scale(0.5))

	fmt.Println("\nthe framework needs only a Spec: work distribution, allocation")
	fmt.Println("profile, death mixture, and lock pattern — classification, factor")
	fmt.Println("decomposition, and every figure generator then work unchanged.")
}
