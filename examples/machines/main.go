// Example machines runs the same workload, seed, and JVM policies on
// each registered hardware model — the testbed-specificity experiment
// the paper can only caveat in prose. Machine models are string-keyed
// and pluggable (javasim.RegisterMachine), and three ship built in:
//
//   - opteron-6168: the paper's 48-core Magny-Cours testbed, one
//     hardware thread per core. The default; all other examples run it.
//   - sparc-t3-4: a CMT box — 4 sockets x 16 cores x 8 hardware strands
//     sharing a 2-wide issue pipeline per core. 512 schedulable units,
//     but per-strand throughput degrades once a core carries more
//     runnable strands than issue slots, so the scaling curve knees
//     where the Opteron's keeps falling.
//   - opteron-6168-bw: the same Opteron with a finite per-socket memory
//     bandwidth. Allocation and GC-copy traffic past the ceiling queues
//     on the channel, stretching latencies — a scaling limiter that is
//     invisible on the ideal machine.
//
// The example also registers a model of its own (a single-socket 8-core
// desktop) to show the registry is open.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

func main() {
	// Registering a custom model: any name not already taken, any valid
	// topology. After this it is addressable from configs, plan files,
	// and the -machine CLI flag alike.
	desktop := javasim.NewMachineModel("desktop-8", javasim.MachineConfig{
		Sockets:        1,
		CoresPerSocket: 8,
		MemoryPerNode:  32 << 30,
		LocalAccess:    70,
		MigrationCost:  3000,
	})
	if err := javasim.RegisterMachine(desktop); err != nil {
		log.Fatalf("register: %v", err)
	}
	fmt.Printf("registered machine models: %v\n\n", javasim.MachineNames())

	eng := javasim.NewEngine()
	spec, ok := javasim.LookupWorkload("server")
	if !ok {
		log.Fatal("server model missing")
	}
	spec = spec.Scale(0.05)

	threadCounts := []int{8, 16, 32, 48}
	models := []string{
		javasim.MachineOpteron6168,
		javasim.MachineSparcT3,
		javasim.MachineOpteron6168BW,
	}

	fmt.Printf("server scale 0.05, seed 42 — total time by machine model\n\n")
	fmt.Printf("%-16s", "machine")
	for _, n := range threadCounts {
		fmt.Printf(" %10s", fmt.Sprintf("t=%d", n))
	}
	fmt.Printf(" %12s\n", "bw-stall@48")
	for _, mdl := range models {
		fmt.Printf("%-16s", mdl)
		var last *javasim.Result
		for _, n := range threadCounts {
			cfg := javasim.Config{Threads: n, Seed: 42, MachineName: mdl}
			res, err := eng.Run(context.Background(), spec, cfg)
			if err != nil {
				log.Fatalf("%s @ %d: %v", mdl, n, err)
			}
			fmt.Printf(" %10v", res.TotalTime)
			last = res
		}
		fmt.Printf(" %12v\n", last.MemBWStall)
	}

	// The desktop model has only 8 cores; the machine caps the sweep.
	cfg := javasim.Config{Threads: 8, Seed: 42, MachineName: "desktop-8"}
	res, err := eng.Run(context.Background(), spec, cfg)
	if err != nil {
		log.Fatalf("desktop-8: %v", err)
	}
	fmt.Printf("%-16s %10v (8 cores, single socket — no NUMA penalty at all)\n",
		"desktop-8", res.TotalTime)

	fmt.Println("\nreading the results:")
	fmt.Println(" - sparc-t3-4 tracks the Opteron while every core runs at most two")
	fmt.Println("   strands (issue width 2), then knees at 48 threads: three runnable")
	fmt.Println("   strands now share each 2-wide pipeline, so per-thread speed drops")
	fmt.Println("   to 2/3 and the extra threads stop paying for themselves.")
	fmt.Println(" - opteron-6168-bw is slower everywhere: the allocation-heavy server")
	fmt.Println("   workload saturates the per-socket memory channel, and the queued")
	fmt.Println("   traffic surfaces as bw-stall time and a bw-share factor term.")
	fmt.Println(" - the hardware ceiling is a property of the machine, not the")
	fmt.Println("   application — the same JVM and workload scale, knee, or stall")
	fmt.Println("   depending only on which model the plan names.")
}
