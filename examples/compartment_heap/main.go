// Compartmentalized heap + biased scheduling: the paper's two future-work
// proposals (§IV), run as ablations against the same baseline.
//
// Suggestion 1 staggers worker-thread groups in time (phase-biased
// scheduling) to reduce lifetime interference between threads.
// Suggestion 2 splits eden into per-thread-group compartments so a
// collection only disturbs one group's objects, shortening pauses.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
	"javasim/internal/sim"
)

const threads = 48

// The three ablation runs share one engine, so a repeated baseline
// configuration would be answered from the memoizing cache.
var eng = javasim.NewEngine()

func run(label string, mutate func(*javasim.Config)) *javasim.Result {
	spec, ok := javasim.LookupWorkload("xalan")
	if !ok {
		log.Fatal("xalan model missing")
	}
	cfg := javasim.Config{Threads: threads, Seed: 42}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := eng.Run(context.Background(), spec.Scale(0.5), cfg)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	return res
}

func maxPause(res *javasim.Result) javasim.Time {
	var m javasim.Time
	for _, p := range res.GCPauses {
		if p.Duration > m {
			m = p.Duration
		}
	}
	return m
}

func main() {
	base := run("baseline", nil)
	biased := run("biased", func(c *javasim.Config) {
		c.Sched.Bias.Groups = 2
		c.Sched.Bias.PhaseLength = 2 * sim.Millisecond
	})
	comp := run("compartments", func(c *javasim.Config) {
		c.Compartments = 4
	})

	fmt.Printf("xalan @ %d threads — paper §IV ablations\n\n", threads)
	fmt.Printf("%-26s %14s %14s %14s\n", "", "baseline", "biased-sched", "compartments")
	row := func(name string, f func(*javasim.Result) string) {
		fmt.Printf("%-26s %14s %14s %14s\n", name, f(base), f(biased), f(comp))
	}
	row("total time", func(r *javasim.Result) string { return r.TotalTime.String() })
	row("gc time", func(r *javasim.Result) string { return r.GCTime.String() })
	row("mean gc pause", func(r *javasim.Result) string {
		if len(r.GCPauses) == 0 {
			return "-"
		}
		return (r.GCTime / javasim.Time(len(r.GCPauses))).String()
	})
	row("max gc pause", func(r *javasim.Result) string { return maxPause(r).String() })
	row("collections", func(r *javasim.Result) string { return fmt.Sprint(len(r.GCPauses)) })
	row("%objects <1KB", func(r *javasim.Result) string {
		return fmt.Sprintf("%.1f%%", 100*r.Lifespans.FractionBelow(1024))
	})
	row("lock contentions", func(r *javasim.Result) string { return fmt.Sprint(r.LockContentions) })
	row("utilization", func(r *javasim.Result) string { return fmt.Sprintf("%.2f", r.Utilization) })

	fmt.Println("\nreading the results against the paper's hypotheses:")
	fmt.Println(" - biased scheduling: fewer threads allocate concurrently, so object")
	fmt.Println("   lifespans shorten (%<1KB rises) and contention drops, at the cost")
	fmt.Println("   of idle cores while a group is gated.")
	fmt.Println(" - compartments: each collection covers one eden slice, so individual")
	fmt.Println("   pauses shrink even though the collection count rises.")
}
