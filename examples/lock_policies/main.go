// Example lock_policies A/Bs two contended-monitor disciplines on the
// server workload: the paper's baseline FIFO park/handoff against Dice &
// Kogan-style concurrency restriction ("restricted"), which caps the
// threads circulating over a hot monitor and parks the excess upstream of
// the contended-enter probe. The printed delta is the Figure 1b statistic
// — contention growth across the thread sweep — which restriction tames
// while the default discipline lets it compound.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

func main() {
	eng := javasim.NewEngine()
	spec, ok := javasim.LookupWorkload("server")
	if !ok {
		log.Fatal("server workload missing from registry")
	}
	spec = spec.Scale(0.1)
	counts := []int{4, 32}

	growth := func(policy string) float64 {
		cfg := javasim.Config{Seed: 42, LockPolicy: policy}
		sw, err := eng.Sweep(context.Background(), spec, javasim.SweepConfig{
			ThreadCounts: counts,
			Base:         cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		f := sw.ComputeFactors()
		first := sw.Points[0].Result
		last := sw.Points[len(sw.Points)-1].Result
		fmt.Printf("%-14s contentions %4d -> %4d across %v threads (growth %.2fx)\n",
			policy+":", first.LockContentions, last.LockContentions, counts, f.ContentionGrowth)
		return f.ContentionGrowth
	}

	fifo := growth(javasim.LockPolicyFIFO)
	restricted := growth(javasim.LockPolicyRestricted)
	fmt.Printf("\ncontention-growth delta (fifo - restricted): %.2fx\n", fifo-restricted)
	if restricted < fifo {
		fmt.Println("restricting concurrency tames the Figure 1b curve: gated threads never fire the contended-enter probe")
	}
}
