// Scalability study: the paper's core experiment end to end. Sweeps all
// six DaCapo models across thread counts with cores = threads, classifies
// each as scalable or non-scalable (§II-C), and prints the factor
// decomposition that explains *why* — sequential fraction, lock
// contention growth, GC share growth, lifespan shift, and work imbalance.
//
// The whole study runs through one javasim.Engine: sweeps execute on a
// bounded worker pool, an observer streams progress as sweeps complete,
// and the two tables plus the drill-down share one set of memoized
// sweeps — the engine simulates each (workload, thread count) exactly
// once.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"javasim"
)

func main() {
	ctx := context.Background()
	eng := javasim.NewEngine(
		javasim.WithParallelism(4),
		javasim.WithObserver(javasim.ObserverFunc(func(ev javasim.Event) {
			if ev.Kind == javasim.SweepDone {
				fmt.Fprintf(os.Stderr, "sweep done: %s\n", ev.Workload)
			}
		})),
	)

	// Scale 0.5 halves each workload so the whole study runs in seconds;
	// pass Scale: 1 for the full-size runs.
	suite := eng.Suite(javasim.ExperimentConfig{
		ThreadCounts: []int{4, 8, 16, 32, 48},
		Scale:        0.5,
		Seed:         42,
	})

	classification, err := suite.ClassificationTable(ctx)
	if err != nil {
		log.Fatal(err)
	}
	classification.WriteASCII(os.Stdout)
	fmt.Println()

	factors, err := suite.FactorsTable(ctx)
	if err != nil {
		log.Fatal(err)
	}
	factors.WriteASCII(os.Stdout)
	fmt.Println()

	// Drill into one scalable workload: show the paper's headline series.
	// The sweep is memoized — this re-uses the simulations above.
	sw, err := suite.SweepFor(ctx, "xalan")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("xalan detail (speedup | mutator | gc | contentions | objects dying <1KB):")
	speedups := sw.Curve().Speedups()
	cdf := sw.CDFBelow(1024)
	for i, p := range sw.Points {
		fmt.Printf("  t=%-3d %5.2fx  %10v  %10v  %8d  %5.1f%%\n",
			p.Threads, speedups[i],
			p.Result.MutatorTime, p.Result.GCTime,
			p.Result.LockContentions, 100*cdf[i])
	}

	st := eng.Stats()
	fmt.Printf("\nengine: %d simulations, %d cache hits\n", st.Simulations, st.CacheHits)
}
