// Lock profiling: attach the DTrace-equivalent lock profiler (paper
// §II-B) to runs of a scalable and a non-scalable benchmark and contrast
// their per-lock behavior — the mechanism behind Figures 1a and 1b.
//
// xalan's work-queue and output locks heat up as threads scale; jython's
// interpreter lock is already saturated by its 3 worker threads, so its
// counters barely move.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"javasim"
)

// One engine serves every profiled run; runs carrying a LockProfiler
// bypass the result cache, since their value is the profiler's stream.
var eng = javasim.NewEngine()

func profile(name string, threads int) {
	spec, ok := javasim.LookupWorkload(name)
	if !ok {
		log.Fatalf("unknown benchmark %s", name)
	}
	prof := javasim.NewLockProfiler()
	res, err := eng.Run(context.Background(), spec.Scale(0.5), javasim.Config{
		Threads:      threads,
		Seed:         42,
		LockProfiler: prof,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s @ %d threads (total %v) ===\n", name, threads, res.TotalTime)
	prof.Report(os.Stdout, 5)
	sum := prof.Summary()
	fmt.Printf("aggregate: mean contended wait %v, total wait %v\n\n", sum.MeanWait, sum.TotalWait)
}

func main() {
	for _, threads := range []int{4, 48} {
		profile("xalan", threads)
	}
	for _, threads := range []int{4, 48} {
		profile("jython", threads)
	}
	fmt.Println("observation: xalan's acquisitions AND contentions grow with threads;")
	fmt.Println("jython's are identical at 4 and 48 threads — only 3 threads ever run.")
}
