// Quickstart: run one benchmark on the simulated 48-core JVM and read the
// three measurements the paper is built on — the mutator/GC time split,
// the lock counters, and the object-lifespan distribution.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

func main() {
	// Pick one of the six DaCapo models. xalan is the paper's Figure 1d
	// subject: a scalable XSLT transformer with a hot shared work queue.
	spec, ok := javasim.LookupWorkload("xalan")
	if !ok {
		log.Fatal("xalan model missing")
	}

	// All simulation goes through an Engine: it bounds how many
	// simulations run at once, memoizes results, and honors context
	// cancellation. The zero-value Config reproduces the paper's setup: a
	// four-socket Opteron 6168, cores = threads, heap at 3x the minimum
	// requirement, HotSpot's throughput collector. Seeded runs are
	// bit-for-bit reproducible.
	eng := javasim.NewEngine()
	res, err := eng.Run(context.Background(), spec, javasim.Config{Threads: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on %d threads/%d cores\n", res.Workload, res.Threads, res.Cores)
	fmt.Printf("  total     %v\n", res.TotalTime)
	fmt.Printf("  mutator   %v\n", res.MutatorTime)
	fmt.Printf("  gc        %v (%.1f%% of run, %d minor + %d full collections)\n",
		res.GCTime, 100*res.GCShare(), res.GCStats.MinorCount, res.GCStats.FullCount)
	fmt.Printf("  locks     %d acquisitions, %d contended\n",
		res.LockAcquisitions, res.LockContentions)
	fmt.Printf("  objects   %d allocated; %.1f%% died within 1KB of allocation\n",
		res.ObjectsAllocated, 100*res.Lifespans.FractionBelow(1024))
}
