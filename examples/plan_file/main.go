// Plan file: the declarative route through the framework. The experiment
// matrix — which workloads, which thread counts, which JVM-config
// ablations, which reports — lives in plan.json as data, not Go code.
// javasim.LoadPlan validates it (unknown fields, unknown workload
// references, and malformed scenarios are rejected with precise errors),
// and Engine.RunPlan executes every scenario through the bounded worker
// pool, deduplicating and memoizing overlapping points.
//
// The same file runs unchanged from the command line:
//
//	javasim -plan examples/plan_file/plan.json
//
// and the paper's entire figure suite is itself such a plan — see
// javasim.PaperPlan.
package main

import (
	"context"
	_ "embed"
	"fmt"
	"log"
	"os"
	"strings"

	"javasim"
)

//go:embed plan.json
var planJSON string

func main() {
	plan, err := javasim.LoadPlan(strings.NewReader(planJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan %q: %d scenarios, %d reports\n\n", plan.Name, len(plan.Scenarios), len(plan.Reports))

	eng := javasim.NewEngine(javasim.WithParallelism(4))
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}

	for i, t := range pr.Tables() {
		if i > 0 {
			fmt.Println()
		}
		if err := t.WriteASCII(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	// The scenario results stay programmatically accessible alongside the
	// rendered tables — here, the raw sweep behind the "store" rows.
	store := pr.Scenario("store").Sweep()
	c := store.Classify(2.0)
	fmt.Printf("\nstore verdict: max speedup %.2fx @%d threads — %s\n",
		c.MaxSpeedup, c.AtThreads,
		map[bool]string{true: "SCALABLE", false: "NON-SCALABLE"}[c.Scalable])

	st := eng.Stats()
	fmt.Printf("engine: %d simulations, %d cache hits\n", st.Simulations, st.CacheHits)
}
