// Example gc_policies A/Bs the four collection disciplines on the same
// GC-bound workload (xalan, the paper's clearest lifespan-stretch case)
// at a high thread count: the paper's stop-the-world throughput collector
// ("stw-serial"), an explicitly synchronized parallel collector whose
// per-worker coordination tax grows with the core count ("stw-parallel",
// the CMSSW-style GC-bound scaling collapse), a mostly-concurrent
// collector that converts pause time into background CPU ("concurrent"),
// and per-thread-group NUMA-homed heap compartments ("compartment", the
// paper's §IV suggestion 2). The printed per-phase split shows *where*
// each discipline spends its stop-the-world time.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

const threads = 32

func main() {
	eng := javasim.NewEngine()
	spec, ok := javasim.LookupWorkload("xalan")
	if !ok {
		log.Fatal("xalan model missing")
	}
	spec = spec.Scale(0.1)

	results := make(map[string]*javasim.Result)
	for _, policy := range javasim.GCPolicyNames() {
		cfg := javasim.Config{Threads: threads, Seed: 42, HeapFactor: 1.6, GCPolicy: policy}
		if policy == javasim.GCPolicyConcurrent {
			cfg.GC.TriggerRatio = 0.5
		}
		res, err := eng.Run(context.Background(), spec, cfg)
		if err != nil {
			log.Fatalf("%s: %v", policy, err)
		}
		results[policy] = res
	}

	fmt.Printf("xalan @ %d threads, 1.6x heap — GC policy ablation\n\n", threads)
	fmt.Printf("%-14s %10s %10s %6s %12s %12s %10s\n",
		"policy", "total", "stw-gc", "gcs", "max-pause", "conc-cpu", "setup-share")
	for _, policy := range javasim.GCPolicyNames() {
		r := results[policy]
		var maxPause javasim.Time
		for _, p := range r.GCPauses {
			if p.Duration > maxPause {
				maxPause = p.Duration
			}
		}
		setupShare := 0.0
		if total := r.GCPhases.Total(); total > 0 {
			setupShare = float64(r.GCPhases.Setup) / float64(total)
		}
		fmt.Printf("%-14s %10v %10v %6d %12v %12v %9.0f%%\n",
			policy, r.TotalTime, r.GCTime, len(r.GCPauses), maxPause,
			r.ConcGCCPUTime, 100*setupShare)
	}

	fmt.Println("\nreading the results:")
	fmt.Println(" - stw-parallel: the per-worker fork/join tax rides the parallel scan")
	fmt.Println("   and copy phases, so their share balloons (setup-share falls) and")
	fmt.Println("   total pause time grows with the machine — GC-bound collapse.")
	fmt.Println(" - concurrent: full collections become background cycles; max pause")
	fmt.Println("   collapses while conc-cpu records the mutator-overlap cost.")
	fmt.Println(" - compartment: many short socket-local collections replace few global")
	fmt.Println("   ones (fixed setup dominates), and NUMA-homed regions discount the")
	fmt.Println("   evacuation phase.")
}
