// Serving: the daemon workflow end to end, in one process. A
// serve.Server — the same engine-plus-HTTP layer behind cmd/javasimd —
// is started on an ephemeral port with a content-addressed disk store,
// and this program then acts as a plain HTTP client: it POSTs a plan,
// follows the job's server-sent-event stream, downloads the rendered
// artifacts, and re-submits the identical plan to show the second run
// simulating nothing — every sweep point answered from the cache tiers.
//
// Against a real daemon the client half is the same three requests:
//
//	javasimd -addr :8077 -store /var/lib/javasim/store &
//	curl -X POST --data-binary @plan.json localhost:8077/v1/plans
//	curl localhost:8077/v1/plans/p0001/events          # SSE until job-done
//	curl localhost:8077/v1/plans/p0001/artifacts?format=text
//
// See docs/serving.md for the full API, store layout, and sharding.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"javasim"
	"javasim/internal/serve"
)

const plan = `{
	"Name": "serving-demo",
	"Seed": 42,
	"Scale": 0.05,
	"ThreadCounts": [2, 4, 8],
	"Scenarios": [
		{"Name": "xalan", "Workload": "xalan", "Outputs": ["sweep"]},
		{"Name": "h2", "Workload": "h2"}
	],
	"Reports": [
		{"Name": "verdict", "Kind": "classification"}
	]
}`

func main() {
	// Daemon half: an engine with a disk-backed result cache, wrapped in
	// the serving layer. cmd/javasimd does exactly this around a real
	// net/http listener.
	dir, err := os.MkdirTemp("", "javasim-store-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := javasim.OpenStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	eng := javasim.NewEngine(javasim.WithDiskCache(st))
	srv, err := serve.New(serve.Options{Engine: eng, Store: st})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("daemon listening at %s, store at %s\n\n", ts.URL, dir)

	// Client half, twice: the second submission is answered entirely
	// from the result cache and disk store.
	for attempt := 1; attempt <= 2; attempt++ {
		job := submit(ts.URL)
		final := followEvents(ts.URL, job)
		fmt.Printf("run %d: job %s %s — %d simulated, %d served from cache\n",
			attempt, final.ID, final.State, final.Simulated, final.Cached)
		if attempt == 1 {
			fetchArtifacts(ts.URL, job)
		}
	}

	cs := eng.CacheStats()
	fmt.Printf("\nengine cache tiers: %d misses, %d memory hits, %d disk writes; store holds %d entries\n",
		cs.Misses, cs.MemoryHits, cs.DiskWrites, st.Len())
}

type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Simulated int64  `json:"simulated"`
	Cached    int64  `json:"cached"`
}

func submit(base string) string {
	resp, err := http.Post(base+"/v1/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: status %d", resp.StatusCode)
	}
	var j jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		log.Fatal(err)
	}
	return j.ID
}

// followEvents streams the job's SSE feed until its terminal frame,
// counting event kinds along the way.
func followEvents(base, id string) jobStatus {
	resp, err := http.Get(base + "/v1/plans/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	counts := map[string]int{}
	var name string
	var final jobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			counts[name]++
		case strings.HasPrefix(line, "data: ") && strings.HasPrefix(name, "job-"):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &final); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("  events: %d run-started, %d run-cached, %d sweep-point-done\n",
		counts["run-started"], counts["run-cached"], counts["sweep-point-done"])
	return final
}

func fetchArtifacts(base, id string) {
	resp, err := http.Get(base + "/v1/plans/" + id + "/artifacts")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var art struct {
		Tables []struct {
			Title string `json:"title"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&art); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  artifacts: %d tables —", len(art.Tables))
	for _, t := range art.Tables {
		fmt.Printf(" %q", t.Title)
	}
	fmt.Println()
}
