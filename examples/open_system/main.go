// Example open_system drives the simulator's open-system model: instead
// of N threads looping over a fixed work pool, a Poisson arrival process
// offers requests at a configured rate to a fixed server pool, and the
// interesting measurements are per-request — latency percentiles, queue
// depth, and goodput (completed work per second, excluding requests that
// abandoned past their deadline).
//
// The study sweeps a lock-hot service across offered rates under the
// baseline FIFO lock discipline and Dice & Kogan-style concurrency
// restriction. The workload charges a 5µs ContentionCost for every
// contended-slow-path unpark, so the disciplines separate in the time
// domain: fifo pays the charge on every contended acquire and knees
// early, while restricted's admission gate parks surplus threads without
// the probe-firing slow path and sustains goodput well past fifo's
// saturation rate. This is the programmatic twin of
// testdata/open_system.json.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

func main() {
	eng := javasim.NewEngine()
	spec, ok := javasim.LookupWorkload("server")
	if !ok {
		log.Fatal("server workload missing from registry")
	}
	// Make the service lock-hot: a single shared monitor, two critical
	// sections per request, and a realistic unpark round trip on the
	// contended slow path.
	spec.Name = "server-hot"
	spec.SharedLocks = 1
	spec.LockOpsPerUnit = 2
	spec.LockHold = 2 * javasim.Microsecond
	spec.UnitCompute = 20 * javasim.Microsecond
	spec.ContentionCost = 5 * javasim.Microsecond

	rates := []float64{50000, 100000, 200000, 400000}
	for _, policy := range []string{javasim.LockPolicyFIFO, javasim.LockPolicyRestricted} {
		fmt.Printf("%s:\n", policy)
		for _, rate := range rates {
			res, err := eng.Run(context.Background(), spec, javasim.Config{
				Threads:    16,
				Seed:       42,
				LockPolicy: policy,
				Traffic: javasim.TrafficConfig{
					Process:    javasim.ArrivalPoisson,
					RatePerSec: rate,
					Requests:   3000,
					Timeout:    2 * javasim.Millisecond,
				},
			})
			if err != nil {
				log.Fatal(err)
			}
			st := res.Traffic
			fmt.Printf("  %7.0f req/s offered: goodput %7.0f req/s, %4d timed out, p50 %-10v p99 %-10v p99.9 %v\n",
				rate, st.GoodputPerSec(res.TotalTime), st.TimedOut,
				javasim.Time(st.Latency.Percentile(50)),
				javasim.Time(st.Latency.Percentile(99)),
				javasim.Time(st.Latency.Percentile(99.9)))
		}
	}
	fmt.Println("\npast the knee, restricted's admission gate keeps the circulating set off the")
	fmt.Println("contended slow path, so the unpark charge — and the deadline — hit far fewer requests")
}
