// GC and object lifetimes: reproduce the paper's §III-B mechanism on one
// workload. Captures an Elephant-Tracks-style trace, derives the lifespan
// CDF at a low and a high thread count, and shows how the stretched
// lifespans surface as heavier nursery survival and longer collections —
// the causal chain behind Figures 1c/1d and 2.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

const workloadName = "xalan"

// Trace-carrying runs bypass the engine's cache: their product is the
// event stream, which a memoized Result could not replay.
var eng = javasim.NewEngine()

func runAt(threads int) (*javasim.Result, *javasim.MemoryTrace) {
	spec, ok := javasim.LookupWorkload(workloadName)
	if !ok {
		log.Fatalf("unknown benchmark %s", workloadName)
	}
	var sink javasim.MemoryTrace
	res, err := eng.Run(context.Background(), spec.Scale(0.5), javasim.Config{
		Threads:   threads,
		Seed:      42,
		TraceSink: &sink,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res, &sink
}

func main() {
	low, lowTrace := runAt(4)
	high, highTrace := runAt(48)

	fmt.Printf("%s lifespan CDF (%% of objects with lifespan < X bytes):\n", workloadName)
	fmt.Printf("%-12s %12s %12s\n", "lifespan <", "4 threads", "48 threads")
	for _, lim := range []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20} {
		fmt.Printf("%-12d %11.1f%% %11.1f%%\n", lim,
			100*low.Lifespans.FractionBelow(lim),
			100*high.Lifespans.FractionBelow(lim))
	}

	fmt.Printf("\nGC consequences of the lifespan stretch:\n")
	fmt.Printf("%-28s %12s %12s\n", "", "4 threads", "48 threads")
	fmt.Printf("%-28s %12d %12d\n", "minor collections", low.GCStats.MinorCount, high.GCStats.MinorCount)
	fmt.Printf("%-28s %12d %12d\n", "full collections", low.GCStats.FullCount, high.GCStats.FullCount)
	fmt.Printf("%-28s %12.2f %12.2f\n", "survivor bytes copied (MB)",
		mb(low.GCStats.CopiedBytes), mb(high.GCStats.CopiedBytes))
	fmt.Printf("%-28s %12.2f %12.2f\n", "bytes promoted (MB)",
		mb(low.GCStats.PromotedBytes), mb(high.GCStats.PromotedBytes))
	fmt.Printf("%-28s %12v %12v\n", "total GC time", low.GCTime, high.GCTime)
	fmt.Printf("%-28s %12v %12v\n", "mutator time", low.MutatorTime, high.MutatorTime)

	fmt.Printf("\ntrace sizes: %d events at 4 threads, %d at 48 (same workload, same objects)\n",
		len(lowTrace.Events), len(highTrace.Events))
	fmt.Println("\nobservation: the same objects live through more of *other* threads'")
	fmt.Println("allocation at 48 threads, so more survive the nursery, more are")
	fmt.Println("promoted, and GC time rises even as mutator time keeps falling.")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
