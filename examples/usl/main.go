// USL fitting: condense a whole sweep into two numbers. The Universal
// Scalability Law C(N) = N / (1 + sigma*(N-1) + kappa*N*(N-1)) models
// throughput with a contention term (sigma — serialized fractions, lock
// queues) and a coherency term (kappa — pairwise costs like GC and
// bandwidth that grow with N^2). Fitting it to a simulated sweep gives
// an analytic cross-check of the paper's ablation-style factor table:
// the same bottleneck story, recovered from the throughput curve alone.
//
// The fit also extrapolates: kappa > 0 predicts a finite peak thread
// count N* = floor(sqrt((1-sigma)/kappa)) beyond which adding threads
// loses throughput — a number the paper's measured curves can only hint
// at.
package main

import (
	"context"
	"fmt"
	"log"

	"javasim"
)

func main() {
	ctx := context.Background()
	eng := javasim.NewEngine(javasim.WithParallelism(4))

	// One scalable workload, one the paper calls serialization-bound,
	// and one GC-bound: three different loss mechanisms, three fits.
	for _, name := range []string{"xalan", "h2", "jython"} {
		spec, ok := javasim.LookupWorkload(name)
		if !ok {
			log.Fatalf("workload %q missing", name)
		}
		sw, err := eng.Sweep(ctx, spec.Scale(0.05), javasim.SweepConfig{
			ThreadCounts: []int{2, 4, 8, 16},
		})
		if err != nil {
			log.Fatal(err)
		}

		f, err := sw.FitUSL()
		if err != nil {
			log.Fatal(err)
		}
		m := f.Best() // residual-selected: USL, or Amdahl when kappa ~ 0

		fmt.Printf("%s — preferred %s: sigma=%.4f kappa=%.6f R2=%.4f\n",
			name, m.Kind, m.Sigma, m.Kappa, m.R2)
		if peak := m.PeakN(); peak > 0 {
			fmt.Printf("  predicted peak at N* = %d threads\n", peak)
		} else {
			fmt.Println("  saturates without a finite peak (no coherency term)")
		}

		// Predicted vs measured over the sweep, then extrapolated past it.
		xs := sw.Throughputs()
		for i, p := range sw.Points {
			pred := m.Predict(float64(p.Threads))
			fmt.Printf("  t=%-3d measured %9.1f/s  model %9.1f/s  (%+.1f%%)\n",
				p.Threads, xs[i], pred, 100*(pred-xs[i])/xs[i])
		}
		fmt.Printf("  t=64  extrapolated %9.1f/s\n\n", m.Predict(64))
	}

	st := eng.Stats()
	fmt.Printf("engine: %d simulations, %d cache hits\n", st.Simulations, st.CacheHits)
}
