// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation (DESIGN.md experiment index E1-E9), plus end-to-end
// VM benchmarks. Each figure benchmark regenerates its artifact at reduced
// scale and reports the figure's headline statistic via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a shape check:
//
//	E1 Fig1a  acq-growth-x      lock acquisitions, last/first thread count
//	E2 Fig1b  cont-growth-x     lock contentions, last/first
//	E3 Fig1c  cdf1k-shift-pt    eclipse CDF@1KB shift (flat expected)
//	E4 Fig1d  cdf1k-shift-pt    xalan CDF@1KB drop (large expected)
//	E5 Fig2   gc-growth-x       GC time growth for the scalable trio
//	E6 class  match-frac        classification agreement with the paper
//	E7 dist   top4-share        work concentration for non-scalable apps
//	E8/E9     ablation deltas
package javasim_test

import (
	"context"
	"testing"

	"javasim"
	"javasim/internal/metrics"
)

var benchCtx = context.Background()

// benchSuite builds a reduced-scale suite mirroring the paper's sweep
// shape; scale 0.15 keeps one full regeneration under a second. Each call
// constructs a fresh engine so every benchmark iteration simulates from a
// cold cache — otherwise the memoizing engine would turn iterations 2..N
// into cache-lookup measurements.
func benchSuite() *javasim.Suite {
	return javasim.NewEngine().Suite(javasim.ExperimentConfig{
		ThreadCounts: []int{4, 16, 48},
		Scale:        0.15,
		Seed:         42,
	})
}

func sweepOrFatal(b *testing.B, s *javasim.Suite, name string) *javasim.Sweep {
	b.Helper()
	sw, err := s.SweepFor(benchCtx, name)
	if err != nil {
		b.Fatal(err)
	}
	return sw
}

// BenchmarkFig1aLockAcquisitions regenerates Figure 1a (E1).
func BenchmarkFig1aLockAcquisitions(b *testing.B) {
	b.ReportAllocs()
	var growth float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig1a(benchCtx); err != nil {
			b.Fatal(err)
		}
		growth = metrics.GrowthFactor(sweepOrFatal(b, s, "xalan").Acquisitions())
	}
	b.ReportMetric(growth, "xalan-acq-growth-x")
}

// BenchmarkFig1bLockContentions regenerates Figure 1b (E2).
func BenchmarkFig1bLockContentions(b *testing.B) {
	b.ReportAllocs()
	var growth float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig1b(benchCtx); err != nil {
			b.Fatal(err)
		}
		growth = metrics.GrowthFactor(sweepOrFatal(b, s, "xalan").Contentions())
	}
	b.ReportMetric(growth, "xalan-cont-growth-x")
}

// BenchmarkFig1cEclipseLifetimes regenerates Figure 1c (E3).
func BenchmarkFig1cEclipseLifetimes(b *testing.B) {
	b.ReportAllocs()
	var shift float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig1c(benchCtx); err != nil {
			b.Fatal(err)
		}
		cdf := sweepOrFatal(b, s, "eclipse").CDFBelow(1024)
		shift = 100 * (cdf[0] - cdf[len(cdf)-1])
	}
	b.ReportMetric(shift, "eclipse-cdf1k-shift-pt")
}

// BenchmarkFig1dXalanLifetimes regenerates Figure 1d (E4).
func BenchmarkFig1dXalanLifetimes(b *testing.B) {
	b.ReportAllocs()
	var shift float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig1d(benchCtx); err != nil {
			b.Fatal(err)
		}
		cdf := sweepOrFatal(b, s, "xalan").CDFBelow(1024)
		shift = 100 * (cdf[0] - cdf[len(cdf)-1])
	}
	b.ReportMetric(shift, "xalan-cdf1k-shift-pt")
}

// BenchmarkFig2MutatorGC regenerates Figure 2 (E5).
func BenchmarkFig2MutatorGC(b *testing.B) {
	b.ReportAllocs()
	var gcGrowth float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.Fig2(benchCtx); err != nil {
			b.Fatal(err)
		}
		gcGrowth = metrics.GrowthFactor(sweepOrFatal(b, s, "xalan").GCSeconds())
	}
	b.ReportMetric(gcGrowth, "xalan-gc-growth-x")
}

// BenchmarkTableClassification regenerates the §II-C table (E6).
func BenchmarkTableClassification(b *testing.B) {
	b.ReportAllocs()
	var matches float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.ClassificationTable(benchCtx); err != nil {
			b.Fatal(err)
		}
		matches = 0
		for _, spec := range javasim.PaperBenchmarks() {
			if sweepOrFatal(b, s, spec.Name).Classify(2.0).Matches() {
				matches++
			}
		}
		matches /= 6
	}
	b.ReportMetric(matches, "paper-match-frac")
}

// BenchmarkTableWorkDistribution regenerates the §III observation (E7).
func BenchmarkTableWorkDistribution(b *testing.B) {
	b.ReportAllocs()
	var top4 float64
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		if _, err := s.WorkDistributionTable(benchCtx); err != nil {
			b.Fatal(err)
		}
		top4 = sweepOrFatal(b, s, "jython").ComputeFactors().Top4Share
	}
	b.ReportMetric(top4, "jython-top4-share")
}

// BenchmarkAblationBiasedScheduling regenerates the §IV suggestion-1
// ablation (E8).
func BenchmarkAblationBiasedScheduling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().AblationBias(benchCtx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCompartmentHeap regenerates the §IV suggestion-2
// ablation (E9).
func BenchmarkAblationCompartmentHeap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite().AblationCompartments(benchCtx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMRun measures raw simulator throughput: one xalan run per
// iteration at a fixed configuration, reporting simulated-vs-real speed.
func BenchmarkVMRun(b *testing.B) {
	b.ReportAllocs()
	spec, _ := javasim.LookupWorkload("xalan")
	spec = spec.Scale(0.1)
	eng := javasim.NewEngine(javasim.WithCache(0)) // uncached: measure simulation, not lookups
	var virtualNS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(benchCtx, spec, javasim.Config{Threads: 8, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		virtualNS = float64(res.TotalTime)
	}
	b.ReportMetric(virtualNS, "virtual-ns/run")
}

// BenchmarkSweepWarmStart measures what warm-start snapshots buy a
// sweep: the same three-point thread sweep cold (DisableSnapshot: every
// point regenerates its workload units from scratch) and warm (every
// point forks from one shared pre-generated tape). Engines are uncached
// so each iteration simulates every point; warm must beat cold.
func BenchmarkSweepWarmStart(b *testing.B) {
	spec, _ := javasim.LookupWorkload("xalan")
	spec = spec.Scale(0.1)
	sweep := func(disable bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := javasim.NewEngine(javasim.WithCache(0))
				_, err := eng.Sweep(benchCtx, spec, javasim.SweepConfig{
					ThreadCounts: []int{2, 8, 32},
					Base:         javasim.Config{Seed: 42, DisableSnapshot: disable},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cold", sweep(true))
	b.Run("warm", sweep(false))
}

// BenchmarkVMRunManycore exercises the full 48-core configuration.
func BenchmarkVMRunManycore(b *testing.B) {
	b.ReportAllocs()
	spec, _ := javasim.LookupWorkload("sunflow")
	spec = spec.Scale(0.1)
	eng := javasim.NewEngine(javasim.WithCache(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(benchCtx, spec, javasim.Config{Threads: 48, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
