package locks

import (
	"testing"

	"javasim/internal/sim"
)

// BenchmarkUncontendedAcquireRelease measures the monitor fast path.
func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	tb := NewTable(nil)
	m := tb.Create("bench")
	for i := 0; i < b.N; i++ {
		tb.Acquire(m, 1, 0)
		tb.Release(m, 1, 1)
	}
}

// BenchmarkContendedHandoff measures the slow path: a blocked waiter
// receiving ownership on every release.
func BenchmarkContendedHandoff(b *testing.B) {
	tb := NewTable(nil)
	m := tb.Create("bench")
	tb.Acquire(m, 0, 0)
	for i := 0; i < b.N; i++ {
		next := ThreadID(i%7 + 1)
		tb.Acquire(m, next, 0) // blocks
		owner := m.Owner()
		tb.Release(m, owner, 1) // hands off to next
	}
}

// BenchmarkTableContended measures the contended acquire/release hot path
// under every registered policy: eight threads hammering one monitor, the
// released thread immediately re-attempting. A regression here is
// policy-dispatch overhead leaking into the simulator's hottest loop.
func BenchmarkTableContended(b *testing.B) {
	for _, name := range PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, err := NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			tb := NewTableWithPolicy(p, nil)
			m := tb.Create("bench")
			const threads = 8
			now := sim.Time(0)
			// settle drives one attempt to rest: spins retry immediately,
			// parks stay parked until a release wakes them.
			settle := func(t ThreadID) {
				if tb.Acquire(m, t, now).Kind == Spinning {
					tb.Retry(m, t, now)
				}
			}
			for t := ThreadID(0); t < threads; t++ {
				settle(t)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now++
				owner := m.Owner()
				h := tb.Release(m, owner, now)
				for _, w := range h.Retry {
					tb.Retry(m, w.ID, now)
				}
				if m.Owner() == NoThread {
					// Everyone parked elsewhere drained; restart the herd.
					settle(owner)
					continue
				}
				settle(owner) // the released thread circles back
			}
		})
	}
}
