package locks

import "testing"

// BenchmarkUncontendedAcquireRelease measures the monitor fast path.
func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	tb := NewTable(nil)
	m := tb.Create("bench")
	for i := 0; i < b.N; i++ {
		tb.Acquire(m, 1, 0)
		tb.Release(m, 1, 1)
	}
}

// BenchmarkContendedHandoff measures the slow path: a blocked waiter
// receiving ownership on every release.
func BenchmarkContendedHandoff(b *testing.B) {
	tb := NewTable(nil)
	m := tb.Create("bench")
	tb.Acquire(m, 0, 0)
	for i := 0; i < b.N; i++ {
		next := ThreadID(i%7 + 1)
		tb.Acquire(m, next, 0) // blocks
		owner := m.Owner()
		tb.Release(m, owner, 1) // hands off to next
	}
}
