package locks

import (
	"fmt"

	"javasim/internal/registry"
	"javasim/internal/sim"
)

// The contended-path discipline — what happens when an acquisition finds
// the monitor held, and who gets it on release — is a Policy. The seed
// behavior (inflate, park FIFO, hand off directly) is the "fifo" policy;
// the alternatives model the mitigation space the paper's fixed JVM could
// not explore: competitive handoff ("barging"), bounded busy-waiting
// ("spin-then-park"), and Dice & Kogan-style concurrency restriction
// ("restricted"). Policies are stateful and per-Table: build one per VM
// through NewPolicy, never share an instance across tables.
//
// Two counters diverge once the discipline is swappable. The Listener's
// contended flag reports the raw truth — the attempt found the monitor
// unavailable — while Monitor.Contentions models the DTrace
// monitor-contended-enter probe, which fires only when the acquiring
// thread itself executes the monitor's contended-enter path (joins the
// entry queue from a running attempt). A successful spin never executes
// it, and neither does a thread the restricted policy parks at its
// admission gate: gated threads are later promoted into the entry queue
// or granted the monitor *by the releasing thread*, without ever running
// the enter path themselves. Under the default fifo policy the probe and
// the raw flag coincide exactly, preserving the paper's Figure 1b
// semantics.

// Registry names of the built-in policies.
const (
	// PolicyFIFO parks contenders on a FIFO entry queue and transfers
	// ownership directly on release — the seed (HotSpot-style) behavior.
	PolicyFIFO = "fifo"
	// PolicyBarging frees the monitor on release and wakes every waiter to
	// re-compete: whoever dispatches first wins, latecomers may barge.
	PolicyBarging = "barging"
	// PolicySpinThenPark busy-waits a fixed virtual-time budget before
	// parking; the spin is charged as CPU, not as blocked time.
	PolicySpinThenPark = "spin-then-park"
	// PolicyRestricted caps the threads circulating over a monitor,
	// parking the excess at an admission gate upstream of the contended
	// slow path (Dice & Kogan, "Avoiding Scalability Collapse by
	// Restricting Concurrency").
	PolicyRestricted = "restricted"
)

// DefaultSpinBudget is the spin-then-park policy's busy-wait budget: a few
// multiples of the workloads' typical critical-section lengths, so short
// holds are absorbed without parking while deep queues still park.
const DefaultSpinBudget = 2 * sim.Microsecond

// DefaultRestrictedCap is the restricted policy's circulating-set size
// (owner plus entry-queue waiters). Four matches the paper's smallest
// sweep point, so low-thread runs behave exactly like fifo.
const DefaultRestrictedCap = 4

// Policy is the contended-path discipline of one monitor table. Contended
// handles an acquisition attempt that found the monitor unavailable and
// says how the thread proceeds; Released decides who (if anyone) gets the
// monitor after its outermost release. Implementations run inside the
// single-threaded simulation and must be deterministic.
type Policy interface {
	// Name returns the discipline's canonical name (for the built-ins,
	// their registry name). A tuned variant registered under a custom key
	// still reports its family name here — the name a run actually
	// selected travels in the config string and vm.Result.LockPolicy.
	Name() string
	// Contended handles thread t finding m held (or gated). retry is true
	// when this is a re-attempt after a spin or a competitive wakeup, so
	// the policy can avoid double-counting the contention probe.
	Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome
	// Released decides the fate of m after its outermost release; the
	// monitor is unowned when called. A Direct handoff grants Next
	// ownership; every Retry waiter must be woken to re-attempt via
	// Table.Retry.
	Released(tb *Table, m *Monitor, now sim.Time) Handoff
}

// --- Registry ----------------------------------------------------------

var policyRegistry = registry.New[Policy]("lock policy")

func init() {
	policyRegistry.MustRegister(PolicyFIFO, func() Policy { return FIFO() })
	policyRegistry.MustRegister(PolicyBarging, func() Policy { return Barging() })
	policyRegistry.MustRegister(PolicySpinThenPark, func() Policy { return SpinThenPark(DefaultSpinBudget) })
	policyRegistry.MustRegister(PolicyRestricted, func() Policy { return Restricted(DefaultRestrictedCap) })
}

// RegisterPolicy adds a policy factory to the registry under name. The
// factory must return a fresh instance on every call — policies hold
// per-table state. Names are unique; registering an existing name
// (including the built-ins) is an error.
func RegisterPolicy(name string, factory func() Policy) error {
	if err := policyRegistry.Register(name, factory); err != nil {
		return fmt.Errorf("locks: %w", err)
	}
	return nil
}

// NewPolicy builds a fresh instance of the named policy. The empty name
// selects the default fifo discipline.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = PolicyFIFO
	}
	p, err := policyRegistry.New(name)
	if err != nil {
		return nil, fmt.Errorf("locks: %w", err)
	}
	return p, nil
}

// KnownPolicy reports whether name resolves in the registry (the empty
// name resolves to fifo).
func KnownPolicy(name string) bool {
	return name == "" || policyRegistry.Known(name)
}

// ValidatePolicy returns the canonical unknown-name error for a policy
// name that does not resolve, or nil — the one error every
// configuration layer (plans, vm config, CLI) reports, with the same
// prefix NewPolicy uses.
func ValidatePolicy(name string) error {
	if KnownPolicy(name) {
		return nil
	}
	_, err := NewPolicy(name)
	return err
}

// PolicyNames returns every registered policy name in registration order:
// the four built-ins, then user registrations.
func PolicyNames() []string { return policyRegistry.Names() }

// --- fifo --------------------------------------------------------------

// FIFO returns the default discipline: contenders park on a FIFO entry
// queue and the head waiter receives ownership directly on release.
func FIFO() Policy { return fifoPolicy{} }

type fifoPolicy struct{}

func (fifoPolicy) Name() string { return PolicyFIFO }

func (fifoPolicy) Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome {
	m.contentions++
	m.enqueue(t, now)
	return Outcome{Kind: Parked, Contended: true}
}

func (fifoPolicy) Released(tb *Table, m *Monitor, now sim.Time) Handoff {
	if id, since, ok := m.dequeue(); ok {
		return Handoff{Direct: true, Next: id, Since: since}
	}
	return Handoff{}
}

// --- barging -----------------------------------------------------------

// Barging returns the competitive discipline: release leaves the monitor
// free and wakes every waiter; whoever dispatches first re-acquires, and
// a thread arriving between the release and the wakeups may barge past
// the whole queue. Unfair, but with no handoff latency.
func Barging() Policy { return bargingPolicy{} }

type bargingPolicy struct{}

func (bargingPolicy) Name() string { return PolicyBarging }

func (bargingPolicy) Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome {
	since := now
	if retry {
		// A woken thread that lost the race re-parks; its wait began at
		// the original attempt, and the probe already fired there. (The
		// Table deletes the retry record once this park resolves.)
		if s, ok := tb.retrySince[t]; ok {
			since = s
		}
	} else {
		m.contentions++
	}
	m.enqueue(t, since)
	return Outcome{Kind: Parked, Contended: !retry}
}

func (bargingPolicy) Released(tb *Table, m *Monitor, now sim.Time) Handoff {
	return Handoff{Retry: m.drain()}
}

// --- spin-then-park ----------------------------------------------------

// SpinThenPark returns a discipline that busy-waits up to budget of
// virtual time before parking. The spin is a CPU segment — it shows up as
// mutator time and delays safepoints by at most the budget — and a
// monitor freed during the spin is reserved for the earliest spinner at
// the instant of release, never entering the contended slow path:
// successful spins do not count as contentions. The budget doubles as
// the poll granularity — a reserved spinner starts its critical section
// at spin end, up to the remaining budget after the release — so larger
// budgets absorb more parks but respond to releases more coarsely.
// Parked threads hand off FIFO like the default policy.
func SpinThenPark(budget sim.Time) Policy {
	if budget <= 0 {
		budget = DefaultSpinBudget
	}
	return &spinThenParkPolicy{budget: budget}
}

type spinThenParkPolicy struct {
	budget sim.Time
}

func (p *spinThenParkPolicy) Name() string { return PolicySpinThenPark }

func (p *spinThenParkPolicy) Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome {
	if !retry {
		return Outcome{Kind: Spinning, Spin: p.budget}
	}
	// Spin exhausted: enter the contended slow path. The wait is measured
	// from the park — the spin was CPU, not blocking.
	m.contentions++
	m.enqueue(t, now)
	return Outcome{Kind: Parked, Contended: true}
}

func (p *spinThenParkPolicy) Released(tb *Table, m *Monitor, now sim.Time) Handoff {
	return fifoPolicy{}.Released(tb, m, now)
}

// --- restricted --------------------------------------------------------

// Restricted returns the concurrency-restricting discipline: at most cap
// threads circulate over a monitor (the owner plus its entry-queue
// waiters); the excess parks at an admission gate upstream of the
// contended slow path, so gated threads never fire the contention probe.
// Admission is FIFO through the gate, so every thread keeps making
// progress; releases backfill the entry queue from the gate as the
// circulating set drains.
func Restricted(cap int) Policy {
	if cap < 1 {
		cap = DefaultRestrictedCap
	}
	return &restrictedPolicy{cap: cap, gates: make(map[*Monitor][]Waiter)}
}

type restrictedPolicy struct {
	cap   int
	gates map[*Monitor][]Waiter // admission gate, FIFO
}

func (p *restrictedPolicy) Name() string { return PolicyRestricted }

func (p *restrictedPolicy) Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome {
	// Circulating set: the owner plus the entry-queue waiters.
	if 1+m.QueueLength() < p.cap {
		m.contentions++
		m.enqueue(t, now)
		return Outcome{Kind: Parked, Contended: true}
	}
	// Gated: set aside without executing the contended slow path, so no
	// probe and no ContentionCost — the mechanism behind restricted's
	// goodput retention under overload.
	p.gates[m] = append(p.gates[m], Waiter{ID: t, Since: now})
	return Outcome{Kind: Parked}
}

func (p *restrictedPolicy) Released(tb *Table, m *Monitor, now sim.Time) Handoff {
	h := Handoff{}
	gate := p.gates[m]
	if id, since, ok := m.dequeue(); ok {
		h = Handoff{Direct: true, Next: id, Since: since}
	} else if len(gate) > 0 {
		// Entry queue empty but threads gated: grant the gate head
		// directly — it never re-attempts, so no contention fires.
		h = Handoff{Direct: true, Next: gate[0].ID, Since: gate[0].Since}
		gate = gate[1:]
	}
	// Backfill the circulating set from the gate. Admitted threads stay
	// parked — they just wait in the entry queue now, first in line for
	// the following releases. The promotion is performed here by the
	// releasing thread, so it does not fire the contended-enter probe:
	// the gated thread never re-executes the enter path (the mechanism
	// behind restricted's flat Figure 1b curve).
	circ := 0
	if h.Direct {
		circ = 1
	}
	for circ+m.QueueLength() < p.cap && len(gate) > 0 {
		m.enqueue(gate[0].ID, gate[0].Since)
		gate = gate[1:]
	}
	p.gates[m] = gate
	return h
}
