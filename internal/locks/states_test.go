package locks

import (
	"testing"
	"testing/quick"
)

func TestBiasFastPath(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	if m.State() != StateBiasable {
		t.Fatalf("fresh monitor state %v, want biasable", m.State())
	}
	// The first thread biases the lock and keeps the fast path.
	for i := 0; i < 10; i++ {
		tb.Acquire(m, 1, 0)
		tb.Release(m, 1, 1)
	}
	if m.State() != StateBiased {
		t.Errorf("state %v after single-thread use, want biased", m.State())
	}
	if m.BiasedAcquisitions() != 10 {
		t.Errorf("biased acquisitions %d, want 10", m.BiasedAcquisitions())
	}
	if m.Revocations() != 0 {
		t.Errorf("revocations %d without a second thread", m.Revocations())
	}
}

func TestBiasRevocationOnSecondThread(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	tb.Acquire(m, 1, 0)
	tb.Release(m, 1, 1)
	// Uncontended acquisition by a different thread: revoke, go thin.
	tb.Acquire(m, 2, 2)
	if m.State() != StateThin {
		t.Errorf("state %v, want thin", m.State())
	}
	if m.Revocations() != 1 {
		t.Errorf("revocations %d, want 1", m.Revocations())
	}
	tb.Release(m, 2, 3)
	// Further alternation stays thin while uncontended.
	tb.Acquire(m, 1, 4)
	tb.Release(m, 1, 5)
	if m.State() != StateThin {
		t.Errorf("state %v after alternation, want thin", m.State())
	}
	if m.BiasedAcquisitions() != 1 {
		t.Errorf("biased acquisitions %d, want 1 (only the first)", m.BiasedAcquisitions())
	}
}

func TestInflationOnContention(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	tb.Acquire(m, 1, 0)
	tb.Acquire(m, 2, 1) // contends while held
	if m.State() != StateInflated {
		t.Errorf("state %v, want inflated", m.State())
	}
	// Escalate-only: releasing everything never deflates.
	tb.Release(m, 1, 2)
	tb.Release(m, 2, 3)
	tb.Acquire(m, 1, 4)
	tb.Release(m, 1, 5)
	if m.State() != StateInflated {
		t.Error("monitor deflated — HotSpot 7 semantics are escalate-only")
	}
}

func TestBiasedContentionRevokesAndInflates(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	tb.Acquire(m, 1, 0) // biased to 1, held
	tb.Acquire(m, 2, 1) // revocation + inflation in one step
	if m.State() != StateInflated {
		t.Errorf("state %v, want inflated", m.State())
	}
	if m.Revocations() != 1 {
		t.Errorf("revocations %d, want 1", m.Revocations())
	}
}

// Property: lock states only escalate (biasable <= biased <= thin <=
// inflated in acquisition order), and at most one revocation per monitor.
func TestStateEscalationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tb := NewTable(nil)
		m := tb.Create("prop")
		held := map[ThreadID]bool{}
		waiting := map[ThreadID]bool{}
		prev := m.State()
		for _, op := range ops {
			tid := ThreadID(op % 4)
			if op%2 == 0 && !held[tid] && !waiting[tid] {
				if tb.Acquire(m, tid, 0).Kind == Acquired {
					held[tid] = true
				} else {
					waiting[tid] = true
				}
			} else if held[tid] && m.Owner() == tid {
				h := tb.Release(m, tid, 1)
				delete(held, tid)
				if h.Direct {
					held[h.Next] = true
					delete(waiting, h.Next)
				}
			}
			if m.State() < prev {
				return false // deflation
			}
			prev = m.State()
		}
		return m.Revocations() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
