// Package locks models Java object monitors — the synchronization
// primitive behind synchronized blocks — the way HotSpot implements them:
// an uncontended fast path, and a contended slow path that parks the
// acquiring thread on a FIFO entry queue until the owner releases.
//
// A contention instance, matching the DTrace monitor-contended-enter probe
// the paper counts in Figure 1b, is an acquisition attempt that finds the
// monitor held by another thread.
package locks

import (
	"fmt"

	"javasim/internal/sim"
)

// ThreadID identifies a mutator thread. NoThread means "unowned".
type ThreadID int32

// NoThread is the owner of a free monitor.
const NoThread ThreadID = -1

// Outcome is the result of an acquisition attempt.
type Outcome int

const (
	// Acquired means the thread now owns the monitor (fast path or
	// reentrant).
	Acquired Outcome = iota
	// Blocked means the monitor was contended; the thread was appended to
	// the entry queue and must not run until handed ownership.
	Blocked
)

// LockState is the HotSpot-era synchronization state of a monitor. Every
// monitor starts biasable: the first acquiring thread biases it to itself
// and reacquires for free. A second thread revokes the bias (in the real
// JVM, a safepoint operation) and the monitor becomes a thin lock; the
// first contended acquisition inflates it to a full monitor with an entry
// queue. States only escalate — HotSpot 7 never deflated.
type LockState uint8

const (
	// StateBiasable is the initial state: no owner has been recorded.
	StateBiasable LockState = iota
	// StateBiased means one thread has acquired and reacquires cheaply.
	StateBiased
	// StateThin means multiple threads have used the lock, uncontended.
	StateThin
	// StateInflated means the lock has seen contention and carries a full
	// entry queue.
	StateInflated
)

// String names the state.
func (s LockState) String() string {
	switch s {
	case StateBiasable:
		return "biasable"
	case StateBiased:
		return "biased"
	case StateThin:
		return "thin"
	case StateInflated:
		return "inflated"
	default:
		return "invalid"
	}
}

// Listener observes lock events; the lockprof package implements it. A nil
// listener is legal and costs only a branch.
type Listener interface {
	// OnAcquire fires on every acquisition attempt. contended reports
	// whether the attempt found the monitor held by another thread.
	OnAcquire(m *Monitor, t ThreadID, contended bool, now sim.Time)
	// OnHandoff fires when a blocked thread is granted ownership,
	// reporting how long it waited.
	OnHandoff(m *Monitor, t ThreadID, waited sim.Time)
	// OnRelease fires when a thread fully releases the monitor, reporting
	// how long it held it.
	OnRelease(m *Monitor, t ThreadID, held sim.Time)
}

// Monitor is one Java object monitor.
type Monitor struct {
	id   int
	name string

	owner     ThreadID
	recursion int

	waiters      []ThreadID
	enqueueTimes []sim.Time

	acquiredAt sim.Time

	// acquisitions and contentions are the two Figure 1 counters.
	acquisitions int64
	contentions  int64

	// Lock-state machine (biased -> thin -> inflated).
	state     LockState
	biasOwner ThreadID
	// biasedAcqs counts acquisitions served by the bias fast path;
	// revocations counts bias revocations (each a safepoint operation in
	// the real JVM).
	biasedAcqs  int64
	revocations int64
}

// State returns the monitor's synchronization state.
func (m *Monitor) State() LockState { return m.state }

// BiasedAcquisitions returns acquisitions served by the bias fast path.
func (m *Monitor) BiasedAcquisitions() int64 { return m.biasedAcqs }

// Revocations returns how many times a bias was revoked (0 or 1 per
// monitor in this model, matching HotSpot's escalate-only states).
func (m *Monitor) Revocations() int64 { return m.revocations }

// ID returns the monitor's table index.
func (m *Monitor) ID() int { return m.id }

// Name returns the human-readable label (e.g. "xalan.workQueue").
func (m *Monitor) Name() string { return m.name }

// Owner returns the current owner, or NoThread.
func (m *Monitor) Owner() ThreadID { return m.owner }

// QueueLength returns the number of threads parked on the entry queue.
func (m *Monitor) QueueLength() int { return len(m.waiters) }

// Acquisitions returns the total acquisition attempts (Figure 1a counter).
func (m *Monitor) Acquisitions() int64 { return m.acquisitions }

// Contentions returns the total contended attempts (Figure 1b counter).
func (m *Monitor) Contentions() int64 { return m.contentions }

// Table owns all monitors of one VM instance.
type Table struct {
	monitors []*Monitor
	listener Listener
}

// NewTable returns an empty monitor table reporting to listener (which may
// be nil).
func NewTable(listener Listener) *Table {
	return &Table{listener: listener}
}

// Create registers a new monitor with a diagnostic name.
func (tb *Table) Create(name string) *Monitor {
	m := &Monitor{id: len(tb.monitors), name: name, owner: NoThread, biasOwner: NoThread}
	tb.monitors = append(tb.monitors, m)
	return m
}

// Get returns monitor i.
func (tb *Table) Get(i int) *Monitor { return tb.monitors[i] }

// Len returns the number of monitors.
func (tb *Table) Len() int { return len(tb.monitors) }

// ForEach visits every monitor in creation order.
func (tb *Table) ForEach(fn func(*Monitor)) {
	for _, m := range tb.monitors {
		fn(m)
	}
}

// TotalAcquisitions sums acquisitions across all monitors.
func (tb *Table) TotalAcquisitions() int64 {
	var n int64
	for _, m := range tb.monitors {
		n += m.acquisitions
	}
	return n
}

// TotalContentions sums contentions across all monitors.
func (tb *Table) TotalContentions() int64 {
	var n int64
	for _, m := range tb.monitors {
		n += m.contentions
	}
	return n
}

// Acquire attempts to take m for thread t at the current time. If the
// monitor is free it is granted immediately; if t already owns it the
// recursion count grows; otherwise t is appended to the entry queue and
// Blocked is returned — the caller must deschedule t until Release hands
// it the monitor.
func (tb *Table) Acquire(m *Monitor, t ThreadID, now sim.Time) Outcome {
	m.acquisitions++
	// Advance the lock-state machine before the ownership decision.
	switch m.state {
	case StateBiasable:
		m.state = StateBiased
		m.biasOwner = t
		m.biasedAcqs++
	case StateBiased:
		if m.biasOwner == t {
			m.biasedAcqs++
		} else {
			m.revocations++
			m.state = StateThin
		}
	}
	switch m.owner {
	case NoThread:
		m.owner = t
		m.recursion = 1
		m.acquiredAt = now
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, false, now)
		}
		return Acquired
	case t:
		m.recursion++
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, false, now)
		}
		return Acquired
	default:
		m.state = StateInflated
		m.contentions++
		m.waiters = append(m.waiters, t)
		m.enqueueTimes = append(m.enqueueTimes, now)
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, true, now)
		}
		return Blocked
	}
}

// Release drops one recursion level of m held by t. When the outermost
// hold is released and waiters are queued, ownership transfers directly to
// the head waiter (deterministic FIFO handoff) and that thread's ID is
// returned with handoff = true; the caller must make it runnable again.
// Releasing a monitor not owned by t panics — that is a VM logic bug, the
// analogue of IllegalMonitorStateException.
func (tb *Table) Release(m *Monitor, t ThreadID, now sim.Time) (next ThreadID, handoff bool) {
	if m.owner != t {
		panic(fmt.Sprintf("locks: thread %d releasing monitor %q owned by %d", t, m.name, m.owner))
	}
	m.recursion--
	if m.recursion > 0 {
		return NoThread, false
	}
	if tb.listener != nil {
		tb.listener.OnRelease(m, t, now-m.acquiredAt)
	}
	if len(m.waiters) == 0 {
		m.owner = NoThread
		return NoThread, false
	}
	next = m.waiters[0]
	waited := now - m.enqueueTimes[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	copy(m.enqueueTimes, m.enqueueTimes[1:])
	m.enqueueTimes = m.enqueueTimes[:len(m.enqueueTimes)-1]
	m.owner = next
	m.recursion = 1
	m.acquiredAt = now
	if tb.listener != nil {
		tb.listener.OnHandoff(m, next, waited)
	}
	return next, true
}
