// Package locks models Java object monitors — the synchronization
// primitive behind synchronized blocks — the way HotSpot implements them:
// an uncontended fast path, and a contended slow path whose discipline is
// a pluggable Policy (see policy.go): the default parks the acquiring
// thread on a FIFO entry queue until the owner releases, alternatives
// barge, spin, or restrict concurrency.
//
// A contention instance, matching the DTrace monitor-contended-enter probe
// the paper counts in Figure 1b, is an acquisition attempt that enters the
// monitor's contended slow path; which attempts do is the policy's call.
package locks

import (
	"fmt"

	"javasim/internal/sim"
)

// ThreadID identifies a mutator thread. NoThread means "unowned".
type ThreadID int32

// NoThread is the owner of a free monitor.
const NoThread ThreadID = -1

// OutcomeKind classifies the result of an acquisition attempt. The zero
// value is deliberately invalid so a custom policy returning a
// forgotten-to-fill Outcome fails fast instead of reading as Acquired.
type OutcomeKind uint8

const (
	// outcomeInvalid is the zero value — a policy bug, rejected by the VM.
	outcomeInvalid OutcomeKind = iota
	// Acquired means the thread now owns the monitor (fast path or
	// reentrant).
	Acquired
	// Parked means the thread was queued by the policy and must not run
	// until woken: either handed ownership directly, or told to Retry.
	Parked
	// Spinning means the thread should busy-wait Outcome.Spin of CPU time
	// and then call Retry — the spin is compute, not blocking.
	Spinning
)

// String names the kind.
func (k OutcomeKind) String() string {
	switch k {
	case Acquired:
		return "acquired"
	case Parked:
		return "parked"
	case Spinning:
		return "spinning"
	default:
		return "invalid"
	}
}

// Outcome is the result of an acquisition attempt.
type Outcome struct {
	Kind OutcomeKind
	// Spin is the busy-wait budget when Kind == Spinning.
	Spin sim.Time
	// Contended marks a Parked outcome that fired the
	// monitor-contended-enter probe — the thread executed the contended
	// slow path (inflation, entry-queue CAS, park syscall) rather than
	// being set aside without a fight. The VM charges the workload's
	// ContentionCost on the wake-up that follows such a park, so
	// disciplines that bypass the slow path (restricted's admission gate,
	// spin-then-park's successful spins) dodge the charge along with the
	// probe.
	Contended bool
}

// Waiter is one parked thread together with the time its wait began.
type Waiter struct {
	ID    ThreadID
	Since sim.Time
}

// Handoff is the outcome of an outermost release. The zero value is
// inert — no handoff, nobody woken — so a custom policy cannot grant the
// monitor to thread 0 by returning a forgotten-to-fill Handoff.
type Handoff struct {
	// Direct marks a direct ownership transfer: Next received the monitor
	// and must be made runnable; Since is when its wait began.
	Direct bool
	Next   ThreadID
	Since  sim.Time
	// Retry lists threads to wake without ownership: each must re-attempt
	// via Table.Retry, and whichever dispatches first wins the monitor.
	Retry []Waiter
}

// LockState is the HotSpot-era synchronization state of a monitor. Every
// monitor starts biasable: the first acquiring thread biases it to itself
// and reacquires for free. A second thread revokes the bias (in the real
// JVM, a safepoint operation) and the monitor becomes a thin lock; the
// first contended acquisition inflates it to a full monitor with an entry
// queue. States only escalate — HotSpot 7 never deflated.
type LockState uint8

const (
	// StateBiasable is the initial state: no owner has been recorded.
	StateBiasable LockState = iota
	// StateBiased means one thread has acquired and reacquires cheaply.
	StateBiased
	// StateThin means multiple threads have used the lock, uncontended.
	StateThin
	// StateInflated means the lock has seen contention and carries a full
	// entry queue.
	StateInflated
)

// String names the state.
func (s LockState) String() string {
	switch s {
	case StateBiasable:
		return "biasable"
	case StateBiased:
		return "biased"
	case StateThin:
		return "thin"
	case StateInflated:
		return "inflated"
	default:
		return "invalid"
	}
}

// Listener observes lock events; the lockprof package implements it. A nil
// listener is legal and costs only a branch.
type Listener interface {
	// OnAcquire fires on every acquisition attempt. contended reports
	// whether the attempt found the monitor held by another thread.
	OnAcquire(m *Monitor, t ThreadID, contended bool, now sim.Time)
	// OnHandoff fires when a blocked thread is granted ownership,
	// reporting how long it waited.
	OnHandoff(m *Monitor, t ThreadID, waited sim.Time)
	// OnRelease fires when a thread fully releases the monitor, reporting
	// how long it held it.
	OnRelease(m *Monitor, t ThreadID, held sim.Time)
}

// Monitor is one Java object monitor.
type Monitor struct {
	id   int
	name string

	owner     ThreadID
	recursion int

	waiters      []ThreadID
	enqueueTimes []sim.Time

	// spinners are threads busy-waiting on the monitor (Spinning
	// outcome), in attempt order. A release that leaves the monitor free
	// reserves it for the earliest spinner, so no latecomer can steal a
	// lock a live busy-waiter is polling for and the spinner never parks
	// a lock that freed mid-spin. The spin segment is the model's poll
	// granularity: the reserved spinner enters its critical section only
	// when its segment completes, so a reservation holds the monitor idle
	// until then — the remaining budget on an idle machine, budget plus
	// ready-queue delay when cores are oversubscribed. A real spinner
	// would enter within nanoseconds (or stop being a spinner once
	// descheduled); the coarseness is the price of fixed-length spin
	// segments, and it is also why spin-then-park degrades in the
	// oversubscribed regime, as real spin locks do.
	spinners []Waiter

	acquiredAt sim.Time

	// acquisitions and contentions are the two Figure 1 counters.
	acquisitions int64
	contentions  int64

	// Lock-state machine (biased -> thin -> inflated).
	state     LockState
	biasOwner ThreadID
	// biasedAcqs counts acquisitions served by the bias fast path;
	// revocations counts bias revocations (each a safepoint operation in
	// the real JVM).
	biasedAcqs  int64
	revocations int64
}

// State returns the monitor's synchronization state.
func (m *Monitor) State() LockState { return m.state }

// BiasedAcquisitions returns acquisitions served by the bias fast path.
func (m *Monitor) BiasedAcquisitions() int64 { return m.biasedAcqs }

// Revocations returns how many times a bias was revoked (0 or 1 per
// monitor in this model, matching HotSpot's escalate-only states).
func (m *Monitor) Revocations() int64 { return m.revocations }

// ID returns the monitor's table index.
func (m *Monitor) ID() int { return m.id }

// Name returns the human-readable label (e.g. "xalan.workQueue").
func (m *Monitor) Name() string { return m.name }

// Owner returns the current owner, or NoThread.
func (m *Monitor) Owner() ThreadID { return m.owner }

// QueueLength returns the number of threads parked on the entry queue.
func (m *Monitor) QueueLength() int { return len(m.waiters) }

// Acquisitions returns the total acquisition attempts (Figure 1a counter).
func (m *Monitor) Acquisitions() int64 { return m.acquisitions }

// Contentions returns the total contended attempts (Figure 1b counter).
func (m *Monitor) Contentions() int64 { return m.contentions }

// Table owns all monitors of one VM instance.
type Table struct {
	monitors []*Monitor
	listener Listener
	policy   Policy

	// retrySince records, per thread woken for a competitive retry, when
	// its wait began — for handoff accounting and re-parks.
	retrySince map[ThreadID]sim.Time
}

// NewTable returns an empty monitor table under the default fifo policy,
// reporting to listener (which may be nil).
func NewTable(listener Listener) *Table {
	return NewTableWithPolicy(nil, listener)
}

// NewTableWithPolicy returns an empty monitor table under the given
// contention policy (nil selects fifo), reporting to listener (which may
// be nil). The policy instance must not be shared with another table.
func NewTableWithPolicy(p Policy, listener Listener) *Table {
	if p == nil {
		p = FIFO()
	}
	return &Table{listener: listener, policy: p, retrySince: make(map[ThreadID]sim.Time)}
}

// PolicyName returns the registry name of the table's contention policy.
func (tb *Table) PolicyName() string { return tb.policy.Name() }

// Create registers a new monitor with a diagnostic name.
func (tb *Table) Create(name string) *Monitor {
	m := &Monitor{id: len(tb.monitors), name: name, owner: NoThread, biasOwner: NoThread}
	tb.monitors = append(tb.monitors, m)
	return m
}

// Get returns monitor i.
func (tb *Table) Get(i int) *Monitor { return tb.monitors[i] }

// Len returns the number of monitors.
func (tb *Table) Len() int { return len(tb.monitors) }

// ForEach visits every monitor in creation order.
func (tb *Table) ForEach(fn func(*Monitor)) {
	for _, m := range tb.monitors {
		fn(m)
	}
}

// TotalAcquisitions sums acquisitions across all monitors.
func (tb *Table) TotalAcquisitions() int64 {
	var n int64
	for _, m := range tb.monitors {
		n += m.acquisitions
	}
	return n
}

// TotalContentions sums contentions across all monitors.
func (tb *Table) TotalContentions() int64 {
	var n int64
	for _, m := range tb.monitors {
		n += m.contentions
	}
	return n
}

// enqueue appends t to the entry queue with its wait start.
func (m *Monitor) enqueue(t ThreadID, since sim.Time) {
	m.waiters = append(m.waiters, t)
	m.enqueueTimes = append(m.enqueueTimes, since)
}

// dequeue pops the entry-queue head and its wait start.
func (m *Monitor) dequeue() (ThreadID, sim.Time, bool) {
	if len(m.waiters) == 0 {
		return NoThread, 0, false
	}
	next := m.waiters[0]
	since := m.enqueueTimes[0]
	copy(m.waiters, m.waiters[1:])
	m.waiters = m.waiters[:len(m.waiters)-1]
	copy(m.enqueueTimes, m.enqueueTimes[1:])
	m.enqueueTimes = m.enqueueTimes[:len(m.enqueueTimes)-1]
	return next, since, true
}

// drain removes and returns every entry-queue waiter in FIFO order.
func (m *Monitor) drain() []Waiter {
	if len(m.waiters) == 0 {
		return nil
	}
	out := make([]Waiter, len(m.waiters))
	for i, id := range m.waiters {
		out[i] = Waiter{ID: id, Since: m.enqueueTimes[i]}
	}
	m.waiters = m.waiters[:0]
	m.enqueueTimes = m.enqueueTimes[:0]
	return out
}

// grant transfers ownership of a free monitor to t.
func (m *Monitor) grant(t ThreadID, now sim.Time) {
	m.owner = t
	m.recursion = 1
	m.acquiredAt = now
}

// removeSpinner deletes t from the spinner list, if present.
func (m *Monitor) removeSpinner(t ThreadID) {
	for i, s := range m.spinners {
		if s.ID == t {
			m.spinners = append(m.spinners[:i], m.spinners[i+1:]...)
			return
		}
	}
}

// Acquire attempts to take m for thread t at the current time. If the
// monitor is free it is granted immediately; if t already owns it the
// recursion count grows; otherwise the table's policy decides: a Parked
// outcome means the caller must deschedule t until woken (handed the
// monitor via Handoff.Next, or told to re-attempt via Handoff.Retry), and
// a Spinning outcome means the caller must burn Outcome.Spin of CPU time
// and then call Retry.
func (tb *Table) Acquire(m *Monitor, t ThreadID, now sim.Time) Outcome {
	m.acquisitions++
	// Advance the lock-state machine before the ownership decision.
	switch m.state {
	case StateBiasable:
		m.state = StateBiased
		m.biasOwner = t
		m.biasedAcqs++
	case StateBiased:
		if m.biasOwner == t {
			m.biasedAcqs++
		} else {
			m.revocations++
			m.state = StateThin
		}
	}
	switch m.owner {
	case NoThread:
		m.grant(t, now)
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, false, now)
		}
		return Outcome{Kind: Acquired}
	case t:
		m.recursion++
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, false, now)
		}
		return Outcome{Kind: Acquired}
	default:
		m.state = StateInflated
		// The listener sees the raw contended attempt; whether the
		// Figure 1b probe (m.contentions) fires is the policy's call.
		if tb.listener != nil {
			tb.listener.OnAcquire(m, t, true, now)
		}
		out := tb.policy.Contended(tb, m, t, now, false)
		if out.Kind == Spinning {
			m.spinners = append(m.spinners, Waiter{ID: t, Since: now})
		}
		return out
	}
}

// Retry re-attempts an acquisition whose first attempt returned Spinning
// (after the spin) or whose thread was woken through Handoff.Retry. It is
// not a new acquisition: no counter moves and the lock-state machine does
// not advance. A free monitor is granted, a monitor already reserved for
// t (released mid-spin) is confirmed, and a held one goes back to the
// policy with retry set.
func (tb *Table) Retry(m *Monitor, t ThreadID, now sim.Time) Outcome {
	m.removeSpinner(t)
	switch m.owner {
	case NoThread:
		m.grant(t, now)
		if since, ok := tb.retrySince[t]; ok {
			// The thread had parked: its eventual grant is a handoff.
			delete(tb.retrySince, t)
			if tb.listener != nil {
				tb.listener.OnHandoff(m, t, now-since)
			}
		}
		return Outcome{Kind: Acquired}
	case t:
		// The monitor was reserved for this spinner at release time.
		delete(tb.retrySince, t)
		return Outcome{Kind: Acquired}
	default:
		out := tb.policy.Contended(tb, m, t, now, true)
		switch out.Kind {
		case Spinning:
			// A policy may spin again on retry (adaptive spinning); the
			// thread stays reservation-eligible for its new spin window.
			m.spinners = append(m.spinners, Waiter{ID: t, Since: now})
		case Parked:
			// The retry resolved into a park: whatever queue the policy
			// chose now tracks the wait, so the retry record is dead.
			// (Centralized here so custom policies cannot leak entries.)
			delete(tb.retrySince, t)
		}
		return out
	}
}

// Release drops one recursion level of m held by t. On the outermost
// release the policy decides the handoff: Handoff.Next (if any) received
// ownership directly and must be made runnable; every Handoff.Retry
// waiter must be woken to re-attempt via Retry. Releasing a monitor not
// owned by t panics — that is a VM logic bug, the analogue of
// IllegalMonitorStateException.
func (tb *Table) Release(m *Monitor, t ThreadID, now sim.Time) Handoff {
	if m.owner != t {
		panic(fmt.Sprintf("locks: thread %d releasing monitor %q owned by %d", t, m.name, m.owner))
	}
	m.recursion--
	if m.recursion > 0 {
		return Handoff{}
	}
	if tb.listener != nil {
		tb.listener.OnRelease(m, t, now-m.acquiredAt)
	}
	m.owner = NoThread
	h := tb.policy.Released(tb, m, now)
	if h.Direct {
		m.grant(h.Next, now)
		delete(tb.retrySince, h.Next)
		if tb.listener != nil {
			tb.listener.OnHandoff(m, h.Next, now-h.Since)
		}
	} else if len(m.spinners) > 0 {
		// Nobody parked took the monitor: the earliest live busy-waiter
		// grabs it at the instant of release. Its Retry (at spin-segment
		// end) observes the reservation; no handoff event fires — a
		// successful spin never enters the contended slow path.
		m.grant(m.spinners[0].ID, now)
		m.spinners = m.spinners[1:]
	}
	for _, w := range h.Retry {
		tb.retrySince[w.ID] = w.Since
	}
	return h
}
