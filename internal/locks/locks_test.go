package locks

import (
	"testing"
	"testing/quick"

	"javasim/internal/sim"
)

func TestUncontendedAcquire(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	if got := tb.Acquire(m, 1, 0); got.Kind != Acquired {
		t.Fatalf("Acquire = %v, want Acquired", got.Kind)
	}
	if m.Owner() != 1 {
		t.Errorf("owner = %d, want 1", m.Owner())
	}
	if m.Acquisitions() != 1 || m.Contentions() != 0 {
		t.Errorf("counters %d/%d, want 1/0", m.Acquisitions(), m.Contentions())
	}
	h := tb.Release(m, 1, 10)
	if h.Direct || len(h.Retry) != 0 {
		t.Error("release of uncontended lock reported handoff")
	}
	if m.Owner() != NoThread {
		t.Error("monitor still owned after release")
	}
}

func TestReentrancy(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	tb.Acquire(m, 1, 0)
	if got := tb.Acquire(m, 1, 1); got.Kind != Acquired {
		t.Fatal("reentrant acquire blocked")
	}
	if m.Contentions() != 0 {
		t.Error("reentrant acquire counted as contention")
	}
	if h := tb.Release(m, 1, 2); h.Direct {
		t.Error("inner release caused handoff")
	}
	if m.Owner() != 1 {
		t.Error("owner lost after inner release")
	}
	tb.Release(m, 1, 3)
	if m.Owner() != NoThread {
		t.Error("monitor owned after outer release")
	}
}

func TestContentionAndFIFOHandoff(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	if got := tb.Acquire(m, 2, 1); got.Kind != Parked {
		t.Fatal("second acquire not parked")
	}
	if got := tb.Acquire(m, 3, 2); got.Kind != Parked {
		t.Fatal("third acquire not parked")
	}
	if m.Contentions() != 2 {
		t.Errorf("contentions = %d, want 2", m.Contentions())
	}
	if m.QueueLength() != 2 {
		t.Errorf("queue = %d, want 2", m.QueueLength())
	}
	h := tb.Release(m, 1, 5)
	if !h.Direct || h.Next != 2 {
		t.Fatalf("handoff to %d, want thread 2 (FIFO)", h.Next)
	}
	if m.Owner() != 2 {
		t.Error("ownership not transferred")
	}
	h = tb.Release(m, 2, 6)
	if !h.Direct || h.Next != 3 {
		t.Fatalf("second handoff to %d, want 3", h.Next)
	}
	tb.Release(m, 3, 7)
	if m.Owner() != NoThread || m.QueueLength() != 0 {
		t.Error("monitor not clean after all releases")
	}
}

func TestReleaseByNonOwnerPanics(t *testing.T) {
	tb := NewTable(nil)
	m := tb.Create("lock")
	tb.Acquire(m, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("release by non-owner did not panic")
		}
	}()
	tb.Release(m, 2, 1)
}

func TestTableTotals(t *testing.T) {
	tb := NewTable(nil)
	a, b := tb.Create("a"), tb.Create("b")
	tb.Acquire(a, 1, 0)
	tb.Acquire(b, 1, 0)
	tb.Acquire(a, 2, 1) // contended
	if tb.TotalAcquisitions() != 3 {
		t.Errorf("total acquisitions = %d, want 3", tb.TotalAcquisitions())
	}
	if tb.TotalContentions() != 1 {
		t.Errorf("total contentions = %d, want 1", tb.TotalContentions())
	}
	if tb.Len() != 2 || tb.Get(0) != a || tb.Get(1) != b {
		t.Error("table indexing broken")
	}
	count := 0
	tb.ForEach(func(*Monitor) { count++ })
	if count != 2 {
		t.Error("ForEach visited wrong count")
	}
}

type recordingListener struct {
	acquires, contentions, handoffs, releases int
	lastWait, lastHold                        sim.Time
}

func (r *recordingListener) OnAcquire(m *Monitor, t ThreadID, contended bool, now sim.Time) {
	r.acquires++
	if contended {
		r.contentions++
	}
}
func (r *recordingListener) OnHandoff(m *Monitor, t ThreadID, waited sim.Time) {
	r.handoffs++
	r.lastWait = waited
}
func (r *recordingListener) OnRelease(m *Monitor, t ThreadID, held sim.Time) {
	r.releases++
	r.lastHold = held
}

func TestListenerEvents(t *testing.T) {
	rec := &recordingListener{}
	tb := NewTable(rec)
	m := tb.Create("observed")
	tb.Acquire(m, 1, 100)
	tb.Acquire(m, 2, 150) // blocks
	tb.Release(m, 1, 300) // hold 200, handoff; thread 2 waited 150
	if rec.acquires != 2 || rec.contentions != 1 {
		t.Errorf("listener acquires/contentions = %d/%d", rec.acquires, rec.contentions)
	}
	if rec.handoffs != 1 || rec.lastWait != 150 {
		t.Errorf("handoffs = %d wait = %v, want 1/150", rec.handoffs, rec.lastWait)
	}
	if rec.releases != 1 || rec.lastHold != 200 {
		t.Errorf("releases = %d hold = %v, want 1/200", rec.releases, rec.lastHold)
	}
}

// Property: mutual exclusion — replaying any random sequence of acquire
// and release requests, at most one thread owns the monitor, the owner is
// only ever changed by a release, and handoffs follow strict FIFO order.
func TestMutualExclusionProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tb := NewTable(nil)
		m := tb.Create("prop")
		const nThreads = 5
		// held tracks which threads think they hold or wait on the lock.
		state := make([]int, nThreads) // 0 = out, 1 = waiting, 2 = holding
		var fifo []ThreadID
		now := sim.Time(0)
		for _, op := range ops {
			now++
			tid := ThreadID(op % nThreads)
			if op%2 == 0 {
				if state[tid] != 0 {
					continue // already holding or waiting
				}
				if tb.Acquire(m, tid, now).Kind == Acquired {
					if m.Owner() != tid {
						return false
					}
					state[tid] = 2
				} else {
					state[tid] = 1
					fifo = append(fifo, tid)
				}
			} else {
				if state[tid] != 2 {
					continue
				}
				h := tb.Release(m, tid, now)
				state[tid] = 0
				if h.Direct {
					if len(fifo) == 0 || fifo[0] != h.Next {
						return false // FIFO violated
					}
					fifo = fifo[1:]
					state[h.Next] = 2
					if m.Owner() != h.Next {
						return false
					}
				} else if m.QueueLength() != 0 {
					return false
				}
			}
			// Invariant: exactly one holder iff owner set.
			holders := 0
			for _, s := range state {
				if s == 2 {
					holders++
				}
			}
			if holders > 1 {
				return false
			}
			if (m.Owner() == NoThread) != (holders == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: acquisitions == contentions + uncontended grants, and
// contentions never exceed acquisitions.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tb := NewTable(nil)
		m := tb.Create("ctr")
		held := map[ThreadID]bool{}
		waiting := map[ThreadID]bool{}
		now := sim.Time(0)
		for _, op := range ops {
			now++
			tid := ThreadID(op % 4)
			if op%2 == 0 && !held[tid] && !waiting[tid] {
				if tb.Acquire(m, tid, now).Kind == Acquired {
					held[tid] = true
				} else {
					waiting[tid] = true
				}
			} else if held[tid] && m.Owner() == tid {
				h := tb.Release(m, tid, now)
				delete(held, tid)
				if h.Direct {
					held[h.Next] = true
					delete(waiting, h.Next)
				}
			}
		}
		return m.Contentions() <= m.Acquisitions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
