package locks

import (
	"testing"

	"javasim/internal/sim"
)

func mustPolicy(t testing.TB, name string) Policy {
	t.Helper()
	p, err := NewPolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []string{PolicyFIFO, PolicyBarging, PolicySpinThenPark, PolicyRestricted}
	if len(names) < len(want) {
		t.Fatalf("registry names = %v, want at least %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
	if err := RegisterPolicy(PolicyFIFO, func() Policy { return FIFO() }); err == nil {
		t.Error("duplicate registration of fifo succeeded")
	}
	if err := RegisterPolicy("", func() Policy { return FIFO() }); err == nil {
		t.Error("empty-name registration succeeded")
	}
	if err := RegisterPolicy("nil-factory", nil); err == nil {
		t.Error("nil-factory registration succeeded")
	}
	if _, err := NewPolicy("no-such-policy"); err == nil {
		t.Error("unknown policy name resolved")
	}
	if !KnownPolicy("") || !KnownPolicy(PolicyRestricted) || KnownPolicy("no-such-policy") {
		t.Error("KnownPolicy verdicts wrong")
	}
	// The empty name resolves to the default discipline.
	p, err := NewPolicy("")
	if err != nil || p.Name() != PolicyFIFO {
		t.Errorf("NewPolicy(\"\") = %v, %v; want fifo", p, err)
	}
	// Factories mint fresh instances — policies hold per-table state.
	a := mustPolicy(t, PolicyRestricted)
	b := mustPolicy(t, PolicyRestricted)
	if a == b {
		t.Error("NewPolicy returned a shared restricted instance")
	}
}

func TestBargingWakesAllAndFirstRetryWins(t *testing.T) {
	tb := NewTableWithPolicy(mustPolicy(t, PolicyBarging), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	if got := tb.Acquire(m, 2, 10); got.Kind != Parked {
		t.Fatalf("contender outcome %v, want Parked", got.Kind)
	}
	tb.Acquire(m, 3, 20)
	if m.Contentions() != 2 {
		t.Fatalf("contentions = %d, want 2", m.Contentions())
	}

	h := tb.Release(m, 1, 100)
	if h.Direct {
		t.Fatal("barging release handed off directly")
	}
	if len(h.Retry) != 2 || h.Retry[0].ID != 2 || h.Retry[1].ID != 3 {
		t.Fatalf("retry set = %v, want threads 2 and 3", h.Retry)
	}
	if m.Owner() != NoThread {
		t.Fatal("monitor not free after barging release")
	}

	// A latecomer can barge past the whole woken set.
	if got := tb.Acquire(m, 4, 101); got.Kind != Acquired {
		t.Fatalf("barging latecomer outcome %v, want Acquired", got.Kind)
	}
	// The woken threads lose the race and re-park without a fresh
	// contention count.
	if got := tb.Retry(m, 2, 102); got.Kind != Parked {
		t.Fatalf("losing retry outcome %v, want Parked", got.Kind)
	}
	tb.Retry(m, 3, 103)
	if m.Contentions() != 2 {
		t.Errorf("contentions = %d after re-parks, want 2", m.Contentions())
	}

	// Next release wakes both again; the first retry wins the free monitor.
	h = tb.Release(m, 4, 200)
	if len(h.Retry) != 2 {
		t.Fatalf("retry set = %v, want 2 waiters", h.Retry)
	}
	if got := tb.Retry(m, h.Retry[0].ID, 201); got.Kind != Acquired {
		t.Fatalf("first retry outcome %v, want Acquired", got.Kind)
	}
	if m.Owner() != h.Retry[0].ID {
		t.Errorf("owner = %d, want %d", m.Owner(), h.Retry[0].ID)
	}
}

func TestBargingHandoffListenerWait(t *testing.T) {
	rec := &recordingListener{}
	tb := NewTableWithPolicy(mustPolicy(t, PolicyBarging), rec)
	m := tb.Create("observed")
	tb.Acquire(m, 1, 100)
	tb.Acquire(m, 2, 150) // raw contended attempt
	h := tb.Release(m, 1, 300)
	tb.Retry(m, h.Retry[0].ID, 310)
	if rec.contentions != 1 {
		t.Errorf("listener contentions = %d, want 1", rec.contentions)
	}
	// The grant-on-retry is a handoff; the wait spans from the original
	// attempt at t=150 to the winning dispatch at t=310.
	if rec.handoffs != 1 || rec.lastWait != 160 {
		t.Errorf("handoffs = %d wait = %v, want 1/160", rec.handoffs, rec.lastWait)
	}
}

func TestSpinThenParkSuccessfulSpin(t *testing.T) {
	tb := NewTableWithPolicy(SpinThenPark(1*sim.Microsecond), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	got := tb.Acquire(m, 2, 10)
	if got.Kind != Spinning || got.Spin != 1*sim.Microsecond {
		t.Fatalf("outcome = %+v, want Spinning with 1µs budget", got)
	}
	// Owner releases during the spin window: nobody is parked, so the
	// monitor is reserved for the live busy-waiter at the instant of
	// release — it does not sit free until the spin quantum expires.
	if h := tb.Release(m, 1, 200); h.Direct || len(h.Retry) != 0 {
		t.Fatal("release with only a spinner reported a handoff")
	}
	if m.Owner() != 2 {
		t.Fatalf("owner = %d after release, want reservation for spinner 2", m.Owner())
	}
	// A latecomer cannot steal a reserved monitor.
	if got := tb.Acquire(m, 3, 500); got.Kind != Spinning {
		t.Fatalf("latecomer outcome %v, want Spinning against the reserved owner", got.Kind)
	}
	// The spin retry confirms the reservation without firing the probe.
	if got := tb.Retry(m, 2, 1010); got.Kind != Acquired {
		t.Fatalf("retry outcome %v, want Acquired", got.Kind)
	}
	if m.Owner() != 2 {
		t.Errorf("owner = %d, want 2", m.Owner())
	}
	if m.Contentions() != 0 {
		t.Errorf("contentions = %d, want 0 — the spin succeeded", m.Contentions())
	}
}

func TestSpinThenParkReservationOrder(t *testing.T) {
	tb := NewTableWithPolicy(SpinThenPark(1*sim.Microsecond), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	tb.Acquire(m, 2, 10) // spinning since t=10
	tb.Acquire(m, 3, 20) // spinning since t=20
	tb.Release(m, 1, 100)
	if m.Owner() != 2 {
		t.Fatalf("owner = %d, want earliest spinner 2", m.Owner())
	}
	// The winner's retry confirms the reservation; the loser's parks.
	if got := tb.Retry(m, 2, 1010); got.Kind != Acquired {
		t.Fatalf("winning spinner outcome %v, want Acquired", got.Kind)
	}
	if got := tb.Retry(m, 3, 1020); got.Kind != Parked {
		t.Fatalf("losing spinner outcome %v, want Parked", got.Kind)
	}
	if m.Contentions() != 1 {
		t.Errorf("contentions = %d, want 1 (only the failed spin parked)", m.Contentions())
	}
	// The reserved owner's release now hands off to the parked thread.
	h := tb.Release(m, 2, 2000)
	if !h.Direct || h.Next != 3 {
		t.Fatalf("handoff %+v, want direct to 3", h)
	}
}

func TestSpinThenParkFailedSpinParksOnce(t *testing.T) {
	tb := NewTableWithPolicy(SpinThenPark(1*sim.Microsecond), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	if got := tb.Acquire(m, 2, 10); got.Kind != Spinning {
		t.Fatalf("outcome %v, want Spinning", got.Kind)
	}
	// Spin exhausted with the owner still inside: the retry parks and the
	// contended-enter probe fires exactly once.
	if got := tb.Retry(m, 2, 1010); got.Kind != Parked {
		t.Fatalf("retry outcome %v, want Parked", got.Kind)
	}
	if m.Contentions() != 1 {
		t.Errorf("contentions = %d, want 1", m.Contentions())
	}
	// Parked spinners hand off FIFO like the default policy; the wait is
	// measured from the park, not the first attempt — spin time is CPU.
	rec := &recordingListener{}
	tb.listener = rec
	h := tb.Release(m, 1, 1500)
	if !h.Direct || h.Next != 2 {
		t.Fatalf("handoff = %+v, want direct to 2", h)
	}
	if rec.lastWait != 490 {
		t.Errorf("waited = %v, want 490 (since the park at t=1010)", rec.lastWait)
	}
}

// respinPolicy is a custom discipline that keeps spinning on retries —
// the adaptive-spinning shape external registrations are allowed to take.
type respinPolicy struct{}

func (respinPolicy) Name() string { return "respin" }

func (respinPolicy) Contended(tb *Table, m *Monitor, t ThreadID, now sim.Time, retry bool) Outcome {
	return Outcome{Kind: Spinning, Spin: 1 * sim.Microsecond}
}

func (respinPolicy) Released(tb *Table, m *Monitor, now sim.Time) Handoff {
	return Handoff{}
}

// TestRespinStaysReservationEligible pins the Retry path's spinner
// bookkeeping: a thread whose policy spins again on retry must remain
// reservation-eligible, or a release during its second spin window would
// leave the monitor free for a latecomer to steal.
func TestRespinStaysReservationEligible(t *testing.T) {
	tb := NewTableWithPolicy(respinPolicy{}, nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	if got := tb.Acquire(m, 2, 10); got.Kind != Spinning {
		t.Fatalf("outcome %v, want Spinning", got.Kind)
	}
	// First spin window expires with the owner still inside: spin again.
	if got := tb.Retry(m, 2, 1010); got.Kind != Spinning {
		t.Fatalf("retry outcome %v, want Spinning", got.Kind)
	}
	// A release during the second spin window still reserves for the
	// live busy-waiter.
	tb.Release(m, 1, 1500)
	if m.Owner() != 2 {
		t.Fatalf("owner = %d after release, want re-spinning thread 2", m.Owner())
	}
	if got := tb.Retry(m, 2, 2010); got.Kind != Acquired {
		t.Fatalf("final retry outcome %v, want Acquired", got.Kind)
	}
}

func TestRestrictedGatesExcessThreads(t *testing.T) {
	tb := NewTableWithPolicy(Restricted(2), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	// Thread 2 joins the circulating set (owner + 1 waiter = cap).
	if got := tb.Acquire(m, 2, 10); got.Kind != Parked {
		t.Fatalf("outcome %v, want Parked", got.Kind)
	}
	// Threads 3 and 4 exceed the cap: parked at the admission gate, no
	// contended-enter probe.
	tb.Acquire(m, 3, 20)
	tb.Acquire(m, 4, 30)
	if m.Contentions() != 1 {
		t.Fatalf("contentions = %d, want 1 — gate parks never fire the probe", m.Contentions())
	}
	if m.QueueLength() != 1 {
		t.Fatalf("entry queue = %d, want 1 (threads 3,4 gated)", m.QueueLength())
	}

	// Admission is FIFO: each release hands to the entry head and
	// backfills from the gate.
	for i, want := range []ThreadID{2, 3, 4} {
		h := tb.Release(m, m.Owner(), sim.Time(100*(i+1)))
		if !h.Direct || h.Next != want {
			t.Fatalf("release %d: handoff %+v, want direct to %d", i, h, want)
		}
	}
	if h := tb.Release(m, 4, 400); h.Direct {
		t.Fatal("final release should free the monitor")
	}
	if m.Contentions() != 1 || m.Acquisitions() != 4 {
		t.Errorf("counters %d/%d, want contentions 1 of 4 acquisitions",
			m.Contentions(), m.Acquisitions())
	}
}

func TestRestrictedCapOneNeverFiresProbe(t *testing.T) {
	tb := NewTableWithPolicy(Restricted(1), nil)
	m := tb.Create("hot")
	tb.Acquire(m, 1, 0)
	tb.Acquire(m, 2, 1)
	tb.Acquire(m, 3, 2)
	if m.Contentions() != 0 {
		t.Fatalf("contentions = %d, want 0 under cap 1", m.Contentions())
	}
	// With an empty entry queue the gate head is granted directly.
	h := tb.Release(m, 1, 10)
	if !h.Direct || h.Next != 2 {
		t.Fatalf("handoff %+v, want direct grant to gate head 2", h)
	}
	h = tb.Release(m, 2, 20)
	if !h.Direct || h.Next != 3 {
		t.Fatalf("handoff %+v, want direct grant to 3", h)
	}
	tb.Release(m, 3, 30)
	if m.Owner() != NoThread || m.Contentions() != 0 {
		t.Error("monitor not clean, or probe fired, after gated cycle")
	}
}

func TestPolicyNameSurfacesOnTable(t *testing.T) {
	if got := NewTable(nil).PolicyName(); got != PolicyFIFO {
		t.Errorf("default table policy = %q, want fifo", got)
	}
	if got := NewTableWithPolicy(Restricted(4), nil).PolicyName(); got != PolicyRestricted {
		t.Errorf("table policy = %q, want restricted", got)
	}
}

// TestContendedFlagTracksProbe verifies Outcome.Contended mirrors the
// contention probe discipline by discipline: fifo fires it on every park,
// restricted only for the circulating set (gated threads are set aside
// without the slow path), and barging only on the first park of an
// attempt, not the re-park after a lost race.
func TestContendedFlagTracksProbe(t *testing.T) {
	t.Run("fifo", func(t *testing.T) {
		tb := NewTableWithPolicy(mustPolicy(t, PolicyFIFO), nil)
		m := tb.Create("hot")
		tb.Acquire(m, 1, 0)
		if out := tb.Acquire(m, 2, 1); out.Kind != Parked || !out.Contended {
			t.Errorf("fifo park = %+v, want Parked+Contended", out)
		}
	})
	t.Run("restricted", func(t *testing.T) {
		tb := NewTableWithPolicy(Restricted(2), nil)
		m := tb.Create("hot")
		tb.Acquire(m, 1, 0)
		// Thread 2 joins the circulating set (owner + 1 < cap): probe fires.
		if out := tb.Acquire(m, 2, 1); out.Kind != Parked || !out.Contended {
			t.Errorf("circulating park = %+v, want Parked+Contended", out)
		}
		// Thread 3 is gated: parked without the probe, so no charge.
		if out := tb.Acquire(m, 3, 2); out.Kind != Parked || out.Contended {
			t.Errorf("gated park = %+v, want Parked without Contended", out)
		}
		if got := m.Contentions(); got != 1 {
			t.Errorf("contentions = %d, want 1 (the gate never probes)", got)
		}
	})
	t.Run("barging re-park", func(t *testing.T) {
		tb := NewTableWithPolicy(mustPolicy(t, PolicyBarging), nil)
		m := tb.Create("hot")
		tb.Acquire(m, 1, 0)
		if out := tb.Acquire(m, 2, 1); !out.Contended {
			t.Errorf("first park = %+v, want Contended", out)
		}
		tb.Acquire(m, 3, 2)
		// Release wakes both; thread 3 wins the race, thread 2's retry
		// re-parks — the probe (and its cost) already fired at first park.
		tb.Release(m, 1, 3)
		tb.Retry(m, 3, 4)
		if out := tb.Retry(m, 2, 5); out.Kind != Parked || out.Contended {
			t.Errorf("lost-race re-park = %+v, want Parked without Contended", out)
		}
	})
}
