// Package traffic models open-system load: instead of N threads
// iterating over a fixed work pool (the closed-loop model every DaCapo
// benchmark uses), an arrival process injects requests into the
// simulation at a configured rate, and a fixed pool of server threads
// drains them through a shared queue. The distinction matters because
// queueing delay compounds into tail latency only in open systems —
// a closed loop self-throttles, so saturation shows up as lower
// throughput, never as an unbounded queue (JCiP ch. 11).
//
// Arrival processes are pluggable through a string-keyed registry, like
// lock policies and scheduler placements: "poisson" (memoryless),
// "bursty" (an MMPP-style on/off modulation), "diurnal" (a sinusoidal
// rate curve sampled by thinning), and "closed" (the adapter that
// selects the existing closed-loop model). All draws come from forked
// sim.Rand streams, so runs stay bit-for-bit reproducible per seed.
package traffic

import (
	"fmt"
	"math"

	"javasim/internal/registry"
	"javasim/internal/sim"
)

// Process generates the arrival sequence: Next returns the delay from
// now until the next request arrives. Implementations may keep internal
// state (the bursty process tracks its on/off phase) but must draw all
// randomness from the provided rng so equal seeds reproduce equal
// traces.
type Process interface {
	// Next returns the gap between the arrival at now and the next
	// arrival. The returned delay must be positive.
	Next(now sim.Time, rng *sim.Rand) sim.Time
}

// Factory builds a Process for one run from its canonicalized Config.
// A nil Process (with nil error) selects the closed-loop model — that
// is how the "closed" adapter defers to the existing machinery.
type Factory func(cfg Config) (Process, error)

// Built-in process names.
const (
	// ProcessPoisson is the memoryless arrival process: exponential
	// inter-arrival gaps at RatePerSec.
	ProcessPoisson = "poisson"
	// ProcessBursty is an MMPP-style on/off modulated Poisson process:
	// the rate alternates between a burst rate (BurstFactor x the mean)
	// and a trough rate chosen so the long-run average stays RatePerSec.
	ProcessBursty = "bursty"
	// ProcessDiurnal modulates the rate along a sinusoid of period
	// DiurnalPeriod and relative amplitude DiurnalAmplitude, sampled by
	// thinning.
	ProcessDiurnal = "diurnal"
	// ProcessClosed is the adapter onto today's closed-loop model: the
	// run executes exactly as if no Traffic block were configured.
	ProcessClosed = "closed"
)

// Config selects and parameterizes the arrival process for one run. It
// is embedded in vm.Config, so it must round-trip through JSON and its
// Canonical form decides cache-key identity.
type Config struct {
	// Process names the arrival process in the registry; empty or
	// "closed" selects the closed-loop model and ignores every other
	// field.
	Process string `json:",omitempty"`
	// RatePerSec is the mean offered load in requests per second.
	// Open-system runs require it to be positive.
	RatePerSec float64 `json:",omitempty"`
	// Requests bounds the run: the process stops injecting after this
	// many arrivals. Zero defaults to the workload's TotalUnits.
	Requests int `json:",omitempty"`
	// Timeout abandons requests that wait in the queue longer than this
	// before dispatch (admission timeout); zero means requests never
	// abandon. Timed-out requests count toward offered load but not
	// goodput.
	Timeout sim.Time `json:",omitempty"`
	// BurstFactor is the bursty process's on-state rate multiple; zero
	// defaults to 3.
	BurstFactor float64 `json:",omitempty"`
	// BurstOnFraction is the long-run fraction of time the bursty
	// process spends in the on state; zero defaults to 0.3.
	BurstOnFraction float64 `json:",omitempty"`
	// BurstPeriod is the mean on+off cycle length; zero defaults to
	// 50ms.
	BurstPeriod sim.Time `json:",omitempty"`
	// DiurnalPeriod is the sinusoid's full period; zero defaults to 2s
	// (a day compressed to simulation scale).
	DiurnalPeriod sim.Time `json:",omitempty"`
	// DiurnalAmplitude is the sinusoid's relative amplitude in [0, 1);
	// zero defaults to 0.8.
	DiurnalAmplitude float64 `json:",omitempty"`
}

// Open reports whether the config selects an open-system run. Empty and
// "closed" both mean the existing closed-loop model.
func (c Config) Open() bool {
	return c.Process != "" && c.Process != ProcessClosed
}

// Canonical resolves defaults into the form two configs must be
// compared in to decide whether they describe the same run. A closed
// config (empty or "closed") canonicalizes to the zero value, so a run
// that spells out the closed adapter shares its cache entry — and its
// Result — with a plain closed-loop run.
func (c Config) Canonical() Config {
	if !c.Open() {
		return Config{}
	}
	if c.BurstFactor == 0 {
		c.BurstFactor = 3
	}
	if c.BurstOnFraction == 0 {
		c.BurstOnFraction = 0.3
	}
	if c.BurstPeriod == 0 {
		c.BurstPeriod = 50 * sim.Millisecond
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 2 * sim.Second
	}
	if c.DiurnalAmplitude == 0 {
		c.DiurnalAmplitude = 0.8
	}
	return c
}

// Validate reports structurally impossible configurations.
func (c Config) Validate() error {
	if !c.Open() {
		return nil
	}
	if err := ValidateProcess(c.Process); err != nil {
		return err
	}
	if c.RatePerSec <= 0 {
		return fmt.Errorf("traffic: process %q needs RatePerSec > 0 (got %v)", c.Process, c.RatePerSec)
	}
	if c.Requests < 0 {
		return fmt.Errorf("traffic: Requests = %d", c.Requests)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("traffic: Timeout = %v", c.Timeout)
	}
	if c.BurstFactor < 0 || c.BurstPeriod < 0 {
		return fmt.Errorf("traffic: negative burst parameter")
	}
	if c.BurstOnFraction < 0 || c.BurstOnFraction >= 1 {
		return fmt.Errorf("traffic: BurstOnFraction = %v outside [0, 1)", c.BurstOnFraction)
	}
	if c.DiurnalPeriod < 0 {
		return fmt.Errorf("traffic: DiurnalPeriod = %v", c.DiurnalPeriod)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("traffic: DiurnalAmplitude = %v outside [0, 1)", c.DiurnalAmplitude)
	}
	return nil
}

// processes is the arrival-process registry. Factories receive the
// canonicalized config and mint a fresh Process per run (processes hold
// per-run state).
var processes = registry.New[Factory]("arrival process")

// Register adds an arrival process under name. Names are unique;
// registering an existing one (including the built-ins) is an error.
func Register(name string, factory Factory) error {
	if factory == nil {
		return fmt.Errorf("traffic: nil factory for arrival process %q", name)
	}
	if err := processes.Register(name, func() Factory { return factory }); err != nil {
		return fmt.Errorf("traffic: %w", err)
	}
	return nil
}

// NewProcess builds the named process from the canonicalized cfg. The
// "closed" adapter returns a nil Process: the caller runs the existing
// closed-loop model.
func NewProcess(name string, cfg Config) (Process, error) {
	factory, err := processes.New(name)
	if err != nil {
		return nil, fmt.Errorf("traffic: %w", err)
	}
	return factory(cfg.Canonical())
}

// ValidateProcess reports whether name resolves in the registry. The
// empty name is valid (closed-loop default), mirroring the other policy
// validators.
func ValidateProcess(name string) error {
	if name == "" || processes.Known(name) {
		return nil
	}
	_, err := processes.New(name)
	return fmt.Errorf("traffic: %w", err)
}

// Names returns every registered arrival-process name in registration
// order.
func Names() []string { return processes.Names() }

func init() {
	processes.MustRegister(ProcessPoisson, func() Factory { return newPoisson })
	processes.MustRegister(ProcessBursty, func() Factory { return newBursty })
	processes.MustRegister(ProcessDiurnal, func() Factory { return newDiurnal })
	processes.MustRegister(ProcessClosed, func() Factory {
		return func(Config) (Process, error) { return nil, nil }
	})
}

// --- Poisson ------------------------------------------------------------

// poisson draws exponential inter-arrival gaps: the memoryless baseline
// of open-system load models.
type poisson struct {
	meanGapNS float64
}

func newPoisson(cfg Config) (Process, error) {
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("traffic: poisson needs RatePerSec > 0 (got %v)", cfg.RatePerSec)
	}
	return &poisson{meanGapNS: 1e9 / cfg.RatePerSec}, nil
}

func (p *poisson) Next(_ sim.Time, rng *sim.Rand) sim.Time {
	return expGap(rng, p.meanGapNS)
}

// expGap draws an exponential gap with the given mean in nanoseconds,
// floored at 1ns so consecutive arrivals always advance virtual time.
func expGap(rng *sim.Rand, meanNS float64) sim.Time {
	g := sim.Time(rng.Exp(meanNS))
	if g < 1 {
		g = 1
	}
	return g
}

// --- Bursty (MMPP-style on/off) -----------------------------------------

// bursty is a two-state Markov-modulated Poisson process: exponential
// sojourns in an "on" state arriving at BurstFactor x the mean rate and
// an "off" state at the complementary trough rate, chosen so the
// long-run average equals RatePerSec. Memorylessness lets Next redraw
// the pending gap whenever a state boundary passes before the arrival.
type bursty struct {
	onGapNS  float64 // mean inter-arrival gap while on
	offGapNS float64 // mean gap while off; 0 means no arrivals when off
	onMean   float64 // mean on-sojourn, ns
	offMean  float64 // mean off-sojourn, ns

	on       bool
	stateEnd sim.Time
	seeded   bool
}

func newBursty(cfg Config) (Process, error) {
	if cfg.RatePerSec <= 0 {
		return nil, fmt.Errorf("traffic: bursty needs RatePerSec > 0 (got %v)", cfg.RatePerSec)
	}
	if cfg.BurstOnFraction <= 0 || cfg.BurstOnFraction >= 1 || cfg.BurstPeriod <= 0 || cfg.BurstFactor <= 0 {
		return nil, fmt.Errorf("traffic: bursty needs BurstFactor, BurstOnFraction in (0,1), and BurstPeriod > 0 — canonicalize the config first")
	}
	f := cfg.BurstOnFraction
	rateOn := cfg.RatePerSec * cfg.BurstFactor
	// Long-run average: f*rateOn + (1-f)*rateOff = RatePerSec.
	rateOff := cfg.RatePerSec * (1 - f*cfg.BurstFactor) / (1 - f)
	if rateOff < 0 {
		rateOff = 0
	}
	b := &bursty{
		onMean:  f * float64(cfg.BurstPeriod),
		offMean: (1 - f) * float64(cfg.BurstPeriod),
	}
	if rateOn > 0 {
		b.onGapNS = 1e9 / rateOn
	}
	if rateOff > 0 {
		b.offGapNS = 1e9 / rateOff
	}
	return b, nil
}

func (b *bursty) Next(now sim.Time, rng *sim.Rand) sim.Time {
	if !b.seeded {
		// Start in the off state so the first burst onset is itself
		// random; the first sojourn begins at the first call's now.
		b.seeded = true
		b.on = false
		b.stateEnd = now + sim.Time(rng.Exp(b.offMean))
	}
	t := now
	for {
		gap := b.onGapNS
		if !b.on {
			gap = b.offGapNS
		}
		if gap > 0 {
			arrival := t + expGap(rng, gap)
			if arrival <= b.stateEnd {
				d := arrival - now
				if d < 1 {
					d = 1
				}
				return d
			}
		}
		// No arrival before the state boundary: advance to it, flip
		// state, and redraw (valid by memorylessness).
		t = b.stateEnd
		b.on = !b.on
		mean := b.offMean
		if b.on {
			mean = b.onMean
		}
		b.stateEnd = t + sim.Time(rng.Exp(mean))
	}
}

// --- Diurnal (sinusoidal rate curve) ------------------------------------

// diurnal modulates the Poisson rate along a sinusoid — the compressed
// day/night load curve of a user-facing service — and samples it by
// thinning against the peak rate.
type diurnal struct {
	baseRate float64 // per ns
	amp      float64
	period   float64 // ns
}

func newDiurnal(cfg Config) (Process, error) {
	if cfg.RatePerSec <= 0 || cfg.DiurnalPeriod <= 0 || cfg.DiurnalAmplitude < 0 || cfg.DiurnalAmplitude >= 1 {
		return nil, fmt.Errorf("traffic: diurnal needs RatePerSec > 0, DiurnalPeriod > 0, and DiurnalAmplitude in [0,1) — canonicalize the config first")
	}
	return &diurnal{
		baseRate: cfg.RatePerSec / 1e9,
		amp:      cfg.DiurnalAmplitude,
		period:   float64(cfg.DiurnalPeriod),
	}, nil
}

func (d *diurnal) Next(now sim.Time, rng *sim.Rand) sim.Time {
	rmax := d.baseRate * (1 + d.amp)
	t := now
	for {
		t += expGap(rng, 1/rmax)
		rate := d.baseRate * (1 + d.amp*math.Sin(2*math.Pi*float64(t)/d.period))
		if rng.Float64()*rmax < rate {
			gap := t - now
			if gap < 1 {
				gap = 1
			}
			return gap
		}
	}
}
