package traffic

import (
	"math"
	"testing"

	"javasim/internal/sim"
)

func mkProcess(t *testing.T, name string, cfg Config) Process {
	t.Helper()
	p, err := NewProcess(name, cfg)
	if err != nil {
		t.Fatalf("NewProcess(%q): %v", name, err)
	}
	return p
}

// drawTrace generates n arrival instants from a fresh process and rng.
func drawTrace(t *testing.T, name string, cfg Config, seed uint64, n int) []sim.Time {
	t.Helper()
	cfg.Process = name
	cfg = cfg.Canonical()
	p := mkProcess(t, name, cfg)
	rng := sim.NewRand(seed)
	out := make([]sim.Time, n)
	now := sim.Time(0)
	for i := range out {
		gap := p.Next(now, rng)
		if gap <= 0 {
			t.Fatalf("%s: non-positive gap %v at arrival %d", name, gap, i)
		}
		now += gap
		out[i] = now
	}
	return out
}

// TestDeterminism verifies equal seeds reproduce identical arrival
// traces for every built-in open process.
func TestDeterminism(t *testing.T) {
	cfg := Config{RatePerSec: 50000}
	for _, name := range []string{ProcessPoisson, ProcessBursty, ProcessDiurnal} {
		a := drawTrace(t, name, cfg, 7, 2000)
		b := drawTrace(t, name, cfg, 7, 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: traces diverge at arrival %d: %v vs %v", name, i, a[i], b[i])
			}
		}
		c := drawTrace(t, name, cfg, 8, 2000)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds produced identical traces", name)
		}
	}
}

// TestMeanRate verifies each process's long-run average rate converges
// on RatePerSec. Bursty and diurnal modulate the instantaneous rate but
// preserve the mean by construction.
func TestMeanRate(t *testing.T) {
	const rate = 100000.0
	cfg := Config{RatePerSec: rate}
	const n = 200000
	for _, name := range []string{ProcessPoisson, ProcessBursty, ProcessDiurnal} {
		trace := drawTrace(t, name, cfg, 11, n)
		span := trace[len(trace)-1].Seconds()
		got := float64(n) / span
		if math.Abs(got-rate)/rate > 0.05 {
			t.Errorf("%s: long-run rate %.0f/s, want %.0f/s ±5%%", name, got, rate)
		}
	}
}

// TestBurstyModulates verifies the bursty process actually alternates
// between dense and sparse stretches rather than degenerating to
// Poisson: the variance of per-window arrival counts must exceed the
// Poisson variance (= mean) by a wide margin.
func TestBurstyModulates(t *testing.T) {
	cfg := Config{Process: ProcessBursty, RatePerSec: 100000}.Canonical()
	trace := drawTrace(t, ProcessBursty, cfg, 3, 100000)
	window := cfg.BurstPeriod / 4
	counts := make(map[sim.Time]float64)
	for _, at := range trace {
		counts[at/window]++
	}
	last := trace[len(trace)-1] / window
	var sum, sumsq float64
	for w := sim.Time(0); w < last; w++ {
		c := counts[w]
		sum += c
		sumsq += c * c
	}
	n := float64(last)
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 2*mean {
		t.Fatalf("bursty window counts look Poisson: mean %.1f variance %.1f", mean, variance)
	}
}

// TestClosedAdapter verifies the closed adapter returns a nil process —
// the signal to run the existing closed-loop model.
func TestClosedAdapter(t *testing.T) {
	p, err := NewProcess(ProcessClosed, Config{Process: ProcessClosed})
	if err != nil {
		t.Fatalf("closed adapter: %v", err)
	}
	if p != nil {
		t.Fatalf("closed adapter returned non-nil process %T", p)
	}
}

// TestCanonical verifies closed-equivalent configs collapse to the zero
// value (sharing cache keys with plain closed-loop runs) and open
// configs resolve their defaults.
func TestCanonical(t *testing.T) {
	for _, c := range []Config{{}, {Process: ProcessClosed}, {Process: ProcessClosed, RatePerSec: 100}} {
		if got := c.Canonical(); got != (Config{}) {
			t.Errorf("Canonical(%+v) = %+v, want zero", c, got)
		}
	}
	open := Config{Process: ProcessPoisson, RatePerSec: 100}.Canonical()
	if open.BurstFactor != 3 || open.BurstOnFraction != 0.3 || open.BurstPeriod != 50*sim.Millisecond {
		t.Errorf("open canonical burst defaults wrong: %+v", open)
	}
	if open.DiurnalPeriod != 2*sim.Second || open.DiurnalAmplitude != 0.8 {
		t.Errorf("open canonical diurnal defaults wrong: %+v", open)
	}
}

// TestValidate exercises the config validator's rejections.
func TestValidate(t *testing.T) {
	ok := Config{Process: ProcessPoisson, RatePerSec: 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("closed config rejected: %v", err)
	}
	bad := []Config{
		{Process: "no-such-process", RatePerSec: 100},
		{Process: ProcessPoisson},
		{Process: ProcessPoisson, RatePerSec: -1},
		{Process: ProcessPoisson, RatePerSec: 100, Requests: -1},
		{Process: ProcessPoisson, RatePerSec: 100, Timeout: -1},
		{Process: ProcessBursty, RatePerSec: 100, BurstOnFraction: 1},
		{Process: ProcessDiurnal, RatePerSec: 100, DiurnalAmplitude: 1.5},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

// TestRegister verifies registration uniqueness and custom resolution.
func TestRegister(t *testing.T) {
	if err := Register("test-fixed", func(cfg Config) (Process, error) {
		return fixedGap(sim.Time(1e9 / cfg.RatePerSec)), nil
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := Register("test-fixed", func(Config) (Process, error) { return nil, nil }); err == nil {
		t.Fatalf("duplicate registration accepted")
	}
	if err := Register("nil-factory", nil); err == nil {
		t.Fatalf("nil factory accepted")
	}
	if err := ValidateProcess("test-fixed"); err != nil {
		t.Fatalf("ValidateProcess: %v", err)
	}
	if err := ValidateProcess("absent"); err == nil {
		t.Fatalf("ValidateProcess accepted unknown name")
	}
	p := mkProcess(t, "test-fixed", Config{Process: "test-fixed", RatePerSec: 1000})
	if gap := p.Next(0, sim.NewRand(1)); gap != sim.Time(1e6) {
		t.Fatalf("custom process gap = %v, want 1ms", gap)
	}
	found := false
	for _, n := range Names() {
		if n == "test-fixed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() missing registered process: %v", Names())
	}
}

type fixedGap sim.Time

func (f fixedGap) Next(sim.Time, *sim.Rand) sim.Time { return sim.Time(f) }
