package traffic

import (
	"javasim/internal/metrics"
	"javasim/internal/sim"
)

// Stats is the open-system measurement record of one run: the
// per-request latency distribution, queue behavior over time, and the
// offered/completed/timed-out accounting that goodput curves plot.
// vm.Result carries one for open-system runs and nil for closed-loop
// runs.
type Stats struct {
	// Process and RatePerSec echo the run's arrival configuration so
	// reports can label rate-sweep rows.
	Process    string
	RatePerSec float64

	// Offered counts requests injected by the arrival process;
	// Completed counts requests served to completion; TimedOut counts
	// requests abandoned after waiting longer than the admission
	// timeout. Offered == Completed + TimedOut at run end.
	Offered   int64
	Completed int64
	TimedOut  int64

	// Latency is the arrival-to-completion distribution in virtual
	// nanoseconds — the per-request number an open system's users see,
	// queueing delay included.
	Latency *metrics.Histogram
	// QueueWait is the arrival-to-dispatch distribution in virtual
	// nanoseconds: the queueing component of Latency.
	QueueWait *metrics.Histogram

	// QueueDepthMax and QueueDepthMean summarize queue depth over the
	// run (the mean is time-weighted).
	QueueDepthMax  int
	QueueDepthMean float64

	// QueueLog samples queue depth over time, decimated to a bounded
	// number of points.
	QueueLog []QueueSample
}

// QueueSample is one point of the queue-depth-over-time curve.
type QueueSample struct {
	Time  sim.Time
	Depth int
}

// GoodputPerSec returns completed requests per virtual second over the
// run window.
func (s *Stats) GoodputPerSec(total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(s.Completed) / total.Seconds()
}

// OfferedPerSec returns the observed offered load in requests per
// virtual second over the run window.
func (s *Stats) OfferedPerSec(total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(s.Offered) / total.Seconds()
}
