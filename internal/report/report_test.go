package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:   "Fig 1a: lock acquisitions",
		Headers: []string{"workload", "t=4", "t=48"},
	}
	t.AddRow("xalan", "25588", "43056")
	t.AddRow("jython", "10108", "10108")
	return t
}

func TestASCIIRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 1a", "workload", "xalan", "43056", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the same prefix width up to the
	// second column.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestCSVRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if lines[0] != "workload,t=4,t=48" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "xalan,25588,43056" {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row accepted")
		}
	}()
	sample().AddRow("only-one-cell")
}

func TestNoteRendered(t *testing.T) {
	tb := sample()
	tb.Note = "paper reports growth for scalable apps"
	if !strings.Contains(tb.String(), "note: paper reports") {
		t.Error("note missing")
	}
}

func TestChart(t *testing.T) {
	ch := &Chart{
		Title:  "Fig 2",
		XTicks: []string{"4", "8", "16"},
		Series: []Series{
			{Name: "mutator", Points: []float64{100, 55, 30}},
			{Name: "gc", Points: []float64{2, 3, 4}},
		},
	}
	var buf bytes.Buffer
	if err := ch.WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 2", "a = mutator", "b = gc", "min=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{Title: "empty"}).WriteASCII(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart not flagged")
	}
}

func TestFormatters(t *testing.T) {
	if FormatCount(999) != "999" {
		t.Error(FormatCount(999))
	}
	if FormatCount(43056) != "43.1k" {
		t.Error(FormatCount(43056))
	}
	if FormatCount(2_500_000) != "2.50M" {
		t.Error(FormatCount(2_500_000))
	}
	if FormatPct(0.25) != "25.0%" {
		t.Error(FormatPct(0.25))
	}
}
