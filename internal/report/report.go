// Package report renders experiment results as aligned ASCII tables, CSV,
// and simple ASCII line charts — the output layer for cmd/figures and the
// examples.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells. The first header names the row key.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; it panics when the arity does not match the
// headers, which is always a construction bug in the experiment code.
func (t *Table) AddRow(cells ...string) {
	if len(t.Headers) > 0 && len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (headers first, title omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders ASCII into a string.
func (t *Table) String() string {
	var b strings.Builder
	t.WriteASCII(&b)
	return b.String()
}

// Series is one named line in a chart.
type Series struct {
	Name   string
	Points []float64
}

// Chart is a minimal ASCII line chart over a shared X axis, for quick
// visual checks of figure shapes in the terminal.
type Chart struct {
	Title  string
	XLabel string
	XTicks []string
	Series []Series
	Height int // rows; default 12
}

// WriteASCII renders the chart.
func (c *Chart) WriteASCII(w io.Writer) error {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	width := 0
	for _, s := range c.Series {
		if len(s.Points) > width {
			width = len(s.Points)
		}
	}
	if width == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			min = math.Min(min, p)
			max = math.Max(max, p)
		}
	}
	if max == min {
		max = min + 1
	}
	// Each series gets a marker letter.
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width*6))
	}
	for si, s := range c.Series {
		marker := byte('a' + si%26)
		for xi, p := range s.Points {
			y := int(math.Round((p - min) / (max - min) * float64(height-1)))
			row := height - 1 - y
			col := xi * 6
			if grid[row][col] == ' ' {
				grid[row][col] = marker
			} else {
				grid[row][col] = '*' // overlap
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (min=%.3g max=%.3g)\n", c.Title, min, max)
	for _, row := range grid {
		fmt.Fprintf(&b, "| %s\n", string(row))
	}
	b.WriteString("+" + strings.Repeat("-", width*6+1) + "\n ")
	for _, tick := range c.XTicks {
		fmt.Fprintf(&b, " %-5s", tick)
	}
	b.WriteByte('\n')
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c = %s\n", byte('a'+si%26), s.Name)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, "  x: %s\n", c.XLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatCount renders large counts compactly (12.3k, 4.5M).
func FormatCount(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// FormatPct renders a fraction as a percentage.
func FormatPct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
