// Package fit is the analytic scalability-fitting engine: it
// least-squares-fits Gunther's Universal Scalability Law
//
//	C(N) = N / (1 + sigma*(N-1) + kappa*N*(N-1))
//
// and the two-parameter Amdahl special case (kappa = 0) to a measured
// (concurrency, throughput) sweep, separating contention cost (sigma —
// the serialization the paper ablates with lock disciplines) from
// coherency cost (kappa — the pairwise-exchange term behind GC, memory
// bandwidth, and placement losses). Where the paper recovers its factor
// decomposition by ablation, the fit recovers it analytically from a
// single sweep, so the two methods cross-validate each other.
//
// Fitting is fully deterministic: closed-form seeding via the quadratic
// transform Gunther describes (regress N/C(N)-1 on (N-1) and N(N-1)),
// then a damped Gauss-Newton (Levenberg-Marquardt) refinement over
// sigma >= 0, kappa >= 0 with the throughput scale lambda profiled out
// in closed form at every step. No randomness, no iteration-order
// dependence — equal inputs produce bit-equal fits.
package fit

import (
	"fmt"
	"math"
)

// Point is one measured sweep point: throughput X at concurrency N.
type Point struct {
	// N is the concurrency (thread count) of the measurement.
	N float64
	// X is the measured throughput at N, in any consistent rate unit
	// (the fitted scale lambda absorbs the unit).
	X float64
}

// Series pairs a thread-count sweep with its measured throughputs as fit
// points. It is the adapter between the simulator's sweep shape and the
// fitter's input.
func Series(threads []int, throughput []float64) ([]Point, error) {
	if len(threads) != len(throughput) {
		return nil, fmt.Errorf("fit: %d thread counts but %d throughputs", len(threads), len(throughput))
	}
	pts := make([]Point, len(threads))
	for i := range threads {
		pts[i] = Point{N: float64(threads[i]), X: throughput[i]}
	}
	return pts, Validate(pts)
}

// MinPoints is the smallest sweep a fit accepts: with two free shape
// parameters plus the throughput scale, fewer than three points is an
// interpolation, not a fit.
const MinPoints = 3

// Validate reports why a point set cannot be fitted: fewer than
// MinPoints points, non-ascending or non-positive concurrency, or
// non-finite/non-positive throughput. Rejecting these up front is what
// keeps the solver NaN-free.
func Validate(pts []Point) error {
	if len(pts) < MinPoints {
		return fmt.Errorf("fit: need at least %d sweep points, have %d — a degenerate sweep cannot separate contention from coherency", MinPoints, len(pts))
	}
	for i, p := range pts {
		if !(p.N > 0) || math.IsInf(p.N, 0) {
			return fmt.Errorf("fit: point %d: concurrency %v is not a positive finite count", i, p.N)
		}
		if i > 0 && p.N <= pts[i-1].N {
			return fmt.Errorf("fit: point %d: concurrency must be strictly ascending (%v after %v)", i, p.N, pts[i-1].N)
		}
		if !(p.X > 0) || math.IsInf(p.X, 0) {
			return fmt.Errorf("fit: point %d: throughput %v is not a positive finite rate", i, p.X)
		}
	}
	return nil
}

// Model kinds.
const (
	// KindUSL is the full two-parameter law (sigma and kappa free).
	KindUSL = "usl"
	// KindAmdahl is the contention-only special case (kappa pinned to 0).
	KindAmdahl = "amdahl"
)

// Model is one fitted scalability law: X(N) ≈ Lambda * N / (1 +
// Sigma*(N-1) + Kappa*N*(N-1)).
type Model struct {
	// Kind is KindUSL or KindAmdahl.
	Kind string
	// Sigma is the contention (serialization) coefficient, >= 0.
	Sigma float64
	// Kappa is the coherency (pairwise-exchange) coefficient, >= 0;
	// always 0 for Amdahl models.
	Kappa float64
	// Lambda is the fitted per-unit-concurrency throughput scale — the
	// ideal single-thread throughput in the sweep's rate unit.
	Lambda float64
	// R2 is the coefficient of determination of the fit on the
	// throughput axis (1 = the model explains the sweep exactly).
	R2 float64
	// SSE is the sum of squared throughput residuals the fit minimized.
	SSE float64
}

// Predict returns the model's throughput at concurrency n.
func (m Model) Predict(n float64) float64 {
	return m.Lambda * n / uslDenom(n, m.Sigma, m.Kappa)
}

// PeakN is the predicted peak concurrency N* = floor(sqrt((1-sigma)/kappa))
// — the point past which the coherency term makes added threads
// retrograde. It returns 0 when kappa is 0 (throughput saturates but
// never rolls over, so there is no finite peak) and 1 when sigma >= 1
// (retrograde from the start).
func (m Model) PeakN() int {
	if m.Kappa <= 0 {
		return 0
	}
	if m.Sigma >= 1 {
		return 1
	}
	n := int(math.Floor(math.Sqrt((1 - m.Sigma) / m.Kappa)))
	if n < 1 {
		n = 1
	}
	return n
}

// Fit is the complete fitting result: both models plus the
// residual-based choice between them.
type Fit struct {
	// USL is the full two-parameter fit.
	USL Model
	// Amdahl is the contention-only fit (kappa = 0).
	Amdahl Model
	// Preferred is KindUSL or KindAmdahl: the USL model is preferred
	// only when its coherency term actually pays for itself — a fitted
	// kappa meaningfully above zero and a residual meaningfully below
	// Amdahl's. Otherwise the simpler model wins.
	Preferred string
}

// Best returns the preferred model.
func (f Fit) Best() Model {
	if f.Preferred == KindAmdahl {
		return f.Amdahl
	}
	return f.USL
}

// preferUSL decides the model selection: the extra kappa parameter must
// cut the residual by at least 5% (and be nonzero) to justify itself.
const (
	kappaFloor    = 1e-9
	residualGain  = 0.95
	maxIterations = 200
)

// Both fits the USL and Amdahl models and selects between them by
// residual.
func Both(pts []Point) (Fit, error) {
	usl, err := USL(pts)
	if err != nil {
		return Fit{}, err
	}
	amdahl, err := Amdahl(pts)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{USL: usl, Amdahl: amdahl, Preferred: KindAmdahl}
	if usl.Kappa > kappaFloor && usl.SSE < residualGain*amdahl.SSE {
		f.Preferred = KindUSL
	}
	return f, nil
}

// USL fits the full two-parameter law.
func USL(pts []Point) (Model, error) {
	if err := Validate(pts); err != nil {
		return Model{}, err
	}
	sigma, kappa := seed(pts, true)
	sigma, kappa = refine(pts, sigma, kappa, true)
	return finish(KindUSL, pts, sigma, kappa), nil
}

// Amdahl fits the contention-only special case (kappa = 0).
func Amdahl(pts []Point) (Model, error) {
	if err := Validate(pts); err != nil {
		return Model{}, err
	}
	sigma, _ := seed(pts, false)
	sigma, _ = refine(pts, sigma, 0, false)
	return finish(KindAmdahl, pts, sigma, 0), nil
}

func uslDenom(n, sigma, kappa float64) float64 {
	return 1 + sigma*(n-1) + kappa*n*(n-1)
}

// profileLambda computes, for fixed (sigma, kappa), the closed-form
// least-squares throughput scale and the resulting residual sum — the
// variable-projection step that keeps the nonlinear search
// two-dimensional.
func profileLambda(pts []Point, sigma, kappa float64) (lambda, sse float64) {
	var num, den float64
	for _, p := range pts {
		g := p.N / uslDenom(p.N, sigma, kappa)
		num += p.X * g
		den += g * g
	}
	if den <= 0 {
		return 0, math.Inf(1)
	}
	lambda = num / den
	for _, p := range pts {
		r := p.X - lambda*p.N/uslDenom(p.N, sigma, kappa)
		sse += r * r
	}
	return lambda, sse
}

// seed derives starting (sigma, kappa) via Gunther's quadratic
// transform: estimate a linear-scaling throughput scale lambda0, form
// the capacity deficit y = lambda0*N/X - 1, and regress it on
// {1, N-1, N*(N-1)}. When the data obeys the law with true scale
// lambda, y = (rho-1) + rho*sigma*(N-1) + rho*kappa*N*(N-1) with
// rho = lambda0/lambda, so the intercept recovers the scale mismatch
// and the slope coefficients divided by rho recover sigma and kappa
// exactly on clean data.
func seed(pts []Point, withKappa bool) (sigma, kappa float64) {
	lambda0, _ := profileLambda(pts, 0, 0)
	if lambda0 <= 0 {
		return 0, 0
	}
	// Normal equations for y ~ a + b*u (+ c*v); u = N-1, v = N(N-1).
	var n, su, sv, suu, suv, svv, sy, syu, syv float64
	for _, p := range pts {
		y := lambda0*p.N/p.X - 1
		u := p.N - 1
		v := p.N * (p.N - 1)
		n++
		su += u
		sv += v
		suu += u * u
		suv += u * v
		svv += v * v
		sy += y
		syu += y * u
		syv += y * v
	}
	if !withKappa {
		a, b := solve2(n, su, su, suu, sy, syu)
		rho := 1 + a
		if rho > 0 {
			sigma = b / rho
		}
		return clamp(sigma), 0
	}
	a, b, c := solve3(
		n, su, sv,
		su, suu, suv,
		sv, suv, svv,
		sy, syu, syv,
	)
	rho := 1 + a
	if rho > 0 {
		sigma, kappa = b/rho, c/rho
	}
	return clamp(sigma), clamp(kappa)
}

// solve2 solves the symmetric 2x2 system [[a11 a12][a21 a22]]x = [b1 b2].
func solve2(a11, a12, a21, a22, b1, b2 float64) (x1, x2 float64) {
	det := a11*a22 - a12*a21
	if det == 0 {
		return 0, 0
	}
	return (b1*a22 - b2*a12) / det, (a11*b2 - a21*b1) / det
}

// solve3 solves a 3x3 linear system by Cramer's rule.
func solve3(a11, a12, a13, a21, a22, a23, a31, a32, a33, b1, b2, b3 float64) (x1, x2, x3 float64) {
	det3 := func(m11, m12, m13, m21, m22, m23, m31, m32, m33 float64) float64 {
		return m11*(m22*m33-m23*m32) - m12*(m21*m33-m23*m31) + m13*(m21*m32-m22*m31)
	}
	d := det3(a11, a12, a13, a21, a22, a23, a31, a32, a33)
	if d == 0 {
		return 0, 0, 0
	}
	x1 = det3(b1, a12, a13, b2, a22, a23, b3, a32, a33) / d
	x2 = det3(a11, b1, a13, a21, b2, a23, a31, b3, a33) / d
	x3 = det3(a11, a12, b1, a21, a22, b2, a31, a32, b3) / d
	return x1, x2, x3
}

func clamp(v float64) float64 {
	if !(v > 0) { // also catches NaN
		return 0
	}
	return v
}

// refine runs Levenberg-Marquardt over (sigma, kappa) — or sigma alone —
// on the lambda-profiled residual vector r_i = X_i - lambda*g_i, with a
// forward-difference Jacobian and projection onto the non-negative
// orthant after every trial step. At most two parameters, so the normal
// equations are solved in closed form.
func refine(pts []Point, sigma, kappa float64, withKappa bool) (float64, float64) {
	residuals := func(s, k float64, out []float64) float64 {
		lambda, sse := profileLambda(pts, s, k)
		if out != nil {
			for i, p := range pts {
				out[i] = p.X - lambda*p.N/uslDenom(p.N, s, k)
			}
		}
		return sse
	}
	m := len(pts)
	r := make([]float64, m)
	rs := make([]float64, m)
	rk := make([]float64, m)
	sse := residuals(sigma, kappa, r)
	mu := 1e-4
	for iter := 0; iter < maxIterations; iter++ {
		hs := step(sigma)
		residuals(sigma+hs, kappa, rs)
		hk := step(kappa)
		if withKappa {
			residuals(sigma, kappa+hk, rk)
		}
		// Normal equations J^T J delta = -J^T r with J from forward
		// differences.
		var jss, jsk, jkk, gs, gk float64
		for i := 0; i < m; i++ {
			js := (rs[i] - r[i]) / hs
			jss += js * js
			gs += js * r[i]
			if withKappa {
				jk := (rk[i] - r[i]) / hk
				jsk += js * jk
				jkk += jk * jk
				gk += jk * r[i]
			}
		}
		var ds, dk float64
		if withKappa {
			ds, dk = solve2(jss*(1+mu), jsk, jsk, jkk*(1+mu), -gs, -gk)
		} else if jss > 0 {
			ds = -gs / (jss * (1 + mu))
		}
		trialS, trialK := clamp(sigma+ds), clamp(kappa+dk)
		trialSSE := residuals(trialS, trialK, nil)
		if trialSSE < sse {
			improvement := sse - trialSSE
			sigma, kappa, sse = trialS, trialK, trialSSE
			residuals(sigma, kappa, r)
			if mu > 1e-12 {
				mu /= 4
			}
			if improvement <= 1e-14*(1+sse) {
				break
			}
		} else {
			mu *= 8
			if mu > 1e12 {
				break
			}
		}
	}
	return sigma, kappa
}

func step(v float64) float64 {
	h := 1e-6 * math.Abs(v)
	if h < 1e-9 {
		h = 1e-9
	}
	return h
}

// finish assembles the Model record: the profiled lambda, the residual,
// and R^2 against the mean-throughput baseline.
func finish(kind string, pts []Point, sigma, kappa float64) Model {
	lambda, sse := profileLambda(pts, sigma, kappa)
	var mean float64
	for _, p := range pts {
		mean += p.X
	}
	mean /= float64(len(pts))
	var sst float64
	for _, p := range pts {
		d := p.X - mean
		sst += d * d
	}
	r2 := 1.0
	switch {
	case sst > 0:
		r2 = 1 - sse/sst
	case sse > 1e-12*mean*mean:
		// A flat sweep the model misses: no variance explained.
		r2 = 0
	}
	if r2 < 0 {
		r2 = 0
	}
	return Model{Kind: kind, Sigma: sigma, Kappa: kappa, Lambda: lambda, R2: r2, SSE: sse}
}
