package fit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// synth generates a clean USL curve at the given thread counts.
func synth(threads []int, lambda, sigma, kappa float64) []Point {
	pts := make([]Point, len(threads))
	for i, t := range threads {
		n := float64(t)
		pts[i] = Point{N: n, X: lambda * n / (1 + sigma*(n-1) + kappa*n*(n-1))}
	}
	return pts
}

var sweepN = []int{1, 2, 4, 8, 16, 32, 64}

// TestRecoveryGrid is the core property test: the fitter must recover
// known (sigma, kappa) — including the sigma=0 and kappa=0 edges — from
// clean synthetic curves, with R^2 ~= 1.
func TestRecoveryGrid(t *testing.T) {
	sigmas := []float64{0, 0.005, 0.02, 0.08, 0.2, 0.5}
	kappas := []float64{0, 1e-5, 1e-4, 1e-3, 5e-3}
	lambdas := []float64{1, 37.5, 1e4}
	for _, lambda := range lambdas {
		for _, sigma := range sigmas {
			for _, kappa := range kappas {
				pts := synth(sweepN, lambda, sigma, kappa)
				m, err := USL(pts)
				if err != nil {
					t.Fatalf("USL(lambda=%g sigma=%g kappa=%g): %v", lambda, sigma, kappa, err)
				}
				if math.Abs(m.Sigma-sigma) > 1e-4+0.01*sigma {
					t.Errorf("lambda=%g sigma=%g kappa=%g: fitted sigma %g", lambda, sigma, kappa, m.Sigma)
				}
				if math.Abs(m.Kappa-kappa) > 1e-6+0.01*kappa {
					t.Errorf("lambda=%g sigma=%g kappa=%g: fitted kappa %g", lambda, sigma, kappa, m.Kappa)
				}
				if relErr := math.Abs(m.Lambda-lambda) / lambda; relErr > 1e-3 {
					t.Errorf("lambda=%g sigma=%g kappa=%g: fitted lambda %g", lambda, sigma, kappa, m.Lambda)
				}
				if m.R2 < 0.9999 {
					t.Errorf("lambda=%g sigma=%g kappa=%g: R2 %g on clean data", lambda, sigma, kappa, m.R2)
				}
			}
		}
	}
}

// TestRecoveryNoisy perturbs clean curves with bounded multiplicative
// noise from a fixed-seed generator; recovery must stay within a loose
// tolerance and R^2 must stay high.
func TestRecoveryNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	cases := []struct{ sigma, kappa float64 }{
		{0.02, 5e-4}, {0.1, 1e-3}, {0, 2e-3}, {0.05, 0},
	}
	for _, c := range cases {
		for trial := 0; trial < 5; trial++ {
			pts := synth(sweepN, 100, c.sigma, c.kappa)
			for i := range pts {
				pts[i].X *= 1 + 0.02*(2*rng.Float64()-1)
			}
			m, err := USL(pts)
			if err != nil {
				t.Fatalf("USL(sigma=%g kappa=%g noisy): %v", c.sigma, c.kappa, err)
			}
			if math.Abs(m.Sigma-c.sigma) > 0.05 {
				t.Errorf("sigma=%g kappa=%g trial %d: fitted sigma %g", c.sigma, c.kappa, trial, m.Sigma)
			}
			if math.Abs(m.Kappa-c.kappa) > 1e-3 {
				t.Errorf("sigma=%g kappa=%g trial %d: fitted kappa %g", c.sigma, c.kappa, trial, m.Kappa)
			}
			if m.R2 < 0.95 {
				t.Errorf("sigma=%g kappa=%g trial %d: R2 %g", c.sigma, c.kappa, trial, m.R2)
			}
		}
	}
}

// TestModelSelection: a pure-Amdahl curve must not grow a spurious
// coherency term, and a strongly retrograde curve must prefer USL.
func TestModelSelection(t *testing.T) {
	f, err := Both(synth(sweepN, 50, 0.1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if f.Preferred != KindAmdahl {
		t.Errorf("kappa=0 curve preferred %q (usl kappa %g, sse %g vs amdahl %g)",
			f.Preferred, f.USL.Kappa, f.USL.SSE, f.Amdahl.SSE)
	}
	if f.Best().Kind != KindAmdahl {
		t.Errorf("Best() = %q, want amdahl", f.Best().Kind)
	}

	f, err = Both(synth(sweepN, 50, 0.05, 2e-3))
	if err != nil {
		t.Fatal(err)
	}
	if f.Preferred != KindUSL {
		t.Errorf("retrograde curve preferred %q (usl sse %g vs amdahl %g)",
			f.Preferred, f.USL.SSE, f.Amdahl.SSE)
	}
	if f.Best().Kind != KindUSL {
		t.Errorf("Best() = %q, want usl", f.Best().Kind)
	}
}

// TestPeakN checks the closed-form peak against the fitted curve: the
// model's own predictions must not keep rising past the reported peak.
func TestPeakN(t *testing.T) {
	m, err := USL(synth(sweepN, 80, 0.03, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	peak := m.PeakN()
	want := int(math.Floor(math.Sqrt((1 - 0.03) / 1e-3)))
	if peak != want {
		t.Errorf("PeakN = %d, want %d", peak, want)
	}
	p := float64(peak)
	if m.Predict(p+1) > m.Predict(p) && m.Predict(p+1) > m.Predict(p-1) {
		t.Errorf("throughput still rising past reported peak %d", peak)
	}

	if got := (Model{Kappa: 0}).PeakN(); got != 0 {
		t.Errorf("PeakN with kappa=0 = %d, want 0 (no finite peak)", got)
	}
	if got := (Model{Sigma: 1.5, Kappa: 1e-3}).PeakN(); got != 1 {
		t.Errorf("PeakN with sigma>=1 = %d, want 1", got)
	}
	if got := (Model{Sigma: 0.9999, Kappa: 10}.PeakN()); got != 1 {
		t.Errorf("PeakN floor = %d, want 1", got)
	}
}

// TestDeterminism: equal inputs must produce bit-equal fits.
func TestDeterminism(t *testing.T) {
	pts := synth(sweepN, 42, 0.07, 3e-4)
	a, err := Both(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Both(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("two fits of the same sweep differ:\n%+v\n%+v", a, b)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		want string
	}{
		{"too few", synth([]int{4, 8}, 10, 0.1, 0), "at least 3 sweep points"},
		{"empty", nil, "at least 3 sweep points"},
		{"non-ascending", []Point{{1, 1}, {4, 3}, {4, 3.5}}, "strictly ascending"},
		{"descending", []Point{{8, 5}, {4, 3}, {2, 2}}, "strictly ascending"},
		{"zero N", []Point{{0, 1}, {2, 2}, {4, 3}}, "positive finite count"},
		{"negative N", []Point{{-1, 1}, {2, 2}, {4, 3}}, "positive finite count"},
		{"NaN N", []Point{{math.NaN(), 1}, {2, 2}, {4, 3}}, "positive finite count"},
		{"zero X", []Point{{1, 0}, {2, 2}, {4, 3}}, "positive finite rate"},
		{"NaN X", []Point{{1, 1}, {2, math.NaN()}, {4, 3}}, "positive finite rate"},
		{"Inf X", []Point{{1, 1}, {2, 2}, {4, math.Inf(1)}}, "positive finite rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Validate(c.pts)
			if err == nil {
				t.Fatalf("Validate(%v) accepted invalid points", c.pts)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			if _, err := USL(c.pts); err == nil {
				t.Errorf("USL accepted invalid points")
			}
			if _, err := Amdahl(c.pts); err == nil {
				t.Errorf("Amdahl accepted invalid points")
			}
			if _, err := Both(c.pts); err == nil {
				t.Errorf("Both accepted invalid points")
			}
		})
	}
}

func TestSeries(t *testing.T) {
	pts, err := Series([]int{2, 4, 8}, []float64{10, 18, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[1] != (Point{4, 18}) {
		t.Errorf("Series points = %v", pts)
	}
	if _, err := Series([]int{2, 4}, []float64{10}); err == nil {
		t.Error("Series accepted mismatched lengths")
	}
	if _, err := Series([]int{2, 4}, []float64{10, 18}); err == nil {
		t.Error("Series accepted a 2-point sweep")
	}
}

// TestFlatSweep: a constant-throughput sweep (full serialization at
// sigma=1) must fit without NaN and report a saturating model.
func TestFlatSweep(t *testing.T) {
	pts := []Point{{1, 10}, {2, 10}, {4, 10}, {8, 10}, {16, 10}}
	f, err := Both(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Best()
	if math.IsNaN(m.Sigma) || math.IsNaN(m.Kappa) || math.IsNaN(m.Lambda) || math.IsNaN(m.R2) {
		t.Fatalf("flat sweep produced NaN: %+v", m)
	}
	if math.Abs(m.Sigma-1) > 0.01 {
		t.Errorf("flat sweep fitted sigma %g, want ~1", m.Sigma)
	}
	if m.R2 < 0.99 {
		t.Errorf("flat sweep R2 %g", m.R2)
	}
}

// TestLinearSweep: perfect linear scaling must fit sigma ~= kappa ~= 0.
func TestLinearSweep(t *testing.T) {
	f, err := Both(synth(sweepN, 7, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	m := f.Best()
	if m.Sigma > 1e-6 || m.Kappa > 1e-9 {
		t.Errorf("linear sweep fitted sigma=%g kappa=%g", m.Sigma, m.Kappa)
	}
	if f.Preferred != KindAmdahl {
		t.Errorf("linear sweep preferred %q", f.Preferred)
	}
	if m.R2 < 0.9999 {
		t.Errorf("linear sweep R2 %g", m.R2)
	}
}

// TestPredictMatchesInput: on clean data the preferred model's
// predictions reproduce every input point to high relative accuracy.
func TestPredictMatchesInput(t *testing.T) {
	pts := synth(sweepN, 123, 0.04, 8e-4)
	f, err := Both(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Best()
	for _, p := range pts {
		if rel := math.Abs(m.Predict(p.N)-p.X) / p.X; rel > 1e-3 {
			t.Errorf("Predict(%v) = %g, measured %g (rel %g)", p.N, m.Predict(p.N), p.X, rel)
		}
	}
}
