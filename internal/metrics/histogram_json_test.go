package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestHistogramJSONRoundTrip verifies that a marshal/unmarshal cycle
// reproduces the histogram exactly — the property the on-disk result
// store and the sweep-shard worker protocol depend on.
func TestHistogramJSONRoundTrip(t *testing.T) {
	cases := map[string]*Histogram{
		"empty": NewHistogram("empty"),
		"zeros": func() *Histogram {
			h := NewHistogram("zeros")
			h.AddN(0, 7)
			return h
		}(),
		"wide": func() *Histogram {
			h := NewHistogram("wide")
			for _, v := range []int64{1, 2, 3, 1023, 1024, 1 << 40, 1<<62 - 1} {
				h.Add(v)
			}
			h.AddN(4096, 1000)
			return h
		}(),
		"unnamed": func() *Histogram {
			h := &Histogram{}
			h.Add(17)
			return h
		}(),
	}
	for name, h := range cases {
		data, err := json.Marshal(h)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got := NewHistogram("overwritten")
		if err := json.Unmarshal(data, got); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(h, got) {
			t.Errorf("%s: round trip diverged:\n  in  %#v\n  out %#v", name, h, got)
		}
		// The statistical surface must survive too, not just DeepEqual.
		if h.FractionBelow(1024) != got.FractionBelow(1024) || h.Percentile(99) != got.Percentile(99) {
			t.Errorf("%s: derived statistics diverged after round trip", name)
		}
	}
}

// TestHistogramJSONRejectsBadBuckets ensures corrupted bucket indexes
// fail decoding loudly instead of clipping silently.
func TestHistogramJSONRejectsBadBuckets(t *testing.T) {
	for _, bad := range []string{
		`{"Buckets":[{"I":65,"N":1}],"Total":1}`,
		`{"Buckets":[{"I":-1,"N":1}],"Total":1}`,
	} {
		h := &Histogram{}
		if err := json.Unmarshal([]byte(bad), h); err == nil {
			t.Errorf("decode %s: want error, got nil", bad)
		}
	}
}
