package metrics

import (
	"fmt"
	"math"
)

// ScalingPoint is one measurement in a thread/core sweep.
type ScalingPoint struct {
	// Threads is the mutator thread count (equal to enabled cores in the
	// paper's methodology).
	Threads int
	// Seconds is the measured execution time for this point.
	Seconds float64
}

// ScalingCurve is a sweep of execution times across thread counts, ordered
// by ascending Threads.
type ScalingCurve []ScalingPoint

// Speedups returns the speedup of each point relative to the first
// (smallest thread count) point.
func (c ScalingCurve) Speedups() []float64 {
	if len(c) == 0 {
		return nil
	}
	base := c[0].Seconds
	out := make([]float64, len(c))
	for i, p := range c {
		if p.Seconds > 0 {
			out[i] = base / p.Seconds
		}
	}
	return out
}

// Efficiency returns per-point parallel efficiency: speedup divided by the
// thread-count ratio relative to the first point.
func (c ScalingCurve) Efficiency() []float64 {
	sp := c.Speedups()
	out := make([]float64, len(sp))
	for i := range sp {
		ratio := float64(c[i].Threads) / float64(c[0].Threads)
		if ratio > 0 {
			out[i] = sp[i] / ratio
		}
	}
	return out
}

// MaxSpeedup returns the largest speedup in the sweep and the thread count
// that achieved it.
func (c ScalingCurve) MaxSpeedup() (speedup float64, threads int) {
	for i, s := range c.Speedups() {
		if s > speedup {
			speedup = s
			threads = c[i].Threads
		}
	}
	return speedup, threads
}

// IsScalable applies the paper's operational definition (§II-C): an
// application is scalable if its execution time keeps reducing as threads
// and cores are added. Quantitatively: the largest thread count must be
// faster than the smallest by at least minSpeedup, and must retain at
// least 95% of the best speedup seen anywhere in the sweep (performance
// is still improving at the top, not rolled over).
func (c ScalingCurve) IsScalable(minSpeedup float64) bool {
	if len(c) < 2 {
		return false
	}
	sp := c.Speedups()
	last := len(sp) - 1
	best, _ := c.MaxSpeedup()
	return c[last].Seconds < c[0].Seconds &&
		sp[last] >= minSpeedup &&
		sp[last] >= 0.95*best
}

// AmdahlFit estimates the sequential fraction f by a least-squares fit of
// Amdahl's law T(n) = T1*(f + (1-f)/ratio) over the curve. It is used to
// sanity-check the workload models against their configured sequential
// fractions.
func (c ScalingCurve) AmdahlFit() float64 {
	if len(c) < 2 {
		return 0
	}
	t1 := c[0].Seconds
	n1 := float64(c[0].Threads)
	// For each point, solve pointwise f_i = (T_i/T1 - 1/r) / (1 - 1/r),
	// then average; robust enough for monotone curves.
	var sum float64
	var cnt int
	for _, p := range c[1:] {
		r := float64(p.Threads) / n1
		if r <= 1 || t1 <= 0 {
			continue
		}
		fi := (p.Seconds/t1 - 1/r) / (1 - 1/r)
		sum += fi
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	f := sum / float64(cnt)
	return math.Max(0, math.Min(1, f))
}

// GrowthFactor returns last/first for a series of non-negative values,
// the "how many times bigger did this get across the sweep" statistic used
// for the lock-count figures. It returns +Inf when the series starts at
// zero but grows, and 1 for empty or all-zero series.
func GrowthFactor(series []float64) float64 {
	if len(series) < 2 {
		return 1
	}
	first, last := series[0], series[len(series)-1]
	if first == 0 {
		if last == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return last / first
}

// MonotoneIncreasing reports whether the series never decreases by more
// than tolerance (relative). It tolerates flat stretches.
func MonotoneIncreasing(series []float64, tolerance float64) bool {
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1]*(1-tolerance) {
			return false
		}
	}
	return true
}

// MonotoneDecreasing reports whether the series never increases by more
// than tolerance (relative).
func MonotoneDecreasing(series []float64, tolerance float64) bool {
	for i := 1; i < len(series); i++ {
		if series[i] > series[i-1]*(1+tolerance) {
			return false
		}
	}
	return true
}

// ImbalanceRatio quantifies work distribution across threads as
// max/mean of the per-thread shares. A perfectly uniform distribution has
// ratio 1; a pipeline where 3 of 48 threads do everything has ratio ~16.
func ImbalanceRatio(shares []float64) float64 {
	if len(shares) == 0 {
		return 1
	}
	var max, sum float64
	for _, s := range shares {
		if s > max {
			max = s
		}
		sum += s
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(len(shares))
	return max / mean
}

// TopKShare returns the fraction of total work carried by the k busiest
// threads. The paper observes jython concentrates most work in 3-4 threads.
func TopKShare(shares []float64, k int) float64 {
	if len(shares) == 0 || k <= 0 {
		return 0
	}
	cp := make([]float64, len(shares))
	copy(cp, shares)
	// Selection by partial sort: series are short (<= threads), so a full
	// sort is fine.
	sortDescending(cp)
	if k > len(cp) {
		k = len(cp)
	}
	var top, total float64
	for i, v := range cp {
		if i < k {
			top += v
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	return top / total
}

func sortDescending(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// FormatSpeedups renders a speedup table row, for reports.
func FormatSpeedups(c ScalingCurve) string {
	s := ""
	for i, p := range c {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.2fx", p.Threads, c.Speedups()[i])
	}
	return s
}
