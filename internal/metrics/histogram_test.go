package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram("test")
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1 << 20} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if h.Min() != 0 || h.Max() != 1<<20 {
		t.Errorf("Min/Max = %d/%d, want 0/%d", h.Min(), h.Max(), 1<<20)
	}
	wantSum := int64(0 + 1 + 2 + 3 + 100 + 1000 + 1<<20)
	if h.Sum() != wantSum {
		t.Errorf("Sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative sample")
		}
	}()
	NewHistogram("x").Add(-1)
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram("lifespans")
	// 80 samples at 100 bytes, 20 samples at 1MB.
	h.AddN(100, 80)
	h.AddN(1<<20, 20)
	got := h.FractionBelow(1024)
	if math.Abs(got-0.8) > 0.01 {
		t.Errorf("FractionBelow(1KB) = %v, want ~0.8", got)
	}
	if got := h.FractionBelow(1 << 30); got != 1 {
		t.Errorf("FractionBelow(1GB) = %v, want 1", got)
	}
	if got := h.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v, want 0", got)
	}
}

func TestFractionBelowInterpolation(t *testing.T) {
	h := NewHistogram("x")
	// All samples in bucket [512, 1024); asking for 768 should interpolate
	// to roughly half.
	h.AddN(600, 100)
	got := h.FractionBelow(768)
	if got <= 0.2 || got >= 0.8 {
		t.Errorf("interpolated FractionBelow(768) = %v, want mid-range", got)
	}
}

func TestFractionBelowEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if got := h.FractionBelow(100); got != 0 {
		t.Errorf("empty histogram FractionBelow = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	h := NewHistogram("p")
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	p50 := h.Percentile(50)
	// Within-bucket interpolation lands close to the exact rank even
	// though the buckets are powers of two.
	if p50 < 450 || p50 > 550 {
		t.Errorf("P50 = %d, want within [450,550]", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 900 || p99 > 1000 {
		t.Errorf("P99 = %d, want within [900,1000]", p99)
	}
	if h.Percentile(50) > h.Percentile(99) {
		t.Error("percentiles not monotone")
	}
	if h.Percentile(0) != h.Min() {
		t.Error("P0 != min")
	}
	if h.Percentile(100) != h.Max() {
		t.Error("P100 != max")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	a.AddN(10, 5)
	b.AddN(1000, 5)
	a.Merge(b)
	if a.Total() != 10 {
		t.Errorf("merged total = %d, want 10", a.Total())
	}
	if a.Max() != 1000 || a.Min() != 10 {
		t.Errorf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
}

func TestBuckets(t *testing.T) {
	h := NewHistogram("b")
	h.Add(0)
	h.Add(3)
	h.Add(3)
	h.Add(1000)
	bks := h.Buckets()
	var total int64
	for _, b := range bks {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("bucket counts sum to %d, want 4", total)
	}
	for i := 1; i < len(bks); i++ {
		if bks[i].UpperBound <= bks[i-1].UpperBound {
			t.Error("buckets not ascending")
		}
	}
}

func TestCDFMonotone(t *testing.T) {
	h := NewHistogram("cdf")
	for i := 0; i < 1000; i++ {
		h.Add(int64(i * 7 % 5000))
	}
	limits := []int64{64, 256, 1024, 4096, 16384}
	cdf := h.CDF(limits)
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Errorf("CDF not monotone at %d: %v", i, cdf)
		}
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram("lifetimes")
	h.AddN(100, 10)
	s := h.String()
	if !strings.Contains(s, "lifetimes") || !strings.Contains(s, "n=10") {
		t.Errorf("String() = %q missing fields", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("Stddev = %v, want sqrt(2.5)", s.Stddev)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary has N != 0")
	}
}

func TestPercentileOf(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := PercentileOf(xs, 50); math.Abs(p-55) > 1e-9 {
		t.Errorf("P50 = %v, want 55", p)
	}
	if p := PercentileOf(xs, 100); p != 100 {
		t.Errorf("P100 = %v", p)
	}
	if p := PercentileOf(nil, 50); p != 0 {
		t.Errorf("P50 of empty = %v", p)
	}
}

// Property: FractionBelow is monotone in the limit and bounded in [0,1].
func TestFractionBelowProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		h := NewHistogram("q")
		for _, v := range vals {
			h.Add(int64(v))
		}
		prev := -1.0
		for _, lim := range []int64{1, 16, 256, 4096, 1 << 16, 1 << 24, 1 << 33} {
			fb := h.FractionBelow(lim)
			if fb < 0 || fb > 1 || fb < prev {
				return false
			}
			prev = fb
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging two histograms preserves total count and sum.
func TestMergeConservationProperty(t *testing.T) {
	f := func(a, b []uint16) bool {
		ha, hb := NewHistogram("a"), NewHistogram("b")
		var sum int64
		for _, v := range a {
			ha.Add(int64(v))
			sum += int64(v)
		}
		for _, v := range b {
			hb.Add(int64(v))
			sum += int64(v)
		}
		ha.Merge(hb)
		return ha.Total() == int64(len(a)+len(b)) && ha.Sum() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKSDistance(t *testing.T) {
	a, b := NewHistogram("a"), NewHistogram("b")
	// Identical distributions: distance 0.
	for i := 0; i < 100; i++ {
		a.Add(int64(i * 13 % 500))
		b.Add(int64(i * 13 % 500))
	}
	if d := KSDistance(a, b); d != 0 {
		t.Errorf("identical KS = %v, want 0", d)
	}
	// Fully disjoint distributions: distance ~1.
	c, d := NewHistogram("c"), NewHistogram("d")
	c.AddN(10, 100)
	d.AddN(1<<30, 100)
	if ks := KSDistance(c, d); ks < 0.99 {
		t.Errorf("disjoint KS = %v, want ~1", ks)
	}
	// Symmetry.
	if KSDistance(c, d) != KSDistance(d, c) {
		t.Error("KS not symmetric")
	}
	// Empty histograms are distance 0 from each other.
	if ks := KSDistance(NewHistogram("e"), NewHistogram("f")); ks != 0 {
		t.Errorf("empty KS = %v", ks)
	}
}

// Property: KS distance is bounded in [0,1] and zero against itself.
func TestKSDistanceProperty(t *testing.T) {
	f := func(as, bs []uint16) bool {
		a, b := NewHistogram("a"), NewHistogram("b")
		for _, v := range as {
			a.Add(int64(v))
		}
		for _, v := range bs {
			b.Add(int64(v))
		}
		ks := KSDistance(a, b)
		if ks < 0 || ks > 1 {
			return false
		}
		return KSDistance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
