package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func linearCurve() ScalingCurve {
	return ScalingCurve{{4, 48}, {8, 24}, {16, 12}, {48, 4}}
}

func flatCurve() ScalingCurve {
	return ScalingCurve{{4, 40}, {8, 39}, {16, 41}, {48, 40}}
}

func TestSpeedups(t *testing.T) {
	sp := linearCurve().Speedups()
	want := []float64{1, 2, 4, 12}
	for i := range want {
		if math.Abs(sp[i]-want[i]) > 1e-9 {
			t.Errorf("speedup[%d] = %v, want %v", i, sp[i], want[i])
		}
	}
}

func TestEfficiency(t *testing.T) {
	eff := linearCurve().Efficiency()
	for i, e := range eff {
		if math.Abs(e-1) > 1e-9 {
			t.Errorf("efficiency[%d] = %v, want 1 (ideal curve)", i, e)
		}
	}
}

func TestMaxSpeedup(t *testing.T) {
	c := ScalingCurve{{4, 40}, {8, 20}, {16, 25}, {48, 30}}
	sp, threads := c.MaxSpeedup()
	if threads != 8 || math.Abs(sp-2) > 1e-9 {
		t.Errorf("MaxSpeedup = %v@%d, want 2@8", sp, threads)
	}
}

func TestIsScalable(t *testing.T) {
	if !linearCurve().IsScalable(2.0) {
		t.Error("ideal curve classified non-scalable")
	}
	if flatCurve().IsScalable(2.0) {
		t.Error("flat curve classified scalable")
	}
	if (ScalingCurve{{4, 10}}).IsScalable(2.0) {
		t.Error("single point classified scalable")
	}
}

func TestAmdahlFit(t *testing.T) {
	// Construct a curve from Amdahl's law with f = 0.2, T1 = 100 at 1 thread.
	f := 0.2
	var c ScalingCurve
	for _, n := range []int{1, 2, 4, 8, 16, 48} {
		tn := 100 * (f + (1-f)/float64(n))
		c = append(c, ScalingPoint{n, tn})
	}
	got := c.AmdahlFit()
	if math.Abs(got-f) > 0.01 {
		t.Errorf("AmdahlFit = %v, want ~%v", got, f)
	}
}

func TestGrowthFactor(t *testing.T) {
	if g := GrowthFactor([]float64{10, 20, 40}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GrowthFactor = %v, want 4", g)
	}
	if g := GrowthFactor([]float64{0, 10}); !math.IsInf(g, 1) {
		t.Errorf("GrowthFactor from zero = %v, want +Inf", g)
	}
	if g := GrowthFactor([]float64{0, 0}); g != 1 {
		t.Errorf("GrowthFactor all-zero = %v, want 1", g)
	}
	if g := GrowthFactor([]float64{5}); g != 1 {
		t.Errorf("GrowthFactor single = %v, want 1", g)
	}
}

func TestMonotone(t *testing.T) {
	if !MonotoneIncreasing([]float64{1, 2, 2, 3}, 0.01) {
		t.Error("increasing series rejected")
	}
	if MonotoneIncreasing([]float64{3, 1}, 0.01) {
		t.Error("decreasing series accepted as increasing")
	}
	if !MonotoneIncreasing([]float64{100, 99.5, 101}, 0.01) {
		t.Error("within-tolerance dip rejected")
	}
	if !MonotoneDecreasing([]float64{5, 4, 3}, 0.01) {
		t.Error("decreasing series rejected")
	}
	if MonotoneDecreasing([]float64{3, 5}, 0.01) {
		t.Error("increasing series accepted as decreasing")
	}
}

func TestImbalanceRatio(t *testing.T) {
	if r := ImbalanceRatio([]float64{1, 1, 1, 1}); math.Abs(r-1) > 1e-9 {
		t.Errorf("uniform imbalance = %v, want 1", r)
	}
	// One thread does everything among 4.
	if r := ImbalanceRatio([]float64{100, 0, 0, 0}); math.Abs(r-4) > 1e-9 {
		t.Errorf("single-thread imbalance = %v, want 4", r)
	}
	if r := ImbalanceRatio(nil); r != 1 {
		t.Errorf("empty imbalance = %v, want 1", r)
	}
}

func TestTopKShare(t *testing.T) {
	shares := []float64{50, 30, 10, 5, 3, 2}
	if got := TopKShare(shares, 2); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Top2Share = %v, want 0.8", got)
	}
	if got := TopKShare(shares, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("TopAllShare = %v, want 1", got)
	}
	if got := TopKShare(nil, 3); got != 0 {
		t.Errorf("empty TopKShare = %v", got)
	}
}

func TestFormatSpeedups(t *testing.T) {
	s := FormatSpeedups(linearCurve())
	if s == "" {
		t.Error("empty format output")
	}
}

// Property: speedups are positive whenever times are positive, and the
// first entry is exactly 1.
func TestSpeedupProperty(t *testing.T) {
	f := func(times []uint16) bool {
		var c ScalingCurve
		for i, tm := range times {
			c = append(c, ScalingPoint{Threads: i + 1, Seconds: float64(tm) + 1})
		}
		sp := c.Speedups()
		if len(c) == 0 {
			return sp == nil
		}
		if sp[0] != 1 {
			return false
		}
		for _, s := range sp {
			if s <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: TopKShare is monotone in k and bounded by 1.
func TestTopKShareProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		shares := make([]float64, len(raw))
		for i, v := range raw {
			shares[i] = float64(v)
		}
		prev := 0.0
		for k := 1; k <= len(shares)+1; k++ {
			s := TopKShare(shares, k)
			if s < prev-1e-9 || s > 1+1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
