// Package metrics provides the measurement math used by the experiments:
// logarithmic histograms, empirical CDFs, summary statistics, and
// speedup/efficiency calculations.
//
// The paper reports object lifespans as cumulative distributions over
// power-of-two byte buckets ("% of objects with lifespan < 1KB"); Histogram
// and its CDF methods reproduce exactly that computation.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Histogram counts int64 samples in power-of-two buckets: bucket i holds
// values v with 2^(i-1) <= v < 2^i (bucket 0 holds v == 0). It answers
// "what fraction of samples fall below X bytes" queries in O(buckets).
type Histogram struct {
	name    string
	counts  [65]int64
	total   int64
	sum     int64
	min     int64
	max     int64
	hasData bool
}

// NewHistogram creates an empty histogram labeled name.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's label.
func (h *Histogram) Name() string { return h.name }

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Add records one sample. Negative samples are a measurement bug and panic.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative sample %d in %q", v, h.name))
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if !h.hasData || v < h.min {
		h.min = v
	}
	if !h.hasData || v > h.max {
		h.max = v
	}
	h.hasData = true
}

// AddN records the same sample n times.
func (h *Histogram) AddN(v int64, n int64) {
	if n <= 0 {
		return
	}
	if v < 0 {
		panic(fmt.Sprintf("metrics: negative sample %d in %q", v, h.name))
	}
	h.counts[bucketOf(v)] += n
	h.total += n
	h.sum += v * n
	if !h.hasData || v < h.min {
		h.min = v
	}
	if !h.hasData || v > h.max {
		h.max = v
	}
	h.hasData = true
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int64 { return h.total }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() int64 { return h.max }

// FractionBelow returns the fraction of samples strictly below limit,
// interpolating linearly inside the bucket containing limit. This is the
// paper's "% of objects with lifespan < 1KB" metric.
func (h *Histogram) FractionBelow(limit int64) float64 {
	if h.total == 0 || limit <= 0 {
		return 0
	}
	b := bucketOf(limit)
	var below int64
	for i := 0; i < b; i++ {
		below += h.counts[i]
	}
	// Interpolate within bucket b: bucket spans [2^(b-1), 2^b).
	lo := int64(0)
	if b > 0 {
		lo = int64(1) << uint(b-1)
	}
	hi := int64(1) << uint(b)
	if limit > lo && h.counts[b] > 0 {
		frac := float64(limit-lo) / float64(hi-lo)
		below += int64(frac * float64(h.counts[b]))
	}
	if below > h.total {
		below = h.total
	}
	return float64(below) / float64(h.total)
}

// Percentile returns an estimate of the p-th percentile (0 < p <= 100),
// interpolating linearly inside the bucket containing the target rank
// (the same within-bucket model as FractionBelow) and clamping to the
// observed [min, max]. Without interpolation every answer is a power of
// two, which quantizes latency tails far too coarsely to compare.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := float64(h.total) * p / 100
	var cum int64
	for i, c := range h.counts {
		if float64(cum+c) >= target && c > 0 {
			// Bucket i spans [2^(i-1), 2^i); bucket 0 is the single value 0.
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := int64(1) << uint(i)
			frac := (target - float64(cum)) / float64(c)
			est := int64(float64(lo) + frac*float64(hi-lo))
			return max(h.min, min(h.max, est))
		}
		cum += c
	}
	return h.max
}

// Buckets returns the non-empty buckets as (upperBound, count) pairs in
// ascending order. Bucket 0 is reported with upper bound 1.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		ub := int64(1)
		if i > 0 {
			ub = int64(1) << uint(i)
		}
		out = append(out, Bucket{UpperBound: ub, Count: c})
	}
	return out
}

// Bucket is one histogram bin: Count samples with value < UpperBound (and
// >= the previous bucket's bound).
type Bucket struct {
	UpperBound int64
	Count      int64
}

// histogramJSON is the wire form of a Histogram: every internal field,
// with the count array stored sparsely as (bucket, count) pairs. It
// exists so results carrying histograms can cross process boundaries
// (the on-disk result store, sweep-shard workers) and come back
// DeepEqual to the original.
type histogramJSON struct {
	Name    string        `json:",omitempty"`
	Buckets []bucketCount `json:",omitempty"`
	Total   int64         `json:",omitempty"`
	Sum     int64         `json:",omitempty"`
	Min     int64         `json:",omitempty"`
	Max     int64         `json:",omitempty"`
	HasData bool          `json:",omitempty"`
}

// bucketCount is one non-empty bucket on the wire: count N in bucket I.
type bucketCount struct {
	I int
	N int64
}

// MarshalJSON encodes the histogram's full internal state, so a
// marshal/unmarshal round trip reproduces it exactly (reflect.DeepEqual).
func (h *Histogram) MarshalJSON() ([]byte, error) {
	w := histogramJSON{
		Name: h.name, Total: h.total, Sum: h.sum,
		Min: h.min, Max: h.max, HasData: h.hasData,
	}
	for i, c := range h.counts {
		if c != 0 {
			w.Buckets = append(w.Buckets, bucketCount{I: i, N: c})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a histogram encoded by MarshalJSON, replacing
// the receiver's state. Bucket indexes outside the fixed range are
// rejected rather than silently dropped, so a corrupted store entry
// surfaces as a decode error (which readers treat as a cache miss).
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*h = Histogram{name: w.Name, total: w.Total, sum: w.Sum,
		min: w.Min, max: w.Max, hasData: w.HasData}
	for _, b := range w.Buckets {
		if b.I < 0 || b.I >= len(h.counts) {
			return fmt.Errorf("metrics: histogram bucket index %d out of range", b.I)
		}
		h.counts[b.I] = b.N
	}
	return nil
}

// Merge adds every sample of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if !h.hasData || other.min < h.min {
		h.min = other.min
	}
	if !h.hasData || other.max > h.max {
		h.max = other.max
	}
	h.hasData = true
}

// CDF evaluates the cumulative distribution at each of the given limits and
// returns the fractions. Limits must be ascending.
func (h *Histogram) CDF(limits []int64) []float64 {
	out := make([]float64, len(limits))
	for i, l := range limits {
		out[i] = h.FractionBelow(l)
	}
	return out
}

// String renders a compact table of the distribution for logs and reports.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f min=%d max=%d\n", h.name, h.total, h.Mean(), h.min, h.max)
	for _, bk := range h.Buckets() {
		fmt.Fprintf(&b, "  < %-12d %8d (%.1f%%)\n", bk.UpperBound, bk.Count,
			100*float64(bk.Count)/float64(h.total))
	}
	return b.String()
}

// KSDistance returns the Kolmogorov-Smirnov statistic between the
// empirical distributions of two histograms: the maximum absolute CDF
// difference, evaluated on the shared power-of-two grid. It quantifies
// distribution shifts — e.g. how far a lifespan distribution moved between
// thread counts — in a single [0,1] number.
func KSDistance(a, b *Histogram) float64 {
	max := 0.0
	for i := 0; i <= 62; i++ {
		lim := int64(1) << uint(i)
		d := a.FractionBelow(lim) - b.FractionBelow(lim)
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// Summary holds basic descriptive statistics of a float64 sample set.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// PercentileOf returns the p-th percentile of xs (exact, by sorting a
// copy). p is in (0, 100].
func PercentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	idx := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return cp[lo]
	}
	frac := idx - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}
