// Package store persists simulation results in a content-addressed
// on-disk layout keyed by the engine's (spec, canonical-config)
// fingerprints (core.Fingerprint). It is the durable tier behind the
// engine's in-memory LRU: write-through from completed simulations,
// read-through on cache misses, shared by every process pointed at the
// same directory — so no fingerprint any client has ever run is
// simulated twice, across engines, daemons, or restarts.
//
// Layout: one JSON entry per fingerprint at
//
//	<dir>/<fp[0:2]>/<fp>.json
//
// where each entry is a version-stamped envelope {Version, Fingerprint,
// Result}. Entries are immutable once written — the fingerprint is a
// hash of everything that determines the result, so a rewrite can only
// ever produce the same bytes (modulo schema version).
//
// Writes are write-behind: Put enqueues, a background writer persists
// entries with the temp-file+rename idiom (readers never observe a
// partial entry), and Flush/Close drain the queue — the serving
// daemon's graceful shutdown calls Close before exiting.
//
// Reads are corruption-tolerant by design: a truncated file, garbage
// bytes, a schema-version mismatch, or a fingerprint that does not
// match its filename all count as a miss (and a Corrupt tick in Stats),
// never an error. The engine then re-simulates and rewrites the entry.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"javasim/internal/vm"
)

// Version stamps every entry with the result-schema generation. Bump it
// when vm.Result changes shape incompatibly: old entries then read as
// misses and are lazily replaced by re-simulation, instead of decoding
// into half-filled structs.
const Version = 2

// entryExt is the on-disk entry suffix.
const entryExt = ".json"

// entry is the on-disk envelope around one result.
type entry struct {
	Version     int
	Fingerprint string
	Result      *vm.Result
}

// Stats are the store's lifetime counters, all monotone.
type Stats struct {
	// Hits and Misses count Get outcomes; Corrupt is the subset of
	// misses caused by an unreadable, undecodable, version-mismatched,
	// or misaddressed entry.
	Hits, Misses, Corrupt int64
	// Writes counts entries persisted; WriteErrors counts entries the
	// writer failed to persist (the store keeps serving — it is a
	// cache, and the first error is also reported by Flush/Close).
	Writes, WriteErrors int64
}

// Store is a content-addressed result store rooted at one directory.
// All methods are safe for concurrent use; results passed to Put and
// returned by Get must be treated as immutable.
type Store struct {
	dir string

	mu      sync.Mutex
	cond    *sync.Cond
	pending map[string]*vm.Result // queued, not yet handed to the writer
	writing map[string]*vm.Result // handed to the writer, rename not yet done
	closed  bool
	err     error // first write failure, sticky

	loopDone chan struct{}

	hits, misses, corrupt, writes, writeErrors atomic.Int64
}

// Open creates (if needed) and opens the store rooted at dir, starting
// its background writer. Call Close when done to drain pending writes.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		pending:  make(map[string]*vm.Result),
		writing:  make(map[string]*vm.Result),
		loopDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.writeLoop()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validFingerprint accepts only the lowercase-hex hashes the engine
// produces — anything else could escape the store directory when joined
// into a path, so it is treated as not-present instead.
func validFingerprint(fp string) bool {
	if len(fp) < 4 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// path returns the entry path for a fingerprint.
func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+entryExt)
}

// Get returns the stored result for a fingerprint. Any failure to
// produce a fully-decoded, correctly-addressed, current-version result
// is a miss — the caller re-simulates, it never errors out.
func (s *Store) Get(fp string) (*vm.Result, bool) {
	if !validFingerprint(fp) {
		s.misses.Add(1)
		return nil, false
	}
	// A result still in the write queue is already authoritative.
	s.mu.Lock()
	if res, ok := s.pending[fp]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return res, true
	}
	if res, ok := s.writing[fp]; ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return res, true
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != Version || e.Fingerprint != fp || e.Result == nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return e.Result, true
}

// Put queues res for persistence under fp. It returns immediately;
// Flush (or Close) waits for durability. Puts after Close are dropped,
// and concurrent Puts of the same fingerprint coalesce — last wins,
// which is harmless because equal fingerprints mean equal results.
func (s *Store) Put(fp string, res *vm.Result) {
	if res == nil || !validFingerprint(fp) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.pending[fp] = res
	s.cond.Broadcast()
}

// writeLoop drains the pending queue, one atomic entry write at a time.
func (s *Store) writeLoop() {
	defer close(s.loopDone)
	s.mu.Lock()
	for {
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		var fp string
		var res *vm.Result
		for fp, res = range s.pending {
			break
		}
		delete(s.pending, fp)
		s.writing[fp] = res
		s.mu.Unlock()

		err := s.writeEntry(fp, res)

		s.mu.Lock()
		delete(s.writing, fp)
		if err != nil {
			s.writeErrors.Add(1)
			if s.err == nil {
				s.err = err
			}
		} else {
			s.writes.Add(1)
		}
		s.cond.Broadcast() // wake Flush waiters
	}
}

// writeEntry persists one entry with the temp-file+rename idiom: a
// reader either sees the previous state or the complete new entry,
// never a torn write — even with several processes writing the same
// fingerprint concurrently (renames are atomic, and every writer
// produces equivalent bytes).
func (s *Store) writeEntry(fp string, res *vm.Result) error {
	shard := filepath.Join(s.dir, fp[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.Marshal(entry{Version: Version, Fingerprint: fp, Result: res})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", fp, err)
	}
	f, err := os.CreateTemp(shard, "."+fp+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(fp))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", fp, err)
	}
	return nil
}

// Flush blocks until every queued write has been persisted, then
// reports the first write error seen so far (nil in the common case).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 || len(s.writing) > 0 {
		s.cond.Wait()
	}
	return s.err
}

// Close drains the queue, stops the background writer, and reports the
// first write error. The store must not be used after Close; late Puts
// are dropped and Gets fall through to disk reads only.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.loopDone
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Corrupt:     s.corrupt.Load(),
		Writes:      s.writes.Load(),
		WriteErrors: s.writeErrors.Load(),
	}
}

// Len counts the entries currently on disk (queued-but-unwritten
// entries are not included). It walks the directory, so it is a
// stats-endpoint convenience, not a hot-path call.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // a racing rename is not worth failing a count over
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), entryExt) && !strings.HasPrefix(d.Name(), ".") {
			n++
		}
		return nil
	})
	return n
}
