package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"javasim/internal/vm"
	"javasim/internal/workload"
)

// testResult simulates one small run to use as store payload.
func testResult(t testing.TB, name string, threads int) *vm.Result {
	t.Helper()
	spec, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	res, err := vm.Run(spec.Scale(0.02), vm.Config{Threads: threads, Seed: 42})
	if err != nil {
		t.Fatalf("simulate %s: %v", name, err)
	}
	return res
}

func mustOpen(t testing.TB, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const fpA = "aa11bb22cc33dd44"

func TestStoreRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, "xalan", 2)

	s := mustOpen(t, dir)
	s.Put(fpA, res)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// A fresh store over the same directory — the restart case.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	got, ok := s2.Get(fpA)
	if !ok {
		t.Fatal("entry missing after reopen")
	}
	if !reflect.DeepEqual(res, got) {
		t.Fatal("stored result is not DeepEqual to the original")
	}
	if n := s2.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

func TestStoreGetServesPendingWrites(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	res := testResult(t, "xalan", 2)
	s.Put(fpA, res)
	// Immediately visible, whether or not the writer has drained yet.
	if got, ok := s.Get(fpA); !ok || !reflect.DeepEqual(res, got) {
		t.Fatal("pending write not served by Get")
	}
}

func TestStoreConcurrentWritersSameFingerprint(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, "xalan", 2)

	// Several stores over one directory, all hammering the same
	// fingerprint plus a private one each — the multi-process daemon
	// picture. Every writer produces equivalent bytes for the shared
	// entry, so last-rename-wins is correct by construction.
	const writers = 4
	stores := make([]*Store, writers)
	for i := range stores {
		stores[i] = mustOpen(t, dir)
	}
	var wg sync.WaitGroup
	for i, s := range stores {
		wg.Add(1)
		go func(i int, s *Store) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				s.Put(fpA, res)
				s.Put(fmt.Sprintf("%02x11%02x", i, j)+fpA, res)
			}
		}(i, s)
	}
	wg.Wait()
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}

	s := mustOpen(t, dir)
	defer s.Close()
	got, ok := s.Get(fpA)
	if !ok || !reflect.DeepEqual(res, got) {
		t.Fatal("shared entry corrupted by concurrent writers")
	}
	if n := s.Len(); n != 1+writers*8 {
		t.Fatalf("Len = %d, want %d", n, 1+writers*8)
	}
}

func TestStoreCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, "xalan", 2)
	s := mustOpen(t, dir)
	defer s.Close()
	s.Put(fpA, res)
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	path := filepath.Join(dir, fpA[:2], fpA+".json")

	corrupt := func(name string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := s.Stats()
		if _, ok := s.Get(fpA); ok {
			t.Fatalf("%s: corrupted entry served as a hit", name)
		}
		after := s.Stats()
		if after.Misses != before.Misses+1 || after.Corrupt != before.Corrupt+1 {
			t.Fatalf("%s: stats %+v -> %+v, want one miss and one corrupt tick", name, before, after)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt("truncated", func() error { return os.WriteFile(path, data[:len(data)/3], 0o644) })
	corrupt("garbage", func() error { return os.WriteFile(path, []byte("{not json"), 0o644) })

	// Recovery: rewriting the entry turns the miss back into a hit.
	s.Put(fpA, res)
	if err := s.Flush(); err != nil {
		t.Fatalf("reflush: %v", err)
	}
	if got, ok := s.Get(fpA); !ok || !reflect.DeepEqual(res, got) {
		t.Fatal("entry not recovered by rewrite")
	}
}

func TestStoreVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, "xalan", 2)
	s := mustOpen(t, dir)
	defer s.Close()
	s.Put(fpA, res)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fpA[:2], fpA+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]json.RawMessage
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e["Version"] = json.RawMessage(fmt.Sprint(Version + 1))
	bumped, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(fpA); ok {
		t.Fatal("future-version entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt == 0 {
		t.Fatal("version mismatch not counted as corrupt")
	}
}

func TestStoreFingerprintMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	res := testResult(t, "xalan", 2)
	s := mustOpen(t, dir)
	defer s.Close()
	s.Put(fpA, res)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Copy the entry under a different fingerprint's address — as if a
	// file were renamed or a directory mangled. Content addressing must
	// reject it.
	other := "ff00" + fpA
	if err := os.MkdirAll(filepath.Join(dir, other[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, fpA[:2], fpA+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, other[:2], other+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(other); ok {
		t.Fatal("misaddressed entry served as a hit")
	}
}

func TestStoreRejectsUnsafeFingerprints(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	res := testResult(t, "xalan", 2)
	for _, fp := range []string{"", "ab", "../../etc/passwd", "AB11CD22", "zz11zz22"} {
		s.Put(fp, res)
		if _, ok := s.Get(fp); ok {
			t.Errorf("unsafe fingerprint %q accepted", fp)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("unsafe fingerprints wrote %d entries", n)
	}
}

// TestStoreDifferentialPaperSet is the end-to-end fidelity check: for
// every paper workload, a result served from the disk store must be
// DeepEqual to the freshly simulated one — byte-identical artifacts
// from either source.
func TestStoreDifferentialPaperSet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	fresh := make(map[string]*vm.Result)
	for _, spec := range workload.PaperSet() {
		res := testResult(t, spec.Name, 2)
		fresh[spec.Name] = res
		s.Put(fingerprintFor(spec.Name), res)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	for _, spec := range workload.PaperSet() {
		got, ok := s2.Get(fingerprintFor(spec.Name))
		if !ok {
			t.Fatalf("%s: missing from reopened store", spec.Name)
		}
		if !reflect.DeepEqual(fresh[spec.Name], got) {
			t.Errorf("%s: disk-cached result diverges from fresh simulation", spec.Name)
		}
	}
}

// fingerprintFor derives a distinct valid fingerprint per workload for
// the differential test (the real engine key comes from core.Fingerprint;
// the store only cares that it is lowercase hex).
func fingerprintFor(name string) string {
	return fmt.Sprintf("%02x", []byte(name))[:4] + fpA
}
