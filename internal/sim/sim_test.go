package sim

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if s.Now() != 30 {
		t.Errorf("final time %v, want 30", s.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-broken order violated at %d: got %d", i, got[i])
		}
	}
}

func TestZeroDelayRunsAfterCurrentInstant(t *testing.T) {
	s := New()
	var got []string
	s.Schedule(0, func() {
		got = append(got, "a")
		s.Schedule(0, func() { got = append(got, "c") })
	})
	s.Schedule(0, func() { got = append(got, "b") })
	s.Run()
	want := "abc"
	have := ""
	for _, g := range got {
		have += g
	}
	if have != want {
		t.Errorf("order %q, want %q", have, want)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(100, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for scheduling in the past")
		}
	}()
	s.At(50, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(10, func() { fired = true })
	s.Cancel(ev)
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	// Double-cancel before the record is reused must be a no-op.
	s.Cancel(ev)
	s.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Cancel from inside the event's own callback must be a no-op: the
	// record is not recycled until the callback returns.
	var ev2 *Event
	fired2 := 0
	ev2 = s.Schedule(10, func() {
		fired2++
		s.Cancel(ev2)
	})
	s.Run()
	if fired2 != 1 {
		t.Errorf("self-canceling event fired %d times, want 1", fired2)
	}
}

func TestCancelMiddleOfQueue(t *testing.T) {
	s := New()
	var got []int
	var evs []*Event
	for i := 0; i < 10; i++ {
		i := i
		evs = append(evs, s.Schedule(Time(10*(i+1)), func() { got = append(got, i) }))
	}
	s.Cancel(evs[4])
	s.Cancel(evs[7])
	s.Run()
	if len(got) != 8 {
		t.Fatalf("fired %d, want 8", len(got))
	}
	for _, g := range got {
		if g == 4 || g == 7 {
			t.Errorf("canceled event %d fired", g)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=12, want 2", len(fired))
	}
	if s.Now() != 12 {
		t.Errorf("Now() = %v, want 12", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
}

func TestStopResume(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(Time(i), func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("ran %d events before stop, want 2", count)
	}
	s.Resume()
	s.Run()
	if count != 5 {
		t.Errorf("ran %d events total, want 5", count)
	}
}

func TestExecutedAndPending(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	if s.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", s.Pending())
	}
	s.Run()
	if s.Executed() != 7 {
		t.Errorf("Executed = %d, want 7", s.Executed())
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", s.Pending())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

// Property: events always fire in nondecreasing timestamp order, regardless
// of insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			s.Schedule(d, func() { fired = append(fired, d) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving cancellations with scheduling preserves heap
// integrity — every non-canceled event fires exactly once, in order.
func TestCancelHeapIntegrityProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New()
		var live []*Event
		firedCount := 0
		expect := 0
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				// Cancel a pseudo-random live event.
				idx := int(op/3) % len(live)
				s.Cancel(live[idx])
				live = append(live[:idx], live[idx+1:]...)
				expect--
			} else {
				ev := s.Schedule(Time(op), func() { firedCount++ })
				live = append(live, ev)
				expect++
			}
		}
		s.Run()
		return firedCount == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 1000 {
			s.Schedule(1, recur)
		}
	}
	s.Schedule(0, recur)
	s.Run()
	if depth != 1000 {
		t.Errorf("depth = %d, want 1000", depth)
	}
	if s.Now() != 999 {
		t.Errorf("Now = %v, want 999", s.Now())
	}
}

func TestRunInterruptibleDrains(t *testing.T) {
	s := New()
	fired := 0
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), func() { fired++ })
	}
	end, err := s.RunInterruptible(4, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Errorf("fired = %d, want 10", fired)
	}
	if end != 9 {
		t.Errorf("end = %v, want 9", end)
	}
}

func TestRunInterruptibleAborts(t *testing.T) {
	s := New()
	// A self-perpetuating event chain: without interruption this would
	// never drain.
	var recur func()
	recur = func() { s.Schedule(1, recur) }
	s.Schedule(0, recur)

	sentinel := errors.New("stop now")
	checks := 0
	_, err := s.RunInterruptible(8, func() error {
		checks++
		if checks > 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// Three clean checks of 8 events each ran before the abort.
	if got := s.Executed(); got != 24 {
		t.Errorf("executed = %d, want 24", got)
	}
	if s.Pending() == 0 {
		t.Error("aborted queue should retain pending events")
	}
}
