package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// The event pool's contract: records recycle on fire and on cancel, a
// recycled record never carries a stale callback into its next life, and
// heavy schedule/cancel churn leaves execution order and the Executed
// count exactly as an unpooled kernel would.

func TestEventPoolRecyclesOnFire(t *testing.T) {
	s := New()
	ev1 := s.Schedule(1, func() {})
	s.Run()
	ev2 := s.Schedule(1, func() {})
	if ev1 != ev2 {
		t.Error("fired event record was not reused by the next Schedule")
	}
	if ev2.Canceled() {
		t.Error("reused record reports Canceled")
	}
	s.Run()
}

func TestCanceledEventIsReusable(t *testing.T) {
	s := New()
	staleFired := false
	ev := s.Schedule(50, func() { staleFired = true })
	s.Cancel(ev)

	freshFired := 0
	ev2 := s.Schedule(10, func() { freshFired++ })
	if ev2 != ev {
		t.Fatal("canceled record was not reused by the next Schedule")
	}
	if ev2.Canceled() {
		t.Error("reused record still reports Canceled")
	}
	s.Run()
	if staleFired {
		t.Error("stale closure of the canceled incarnation fired")
	}
	if freshFired != 1 {
		t.Errorf("fresh incarnation fired %d times, want 1", freshFired)
	}
}

func TestRecycledEventNeverFiresStaleClosure(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(1, func() { order = append(order, 1) })
	s.Run() // record now pooled with closure cleared

	s.Schedule(1, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("fired %v, want [1 2]", order)
	}
}

type countingCallback struct{ n int }

func (c *countingCallback) OnEvent() { c.n++ }

func TestScheduleCallFiresPreBoundReceiver(t *testing.T) {
	s := New()
	cb := &countingCallback{}
	s.ScheduleCall(5, cb)
	s.ScheduleCall(7, cb)
	ev := s.ScheduleCall(9, cb)
	s.Cancel(ev)
	s.Run()
	if cb.n != 2 {
		t.Errorf("OnEvent fired %d times, want 2", cb.n)
	}
	if s.Now() != 7 {
		t.Errorf("Now = %v, want 7", s.Now())
	}
}

func TestScheduleCallNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	New().ScheduleCall(1, nil)
}

func TestNextEventAt(t *testing.T) {
	s := New()
	if _, ok := s.NextEventAt(); ok {
		t.Error("NextEventAt ok on empty queue")
	}
	s.Schedule(30, func() {})
	ev := s.Schedule(10, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 10 {
		t.Errorf("NextEventAt = %v,%v, want 10,true", at, ok)
	}
	s.Cancel(ev)
	if at, ok := s.NextEventAt(); !ok || at != 30 {
		t.Errorf("NextEventAt after cancel = %v,%v, want 30,true", at, ok)
	}
	s.Run()
}

// TestPoolChurnDeterminismProperty drives a pseudo-random interleaving of
// schedule, cancel, and step operations and checks the kernel against a
// simple reference model: every non-canceled event fires exactly once, in
// (time, scheduling-order) order, and Executed matches. Recycled records
// flowing back into the live set must not perturb any of that.
func TestPoolChurnDeterminismProperty(t *testing.T) {
	type pending struct {
		ev    *Event
		label int
	}
	f := func(ops []uint8) bool {
		s := New()
		var fired []int
		var live []pending
		var expect []int // labels in scheduling order, firing time encoded below
		times := map[int]Time{}
		label := 0
		for _, op := range ops {
			switch {
			case op%4 == 0 && len(live) > 0:
				idx := int(op/4) % len(live)
				s.Cancel(live[idx].ev)
				// Drop from the reference model too.
				for i, l := range expect {
					if l == live[idx].label {
						expect = append(expect[:i], expect[i+1:]...)
						break
					}
				}
				live = append(live[:idx], live[idx+1:]...)
			case op%4 == 1:
				// Fire the earliest pending event, retiring it everywhere.
				if s.Step() {
					done := fired[len(fired)-1]
					for i, l := range expect {
						if l == done {
							expect = append(expect[:i], expect[i+1:]...)
							break
						}
					}
					for i := range live {
						if live[i].label == done {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			default:
				label++
				l := label
				delay := Time(op % 32)
				times[l] = s.Now() + delay
				ev := s.Schedule(delay, func() { fired = append(fired, l) })
				live = append(live, pending{ev, l})
				expect = append(expect, l)
			}
		}
		s.Run()
		// Reference order: stable sort of the remaining expected labels by
		// absolute firing time (stability = FIFO tie-break by seq).
		sort.SliceStable(expect, func(i, j int) bool {
			return times[expect[i]] < times[expect[j]]
		})
		// Everything scheduled and never canceled must appear in fired, and
		// the tail of fired (post-churn) must equal the reference order.
		if len(fired) < len(expect) {
			return false
		}
		tail := fired[len(fired)-len(expect):]
		for i := range expect {
			if tail[i] != expect[i] {
				return false
			}
		}
		return s.Executed() == uint64(len(fired))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPoolSteadyStateAllocFree pins the tentpole property: a warm
// schedule/fire cycle through the pool allocates nothing.
func TestPoolSteadyStateAllocFree(t *testing.T) {
	s := New()
	cb := &countingCallback{}
	// Warm the pool and the queue's backing array.
	for i := 0; i < 64; i++ {
		s.ScheduleCall(Time(i), cb)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.ScheduleCall(1, cb)
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire cycle allocates %v objects/op, want 0", allocs)
	}
}
