// Package sim provides the deterministic discrete-event simulation kernel
// that every other subsystem in this repository runs on.
//
// The kernel models virtual time as int64 nanoseconds. Components schedule
// callbacks at future instants; the simulator executes them in timestamp
// order, breaking ties by scheduling order (FIFO), which keeps runs
// bit-for-bit reproducible for a fixed seed and configuration.
//
// Event records are pooled (see Event) and callbacks may be pre-bound
// Callback receivers instead of closures (see ScheduleCall), so the
// steady-state schedule/fire cycle performs zero heap allocations.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time values.
type Time int64

// Common durations, mirroring the time package but in virtual units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The zero value is not useful; events are
// created through Simulator.Schedule, At, or their Call variants.
//
// Event records are pooled: once an event fires or is canceled, its record
// returns to the simulator's free list and the next Schedule/At reuses it.
// An *Event reference is therefore live only until the event fires or is
// canceled — afterwards the pointer may describe a different, unrelated
// event. Holders must drop (or nil) their reference at that point and must
// never Cancel through a stale one.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	cb       Callback
	index    int // position in the heap, -1 once removed
	canceled bool
}

// Callback is the closure-free form of an event callback: a pre-bound
// receiver whose OnEvent method fires. Components that schedule on the hot
// path implement it once (receiver + method, no per-event closure) and
// pass themselves to ScheduleCall/AtCall, which — combined with the event
// pool — makes scheduling allocation-free.
type Callback interface {
	OnEvent()
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// executed counts events that have fired, for diagnostics and tests.
	executed uint64
	// free is the event record pool: fired and canceled events land here
	// and the next Schedule/At reuses them, so a steady-state simulation
	// allocates no event records at all.
	free []*Event
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting to fire.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule registers fn to run delay nanoseconds from now. A zero delay is
// legal and fires after all events already scheduled for the current
// instant. Schedule panics if delay is negative: simulated components never
// travel backwards in time, so a negative delay is always a logic bug.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return s.At(s.now+delay, fn)
}

// At registers fn to run at absolute time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := s.newEvent(t)
	ev.fn = fn
	s.queue.Push(ev)
	return ev
}

// ScheduleCall is Schedule with a pre-bound Callback instead of a closure:
// cb.OnEvent fires delay nanoseconds from now. With a pooled event record
// and no closure to capture, the call performs zero allocations.
func (s *Simulator) ScheduleCall(delay Time, cb Callback) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return s.AtCall(s.now+delay, cb)
}

// AtCall is At with a pre-bound Callback instead of a closure.
func (s *Simulator) AtCall(t Time, cb Callback) *Event {
	if cb == nil {
		panic("sim: nil event callback")
	}
	ev := s.newEvent(t)
	ev.cb = cb
	s.queue.Push(ev)
	return ev
}

// newEvent takes a record from the pool (or allocates the first time) and
// stamps it with the firing time and the next sequence number.
func (s *Simulator) newEvent(t Time) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.canceled = false
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq = t, s.seq
	return ev
}

// recycle clears a record's callbacks and returns it to the pool. The
// canceled flag is deliberately left as-is so Canceled() stays truthful
// until the record is reused (newEvent resets it).
func (s *Simulator) recycle(ev *Event) {
	ev.fn, ev.cb = nil, nil
	s.free = append(s.free, ev)
}

// Cancel prevents a pending event from firing and recycles its record.
// Canceling an event that already fired within the current callback — or
// was already canceled and not yet reused — is a no-op, but once a record
// is reused by a later Schedule/At the stale pointer names the new event,
// so callers must drop references at fire/cancel time (see Event).
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	s.queue.Remove(ev)
	s.recycle(ev)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	if s.stopped || s.queue.Len() == 0 {
		return false
	}
	ev := s.queue.Pop()
	if ev.at < s.now {
		panic("sim: event queue returned an event from the past")
	}
	s.now = ev.at
	s.executed++
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.cb.OnEvent()
	}
	// Recycle after the callback so a Cancel of the just-fired event from
	// inside its own callback still sees index == -1 and no-ops.
	s.recycle(ev)
	return true
}

// NextEventAt returns the timestamp of the earliest pending event. ok is
// false when the queue is empty. Components use it to bound work they may
// perform without any other simulation activity intervening (the VM's
// op-run fusion window).
func (s *Simulator) NextEventAt() (Time, bool) {
	if s.queue.Len() == 0 {
		return 0, false
	}
	return s.queue.Peek().at, true
}

// Run fires events until the queue drains or Stop is called. It returns the
// final virtual time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunInterruptible fires events like Run, but calls check before every
// batch of `every` events and aborts with check's error as soon as it
// returns non-nil. It is the cancellation hook for long simulations: the
// VM points check at ctx.Err, so a canceled context stops the event loop
// within one batch instead of draining the whole run. An `every` of zero
// selects a batch size that keeps the check overhead negligible.
func (s *Simulator) RunInterruptible(every int, check func() error) (Time, error) {
	if every <= 0 {
		every = 4096
	}
	for {
		if err := check(); err != nil {
			return s.now, err
		}
		for i := 0; i < every; i++ {
			if !s.Step() {
				return s.now, nil
			}
		}
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (if it is later than the last event). Events scheduled
// beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) Time {
	for !s.stopped && s.queue.Len() > 0 && s.queue.Peek().at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Stop makes Run and Step return immediately. Pending events stay queued;
// calling Resume re-enables execution.
func (s *Simulator) Stop() { s.stopped = true }

// Resume clears the stopped flag set by Stop.
func (s *Simulator) Resume() { s.stopped = false }
