// Package sim provides the deterministic discrete-event simulation kernel
// that every other subsystem in this repository runs on.
//
// The kernel models virtual time as int64 nanoseconds. Components schedule
// closures at future instants; the simulator executes them in timestamp
// order, breaking ties by scheduling order (FIFO), which keeps runs
// bit-for-bit reproducible for a fixed seed and configuration.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Durations are also expressed as Time values.
type Time int64

// Common durations, mirroring the time package but in virtual units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts the time to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled closure. The zero value is not useful; events are
// created through Simulator.Schedule or Simulator.At.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 once removed
	canceled bool
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// Simulator owns the virtual clock and the pending-event queue.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// executed counts events that have fired, for diagnostics and tests.
	executed uint64
}

// New returns an empty simulator positioned at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events waiting to fire.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule registers fn to run delay nanoseconds from now. A zero delay is
// legal and fires after all events already scheduled for the current
// instant. Schedule panics if delay is negative: simulated components never
// travel backwards in time, so a negative delay is always a logic bug.
func (s *Simulator) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	return s.At(s.now+delay, fn)
}

// At registers fn to run at absolute time t, which must not be in the past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	ev := &Event{at: t, seq: s.seq, fn: fn}
	s.queue.Push(ev)
	return ev
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		return
	}
	ev.canceled = true
	s.queue.Remove(ev)
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty or the simulator has been stopped.
func (s *Simulator) Step() bool {
	if s.stopped || s.queue.Len() == 0 {
		return false
	}
	ev := s.queue.Pop()
	if ev.at < s.now {
		panic("sim: event queue returned an event from the past")
	}
	s.now = ev.at
	s.executed++
	ev.fn()
	return true
}

// Run fires events until the queue drains or Stop is called. It returns the
// final virtual time.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunInterruptible fires events like Run, but calls check before every
// batch of `every` events and aborts with check's error as soon as it
// returns non-nil. It is the cancellation hook for long simulations: the
// VM points check at ctx.Err, so a canceled context stops the event loop
// within one batch instead of draining the whole run. An `every` of zero
// selects a batch size that keeps the check overhead negligible.
func (s *Simulator) RunInterruptible(every int, check func() error) (Time, error) {
	if every <= 0 {
		every = 4096
	}
	for {
		if err := check(); err != nil {
			return s.now, err
		}
		for i := 0; i < every; i++ {
			if !s.Step() {
				return s.now, nil
			}
		}
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline (if it is later than the last event). Events scheduled
// beyond the deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) Time {
	for !s.stopped && s.queue.Len() > 0 && s.queue.Peek().at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.now
}

// Stop makes Run and Step return immediately. Pending events stay queued;
// calling Resume re-enables execution.
func (s *Simulator) Stop() { s.stopped = true }

// Resume clears the stopped flag set by Stop.
func (s *Simulator) Resume() { s.stopped = false }
