package sim

import (
	"math"
	"math/bits"
)

// Rand is a deterministic pseudo-random source used by every stochastic
// component in the simulator. It combines a SplitMix64 seeding stage with a
// xoshiro256** generator, giving high-quality streams that can be forked
// into statistically independent child streams — one per thread, lock, or
// workload — so that adding a consumer never perturbs the draws seen by
// another.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed expander; it is the standard Vigna mixer.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a generator seeded from seed. Two generators built from
// the same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Fork derives an independent child stream labeled by label. Children with
// distinct labels are decorrelated from each other and from the parent, and
// forking does not consume parent state, so component construction order
// cannot perturb the parent's stream.
func (r *Rand) Fork(label uint64) *Rand {
	seed := r.s[0] ^ (r.s[2] * 0x9e3779b97f4a7c15)
	x := seed ^ (label+1)*0xd1342543de82ef95
	child := &Rand{}
	for i := range child.s {
		child.s[i] = splitmix64(&x)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return child
}

// Clone returns an independent generator positioned at exactly the same
// point in the stream: the clone and the original produce identical
// future draws, then diverge as each is advanced separately. Snapshots
// use this to capture a stream's position so replayed runs can resume
// live drawing bit-identically to a run that never replayed.
func (r *Rand) Clone() *Rand {
	c := &Rand{}
	c.s = r.s
	return c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded draws.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	if n == 1 {
		return 0
	}
	max := uint64(1)<<63 - 1 - (uint64(1)<<63)%uint64(n)
	v := r.Uint64() >> 1
	for v > max {
		v = r.Uint64() >> 1
	}
	return int64(v % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 { return mean * r.ExpFloat64() }

// NormFloat64 returns a standard normal value via the Marsaglia polar
// method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a log-normal value where the underlying normal has the
// given mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto(alpha) value with minimum xm. Heavy-tailed draws
// model the rare long-lived objects and oversized work units.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials; the mean is (1-p)/p.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("sim: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// Zipf draws ranks in [0, n) following a Zipf distribution with exponent s.
// Rank 0 is the most popular. The sampler precomputes the CDF, so it suits
// the moderate n (thread or lock counts) used by the workload models.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Clone returns a sampler sharing the immutable CDF but drawing from an
// independent clone of the underlying stream, positioned identically.
func (z *Zipf) Clone() *Zipf {
	return &Zipf{cdf: z.cdf, r: z.r.Clone()}
}

// Next returns the next rank.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
