package sim

import (
	"fmt"
	"testing"
)

// queueHarness drives a queue discipline through the same lifecycle the
// Simulator imposes: pooled records, (at, seq) stamping, cancellation
// via Remove, and recycling at fire/cancel time. Two harnesses fed the
// same operation stream must agree on everything observable.
type queueHarness struct {
	q    pending
	now  Time
	seq  uint64
	free []*Event
	live []*Event // schedule order, holes where fired/canceled
}

func (h *queueHarness) schedule(at Time) *Event {
	h.seq++
	var ev *Event
	if n := len(h.free); n > 0 {
		ev = h.free[n-1]
		h.free = h.free[:n-1]
		ev.canceled = false
	} else {
		ev = &Event{}
	}
	ev.at, ev.seq = at, h.seq
	h.q.Push(ev)
	h.live = append(h.live, ev)
	return ev
}

func (h *queueHarness) cancel(ev *Event) bool {
	if ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	h.q.Remove(ev)
	h.free = append(h.free, ev)
	return true
}

func (h *queueHarness) step() (Time, uint64, bool) {
	if h.q.Len() == 0 {
		return 0, 0, false
	}
	ev := h.q.Pop()
	if ev.at < h.now {
		panic("queue returned an event from the past")
	}
	h.now = ev.at
	at, seq := ev.at, ev.seq
	h.free = append(h.free, ev)
	return at, seq, true
}

// TestQueueDisciplineDifferential drives the live 4-ary heap and the
// reference binary heap through identical randomized schedule / cancel
// / fire interleavings and asserts they observe identical pop order and
// identical pool recycling. Because (at, seq) is a strict total order,
// any divergence is a bug in one discipline, not a legitimate tie
// resolution. Run under -race in CI (subtests are parallel).
func TestQueueDisciplineDifferential(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			quad := &queueHarness{q: &quadHeap{}}
			bin := &queueHarness{q: &binaryHeap{}}
			rng := NewRand(0xD1FF + uint64(trial)*0x9E3779B9)

			pendingIdx := func(h *queueHarness) []int {
				var idx []int
				for i, ev := range h.live {
					if ev != nil && ev.index >= 0 && !ev.canceled {
						idx = append(idx, i)
					}
				}
				return idx
			}

			for op := 0; op < 20000; op++ {
				switch r := rng.Intn(10); {
				case r < 5: // schedule, with deliberate timestamp ties
					at := quad.now + Time(rng.Intn(64))
					quad.schedule(at)
					bin.schedule(at)
				case r < 7: // cancel a random still-pending event
					idx := pendingIdx(quad)
					if len(idx) == 0 {
						continue
					}
					pick := idx[rng.Intn(len(idx))]
					cq := quad.cancel(quad.live[pick])
					cb := bin.cancel(bin.live[pick])
					if cq != cb {
						t.Fatalf("op %d: cancel diverged: quad=%v bin=%v", op, cq, cb)
					}
				default: // fire the earliest event
					qa, qs, qok := quad.step()
					ba, bs, bok := bin.step()
					if qok != bok || qa != ba || qs != bs {
						t.Fatalf("op %d: pop diverged: quad=(%v,%d,%v) bin=(%v,%d,%v)",
							op, qa, qs, qok, ba, bs, bok)
					}
				}
				if len(quad.free) != len(bin.free) {
					t.Fatalf("op %d: pool diverged: quad free=%d bin free=%d",
						op, len(quad.free), len(bin.free))
				}
			}

			// Drain both; the full remaining pop order must match too.
			for {
				qa, qs, qok := quad.step()
				ba, bs, bok := bin.step()
				if qok != bok || qa != ba || qs != bs {
					t.Fatalf("drain diverged: quad=(%v,%d,%v) bin=(%v,%d,%v)",
						qa, qs, qok, ba, bs, bok)
				}
				if !qok {
					break
				}
			}
			if len(quad.free) != len(bin.free) {
				t.Fatalf("final pool diverged: quad free=%d bin free=%d",
					len(quad.free), len(bin.free))
			}
		})
	}
}

// TestQuadHeapRemoveInvariant removes events from arbitrary interior
// positions and checks the heap invariant and index bookkeeping survive
// — the Remove path sifts the relocated tail event both directions.
func TestQuadHeapRemoveInvariant(t *testing.T) {
	rng := NewRand(0xBADC0DE)
	q := &quadHeap{}
	var evs []*Event
	for i := 0; i < 500; i++ {
		ev := &Event{at: Time(rng.Intn(100)), seq: uint64(i + 1)}
		q.Push(ev)
		evs = append(evs, ev)
	}
	// Remove every third event by original insertion order.
	for i := 0; i < len(evs); i += 3 {
		q.Remove(evs[i])
		if evs[i].index != -1 {
			t.Fatalf("removed event %d has index %d, want -1", i, evs[i].index)
		}
	}
	// Double-remove must no-op.
	q.Remove(evs[0])
	for i, ev := range q.items {
		if ev.index != i {
			t.Fatalf("slot %d holds event with index %d", i, ev.index)
		}
		if parent := (i - 1) >> 2; i > 0 && eventLess(ev, q.items[parent]) {
			t.Fatalf("heap invariant violated at slot %d", i)
		}
	}
	var prev *Event
	for q.Len() > 0 {
		ev := q.Pop()
		if prev != nil && eventLess(ev, prev) {
			t.Fatalf("pop order regressed: (%v,%d) after (%v,%d)", ev.at, ev.seq, prev.at, prev.seq)
		}
		prev = ev
	}
}

// BenchmarkQueueDiscipline compares the two heap disciplines on the
// kernel's characteristic mix — a warm queue at simulation-realistic
// depth with nearly every pushed event firing — which is the evidence
// behind choosing the 4-ary heap as the live eventQueue.
func BenchmarkQueueDiscipline(b *testing.B) {
	for _, depth := range []int{64, 1024} {
		run := func(name string, mk func() pending) {
			b.Run(fmt.Sprintf("%s/depth%d", name, depth), func(b *testing.B) {
				b.ReportAllocs()
				q := mk()
				rng := NewRand(42)
				evs := make([]*Event, depth+1)
				for i := range evs {
					evs[i] = &Event{}
				}
				var now Time
				var seq uint64
				for _, ev := range evs[:depth] {
					seq++
					ev.at, ev.seq = Time(rng.Intn(1000)), seq
					q.Push(ev)
				}
				spare := evs[depth]
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seq++
					spare.at, spare.seq = now+Time(rng.Intn(1000)), seq
					q.Push(spare)
					popped := q.Pop()
					now = popped.at
					spare = popped
				}
			})
		}
		run("binary", func() pending { return &binaryHeap{} })
		run("quad", func() pending { return &quadHeap{} })
	}
}
