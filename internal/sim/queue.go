package sim

// The pending-event queue discipline.
//
// The kernel needs a priority queue ordered by (at, seq) with three
// operations on the hot path — Push, Pop, Peek — plus an occasional
// indexed Remove (event cancellation). Because (at, seq) is a strict
// total order (seq is unique), *any* correct priority queue yields the
// same pop sequence, so the discipline is swappable without affecting
// results: bit-identity is by construction, not by luck.
//
// Two disciplines are implemented behind the small pending interface:
//
//   - quadHeap: a 4-ary min-heap. Half the depth of a binary heap, so
//     siftDown — the cost center of Pop, which dominates this kernel's
//     mix (nearly every scheduled event fires; cancellations are rare)
//     — does half as many levels of index arithmetic and pointer
//     stores, at the price of up to 3 comparisons per level. Both sifts
//     are hole-based (shift, don't swap): the moving event is held in a
//     register and written exactly once. Measured in the kernel
//     (BenchmarkEventThroughput / BenchmarkSimSchedule), the quad heap
//     runs the schedule/fire cycle ~6-8% faster than the binary heap;
//     through the boxed pending interface (BenchmarkQueueDiscipline)
//     the two are within noise of each other, which is exactly why the
//     Simulator embeds the concrete type.
//   - binaryHeap: the original binary min-heap, kept as the reference
//     implementation for the randomized differential test
//     (TestQueueDisciplineDifferential) and the discipline benchmark.
//
// A calendar/bucket queue was considered and rejected: this kernel's
// event horizon is bimodal (sub-microsecond pipeline steps coexisting
// with multi-millisecond GC and traffic deadlines), so no fixed bucket
// width keeps buckets O(1), and resize heuristics would add branches to
// Push/Pop that the heaps don't pay.
//
// The Simulator embeds the concrete quadHeap rather than the interface
// so hot-path calls stay devirtualized; the interface exists for the
// differential test and benchmarks, which exercise both disciplines
// through identical drivers.

// pending is the contract a queue discipline must satisfy. Ordering is
// by (at, seq) ascending; Remove must no-op on events not in the queue
// (stale index) and must leave index == -1 on removed events, matching
// the event-pool lifecycle contract.
type pending interface {
	Len() int
	Peek() *Event
	Push(ev *Event)
	Pop() *Event
	Remove(ev *Event)
}

// eventLess is the kernel's total order: fire time, then scheduling
// order (FIFO tie-break). seq is unique, so this is a strict total
// order and pop order is independent of heap shape.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue is the live discipline: a 4-ary min-heap ordered by
// (at, seq). Hand-rolled rather than built on container/heap so that
// Push/Pop avoid interface boxing on the kernel's hottest path.
type eventQueue = quadHeap

type quadHeap struct {
	items []*Event
}

// Len returns the number of queued events.
func (q *quadHeap) Len() int { return len(q.items) }

// Peek returns the earliest event without removing it. It panics on an
// empty queue; callers check Len first.
func (q *quadHeap) Peek() *Event { return q.items[0] }

// Push inserts an event.
func (q *quadHeap) Push(ev *Event) {
	q.items = append(q.items, nil)
	q.siftUp(len(q.items)-1, ev)
}

// Pop removes and returns the earliest event.
func (q *quadHeap) Pop() *Event {
	ev := q.items[0]
	last := len(q.items) - 1
	moved := q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0, moved)
	}
	ev.index = -1
	return ev
}

// Remove deletes an event at an arbitrary position.
func (q *quadHeap) Remove(ev *Event) {
	i := ev.index
	if i < 0 || i >= len(q.items) || q.items[i] != ev {
		return
	}
	last := len(q.items) - 1
	moved := q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		// The tail event fills the hole; it may need to move either way.
		q.siftDown(i, moved)
		q.siftUp(moved.index, moved)
	}
	ev.index = -1
}

// siftUp settles ev into the hole at i, shifting larger ancestors down.
// The hole-based sift writes each shifted event once and ev once, where
// a swap-based sift writes both sides at every level.
func (q *quadHeap) siftUp(i int, ev *Event) {
	for i > 0 {
		p := (i - 1) >> 2
		par := q.items[p]
		if !eventLess(ev, par) {
			break
		}
		q.items[i] = par
		par.index = i
		i = p
	}
	q.items[i] = ev
	ev.index = i
}

// siftDown settles ev into the hole at i, shifting the smallest child
// up at each level. With fan-out 4 the heap is half as deep as a binary
// heap, so Pop touches half as many levels.
func (q *quadHeap) siftDown(i int, ev *Event) {
	n := len(q.items)
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		bestEv := q.items[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if ce := q.items[c]; eventLess(ce, bestEv) {
				best, bestEv = c, ce
			}
		}
		if !eventLess(bestEv, ev) {
			break
		}
		q.items[i] = bestEv
		bestEv.index = i
		i = best
	}
	q.items[i] = ev
	ev.index = i
}

// binaryHeap is the original binary min-heap, retained as the reference
// discipline for differential tests and benchmarks.
type binaryHeap struct {
	items []*Event
}

// Len returns the number of queued events.
func (q *binaryHeap) Len() int { return len(q.items) }

// Peek returns the earliest event without removing it.
func (q *binaryHeap) Peek() *Event { return q.items[0] }

// Push inserts an event.
func (q *binaryHeap) Push(ev *Event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.siftUp(ev.index)
}

// Pop removes and returns the earliest event.
func (q *binaryHeap) Pop() *Event {
	ev := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[0].index = 0
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0)
	}
	ev.index = -1
	return ev
}

// Remove deletes an event at an arbitrary position.
func (q *binaryHeap) Remove(ev *Event) {
	i := ev.index
	if i < 0 || i >= len(q.items) || q.items[i] != ev {
		return
	}
	last := len(q.items) - 1
	q.items[i] = q.items[last]
	q.items[i].index = i
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	ev.index = -1
}

func (q *binaryHeap) less(i, j int) bool { return eventLess(q.items[i], q.items[j]) }

func (q *binaryHeap) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *binaryHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *binaryHeap) siftDown(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
