package sim

// eventQueue is a binary min-heap ordered by (at, seq). It is hand-rolled
// rather than built on container/heap so that Push/Pop avoid interface
// boxing on the kernel's hottest path.
type eventQueue struct {
	items []*Event
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.items) }

// Peek returns the earliest event without removing it. It panics on an
// empty queue; callers check Len first.
func (q *eventQueue) Peek() *Event { return q.items[0] }

// Push inserts an event.
func (q *eventQueue) Push(ev *Event) {
	ev.index = len(q.items)
	q.items = append(q.items, ev)
	q.siftUp(ev.index)
}

// Pop removes and returns the earliest event.
func (q *eventQueue) Pop() *Event {
	ev := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[0].index = 0
	q.items[last] = nil
	q.items = q.items[:last]
	if last > 0 {
		q.siftDown(0)
	}
	ev.index = -1
	return ev
}

// Remove deletes an event at an arbitrary position.
func (q *eventQueue) Remove(ev *Event) {
	i := ev.index
	if i < 0 || i >= len(q.items) || q.items[i] != ev {
		return
	}
	last := len(q.items) - 1
	q.items[i] = q.items[last]
	q.items[i].index = i
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	ev.index = -1
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			break
		}
		q.swap(i, smallest)
		i = smallest
	}
}
