package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("%d/100 identical draws across seeds; streams correlated", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	c1again := parent.Fork(1)
	// Same label twice gives the same stream; different labels differ.
	for i := 0; i < 100; i++ {
		v1, v1b := c1.Uint64(), c1again.Uint64()
		if v1 != v1b {
			t.Fatal("Fork with same label is not reproducible")
		}
		if v1 == c2.Uint64() {
			t.Fatal("Fork with different labels produced equal draws")
		}
	}
}

func TestForkDoesNotPerturbParent(t *testing.T) {
	a := NewRand(9)
	b := NewRand(9)
	_ = a.Fork(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forking consumed parent state")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(3)
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestInt63nBounds(t *testing.T) {
	r := NewRand(4)
	for _, n := range []int64{1, 5, 1 << 40} {
		for i := 0; i < 500; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := NewRand(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(8)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.2 {
		t.Errorf("exp mean = %v, want ~5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(10)
	sum, sumSq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(11)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(3, 1); v <= 0 {
			t.Fatalf("LogNormal produced %v", v)
		}
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRand(12)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.0, 1.5); v < 2.0 {
			t.Fatalf("Pareto(2, 1.5) = %v below minimum", v)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRand(13)
	p := 0.25
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := NewRand(14)
	for i := 0; i < 100; i++ {
		if v := r.Geometric(1); v != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(15)
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) fired %.3f of the time", frac)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	r := NewRand(16)
	z := NewZipf(r, 16, 1.2)
	counts := make([]int, 16)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 16 {
			t.Fatalf("Zipf rank %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("Zipf not skewed: counts %v", counts[:4])
	}
	// Rank 0 should dominate: > 25% of draws for s=1.2, n=16.
	if float64(counts[0])/n < 0.25 {
		t.Errorf("top rank only %.3f of draws", float64(counts[0])/n)
	}
}

// Property: Intn is always within bounds for arbitrary seeds and sizes.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical streams across all
// distributions (full determinism of the stochastic layer).
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 20; i++ {
			if a.Exp(3) != b.Exp(3) || a.Intn(10) != b.Intn(10) ||
				a.NormFloat64() != b.NormFloat64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
