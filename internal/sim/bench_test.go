package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel speed: schedule + fire one
// event per iteration through a warm heap of pending events.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	// Keep a standing population of events so the heap has realistic depth.
	var tick func()
	fired := 0
	tick = func() {
		fired++
		s.Schedule(100, tick)
	}
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

type benchCallback struct {
	s     *Simulator
	fired int
}

func (c *benchCallback) OnEvent() {
	c.fired++
	c.s.ScheduleCall(100, c)
}

// BenchmarkSimSchedule measures the allocation-free hot path: a pooled
// event record carrying a pre-bound Callback, scheduled and fired through
// a warm heap. Steady state must report zero allocs/op.
func BenchmarkSimSchedule(b *testing.B) {
	s := New()
	cb := &benchCallback{s: s}
	for i := 0; i < 64; i++ {
		s.ScheduleCall(Time(i), cb)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkScheduleCancel measures the add/remove path used by quantum
// slicing.
func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := s.Schedule(Time(i+1), fn)
		s.Cancel(ev)
	}
}

// BenchmarkRandUint64 measures the base generator.
func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// BenchmarkRandLogNormal measures the workload generator's hottest
// distribution.
func BenchmarkRandLogNormal(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.LogNormal(4.5, 0.7)
	}
	_ = sink
}
