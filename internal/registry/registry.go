// Package registry provides the string-keyed factory registry behind the
// simulator's swappable policies (lock disciplines, scheduler
// placements). A Registry maps unique names to factories; factories mint
// a fresh instance per resolution because policies hold per-run state.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is a concurrency-safe name -> factory catalog for one policy
// kind. The noun ("lock policy", "placement") labels error messages.
type Registry[T any] struct {
	noun string

	mu        sync.RWMutex
	order     []string
	factories map[string]func() T
}

// New returns an empty registry whose errors identify entries as noun
// (e.g. "locks: unknown lock policy ...").
func New[T any](noun string) *Registry[T] {
	return &Registry[T]{noun: noun, factories: make(map[string]func() T)}
}

// Register adds factory under name. Names are unique; registering an
// existing one is an error, so an entry can never be silently replaced.
func (r *Registry[T]) Register(name string, factory func() T) error {
	if name == "" {
		return fmt.Errorf("empty %s name", r.noun)
	}
	if factory == nil {
		return fmt.Errorf("nil factory for %s %q", r.noun, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		return fmt.Errorf("%s %q already registered", r.noun, name)
	}
	r.factories[name] = factory
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register that panics on error — for package init
// blocks wiring in the built-ins.
func (r *Registry[T]) MustRegister(name string, factory func() T) {
	if err := r.Register(name, factory); err != nil {
		panic(err)
	}
}

// New builds a fresh instance of the named entry.
func (r *Registry[T]) New(name string) (T, error) {
	r.mu.RLock()
	factory, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		known := r.Names()
		sort.Strings(known)
		return zero, fmt.Errorf("unknown %s %q (known: %s)",
			r.noun, name, strings.Join(known, ", "))
	}
	return factory(), nil
}

// Known reports whether name is registered.
func (r *Registry[T]) Known(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[name]
	return ok
}

// Names returns every registered name in registration order.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}
