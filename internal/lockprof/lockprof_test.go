package lockprof

import (
	"bytes"
	"strings"
	"testing"

	"javasim/internal/locks"
)

// drive runs a canned contention scenario through a monitor table wired to
// the profiler: thread 1 takes the lock, threads 2 and 3 contend, then the
// lock is handed down the queue.
func drive(p *Profiler) *locks.Table {
	tb := locks.NewTable(p)
	m := tb.Create("hot.lock")
	cold := tb.Create("cold.lock")
	tb.Acquire(m, 1, 0)
	tb.Acquire(m, 2, 10)  // contends, waits until t=100
	tb.Acquire(m, 3, 20)  // contends, waits until t=150
	tb.Release(m, 1, 100) // held 100, handoff to 2
	tb.Release(m, 2, 150) // held 50, handoff to 3
	tb.Release(m, 3, 160) // held 10
	tb.Acquire(cold, 4, 200)
	tb.Release(cold, 4, 210)
	return tb
}

func TestProfilerCounts(t *testing.T) {
	p := New()
	drive(p)
	sum := p.Summary()
	if sum.Locks != 2 {
		t.Errorf("locks = %d, want 2", sum.Locks)
	}
	if sum.Acquisitions != 4 {
		t.Errorf("acquisitions = %d, want 4", sum.Acquisitions)
	}
	if sum.Contentions != 2 {
		t.Errorf("contentions = %d, want 2", sum.Contentions)
	}
	// Thread 2 waited 90, thread 3 waited 130.
	if sum.TotalWait != 220 {
		t.Errorf("total wait = %v, want 220", sum.TotalWait)
	}
	if sum.MeanWait != 110 {
		t.Errorf("mean wait = %v, want 110", sum.MeanWait)
	}
	if sum.TotalHold != 100+50+10+10 {
		t.Errorf("total hold = %v, want 170", sum.TotalHold)
	}
}

func TestPerLockOrdering(t *testing.T) {
	p := New()
	drive(p)
	per := p.PerLock()
	if len(per) != 2 {
		t.Fatalf("per-lock entries = %d, want 2", len(per))
	}
	if per[0].Name != "hot.lock" {
		t.Errorf("hottest lock = %q, want hot.lock", per[0].Name)
	}
	if per[0].Contentions != 2 || per[1].Contentions != 0 {
		t.Errorf("contention ordering wrong: %+v", per)
	}
}

func TestLockStatsDerived(t *testing.T) {
	p := New()
	drive(p)
	hot := p.TopByContention(1)[0]
	if hot.ContentionRate() <= 0 || hot.ContentionRate() > 1 {
		t.Errorf("contention rate = %v", hot.ContentionRate())
	}
	if hot.MeanWait() != 110 {
		t.Errorf("mean wait = %v, want 110", hot.MeanWait())
	}
	if hot.MeanHold() != (100+50+10)/3 {
		t.Errorf("mean hold = %v", hot.MeanHold())
	}
	var zero LockStats
	if zero.ContentionRate() != 0 || zero.MeanWait() != 0 || zero.MeanHold() != 0 {
		t.Error("zero stats should have zero derived values")
	}
}

func TestTopByContentionLimit(t *testing.T) {
	p := New()
	drive(p)
	if got := len(p.TopByContention(1)); got != 1 {
		t.Errorf("TopByContention(1) returned %d", got)
	}
	if got := len(p.TopByContention(10)); got != 2 {
		t.Errorf("TopByContention(10) returned %d", got)
	}
}

func TestHistograms(t *testing.T) {
	p := New()
	drive(p)
	if p.WaitHistogram().Total() != 2 {
		t.Errorf("wait samples = %d, want 2", p.WaitHistogram().Total())
	}
	if p.HoldHistogram().Total() != 4 {
		t.Errorf("hold samples = %d, want 4", p.HoldHistogram().Total())
	}
}

func TestReport(t *testing.T) {
	p := New()
	drive(p)
	var buf bytes.Buffer
	p.Report(&buf, 5)
	out := buf.String()
	for _, want := range []string{"hot.lock", "cold.lock", "acquisitions", "CONTENDED"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := New()
	sum := p.Summary()
	if sum.Locks != 0 || sum.Acquisitions != 0 || sum.MeanWait != 0 {
		t.Errorf("empty summary = %+v", sum)
	}
	if len(p.PerLock()) != 0 {
		t.Error("empty profiler has per-lock entries")
	}
	var buf bytes.Buffer
	p.Report(&buf, 3) // must not panic
}
