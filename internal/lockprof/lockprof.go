// Package lockprof is the simulator's answer to the DTrace lock probes the
// paper used (§II-B): it observes every monitor event through the
// locks.Listener interface and aggregates per-lock acquisition counts,
// contention counts, and wait/hold time statistics.
package lockprof

import (
	"fmt"
	"io"
	"sort"

	"javasim/internal/locks"
	"javasim/internal/metrics"
	"javasim/internal/sim"
)

// LockStats accumulates per-monitor counters.
type LockStats struct {
	ID           int
	Name         string
	State        locks.LockState
	BiasedAcqs   int64
	Revocations  int64
	Acquisitions int64
	Contentions  int64
	TotalWait    sim.Time
	MaxWait      sim.Time
	TotalHold    sim.Time
	MaxHold      sim.Time
	Releases     int64
	Handoffs     int64
}

// ContentionRate returns contentions per acquisition.
func (s *LockStats) ContentionRate() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contentions) / float64(s.Acquisitions)
}

// MeanWait returns the mean time a contended acquire spent parked.
func (s *LockStats) MeanWait() sim.Time {
	if s.Handoffs == 0 {
		return 0
	}
	return s.TotalWait / sim.Time(s.Handoffs)
}

// MeanHold returns the mean time the monitor was held per release.
func (s *LockStats) MeanHold() sim.Time {
	if s.Releases == 0 {
		return 0
	}
	return s.TotalHold / sim.Time(s.Releases)
}

// Profiler implements locks.Listener and aggregates statistics. It is not
// safe for concurrent use; the simulation kernel is single-threaded.
type Profiler struct {
	stats    []*LockStats
	waitHist *metrics.Histogram
	holdHist *metrics.Histogram
}

var _ locks.Listener = (*Profiler)(nil)

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{
		waitHist: metrics.NewHistogram("lock-wait-ns"),
		holdHist: metrics.NewHistogram("lock-hold-ns"),
	}
}

func (p *Profiler) statsFor(m *locks.Monitor) *LockStats {
	for len(p.stats) <= m.ID() {
		p.stats = append(p.stats, nil)
	}
	s := p.stats[m.ID()]
	if s == nil {
		s = &LockStats{ID: m.ID(), Name: m.Name()}
		p.stats[m.ID()] = s
	}
	return s
}

// OnAcquire implements locks.Listener.
func (p *Profiler) OnAcquire(m *locks.Monitor, t locks.ThreadID, contended bool, now sim.Time) {
	s := p.statsFor(m)
	s.Acquisitions++
	if contended {
		s.Contentions++
	}
	// The lock-state machine only advances on acquisition; mirror it.
	s.State = m.State()
	s.BiasedAcqs = m.BiasedAcquisitions()
	s.Revocations = m.Revocations()
}

// OnHandoff implements locks.Listener.
func (p *Profiler) OnHandoff(m *locks.Monitor, t locks.ThreadID, waited sim.Time) {
	s := p.statsFor(m)
	s.Handoffs++
	s.TotalWait += waited
	if waited > s.MaxWait {
		s.MaxWait = waited
	}
	p.waitHist.Add(int64(waited))
}

// OnRelease implements locks.Listener.
func (p *Profiler) OnRelease(m *locks.Monitor, t locks.ThreadID, held sim.Time) {
	s := p.statsFor(m)
	s.Releases++
	s.TotalHold += held
	if held > s.MaxHold {
		s.MaxHold = held
	}
	p.holdHist.Add(int64(held))
}

// Summary is the whole-run aggregate.
type Summary struct {
	Locks         int
	Acquisitions  int64
	Contentions   int64
	TotalWait     sim.Time
	TotalHold     sim.Time
	MeanWait      sim.Time
	ContendedRate float64
}

// Summary aggregates across all observed locks.
func (p *Profiler) Summary() Summary {
	var out Summary
	var handoffs int64
	for _, s := range p.stats {
		if s == nil {
			continue
		}
		out.Locks++
		out.Acquisitions += s.Acquisitions
		out.Contentions += s.Contentions
		out.TotalWait += s.TotalWait
		out.TotalHold += s.TotalHold
		handoffs += s.Handoffs
	}
	if handoffs > 0 {
		out.MeanWait = out.TotalWait / sim.Time(handoffs)
	}
	if out.Acquisitions > 0 {
		out.ContendedRate = float64(out.Contentions) / float64(out.Acquisitions)
	}
	return out
}

// PerLock returns a copy of the per-lock stats, sorted by descending
// contention count.
func (p *Profiler) PerLock() []LockStats {
	var out []LockStats
	for _, s := range p.stats {
		if s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Contentions != out[j].Contentions {
			return out[i].Contentions > out[j].Contentions
		}
		return out[i].Acquisitions > out[j].Acquisitions
	})
	return out
}

// TopByContention returns up to n hottest locks.
func (p *Profiler) TopByContention(n int) []LockStats {
	all := p.PerLock()
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// WaitHistogram returns the distribution of contended wait times (ns).
func (p *Profiler) WaitHistogram() *metrics.Histogram { return p.waitHist }

// HoldHistogram returns the distribution of hold times (ns).
func (p *Profiler) HoldHistogram() *metrics.Histogram { return p.holdHist }

// Report writes a DTrace-style table of the hottest locks to w.
func (p *Profiler) Report(w io.Writer, topN int) {
	sum := p.Summary()
	fmt.Fprintf(w, "lock profile: %d locks, %d acquisitions, %d contentions (%.2f%%)\n",
		sum.Locks, sum.Acquisitions, sum.Contentions, 100*sum.ContendedRate)
	fmt.Fprintf(w, "%-28s %-9s %12s %12s %10s %12s %12s\n",
		"LOCK", "STATE", "ACQUIRES", "CONTENDED", "RATE", "MEAN-WAIT", "MEAN-HOLD")
	for _, s := range p.TopByContention(topN) {
		fmt.Fprintf(w, "%-28s %-9s %12d %12d %9.2f%% %12v %12v\n",
			s.Name, s.State, s.Acquisitions, s.Contentions, 100*s.ContentionRate(),
			s.MeanWait(), s.MeanHold())
	}
}
