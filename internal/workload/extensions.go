package workload

import "javasim/internal/sim"

// Extension workloads beyond the paper's six benchmarks. They are not part
// of PaperSet() — the paper's experiment set — but are registered in the
// workload registry and resolve through Lookup for the future-work
// studies.

// ServerSpec models the "large multi-threaded server application" the
// paper's §IV motivates for its compartmentalized-heap proposal: a
// steady-state request-serving workload with a shared accept queue, no
// phase barriers, per-request allocation churn, a hot logging lock, and a
// session cache that accumulates long-lived state. Scalable, but with a
// growing mature-generation footprint that makes full-collection pauses
// the pain point compartments are meant to relieve.
func ServerSpec() Spec {
	return Spec{
		Name:        "server",
		TotalUnits:  16000, // requests
		UnitCompute: 30 * sim.Microsecond,
		ComputeCV:   0.6,

		Distribution: Queue,

		AllocsPerUnit: 25,
		ObjSizeMeanB:  128,
		ObjSizeSigma:  0.8,
		AllocGap:      90 * sim.Nanosecond,

		FracIntraBurst:    0.62,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.20, // response buffers pending flush
		CrossUnitMeanDist: 6,
		FracLongLived:     0.10, // session cache entries

		SharedLocks:    3, // session table, logger (hot), metrics
		LockOpsPerUnit: 1.2,
		LockHold:       600 * sim.Nanosecond,
		QueueLockHold:  180 * sim.Nanosecond,

		Phases:             0, // steady state: no barriers
		SequentialFraction: 0,

		MemoryIntensity: 0.6,
		HelperThreads:   2,
	}
}

// ServerContendedSpec is the server model with the hot-lock pressure of
// the open-system studies in closed-loop form: one shared monitor, a
// longer hold, and a 5µs contended-unpark round trip billed per
// contention event (ContentionCost — zero in the base server model, so
// that model stays seed-identical to its pre-traffic calibration). Lock
// disciplines that avoid contention events — Dice & Kogan's restricted
// policy above all — buy back real time here, which is what makes the
// policy ablation visible to the analytic USL fit: restricted should
// fit a lower sigma than fifo.
func ServerContendedSpec() Spec {
	s := ServerSpec()
	s.Name = "server-contended"
	s.SharedLocks = 1
	s.LockOpsPerUnit = 2.0
	s.LockHold = 2 * sim.Microsecond
	s.ContentionCost = 5 * sim.Microsecond
	return s
}

// Extensions returns the registered workloads that extend the paper's
// set: the bundled models beyond the six benchmarks plus any user
// registrations.
//
// Deprecated: use Registered (the whole catalog) or Lookup (one
// workload); the paper set is PaperSet.
func Extensions() []Spec {
	var out []Spec
	for _, s := range Registered() {
		if !IsPaperBenchmark(s.Name) {
			out = append(out, s)
		}
	}
	return out
}
