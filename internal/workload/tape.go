package workload

import "javasim/internal/sim"

// Tape is an immutable, pre-generated unit sequence for one (spec, seed)
// pair — the warm-start snapshot of a workload's generation stream.
//
// Unit generation is the thread-count-invariant part of a run's warmup:
// generate ignores which thread is asking, so the k-th unit taken is a
// pure function of (spec, seed, k) at every thread count and offered
// rate. A tape captures that sequence once; every sweep point then
// replays it instead of re-deriving the same lognormal/Zipf draws, which
// profiling shows is the single largest CPU component of a run. What a
// tape deliberately does NOT capture is simulated VM state (heap, TLABs,
// scheduler, pending events): those diverge between sweep points from
// the first event on, so any "fork" of them would not be bit-identical
// to a cold run. See docs/architecture.md.
//
// A tape is safe to share across concurrently executing runs: the unit
// records are read-only after Build (the VM never mutates ops), and each
// attached Run tracks its own replay position. End-of-tape RNG states
// are cloned per run on detach.
type Tape struct {
	spec  Spec
	seed  uint64
	units []Unit

	// Stream states at the moment the last unit was generated; a run
	// that exhausts the tape resumes live generation from clones of
	// these, making replay+overflow bit-identical to never replaying.
	endRng     *sim.Rand
	endSiteRng *sim.Rand
	endLockPop *sim.Zipf
}

// BuildTape generates the first n units of (spec, seed). n <= 0 defaults
// to spec.TotalUnits — a full closed-system run. Open-system runs may
// consume more than n units; replay then falls back to live generation
// seamlessly (see Run.AttachTape).
func BuildTape(spec Spec, seed uint64, n int) (*Tape, error) {
	r, err := NewRun(spec, 1, seed)
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		n = spec.TotalUnits
	}
	units := make([]Unit, n)
	for i := range units {
		units[i] = r.generate(0)
	}
	t := &Tape{
		spec:       spec,
		seed:       seed,
		units:      units,
		endRng:     r.rng.Clone(),
		endSiteRng: r.siteRng.Clone(),
	}
	if r.lockPop != nil {
		t.endLockPop = r.lockPop.Clone()
	}
	return t, nil
}

// Len returns the number of pre-generated units.
func (t *Tape) Len() int { return len(t.units) }

// Seed returns the seed the tape was generated from.
func (t *Tape) Seed() uint64 { return t.seed }
