package workload

import "testing"

// BenchmarkUnitGeneration measures the per-unit op-stream generator, the
// hottest workload-side path.
func BenchmarkUnitGeneration(b *testing.B) {
	r, err := NewRun(XalanSpec(), 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Take(i % 8); !ok {
			b.StopTimer()
			r, _ = NewRun(XalanSpec(), 8, uint64(i))
			b.StartTimer()
		}
	}
}

// BenchmarkZipfAssignment measures the static distribution computation at
// a high thread count.
func BenchmarkZipfAssignment(b *testing.B) {
	spec := H2Spec()
	for i := 0; i < b.N; i++ {
		if _, err := NewRun(spec, 48, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
