// Package workload models the six DaCapo-9.12 benchmarks the paper
// measures (§II-C): sunflow, lusearch, and xalan (the scalable trio) and
// h2, eclipse, and jython (the non-scalable trio).
//
// A workload is a Spec: a parameterized description of the benchmark's
// structure — how work units are distributed across threads, how much each
// unit computes, what it allocates, when those objects die, and which
// shared locks it takes. The spec parameters are chosen to mirror each
// benchmark's published character (see DESIGN.md §5); the paper's observed
// behaviors (lock scaling, lifespan stretching, GC growth) are not encoded
// directly but emerge from running the spec on the simulated JVM.
//
// Two invariants from the paper's methodology hold for every spec: the
// total number of work units — and therefore objects allocated and heap
// required — is independent of the thread count, and only the division of
// those units across threads changes.
//
// Every spec the framework can run lives in the workload registry: the
// six benchmarks and the bundled extensions are pre-registered, custom
// models join via Register, and consumers resolve names through Lookup
// (or a Ref, the registry-or-inline reference that scenario plans
// serialize).
package workload

import (
	"fmt"
	"math"

	"javasim/internal/sim"
)

// DistKind selects how work units are divided among mutator threads.
type DistKind uint8

const (
	// Queue distributes units through a shared work queue: any thread that
	// asks gets the next unit, guarded by the queue lock. This yields the
	// near-uniform per-thread shares the paper observes for xalan,
	// lusearch, and sunflow.
	Queue DistKind = iota
	// Zipf statically assigns units with a Zipf-skewed share per thread,
	// concentrating work in a few threads (h2's transaction affinity).
	Zipf
	// Capped statically assigns units round-robin over at most Cap
	// threads; remaining threads receive nothing (eclipse's pipeline
	// stages, jython's interpreter threads).
	Capped
)

// String names the distribution.
func (d DistKind) String() string {
	switch d {
	case Queue:
		return "queue"
	case Zipf:
		return "zipf"
	case Capped:
		return "capped"
	default:
		return "invalid"
	}
}

// DeathMode says when an allocated object dies.
type DeathMode uint8

const (
	// DieAfterOwnAllocs kills the object after its allocating thread
	// performs N more allocations — the tight intra-burst reuse that gives
	// Java its "most objects die young" profile.
	DieAfterOwnAllocs DeathMode = iota
	// DieAtUnitsAhead kills the object when its thread completes the unit
	// N units after the current one (N = 0 means end of current unit).
	DieAtUnitsAhead
	// Immortal objects survive until program exit.
	Immortal
)

// DeathSpec pairs a mode with its parameter.
type DeathSpec struct {
	Mode DeathMode
	N    int32
}

// OpKind is one step inside a work unit.
type OpKind uint8

const (
	// OpCompute burns CPU for Dur.
	OpCompute OpKind = iota
	// OpAlloc allocates Size bytes with the given death schedule, then
	// burns Dur (the intra-burst allocation gap).
	OpAlloc
	// OpAcquire takes shared lock Lock.
	OpAcquire
	// OpRelease releases shared lock Lock.
	OpRelease
)

// NumAllocSites is the number of distinct allocation sites a workload
// exhibits. Sites correlate with object lifetime class — the property
// that makes allocation-site pretenuring work in real JVMs — with a
// deliberate noise floor so the correlation is strong but not an oracle.
const NumAllocSites = 24

// Op is one interpreted step of a work unit.
type Op struct {
	Kind  OpKind
	Dur   sim.Time
	Size  int32
	Death DeathSpec
	Lock  int
	// Site is the allocation-site identifier for OpAlloc (0..NumAllocSites).
	Site int32
}

// Unit is one work item: an op sequence the VM interprets.
type Unit struct {
	Ops []Op
}

// LockSpec names a shared lock the workload uses.
type LockSpec struct {
	Name string
}

// Spec describes one benchmark. Construct via the named constructors
// (XalanSpec etc.) or fill fields directly for custom studies.
type Spec struct {
	// Name is the benchmark name ("xalan").
	Name string
	// TotalUnits is the number of work units per run, independent of the
	// thread count (paper §II-C).
	TotalUnits int
	// UnitCompute is the mean CPU time per unit; actual durations are
	// lognormal with coefficient of variation ComputeCV.
	UnitCompute sim.Time
	ComputeCV   float64

	// Distribution divides units across threads. ZipfSkew parameterizes
	// Zipf; Cap parameterizes Capped.
	Distribution DistKind
	ZipfSkew     float64
	Cap          int

	// AllocsPerUnit is the mean number of objects allocated per unit.
	AllocsPerUnit int
	// ObjSizeMeanB is the mean object size in bytes; sizes are lognormal
	// with sigma ObjSizeSigma, clamped to [16, 8192].
	ObjSizeMeanB int
	ObjSizeSigma float64
	AllocGap     sim.Time // compute time between consecutive allocations

	// Death behavior fractions; they must sum to <= 1, the remainder is
	// DieAtUnitsAhead with distance 0 (end of unit).
	FracIntraBurst    float64 // DieAfterOwnAllocs, N ~ 1 + Geom(IntraBurstMeanN)
	FracCrossUnit     float64 // DieAtUnitsAhead, N ~ 1 + Geom(CrossUnitMeanDist)
	FracLongLived     float64 // Immortal
	IntraBurstMeanN   float64
	CrossUnitMeanDist float64

	// SharedLocks is the number of shared resource locks beyond the
	// queue/barrier infrastructure. LockOpsPerUnit is the mean number of
	// acquire/release pairs per unit, spread over the shared locks with a
	// Zipf(1.2) popularity skew. LockHold is the critical-section length.
	SharedLocks    int
	LockOpsPerUnit float64
	LockHold       sim.Time
	// QueueLockHold is the dequeue cost under the work-queue lock (Queue
	// distribution only).
	QueueLockHold sim.Time
	// ContentionCost is the CPU a thread burns waking from a contended
	// slow-path park (the monitor-contended-enter probe of Figure 1b):
	// the unpark syscall, scheduler latency, and cache refill of a real
	// park/unpark round trip. Zero — the default everywhere — keeps lock
	// handoff free, so all work-conserving disciplines finish together;
	// nonzero makes the probe count a time cost, separating disciplines
	// that avoid the slow path (restricted, spin-then-park) from those
	// that take it on every contended acquire.
	ContentionCost sim.Time

	// Phases is the number of barrier-synchronized phases; all active
	// threads rendezvous Phases times per run, and the paper's scalable
	// benchmarks owe much of their thread-linear lock growth to this
	// coordination.
	Phases int
	// SequentialFraction is the share of total compute executed by a
	// single thread at phase boundaries (the Amdahl term).
	SequentialFraction float64

	// MemoryIntensity in [0,1] scales NUMA sensitivity of compute.
	MemoryIntensity float64
	// HelperThreads is the number of JVM background threads (JIT,
	// profiler) the VM spawns alongside the mutators.
	HelperThreads int

	// MinHeapMB optionally pins the minimum heap requirement; when zero it
	// is derived from the long-lived footprint plus working set.
	MinHeapMB int
}

// Validate reports structural errors in the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if s.TotalUnits <= 0 {
		return fmt.Errorf("workload %s: TotalUnits = %d", s.Name, s.TotalUnits)
	}
	if s.UnitCompute <= 0 {
		return fmt.Errorf("workload %s: UnitCompute = %v", s.Name, s.UnitCompute)
	}
	if s.AllocsPerUnit < 0 || s.ObjSizeMeanB < 16 && s.AllocsPerUnit > 0 {
		return fmt.Errorf("workload %s: bad allocation profile", s.Name)
	}
	sum := s.FracIntraBurst + s.FracCrossUnit + s.FracLongLived
	if sum < 0 || sum > 1 {
		return fmt.Errorf("workload %s: death fractions sum to %v", s.Name, sum)
	}
	switch s.Distribution {
	case Zipf:
		if s.ZipfSkew <= 0 {
			return fmt.Errorf("workload %s: Zipf distribution needs ZipfSkew > 0", s.Name)
		}
	case Capped:
		if s.Cap <= 0 {
			return fmt.Errorf("workload %s: Capped distribution needs Cap > 0", s.Name)
		}
	}
	if s.SequentialFraction < 0 || s.SequentialFraction >= 1 {
		return fmt.Errorf("workload %s: SequentialFraction = %v", s.Name, s.SequentialFraction)
	}
	if s.ContentionCost < 0 {
		return fmt.Errorf("workload %s: ContentionCost = %v", s.Name, s.ContentionCost)
	}
	return nil
}

// MinHeapBytes returns the benchmark's minimum heap requirement: either the
// pinned MinHeapMB or an estimate from the immortal footprint plus a
// per-thread working-set allowance.
func (s *Spec) MinHeapBytes() int64 {
	if s.MinHeapMB > 0 {
		return int64(s.MinHeapMB) << 20
	}
	totalAlloc := s.TotalAllocBytes()
	longLived := int64(float64(totalAlloc) * s.FracLongLived)
	// The knee below which the run cannot proceed: immortal data plus a
	// modest nursery to make allocation progress.
	min := longLived + totalAlloc/64 + (256 << 10)
	return min
}

// TotalAllocBytes estimates the run's total allocation volume.
func (s *Spec) TotalAllocBytes() int64 {
	return int64(s.TotalUnits) * int64(s.AllocsPerUnit) * int64(s.ObjSizeMeanB)
}

// Scale returns a copy with TotalUnits (and Phases, proportionally)
// multiplied by f — used to shrink runs for tests and benchmarks. The
// behavioral parameters are untouched.
func (s Spec) Scale(f float64) Spec {
	if f <= 0 {
		panic("workload: Scale factor must be positive")
	}
	s.TotalUnits = int(math.Max(1, float64(s.TotalUnits)*f))
	if s.Phases > 0 {
		s.Phases = int(math.Max(1, float64(s.Phases)*f))
	}
	return s
}

// unitsFor computes the static per-thread unit assignment for non-queue
// distributions over n threads.
func (s *Spec) unitsFor(n int) []int {
	out := make([]int, n)
	switch s.Distribution {
	case Capped:
		active := s.Cap
		if active > n {
			active = n
		}
		base := s.TotalUnits / active
		rem := s.TotalUnits % active
		for i := 0; i < active; i++ {
			out[i] = base
			if i < rem {
				out[i]++
			}
		}
	case Zipf:
		weights := make([]float64, n)
		var sum float64
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), s.ZipfSkew)
			sum += weights[i]
		}
		assigned := 0
		for i := range weights {
			out[i] = int(float64(s.TotalUnits) * weights[i] / sum)
			assigned += out[i]
		}
		out[0] += s.TotalUnits - assigned // rounding remainder to the busiest
	default:
		panic("workload: unitsFor on queue distribution")
	}
	return out
}

// Run is the per-execution state of a workload: the unit source the VM
// draws from. It is not safe for concurrent use; the simulation kernel is
// single-threaded.
type Run struct {
	spec    Spec
	seed    uint64
	threads int
	rng     *sim.Rand
	siteRng *sim.Rand // dedicated stream for allocation-site draws
	lockPop *sim.Zipf // popularity skew over shared locks

	// Lognormal parameters are pure functions of the spec, hoisted out of
	// generate so the per-unit cost is the draws alone, not the Log/Sqrt
	// tower rederiving constants. The hoisted values are computed by the
	// same expressions generate used, so draws are bit-identical.
	unitMean  float64
	unitMu    float64
	unitSigma float64
	sizeMu    float64
	sizeSigma float64

	queueLeft  int   // Queue distribution: shared pool
	staticLeft []int // static distributions: per-thread pools

	unitsTaken []int64 // per-thread work counter, for the §III table

	// reuse/scratch: opt-in per-thread op-buffer recycling (see
	// ReuseUnitBuffers). tape/tapePos: optional pre-generated unit source
	// (see AttachTape).
	reuse   bool
	scratch [][]Op
	tape    *Tape
	tapePos int
}

// NewRun instantiates the spec for a given mutator thread count and seed.
func NewRun(spec Spec, threads int, seed uint64) (*Run, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if threads < 1 {
		return nil, fmt.Errorf("workload %s: threads = %d", spec.Name, threads)
	}
	rng := sim.NewRand(seed)
	r := &Run{
		spec:       spec,
		seed:       seed,
		threads:    threads,
		rng:        rng,
		siteRng:    rng.Fork(0x517E5),
		unitsTaken: make([]int64, threads),
	}
	if spec.SharedLocks > 0 {
		r.lockPop = sim.NewZipf(r.rng.Fork(0xC0FFEE), spec.SharedLocks, 1.2)
	}
	cv := spec.ComputeCV
	if cv <= 0 {
		cv = 0.3
	}
	r.unitMean = float64(spec.UnitCompute)
	r.unitSigma = math.Sqrt(math.Log(1 + cv*cv))
	r.unitMu = math.Log(r.unitMean) - r.unitSigma*r.unitSigma/2
	r.sizeSigma = spec.ObjSizeSigma
	if r.sizeSigma <= 0 {
		r.sizeSigma = 0.7
	}
	if spec.ObjSizeMeanB > 0 {
		r.sizeMu = math.Log(float64(spec.ObjSizeMeanB)) - r.sizeSigma*r.sizeSigma/2
	}
	if spec.Distribution == Queue {
		r.queueLeft = spec.TotalUnits
	} else {
		r.staticLeft = spec.unitsFor(threads)
	}
	return r, nil
}

// Spec returns the workload spec.
func (r *Run) Spec() Spec { return r.spec }

// Threads returns the mutator thread count.
func (r *Run) Threads() int { return r.threads }

// UnitsTaken returns the per-thread work counts so far.
func (r *Run) UnitsTaken() []int64 {
	out := make([]int64, len(r.unitsTaken))
	copy(out, r.unitsTaken)
	return out
}

// Remaining returns the number of unassigned units.
func (r *Run) Remaining() int {
	if r.spec.Distribution == Queue {
		return r.queueLeft
	}
	n := 0
	for _, v := range r.staticLeft {
		n += v
	}
	return n
}

// Take hands thread tid its next work unit. ok is false when the thread
// has no more work (for Queue, when the shared pool is empty).
func (r *Run) Take(tid int) (Unit, bool) {
	if r.spec.Distribution == Queue {
		if r.queueLeft == 0 {
			return Unit{}, false
		}
		r.queueLeft--
	} else {
		if r.staticLeft[tid] == 0 {
			return Unit{}, false
		}
		r.staticLeft[tid]--
	}
	r.unitsTaken[tid]++
	return r.nextUnit(tid), true
}

// TakeOpen hands thread tid a generated unit without drawing down the
// run's unit pools — open-system mode, where the arrival process (not a
// fixed total) governs how many units execute. Units draw from the same
// RNG stream as Take, so a given draw sequence yields identical units
// in both modes.
func (r *Run) TakeOpen(tid int) Unit {
	r.unitsTaken[tid]++
	return r.nextUnit(tid)
}

// ReuseUnitBuffers opts the run into recycling one op buffer per thread:
// each Take/TakeOpen for thread tid overwrites the Unit previously handed
// to tid. Callers that consume a unit fully before taking the thread's
// next one (the VM does) save the per-unit ops allocation; callers that
// retain units across takes must not enable this. Tape-replayed units are
// never recycled — replay hands out the tape's persistent records.
func (r *Run) ReuseUnitBuffers() {
	if r.scratch == nil {
		r.scratch = make([][]Op, r.threads)
	}
	r.reuse = true
}

// AttachTape switches the run's unit source to a pre-generated tape. The
// tape must have been built from the same spec and seed; ok reports
// whether it matched (on false the run is unchanged and will generate
// live). Replay is bit-identical to live generation: unit k of a run is
// a pure function of (spec, seed, k) — generation ignores the taking
// thread — and once the tape is exhausted the run resumes live drawing
// from cloned end-of-tape RNG states, exactly where a never-taped run's
// streams would stand.
func (r *Run) AttachTape(t *Tape) bool {
	if t == nil || t.spec != r.spec || t.seed != r.seed {
		return false
	}
	r.tape = t
	r.tapePos = 0
	return true
}

// nextUnit returns the next unit from the tape when one is attached and
// unexhausted, otherwise generates live.
func (r *Run) nextUnit(tid int) Unit {
	if t := r.tape; t != nil {
		if r.tapePos < len(t.units) {
			u := t.units[r.tapePos]
			r.tapePos++
			return u
		}
		r.detachTape()
	}
	return r.generate(tid)
}

// detachTape switches an exhausted tape replay back to live generation,
// resuming each RNG stream from the position it held when the tape's
// last unit was generated.
func (r *Run) detachTape() {
	t := r.tape
	r.tape = nil
	r.rng = t.endRng.Clone()
	r.siteRng = t.endSiteRng.Clone()
	if t.endLockPop != nil {
		r.lockPop = t.endLockPop.Clone()
	}
}

// clampSize bounds object sizes to a Java-plausible range.
func clampSize(v float64) int32 {
	if v < 16 {
		return 16
	}
	if v > 8192 {
		return 8192
	}
	return int32(v)
}

// generate builds the op sequence for one unit, deterministic in the run's
// RNG stream.
func (r *Run) generate(tid int) Unit {
	s := &r.spec
	rng := r.rng

	// Unit compute duration: lognormal around the mean (parameters hoisted
	// to NewRun).
	total := sim.Time(rng.LogNormal(r.unitMu, r.unitSigma))
	if total < sim.Time(r.unitMean/8) {
		total = sim.Time(r.unitMean / 8)
	}

	allocs := s.AllocsPerUnit
	if allocs > 0 {
		// Mild per-unit variation: ±25%.
		span := allocs / 2
		if span > 0 {
			allocs = allocs - span/2 + rng.Intn(span+1)
		}
		if allocs < 1 {
			allocs = 1
		}
	}
	gapTotal := sim.Time(allocs) * s.AllocGap
	computeBudget := total - gapTotal
	if computeBudget < total/4 {
		computeBudget = total / 4
	}

	lockOps := 0
	if s.LockOpsPerUnit > 0 {
		base := int(s.LockOpsPerUnit)
		lockOps = base
		if rng.Float64() < s.LockOpsPerUnit-float64(base) {
			lockOps++
		}
	}

	var ops []Op
	if r.reuse {
		ops = r.scratch[tid][:0]
	} else {
		ops = make([]Op, 0, 4+allocs+2*lockOps)
	}

	// Leading compute: half the budget before the allocation burst.
	ops = append(ops, Op{Kind: OpCompute, Dur: computeBudget / 2})

	// Allocation burst.
	for i := 0; i < allocs; i++ {
		// Main-stream draw order (size, then death) is part of the
		// calibrated behavior; sites draw from their own stream.
		size := clampSize(rng.LogNormal(r.sizeMu, r.sizeSigma))
		death := r.sampleDeath()
		ops = append(ops, Op{
			Kind:  OpAlloc,
			Dur:   s.AllocGap,
			Size:  size,
			Death: death,
			Site:  r.sampleSite(death),
		})
	}

	// Critical sections against shared locks, mid-unit.
	for i := 0; i < lockOps; i++ {
		lk := 0
		if r.lockPop != nil {
			lk = r.lockPop.Next()
		}
		ops = append(ops,
			Op{Kind: OpAcquire, Lock: lk},
			Op{Kind: OpCompute, Dur: s.LockHold},
			Op{Kind: OpRelease, Lock: lk},
		)
	}

	// Trailing compute.
	ops = append(ops, Op{Kind: OpCompute, Dur: computeBudget / 2})
	if r.reuse {
		r.scratch[tid] = ops // keep grown capacity for tid's next unit
	}
	return Unit{Ops: ops}
}

// sampleSite assigns an allocation site correlated with the object's
// lifetime class. Bands are sized by typical traffic volume (intra-burst
// churn dominates real allocation profiles) so that per-site purity stays
// high even for rare lifetime classes: sites 0-15 are intra-burst churn,
// 16-21 cross-unit, 22-23 long-lived. A 2% uniform cross-talk keeps
// site-based lifetime prediction strong but fallible, as in real
// programs. Sites draw from their own forked RNG stream, so enabling or
// ignoring them never perturbs the rest of the workload.
func (r *Run) sampleSite(d DeathSpec) int32 {
	if r.siteRng.Float64() < 0.02 {
		return int32(r.siteRng.Intn(NumAllocSites))
	}
	switch d.Mode {
	case DieAfterOwnAllocs:
		return int32(r.siteRng.Intn(16))
	case DieAtUnitsAhead:
		return 16 + int32(r.siteRng.Intn(6))
	default:
		return 22 + int32(r.siteRng.Intn(2))
	}
}

// sampleDeath draws a death schedule from the spec's mixture.
func (r *Run) sampleDeath() DeathSpec {
	s := &r.spec
	u := r.rng.Float64()
	switch {
	case u < s.FracIntraBurst:
		mean := s.IntraBurstMeanN
		if mean <= 0 {
			mean = 3
		}
		n := 1 + r.rng.Geometric(1/(1+mean))
		if n > 12 {
			n = 12
		}
		return DeathSpec{Mode: DieAfterOwnAllocs, N: int32(n)}
	case u < s.FracIntraBurst+s.FracCrossUnit:
		mean := s.CrossUnitMeanDist
		if mean <= 0 {
			mean = 2
		}
		n := 1 + r.rng.Geometric(1/(1+mean))
		if n > 48 {
			n = 48
		}
		return DeathSpec{Mode: DieAtUnitsAhead, N: int32(n)}
	case u < s.FracIntraBurst+s.FracCrossUnit+s.FracLongLived:
		return DeathSpec{Mode: Immortal}
	default:
		return DeathSpec{Mode: DieAtUnitsAhead, N: 0} // end of current unit
	}
}
