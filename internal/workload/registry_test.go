package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	names := Names()
	want := []string{"sunflow", "lusearch", "xalan", "h2", "eclipse", "jython", "server", "server-contended"}
	for i, w := range want {
		if i >= len(names) || names[i] != w {
			t.Fatalf("Names() = %v, want prefix %v", names, want)
		}
	}
	for _, w := range want {
		s, ok := Lookup(w)
		if !ok || s.Name != w {
			t.Errorf("Lookup(%q) = %v, %v", w, s.Name, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestRegistryPaperSet(t *testing.T) {
	ps := PaperSet()
	if len(ps) != 6 {
		t.Fatalf("PaperSet() = %d specs, want 6", len(ps))
	}
	if ps[0].Name != "sunflow" || ps[5].Name != "jython" {
		t.Errorf("paper order wrong: %s..%s", ps[0].Name, ps[5].Name)
	}
	for _, s := range ps {
		if s.Name == "server" {
			t.Error("extension leaked into PaperSet")
		}
	}
}

func TestRegisterValidatesAndRejectsDuplicates(t *testing.T) {
	if err := Register(Spec{Name: ""}); err == nil {
		t.Error("invalid spec registered")
	}
	if err := Register(XalanSpec()); err == nil {
		t.Error("duplicate xalan registered")
	}
	custom := XalanSpec()
	custom.Name = "registry-test-custom"
	if err := Register(custom); err != nil {
		t.Fatal(err)
	}
	if _, ok := Lookup("registry-test-custom"); !ok {
		t.Error("registered workload not found")
	}
	if err := Register(custom); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate register error = %v", err)
	}
	// User registrations are part of the catalog but never the paper set.
	inExt := false
	for _, s := range Extensions() {
		if s.Name == custom.Name {
			inExt = true
		}
	}
	if !inExt {
		t.Error("user registration missing from Extensions()")
	}
}

func TestRefResolve(t *testing.T) {
	if s, err := NameRef("h2").Resolve(); err != nil || s.Name != "h2" {
		t.Errorf("NameRef(h2).Resolve() = %v, %v", s.Name, err)
	}
	if _, err := NameRef("missing-workload").Resolve(); err == nil ||
		!strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown-name error should list the registry, got %v", err)
	}
	if _, err := (Ref{}).Resolve(); err == nil {
		t.Error("empty ref resolved")
	}
	if _, err := (Ref{Name: "h2", Spec: &Spec{}}).Resolve(); err == nil {
		t.Error("ambiguous ref resolved")
	}
	bad := XalanSpec()
	bad.TotalUnits = 0
	if _, err := SpecRef(bad).Resolve(); err == nil {
		t.Error("invalid inline spec resolved")
	}
	if s, err := SpecRef(XalanSpec()).Resolve(); err != nil || s.Name != "xalan" {
		t.Errorf("inline resolve = %v, %v", s.Name, err)
	}
}

func TestRefJSONRoundTrip(t *testing.T) {
	// Name form encodes as a bare string.
	data, err := json.Marshal(NameRef("xalan"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `"xalan"` {
		t.Errorf("name ref JSON = %s", data)
	}
	var back Ref
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "xalan" || back.Spec != nil {
		t.Errorf("round-tripped name ref = %+v", back)
	}

	// Inline form encodes as the spec object, and re-encoding is stable.
	inline := SpecRef(JythonSpec())
	first, err := json.Marshal(inline)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Ref
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Spec == nil || decoded.Spec.Name != "jython" {
		t.Fatalf("round-tripped inline ref = %+v", decoded)
	}
	second, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("inline ref encode not stable:\n%s\n%s", first, second)
	}

	// Unknown fields in an inline spec are rejected.
	if err := json.Unmarshal([]byte(`{"Name":"x","Typo":1}`), &back); err == nil {
		t.Error("unknown inline field accepted")
	}
	// Marshaling an empty or ambiguous ref fails loudly.
	if _, err := json.Marshal(Ref{}); err == nil {
		t.Error("empty ref marshaled")
	}
}
