package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON encoding for Spec lets users define custom workload models in
// files and run them through cmd/javasim -spec. DistKind marshals as its
// name ("queue", "zipf", "capped") so the files read naturally.

// MarshalJSON renders the distribution kind by name.
func (d DistKind) MarshalJSON() ([]byte, error) {
	s := d.String()
	if s == "invalid" {
		return nil, fmt.Errorf("workload: cannot marshal invalid DistKind %d", d)
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts "queue", "zipf", or "capped".
func (d *DistKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "queue":
		*d = Queue
	case "zipf":
		*d = Zipf
	case "capped":
		*d = Capped
	default:
		return fmt.Errorf("workload: unknown distribution %q (queue|zipf|capped)", s)
	}
	return nil
}

// LoadSpec reads and validates a Spec from JSON. Unknown fields are
// rejected so typos in hand-written files surface immediately.
func LoadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// WriteJSON renders the spec as indented JSON — a template for custom
// workload files.
func (s Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
