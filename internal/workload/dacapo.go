package workload

import "javasim/internal/sim"

// The six DaCapo-9.12 benchmark models. Parameter rationale per benchmark
// is documented on each constructor; the scalable/non-scalable split
// follows the paper's §II-C characterization. Magnitudes (unit counts,
// sizes) are scaled so that one run completes in a few hundred
// milliseconds of simulated time while keeping tens of minor collections —
// enough resolution for every figure without hour-long sweeps.

// SunflowSpec models sunflow, a parallel ray tracer: embarrassingly
// parallel tile rendering off a shared tile queue, allocation-heavy with
// small short-lived vector objects, and almost no shared-lock traffic
// beyond the queue and the per-frame barrier. Scalable.
func SunflowSpec() Spec {
	return Spec{
		Name:        "sunflow",
		TotalUnits:  14000,
		UnitCompute: 55 * sim.Microsecond,
		ComputeCV:   0.35,

		Distribution: Queue,

		AllocsPerUnit: 30,
		ObjSizeMeanB:  64,
		ObjSizeSigma:  0.5,
		AllocGap:      90 * sim.Nanosecond,

		FracIntraBurst:    0.78,
		IntraBurstMeanN:   1.5,
		FracCrossUnit:     0.15,
		CrossUnitMeanDist: 6,
		FracLongLived:     0.02,

		SharedLocks:    2, // image accumulation, scene stats
		LockOpsPerUnit: 0.15,
		LockHold:       400 * sim.Nanosecond,
		QueueLockHold:  150 * sim.Nanosecond,

		Phases:             50, // frames
		SequentialFraction: 0.02,

		MemoryIntensity: 0.3,
		HelperThreads:   2,
	}
}

// LusearchSpec models lusearch, a parallel text search over a Lucene
// index: a shared query queue, per-query string/token churn, and shared
// index-reader locks that heat up with concurrency. Scalable.
func LusearchSpec() Spec {
	return Spec{
		Name:        "lusearch",
		TotalUnits:  12000,
		UnitCompute: 40 * sim.Microsecond,
		ComputeCV:   0.5,

		Distribution: Queue,

		AllocsPerUnit: 22,
		ObjSizeMeanB:  96,
		ObjSizeSigma:  0.7,
		AllocGap:      100 * sim.Nanosecond,

		FracIntraBurst:    0.72,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.16,
		CrossUnitMeanDist: 6,
		FracLongLived:     0.03,

		SharedLocks:    4, // index readers, hit collectors
		LockOpsPerUnit: 0.8,
		LockHold:       500 * sim.Nanosecond,
		QueueLockHold:  200 * sim.Nanosecond,

		Phases:             80, // query batches
		SequentialFraction: 0.03,

		MemoryIntensity: 0.6,
		HelperThreads:   2,
	}
}

// XalanSpec models xalan, a parallel XSLT transformer: documents drawn
// from a hot shared work queue, DOM-node allocation churn, and a
// contended shared output lock. The paper's Figure 1d subject. Scalable.
func XalanSpec() Spec {
	return Spec{
		Name:        "xalan",
		TotalUnits:  12000,
		UnitCompute: 45 * sim.Microsecond,
		ComputeCV:   0.4,

		Distribution: Queue,

		AllocsPerUnit: 26,
		ObjSizeMeanB:  96,
		ObjSizeSigma:  0.6,
		AllocGap:      70 * sim.Nanosecond,

		FracIntraBurst:    0.80,
		IntraBurstMeanN:   1.5,
		FracCrossUnit:     0.15,
		CrossUnitMeanDist: 8,
		FracLongLived:     0.01,

		SharedLocks:    3, // output stream, stylesheet cache, pool
		LockOpsPerUnit: 1.0,
		LockHold:       700 * sim.Nanosecond,
		QueueLockHold:  250 * sim.Nanosecond,

		Phases:             100, // document batches
		SequentialFraction: 0.04,

		MemoryIntensity: 0.5,
		HelperThreads:   2,
	}
}

// H2Spec models h2, an in-memory SQL database running TPC-C-like
// transactions: work is skewed toward a few connection threads, and a
// coarse database latch serializes most of each transaction — the paper's
// canonical lock-limited non-scalable case.
func H2Spec() Spec {
	return Spec{
		Name:        "h2",
		TotalUnits:  9000,
		UnitCompute: 50 * sim.Microsecond,
		ComputeCV:   0.6,

		Distribution: Zipf,
		ZipfSkew:     1.6,

		AllocsPerUnit: 20,
		ObjSizeMeanB:  160,
		ObjSizeSigma:  0.8,
		AllocGap:      120 * sim.Nanosecond,

		FracIntraBurst:    0.55,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.18,
		CrossUnitMeanDist: 3,
		FracLongLived:     0.12, // cached rows and index nodes

		SharedLocks:    2, // database latch (hot), undo log
		LockOpsPerUnit: 1.0,
		LockHold:       28 * sim.Microsecond, // latch held for most of the txn
		QueueLockHold:  0,

		Phases:             20,
		SequentialFraction: 0.18,

		MemoryIntensity: 0.7,
		HelperThreads:   2,
	}
}

// EclipseSpec models eclipse, the IDE's JDT compile-and-index workload: a
// pipeline where 3-4 stage threads (parser, resolver, indexer) do nearly
// all the work regardless of the configured thread count, with stage
// hand-off locks and a large long-lived AST/metadata footprint.
// Non-scalable — the paper's Figure 1c subject.
func EclipseSpec() Spec {
	return Spec{
		Name:        "eclipse",
		TotalUnits:  10000,
		UnitCompute: 45 * sim.Microsecond,
		ComputeCV:   0.7,

		Distribution: Capped,
		Cap:          4,

		AllocsPerUnit: 24,
		ObjSizeMeanB:  128,
		ObjSizeSigma:  1,
		AllocGap:      110 * sim.Nanosecond,

		FracIntraBurst:    0.62,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.14,
		CrossUnitMeanDist: 3,
		FracLongLived:     0.18, // ASTs, type bindings, index entries

		SharedLocks:    4, // stage hand-offs
		LockOpsPerUnit: 2.0,
		LockHold:       300 * sim.Nanosecond,
		QueueLockHold:  0,

		Phases:             25, // build rounds
		SequentialFraction: 0.30,

		MemoryIntensity: 0.6,
		HelperThreads:   2,
	}
}

// JythonSpec models jython, the Python interpreter on the JVM running
// pybench: interpretation is effectively serial — a couple of threads do
// all the work under an interpreter lock — with heavy small-object boxing
// churn. Non-scalable.
func JythonSpec() Spec {
	return Spec{
		Name:        "jython",
		TotalUnits:  10000,
		UnitCompute: 32 * sim.Microsecond,
		ComputeCV:   0.4,

		Distribution: Capped,
		Cap:          3,

		AllocsPerUnit: 28,
		ObjSizeMeanB:  72,
		ObjSizeSigma:  0.6,
		AllocGap:      80 * sim.Nanosecond,

		FracIntraBurst:    0.72,
		IntraBurstMeanN:   2,
		FracCrossUnit:     0.08,
		CrossUnitMeanDist: 2,
		FracLongLived:     0.05,

		SharedLocks:    1, // interpreter state lock
		LockOpsPerUnit: 1.0,
		LockHold:       20 * sim.Microsecond,
		QueueLockHold:  0,

		Phases:             10,
		SequentialFraction: 0.45,

		MemoryIntensity: 0.4,
		HelperThreads:   2,
	}
}

// All returns the six benchmark specs in the paper's order: the scalable
// trio first, then the non-scalable trio.
//
// Deprecated: use PaperSet, which reads the same six models from the
// workload registry.
func All() []Spec { return PaperSet() }

// ByName returns the spec with the given name — one of the paper's six
// benchmarks or an extension workload — or false.
//
// Deprecated: use Lookup, which resolves any registered workload
// (including user registrations) by name.
func ByName(name string) (Spec, bool) { return Lookup(name) }

// Scalable reports the paper's classification for a benchmark name.
func Scalable(name string) bool {
	switch name {
	case "sunflow", "lusearch", "xalan":
		return true
	default:
		return false
	}
}
