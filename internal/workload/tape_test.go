package workload

import (
	"reflect"
	"testing"
)

// drainUnits takes every unit from r with a fixed round-robin thread
// order and returns them in take order. The order is deterministic so
// two runs drained the same way see the same draw sequence.
func drainUnits(t *testing.T, r *Run, threads int) []Unit {
	t.Helper()
	var units []Unit
	done := 0
	for done < threads {
		done = 0
		for tid := 0; tid < threads; tid++ {
			u, ok := r.Take(tid)
			if !ok {
				done++
				continue
			}
			units = append(units, u)
		}
	}
	return units
}

// TestTapeReplayMatchesLive pins the warm-start contract at the
// workload layer: a run replaying a full tape hands out bit-identical
// units to a run generating live.
func TestTapeReplayMatchesLive(t *testing.T) {
	for _, spec := range []Spec{XalanSpec().Scale(0.05), ServerSpec().Scale(0.05)} {
		const threads, seed = 4, 7
		tape, err := BuildTape(spec, seed, 0)
		if err != nil {
			t.Fatalf("%s: BuildTape: %v", spec.Name, err)
		}
		if tape.Len() != spec.TotalUnits {
			t.Fatalf("%s: tape holds %d units, want %d", spec.Name, tape.Len(), spec.TotalUnits)
		}
		live, err := NewRun(spec, threads, seed)
		if err != nil {
			t.Fatal(err)
		}
		taped, err := NewRun(spec, threads, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !taped.AttachTape(tape) {
			t.Fatalf("%s: AttachTape rejected a matching tape", spec.Name)
		}
		lu, tu := drainUnits(t, live, threads), drainUnits(t, taped, threads)
		if !reflect.DeepEqual(lu, tu) {
			for i := range lu {
				if !reflect.DeepEqual(lu[i], tu[i]) {
					t.Fatalf("%s: unit %d differs under tape replay:\n  live: %+v\n  tape: %+v",
						spec.Name, i, lu[i], tu[i])
				}
			}
			t.Fatalf("%s: unit sequences differ under tape replay", spec.Name)
		}
	}
}

// TestTapeOverflowResumesLive exhausts a deliberately short tape mid-run
// and requires the resumed live generation to continue exactly where an
// untaped run's RNG streams would stand.
func TestTapeOverflowResumesLive(t *testing.T) {
	spec := XalanSpec().Scale(0.05)
	const threads, seed, tapeLen = 4, 9, 8
	tape, err := BuildTape(spec, seed, tapeLen)
	if err != nil {
		t.Fatal(err)
	}
	if tape.Len() != tapeLen {
		t.Fatalf("tape holds %d units, want %d", tape.Len(), tapeLen)
	}
	live, err := NewRun(spec, threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	taped, err := NewRun(spec, threads, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !taped.AttachTape(tape) {
		t.Fatal("AttachTape rejected a matching tape")
	}
	lu, tu := drainUnits(t, live, threads), drainUnits(t, taped, threads)
	if len(lu) <= tapeLen {
		t.Fatalf("run consumed %d units; too few to overflow a %d-unit tape", len(lu), tapeLen)
	}
	if !reflect.DeepEqual(lu, tu) {
		for i := range lu {
			if !reflect.DeepEqual(lu[i], tu[i]) {
				t.Fatalf("unit %d differs after tape overflow (tape length %d):\n  live: %+v\n  tape: %+v",
					i, tapeLen, lu[i], tu[i])
			}
		}
	}
}

// TestTapeAttachGuards pins the self-guard: a tape built from another
// spec or seed is refused and leaves the run generating live.
func TestTapeAttachGuards(t *testing.T) {
	spec := XalanSpec().Scale(0.05)
	r, err := NewRun(spec, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttachTape(nil) {
		t.Error("AttachTape accepted a nil tape")
	}
	wrongSeed, err := BuildTape(spec, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttachTape(wrongSeed) {
		t.Error("AttachTape accepted a tape built from a different seed")
	}
	wrongSpec, err := BuildTape(SunflowSpec().Scale(0.05), 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.AttachTape(wrongSpec) {
		t.Error("AttachTape accepted a tape built from a different spec")
	}
	if u, ok := r.Take(0); !ok || len(u.Ops) == 0 {
		t.Error("run did not generate live after refused attaches")
	}
}
