package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Ref names a workload without committing to where it comes from: either
// a reference to a registered spec by name, or a complete inline Spec.
// Exactly one of the two forms must be set. Refs are how declarative
// scenario plans point at workloads, and their JSON form mirrors the two
// cases — a bare string ("xalan") for a name reference, an object for an
// inline spec.
type Ref struct {
	// Name references a registered workload.
	Name string
	// Spec is a complete inline workload description.
	Spec *Spec
}

// NameRef references a registered workload by name.
func NameRef(name string) Ref { return Ref{Name: name} }

// SpecRef wraps a complete inline spec.
func SpecRef(s Spec) Ref { return Ref{Spec: &s} }

// Resolve returns the referenced spec: the registered spec for a name
// reference (an unknown name is an error that lists the registry), or the
// validated inline spec.
func (r Ref) Resolve() (Spec, error) {
	switch {
	case r.Name != "" && r.Spec != nil:
		return Spec{}, fmt.Errorf("workload: ref sets both name %q and an inline spec", r.Name)
	case r.Spec != nil:
		s := *r.Spec
		if err := s.Validate(); err != nil {
			return Spec{}, err
		}
		return s, nil
	case r.Name != "":
		s, ok := Lookup(r.Name)
		if !ok {
			return Spec{}, fmt.Errorf("workload: unknown workload %q (registered: %s)",
				r.Name, strings.Join(Names(), ", "))
		}
		return s, nil
	default:
		return Spec{}, fmt.Errorf("workload: empty ref (need a registered name or an inline spec)")
	}
}

// MarshalJSON encodes a name reference as a JSON string and an inline
// spec as a JSON object.
func (r Ref) MarshalJSON() ([]byte, error) {
	switch {
	case r.Name != "" && r.Spec != nil:
		return nil, fmt.Errorf("workload: ref sets both name %q and an inline spec", r.Name)
	case r.Spec != nil:
		return json.Marshal(r.Spec)
	case r.Name != "":
		return json.Marshal(r.Name)
	default:
		return nil, fmt.Errorf("workload: cannot marshal empty ref")
	}
}

// UnmarshalJSON accepts either form: a string resolves as a registered
// name, an object decodes as an inline Spec (unknown fields rejected).
func (r *Ref) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return fmt.Errorf("workload: empty ref")
	}
	if trimmed[0] == '"' {
		var name string
		if err := json.Unmarshal(trimmed, &name); err != nil {
			return err
		}
		*r = Ref{Name: name}
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("workload: decode inline spec: %w", err)
	}
	*r = Ref{Spec: &s}
	return nil
}
