package workload

import "testing"

func TestServerSpecValid(t *testing.T) {
	s := ServerSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Phases != 0 {
		t.Error("server workload should be barrier-free (steady state)")
	}
	if s.Distribution != Queue {
		t.Error("server workload should draw from a shared request queue")
	}
}

func TestExtensionsNotInAll(t *testing.T) {
	// The paper's experiment set must stay exactly the six benchmarks.
	for _, s := range All() {
		for _, e := range Extensions() {
			if s.Name == e.Name {
				t.Errorf("extension %s leaked into All()", e.Name)
			}
		}
	}
}

func TestByNameFindsExtensions(t *testing.T) {
	s, ok := ByName("server")
	if !ok || s.Name != "server" {
		t.Error("ByName(server) failed")
	}
}

func TestServerDrainsAndDistributes(t *testing.T) {
	spec := ServerSpec().Scale(0.01)
	r, err := NewRun(spec, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		progress := false
		for tid := 0; tid < 8; tid++ {
			if _, ok := r.Take(tid); ok {
				total++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if total != spec.TotalUnits {
		t.Errorf("drained %d, want %d", total, spec.TotalUnits)
	}
}
