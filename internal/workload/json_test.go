package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range append(All(), Extensions()...) {
		var buf bytes.Buffer
		if err := spec.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got, err := LoadSpec(&buf)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if got != spec {
			t.Errorf("%s: round trip changed spec\n got %+v\nwant %+v", spec.Name, got, spec)
		}
	}
}

func TestDistKindJSONNames(t *testing.T) {
	var buf bytes.Buffer
	if err := H2Spec().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Distribution": "zipf"`) {
		t.Errorf("distribution not marshaled by name:\n%s", buf.String())
	}
}

func TestLoadSpecRejects(t *testing.T) {
	cases := map[string]string{
		"unknown distribution": `{"Name":"x","TotalUnits":1,"UnitCompute":1,"Distribution":"wat"}`,
		"unknown field":        `{"Name":"x","TotalUnits":1,"UnitCompute":1,"Bogus":1}`,
		"invalid spec":         `{"Name":"","TotalUnits":1,"UnitCompute":1}`,
		"not json":             `{{{`,
	}
	for name, in := range cases {
		if _, err := LoadSpec(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadSpecMinimal(t *testing.T) {
	in := `{
		"Name": "custom",
		"TotalUnits": 100,
		"UnitCompute": 50000,
		"Distribution": "queue",
		"AllocsPerUnit": 10,
		"ObjSizeMeanB": 64
	}`
	s, err := LoadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || s.TotalUnits != 100 {
		t.Errorf("loaded %+v", s)
	}
}
