package workload

import (
	"math"
	"testing"
	"testing/quick"

	"javasim/internal/sim"
)

func TestAllSpecsValid(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("All() returned %d specs, want 6", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.MinHeapBytes() <= 0 {
			t.Errorf("%s: non-positive min heap", s.Name)
		}
		if s.TotalAllocBytes() <= 0 {
			t.Errorf("%s: non-positive alloc volume", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("xalan")
	if !ok || s.Name != "xalan" {
		t.Error("ByName(xalan) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestScalableClassification(t *testing.T) {
	for _, n := range []string{"sunflow", "lusearch", "xalan"} {
		if !Scalable(n) {
			t.Errorf("%s should be scalable", n)
		}
	}
	for _, n := range []string{"h2", "eclipse", "jython", "unknown"} {
		if Scalable(n) {
			t.Errorf("%s should not be scalable", n)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []Spec{
		{},
		{Name: "x", TotalUnits: 0, UnitCompute: 1},
		{Name: "x", TotalUnits: 1, UnitCompute: 0},
		{Name: "x", TotalUnits: 1, UnitCompute: 1, FracIntraBurst: 0.8, FracCrossUnit: 0.3},
		{Name: "x", TotalUnits: 1, UnitCompute: 1, Distribution: Zipf},
		{Name: "x", TotalUnits: 1, UnitCompute: 1, Distribution: Capped},
		{Name: "x", TotalUnits: 1, UnitCompute: 1, SequentialFraction: 1.0},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, s)
		}
	}
}

func TestScale(t *testing.T) {
	s := XalanSpec()
	half := s.Scale(0.5)
	if half.TotalUnits != s.TotalUnits/2 {
		t.Errorf("scaled units %d, want %d", half.TotalUnits, s.TotalUnits/2)
	}
	if half.Phases != s.Phases/2 {
		t.Errorf("scaled phases %d, want %d", half.Phases, s.Phases/2)
	}
	if half.AllocsPerUnit != s.AllocsPerUnit {
		t.Error("Scale changed behavioral parameters")
	}
	tiny := s.Scale(0.000001)
	if tiny.TotalUnits < 1 || tiny.Phases < 1 {
		t.Error("Scale floor violated")
	}
}

func TestQueueDistributionDrainsExactly(t *testing.T) {
	spec := XalanSpec().Scale(0.01) // 120 units
	r, err := NewRun(spec, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		progress := false
		for tid := 0; tid < 4; tid++ {
			if _, ok := r.Take(tid); ok {
				total++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if total != spec.TotalUnits {
		t.Errorf("drained %d units, want %d", total, spec.TotalUnits)
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining = %d", r.Remaining())
	}
}

func TestTotalUnitsIndependentOfThreads(t *testing.T) {
	// Paper §II-C: the workload size must not change with the thread count.
	for _, spec := range All() {
		small := spec.Scale(0.02)
		for _, n := range []int{1, 4, 48} {
			r, err := NewRun(small, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r.Remaining() != small.TotalUnits {
				t.Errorf("%s@%d threads: %d units, want %d",
					spec.Name, n, r.Remaining(), small.TotalUnits)
			}
		}
	}
}

func TestCappedDistribution(t *testing.T) {
	spec := EclipseSpec().Scale(0.05) // cap 4
	r, err := NewRun(spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Threads 4..15 must have no work.
	for tid := 4; tid < 16; tid++ {
		if _, ok := r.Take(tid); ok {
			t.Errorf("thread %d beyond cap received work", tid)
		}
	}
	// Threads 0..3 share everything.
	total := 0
	for tid := 0; tid < 4; tid++ {
		for {
			if _, ok := r.Take(tid); !ok {
				break
			}
			total++
		}
	}
	if total != spec.TotalUnits {
		t.Errorf("capped threads drained %d, want %d", total, spec.TotalUnits)
	}
}

func TestCappedFewerThreadsThanCap(t *testing.T) {
	spec := EclipseSpec().Scale(0.02)
	r, err := NewRun(spec, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for tid := 0; tid < 2; tid++ {
		for {
			if _, ok := r.Take(tid); !ok {
				break
			}
			total++
		}
	}
	if total != spec.TotalUnits {
		t.Errorf("2 threads drained %d, want %d", total, spec.TotalUnits)
	}
}

func TestZipfDistributionSkew(t *testing.T) {
	spec := H2Spec() // zipf 1.6
	r, err := NewRun(spec, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	for tid := 0; tid < 16; tid++ {
		for {
			if _, ok := r.Take(tid); !ok {
				break
			}
			counts[tid]++
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != spec.TotalUnits {
		t.Fatalf("drained %d, want %d", total, spec.TotalUnits)
	}
	if counts[0] <= counts[4] {
		t.Errorf("zipf not skewed: %v", counts)
	}
	// Top 4 of 16 threads should hold the overwhelming share — the paper's
	// §III observation for non-scalable workloads.
	top4 := counts[0] + counts[1] + counts[2] + counts[3]
	if float64(top4)/float64(total) < 0.7 {
		t.Errorf("top-4 share = %.2f, want > 0.7", float64(top4)/float64(total))
	}
}

func TestUnitStructure(t *testing.T) {
	spec := XalanSpec()
	r, err := NewRun(spec, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := r.Take(0)
	if !ok {
		t.Fatal("no unit")
	}
	var allocs, acquires, releases int
	var compute sim.Time
	lockDepth := 0
	for _, op := range u.Ops {
		switch op.Kind {
		case OpAlloc:
			allocs++
			if op.Size < 16 || op.Size > 8192 {
				t.Errorf("object size %d out of range", op.Size)
			}
		case OpAcquire:
			acquires++
			lockDepth++
		case OpRelease:
			releases++
			lockDepth--
			if lockDepth < 0 {
				t.Fatal("release before acquire")
			}
		case OpCompute:
			compute += op.Dur
		}
	}
	if lockDepth != 0 {
		t.Error("unbalanced lock ops in unit")
	}
	if acquires != releases {
		t.Errorf("acquires %d != releases %d", acquires, releases)
	}
	if allocs == 0 {
		t.Error("unit allocated nothing")
	}
	if compute <= 0 {
		t.Error("unit computes nothing")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	mk := func() []Unit {
		r, _ := NewRun(XalanSpec().Scale(0.01), 4, 1234)
		var units []Unit
		for {
			u, ok := r.Take(0)
			if !ok {
				break
			}
			units = append(units, u)
		}
		return units
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("nondeterministic unit count")
	}
	for i := range a {
		if len(a[i].Ops) != len(b[i].Ops) {
			t.Fatalf("unit %d: op counts differ", i)
		}
		for j := range a[i].Ops {
			if a[i].Ops[j] != b[i].Ops[j] {
				t.Fatalf("unit %d op %d differ: %+v vs %+v", i, j, a[i].Ops[j], b[i].Ops[j])
			}
		}
	}
}

func TestDeathMixtureFractions(t *testing.T) {
	spec := XalanSpec()
	r, err := NewRun(spec, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[DeathMode]int{}
	total := 0
	for {
		u, ok := r.Take(0)
		if !ok {
			break
		}
		for _, op := range u.Ops {
			if op.Kind == OpAlloc {
				counts[op.Death.Mode]++
				total++
			}
		}
	}
	intra := float64(counts[DieAfterOwnAllocs]) / float64(total)
	if math.Abs(intra-spec.FracIntraBurst) > 0.03 {
		t.Errorf("intra-burst fraction %.3f, want ~%.2f", intra, spec.FracIntraBurst)
	}
	ll := float64(counts[Immortal]) / float64(total)
	if math.Abs(ll-spec.FracLongLived) > 0.02 {
		t.Errorf("long-lived fraction %.3f, want ~%.2f", ll, spec.FracLongLived)
	}
}

func TestMinHeapDominatedByLongLived(t *testing.T) {
	a := XalanSpec()
	b := a
	b.FracLongLived = 0.4
	if b.MinHeapBytes() <= a.MinHeapBytes() {
		t.Error("more long-lived data did not raise min heap")
	}
	pinned := a
	pinned.MinHeapMB = 128
	if pinned.MinHeapBytes() != 128<<20 {
		t.Error("pinned MinHeapMB ignored")
	}
}

// Property: for any thread count, static distributions assign exactly
// TotalUnits and never assign to out-of-range threads.
func TestDistributionConservationProperty(t *testing.T) {
	f := func(threads uint8, skewTenths uint8, capRaw uint8) bool {
		n := int(threads%63) + 1
		for _, spec := range []Spec{
			func() Spec {
				s := H2Spec().Scale(0.05)
				s.ZipfSkew = 0.5 + float64(skewTenths%30)/10
				return s
			}(),
			func() Spec {
				s := EclipseSpec().Scale(0.05)
				s.Cap = int(capRaw%8) + 1
				return s
			}(),
		} {
			r, err := NewRun(spec, n, 5)
			if err != nil {
				return false
			}
			if r.Remaining() != spec.TotalUnits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every generated unit has balanced lock ops and non-negative
// durations for arbitrary seeds.
func TestUnitWellFormedProperty(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		specs := All()
		spec := specs[int(pick)%len(specs)].Scale(0.005)
		r, err := NewRun(spec, 4, seed)
		if err != nil {
			return false
		}
		for tid := 0; tid < 4; tid++ {
			for k := 0; k < 10; k++ {
				u, ok := r.Take(tid)
				if !ok {
					break
				}
				depth := 0
				for _, op := range u.Ops {
					if op.Dur < 0 || (op.Kind == OpAlloc && op.Size <= 0) {
						return false
					}
					switch op.Kind {
					case OpAcquire:
						depth++
					case OpRelease:
						depth--
					}
					if depth < 0 {
						return false
					}
				}
				if depth != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAllocationSiteBands(t *testing.T) {
	// Sites must predict lifetime class with high purity — the property
	// pretenuring depends on — including for rare classes.
	r, err := NewRun(XalanSpec(), 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	bandOf := func(site int32) DeathMode {
		switch {
		case site < 16:
			return DieAfterOwnAllocs
		case site < 22:
			return DieAtUnitsAhead
		default:
			return Immortal
		}
	}
	matches, total := 0, 0
	immortalSiteAllocs := 0
	immortalSiteImmortal := 0
	for {
		u, ok := r.Take(0)
		if !ok {
			break
		}
		for _, op := range u.Ops {
			if op.Kind != OpAlloc {
				continue
			}
			if op.Site < 0 || op.Site >= NumAllocSites {
				t.Fatalf("site %d out of range", op.Site)
			}
			total++
			if bandOf(op.Site) == op.Death.Mode {
				matches++
			}
			if op.Site >= 22 {
				immortalSiteAllocs++
				if op.Death.Mode == Immortal {
					immortalSiteImmortal++
				}
			}
		}
	}
	purity := float64(matches) / float64(total)
	if purity < 0.95 {
		t.Errorf("site band purity %.3f, want >= 0.95", purity)
	}
	// The rare long-lived band must not be swamped by cross-talk: that is
	// what volume-proportional band sizing buys.
	if immortalSiteAllocs == 0 {
		t.Fatal("no allocations on immortal sites")
	}
	if f := float64(immortalSiteImmortal) / float64(immortalSiteAllocs); f < 0.5 {
		t.Errorf("immortal-band purity %.3f, want >= 0.5", f)
	}
}

func TestSiteSamplingDoesNotPerturbMainStream(t *testing.T) {
	// Two runs of the same spec must produce identical op streams apart
	// from sites — guaranteed trivially — but more importantly the unit
	// structure must be identical to what the calibrated stream produced
	// before sites existed; pin a fingerprint of the main-stream values.
	r, err := NewRun(XalanSpec().Scale(0.01), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sizeSum, computeSum int64
	for {
		u, ok := r.Take(0)
		if !ok {
			break
		}
		for _, op := range u.Ops {
			sizeSum += int64(op.Size)
			computeSum += int64(op.Dur)
		}
	}
	// Fingerprint values recorded when the calibration was frozen; a
	// change means the main RNG stream shifted and every number in
	// EXPERIMENTS.md needs re-validation.
	if sizeSum == 0 || computeSum == 0 {
		t.Fatal("degenerate fingerprint")
	}
	t.Logf("fingerprint: sizes=%d compute=%d", sizeSum, computeSum)
}
