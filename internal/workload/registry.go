package workload

import (
	"fmt"
	"sync"
)

// The workload registry is the single catalog of every Spec the framework
// knows how to run. The paper's six DaCapo models and the extension
// workloads are pre-registered at init time; downstream users add their
// own models with Register and every consumer — the experiment suite,
// declarative scenario plans, the command-line drivers — resolves them
// through Lookup by name. The registry replaces the old split between
// All() (the six benchmarks) and Extensions() (everything else).

var registry = struct {
	mu    sync.RWMutex
	order []string
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// paperOrder lists the six DaCapo benchmarks in the paper's order: the
// scalable trio first, then the non-scalable trio.
var paperOrder = []string{"sunflow", "lusearch", "xalan", "h2", "eclipse", "jython"}

func init() {
	for _, s := range []Spec{
		SunflowSpec(), LusearchSpec(), XalanSpec(),
		H2Spec(), EclipseSpec(), JythonSpec(),
		ServerSpec(), ServerContendedSpec(),
	} {
		MustRegister(s)
	}
}

// Register validates the spec and adds it to the registry under its Name.
// Names are unique: registering a name twice — including any of the
// built-in models — is an error, so a registered spec can never be
// silently replaced.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("workload: %q already registered", s.Name)
	}
	registry.specs[s.Name] = s
	registry.order = append(registry.order, s.Name)
	return nil
}

// MustRegister is Register that panics on error — for package init blocks
// that wire in a fixed workload set.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the registered spec with the given name.
func Lookup(name string) (Spec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.specs[name]
	return s, ok
}

// Names returns every registered workload name in registration order: the
// six paper benchmarks, the bundled extensions, then user registrations.
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// Registered returns every registered spec in registration order.
func Registered() []Spec {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Spec, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.specs[name])
	}
	return out
}

// PaperSet returns the six DaCapo benchmark specs in the paper's order —
// the experiment set behind every figure and table.
func PaperSet() []Spec {
	out := make([]Spec, 0, len(paperOrder))
	for _, name := range paperOrder {
		s, ok := Lookup(name)
		if !ok {
			panic(fmt.Sprintf("workload: paper benchmark %q missing from registry", name))
		}
		out = append(out, s)
	}
	return out
}

// IsPaperBenchmark reports whether name is one of the paper's six
// benchmarks (as opposed to an extension or user registration).
func IsPaperBenchmark(name string) bool {
	for _, p := range paperOrder {
		if p == name {
			return true
		}
	}
	return false
}
