package vm

import (
	"os"
	"testing"

	"javasim/internal/workload"
)

// TestCalibrationProbe prints the headline shape metrics at full scale for
// manual calibration. Run with JAVASIM_CALIBRATE=1; it is skipped otherwise
// (the checked-in shape assertions live in the core package's integration
// tests).
func TestCalibrationProbe(t *testing.T) {
	if os.Getenv("JAVASIM_CALIBRATE") == "" {
		t.Skip("set JAVASIM_CALIBRATE=1 to run the calibration probe")
	}
	for _, spec := range workload.PaperSet() {
		t.Logf("=== %s ===", spec.Name)
		for _, n := range []int{4, 16, 48} {
			res, err := Run(spec, Config{Threads: n, Seed: 7})
			if err != nil {
				t.Fatalf("%s@%d: %v", spec.Name, n, err)
			}
			t.Logf("t=%2d total=%10v mut=%10v gc=%9v(%4.1f%%) minor=%3d full=%2d acq=%7d cont=%6d cdf1k=%.2f util=%.2f",
				n, res.TotalTime, res.MutatorTime, res.GCTime, 100*res.GCShare(),
				res.GCStats.MinorCount, res.GCStats.FullCount,
				res.LockAcquisitions, res.LockContentions,
				res.Lifespans.FractionBelow(1024), res.Utilization)
		}
	}
}
