package vm

import (
	"strings"
	"testing"

	"javasim/internal/gc"
	"javasim/internal/sim"
	"javasim/internal/workload"
)

// TestHeapTooSmallSurfacesOOM pins the failure mode when the heap barely
// exceeds the minimum: the run must fail with a clear OutOfMemoryError,
// not hang or panic.
func TestHeapTooSmallSurfacesOOM(t *testing.T) {
	spec := workload.EclipseSpec().Scale(0.05)
	// Factor 1.0 leaves no slack over the long-lived footprint estimate.
	_, err := Run(spec, Config{Threads: 4, Seed: 1, HeapFactor: 1.0})
	if err == nil {
		t.Skip("run survived at 1.0x heap — estimate is conservative for this scale")
	}
	if !strings.Contains(err.Error(), "OutOfMemoryError") && !strings.Contains(err.Error(), "collection failed") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

func TestLargerHeapMeansFewerCollections(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.2)
	small, err := Run(spec, Config{Threads: 8, Seed: 1, HeapFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(spec, Config{Threads: 8, Seed: 1, HeapFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	if big.GCStats.MinorCount >= small.GCStats.MinorCount {
		t.Errorf("6x heap ran %d minors, 2x heap ran %d — space/time trade-off inverted",
			big.GCStats.MinorCount, small.GCStats.MinorCount)
	}
	if big.GCTime >= small.GCTime {
		t.Errorf("6x heap GC time %v not below 2x heap %v", big.GCTime, small.GCTime)
	}
}

func TestMoreThreadsThanUnits(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.001) // 12 units
	res, err := Run(spec, Config{Threads: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	busy := 0
	for _, u := range res.PerThreadUnits {
		total += u
		if u > 0 {
			busy++
		}
	}
	if total != int64(spec.TotalUnits) {
		t.Errorf("executed %d units, want %d", total, spec.TotalUnits)
	}
	if busy > spec.TotalUnits {
		t.Errorf("%d busy threads for %d units", busy, spec.TotalUnits)
	}
}

func TestSingleThread(t *testing.T) {
	res, err := Run(workload.SunflowSpec().Scale(0.02), Config{Threads: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.LockContentions != 0 {
		t.Errorf("single-threaded run had %d contentions", res.LockContentions)
	}
}

func TestCompartmentsExceedingThreads(t *testing.T) {
	res, err := Run(workload.XalanSpec().Scale(0.05), Config{Threads: 2, Seed: 1, Compartments: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("degenerate run")
	}
}

func TestBiasAndCompartmentsCombined(t *testing.T) {
	cfg := Config{Threads: 16, Seed: 1, Compartments: 4}
	cfg.Sched.Bias.Groups = 2
	cfg.Sched.Bias.PhaseLength = sim.Millisecond
	res, err := Run(workload.XalanSpec().Scale(0.1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("conservation broken under combined future-work features")
	}
}

func TestServerWorkloadBarrierFree(t *testing.T) {
	spec, ok := workload.Lookup("server")
	if !ok {
		t.Fatal("server extension missing")
	}
	res, err := Run(spec.Scale(0.05), Config{Threads: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// No phase barriers: the only locks are the queue and the shared set;
	// the barrier monitor exists but must never be contended... it is
	// never even acquired.
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("server conservation broken")
	}
}

func TestNoHelperThreads(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.02)
	spec.HelperThreads = 0
	if _, err := Run(spec, Config{Threads: 4, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestGCWorkersOverride(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.1)
	one, err := Run(spec, Config{Threads: 8, Seed: 1, GC: gc.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(spec, Config{Threads: 8, Seed: 1, GC: gc.Config{Workers: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if many.GCTime >= one.GCTime {
		t.Errorf("16 GC workers (%v) not faster than 1 (%v)", many.GCTime, one.GCTime)
	}
}

// TestFullGCReclaimsAndRunContinues drives a workload into full
// collections (tiny heap factor) and verifies the run completes with the
// full-GC count visible.
func TestFullGCPath(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.3)
	res, err := Run(spec, Config{Threads: 32, Seed: 1, HeapFactor: 1.6})
	if err != nil {
		t.Fatalf("run failed under heap pressure: %v", err)
	}
	if res.GCStats.FullCount == 0 {
		t.Skip("no full GC at this scale/seed; heap pressure insufficient")
	}
	if res.GCStats.FullCount > 0 && res.GCTime <= 0 {
		t.Error("full GCs happened but GC time is zero")
	}
}

// TestTTSPBoundedUnderBias verifies the safepoint gate override: with
// phase-biased scheduling, time-to-safepoint must stay near the
// no-bias level rather than ballooning to the phase length.
func TestTTSPBoundedUnderBias(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.2)
	base, err := Run(spec, Config{Threads: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Threads: 16, Seed: 1}
	cfg.Sched.Bias.Groups = 2
	cfg.Sched.Bias.PhaseLength = 4 * sim.Millisecond
	biased, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	basePer := base.SafepointTime / sim.Time(len(base.GCPauses))
	biasPer := biased.SafepointTime / sim.Time(len(biased.GCPauses))
	// Without the override, each safepoint would wait most of a 4ms phase;
	// with it, per-GC TTSP should stay within an order of magnitude of the
	// baseline and far below the phase length.
	if biasPer > cfg.Sched.Bias.PhaseLength/4 {
		t.Errorf("per-GC TTSP under bias %v approaches phase length (baseline %v)", biasPer, basePer)
	}
}
