package vm

import (
	"fmt"

	"javasim/internal/objmodel"
	"javasim/internal/sim"
	"javasim/internal/workload"
)

// Multi-iteration runs (Config.Iterations > 1) follow DaCapo's harness
// methodology: the same workload executes repeatedly inside one JVM
// process. Heap state persists across iterations — garbage from iteration
// N is collected during iteration N+1, exactly as in the real harness —
// while each iteration's application-level state (the Immortal objects)
// is released at the boundary, which is where DaCapo benchmarks reset.
// Per-iteration timings expose warmup versus steady state.

// IterationStats is one iteration's share of a multi-iteration run.
type IterationStats struct {
	// Index is the zero-based iteration number.
	Index int
	// Duration is the iteration's virtual wall-clock time.
	Duration sim.Time
	// GCTime is the stop-the-world time incurred during the iteration.
	GCTime sim.Time
	// Collections counts GC pauses during the iteration.
	Collections int
}

// recordIteration closes the books on the current iteration.
func (v *vm) recordIteration() {
	now := v.sim.Now()
	v.iterStats = append(v.iterStats, IterationStats{
		Index:       v.iteration,
		Duration:    now - v.iterStart,
		GCTime:      v.gcTime - v.iterGCTime,
		Collections: len(v.gc.Pauses()) - v.iterPauses,
	})
	v.iterStart = now
	v.iterGCTime = v.gcTime
	v.iterPauses = len(v.gc.Pauses())
}

// startNextIteration releases the finished iteration's remaining objects,
// rebuilds the work distribution, and restarts every mutator thread.
func (v *vm) startNextIteration() {
	v.recordIteration()

	// Release the iteration's application state. Death-ring entries all
	// refer to objects dead after this, so the rings reset with them.
	v.reg.ForEachLive(func(id objmodel.ID, _ *objmodel.Object) { v.kill(id) })
	for _, m := range v.mutators {
		for i := range m.allocRing {
			m.allocRing[i] = m.allocRing[i][:0]
		}
		for i := range m.unitRing {
			m.unitRing[i] = m.unitRing[i][:0]
		}
	}

	// Accumulate per-thread work before discarding the drained run.
	for i, u := range v.run.UnitsTaken() {
		v.unitsAccum[i] += u
	}

	v.iteration++
	run, err := workload.NewRun(v.spec, v.cfg.Threads, v.cfg.Seed+uint64(v.iteration)*0x9E3779B9)
	if err != nil {
		// The spec already validated for iteration zero; this cannot fail.
		v.fail(fmt.Errorf("vm: iteration %d setup: %w", v.iteration, err))
		return
	}
	run.ReuseUnitBuffers()
	if v.snap != nil && v.iteration < len(v.snap.tapes) {
		run.AttachTape(v.snap.tapes[v.iteration])
	}
	v.run = run
	v.currentPhase = 0
	v.barArrived = 0

	for _, m := range v.mutators {
		v.setMutatorState(m, stRunning)
		v.aliveCount++
		v.sched.Unblock(m.th)
		v.sched.Submit(m.th, 0, m.fetchFn)
	}
}
