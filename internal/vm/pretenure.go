package vm

import (
	"javasim/internal/objmodel"
	"javasim/internal/workload"
)

// Allocation-site pretenuring (Config.Pretenuring) — the classic JVM
// mitigation for exactly the problem the paper identifies: long-lived
// objects defeating the generational hypothesis. The learner watches each
// allocation site's observed lifetimes online; once a site is confidently
// long-lived, its objects are allocated directly in the old generation,
// skipping the nursery and the survivor copying that inflates minor
// pauses at high thread counts.

// pretenureMinSamples is the evidence required before a site's verdict is
// trusted.
const pretenureMinSamples = 64

// pretenureThreshold is the long-lived fraction above which a site is
// pretenured.
const pretenureThreshold = 0.6

type siteStats struct {
	samples   int64
	longLived int64
}

type pretenurer struct {
	enabled bool
	sites   [workload.NumAllocSites]siteStats
	// longLifespan is the lifespan (bytes) above which a death counts as
	// long-lived; the VM sets it to the eden size — an object outliving
	// one nursery cycle would have been copied.
	longLifespan int64
	// siteOf maps object ID to its allocation site (dense, parallel to
	// the registry).
	siteOf []int32
	// pretenured counts objects allocated straight to the old generation.
	pretenured int64
}

// recordAlloc remembers the object's site.
func (p *pretenurer) recordAlloc(id objmodel.ID, site int32) {
	for int(id) >= len(p.siteOf) {
		p.siteOf = append(p.siteOf, -1)
	}
	p.siteOf[id] = site
}

// site returns the recorded site of an object, or -1.
func (p *pretenurer) site(id objmodel.ID) int32 {
	if int(id) >= len(p.siteOf) {
		return -1
	}
	return p.siteOf[id]
}

// onDeath feeds the learner one completed lifetime.
func (p *pretenurer) onDeath(id objmodel.ID, lifespan int64) {
	site := p.site(id)
	if site < 0 {
		return
	}
	s := &p.sites[site]
	s.samples++
	if lifespan >= p.longLifespan {
		s.longLived++
	}
}

// onPromote feeds the learner a promotion — the strongest pre-death
// long-lived signal.
func (p *pretenurer) onPromote(id objmodel.ID) {
	site := p.site(id)
	if site < 0 {
		return
	}
	s := &p.sites[site]
	s.samples++
	s.longLived++
}

// shouldPretenure reports whether new allocations at site belong in the
// old generation.
func (p *pretenurer) shouldPretenure(site int32) bool {
	if !p.enabled || site < 0 {
		return false
	}
	s := &p.sites[site]
	return s.samples >= pretenureMinSamples &&
		float64(s.longLived) >= pretenureThreshold*float64(s.samples)
}
