package vm

import (
	"context"
	"testing"

	"javasim/internal/sim"
	"javasim/internal/traffic"
	"javasim/internal/workload"
)

// The warm-start contract: a run forked from a snapshot (tape replay)
// and a cold run of the same configuration produce bit-identical
// Results, and the two fingerprint identically because the snapshot
// rides the context, never the Config. These tests exercise it across
// the whole paper workload set, multi-iteration runs, and open-system
// traffic — including a tape shorter than the run, which must hand back
// to live generation seamlessly.

// runSnapshotPair executes (spec, cfg) warm — RunContext with snap on
// the context — and cold, asserting the warm run actually attached a
// tape (a differential test that never replays proves nothing).
func runSnapshotPair(t *testing.T, spec workload.Spec, cfg Config, snap *Snapshot) (*Result, *Result) {
	t.Helper()
	attaches := 0
	snapshotObserver = func() { attaches++ }
	defer func() { snapshotObserver = nil }()

	warm, err := RunContext(ContextWithSnapshot(context.Background(), snap), spec, cfg)
	if err != nil {
		t.Fatalf("%s warm run: %v", spec.Name, err)
	}
	if attaches == 0 {
		t.Errorf("%s: snapshot never attached; differential comparison is vacuous", spec.Name)
	}

	cold, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("%s cold run: %v", spec.Name, err)
	}
	return warm, cold
}

// TestSnapshotDifferentialPaperSet builds one snapshot per paper
// workload — the sweep shape: config minus threads — and requires every
// thread count forked from it to match its cold run exactly.
func TestSnapshotDifferentialPaperSet(t *testing.T) {
	for _, spec := range workload.PaperSet() {
		spec := spec.Scale(0.04)
		snap, err := NewSnapshot(spec, Config{Seed: 11})
		if err != nil {
			t.Fatalf("%s: NewSnapshot: %v", spec.Name, err)
		}
		for _, threads := range []int{4, 16} {
			warm, cold := runSnapshotPair(t, spec, Config{Threads: threads, Seed: 11}, snap)
			diffResults(t, spec.Name, warm, cold)
		}
	}
}

// TestSnapshotDifferentialFeatureMatrix covers the run shapes that
// interact with tape replay: per-iteration tapes, and the open-system
// dispatch path (TakeOpen) with request counts above the unit pool.
func TestSnapshotDifferentialFeatureMatrix(t *testing.T) {
	xalan := workload.XalanSpec().Scale(0.04)
	server := workload.ServerSpec().Scale(0.04)
	open := traffic.Config{
		Process:    traffic.ProcessPoisson,
		RatePerSec: 200000,
		Requests:   server.TotalUnits + 200,
		Timeout:    2 * sim.Millisecond,
	}
	cases := []struct {
		name string
		spec workload.Spec
		cfg  Config
	}{
		{"iterations", xalan, Config{Threads: 4, Seed: 3, Iterations: 2}},
		{"open-poisson", server, Config{Threads: 8, Seed: 3, Traffic: open}},
		{"open-bursty", server, Config{Threads: 8, Seed: 3,
			Traffic: traffic.Config{Process: traffic.ProcessBursty, RatePerSec: 150000, Requests: 400}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			snap, err := NewSnapshot(c.spec, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if c.cfg.Iterations > 1 && snap.Iterations() != c.cfg.Iterations {
				t.Fatalf("snapshot holds %d tapes, want %d", snap.Iterations(), c.cfg.Iterations)
			}
			warm, cold := runSnapshotPair(t, c.spec, c.cfg, snap)
			diffResults(t, c.name, warm, cold)
		})
	}
}

// TestSnapshotShortTapeOverflow attaches a tape far shorter than the
// run and requires the mid-run handoff to live generation to stay
// bit-identical — the guard for open-system runs that outlive the
// maxTapeUnits cap.
func TestSnapshotShortTapeOverflow(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.04)
	cfg := Config{Threads: 4, Seed: 9}
	tape, err := workload.BuildTape(spec, cfg.withDefaults().Seed, 8)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{spec: spec, seed: cfg.withDefaults().Seed, tapes: []*workload.Tape{tape}}
	warm, cold := runSnapshotPair(t, spec, cfg, snap)
	diffResults(t, "short-tape", warm, cold)
}

// TestSnapshotDisableEscapeHatch pins Config.DisableSnapshot: with the
// flag set, a snapshot sitting on the context must be ignored.
func TestSnapshotDisableEscapeHatch(t *testing.T) {
	spec := workload.SunflowSpec().Scale(0.04)
	cfg := Config{Threads: 4, Seed: 11}
	snap, err := NewSnapshot(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	attaches := 0
	snapshotObserver = func() { attaches++ }
	defer func() { snapshotObserver = nil }()

	cfg.DisableSnapshot = true
	disabled, err := RunContext(ContextWithSnapshot(context.Background(), snap), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attaches != 0 {
		t.Errorf("DisableSnapshot run still attached a tape (%d attaches)", attaches)
	}
	cold, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "disable-snapshot", disabled, cold)
}

// TestSnapshotSeedMismatchStaysCold pins the Matches self-guard: a
// snapshot built for another seed must be skipped, not misapplied —
// sweeps run repeats under derived seeds through the same context.
func TestSnapshotSeedMismatchStaysCold(t *testing.T) {
	spec := workload.SunflowSpec().Scale(0.04)
	snap, err := NewSnapshot(spec, Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	attaches := 0
	snapshotObserver = func() { attaches++ }
	defer func() { snapshotObserver = nil }()

	cfg := Config{Threads: 4, Seed: 11}
	warm, err := RunContext(ContextWithSnapshot(context.Background(), snap), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if attaches != 0 {
		t.Errorf("mismatched snapshot attached anyway (%d attaches)", attaches)
	}
	cold, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "seed-mismatch", warm, cold)
}

// TestSnapshotProviderResolvesLazily pins the sweep plumbing: the
// provider builds nothing until a run consults the context, then shares
// one snapshot across runs.
func TestSnapshotProviderResolvesLazily(t *testing.T) {
	spec := workload.SunflowSpec().Scale(0.04)
	cfg := Config{Threads: 4, Seed: 11}
	p := NewSnapshotProvider(spec, cfg)
	if p.snap != nil {
		t.Fatal("provider built its snapshot before any run consulted it")
	}
	attaches := 0
	snapshotObserver = func() { attaches++ }
	defer func() { snapshotObserver = nil }()

	ctx := ContextWithSnapshotProvider(context.Background(), p)
	warm, err := RunContext(ctx, spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.snap == nil {
		t.Fatal("provider did not resolve during the run")
	}
	if attaches != 1 {
		t.Errorf("expected 1 tape attach through the provider, got %d", attaches)
	}
	cold, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "provider", warm, cold)
}
