package vm

import (
	"context"
	"errors"
	"testing"
	"time"

	"javasim/internal/workload"
)

func TestRunContextPreCanceled(t *testing.T) {
	spec, _ := workload.Lookup("xalan")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, spec.Scale(0.02), Config{Threads: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	spec, _ := workload.Lookup("xalan")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		// Full-scale xalan at 48 threads takes on the order of a second of
		// host time — far longer than the cancellation below.
		_, err := RunContext(ctx, spec, Config{Threads: 48, Seed: 1})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("cancellation took %v, want prompt abort", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not abort after cancellation")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	spec, _ := workload.Lookup("jython")
	spec = spec.Scale(0.02)
	cfg := Config{Threads: 4, Seed: 11}
	a, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.GCTime != b.GCTime ||
		a.LockAcquisitions != b.LockAcquisitions || a.ObjectsAllocated != b.ObjectsAllocated {
		t.Errorf("Run and RunContext diverged: %+v vs %+v", a, b)
	}
}

func TestConfigCanonicalResolvesZeros(t *testing.T) {
	c := Config{}.Canonical()
	if c.Threads != 4 || c.Cores != 4 || c.HeapFactor != 3 || c.Iterations != 1 {
		t.Errorf("canonical zero config = %+v", c)
	}
	if (Config{Threads: 4}).Canonical() != (Config{}).Canonical() {
		t.Error("explicit default and zero value canonicalize differently")
	}
}
