package vm

import (
	"fmt"

	"javasim/internal/sched"
	"javasim/internal/sim"
)

// Concurrent-collection cycle driver (GC.Concurrent mode).
//
// The cycle follows CMS's shape: when old-generation occupancy crosses the
// trigger ratio, the next minor collection's pause absorbs a brief
// initial-mark; concurrent GC threads then mark live old objects while
// mutators keep running (competing for cores — the real cost of a
// concurrent collector); the following minor collection absorbs a remark
// pause; the GC threads sweep without compacting; fragmentation accrues
// until a concurrent-mode failure forces the ordinary stop-the-world full
// collection, which compacts and resets the cycle.

type cmsPhase uint8

const (
	cmsIdle cmsPhase = iota
	// cmsMarkPending waits for a minor collection to host initial-mark.
	cmsMarkPending
	// cmsMarking runs concurrent marking on the GC threads.
	cmsMarking
	// cmsRemarkPending waits for a minor collection to host remark.
	cmsRemarkPending
	// cmsSweeping runs the concurrent sweep on the GC threads.
	cmsSweeping
)

type cmsDriver struct {
	phase   cmsPhase
	threads []*sched.Thread
	// busy counts GC threads still working on the current phase.
	busy int
	// generation invalidates in-flight work when a full collection aborts
	// the cycle.
	generation uint64
	// cpuTime accumulates concurrent GC processor time for reporting.
	cpuTime sim.Time
	cycles  int64
}

// chunk is the granularity of concurrent GC work: small enough to share
// cores fairly with mutators, large enough to keep event counts sane.
const cmsChunk = 200 * sim.Microsecond

func (v *vm) setupCMS() {
	if !v.cfg.GC.Concurrent {
		return
	}
	n := v.gc.Config().ConcurrentThreads
	for i := 0; i < n; i++ {
		v.cms.threads = append(v.cms.threads,
			v.sched.NewThread(fmt.Sprintf("cms-%d", i), sched.DefaultWeight))
	}
}

// cmsMaybeTrigger arms a cycle when occupancy crosses the trigger ratio.
// Called after each collection commits.
func (v *vm) cmsMaybeTrigger() {
	if !v.cfg.GC.Concurrent || v.cms.phase != cmsIdle {
		return
	}
	if v.heap.OldPressure() >= v.gc.Config().TriggerRatio {
		v.cms.phase = cmsMarkPending
	}
}

// cmsOnMinorPause lets a pending phase transition piggyback its brief
// stop-the-world pause on the minor collection at time now. It returns
// the extra pause duration to fold into the current window.
func (v *vm) cmsOnMinorPause(now sim.Time) sim.Time {
	switch v.cms.phase {
	case cmsMarkPending:
		p := v.gc.InitialMark(now)
		v.cms.phase = cmsMarking
		work := v.gc.MarkWork(v.gc.OldLiveCount())
		v.cmsStartPhaseWork(work, func() {
			v.cms.phase = cmsRemarkPending
		})
		return p.Duration
	case cmsRemarkPending:
		p := v.gc.Remark(now)
		v.cms.phase = cmsSweeping
		v.cmsStartPhaseWork(v.gc.SweepWork(), func() {
			v.gc.SweepOld(v.sim.Now())
			v.cms.cycles++
			v.cms.phase = cmsIdle
		})
		return p.Duration
	default:
		return 0
	}
}

// cmsAbort cancels any in-flight cycle; a compacting full collection has
// superseded it. GC threads notice through the generation counter.
func (v *vm) cmsAbort() {
	if !v.cfg.GC.Concurrent || v.cms.phase == cmsIdle {
		return
	}
	v.cms.generation++
	v.cms.busy = 0
	v.cms.phase = cmsIdle
}

// cmsStartPhaseWork divides work across the GC threads in chunks and
// calls done when the last thread finishes.
func (v *vm) cmsStartPhaseWork(work sim.Time, done func()) {
	n := len(v.cms.threads)
	if n == 0 {
		panic("vm: concurrent phase with no GC threads")
	}
	if work <= 0 {
		// Nothing to do (empty old generation): complete the phase at the
		// next instant, off the caller's stack.
		v.sim.Schedule(0, done)
		return
	}
	gen := v.cms.generation
	v.cms.busy = n
	share := work / sim.Time(n)
	if share < 1 {
		share = 1
	}
	for _, th := range v.cms.threads {
		v.cmsThreadWork(th, share, gen, done)
	}
}

// cmsThreadWork runs one GC thread's share of a phase in chunks.
func (v *vm) cmsThreadWork(th *sched.Thread, remaining sim.Time, gen uint64, done func()) {
	if v.cms.generation != gen || v.finished {
		return // cycle aborted or run over; drop the work
	}
	d := remaining
	if d > cmsChunk {
		d = cmsChunk
	}
	v.sched.Submit(th, d, func() {
		v.cms.cpuTime += d
		left := remaining - d
		if left > 0 {
			v.cmsThreadWork(th, left, gen, done)
			return
		}
		if v.cms.generation != gen {
			return
		}
		v.cms.busy--
		if v.cms.busy == 0 {
			done()
		}
	})
}
