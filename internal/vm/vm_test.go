package vm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"javasim/internal/lockprof"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/workload"
)

func smallSpec() workload.Spec {
	return workload.XalanSpec().Scale(0.05) // 600 units
}

func TestSmokeRun(t *testing.T) {
	res, err := Run(smallSpec(), Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("non-positive total time")
	}
	if res.MutatorTime <= 0 || res.MutatorTime+res.GCTime != res.TotalTime {
		t.Errorf("time split mutator=%v gc=%v total=%v", res.MutatorTime, res.GCTime, res.TotalTime)
	}
	if res.ObjectsAllocated == 0 {
		t.Error("no objects allocated")
	}
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Errorf("lifespan samples %d != objects %d — some object never died",
			res.Lifespans.Total(), res.ObjectsAllocated)
	}
	if res.LockAcquisitions == 0 {
		t.Error("no lock acquisitions recorded")
	}
	var units int64
	for _, u := range res.PerThreadUnits {
		units += u
	}
	if units != int64(smallSpec().TotalUnits) {
		t.Errorf("executed %d units, want %d", units, smallSpec().TotalUnits)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(smallSpec(), Config{Threads: 6, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.GCTime != b.GCTime ||
		a.LockAcquisitions != b.LockAcquisitions ||
		a.LockContentions != b.LockContentions ||
		a.ObjectsAllocated != b.ObjectsAllocated ||
		a.Lifespans.Sum() != b.Lifespans.Sum() {
		t.Errorf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, err := Run(smallSpec(), Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallSpec(), Config{Threads: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime == b.TotalTime && a.Lifespans.Sum() == b.Lifespans.Sum() {
		t.Error("different seeds produced identical runs — RNG not wired through")
	}
}

func TestCoresDefaultToThreads(t *testing.T) {
	res, err := Run(smallSpec(), Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 8 {
		t.Errorf("cores = %d, want 8 (paper methodology: cores = threads)", res.Cores)
	}
	// Beyond machine capacity the core count saturates.
	res, err = Run(workload.JythonSpec().Scale(0.02), Config{Threads: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores != 48 {
		t.Errorf("cores = %d, want 48 (machine limit)", res.Cores)
	}
}

func TestAllWorkloadsRun(t *testing.T) {
	for _, spec := range workload.PaperSet() {
		spec := spec.Scale(0.03)
		for _, n := range []int{1, 2, 8} {
			res, err := Run(spec, Config{Threads: n, Seed: 5})
			if err != nil {
				t.Fatalf("%s@%d: %v", spec.Name, n, err)
			}
			if res.Lifespans.Total() != res.ObjectsAllocated {
				t.Errorf("%s@%d: %d lifespans for %d objects",
					spec.Name, n, res.Lifespans.Total(), res.ObjectsAllocated)
			}
			if res.MutatorTime+res.GCTime != res.TotalTime {
				t.Errorf("%s@%d: time split broken", spec.Name, n)
			}
		}
	}
}

func TestWorkDistributionShapes(t *testing.T) {
	// Queue workloads spread work near-uniformly; capped workloads
	// concentrate it (§III of the paper).
	xalan, err := Run(workload.XalanSpec().Scale(0.1), Config{Threads: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64 = 1 << 62, 0
	for _, u := range xalan.PerThreadUnits {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if min == 0 || float64(max)/float64(min) > 2.5 {
		t.Errorf("xalan distribution skewed: min=%d max=%d", min, max)
	}

	jython, err := Run(workload.JythonSpec().Scale(0.1), Config{Threads: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, u := range jython.PerThreadUnits {
		if u > 0 {
			busy++
		}
	}
	if busy > 3 {
		t.Errorf("jython used %d threads, cap is 3", busy)
	}
}

func TestGCOccursAndAccounts(t *testing.T) {
	res, err := Run(workload.XalanSpec().Scale(0.2), Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GCStats.MinorCount == 0 {
		t.Fatal("no minor collections in an allocation-heavy run")
	}
	if res.GCTime <= 0 {
		t.Error("GC occurred but GCTime is zero")
	}
	if res.SafepointTime <= 0 || res.SafepointTime > res.GCTime {
		t.Errorf("safepoint time %v outside (0, GCTime=%v]", res.SafepointTime, res.GCTime)
	}
	var pauseSum sim.Time
	for _, p := range res.GCPauses {
		pauseSum += p.Duration
	}
	if pauseSum+res.SafepointTime != res.GCTime {
		t.Errorf("pauses(%v) + safepoints(%v) != GCTime(%v)", pauseSum, res.SafepointTime, res.GCTime)
	}
}

func TestTraceEmission(t *testing.T) {
	var sink trace.MemorySink
	res, err := Run(smallSpec(), Config{Threads: 4, Seed: 1, TraceSink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	var allocs, deaths, starts, ends int64
	for _, ev := range sink.Events {
		switch ev.Kind {
		case trace.Alloc:
			allocs++
		case trace.Death:
			deaths++
		case trace.ThreadStart:
			starts++
		case trace.ThreadEnd:
			ends++
		}
	}
	if allocs != res.ObjectsAllocated {
		t.Errorf("trace allocs %d != objects %d", allocs, res.ObjectsAllocated)
	}
	if deaths != allocs {
		t.Errorf("trace deaths %d != allocs %d", deaths, allocs)
	}
	if starts != 4 || ends != 4 {
		t.Errorf("thread events %d/%d, want 4/4", starts, ends)
	}
	// Times must be nondecreasing (the writer depends on it).
	for i := 1; i < len(sink.Events); i++ {
		if sink.Events[i].Time < sink.Events[i-1].Time {
			t.Fatal("trace events out of order")
		}
	}
}

func TestTraceLifespansMatchHistogram(t *testing.T) {
	var sink trace.MemorySink
	res, err := Run(smallSpec(), Config{Threads: 4, Seed: 8, TraceSink: &sink})
	if err != nil {
		t.Fatal(err)
	}
	// Recompute lifespans from the trace; totals must agree exactly with
	// the VM's histogram.
	births := map[uint32]int64{}
	var sum int64
	var count int64
	for _, ev := range sink.Events {
		switch ev.Kind {
		case trace.Alloc:
			births[ev.Object] = ev.Clock
		case trace.Death:
			sum += ev.Clock - births[ev.Object]
			count++
		}
	}
	if count != res.Lifespans.Total() || sum != res.Lifespans.Sum() {
		t.Errorf("trace lifespans (n=%d sum=%d) != histogram (n=%d sum=%d)",
			count, sum, res.Lifespans.Total(), res.Lifespans.Sum())
	}
}

func TestLockProfilerIntegration(t *testing.T) {
	prof := lockprof.New()
	res, err := Run(smallSpec(), Config{Threads: 8, Seed: 1, LockProfiler: prof})
	if err != nil {
		t.Fatal(err)
	}
	sum := prof.Summary()
	if sum.Acquisitions != res.LockAcquisitions {
		t.Errorf("profiler acquisitions %d != result %d", sum.Acquisitions, res.LockAcquisitions)
	}
	if sum.Contentions != res.LockContentions {
		t.Errorf("profiler contentions %d != result %d", sum.Contentions, res.LockContentions)
	}
	per := prof.PerLock()
	if len(per) == 0 {
		t.Fatal("no per-lock stats")
	}
	foundQueue := false
	for _, s := range per {
		if strings.Contains(s.Name, "workQueue") {
			foundQueue = true
		}
	}
	if !foundQueue {
		t.Error("work queue lock missing from profile")
	}
}

func TestBiasedSchedulingRuns(t *testing.T) {
	cfg := Config{Threads: 8, Seed: 1}
	cfg.Sched.Bias.Groups = 2
	cfg.Sched.Bias.PhaseLength = 500 * sim.Microsecond
	res, err := Run(smallSpec(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("biased run inconsistent")
	}
	// Gating idles cores, so utilization must drop versus baseline.
	base, err := Run(smallSpec(), Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization >= base.Utilization {
		t.Errorf("bias utilization %v not below baseline %v", res.Utilization, base.Utilization)
	}
}

func TestCompartmentsRun(t *testing.T) {
	res, err := Run(workload.XalanSpec().Scale(0.2), Config{Threads: 8, Seed: 1, Compartments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.GCStats.MinorCount == 0 {
		t.Fatal("no collections with compartments")
	}
	// Compartment-local pauses each cover a quarter of eden; with the same
	// total allocation there must be more, smaller collections.
	base, err := Run(workload.XalanSpec().Scale(0.2), Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.GCStats.MinorCount <= base.GCStats.MinorCount {
		t.Errorf("compartment minors %d not more frequent than baseline %d",
			res.GCStats.MinorCount, base.GCStats.MinorCount)
	}
}

func TestMaxVirtualTimeGuard(t *testing.T) {
	_, err := Run(workload.XalanSpec(), Config{Threads: 4, Seed: 1, MaxVirtualTime: sim.Millisecond})
	if err == nil {
		t.Fatal("expected budget-exceeded error")
	}
	if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	if _, err := Run(workload.Spec{}, Config{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestGCShare(t *testing.T) {
	res := &Result{TotalTime: 100, GCTime: 25}
	if res.GCShare() != 0.25 {
		t.Errorf("GCShare = %v", res.GCShare())
	}
	if (&Result{}).GCShare() != 0 {
		t.Error("empty GCShare != 0")
	}
}

// Property: for arbitrary small thread counts and seeds, the fundamental
// conservation laws hold — every unit executes, every object dies exactly
// once, the time split is exact, and allocated bytes equal the registry
// clock fed to lifespans.
func TestConservationProperty(t *testing.T) {
	spec := workload.LusearchSpec().Scale(0.01) // 120 units
	f := func(seed uint64, threadsRaw uint8) bool {
		threads := int(threadsRaw%8) + 1
		res, err := Run(spec, Config{Threads: threads, Seed: seed})
		if err != nil {
			return false
		}
		var units int64
		for _, u := range res.PerThreadUnits {
			units += u
		}
		if units != int64(spec.TotalUnits) {
			return false
		}
		if res.Lifespans.Total() != res.ObjectsAllocated {
			return false
		}
		if res.MutatorTime+res.GCTime != res.TotalTime {
			return false
		}
		if res.Utilization < 0 || res.Utilization > 1+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: GC pauses lie inside the run window and never overlap, where
// a full collection followed by the retried minor at the same instant
// forms one compound stop-the-world window. Exercised at 48 threads so
// full collections actually occur.
func TestPauseIntervalProperty(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.3)
	sawFull := false
	f := func(seed uint64) bool {
		res, err := Run(spec, Config{Threads: 48, Seed: seed})
		if err != nil {
			return false
		}
		if int64(len(res.GCPauses)) != res.GCStats.MinorCount+res.GCStats.FullCount {
			return false
		}
		if res.GCStats.FullCount > 0 {
			sawFull = true
		}
		var windowStart, windowEnd sim.Time = -1, 0
		for _, p := range res.GCPauses {
			if p.Duration <= 0 {
				return false
			}
			if p.Start == windowStart {
				// Compound window: full + retried minor share a start.
				windowEnd += p.Duration
			} else {
				if p.Start < windowEnd { // overlapping distinct windows
					return false
				}
				windowStart = p.Start
				windowEnd = p.Start + p.Duration
			}
			if windowEnd > res.TotalTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
	if !sawFull {
		t.Log("note: no full collection occurred across sampled seeds")
	}
}

// Property: lifespan mean is finite and positive, and mean lifespan grows
// (or at least does not collapse) when thread count rises for a
// queue-distributed workload — the paper's core §III-B mechanism.
func TestLifespanStretchProperty(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.1)
	mean := func(threads int) float64 {
		res, err := Run(spec, Config{Threads: threads, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return res.Lifespans.Mean()
	}
	m2, m16 := mean(2), mean(16)
	if math.IsNaN(m2) || m2 <= 0 {
		t.Fatalf("degenerate lifespan mean %v", m2)
	}
	if m16 <= m2 {
		t.Errorf("mean lifespan at 16 threads (%v) not above 2 threads (%v)", m16, m2)
	}
}

func TestHeapLogSampled(t *testing.T) {
	res, err := Run(workload.XalanSpec().Scale(0.1), Config{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HeapLog) == 0 {
		t.Fatal("no heap samples despite collections")
	}
	if int64(len(res.HeapLog)) > res.GCStats.MinorCount+res.GCStats.FullCount {
		t.Error("more heap samples than stop-the-world windows")
	}
	var prev sim.Time = -1
	for _, s := range res.HeapLog {
		if s.Time < prev {
			t.Fatal("heap log out of order")
		}
		prev = s.Time
		if s.OldUsed < 0 || s.LiveBytes < 0 || s.Fragmentation < 0 {
			t.Fatalf("negative sample %+v", s)
		}
	}
	// Old generation occupancy grows over the run as promotion accrues.
	if res.HeapLog[len(res.HeapLog)-1].OldUsed < res.HeapLog[0].OldUsed {
		t.Error("old generation shrank without full collection")
	}
}
