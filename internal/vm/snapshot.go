package vm

import (
	"context"
	"sync"

	"javasim/internal/workload"
)

// Warm-start sweep snapshots
//
// A sweep runs the same (workload, config) at many thread counts or
// offered rates. The VM's simulated state — heap, TLABs, scheduler,
// pending events — diverges between sweep points from the first event
// on, so none of it can be forked across points without changing
// results. What IS invariant is the workload generation stream: unit k
// of a run is a pure function of (spec, seed, k), because generation
// ignores which thread draws (see workload.Run). Profiling shows that
// stream — the lognormal/Zipf draw tower in workload.generate — is the
// single largest CPU component of a run, i.e. the per-point "warmup"
// that every sweep point used to repeat.
//
// A Snapshot therefore captures, once per (spec, config-minus-threads):
// the full pre-generated unit tape per iteration plus the end-of-tape
// RNG stream states (workload.Tape). Each sweep point forks from it by
// attaching the tapes to its workload Runs; replay is bit-identical to
// cold generation by construction, and runs that outlive the tape
// (open-system overflow) resume live drawing from cloned end states.
//
// The snapshot rides the context (ContextWithSnapshot), not the Config:
// a warm run and a cold run have identical configurations, so engine
// cache keys and disk-store fingerprints are identical by construction
// — snapshot-derived results land in (and hit) the same store entries
// as cold ones. Config.DisableSnapshot is the differential-testing
// escape hatch, mirroring DisableFusion.

// snapshotObserver, when non-nil, is called once per run that attaches a
// snapshot tape — a test hook (mirroring fuseObserver) so differential
// tests can prove the warm path actually engaged. Never set outside
// tests.
var snapshotObserver func()

// Snapshot is the reusable warm-start state for one sweep: one workload
// tape per iteration. It is immutable after construction and safe to
// share across concurrently executing runs.
type Snapshot struct {
	spec  workload.Spec
	seed  uint64
	tapes []*workload.Tape
}

// iterSeedStride derives iteration i's seed as Seed + i*stride; it must
// match startNextIteration.
const iterSeedStride = 0x9E3779B9

// maxTapeUnits caps a tape's pre-generated unit count (~a few MB of op
// records). Runs needing more units fall back to live generation at the
// tape end, bit-identically.
const maxTapeUnits = 1 << 16

// NewSnapshot pre-generates the workload tapes for every iteration of
// runs configured like cfg. The snapshot serves any run sharing the
// spec and seed — thread count, core count, and offered rate may vary
// freely across the sweep points that consume it.
func NewSnapshot(spec workload.Spec, cfg Config) (*Snapshot, error) {
	cfg = cfg.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.TotalUnits
	if cfg.Traffic.Open() && cfg.Traffic.Requests > n {
		n = cfg.Traffic.Requests
	}
	if n > maxTapeUnits {
		n = maxTapeUnits
	}
	tapes := make([]*workload.Tape, cfg.Iterations)
	for i := range tapes {
		t, err := workload.BuildTape(spec, cfg.Seed+uint64(i)*iterSeedStride, n)
		if err != nil {
			return nil, err
		}
		tapes[i] = t
	}
	return &Snapshot{spec: spec, seed: cfg.Seed, tapes: tapes}, nil
}

// Matches reports whether the snapshot can warm-start a run of (spec,
// cfg): same spec and same base seed. Correctness does not hinge on
// this check — Run.AttachTape re-verifies (spec, seed) per iteration
// and falls back to live generation on mismatch — it only avoids
// pointless attach attempts (e.g. a sweep's repeat runs under derived
// seeds).
func (s *Snapshot) Matches(spec workload.Spec, cfg Config) bool {
	return s != nil && spec == s.spec && cfg.withDefaults().Seed == s.seed
}

// Iterations returns the number of per-iteration tapes held.
func (s *Snapshot) Iterations() int { return len(s.tapes) }

// Units returns the pre-generated unit count of the first tape.
func (s *Snapshot) Units() int {
	if len(s.tapes) == 0 {
		return 0
	}
	return s.tapes[0].Len()
}

// SnapshotProvider builds its snapshot on first demand and then shares
// it. A sweep attaches a provider rather than a built snapshot so that
// fully cached sweeps — every point a memory or disk hit — never pay
// the tape generation; the first point that actually simulates resolves
// it, and concurrent points block on the same build.
type SnapshotProvider struct {
	spec workload.Spec
	cfg  Config
	once sync.Once
	snap *Snapshot
}

// NewSnapshotProvider prepares a lazy snapshot for runs of (spec, cfg).
func NewSnapshotProvider(spec workload.Spec, cfg Config) *SnapshotProvider {
	return &SnapshotProvider{spec: spec, cfg: cfg}
}

// Snapshot resolves the snapshot, building it on first call. It returns
// nil when the spec cannot build one (the run itself will surface the
// configuration error).
func (p *SnapshotProvider) Snapshot() *Snapshot {
	p.once.Do(func() { p.snap, _ = NewSnapshot(p.spec, p.cfg) })
	return p.snap
}

type snapshotCtxKey struct{}

// ContextWithSnapshot returns a context carrying the snapshot; RunContext
// warm-starts from it when the run's spec and seed match (and
// Config.DisableSnapshot is unset). A nil snapshot returns ctx unchanged.
func ContextWithSnapshot(ctx context.Context, s *Snapshot) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, snapshotCtxKey{}, s)
}

// ContextWithSnapshotProvider returns a context carrying a lazy snapshot
// source; SnapshotFrom resolves it only when a run consults it.
func ContextWithSnapshotProvider(ctx context.Context, p *SnapshotProvider) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, snapshotCtxKey{}, p)
}

// SnapshotFrom extracts the snapshot carried by ctx — resolving a lazy
// provider if that is what rides there — or nil.
func SnapshotFrom(ctx context.Context) *Snapshot {
	switch v := ctx.Value(snapshotCtxKey{}).(type) {
	case *Snapshot:
		return v
	case *SnapshotProvider:
		return v.Snapshot()
	}
	return nil
}
