package vm

import (
	"javasim/internal/gc"
	"javasim/internal/machine"
)

// NUMA-aware heap layout support for GC policies that home compartment
// regions on specific sockets (gc.Layout.HomeSockets non-nil). Two
// effects are modeled, both computed once from the machine's static
// latencies so runs stay deterministic:
//
//   - evacuation locality: the collector's CopyCostPerKB is calibrated
//     for a heap interleaved across the spanned memory nodes, so a
//     compartment whose region and collecting workers sit on one node
//     evacuates at the local latency instead of the interleaved mean —
//     a copy factor <= 1;
//   - mutator grouping: threads are mapped to the compartment homed on
//     the socket their initial core belongs to, so a thread group's
//     allocation, death, and collection all stay node-local.

// numaCopyFactors returns the per-compartment evacuation cost
// multipliers: local access latency over the mean latency an interleaved
// heap pays across the spanned sockets. On a single-socket run the two
// coincide and the factor is exactly 1.
func numaCopyFactors(mach *machine.Machine, spanned int, layout gc.Layout) []float64 {
	enabled := mach.EnabledCores()
	var mean float64
	for _, core := range enabled {
		for s := 0; s < spanned; s++ {
			mean += float64(mach.MemoryLatency(core, s))
		}
	}
	mean /= float64(len(enabled) * spanned)
	local := float64(mach.Config().LocalAccess)
	factors := make([]float64, layout.Compartments)
	for c := range factors {
		factors[c] = 1
		if mean > 0 && local < mean {
			factors[c] = local / mean
		}
	}
	return factors
}

// numaCompartmentMap assigns each mutator the compartment homed on the
// socket of its initial core (cores are enabled socket-major and threads
// dispatch in index order, so thread i starts on core i%cores). Sockets
// hosting several compartments rotate threads across them; a socket with
// no homed compartment falls back to round-robin.
func numaCompartmentMap(mach *machine.Machine, threads, cores int, layout gc.Layout) []int {
	bySocket := make(map[int][]int)
	for c, s := range layout.HomeSockets {
		bySocket[s] = append(bySocket[s], c)
	}
	next := make(map[int]int)
	out := make([]int, threads)
	for i := 0; i < threads; i++ {
		s := mach.SocketOf(i % cores)
		comps := bySocket[s]
		if len(comps) == 0 {
			out[i] = i % layout.Compartments
			continue
		}
		out[i] = comps[next[s]%len(comps)]
		next[s]++
	}
	return out
}
