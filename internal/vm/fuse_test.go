package vm

import (
	"reflect"
	"testing"

	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/workload"
)

// The fusion contract: a fused run and an unfused run of the same
// configuration produce bit-identical Results. These tests exercise it
// across the whole paper workload set and the feature matrix that
// interacts with the interpreter loop (policies, bias, compartments,
// iterations, pretenuring).

// runPair executes cfg with fusion on and off and returns both results,
// asserting the fused run actually fused at least once when expectFusion
// is set (a differential test that never fuses proves nothing).
func runPair(t *testing.T, spec workload.Spec, cfg Config, expectFusion bool) (*Result, *Result) {
	t.Helper()
	fusedRuns := 0
	fuseObserver = func(int) { fusedRuns++ }
	defer func() { fuseObserver = nil }()

	fused, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("%s fused run: %v", spec.Name, err)
	}
	if expectFusion && fusedRuns == 0 {
		t.Errorf("%s: fusion never engaged; differential comparison is vacuous", spec.Name)
	}
	observed := fusedRuns

	cfg.DisableFusion = true
	unfused, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("%s unfused run: %v", spec.Name, err)
	}
	if fusedRuns != observed {
		t.Errorf("%s: DisableFusion run still fused (%d -> %d runs)", spec.Name, observed, fusedRuns)
	}
	return fused, unfused
}

func diffResults(t *testing.T, name string, fused, unfused *Result) {
	t.Helper()
	if reflect.DeepEqual(fused, unfused) {
		return
	}
	// Narrow the mismatch for the failure message.
	fv, uv := reflect.ValueOf(*fused), reflect.ValueOf(*unfused)
	for i := 0; i < fv.NumField(); i++ {
		if !reflect.DeepEqual(fv.Field(i).Interface(), uv.Field(i).Interface()) {
			t.Errorf("%s: field %s differs under fusion:\n  fused:   %+v\n  unfused: %+v",
				name, fv.Type().Field(i).Name, fv.Field(i).Interface(), uv.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Errorf("%s: results differ under fusion (no single field isolated)", name)
	}
}

// TestFusionDifferentialPaperSet runs every paper workload at two thread
// counts and requires identical Results with and without fusion.
func TestFusionDifferentialPaperSet(t *testing.T) {
	for _, spec := range workload.PaperSet() {
		spec := spec.Scale(0.04)
		for _, threads := range []int{4, 16} {
			fused, unfused := runPair(t, spec, Config{Threads: threads, Seed: 11}, threads == 4)
			diffResults(t, spec.Name, fused, unfused)
		}
	}
}

// TestFusionDifferentialFeatureMatrix covers the VM features that touch
// the interpreter loop most directly. Fusion must either stay invisible
// or disqualify itself (pretenuring disables alloc fusion; compute runs
// still fuse) — in every case the Results must match exactly.
func TestFusionDifferentialFeatureMatrix(t *testing.T) {
	xalan := workload.XalanSpec().Scale(0.04)
	sunflow := workload.SunflowSpec().Scale(0.04)
	cases := []struct {
		name string
		spec workload.Spec
		cfg  Config
	}{
		{"iterations", xalan, Config{Threads: 4, Seed: 3, Iterations: 2}},
		{"pretenuring", xalan, Config{Threads: 4, Seed: 3, Pretenuring: true}},
		{"spin-then-park", xalan, Config{Threads: 8, Seed: 3, LockPolicy: "spin-then-park"}},
		{"phase-bias", sunflow, Config{Threads: 8, Seed: 3,
			Sched: sched.Config{Bias: sched.PhaseBias{Groups: 2, PhaseLength: 2 * sim.Millisecond}}}},
		{"compartment-gc", sunflow, Config{Threads: 8, Seed: 3, GCPolicy: "compartment"}},
		{"concurrent-gc", xalan, Config{Threads: 8, Seed: 3, GCPolicy: "concurrent"}},
		{"stw-parallel-gc", xalan, Config{Threads: 8, Seed: 3, GCPolicy: "stw-parallel"}},
		{"single-thread", xalan, Config{Threads: 1, Seed: 3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fused, unfused := runPair(t, c.spec, c.cfg, false)
			diffResults(t, c.name, fused, unfused)
		})
	}
}

// TestFusionEngagesSingleThread pins the best case: with one mutator and
// a quiet event queue, long op runs must fuse (the window is bounded only
// by helper wakeups and the run guard).
func TestFusionEngagesSingleThread(t *testing.T) {
	var fusedOps, runs int
	fuseObserver = func(n int) { fusedOps += n; runs++ }
	defer func() { fuseObserver = nil }()
	if _, err := Run(workload.SunflowSpec().Scale(0.02), Config{Threads: 1, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if runs == 0 {
		t.Fatal("no op runs fused in a single-threaded run")
	}
	if avg := float64(fusedOps) / float64(runs); avg < 3 {
		t.Errorf("average fused run = %.1f ops, want >= 3 (window too tight?)", avg)
	}
}
