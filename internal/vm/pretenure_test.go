package vm

import (
	"testing"

	"javasim/internal/workload"
)

func TestPretenuringLearnsAndDiverts(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.3)
	base, err := Run(spec, Config{Threads: 16, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(spec, Config{Threads: 16, Seed: 42, Pretenuring: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.HeapStats.PretenuredAllocs != 0 {
		t.Error("baseline pretenured allocations")
	}
	if pre.HeapStats.PretenuredAllocs == 0 {
		t.Fatal("pretenuring enabled but no allocation was diverted")
	}
	// The whole point: less survivor copying once long-lived sites skip
	// the nursery.
	if pre.GCStats.CopiedBytes >= base.GCStats.CopiedBytes {
		t.Errorf("pretenuring did not reduce survivor copying: %d vs %d",
			pre.GCStats.CopiedBytes, base.GCStats.CopiedBytes)
	}
	// Conservation still holds.
	if pre.Lifespans.Total() != pre.ObjectsAllocated {
		t.Error("conservation broken under pretenuring")
	}
	t.Logf("copied: base=%.2fMB pretenured=%.2fMB; diverted=%d objs; gc: base=%v pre=%v",
		float64(base.GCStats.CopiedBytes)/(1<<20), float64(pre.GCStats.CopiedBytes)/(1<<20),
		pre.HeapStats.PretenuredAllocs, base.GCTime, pre.GCTime)
}

func TestPretenuringDeterministic(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.05)
	run := func() *Result {
		res, err := Run(spec, Config{Threads: 8, Seed: 3, Pretenuring: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.HeapStats.PretenuredAllocs != b.HeapStats.PretenuredAllocs {
		t.Error("pretenuring nondeterministic")
	}
}

func TestPretenuringUnderPressure(t *testing.T) {
	// A tight heap forces the pretenure path to hit AllocOld failures and
	// recover through forced full collections.
	spec := workload.XalanSpec().Scale(0.3)
	res, err := Run(spec, Config{Threads: 32, Seed: 42, HeapFactor: 1.6, Pretenuring: true})
	if err != nil {
		t.Skipf("run failed under pressure: %v", err)
	}
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("conservation broken under pretenuring pressure")
	}
}
