package vm

import (
	"reflect"
	"testing"

	"javasim/internal/sim"
	"javasim/internal/traffic"
	"javasim/internal/workload"
)

// openServer is the open-mode test workload: the steady-state server
// model (no barrier phases), shrunk so a few thousand requests finish
// quickly.
func openServer() workload.Spec { return workload.ServerSpec().Scale(0.2) }

func openCfg(process string, rate float64) Config {
	return Config{
		Threads: 8,
		Seed:    42,
		Traffic: traffic.Config{
			Process:    process,
			RatePerSec: rate,
			Requests:   2000,
		},
	}
}

// checkOpenInvariants asserts the accounting identities every open run
// must satisfy, whatever the process or load level.
func checkOpenInvariants(t *testing.T, res *Result) *traffic.Stats {
	t.Helper()
	st := res.Traffic
	if st == nil {
		t.Fatal("open run returned nil Traffic stats")
	}
	if st.Offered != st.Completed+st.TimedOut {
		t.Errorf("accounting leak: offered %d != completed %d + timed-out %d",
			st.Offered, st.Completed, st.TimedOut)
	}
	if st.Latency.Total() != st.Completed {
		t.Errorf("latency samples %d != completed %d", st.Latency.Total(), st.Completed)
	}
	if st.QueueWait.Total() != st.Completed {
		t.Errorf("queue-wait samples %d != completed %d", st.QueueWait.Total(), st.Completed)
	}
	if st.QueueDepthMean < 0 || float64(st.QueueDepthMax) < st.QueueDepthMean {
		t.Errorf("queue depth mean %.2f max %d inconsistent", st.QueueDepthMean, st.QueueDepthMax)
	}
	// Latency = queue wait + service; the tail can never undercut the wait.
	if st.Latency.Max() < st.QueueWait.Max() {
		t.Errorf("max latency %v < max queue wait %v",
			sim.Time(st.Latency.Max()), sim.Time(st.QueueWait.Max()))
	}
	return st
}

func TestOpenSmoke(t *testing.T) {
	for _, process := range []string{traffic.ProcessPoisson, traffic.ProcessBursty, traffic.ProcessDiurnal} {
		res, err := Run(openServer(), openCfg(process, 150000))
		if err != nil {
			t.Fatalf("%s: %v", process, err)
		}
		st := checkOpenInvariants(t, res)
		if st.Offered != 2000 {
			t.Errorf("%s: offered %d, want 2000", process, st.Offered)
		}
		if st.TimedOut != 0 {
			t.Errorf("%s: %d requests timed out with no timeout configured", process, st.TimedOut)
		}
		if st.Process != process {
			t.Errorf("stats process %q, want %q", st.Process, process)
		}
	}
}

// TestOpenDeterminism verifies the full open-system measurement record —
// arrivals, latencies, queue trajectory — reproduces bit-identically
// under one seed and diverges under another.
func TestOpenDeterminism(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := openCfg(traffic.ProcessBursty, 200000)
		cfg.Seed = seed
		res, err := Run(openServer(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.TotalTime != b.TotalTime {
		t.Errorf("total time diverged: %v vs %v", a.TotalTime, b.TotalTime)
	}
	if !reflect.DeepEqual(a.Traffic, b.Traffic) {
		t.Errorf("traffic stats diverged under one seed:\n%+v\nvs\n%+v", a.Traffic, b.Traffic)
	}
	c := run(8)
	if a.TotalTime == c.TotalTime && reflect.DeepEqual(a.Traffic, c.Traffic) {
		t.Error("different seeds produced identical open runs")
	}
}

// TestOpenTimeoutAccounting drives the queue far past saturation with a
// tight deadline: requests must time out, and every offered request must
// still be accounted completed or abandoned.
func TestOpenTimeoutAccounting(t *testing.T) {
	cfg := openCfg(traffic.ProcessPoisson, 2000000) // ~10x the service capacity
	cfg.Traffic.Timeout = 200 * sim.Microsecond
	res, err := Run(openServer(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := checkOpenInvariants(t, res)
	if st.TimedOut == 0 {
		t.Error("overloaded run with a 200µs deadline abandoned nothing")
	}
	if st.Completed == 0 {
		t.Error("no requests completed")
	}
	// Completed requests never waited past the deadline: expiry happens
	// before dispatch, so the wait distribution is censored at Timeout.
	if max := sim.Time(st.QueueWait.Max()); max > cfg.Traffic.Timeout {
		t.Errorf("a completed request waited %v, past the %v deadline", max, cfg.Traffic.Timeout)
	}
}

// TestOpenClosedDifferential verifies the closed adapter is the identity:
// naming "closed" as the arrival process reproduces the plain closed-loop
// run bit-for-bit, Result field by Result field.
func TestOpenClosedDifferential(t *testing.T) {
	spec := smallSpec()
	base := Config{Threads: 6, Seed: 99}
	adapter := base
	adapter.Traffic = traffic.Config{Process: traffic.ProcessClosed}
	plain, err := Run(spec, base)
	if err != nil {
		t.Fatal(err)
	}
	viaAdapter, err := Run(spec, adapter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, viaAdapter) {
		t.Errorf("closed adapter changed the run:\nplain:   %+v\nadapter: %+v", plain, viaAdapter)
	}
}

// TestOpenValidation exercises the config rejections specific to open
// mode.
func TestOpenValidation(t *testing.T) {
	spec := openServer()
	bad := openCfg("no-such-process", 100000)
	if _, err := Run(spec, bad); err == nil {
		t.Error("unknown arrival process accepted")
	}
	noRate := openCfg(traffic.ProcessPoisson, 0)
	if _, err := Run(spec, noRate); err == nil {
		t.Error("open run with zero rate accepted")
	}
	iter := openCfg(traffic.ProcessPoisson, 100000)
	iter.Iterations = 2
	if _, err := Run(spec, iter); err == nil {
		t.Error("open run with Iterations > 1 accepted")
	}
	phased := openCfg(traffic.ProcessPoisson, 100000)
	if _, err := Run(workload.XalanSpec().Scale(0.05), phased); err == nil {
		t.Error("open run over a barrier-phased workload accepted")
	}
}

// TestOpenGoodputKnee verifies the open-system physics the subsystem
// exists to measure: past the saturation rate, goodput stops tracking
// offered load and the latency tail inflates.
func TestOpenGoodputKnee(t *testing.T) {
	measure := func(rate float64) (goodput float64, p99 sim.Time) {
		res, err := Run(openServer(), openCfg(traffic.ProcessPoisson, rate))
		if err != nil {
			t.Fatal(err)
		}
		st := checkOpenInvariants(t, res)
		return st.GoodputPerSec(res.TotalTime), sim.Time(st.Latency.Percentile(99))
	}
	lowGood, lowP99 := measure(50000)
	highGood, highP99 := measure(2000000)
	if lowGood < 45000 || lowGood > 55000 {
		t.Errorf("underloaded goodput %.0f/s, want ~50000/s (offered)", lowGood)
	}
	if highGood > 1000000 {
		t.Errorf("overloaded goodput %.0f/s tracks a 2M/s offered rate — no saturation", highGood)
	}
	if highP99 < 4*lowP99 {
		t.Errorf("p99 %v at 40x load vs %v underloaded — queueing delay missing", highP99, lowP99)
	}
}

// TestOpenContentionCostSeparatesPolicies pins the open-system result the
// subsystem was built to demonstrate: with a nonzero ContentionCost (the
// contended-unpark round trip), restricted's admission gate — which parks
// surplus threads without the probe-firing slow path — sustains higher
// goodput past the saturation knee than fifo, which pays the charge on
// every contended acquire. With the cost at zero the disciplines tie.
func TestOpenContentionCostSeparatesPolicies(t *testing.T) {
	spec := openServer()
	spec.SharedLocks = 1
	spec.LockOpsPerUnit = 2
	spec.LockHold = 2 * sim.Microsecond
	spec.UnitCompute = 20 * sim.Microsecond
	spec.ContentionCost = 5 * sim.Microsecond
	goodput := func(policy string) float64 {
		cfg := openCfg(traffic.ProcessPoisson, 400000) // far past the knee
		cfg.Threads = 16
		cfg.LockPolicy = policy
		cfg.Traffic.Timeout = 2 * sim.Millisecond
		res, err := Run(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return checkOpenInvariants(t, res).GoodputPerSec(res.TotalTime)
	}
	fifo, restricted := goodput("fifo"), goodput("restricted")
	if restricted < 1.2*fifo {
		t.Errorf("restricted goodput %.0f/s vs fifo %.0f/s — admission control is not retaining goodput under overload", restricted, fifo)
	}
}
