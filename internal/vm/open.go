package vm

import (
	"javasim/internal/metrics"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/traffic"
)

// Open-system execution model (Config.Traffic)
//
// The closed loop runs N mutators that iterate over a fixed work pool;
// the open system turns the same mutators into a server pool draining a
// request queue fed by an arrival process. A request's lifecycle is
// arrival -> queue -> dispatch onto an idle server thread -> unit
// execution (the existing interpreter, including the accept-queue lock)
// -> completion, or abandonment when its queue wait exceeds the
// admission timeout. Arrivals are simulation events on the same virtual
// clock as everything else, drawn from a forked RNG stream, so open
// runs stay bit-for-bit reproducible per seed.
//
// Idle servers sit in a distinct state (stIdleOpen): like every parked
// state it does not block a stop-the-world safepoint census, but unlike
// stGCWait it is not resumed by resumeWorld — idle servers wake only
// when a request is dispatched to them.

// arrivalStreamLabel forks the arrival process's RNG stream off the
// run seed, decorrelated from the workload's unit-generation stream.
const arrivalStreamLabel = 0xA221<<32 | 0x051A

// openState is the open-system driver's run state.
type openState struct {
	proc traffic.Process
	rng  *sim.Rand

	arrivalsLeft int
	arriveFn     func() // pre-bound openArrive

	// queue holds arrival timestamps FIFO; head indexes the next entry.
	// The slice compacts when the head passes half the backing array.
	queue []sim.Time
	head  int

	// idle is the stack of parked servers; committed counts servers
	// woken for a dispatch that have not yet reached their dequeue, so
	// arrivals never wake more servers than there are queued requests.
	idle      []*mutator
	committed int

	stats *traffic.Stats

	// Time-weighted queue-depth accounting and the decimated depth log.
	lastChange    sim.Time
	depthIntegral float64
	depthMax      int
	logEvery      int64
	changes       int64
}

// setupOpen installs the open-system driver and schedules the first
// arrival. proc is the resolved arrival process.
func (v *vm) setupOpen(proc traffic.Process) {
	requests := v.cfg.Traffic.Requests
	if requests == 0 {
		requests = v.spec.TotalUnits
	}
	o := &openState{
		proc:         proc,
		rng:          sim.NewRand(v.cfg.Seed).Fork(arrivalStreamLabel),
		arrivalsLeft: requests,
		stats: &traffic.Stats{
			Process:    v.cfg.Traffic.Process,
			RatePerSec: v.cfg.Traffic.RatePerSec,
			Latency:    metrics.NewHistogram(v.spec.Name + "-latency"),
			QueueWait:  metrics.NewHistogram(v.spec.Name + "-queue-wait"),
		},
		logEvery: int64(requests/256) + 1,
	}
	o.arriveFn = v.openArrive
	v.openSt = o
	v.sim.Schedule(proc.Next(0, o.rng), o.arriveFn)
}

// qlen returns the number of queued (not yet dequeued) requests,
// including entries that will lazily expire at their dequeue.
func (o *openState) qlen() int { return len(o.queue) - o.head }

// noteDepth closes the current depth interval and samples the log.
func (o *openState) noteDepth(now sim.Time) {
	depth := o.qlen()
	o.depthIntegral += float64(depth) * float64(now-o.lastChange)
	o.lastChange = now
	if depth > o.depthMax {
		o.depthMax = depth
	}
	o.changes++
	if o.changes%o.logEvery == 0 {
		o.stats.QueueLog = append(o.stats.QueueLog, traffic.QueueSample{Time: now, Depth: depth})
	}
}

// push enqueues an arrival timestamp.
func (o *openState) push(at sim.Time) {
	o.noteDepth(at)
	o.queue = append(o.queue, at)
}

// pop dequeues the oldest arrival timestamp.
func (o *openState) pop(now sim.Time) sim.Time {
	o.noteDepth(now)
	at := o.queue[o.head]
	o.head++
	if o.head > len(o.queue)/2 && o.head > 64 {
		o.queue = append(o.queue[:0], o.queue[o.head:]...)
		o.head = 0
	}
	return at
}

// openArrive is the arrival event: record the request, enqueue it,
// schedule the next arrival, and dispatch an idle server if one exists.
func (v *vm) openArrive() {
	if v.finished {
		return
	}
	o := v.openSt
	now := v.sim.Now()
	o.stats.Offered++
	o.arrivalsLeft--
	o.push(now)
	if o.arrivalsLeft > 0 {
		v.sim.Schedule(o.proc.Next(now, o.rng), o.arriveFn)
	}
	v.openDispatch()
}

// openDispatch wakes idle servers, one per queued request that no
// already-woken server is committed to. During a pending stop-the-world
// it does nothing; resumeWorld re-dispatches once the world restarts.
func (v *vm) openDispatch() {
	o := v.openSt
	for len(o.idle) > 0 && o.qlen() > o.committed && !v.stwPending {
		m := o.idle[len(o.idle)-1]
		o.idle = o.idle[:len(o.idle)-1]
		o.committed++
		m.openWoken = true
		v.setMutatorState(m, stRunning)
		v.sched.Unblock(m.th)
		v.sched.Submit(m.th, 0, m.fetchFn)
	}
}

// openFetch is the open-mode fetchFn: honor a pending safepoint, then
// dequeue under the accept-queue lock (when the workload has one — the
// contended front door of a real server).
func (v *vm) openFetch(m *mutator) {
	if v.stwPending && v.affectedBySTW(m) {
		v.parkForGC(m, m.fetchFn)
		return
	}
	if v.queueLock != nil {
		v.acquireThen(m, v.queueLock, v.spec.QueueLockHold, m.openTakeFn)
		return
	}
	v.openTake(m)
}

// openTake dequeues the next live request for m, lazily expiring
// requests whose queue wait exceeded the admission timeout, and starts
// interpreting its unit. An empty queue parks the server.
func (v *vm) openTake(m *mutator) {
	o := v.openSt
	if m.openWoken {
		m.openWoken = false
		o.committed--
	}
	now := v.sim.Now()
	timeout := v.cfg.Traffic.Timeout
	for o.qlen() > 0 {
		at := o.pop(now)
		if timeout > 0 && now-at > timeout {
			o.stats.TimedOut++
			continue
		}
		o.stats.QueueWait.Add(int64(now - at))
		m.reqArrival = at
		m.unit = v.run.TakeOpen(m.idx)
		m.opIdx = 0
		v.step(m)
		return
	}
	v.openIdle(m)
}

// openComplete records a served request's latency and fetches the next.
func (v *vm) openComplete(m *mutator) {
	o := v.openSt
	o.stats.Completed++
	o.stats.Latency.Add(int64(v.sim.Now() - m.reqArrival))
	v.openFetch(m)
}

// openIdle parks a server with no work. The last server to go idle
// after the arrival process is exhausted ends the run.
func (v *vm) openIdle(m *mutator) {
	o := v.openSt
	v.setMutatorState(m, stIdleOpen)
	o.idle = append(o.idle, m)
	v.sched.Block(m.th)
	if o.arrivalsLeft == 0 && o.qlen() == 0 && len(o.idle) == len(v.mutators) {
		v.openFinish()
		return
	}
	// An idling server may be the last affected mutator a pending
	// safepoint was waiting on.
	v.maybeStartGC()
}

// openFinish terminates the server pool and closes the run.
func (v *vm) openFinish() {
	now := v.sim.Now()
	for _, m := range v.mutators {
		v.setMutatorState(m, stDone)
		v.aliveCount--
		v.emitTrace(trace.Event{Kind: trace.ThreadEnd, Time: now, Thread: int32(m.idx)})
		v.sched.Terminate(m.th)
	}
	v.openSt.idle = v.openSt.idle[:0]
	v.finishRun()
}

// openResult finalizes the traffic stats for the Result record.
func (o *openState) openResult(end sim.Time) *traffic.Stats {
	// Close the last depth interval; the queue is empty at run end.
	o.depthIntegral += float64(o.qlen()) * float64(end-o.lastChange)
	o.stats.QueueDepthMax = o.depthMax
	if end > 0 {
		o.stats.QueueDepthMean = o.depthIntegral / float64(end)
	}
	return o.stats
}
