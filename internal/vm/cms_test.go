package vm

import (
	"testing"

	"javasim/internal/gc"
	"javasim/internal/workload"
)

// cmsSpec is a configuration with enough old-generation pressure to
// trigger concurrent cycles: the server workload's session cache under a
// tight heap.
func cmsSpec() workload.Spec {
	spec, _ := workload.Lookup("server")
	return spec.Scale(0.5)
}

func TestConcurrentCycleRuns(t *testing.T) {
	res, err := Run(cmsSpec(), Config{
		Threads: 32, Seed: 42, HeapFactor: 2,
		GC: gc.Config{Concurrent: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConcCycles == 0 {
		t.Fatal("no concurrent cycle completed despite old-gen pressure")
	}
	if res.ConcGCCPUTime <= 0 {
		t.Error("concurrent cycles ran but consumed no CPU")
	}
	if res.HeapStats.SweepCommits != res.ConcCycles {
		t.Errorf("sweep commits %d != cycles %d", res.HeapStats.SweepCommits, res.ConcCycles)
	}
	// Initial-mark and remark pauses are part of the recorded stop-the-
	// world time.
	if res.GCStats.ConcPauseTime <= 0 {
		t.Error("no initial-mark/remark pause time recorded")
	}
	// Conservation still holds.
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("lifespan conservation broken in concurrent mode")
	}
}

func TestConcurrentModeDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(cmsSpec(), Config{
			Threads: 16, Seed: 7, HeapFactor: 2,
			GC: gc.Config{Concurrent: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.ConcCycles != b.ConcCycles ||
		a.ConcGCCPUTime != b.ConcGCCPUTime {
		t.Error("concurrent mode nondeterministic across identical seeds")
	}
}

// TestConcurrentAvoidsFullGC: in a configuration where the throughput
// collector is forced into stop-the-world full collections, the
// concurrent collector should reclaim the old generation in the
// background and reduce (or eliminate) them.
func TestConcurrentAvoidsFullGC(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.5)
	base, err := Run(spec, Config{Threads: 48, Seed: 42, HeapFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(spec, Config{Threads: 48, Seed: 42, HeapFactor: 2,
		GC: gc.Config{Concurrent: true, TriggerRatio: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if base.GCStats.FullCount == 0 {
		t.Skip("baseline had no full collections at this scale; nothing to avoid")
	}
	if conc.GCStats.FullCount >= base.GCStats.FullCount && conc.ConcCycles == 0 {
		t.Errorf("concurrent mode: %d full GCs (baseline %d) and no cycles ran",
			conc.GCStats.FullCount, base.GCStats.FullCount)
	}
	t.Logf("full GCs: throughput=%d concurrent=%d (cycles=%d, conc CPU=%v)",
		base.GCStats.FullCount, conc.GCStats.FullCount, conc.ConcCycles, conc.ConcGCCPUTime)
}

// TestConcurrentModeFailure: under extreme pressure the concurrent
// collector falls back to a compacting full collection and the run still
// completes — CMS's concurrent-mode-failure path.
func TestConcurrentModeFailure(t *testing.T) {
	spec := cmsSpec()
	res, err := Run(spec, Config{
		Threads: 32, Seed: 42, HeapFactor: 1.4,
		GC: gc.Config{Concurrent: true},
	})
	if err != nil {
		t.Skipf("run failed outright under extreme pressure: %v", err)
	}
	if res.GCStats.FullCount == 0 {
		t.Skip("no fallback full collection at this pressure")
	}
	// After a fallback, fragmentation was compacted away at least once and
	// the run finished consistently.
	if res.Lifespans.Total() != res.ObjectsAllocated {
		t.Error("conservation broken after concurrent mode failure")
	}
}

func TestConcurrentOffByDefault(t *testing.T) {
	res, err := Run(cmsSpec(), Config{Threads: 8, Seed: 1, HeapFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ConcCycles != 0 || res.ConcGCCPUTime != 0 {
		t.Error("concurrent machinery active without GC.Concurrent")
	}
}
