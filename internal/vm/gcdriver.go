package vm

import (
	"errors"
	"fmt"

	"javasim/internal/gc"
	"javasim/internal/heap"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/workload"
)

// allocate performs one OpAlloc for m: TLAB fast path, direct eden
// allocation for large objects, and the allocation-failure path that
// requests a collection. It returns ok=false when the mutator was parked
// for GC — the post-GC resume retries the same op. On bandwidth-limited
// machines, stall is the memory-channel backlog the mutator must absorb
// before continuing; traffic is billed at heap-crossing granularity (TLAB
// refills and TLAB-bypassing allocations), so the TLAB bump-pointer fast
// path — including fused op runs, which never refill — stays free.
func (v *vm) allocate(m *mutator, op *workload.Op) (stall sim.Time, ok bool) {
	size := int64(op.Size)
	pretenure := v.pret.enabled && v.pret.shouldPretenure(op.Site)
	if pretenure {
		if !v.heap.AllocOld(size) {
			// Only a compacting collection can make room in the old
			// generation.
			v.requestFullGC(m)
			return 0, false
		}
		stall = v.billAllocTraffic(m, size)
	} else if tlabSize := v.heap.Config().TLABSize; size*4 > tlabSize {
		// Large object: straight into eden, bypassing the TLAB.
		if !v.heap.AllocDirect(m.compartment, size) {
			v.requestGC(m)
			return 0, false
		}
		stall = v.billAllocTraffic(m, size)
	} else if !m.tlab.Alloc(size) {
		if !v.heap.RefillTLAB(&m.tlab, m.compartment) {
			v.requestGC(m)
			return 0, false
		}
		if !m.tlab.Alloc(size) {
			panic("vm: allocation exceeds a fresh TLAB") // excluded by the size*4 check
		}
		stall = v.billAllocTraffic(m, v.tlabSize)
	}
	m.gcRetries = 0
	v.commitAlloc(m, op, pretenure)
	return stall, true
}

// billAllocTraffic charges bytes of mutator allocation traffic against
// the socket of m's NUMA home (its first-dispatch socket; socket 0 before
// the first dispatch). On machines without a bandwidth ceiling it is a
// cheap no-op.
func (v *vm) billAllocTraffic(m *mutator, bytes int64) sim.Time {
	if !v.mach.HasBandwidthLimit() {
		return 0
	}
	socket := m.th.HomeSocket()
	if socket < 0 {
		socket = 0
	}
	return v.mach.BillTraffic(socket, bytes, v.sim.Now())
}

// billGCCopy charges the collector's evacuation traffic, spread evenly
// across the sockets the run spans (parallel GC workers copy from every
// node), and returns the slowest socket's stall — the pause extension the
// whole stopped world observes.
func (v *vm) billGCCopy(bytes int64) sim.Time {
	if !v.mach.HasBandwidthLimit() || bytes <= 0 {
		return 0
	}
	now := v.sim.Now()
	share := bytes / int64(v.spanned)
	rem := bytes - share*int64(v.spanned)
	var worst sim.Time
	for s := 0; s < v.spanned; s++ {
		b := share
		if s == 0 {
			b += rem
		}
		if st := v.mach.BillTraffic(s, b, now); st > worst {
			worst = st
		}
	}
	return worst
}

// commitAlloc performs the bookkeeping of a successful allocation whose
// space is already reserved: the registry record, generation tracking,
// the trace event, and the death schedule (including any deaths due at
// this allocation count). It is shared by allocate and the fused-op path,
// which reserves a whole run of TLAB allocations up front.
func (v *vm) commitAlloc(m *mutator, op *workload.Op, pretenure bool) {
	now := v.sim.Now()
	id := v.reg.Alloc(op.Size, int32(m.idx), now)
	if v.pret.enabled {
		v.pret.recordAlloc(id, op.Site)
	}
	if pretenure {
		v.pret.pretenured++
		v.gc.OnAllocOld(id)
	} else {
		v.gc.OnAlloc(id, m.compartment)
	}
	v.emitTrace(trace.Event{
		Kind: trace.Alloc, Time: now, Thread: int32(m.idx),
		Object: uint32(id), Size: op.Size, Clock: v.reg.Clock(),
	})

	// Schedule the object's death, then retire anything due at this
	// allocation count.
	m.allocCount++
	switch op.Death.Mode {
	case workload.DieAfterOwnAllocs:
		bucket := (m.allocCount + int64(op.Death.N)) % int64(len(m.allocRing))
		m.allocRing[bucket] = append(m.allocRing[bucket], id)
	case workload.DieAtUnitsAhead:
		bucket := (m.unitCount + int64(op.Death.N)) % int64(len(m.unitRing))
		m.unitRing[bucket] = append(m.unitRing[bucket], id)
	case workload.Immortal:
		// Dies at program exit.
	}
	due := m.allocCount % int64(len(m.allocRing))
	for _, dead := range m.allocRing[due] {
		v.kill(dead)
	}
	m.allocRing[due] = m.allocRing[due][:0]
}

// requestGC initiates (or joins) a stop-the-world collection request and
// parks the requesting mutator; its retry re-enters step at the failed op.
func (v *vm) requestGC(m *mutator) {
	m.gcRetries++
	if m.gcRetries > 8 {
		v.fail(fmt.Errorf("vm: %s thread %d cannot allocate even after repeated collections — OutOfMemoryError "+
			"(comp=%d edenUsed=%d/%d survivor=%d/%d old=%d/%d tlab=%d stw=%v queue=%v)",
			v.spec.Name, m.idx, m.compartment,
			v.heap.EdenUsed(m.compartment), v.heap.EdenSliceSize(),
			v.heap.SurvivorUsed(), v.heap.SurvivorSize(),
			v.heap.OldUsed(), v.heap.OldSize(),
			v.heap.Config().TLABSize, v.stwPending, v.gcQueue))
		return
	}
	// Queue the compartment so back-to-back collections of different
	// compartments cannot starve a full one: every pending request is
	// served in order after the current stop completes.
	if !(v.stwPending && v.stwComp == m.compartment) && !v.gcQueued(m.compartment) {
		v.gcQueue = append(v.gcQueue, m.compartment)
	}
	if !v.stwPending {
		v.startNextGC(m)
	} else if v.stwRequester == nil && v.stwComp == m.compartment {
		v.stwRequester = m
	}
	v.parkForGC(m, m.stepFn)
}

// requestFullGC is the pretenuring allocation-failure path: the old
// generation itself is full, so only a global, compacting collection
// helps. Any pending request escalates to global scope.
func (v *vm) requestFullGC(m *mutator) {
	m.gcRetries++
	if m.gcRetries > 8 {
		v.fail(fmt.Errorf("vm: %s thread %d cannot pretenure even after full collections — OutOfMemoryError",
			v.spec.Name, m.idx))
		return
	}
	if !v.stwPending {
		if !v.gcQueued(m.compartment) {
			v.gcQueue = append(v.gcQueue, m.compartment)
		}
		v.startNextGC(m)
	}
	v.stwGlobal = true
	v.stwWantFull = true
	v.parkForGC(m, m.stepFn)
}

func (v *vm) gcQueued(comp int) bool {
	for _, c := range v.gcQueue {
		if c == comp {
			return true
		}
	}
	return false
}

// startNextGC initiates a stop for the head of the compartment queue.
// requester, when known, is resumed first after the collection.
func (v *vm) startNextGC(requester *mutator) {
	v.stwPending = true
	v.stwGlobal = v.heap.Compartments() == 1
	v.stwComp = v.gcQueue[0]
	v.gcQueue = v.gcQueue[1:]
	v.stwRequester = requester
	v.stwStart = v.sim.Now()
	// Waking the scheduler lets phase-gated threads reach their safepoint
	// polls instead of waiting out the phase.
	v.sched.Kick()
}

// affectedBySTW reports whether the pending collection requires m to park:
// everyone for a global stop, otherwise only the collected compartment's
// mutators — the pause isolation that motivates the compartmentalized
// heap (paper §IV, suggestion 2).
func (v *vm) affectedBySTW(m *mutator) bool {
	return v.stwGlobal || m.compartment == v.stwComp
}

// maybeStartGC runs the pending collection once every affected mutator
// has reached a safepoint (parked on a lock, a barrier, the GC itself, or
// terminated).
func (v *vm) maybeStartGC() {
	if !v.stwPending || v.stwCollecting {
		return
	}
	for _, m := range v.mutators {
		if m.state == stRunning && v.affectedBySTW(m) {
			return
		}
	}
	now := v.sim.Now()
	var total sim.Time
	var copied int64
	if v.stwWantFull {
		v.stwWantFull = false
		fullPause, ferr := v.gc.CollectFull(now)
		if ferr != nil {
			v.fail(fmt.Errorf("vm: %s forced full collection failed: %w", v.spec.Name, ferr))
			return
		}
		v.cmsAbort()
		v.emitGCTrace(gc.Full, now, fullPause.Duration)
		total += fullPause.Duration
		copied += fullPause.CopiedBytes + fullPause.PromotedBytes
	}
	pause, err := v.gc.CollectMinor(v.stwComp, now)
	if errors.Is(err, heap.ErrOldGenFull) {
		if !v.stwGlobal {
			// A full collection needs the whole world stopped; escalate
			// the scope and wait for the newly affected mutators. The
			// time-to-safepoint window keeps running until the collection
			// actually starts.
			v.stwGlobal = true
			v.maybeStartGC()
			return
		}
		fullPause, ferr := v.gc.CollectFull(now)
		if ferr != nil {
			v.fail(fmt.Errorf("vm: %s full collection failed: %w", v.spec.Name, ferr))
			return
		}
		// A compacting collection supersedes any in-flight concurrent
		// cycle (CMS's "concurrent mode failure" recovery).
		v.cmsAbort()
		v.emitGCTrace(gc.Full, now, fullPause.Duration)
		total += fullPause.Duration
		copied += fullPause.CopiedBytes + fullPause.PromotedBytes
		pause, err = v.gc.CollectMinor(v.stwComp, now)
	}
	if err != nil {
		v.fail(fmt.Errorf("vm: %s minor collection failed: %w", v.spec.Name, err))
		return
	}
	v.emitGCTrace(gc.Minor, now, pause.Duration)
	total += pause.Duration
	copied += pause.CopiedBytes + pause.PromotedBytes
	if v.cfg.GC.Concurrent {
		v.cmsMaybeTrigger()
		total += v.cmsOnMinorPause(now)
	}
	// Evacuation and promotion move bytes through the memory channels; on
	// bandwidth-limited machines the backlog extends the pause.
	total += v.billGCCopy(copied)

	ttsp := now - v.stwStart
	v.safepointTime += ttsp
	v.gcTime += ttsp + total
	v.heapLog = append(v.heapLog, HeapSample{
		Time:          now,
		OldUsed:       v.heap.OldUsed(),
		LiveBytes:     v.reg.LiveBytes(),
		Fragmentation: v.heap.Fragmentation(),
	})
	// The pause is now in progress: further parks must not re-run the
	// collection or schedule duplicate world resumptions.
	v.stwCollecting = true
	v.sim.Schedule(total, v.resumeWorld)
}

// resumeWorld restarts every safepoint-parked mutator after a collection.
// The allocation-failure requester resumes first so it retries into the
// freshly emptied eden before other threads can exhaust it again.
func (v *vm) resumeWorld() {
	v.stwPending = false
	v.stwCollecting = false
	requester := v.stwRequester
	v.stwRequester = nil
	resumeOne := func(m *mutator) {
		if m.state != stGCWait {
			return
		}
		v.setMutatorState(m, stRunning)
		v.sched.Unblock(m.th)
		resume := m.resume
		m.resume = nil
		v.sched.Submit(m.th, 0, resume)
	}
	if requester != nil {
		resumeOne(requester)
	}
	for _, m := range v.mutators {
		if m != requester {
			resumeOne(m)
		}
	}
	// Phase-gated threads that ran under the safepoint override are gated
	// again; re-dispatching idle cores re-arms their phase wakeups.
	v.sched.Kick()
	// Serve the next queued compartment, if any; the just-resumed threads
	// park again at their next safepoint polls.
	if len(v.gcQueue) > 0 {
		v.startNextGC(nil)
	}
	// Requests that arrived during the pause wait in the queue; hand
	// them to idle servers now that the world is running again (a no-op
	// when another collection is already pending).
	if v.openSt != nil {
		v.openDispatch()
	}
}

func (v *vm) emitGCTrace(kind gc.Kind, start, dur sim.Time) {
	v.emitTrace(trace.Event{Kind: trace.GCStart, Time: start, Clock: v.reg.Clock(), Arg: int64(kind)})
	v.emitTrace(trace.Event{Kind: trace.GCEnd, Time: start, Clock: v.reg.Clock(), Arg: int64(dur)})
}

// fail aborts the run with err.
func (v *vm) fail(err error) {
	v.runErr = err
	v.sim.Stop()
}
