package vm

import (
	"encoding/json"
	"sync"
	"testing"

	"javasim/internal/gc"
	"javasim/internal/workload"
)

func xalanSpecScaled(t *testing.T, scale float64) workload.Spec {
	t.Helper()
	spec, ok := workload.Lookup("xalan")
	if !ok {
		t.Fatal("xalan workload missing")
	}
	return spec.Scale(scale)
}

// TestGCPolicyDeterminism runs every GC policy twice — concurrently, so
// the race detector watches the registry and any policy state — and
// requires byte-identical Results for equal seeds, correctly labeled.
func TestGCPolicyDeterminism(t *testing.T) {
	spec := xalanSpecScaled(t, 0.03)
	for _, policy := range gc.PolicyNames() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Threads: 8, Seed: 7, HeapFactor: 1.6, GCPolicy: policy}
			results := make([]*Result, 2)
			var wg sync.WaitGroup
			for i := range results {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := Run(spec, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					results[i] = res
				}(i)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			a, err := json.Marshal(results[0])
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(results[1])
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Errorf("same seed + gc policy %s produced different Results", policy)
			}
			if results[0].GCPolicy != policy {
				t.Errorf("result labeled %q, want %q", results[0].GCPolicy, policy)
			}
		})
	}
}

// TestGCPolicyDefaultIsByteIdentical pins the tentpole's compatibility
// contract: an explicit stw-serial selection and the zero-value config
// produce the same Result, byte for byte.
func TestGCPolicyDefaultIsByteIdentical(t *testing.T) {
	spec := xalanSpecScaled(t, 0.03)
	implicit, err := Run(spec, Config{Threads: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(spec, Config{Threads: 8, Seed: 42, GCPolicy: gc.PolicyStwSerial})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(implicit)
	b, _ := json.Marshal(explicit)
	if string(a) != string(b) {
		t.Error("explicit stw-serial diverged from the default configuration")
	}
	if implicit.GCPolicy != gc.PolicyStwSerial {
		t.Errorf("default run labeled %q, want stw-serial", implicit.GCPolicy)
	}
}

// TestGCPolicyConfigErrors checks that bad GC-policy configurations fail
// fast as configuration errors, not mid-simulation panics.
func TestGCPolicyConfigErrors(t *testing.T) {
	spec := xalanSpecScaled(t, 0.03)
	if _, err := Run(spec, Config{Threads: 4, GCPolicy: "no-such-gc"}); err == nil {
		t.Error("unknown gc policy accepted")
	}
	cfg := Config{Threads: 4, GCPolicy: gc.PolicyStwSerial}
	cfg.GC.Concurrent = true
	if _, err := Run(spec, cfg); err == nil {
		t.Error("GC.Concurrent + stw-serial conflict accepted")
	}
}

// TestLegacyConcurrentFlagMapsToPolicy checks backward compatibility:
// the pre-registry GC.Concurrent flag resolves to — and is labeled as —
// the concurrent policy.
func TestLegacyConcurrentFlagMapsToPolicy(t *testing.T) {
	spec := xalanSpecScaled(t, 0.03)
	legacy := Config{Threads: 8, Seed: 42, HeapFactor: 1.6}
	legacy.GC.Concurrent = true
	legacy.GC.TriggerRatio = 0.5
	a, err := Run(spec, legacy)
	if err != nil {
		t.Fatal(err)
	}
	if a.GCPolicy != gc.PolicyConcurrent {
		t.Errorf("legacy concurrent run labeled %q", a.GCPolicy)
	}
	modern := Config{Threads: 8, Seed: 42, HeapFactor: 1.6, GCPolicy: gc.PolicyConcurrent}
	modern.GC.TriggerRatio = 0.5
	b, err := Run(spec, modern)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Error("legacy GC.Concurrent flag and GCPolicy=concurrent diverged")
	}
}

// TestCompartmentPolicyLaysOutNUMAHeap checks the compartment policy's
// observable shape on the paper's machine: threads group per socket, the
// heap gets one compartment per spanned socket, and pauses shorten while
// the collection count rises (the §IV suggestion-2 signature), with the
// NUMA copy discount visible in the per-phase breakdown.
func TestCompartmentPolicyLaysOutNUMAHeap(t *testing.T) {
	spec := xalanSpecScaled(t, 0.1)
	base, err := Run(spec, Config{Threads: 24, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(spec, Config{Threads: 24, Seed: 42, GCPolicy: gc.PolicyCompartment})
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.GCPauses) <= len(base.GCPauses) {
		t.Errorf("compartment collections %d <= baseline %d — eden was not sliced",
			len(comp.GCPauses), len(base.GCPauses))
	}
	maxPause := func(r *Result) (m int64) {
		for _, p := range r.GCPauses {
			if int64(p.Duration) > m {
				m = int64(p.Duration)
			}
		}
		return m
	}
	if maxPause(comp) >= maxPause(base) {
		t.Errorf("compartment max pause %d >= baseline %d — no pause isolation", maxPause(comp), maxPause(base))
	}
	// 24 threads span 2 sockets: minor pauses must name compartments 0
	// and 1, nothing else.
	seen := map[int]bool{}
	for _, p := range comp.GCPauses {
		if p.Kind == gc.Minor {
			seen[p.Compartment] = true
		}
	}
	if !seen[0] || !seen[1] || len(seen) != 2 {
		t.Errorf("minor collections hit compartments %v, want exactly {0, 1}", seen)
	}
}

// TestResultRecordsGCPhases checks the per-phase GC CPU accounting: the
// phase sums reconcile exactly with the recorded pauses.
func TestResultRecordsGCPhases(t *testing.T) {
	spec := xalanSpecScaled(t, 0.05)
	res, err := Run(spec, Config{Threads: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var want gc.Breakdown
	for _, p := range res.GCPauses {
		want.Setup += p.Phases.Setup
		want.Scan += p.Phases.Scan
		want.Copy += p.Phases.Copy
	}
	if res.GCPhases != want {
		t.Errorf("GCPhases = %+v, want %+v", res.GCPhases, want)
	}
	if res.GCPhases.Total() == 0 {
		t.Error("run collected nothing — phase accounting untested")
	}
}

// TestHeapSizingOverrides checks NewRatio/SurvivorRatio reach the heap: a
// larger NewRatio shrinks the young generation, forcing more minor
// collections on the same workload.
func TestHeapSizingOverrides(t *testing.T) {
	spec := xalanSpecScaled(t, 0.05)
	base, err := Run(spec, Config{Threads: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Run(spec, Config{Threads: 8, Seed: 42, NewRatio: 7, SurvivorRatio: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tight.GCStats.MinorCount <= base.GCStats.MinorCount {
		t.Errorf("NewRatio=7 minor collections %d <= default %d — override did not reach the heap",
			tight.GCStats.MinorCount, base.GCStats.MinorCount)
	}
}
