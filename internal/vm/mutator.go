package vm

import (
	"javasim/internal/locks"
	"javasim/internal/objmodel"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/workload"
)

// Mutator execution model
//
// Every function below runs inside a scheduler callback for the mutator's
// thread (or resumes one via Submit), so "now" is the virtual time at which
// the previous CPU segment ended. Each path must end the callback in one of
// three ways: submit the next segment (continuation), park the thread
// (lock wait, barrier, safepoint), or terminate it. Safepoint polls sit at
// segment boundaries — between ops — which is exactly where a real JVM
// polls, and gives stop-the-world requests a realistic time-to-safepoint.

// pollCost is the CPU charge for checking a work source and finding the
// phase boundary (a failed steal/poll).
const pollCost = 80 * sim.Nanosecond

// barrierHold is the critical-section length for barrier bookkeeping.
const barrierHold = 120 * sim.Nanosecond

// barrierPolls is how many times an arriving thread re-checks the work
// source before parking at the phase barrier.
const barrierPolls = 3

// fetchWork drives a mutator that is between units: it honors pending
// stop-the-world requests, phase barriers, and the work distribution, then
// starts interpreting the next unit.
func (v *vm) fetchWork(m *mutator) {
	if v.stwPending && v.affectedBySTW(m) {
		v.parkForGC(m, m.fetchFn)
		return
	}
	if v.atPhaseBoundary() {
		v.enterBarrier(m)
		return
	}
	if v.queueLock != nil {
		// Shared work queue: dequeue under the queue lock.
		v.acquireThen(m, v.queueLock, v.spec.QueueLockHold, m.takeUnitFn)
		return
	}
	v.takeUnit(m)
}

// atPhaseBoundary reports whether the global unit counter has crossed into
// barrier territory for the current phase. No barrier gates the final
// phase — threads simply drain the remaining work and terminate.
func (v *vm) atPhaseBoundary() bool {
	if v.spec.Phases <= 0 || v.currentPhase >= v.spec.Phases-1 {
		return false
	}
	taken := v.spec.TotalUnits - v.run.Remaining()
	return taken >= (v.currentPhase+1)*v.phaseUnits
}

// takeUnit draws the next unit for m, or terminates the thread when its
// work is exhausted.
func (v *vm) takeUnit(m *mutator) {
	unit, ok := v.run.Take(m.idx)
	if !ok {
		v.finishMutator(m)
		return
	}
	m.unit = unit
	m.opIdx = 0
	v.step(m)
}

// step interprets the current unit from m.opIdx.
func (v *vm) step(m *mutator) {
	if v.stwPending && v.affectedBySTW(m) {
		v.parkForGC(m, m.stepFn)
		return
	}
	if m.opIdx >= len(m.unit.Ops) {
		v.completeUnit(m)
		return
	}
	// Fast path: collapse a run of non-blocking ops into one segment when
	// no other simulation event can intervene (see fuse.go).
	if v.fuseOK {
		if d, ok := v.fuseRun(m); ok {
			v.sched.Submit(m.th, d, m.stepFn)
			return
		}
	}
	op := &m.unit.Ops[m.opIdx]
	switch op.Kind {
	case workload.OpCompute:
		m.opIdx++
		v.sched.Submit(m.th, op.Dur, m.stepFn)

	case workload.OpAlloc:
		stall, ok := v.allocate(m, op)
		if !ok {
			// Allocation failure parked the mutator for GC; the retry
			// re-enters step at the same op.
			return
		}
		m.opIdx++
		// A saturated memory channel stretches the allocation's segment.
		v.sched.Submit(m.th, op.Dur+stall, m.stepFn)

	case workload.OpAcquire:
		mon := v.shared[op.Lock]
		m.opIdx++
		v.acquireOwned(m, mon, m.stepFn)

	case workload.OpRelease:
		mon := v.shared[op.Lock]
		v.releaseMonitor(m, mon)
		m.opIdx++
		v.step(m)

	default:
		panic("vm: unknown op kind")
	}
}

// completeUnit retires the objects scheduled to die at this unit's end and
// moves on.
func (v *vm) completeUnit(m *mutator) {
	bucket := m.unitCount % int64(len(m.unitRing))
	for _, id := range m.unitRing[bucket] {
		v.kill(id)
	}
	m.unitRing[bucket] = m.unitRing[bucket][:0]
	m.unitCount++
	if v.openSt != nil {
		v.openComplete(m)
		return
	}
	v.fetchWork(m)
}

// finishMutator retires a drained mutator and, when it is the last one,
// either starts the next iteration or ends the run. Between iterations the
// thread parks rather than terminating, so it can be revived.
func (v *vm) finishMutator(m *mutator) {
	lastIteration := v.iteration+1 >= v.cfg.Iterations
	v.setMutatorState(m, stDone)
	v.aliveCount--
	v.emitTrace(trace.Event{Kind: trace.ThreadEnd, Time: v.sim.Now(), Thread: int32(m.idx)})
	if lastIteration {
		v.sched.Terminate(m.th)
	} else {
		v.sched.Block(m.th)
	}
	if v.aliveCount == 0 {
		if lastIteration {
			v.finishRun()
		} else {
			v.startNextIteration()
		}
		return
	}
	// A finishing thread may complete a barrier rendezvous (everyone
	// else already waits) or a pending safepoint.
	if v.barArrived > 0 && v.barArrived == v.aliveCount {
		v.releaseBarrier(nil)
	}
	v.maybeStartGC()
}

// finishRun retires every still-live object at the final allocation clock
// (as Elephant Tracks does at program exit) and stamps the end time.
func (v *vm) finishRun() {
	v.recordIteration()
	v.finished = true
	v.endTime = v.sim.Now()
	v.sim.Cancel(v.guardEv)
	v.reg.ForEachLive(func(id objmodel.ID, _ *objmodel.Object) { v.kill(id) })
}

// setMutatorState transitions m and maintains the running/safepoint census.
func (v *vm) setMutatorState(m *mutator, s mutatorState) {
	if m.state == s {
		return
	}
	if m.state == stRunning {
		v.runningCount--
	}
	if s == stRunning {
		v.runningCount++
	}
	m.state = s
}

// --- Lock helpers -----------------------------------------------------

// acquireThen takes mon for m (blocking on contention), holds it for hold
// of CPU time, releases, then continues with then.
//
// The acquisition in flight is described by per-mutator fields (atMon,
// atHold, atThen, acqMon, acqOwned) consumed by pre-bound continuations
// rather than captured by per-call closures: a mutator drives at most one
// acquisition at a time, and while it is parked or holding it executes
// nothing else, so the fields cannot be clobbered before their
// continuation reads them. This keeps the lock round trip — the VM's
// hottest allocation site before this change — closure-free.
func (v *vm) acquireThen(m *mutator, mon *locks.Monitor, hold sim.Time, then func()) {
	m.atMon, m.atHold, m.atThen = mon, hold, then
	v.acquireOwned(m, mon, m.atOwnedFn)
}

// atOwned runs when acquireThen's monitor is held: spend the hold as a
// CPU segment, then release and continue.
func (v *vm) atOwned(m *mutator) {
	v.sched.Submit(m.th, m.atHold, m.atReleaseFn)
}

// atRelease ends acquireThen's critical section. The fields clear before
// the continuation runs, because then() frequently starts the mutator's
// next acquireThen (barrier polling chains).
func (v *vm) atRelease(m *mutator) {
	mon, then := m.atMon, m.atThen
	m.atMon, m.atThen = nil, nil
	v.releaseMonitor(m, mon)
	then()
}

// acquireOwned takes mon for m and calls owned once the monitor is held.
// The contention policy decides the contended path: park until a handoff
// or competitive wakeup, or spin a CPU budget and retry. owned must be a
// pre-bound per-mutator continuation (stepFn, atOwnedFn) so the
// acquisition captures no closure.
func (v *vm) acquireOwned(m *mutator, mon *locks.Monitor, owned func()) {
	m.acqMon, m.acqOwned = mon, owned
	v.attemptAcquire(m, false)
}

// attemptAcquire drives one acquisition attempt (or, with retry set, a
// re-attempt after a spin or competitive wakeup) to rest: acqOwned runs
// once the monitor is held; a Spinning outcome burns the policy's budget
// as a CPU segment — charged to mutator time, like a real busy-wait —
// before retrying; a Parked outcome blocks the thread until
// releaseMonitor either grants it the monitor (resume) or wakes it to
// race (lockRetry). The wake continuations read m.acqMon/m.acqOwned at
// wake time; a parked mutator runs nothing, so they are exactly the
// values this attempt stored.
func (v *vm) attemptAcquire(m *mutator, retry bool) {
	tid := locks.ThreadID(m.idx)
	now := v.sim.Now()
	var out locks.Outcome
	if retry {
		out = v.locks.Retry(m.acqMon, tid, now)
	} else {
		out = v.locks.Acquire(m.acqMon, tid, now)
	}
	switch out.Kind {
	case locks.Acquired:
		m.acqOwned()
	case locks.Spinning:
		v.sched.Submit(m.th, out.Spin, m.spinRetryFn)
	case locks.Parked:
		m.parkedContended = out.Contended
		v.setMutatorState(m, stLockWait)
		m.resume = m.lockResumeFn
		m.lockRetry = m.lockRetryFn
		v.sched.Block(m.th)
		v.maybeStartGC()
	default:
		panic("vm: unknown lock outcome")
	}
}

// lockResume is the granted-handoff wake: the releaser handed m the
// monitor, so the pending owned continuation runs directly.
func (v *vm) lockResume(m *mutator) {
	m.resume, m.lockRetry = nil, nil
	v.setMutatorState(m, stRunning)
	m.acqOwned()
}

// lockRetryWake is the competitive wake: the monitor was freed, not
// handed over, and m must race for it again.
func (v *vm) lockRetryWake(m *mutator) {
	m.resume, m.lockRetry = nil, nil
	v.setMutatorState(m, stRunning)
	v.attemptAcquire(m, true)
}

// releaseMonitor releases mon, wakes the thread the policy handed the
// monitor to (if any), and wakes every competitive waiter to re-attempt.
// A wake that resolves a probe-firing park is charged the workload's
// ContentionCost as a CPU segment ahead of the continuation — the unpark
// round trip of the contended slow path. Parks the policy resolved
// without the probe (restricted's gate grants) wake free, which is how a
// nonzero ContentionCost separates the disciplines in the time domain.
func (v *vm) releaseMonitor(m *mutator, mon *locks.Monitor) {
	h := v.locks.Release(mon, locks.ThreadID(m.idx), v.sim.Now())
	if h.Direct {
		other := v.mutators[int(h.Next)]
		v.sched.Unblock(other.th)
		resume := other.resume
		v.sched.Submit(other.th, v.wakeCost(other), resume)
	}
	for _, w := range h.Retry {
		other := v.mutators[int(w.ID)]
		v.sched.Unblock(other.th)
		retry := other.lockRetry
		v.sched.Submit(other.th, v.wakeCost(other), retry)
	}
}

// wakeCost consumes m's pending slow-path charge: ContentionCost when the
// park being resolved fired the contended-enter probe, zero otherwise.
func (v *vm) wakeCost(m *mutator) sim.Time {
	if !m.parkedContended {
		return 0
	}
	m.parkedContended = false
	return v.spec.ContentionCost
}

// --- Phase barrier ------------------------------------------------------

// enterBarrier models the end-of-phase rendezvous: the thread polls the
// work source a few times (failed steals — counted lock traffic), then
// registers its arrival under the barrier lock. The last arriver executes
// the phase's sequential section and releases everyone.
func (v *vm) enterBarrier(m *mutator) {
	m.barPollsLeft = barrierPolls
	v.barrierPollLoop(m)
}

func (v *vm) barrierPollLoop(m *mutator) {
	if m.barPollsLeft == 0 {
		v.arriveBarrier(m)
		return
	}
	m.barPollsLeft--
	pollLock := v.queueLock
	if pollLock == nil {
		pollLock = v.barrierLock
	}
	v.acquireThen(m, pollLock, pollCost, m.barPollFn)
}

// arriveBarrier registers arrival under the barrier lock.
func (v *vm) arriveBarrier(m *mutator) {
	v.acquireThen(m, v.barrierLock, barrierHold, m.barArriveFn)
}

// barrierArrived runs under the barrier lock: register arrival; the last
// arriver executes the phase's sequential section and releases everyone.
func (v *vm) barrierArrived(m *mutator) {
	v.barArrived++
	if v.barArrived >= v.aliveCount {
		// Last arriver: run the sequential section, then open the
		// next phase.
		if v.seqPerPhase > 0 {
			v.sched.Submit(m.th, v.seqPerPhase, m.barSeqFn)
		} else {
			v.releaseBarrier(m)
		}
		return
	}
	v.setMutatorState(m, stBarrier)
	v.sched.Block(m.th)
	v.maybeStartGC()
}

// releaseBarrier opens the next phase and wakes every waiting thread.
// opener is the last-arriving mutator, or nil when a thread termination
// completed the rendezvous.
func (v *vm) releaseBarrier(opener *mutator) {
	v.currentPhase++
	v.barArrived = 0
	for _, w := range v.mutators {
		if w.state != stBarrier {
			continue
		}
		v.setMutatorState(w, stRunning)
		v.sched.Unblock(w.th)
		v.sched.Submit(w.th, 0, w.fetchFn)
	}
	if opener != nil {
		v.fetchWork(opener)
	}
}

// --- Stop-the-world coordination ---------------------------------------

// parkForGC parks a mutator at a safepoint; onResume re-enters the
// interpreter after the world restarts.
func (v *vm) parkForGC(m *mutator, onResume func()) {
	v.setMutatorState(m, stGCWait)
	m.resume = onResume
	v.sched.Block(m.th)
	v.maybeStartGC()
}
