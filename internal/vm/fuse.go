package vm

import (
	"javasim/internal/sim"
	"javasim/internal/workload"
)

// Op-run fusion.
//
// The interpreter's inner loop costs one scheduler segment — submit,
// slice event, tick, continuation — per workload op. Most ops are plain
// compute bursts or TLAB allocations that cannot block, so whole runs of
// them can collapse into a single summed segment with batched TLAB and
// registry accounting, cutting the kernel's event traffic.
//
// Fusion is only legal when it is provably invisible: the fused execution
// must be bit-identical — same Result, same golden artifacts — to the
// op-by-op one. The proof rests on the kernel's event discipline: every
// state change in the simulation is carried by an event, so if no foreign
// event fires inside the fused window, nothing can observe (or perturb)
// the difference between one summed segment and its op-by-op equivalent.
// sched.ContinuationBudget supplies that window: the time until the
// kernel's next pending event, and only while the thread holds its core
// uncontended at unity placement penalty. On top of the window, each
// fused op must itself be unable to block:
//
//   - OpCompute always qualifies.
//   - OpAlloc qualifies when the object fits the current TLAB without a
//     refill (refills can fail and trigger GC) and is small enough for
//     the TLAB path at all. Pretenuring disables alloc fusion entirely:
//     the learner's site decisions can shift with every object death,
//     including deaths our own run performs.
//   - Lock and phase-boundary ops never fuse.
//
// Op side effects (registry records, death-ring retirement) land at the
// segment's start rather than spread across it. With no foreign event in
// the window, no other thread advances the global allocation clock in
// between, so every Birth/Death clock value — and therefore every
// lifespan — is unchanged; only the virtual-time stamps inside the window
// shift, which is why fusion turns itself off when a TraceSink wants
// exact per-op times. Safepoint fidelity is likewise exact, not
// approximate: a stop-the-world request can only arise from an event, and
// no event precedes the fused segment's completion, so the thread reaches
// its poll at the same virtual instant either way.
//
// maxFuseOps bounds the scan, keeping the fusion attempt O(1)-ish per
// segment and the summed segment within the granularity of the paper's
// op-level CPU model.
const maxFuseOps = 32

// maxFuseWindow caps the budget request; it only binds when the event
// queue is nearly empty (end-of-run drainage), where an unbounded window
// would let the op cap alone decide.
const maxFuseWindow = 10 * sim.Millisecond

// fuseObserver, when non-nil, receives the length of every fused run. It
// is a test hook: the differential tests use it to prove fusion actually
// engaged in the configurations they compare.
var fuseObserver func(ops int)

// fuseRun tries to collapse the run of ops starting at m.opIdx into one
// segment. On success it applies every fused op's bookkeeping, advances
// opIdx past the run, and returns the summed duration with ok true. A
// run of fewer than two ops reports ok false and changes nothing — the
// caller falls back to the op-by-op path.
func (v *vm) fuseRun(m *mutator) (sim.Time, bool) {
	ops := m.unit.Ops
	i := m.opIdx
	if i+1 >= len(ops) {
		return 0, false
	}
	budget := v.sched.ContinuationBudget(m.th, maxFuseWindow)
	if budget <= 0 {
		return 0, false
	}

	// Scan forward while each op provably cannot block and the run stays
	// inside the no-foreign-event window. Two timing constraints: the
	// summed segment must complete by the window's edge (sum <= budget),
	// and every op after the first must have its op-by-op side-effect
	// time strictly inside the window (prefix < budget) — an op whose
	// unfused effects would land exactly on a foreign event's timestamp
	// would be reordered against that event by fusion.
	allocOK := !v.pret.enabled
	tlabLeft := m.tlab.Remaining()
	var sum sim.Time
	n := 0
	for j := i; j < len(ops) && n < maxFuseOps; j++ {
		if n > 0 && sum >= budget {
			break
		}
		op := &ops[j]
		switch op.Kind {
		case workload.OpCompute:
			// Always fusable: pure CPU burn.
		case workload.OpAlloc:
			size := int64(op.Size)
			if !allocOK || size*4 > v.tlabSize || size > tlabLeft {
				goto scanned
			}
			tlabLeft -= size
		default:
			goto scanned
		}
		if sum+op.Dur > budget {
			if op.Kind == workload.OpAlloc {
				tlabLeft += int64(op.Size) // op not taken; undo the probe
			}
			break
		}
		sum += op.Dur
		n++
	}
scanned:
	if n < 2 {
		return 0, false
	}

	// Commit: reserve the whole run's TLAB bytes in one bump, then apply
	// each op's bookkeeping in op order (clock advances, death rings, GC
	// young-list appends all happen in the exact op-by-op sequence).
	if reserved := m.tlab.Remaining() - tlabLeft; reserved > 0 {
		if !m.tlab.Alloc(reserved) {
			panic("vm: fused TLAB reservation exceeds buffer") // excluded by the scan
		}
		m.gcRetries = 0
	}
	for j := i; j < i+n; j++ {
		if op := &ops[j]; op.Kind == workload.OpAlloc {
			v.commitAlloc(m, op, false)
		}
	}
	m.opIdx = i + n
	if fuseObserver != nil {
		fuseObserver(n)
	}
	return sum, true
}
