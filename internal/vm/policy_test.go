package vm

import (
	"encoding/json"
	"sync"
	"testing"

	"javasim/internal/locks"
	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/workload"
)

func serverSpecScaled(t *testing.T, scale float64) workload.Spec {
	t.Helper()
	spec, ok := workload.Lookup("server")
	if !ok {
		t.Fatal("server workload missing")
	}
	return spec.Scale(scale)
}

// TestPolicyDeterminism runs every (lock policy, placement) pair twice —
// concurrently, so the race detector watches the policy state — and
// requires byte-identical Results for equal seeds.
func TestPolicyDeterminism(t *testing.T) {
	spec := serverSpecScaled(t, 0.03)
	for _, policy := range locks.PolicyNames() {
		for _, place := range sched.PlacementNames() {
			policy, place := policy, place
			t.Run(policy+"/"+place, func(t *testing.T) {
				t.Parallel()
				cfg := Config{Threads: 8, Seed: 7, LockPolicy: policy}
				cfg.Sched.Placement = place
				results := make([]*Result, 2)
				var wg sync.WaitGroup
				for i := range results {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						res, err := Run(spec, cfg)
						if err != nil {
							t.Error(err)
							return
						}
						results[i] = res
					}(i)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				a, err := json.Marshal(results[0])
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(results[1])
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Errorf("same seed + policy %s/%s produced different Results", policy, place)
				}
				if results[0].LockPolicy != policy || results[0].Placement != place {
					t.Errorf("result labeled %s/%s, want %s/%s",
						results[0].LockPolicy, results[0].Placement, policy, place)
				}
			})
		}
	}
}

// TestUnknownPolicyNamesAreErrors checks that bad names fail fast as
// configuration errors, not mid-simulation panics.
func TestUnknownPolicyNamesAreErrors(t *testing.T) {
	spec := serverSpecScaled(t, 0.03)
	if _, err := Run(spec, Config{Threads: 4, LockPolicy: "no-such-policy"}); err == nil {
		t.Error("unknown lock policy accepted")
	}
	cfg := Config{Threads: 4}
	cfg.Sched.Placement = "no-such-placement"
	if _, err := Run(spec, cfg); err == nil {
		t.Error("unknown placement accepted")
	}
}

// lockBoundSpec is a GC-free, barrier-free workload whose only blocking
// is monitor parking, so the spin-then-park charge split is observable in
// isolation: no allocation means no collections and no safepoint waits.
func lockBoundSpec() workload.Spec {
	return workload.Spec{
		Name:           "lockbound",
		TotalUnits:     3000,
		UnitCompute:    2 * sim.Microsecond,
		ComputeCV:      0.3,
		Distribution:   workload.Queue,
		SharedLocks:    1,
		LockOpsPerUnit: 2,
		LockHold:       400 * sim.Nanosecond,
		QueueLockHold:  150 * sim.Nanosecond,
	}
}

// TestSpinBudgetAccounting checks the spin-then-park charge split: the
// busy-wait is mutator CPU, so relative to fifo on the same lock-bound
// workload and seed the mutators burn strictly more CPU while spending
// strictly less time blocked — spin time is charged to compute, park time
// to blocking.
func TestSpinBudgetAccounting(t *testing.T) {
	spec := lockBoundSpec()
	run := func(policy string) *Result {
		res, err := Run(spec, Config{Threads: 24, Seed: 11, LockPolicy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if res.GCTime != 0 || len(res.GCPauses) != 0 {
			t.Fatalf("lock-bound workload collected (%v GC) — blocked time is no longer pure lock wait", res.GCTime)
		}
		return res
	}
	fifo := run(locks.PolicyFIFO)
	spin := run(locks.PolicySpinThenPark)

	sum := func(ts []sim.Time) sim.Time {
		var total sim.Time
		for _, v := range ts {
			total += v
		}
		return total
	}
	fifoCPU, spinCPU := sum(fifo.PerThreadCPU), sum(spin.PerThreadCPU)
	if spinCPU <= fifoCPU {
		t.Errorf("spin CPU %v <= fifo CPU %v — spin budgets not charged to mutator compute", spinCPU, fifoCPU)
	}
	fifoBlocked, spinBlocked := sum(fifo.PerThreadBlocked), sum(spin.PerThreadBlocked)
	if spinBlocked >= fifoBlocked {
		t.Errorf("spin blocked %v >= fifo blocked %v — parking should shrink when spins absorb short holds",
			spinBlocked, fifoBlocked)
	}
	// Successful spins never fire the contended-enter probe.
	if spin.LockContentions >= fifo.LockContentions {
		t.Errorf("spin contentions %d >= fifo %d", spin.LockContentions, fifo.LockContentions)
	}
}

// TestRestrictedLowersContentionAtHighThreads is the Dice & Kogan effect
// the plan-level ablation surfaces: at the top of the sweep the
// restricted policy fires far fewer contended-enter probes than fifo,
// while at the cap-sized thread count the two are identical.
func TestRestrictedLowersContentionAtHighThreads(t *testing.T) {
	spec := serverSpecScaled(t, 0.08)
	run := func(policy string, threads int) *Result {
		res, err := Run(spec, Config{Threads: threads, Seed: 42, LockPolicy: policy})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// At 4 threads the circulating set never exceeds the default cap of 4:
	// restricted degenerates to fifo exactly.
	fifoLow := run(locks.PolicyFIFO, 4)
	restrLow := run(locks.PolicyRestricted, 4)
	if fifoLow.LockContentions != restrLow.LockContentions {
		t.Errorf("at 4 threads restricted diverged from fifo: %d vs %d contentions",
			restrLow.LockContentions, fifoLow.LockContentions)
	}
	// At 32 threads the admission gate absorbs the herd.
	fifoHi := run(locks.PolicyFIFO, 32)
	restrHi := run(locks.PolicyRestricted, 32)
	if restrHi.LockContentions >= fifoHi.LockContentions {
		t.Errorf("restricted contentions %d >= fifo %d at 32 threads",
			restrHi.LockContentions, fifoHi.LockContentions)
	}
}

// TestBargingCompletesAndStaysFair ensures the competitive discipline —
// wake-all, race, re-park — drives a contended run to completion with
// every unit executed exactly once.
func TestBargingCompletesAndStaysFair(t *testing.T) {
	spec := serverSpecScaled(t, 0.05)
	res, err := Run(spec, Config{Threads: 16, Seed: 3, LockPolicy: locks.PolicyBarging})
	if err != nil {
		t.Fatal(err)
	}
	var units int64
	for _, u := range res.PerThreadUnits {
		units += u
	}
	if int(units) != spec.TotalUnits {
		t.Errorf("units executed = %d, want %d", units, spec.TotalUnits)
	}
	if res.LockPolicy != locks.PolicyBarging {
		t.Errorf("result policy = %q", res.LockPolicy)
	}
}
