package vm

import (
	"reflect"
	"strings"
	"testing"

	"javasim/internal/machine"
	"javasim/internal/workload"
)

// TestRegistryDefaultMatchesSeedConfig is the differential guard for the
// machine registry: selecting the default model by name, selecting
// nothing at all, and passing the same topology anonymously must all be
// the same simulation, bit for bit, across the whole paper set. Only
// the self-label differs (anonymous configs carry no model name).
func TestRegistryDefaultMatchesSeedConfig(t *testing.T) {
	for _, spec := range workload.PaperSet() {
		spec := spec.Scale(0.02)
		cfg := Config{Threads: 8, Seed: 42}

		implicit, err := Run(spec, cfg)
		if err != nil {
			t.Fatalf("%s implicit: %v", spec.Name, err)
		}
		named := cfg
		named.MachineName = machine.DefaultModel
		byName, err := Run(spec, named)
		if err != nil {
			t.Fatalf("%s by name: %v", spec.Name, err)
		}
		anon := cfg
		anon.Machine = machine.Opteron6168()
		anonymous, err := Run(spec, anon)
		if err != nil {
			t.Fatalf("%s anonymous: %v", spec.Name, err)
		}

		if implicit.Machine != machine.DefaultModel {
			t.Errorf("%s: implicit run labeled %q, want default model", spec.Name, implicit.Machine)
		}
		if anonymous.Machine != "" {
			t.Errorf("%s: anonymous run labeled %q, want empty", spec.Name, anonymous.Machine)
		}
		if !reflect.DeepEqual(implicit, byName) {
			t.Errorf("%s: naming the default model changed the result", spec.Name)
		}
		anonymous.Machine = implicit.Machine
		if !reflect.DeepEqual(implicit, anonymous) {
			t.Errorf("%s: anonymous Opteron config diverged from registry default", spec.Name)
		}
	}
}

func TestUnknownMachineRejectedAtRun(t *testing.T) {
	_, err := Run(smallSpec(), Config{Threads: 4, Seed: 1, MachineName: "pdp-11"})
	if err == nil {
		t.Fatal("unknown machine name accepted")
	}
	if !strings.Contains(err.Error(), "pdp-11") || !strings.Contains(err.Error(), machine.DefaultModel) {
		t.Errorf("error %q should name the bad model and list known ones", err)
	}
}

// TestCMTMachineDeterminism replays the pipeline-sharing model: the
// strand-penalty sampling must not depend on anything but the virtual
// schedule.
func TestCMTMachineDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(smallSpec(), Config{Threads: 48, Seed: 7, MachineName: machine.ModelSparcT3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("sparc-t3-4 runs diverged:\ntotal %v vs %v", a.TotalTime, b.TotalTime)
	}
}

// TestBandwidthMachineDeterminism replays the memory-channel queue: the
// per-socket billing clocks must be part of the deterministic state.
func TestBandwidthMachineDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(smallSpec(), Config{Threads: 16, Seed: 7, MachineName: machine.ModelOpteronBW})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("opteron-6168-bw runs diverged:\ntotal %v vs %v", a.TotalTime, b.TotalTime)
	}
}

func TestBandwidthCeilingStretchesRuntime(t *testing.T) {
	base, err := Run(smallSpec(), Config{Threads: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	bw, err := Run(smallSpec(), Config{Threads: 8, Seed: 42, MachineName: machine.ModelOpteronBW})
	if err != nil {
		t.Fatal(err)
	}
	if base.MemTraffic != 0 || base.MemBWStall != 0 {
		t.Errorf("unlimited machine billed traffic: %d bytes, %v stall", base.MemTraffic, base.MemBWStall)
	}
	if bw.MemTraffic == 0 {
		t.Error("bandwidth-limited machine billed no traffic")
	}
	if bw.MemBWStall == 0 {
		t.Error("bandwidth-limited machine never stalled — ceiling not binding on an allocation-heavy run")
	}
	if bw.TotalTime <= base.TotalTime {
		t.Errorf("bandwidth ceiling did not stretch runtime: %v <= %v", bw.TotalTime, base.TotalTime)
	}
}

// TestPipelineSharingSlowsOversubscribedCores isolates the CMT penalty:
// the same topology with an issue width wide enough for every strand
// must beat the 2-wide pipeline once cores carry three runnable strands.
func TestPipelineSharingSlowsOversubscribedCores(t *testing.T) {
	narrow := machine.SparcT3_4()
	wide := narrow
	wide.IssueWidth = narrow.ThreadsPerCore // every strand gets an issue slot

	shared, err := Run(smallSpec(), Config{Threads: 48, Seed: 42, Machine: narrow})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(smallSpec(), Config{Threads: 48, Seed: 42, Machine: wide})
	if err != nil {
		t.Fatal(err)
	}
	if shared.TotalTime <= free.TotalTime {
		t.Errorf("3 strands on a 2-wide pipeline should be slower: shared=%v wide=%v",
			shared.TotalTime, free.TotalTime)
	}
}
