// Package vm assembles the simulated Java virtual machine: mutator threads
// executing workload units on the scheduled manycore machine, TLAB
// allocation against the generational heap, stop-the-world parallel
// collection with safepoints, monitor-based synchronization, and the
// Elephant-Tracks/DTrace-style instrumentation the paper's measurements
// rely on.
//
// One call to Run executes one benchmark configuration — the unit of the
// paper's methodology (§II-B): fixed workload, chosen thread count, cores
// equal to threads, heap at a multiple of the minimum requirement.
package vm

import (
	"context"
	"fmt"

	"javasim/internal/gc"
	"javasim/internal/heap"
	"javasim/internal/lockprof"
	"javasim/internal/locks"
	"javasim/internal/machine"
	"javasim/internal/metrics"
	"javasim/internal/objmodel"
	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/trace"
	"javasim/internal/traffic"
	"javasim/internal/workload"
)

// Config selects the machine and JVM parameters for one run.
type Config struct {
	// Machine is the hardware model; zero value selects the paper's
	// 4-socket Opteron 6168 testbed.
	Machine machine.Config
	// MachineName selects a registered machine model by name
	// ("opteron-6168", "sparc-t3-4", "opteron-6168-bw", or a user
	// registration); when set it overrides Machine with the model's
	// configuration and installs the model's topology hooks. Empty with a
	// zero Machine resolves to the default model; empty with an explicit
	// Machine keeps that anonymous configuration.
	MachineName string
	// Threads is the mutator thread count. Zero defaults to 4.
	Threads int
	// Cores is the number of enabled cores. Zero follows the paper's
	// methodology: cores = threads, capped at the machine size.
	Cores int
	// HeapFactor multiplies the workload's minimum heap requirement; the
	// paper uses 3x. Zero defaults to 3.
	HeapFactor float64
	// NewRatio overrides the heap's old:young size ratio (HotSpot default
	// 2: the young generation is one third of the heap). Zero keeps the
	// default.
	NewRatio int
	// SurvivorRatio overrides the heap's eden:survivor ratio (HotSpot
	// default 8). Zero keeps the default.
	SurvivorRatio int
	// Compartments splits eden into per-thread-group slices (future-work
	// (b)); zero or one means one shared eden — except that the
	// "compartment" GC policy defaults an *unset* (zero) count to one
	// slice per NUMA socket, while an explicit 1 still requests the
	// single shared eden.
	Compartments int
	// GC configures the collector; GC.Workers zero selects the HotSpot
	// heuristic for the enabled core count.
	GC gc.Config
	// GCPolicy selects the collection discipline by gc registry name
	// ("stw-serial", "stw-parallel", "concurrent", "compartment", or a
	// user registration); empty means stw-serial, the paper's baseline —
	// unless the legacy GC.Concurrent flag is set, which resolves to
	// "concurrent".
	GCPolicy string
	// Sched configures the scheduler, including phase-bias (future-work
	// (a)) and the placement discipline (Sched.Placement registry name;
	// empty means affinity). Steal defaults to on.
	Sched sched.Config
	// LockPolicy selects the contended-monitor discipline by locks
	// registry name ("fifo", "barging", "spin-then-park", "restricted",
	// or a user registration); empty means fifo, the paper's baseline.
	LockPolicy string
	// Seed drives all stochastic choices; equal seeds reproduce runs
	// bit-for-bit.
	Seed uint64
	// Iterations repeats the workload inside the same JVM (DaCapo harness
	// style): heap state persists, application state resets per
	// iteration. Zero means one iteration.
	Iterations int
	// Pretenuring enables the allocation-site pretenuring learner:
	// sites observed to produce long-lived objects allocate directly in
	// the old generation, sidestepping the survivor copying that the
	// paper shows inflating GC time at high thread counts.
	Pretenuring bool
	// TraceSink, when non-nil, receives the Elephant-Tracks-style event
	// stream.
	TraceSink trace.Sink
	// LockProfiler, when non-nil, observes every monitor event.
	LockProfiler *lockprof.Profiler
	// MaxVirtualTime aborts runs that exceed this much simulated time;
	// zero defaults to 300 virtual seconds.
	MaxVirtualTime sim.Time
	// DisableFusion turns off op-run fusion: the interpreter's batching of
	// consecutive compute/alloc ops into one summed scheduler segment when
	// no other simulation event can intervene (see fuse.go). Fusion applies
	// only when provably invisible, so results are bit-identical either
	// way; the switch exists for differential testing and diagnosis, not
	// tuning. Fusion also disables itself when a TraceSink is attached,
	// keeping per-op trace timestamps exact.
	DisableFusion bool
	// DisableSnapshot turns off warm-start snapshot consumption: a run
	// finding a Snapshot on its context (see ContextWithSnapshot) ignores
	// it and regenerates its workload units live. Snapshot replay applies
	// only when provably invisible — a tape's unit k equals the k-th
	// live-generated unit, draw for draw — so results are bit-identical
	// either way; like DisableFusion, the switch exists for differential
	// testing and diagnosis, not tuning.
	DisableSnapshot bool
	// HelperPeriod and HelperBurst shape the JVM background threads (JIT
	// compiler, profiler): every period each helper computes for burst.
	HelperPeriod sim.Time
	HelperBurst  sim.Time
	// Traffic selects the open-system arrival model: requests injected
	// at a rate and served by the mutator pool, instead of the default
	// closed loop where N threads iterate over a fixed work pool. The
	// zero value (and the "closed" process) keeps the closed loop.
	// Open-system runs require Iterations <= 1 and a phase-free
	// workload.
	Traffic traffic.Config
}

// Canonical returns the configuration with every zero value resolved to
// its default — the form two configs must be compared in to decide
// whether they describe the same run (the engine's cache key is built
// from it).
func (c Config) Canonical() Config { return c.withDefaults() }

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MachineName == "" && c.Machine.Sockets == 0 {
		c.MachineName = machine.DefaultModel
	}
	if c.MachineName != "" {
		// A registered name overrides any inline config so the label and
		// the hardware can never disagree. Unknown names keep the inline
		// config (or the default) here and are rejected by RunContext.
		if mdl, err := machine.LookupModel(c.MachineName); err == nil {
			c.Machine = mdl.Config()
		} else if c.Machine.Sockets == 0 {
			c.Machine = machine.Opteron6168()
		}
	}
	c.Machine = c.Machine.WithDefaults()
	if c.Threads == 0 {
		c.Threads = 4
	}
	if c.Cores == 0 {
		c.Cores = c.Threads
		if max := c.Machine.TotalCores(); c.Cores > max {
			c.Cores = max
		}
	}
	if c.HeapFactor == 0 {
		c.HeapFactor = 3
	}
	// Compartments stays 0 when unset: the GC policy's Layout may default
	// it (compartment picks one slice per socket), while an explicit 1
	// requests the single shared eden. RunContext clamps the laid-out
	// count to >= 1.
	if c.Compartments < 0 {
		c.Compartments = 0
	}
	if c.GC.Workers == 0 {
		c.GC.Workers = gc.DefaultWorkers(c.Cores)
	}
	if c.MaxVirtualTime == 0 {
		c.MaxVirtualTime = 300 * sim.Second
	}
	if c.HelperPeriod == 0 {
		c.HelperPeriod = 5 * sim.Millisecond
	}
	if c.HelperBurst == 0 {
		c.HelperBurst = 100 * sim.Microsecond
	}
	if c.Iterations < 1 {
		c.Iterations = 1
	}
	if c.LockPolicy == "" {
		c.LockPolicy = locks.PolicyFIFO
	}
	if c.GCPolicy == "" {
		// The legacy GC.Concurrent flag predates the policy registry;
		// canonicalize it onto the concurrent policy so both spellings
		// share one cache entry and one Result label.
		if c.GC.Concurrent {
			c.GCPolicy = gc.PolicyConcurrent
		} else {
			c.GCPolicy = gc.PolicyStwSerial
		}
	}
	if p, err := gc.NewPolicy(c.GCPolicy); err == nil && p.ConcurrentOld() {
		c.GC.Concurrent = true
	}
	if c.Sched.Placement == "" {
		c.Sched.Placement = sched.PlacementAffinity
	}
	c.Sched.Steal = true
	c.Traffic = c.Traffic.Canonical()
	return c
}

// Result is the full measurement record of one run — everything the
// paper's figures draw on.
type Result struct {
	Workload string
	Threads  int
	Cores    int

	// LockPolicy, Placement, and GCPolicy are the resolved policy names
	// the run executed under, so reports can label ablation series.
	LockPolicy string
	Placement  string
	GCPolicy   string
	// Machine is the registered machine-model name the run executed on;
	// empty for anonymous inline machine configurations.
	Machine string

	// TotalTime is the virtual wall-clock duration of the run; it splits
	// exactly into MutatorTime and GCTime (stop-the-world, including
	// time-to-safepoint).
	TotalTime   sim.Time
	MutatorTime sim.Time
	GCTime      sim.Time
	// SafepointTime is the time-to-safepoint portion of GCTime.
	SafepointTime sim.Time

	GCStats   gc.Stats
	GCPauses  []gc.Pause
	HeapStats heap.Stats

	// GCPhases splits stop-the-world pause time into its phases (fixed
	// setup, live-object scanning, evacuation/compaction), summed across
	// every pause — the per-phase GC CPU that distinguishes a
	// coordination-bound collector (setup-heavy) from a copy-bound one.
	GCPhases gc.Breakdown

	// LockAcquisitions and LockContentions are the Figure 1a/1b counters,
	// aggregated over every monitor in the VM.
	LockAcquisitions int64
	LockContentions  int64

	// Lifespans is the distribution of object lifespans in
	// allocation-clock bytes (Figure 1c/1d).
	Lifespans *metrics.Histogram

	// ConcGCCPUTime is processor time consumed by concurrent GC threads
	// (GC.Concurrent mode); it shows up as mutator-time dilation, not as
	// pause time. ConcCycles counts completed concurrent cycles.
	ConcGCCPUTime sim.Time
	ConcCycles    int64

	ObjectsAllocated int64
	AllocatedBytes   int64

	// MemBWStall is total thread time lost waiting on saturated per-socket
	// memory channels; MemTraffic is total allocation and GC copy traffic
	// billed against them. Both stay zero on machines without a
	// SocketBandwidth ceiling.
	MemBWStall sim.Time
	MemTraffic int64

	// Iterations holds per-iteration timings for multi-iteration runs
	// (one entry for single-iteration runs).
	Iterations []IterationStats

	// HeapLog samples heap occupancy after every collection — the
	// old-generation fill curve behind the paper's "mature region fills
	// up more quickly" observation.
	HeapLog []HeapSample

	// PerThreadUnits is the §III work-distribution table: units executed
	// by each mutator thread, summed across iterations.
	PerThreadUnits []int64
	// PerThreadCPU, PerThreadReadyWait, and PerThreadBlocked expose
	// scheduling behavior; blocked time covers lock parks, barriers, and
	// safepoints (a spin-then-park spin is CPU, not blocked time).
	PerThreadCPU       []sim.Time
	PerThreadReadyWait []sim.Time
	PerThreadBlocked   []sim.Time

	Utilization float64

	// Traffic holds the open-system measurements (per-request latency,
	// queue behavior, offered/completed/timed-out accounting) for runs
	// configured with an open arrival process; nil for closed-loop runs.
	Traffic *traffic.Stats
}

// HeapSample is heap state observed right after one collection.
type HeapSample struct {
	Time          sim.Time
	OldUsed       int64
	LiveBytes     int64
	Fragmentation int64
}

// GCShare returns GC time as a fraction of total time.
func (r *Result) GCShare() float64 {
	if r.TotalTime == 0 {
		return 0
	}
	return float64(r.GCTime) / float64(r.TotalTime)
}

// mutator states; transitions are driven entirely by scheduler callbacks.
type mutatorState uint8

const (
	stRunning  mutatorState = iota // executing unit ops (on core or in queue)
	stLockWait                     // parked on a monitor entry queue
	stBarrier                      // parked at a phase barrier
	stGCWait                       // parked for a stop-the-world collection
	stDone                         // all work finished, thread terminated
	stIdleOpen                     // open-system server parked awaiting a request
)

type mutator struct {
	idx         int
	th          *sched.Thread
	state       mutatorState
	compartment int

	tlab heap.TLAB

	// Current unit interpretation state.
	unit  workload.Unit
	opIdx int

	// stepFn and fetchFn are the pre-bound continuations (set once at
	// construction) the hot path hands to the scheduler and the safepoint
	// machinery, so advancing a unit never captures a fresh closure.
	stepFn  func()
	fetchFn func()

	// resume continues the mutator after a lock handoff grants it the
	// monitor it blocked on, or after a stop-the-world resume.
	resume func()

	// lockRetry re-attempts a parked acquisition after a competitive
	// wakeup (barging): the monitor was freed, not handed over, and the
	// thread must race for it again.
	lockRetry func()

	// Acquisition-in-flight state consumed by the pre-bound lock-path
	// continuations below. A mutator drives one acquisition at a time, so
	// per-mutator fields replace per-call closure captures (the VM's
	// dominant allocation source before PR 10). See acquireThen.
	acqMon   *locks.Monitor // monitor being acquired
	acqOwned func()         // continuation once acqMon is held
	atMon    *locks.Monitor // acquireThen: monitor to release after the hold
	atHold   sim.Time       // acquireThen: critical-section length
	atThen   func()         // acquireThen: continuation after release

	// Pre-bound continuations for the lock, work-fetch, and barrier
	// paths, set once at construction next to stepFn/fetchFn.
	atOwnedFn    func()
	atReleaseFn  func()
	spinRetryFn  func()
	lockResumeFn func()
	lockRetryFn  func()
	takeUnitFn   func()
	openTakeFn   func()
	barPollFn    func()
	barArriveFn  func()
	barSeqFn     func()
	barPollsLeft int

	// parkedContended records whether the park in progress fired the
	// contended-enter probe; the wake that resolves it charges the
	// workload's ContentionCost when set (see releaseMonitor).
	parkedContended bool

	// gcRetries counts consecutive allocation failures; repeated failure
	// after collections is an OutOfMemoryError.
	gcRetries int

	// Open-system state: the arrival time of the request being served,
	// and whether this server was woken for a dispatch it has not yet
	// consumed (see openState.committed).
	reqArrival sim.Time
	openWoken  bool

	// Death scheduling. allocRing buckets objects dying after N more own
	// allocations; unitRing buckets objects dying at future unit ends.
	allocRing  [16][]objmodel.ID
	allocCount int64
	unitRing   [64][]objmodel.ID
	unitCount  int64
}

// vm is the assembled runtime for one run.
type vm struct {
	cfg  Config
	spec workload.Spec

	sim   *sim.Simulator
	mach  *machine.Machine
	sched *sched.Scheduler
	heap  *heap.Heap
	reg   *objmodel.Registry
	gc    *gc.Collector
	locks *locks.Table
	run   *workload.Run

	mutators []*mutator
	helpers  []*sched.Thread

	// compOf maps mutator index -> heap compartment; nil means the
	// default round-robin i % Compartments. The compartment GC policy
	// fills it so thread groups share the compartment homed on their
	// cores' socket.
	compOf []int

	queueLock   *locks.Monitor
	barrierLock *locks.Monitor
	shared      []*locks.Monitor

	// Phase-barrier state.
	phaseUnits   int
	currentPhase int
	barArrived   int
	seqPerPhase  sim.Time

	// Stop-the-world state. With a compartmentalized heap, a minor
	// collection stops only the owning compartment's mutators (stwGlobal
	// false); a full collection — or any collection on an
	// uncompartmentalized heap — stops everyone.
	stwPending    bool
	stwCollecting bool // the pause itself is in progress
	stwGlobal     bool
	stwComp       int
	stwRequester  *mutator
	stwStart      sim.Time
	stwWantFull   bool  // a forced full collection is required (AllocOld failed)
	gcQueue       []int // compartments with pending collection requests
	runningCount  int   // mutators in stRunning
	aliveCount    int   // mutators not in stDone
	cms           cmsDriver
	pret          pretenurer
	gcTime        sim.Time
	safepointTime sim.Time

	// Iteration bookkeeping (Config.Iterations > 1).
	iteration  int
	iterStats  []IterationStats
	iterStart  sim.Time
	iterGCTime sim.Time
	iterPauses int
	unitsAccum []int64

	// openSt is the open-system driver state; nil for closed-loop runs.
	openSt *openState

	// snap is the warm-start snapshot the run is replaying from; nil for
	// cold runs. Iteration i attaches snap's i-th tape.
	snap *Snapshot

	heapLog   []HeapSample
	lifespans *metrics.Histogram
	finished  bool
	endTime   sim.Time
	runErr    error
	guardEv   *sim.Event

	// Fusion state (see fuse.go). fuseOK caches the per-run eligibility
	// gate; tlabSize caches the heap's TLAB size for the fusion scan.
	fuseOK   bool
	tlabSize int64

	// spanned is the number of NUMA sockets the enabled units cover; GC
	// copy traffic on bandwidth-limited machines is billed across them.
	spanned int
}

// Run executes one benchmark under the given configuration and returns the
// measurements. It is RunContext with a background context.
func Run(spec workload.Spec, cfg Config) (*Result, error) {
	return RunContext(context.Background(), spec, cfg)
}

// cancelCheckEvents is how many simulation events fire between context
// checks in RunContext. Events are sub-microsecond of host time, so this
// keeps cancellation latency well under a millisecond while making the
// per-event overhead unmeasurable.
const cancelCheckEvents = 4096

// RunContext executes one benchmark under the given configuration,
// checking ctx at checkpoints inside the simulator's event loop. A
// canceled context aborts the run promptly and returns an error wrapping
// ctx.Err(); the partial simulation state is discarded.
func RunContext(ctx context.Context, spec workload.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Resolve the pluggable policies up front so an unknown name is a
	// configuration error, not a panic mid-simulation. The placement is
	// only checked here — sched.New resolves its own instance.
	policy, err := locks.NewPolicy(cfg.LockPolicy)
	if err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if err := sched.ValidatePlacement(cfg.Sched.Placement); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	gcPolicy, err := gc.NewPolicy(cfg.GCPolicy)
	if err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if cfg.GC.Concurrent && !gcPolicy.ConcurrentOld() {
		return nil, fmt.Errorf("vm: GC.Concurrent conflicts with GC policy %q — select the %q policy instead",
			cfg.GCPolicy, gc.PolicyConcurrent)
	}
	if err := cfg.Traffic.Validate(); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	var arrivalProc traffic.Process
	if cfg.Traffic.Open() {
		if cfg.Iterations > 1 {
			return nil, fmt.Errorf("vm: open-system traffic is incompatible with Iterations = %d — the arrival process, not the harness, governs repetition", cfg.Iterations)
		}
		if spec.Phases > 0 {
			return nil, fmt.Errorf("vm: open-system traffic needs a phase-free workload, but %s has %d barrier phases", spec.Name, spec.Phases)
		}
		arrivalProc, err = traffic.NewProcess(cfg.Traffic.Process, cfg.Traffic)
		if err != nil {
			return nil, fmt.Errorf("vm: %w", err)
		}
	}
	run, err := workload.NewRun(spec, cfg.Threads, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// The VM consumes each unit fully before its thread takes the next,
	// so per-thread op-buffer recycling is safe and saves the per-unit
	// ops allocation.
	run.ReuseUnitBuffers()
	var snap *Snapshot
	if !cfg.DisableSnapshot {
		if s := SnapshotFrom(ctx); s != nil && s.Matches(spec, cfg) {
			snap = s
			if run.AttachTape(s.tapes[0]) && snapshotObserver != nil {
				snapshotObserver()
			}
		}
	}

	var mach *machine.Machine
	if cfg.MachineName != "" {
		mdl, merr := machine.LookupModel(cfg.MachineName)
		if merr != nil {
			return nil, fmt.Errorf("vm: %w", merr)
		}
		mach, merr = machine.NewFromModel(mdl)
		if merr != nil {
			return nil, fmt.Errorf("vm: %w", merr)
		}
	} else if mach, err = machine.New(cfg.Machine); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}
	if err := mach.EnableCores(cfg.Cores); err != nil {
		return nil, fmt.Errorf("vm: %w", err)
	}

	// Let the GC policy shape the heap: compartment count and NUMA region
	// homes. Units are enabled socket-major, so the spanned socket count
	// is a ceiling division over units (hardware threads) per socket.
	unitsPerSocket := cfg.Machine.UnitsPerSocket()
	spanned := (cfg.Cores + unitsPerSocket - 1) / unitsPerSocket
	if spanned > cfg.Machine.Sockets {
		spanned = cfg.Machine.Sockets
	}
	if spanned < 1 {
		spanned = 1
	}
	layout := gcPolicy.Layout(gc.LayoutRequest{
		Compartments:   cfg.Compartments,
		Cores:          cfg.Cores,
		Sockets:        spanned,
		CoresPerSocket: unitsPerSocket,
	})
	if layout.Compartments < 1 {
		layout.Compartments = 1
	}
	if layout.HomeSockets != nil && len(layout.HomeSockets) != layout.Compartments {
		return nil, fmt.Errorf("vm: gc policy %q laid out %d home sockets for %d compartments",
			cfg.GCPolicy, len(layout.HomeSockets), layout.Compartments)
	}
	cfg.Compartments = layout.Compartments

	s := sim.New()
	scheduler := sched.New(s, mach, cfg.Sched)

	// Heap sizing per the paper: Factor x the workload's minimum heap.
	// TLABs adapt to the eden share per thread, as HotSpot does; with
	// compartments enabled, each eden slice must accommodate every thread
	// mapped to it, so the TLAB shrinks accordingly.
	edenEstimate := int64(float64(spec.MinHeapBytes())*cfg.HeapFactor) / 3 * 8 / 10
	threadsPerComp := (cfg.Threads + cfg.Compartments - 1) / cfg.Compartments
	slice := edenEstimate / int64(cfg.Compartments)
	tlab := slice / int64(threadsPerComp*8)
	if tlab < 1<<10 {
		tlab = 1 << 10
	}
	if tlab > 64<<10 {
		tlab = 64 << 10
	}
	hp := heap.New(heap.Config{
		MinHeap:       spec.MinHeapBytes(),
		Factor:        cfg.HeapFactor,
		NewRatio:      cfg.NewRatio,
		SurvivorRatio: cfg.SurvivorRatio,
		TLABSize:      tlab,
		Compartments:  cfg.Compartments,
	})

	reg := objmodel.NewRegistry(int(spec.TotalAllocBytes() / int64(max(spec.ObjSizeMeanB, 16))))
	collector := gc.NewWithPolicy(gcPolicy, cfg.GC, hp, reg)
	if layout.HomeSockets != nil {
		collector.SetCopyFactors(numaCopyFactors(mach, spanned, layout))
	}

	var lockListener locks.Listener
	if cfg.LockProfiler != nil {
		lockListener = cfg.LockProfiler
	}
	table := locks.NewTableWithPolicy(policy, lockListener)

	v := &vm{
		cfg: cfg, spec: spec,
		sim: s, mach: mach, sched: scheduler,
		heap: hp, reg: reg, gc: collector, locks: table, run: run,
		lifespans: metrics.NewHistogram(spec.Name + "-lifespans"),
		fuseOK:    !cfg.DisableFusion && cfg.TraceSink == nil,
		tlabSize:  hp.Config().TLABSize,
		spanned:   spanned,
		snap:      snap,
	}
	if layout.HomeSockets != nil {
		v.compOf = numaCompartmentMap(mach, cfg.Threads, cfg.Cores, layout)
	}
	// Phase-bias gating yields to safepoint requests so stopped-world
	// latency stays bounded by segment lengths, not phase lengths.
	scheduler.SetGateOverride(func() bool { return v.stwPending })

	if cfg.Pretenuring {
		v.pret.enabled = true
		v.pret.longLifespan = hp.EdenSize()
		collector.SetPromoteHook(v.pret.onPromote)
	}

	v.setupLocks()
	v.setupPhases()
	if arrivalProc != nil {
		// A nil process from an open-named factory (the "closed"
		// adapter's behavior) falls through to the closed loop.
		v.setupOpen(arrivalProc)
	}
	v.setupMutators()
	v.setupHelpers()
	v.setupCMS()

	// Abort guard: a run exceeding the virtual budget indicates a model
	// bug (livelock); surface it as an error rather than spinning. The
	// guard is canceled at run end so it does not drag the clock forward.
	v.guardEv = s.At(cfg.MaxVirtualTime, func() {
		if !v.finished {
			v.runErr = fmt.Errorf("vm: %s with %d threads exceeded %v virtual time",
				spec.Name, cfg.Threads, cfg.MaxVirtualTime)
			s.Stop()
		}
	})

	if _, err := s.RunInterruptible(cancelCheckEvents, ctx.Err); err != nil {
		return nil, fmt.Errorf("vm: %s with %d threads canceled at %v: %w",
			spec.Name, cfg.Threads, s.Now(), err)
	}
	if v.runErr != nil {
		return nil, v.runErr
	}
	if !v.finished {
		return nil, fmt.Errorf("vm: %s run stalled — simulation drained with %d mutators unfinished",
			spec.Name, v.aliveCount)
	}
	return v.result(), nil
}

func (v *vm) setupLocks() {
	if v.spec.Distribution == workload.Queue {
		v.queueLock = v.locks.Create(v.spec.Name + ".workQueue")
	}
	v.barrierLock = v.locks.Create(v.spec.Name + ".phaseBarrier")
	for i := 0; i < v.spec.SharedLocks; i++ {
		v.shared = append(v.shared, v.locks.Create(fmt.Sprintf("%s.shared%d", v.spec.Name, i)))
	}
}

func (v *vm) setupPhases() {
	if v.spec.Phases > 0 {
		v.phaseUnits = v.spec.TotalUnits / v.spec.Phases
		if v.phaseUnits < 1 {
			v.phaseUnits = 1
		}
		totalCompute := float64(v.spec.TotalUnits) * float64(v.spec.UnitCompute)
		sf := v.spec.SequentialFraction
		if sf > 0 {
			v.seqPerPhase = sim.Time(totalCompute * sf / (1 - sf) / float64(v.spec.Phases))
		}
	}
}

func (v *vm) setupMutators() {
	open := v.openSt != nil
	v.mutators = make([]*mutator, v.cfg.Threads)
	v.unitsAccum = make([]int64, v.cfg.Threads)
	for i := range v.mutators {
		comp := i % v.heap.Compartments()
		if v.compOf != nil {
			comp = v.compOf[i]
		}
		m := &mutator{
			idx:         i,
			compartment: comp,
			state:       stRunning,
		}
		m.stepFn = func() { v.step(m) }
		m.fetchFn = func() { v.fetchWork(m) }
		if open {
			m.state = stIdleOpen
			m.fetchFn = func() { v.openFetch(m) }
		}
		m.atOwnedFn = func() { v.atOwned(m) }
		m.atReleaseFn = func() { v.atRelease(m) }
		m.spinRetryFn = func() { v.attemptAcquire(m, true) }
		m.lockResumeFn = func() { v.lockResume(m) }
		m.lockRetryFn = func() { v.lockRetryWake(m) }
		m.takeUnitFn = func() { v.takeUnit(m) }
		m.openTakeFn = func() { v.openTake(m) }
		m.barPollFn = func() { v.barrierPollLoop(m) }
		m.barArriveFn = func() { v.barrierArrived(m) }
		m.barSeqFn = func() { v.releaseBarrier(m) }
		m.th = v.sched.NewThread(fmt.Sprintf("worker-%d", i), sched.DefaultWeight)
		m.th.MemoryIntensity = v.spec.MemoryIntensity
		if v.cfg.Sched.Bias.Groups > 1 {
			m.th.Group = i % v.cfg.Sched.Bias.Groups
		}
		v.mutators[i] = m
		if !open {
			v.runningCount++
		}
		v.aliveCount++
	}
	for _, m := range v.mutators {
		v.emitTrace(trace.Event{Kind: trace.ThreadStart, Time: 0, Thread: int32(m.idx)})
		if open {
			// Servers start parked on the idle stack; arrivals wake them.
			v.openSt.idle = append(v.openSt.idle, m)
			v.sched.Block(m.th)
		} else {
			v.sched.Submit(m.th, 0, m.fetchFn)
		}
	}
}

// setupHelpers spawns the JVM background threads (JIT compiler, profiler).
// They are low-weight and periodic: real competitors for cores, but not
// workload executors.
func (v *vm) setupHelpers() {
	for i := 0; i < v.spec.HelperThreads; i++ {
		th := v.sched.NewThread(fmt.Sprintf("jvm-helper-%d", i), sched.DefaultWeight/8)
		v.helpers = append(v.helpers, th)
		var cycle func()
		cycle = func() {
			if v.finished {
				return
			}
			v.sched.Submit(th, v.cfg.HelperBurst, func() {
				if v.finished {
					return
				}
				v.sim.Schedule(v.cfg.HelperPeriod, cycle)
			})
		}
		// Stagger helper wakeups so they do not thunder together.
		v.sim.Schedule(sim.Time(i+1)*v.cfg.HelperPeriod/sim.Time(v.spec.HelperThreads+1), cycle)
	}
}

func (v *vm) emitTrace(ev trace.Event) {
	if v.cfg.TraceSink != nil {
		v.cfg.TraceSink.Emit(ev)
	}
}

// kill retires an object: records its death against the allocation clock,
// feeds the lifespan histogram, and emits the trace event.
func (v *vm) kill(id objmodel.ID) {
	now := v.sim.Now()
	v.reg.Kill(id, now)
	o := v.reg.Get(id)
	v.lifespans.Add(o.Lifespan())
	if v.pret.enabled {
		v.pret.onDeath(id, o.Lifespan())
	}
	v.emitTrace(trace.Event{
		Kind: trace.Death, Time: now, Thread: o.Thread,
		Object: uint32(id), Clock: o.Death,
	})
}

// result assembles the final measurement record.
func (v *vm) result() *Result {
	res := &Result{
		Workload:         v.spec.Name,
		Threads:          v.cfg.Threads,
		Cores:            v.cfg.Cores,
		LockPolicy:       v.cfg.LockPolicy,
		Placement:        v.cfg.Sched.Placement,
		GCPolicy:         v.cfg.GCPolicy,
		Machine:          v.cfg.MachineName,
		TotalTime:        v.endTime,
		GCTime:           v.gcTime,
		MutatorTime:      v.endTime - v.gcTime,
		SafepointTime:    v.safepointTime,
		GCStats:          v.gc.Stats(),
		GCPauses:         v.gc.Pauses(),
		HeapStats:        v.heap.Stats(),
		LockAcquisitions: v.locks.TotalAcquisitions(),
		LockContentions:  v.locks.TotalContentions(),
		Lifespans:        v.lifespans,
		ObjectsAllocated: v.reg.Count(),
		AllocatedBytes:   v.reg.Clock(),
		ConcGCCPUTime:    v.cms.cpuTime,
		ConcCycles:       v.cms.cycles,
		MemBWStall:       v.mach.BandwidthStall(),
		MemTraffic:       v.mach.TrafficBytes(),
		Iterations:       v.iterStats,
		HeapLog:          v.heapLog,
	}
	for _, p := range res.GCPauses {
		res.GCPhases.Setup += p.Phases.Setup
		res.GCPhases.Scan += p.Phases.Scan
		res.GCPhases.Copy += p.Phases.Copy
	}
	units := v.run.UnitsTaken()
	for i := range units {
		units[i] += v.unitsAccum[i]
	}
	res.PerThreadUnits = units
	// Utilization over the run window [0, endTime]: the simulator's final
	// clock includes post-run helper drainage, so it is not the divisor.
	if v.endTime > 0 && v.cfg.Cores > 0 {
		var busy sim.Time
		for _, c := range v.mach.EnabledCores() {
			busy += v.mach.Core(c).BusyTime
		}
		res.Utilization = float64(busy) / float64(v.endTime*sim.Time(v.cfg.Cores))
	}
	for _, m := range v.mutators {
		res.PerThreadCPU = append(res.PerThreadCPU, m.th.CPUTime())
		res.PerThreadReadyWait = append(res.PerThreadReadyWait, m.th.ReadyWait())
		res.PerThreadBlocked = append(res.PerThreadBlocked, m.th.BlockedTime())
	}
	if v.openSt != nil {
		res.Traffic = v.openSt.openResult(v.endTime)
	}
	return res
}
