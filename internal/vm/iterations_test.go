package vm

import (
	"testing"

	"javasim/internal/sim"
	"javasim/internal/workload"
)

func TestMultiIterationRun(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.03)
	single, err := Run(spec, Config{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(spec, Config{Threads: 4, Seed: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Iterations) != 1 {
		t.Errorf("single run has %d iteration records", len(single.Iterations))
	}
	if len(multi.Iterations) != 3 {
		t.Fatalf("multi run has %d iteration records, want 3", len(multi.Iterations))
	}
	// Per-iteration durations sum to the total.
	var sum sim.Time
	for i, it := range multi.Iterations {
		if it.Index != i {
			t.Errorf("iteration %d has index %d", i, it.Index)
		}
		if it.Duration <= 0 {
			t.Errorf("iteration %d has duration %v", i, it.Duration)
		}
		sum += it.Duration
	}
	if sum != multi.TotalTime {
		t.Errorf("iteration durations sum to %v, total %v", sum, multi.TotalTime)
	}
	// Three iterations allocate roughly three times the objects and
	// execute exactly three times the units.
	var units int64
	for _, u := range multi.PerThreadUnits {
		units += u
	}
	if units != int64(3*spec.TotalUnits) {
		t.Errorf("units = %d, want %d", units, 3*spec.TotalUnits)
	}
	if multi.ObjectsAllocated < 2*single.ObjectsAllocated {
		t.Errorf("multi allocated %d, single %d — iterations not executing",
			multi.ObjectsAllocated, single.ObjectsAllocated)
	}
	// Conservation across iteration boundaries.
	if multi.Lifespans.Total() != multi.ObjectsAllocated {
		t.Errorf("lifespans %d != objects %d", multi.Lifespans.Total(), multi.ObjectsAllocated)
	}
}

func TestMultiIterationDeterminism(t *testing.T) {
	spec := workload.LusearchSpec().Scale(0.02)
	run := func() *Result {
		res, err := Run(spec, Config{Threads: 4, Seed: 5, Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.ObjectsAllocated != b.ObjectsAllocated {
		t.Error("multi-iteration runs nondeterministic")
	}
}

func TestIterationGCAccounting(t *testing.T) {
	spec := workload.XalanSpec().Scale(0.1)
	res, err := Run(spec, Config{Threads: 8, Seed: 1, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var gcSum sim.Time
	var colls int
	for _, it := range res.Iterations {
		gcSum += it.GCTime
		colls += it.Collections
	}
	if gcSum != res.GCTime {
		t.Errorf("per-iteration GC sums to %v, total %v", gcSum, res.GCTime)
	}
	if colls != len(res.GCPauses) {
		t.Errorf("per-iteration collections sum to %d, total %d", colls, len(res.GCPauses))
	}
}

func TestIterationsWithCappedWorkload(t *testing.T) {
	// Capped distributions leave most threads without work every
	// iteration; thread revival must handle permanently idle threads.
	spec := workload.JythonSpec().Scale(0.02)
	res, err := Run(spec, Config{Threads: 8, Seed: 1, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var units int64
	for _, u := range res.PerThreadUnits {
		units += u
	}
	if units != int64(2*spec.TotalUnits) {
		t.Errorf("units = %d, want %d", units, 2*spec.TotalUnits)
	}
}
