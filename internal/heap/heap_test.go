package heap

import (
	"errors"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{MinHeap: 96 << 20, Factor: 3, TLABSize: 64 << 10}
}

func TestSizing(t *testing.T) {
	h := New(testConfig())
	if h.TotalSize() != 288<<20 {
		t.Errorf("total = %d, want 288 MiB", h.TotalSize())
	}
	// NewRatio 2: young = total/3.
	if h.youngSize != 96<<20 {
		t.Errorf("young = %d, want 96 MiB", h.youngSize)
	}
	// Young = eden + 2 survivors, eden/survivor = 8.
	if h.EdenSize()+2*h.SurvivorSize() != h.youngSize {
		t.Error("young generation does not decompose into eden + 2 survivors")
	}
	if h.EdenSize() <= h.SurvivorSize() {
		t.Error("eden not larger than survivor space")
	}
	if h.OldSize()+h.youngSize != h.TotalSize() {
		t.Error("old + young != total")
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{MinHeap: 1 << 20}.WithDefaults()
	if c.Factor != 3 || c.NewRatio != 2 || c.SurvivorRatio != 8 || c.TLABSize != 64<<10 || c.Compartments != 1 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{MinHeap: 0, Factor: 3, NewRatio: 2, SurvivorRatio: 8, TLABSize: 1, Compartments: 1},
		{MinHeap: 1, Factor: 0.5, NewRatio: 2, SurvivorRatio: 8, TLABSize: 1, Compartments: 1},
		{MinHeap: 1, Factor: 3, NewRatio: 0, SurvivorRatio: 8, TLABSize: 1, Compartments: 1},
		{MinHeap: 1, Factor: 3, NewRatio: 2, SurvivorRatio: 8, TLABSize: 0, Compartments: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestTLABLifecycle(t *testing.T) {
	h := New(testConfig())
	var tlab TLAB
	if tlab.Alloc(1) {
		t.Error("zero TLAB allowed allocation")
	}
	if !h.RefillTLAB(&tlab, 0) {
		t.Fatal("refill failed on fresh heap")
	}
	if tlab.Remaining() != 64<<10 {
		t.Errorf("remaining = %d, want 64KiB", tlab.Remaining())
	}
	if !tlab.Alloc(1000) {
		t.Error("allocation failed with room")
	}
	if tlab.Remaining() != 64<<10-1000 {
		t.Errorf("remaining = %d after alloc", tlab.Remaining())
	}
	if tlab.Alloc(64 << 10) {
		t.Error("oversized allocation fit")
	}
}

func TestTLABExhaustsEden(t *testing.T) {
	h := New(Config{MinHeap: 1 << 20, Factor: 3, TLABSize: 64 << 10})
	var tlab TLAB
	refills := 0
	for h.RefillTLAB(&tlab, 0) {
		refills++
		if refills > 10000 {
			t.Fatal("eden never exhausted")
		}
	}
	if refills == 0 {
		t.Fatal("no refills succeeded")
	}
	want := int(h.EdenSliceSize() / (64 << 10))
	if refills != want {
		t.Errorf("refills = %d, want %d", refills, want)
	}
	if h.Stats().TLABRefills != int64(refills) {
		t.Error("refill stats mismatch")
	}
}

func TestAllocDirect(t *testing.T) {
	h := New(testConfig())
	big := h.EdenSliceSize() / 2
	if !h.AllocDirect(0, big) {
		t.Fatal("direct alloc failed with room")
	}
	if h.EdenUsed(0) != big {
		t.Errorf("eden used = %d, want %d", h.EdenUsed(0), big)
	}
	if h.AllocDirect(0, h.EdenSliceSize()) {
		t.Error("direct alloc succeeded past capacity")
	}
}

func TestCommitMinor(t *testing.T) {
	h := New(testConfig())
	h.AllocDirect(0, 1000)
	if err := h.CommitMinor(0, 400, 100, 0); err != nil {
		t.Fatal(err)
	}
	if h.EdenUsed(0) != 0 {
		t.Error("eden not reset by minor commit")
	}
	if h.SurvivorUsed() != 400 {
		t.Errorf("survivor = %d, want 400", h.SurvivorUsed())
	}
	if h.OldUsed() != 100 {
		t.Errorf("old = %d, want 100", h.OldUsed())
	}
	// Second minor replaces the prior survivor population.
	if err := h.CommitMinor(0, 300, 50, 400); err != nil {
		t.Fatal(err)
	}
	if h.SurvivorUsed() != 300 {
		t.Errorf("survivor = %d, want 300", h.SurvivorUsed())
	}
	if h.OldUsed() != 150 {
		t.Errorf("old = %d, want 150", h.OldUsed())
	}
}

func TestCommitMinorOldGenFull(t *testing.T) {
	h := New(testConfig())
	if err := h.CommitMinor(0, 0, h.OldSize()+1, 0); !errors.Is(err, ErrOldGenFull) {
		t.Errorf("err = %v, want ErrOldGenFull", err)
	}
}

func TestCommitMinorRejectsBadArgs(t *testing.T) {
	h := New(testConfig())
	if err := h.CommitMinor(0, -1, 0, 0); err == nil {
		t.Error("negative survivor accepted")
	}
	if err := h.CommitMinor(0, h.SurvivorSize()+1, 0, 0); err == nil {
		t.Error("survivor overflow accepted")
	}
}

func TestCommitFull(t *testing.T) {
	h := New(testConfig())
	h.CommitMinor(0, 100, h.OldSize()/2, 0)
	h.AllocDirect(0, 5000)
	if err := h.CommitFull(1 << 20); err != nil {
		t.Fatal(err)
	}
	if h.OldUsed() != 1<<20 {
		t.Errorf("old = %d after full, want 1 MiB", h.OldUsed())
	}
	if h.SurvivorUsed() != 0 || h.EdenUsed(0) != 0 {
		t.Error("full GC did not clear young generation")
	}
	if h.Stats().FullCommits != 1 {
		t.Error("full commit not counted")
	}
}

func TestCommitFullOOM(t *testing.T) {
	h := New(testConfig())
	if err := h.CommitFull(h.OldSize() + 1); err == nil {
		t.Error("live bytes beyond old gen accepted — should be OOM")
	}
	if err := h.CommitFull(-1); err == nil {
		t.Error("negative live bytes accepted")
	}
}

func TestCompartments(t *testing.T) {
	cfg := testConfig()
	cfg.Compartments = 4
	h := New(cfg)
	if h.Compartments() != 4 {
		t.Fatalf("compartments = %d", h.Compartments())
	}
	if h.EdenSliceSize() != h.EdenSize()/4 {
		t.Errorf("slice = %d, want eden/4", h.EdenSliceSize())
	}
	// Filling one compartment must not affect another.
	h.AllocDirect(0, h.EdenSliceSize())
	if h.AllocDirect(0, 1) {
		t.Error("compartment 0 not full")
	}
	if !h.AllocDirect(1, h.EdenSliceSize()) {
		t.Error("compartment 1 affected by compartment 0")
	}
	// Minor commit of compartment 0 leaves compartment 1 intact.
	if err := h.CommitMinor(0, 10, 0, 0); err != nil {
		t.Fatal(err)
	}
	if h.EdenUsed(1) != h.EdenSliceSize() {
		t.Error("minor commit of compartment 0 reset compartment 1")
	}
}

// Property: for any valid sizing, the space decomposition is exact and all
// spaces are positive.
func TestSizingProperty(t *testing.T) {
	f := func(minHeapMB uint8, factor uint8, newRatio, survRatio uint8) bool {
		cfg := Config{
			MinHeap:       (int64(minHeapMB%200) + 8) << 20,
			Factor:        float64(factor%6) + 1,
			NewRatio:      int(newRatio%4) + 1,
			SurvivorRatio: int(survRatio%10) + 1,
			TLABSize:      32 << 10,
		}
		h := New(cfg)
		if h.EdenSize() <= 0 || h.SurvivorSize() <= 0 || h.OldSize() <= 0 {
			return false
		}
		return h.EdenSize()+2*h.SurvivorSize()+h.OldSize() == h.TotalSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: eden usage never exceeds slice capacity under any interleaving
// of TLAB refills and direct allocations.
func TestEdenBoundProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		h := New(Config{MinHeap: 4 << 20, Factor: 3, TLABSize: 16 << 10})
		var tlab TLAB
		for _, op := range ops {
			if op%2 == 0 {
				h.RefillTLAB(&tlab, 0)
			} else {
				h.AllocDirect(0, int64(op)*16)
			}
			if h.EdenUsed(0) > h.EdenSliceSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
