// Package heap models the HotSpot-style generational Java heap the paper's
// JVM used: an eden space plus two survivor spaces (the young generation)
// and a mature (old) generation, with per-thread TLAB bump allocation.
//
// Space accounting lives here; object-level liveness lives in objmodel, and
// the collection algorithms in gc. Sizing follows the paper's methodology:
// the total heap is a configurable multiple (3x in the paper) of the
// workload's minimum heap requirement, split young/old by NewRatio and
// eden/survivor by SurvivorRatio as in HotSpot.
//
// The package also implements the paper's second future-work proposal
// (§IV): a compartmentalized heap. With Compartments > 1, eden is divided
// into equal slices, each serving one thread group; a slice filling up
// triggers a compartment-local minor collection that only disturbs that
// group's objects, isolating them from cross-thread lifetime interference.
package heap

import (
	"fmt"
)

// Config sizes a heap.
type Config struct {
	// MinHeap is the workload's minimum heap requirement in bytes — the
	// smallest heap under which it can run at all.
	MinHeap int64
	// Factor scales MinHeap to the actual heap size. The paper uses 3.
	Factor float64
	// NewRatio is the old:young size ratio; HotSpot's default 2 makes the
	// young generation one third of the heap.
	NewRatio int
	// SurvivorRatio is the eden:survivor ratio; HotSpot's default 8 gives
	// each survivor space 1/10 of the young generation.
	SurvivorRatio int
	// TLABSize is the thread-local allocation buffer size in bytes.
	TLABSize int64
	// Compartments divides eden into this many independent slices
	// (future-work feature). Values <= 1 mean one shared eden.
	Compartments int
}

// WithDefaults fills unset fields with HotSpot-like defaults and the
// paper's 3x heap factor.
func (c Config) WithDefaults() Config {
	if c.Factor == 0 {
		c.Factor = 3
	}
	if c.NewRatio == 0 {
		c.NewRatio = 2
	}
	if c.SurvivorRatio == 0 {
		c.SurvivorRatio = 8
	}
	if c.TLABSize == 0 {
		c.TLABSize = 64 << 10
	}
	if c.Compartments < 1 {
		c.Compartments = 1
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MinHeap <= 0 {
		return fmt.Errorf("heap: MinHeap = %d, need > 0", c.MinHeap)
	}
	if c.Factor < 1 {
		return fmt.Errorf("heap: Factor = %v, need >= 1", c.Factor)
	}
	if c.NewRatio < 1 || c.SurvivorRatio < 1 {
		return fmt.Errorf("heap: ratios must be >= 1")
	}
	if c.TLABSize <= 0 {
		return fmt.Errorf("heap: TLABSize = %d, need > 0", c.TLABSize)
	}
	if c.Compartments < 1 {
		return fmt.Errorf("heap: Compartments = %d, need >= 1", c.Compartments)
	}
	return nil
}

// Stats accumulates heap-level counters across a run.
type Stats struct {
	TLABRefills      int64
	DirectAllocs     int64
	MinorCommits     int64
	FullCommits      int64
	SweepCommits     int64
	PromotedBytes    int64
	CopiedBytes      int64 // survivor bytes copied during minor collections
	PretenuredAllocs int64
	PretenuredBytes  int64
}

// Heap is one instantiated generational heap.
type Heap struct {
	cfg Config

	totalSize    int64
	youngSize    int64
	edenSize     int64 // total across compartments
	survivorSize int64 // one survivor space
	oldSize      int64

	edenSlice int64 // per-compartment eden capacity
	edenUsed  []int64
	survUsed  int64
	oldUsed   int64
	fragBytes int64 // old-gen space lost to fragmentation (sweep w/o compact)

	stats Stats
}

// New builds a heap from cfg (after applying defaults). It panics on an
// invalid configuration; heap configs come from validated experiment specs.
func New(cfg Config) *Heap {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	h := &Heap{cfg: cfg}
	h.totalSize = int64(float64(cfg.MinHeap) * cfg.Factor)
	h.youngSize = h.totalSize / int64(cfg.NewRatio+1)
	h.oldSize = h.totalSize - h.youngSize
	// Young = eden + 2 survivors; eden:survivor = SurvivorRatio:1.
	h.survivorSize = h.youngSize / int64(cfg.SurvivorRatio+2)
	h.edenSize = h.youngSize - 2*h.survivorSize
	h.edenSlice = h.edenSize / int64(cfg.Compartments)
	h.edenUsed = make([]int64, cfg.Compartments)
	return h
}

// Config returns the (defaulted) configuration.
func (h *Heap) Config() Config { return h.cfg }

// TotalSize returns the committed heap size in bytes.
func (h *Heap) TotalSize() int64 { return h.totalSize }

// EdenSize returns total eden capacity across compartments.
func (h *Heap) EdenSize() int64 { return h.edenSize }

// EdenSliceSize returns the eden capacity of one compartment.
func (h *Heap) EdenSliceSize() int64 { return h.edenSlice }

// SurvivorSize returns the capacity of one survivor space.
func (h *Heap) SurvivorSize() int64 { return h.survivorSize }

// OldSize returns the mature generation capacity.
func (h *Heap) OldSize() int64 { return h.oldSize }

// Compartments returns the number of eden slices.
func (h *Heap) Compartments() int { return h.cfg.Compartments }

// EdenUsed returns the bytes consumed in compartment comp's eden slice.
func (h *Heap) EdenUsed(comp int) int64 { return h.edenUsed[comp] }

// SurvivorUsed returns the bytes in the active survivor space.
func (h *Heap) SurvivorUsed() int64 { return h.survUsed }

// OldUsed returns the bytes in the mature generation.
func (h *Heap) OldUsed() int64 { return h.oldUsed }

// OldPressure returns old-generation occupancy in [0, 1].
func (h *Heap) OldPressure() float64 {
	return float64(h.oldUsed) / float64(h.oldSize)
}

// Stats returns a copy of the accumulated counters.
func (h *Heap) Stats() Stats { return h.stats }

// TLAB is a thread-local allocation buffer: a bump-pointer region carved
// from one eden compartment. The zero value is an empty (exhausted) TLAB.
type TLAB struct {
	remaining   int64
	compartment int
}

// Compartment returns the eden slice this TLAB was carved from.
func (t *TLAB) Compartment() int { return t.compartment }

// Remaining returns the unallocated bytes left in the TLAB.
func (t *TLAB) Remaining() int64 { return t.remaining }

// Alloc bumps size bytes off the TLAB, reporting whether it fit.
func (t *TLAB) Alloc(size int64) bool {
	if size > t.remaining {
		return false
	}
	t.remaining -= size
	return true
}

// RefillTLAB discards t's unused tail (as HotSpot does on retirement) and
// carves a fresh buffer for compartment comp. It returns false when the
// compartment's eden slice cannot fit another TLAB — the signal that a
// minor collection is due.
func (h *Heap) RefillTLAB(t *TLAB, comp int) bool {
	left := h.edenSlice - h.edenUsed[comp]
	if left < h.cfg.TLABSize {
		return false
	}
	h.edenUsed[comp] += h.cfg.TLABSize
	t.remaining = h.cfg.TLABSize
	t.compartment = comp
	h.stats.TLABRefills++
	return true
}

// AllocDirect allocates size bytes straight from compartment comp's eden
// slice, bypassing TLABs — the path for objects too large for a TLAB. It
// returns false when the slice is full.
func (h *Heap) AllocDirect(comp int, size int64) bool {
	if h.edenUsed[comp]+size > h.edenSlice {
		return false
	}
	h.edenUsed[comp] += size
	h.stats.DirectAllocs++
	return true
}

// AllocOld allocates size bytes directly in the old generation — the
// pretenuring path for allocation sites known to produce long-lived
// objects. It returns false when the old generation cannot fit the
// object; the caller must force a full collection.
func (h *Heap) AllocOld(size int64) bool {
	if h.oldUsed+size > h.oldSize {
		return false
	}
	h.oldUsed += size
	h.stats.PretenuredAllocs++
	h.stats.PretenuredBytes += size
	return true
}

// CommitMinor applies the space effects of a minor collection of
// compartment comp: eden resets, survivorBytes land in the empty survivor
// space, and promotedBytes move to the old generation. It returns an error
// if the old generation cannot absorb the promotion — the caller must run
// a full collection first.
//
// With multiple compartments, survivor space is shared: a compartment-local
// collection replaces only its own prior survivor share. For simplicity of
// accounting the shared survivor pool tracks the aggregate; the gc package
// keeps the per-object truth.
func (h *Heap) CommitMinor(comp int, survivorBytes, promotedBytes int64, priorSurvivor int64) error {
	if survivorBytes < 0 || promotedBytes < 0 {
		return fmt.Errorf("heap: negative commit (%d survivor, %d promoted)", survivorBytes, promotedBytes)
	}
	if survivorBytes > h.survivorSize {
		return fmt.Errorf("heap: survivor commit %d exceeds space %d", survivorBytes, h.survivorSize)
	}
	if h.oldUsed+promotedBytes > h.oldSize {
		return ErrOldGenFull
	}
	h.edenUsed[comp] = 0
	h.survUsed += survivorBytes - priorSurvivor
	if h.survUsed < 0 {
		h.survUsed = 0
	}
	h.oldUsed += promotedBytes
	h.stats.MinorCommits++
	h.stats.PromotedBytes += promotedBytes
	h.stats.CopiedBytes += survivorBytes
	return nil
}

// ErrOldGenFull reports that a promotion cannot fit in the old generation.
var ErrOldGenFull = fmt.Errorf("heap: old generation full")

// CommitFull applies a full collection: the old generation compacts down
// to liveOldBytes. Eden and survivor spaces are also emptied, because the
// paper's collector (HotSpot ParallelGC full collection) collects the
// entire heap. Compaction eliminates any fragmentation left by concurrent
// sweeping.
func (h *Heap) CommitFull(liveOldBytes int64) error {
	if liveOldBytes < 0 {
		return fmt.Errorf("heap: negative live bytes %d", liveOldBytes)
	}
	if liveOldBytes > h.oldSize {
		return fmt.Errorf("heap: live old bytes %d exceed old gen %d — OutOfMemoryError", liveOldBytes, h.oldSize)
	}
	h.oldUsed = liveOldBytes
	h.fragBytes = 0
	h.survUsed = 0
	for i := range h.edenUsed {
		h.edenUsed[i] = 0
	}
	h.stats.FullCommits++
	return nil
}

// Fragmentation returns the old-generation bytes currently lost to
// fragmentation.
func (h *Heap) Fragmentation() int64 { return h.fragBytes }

// CommitSweep applies a concurrent (non-compacting) old-generation sweep:
// dead space is freed in place, but fragAdd of it is unusable until a
// compacting collection. Fragmentation is capped at 30% of the old
// generation — beyond that, any real allocator forces compaction.
func (h *Heap) CommitSweep(liveOldBytes, fragAdd int64) error {
	if liveOldBytes < 0 || fragAdd < 0 {
		return fmt.Errorf("heap: negative sweep commit (%d live, %d frag)", liveOldBytes, fragAdd)
	}
	h.fragBytes += fragAdd
	if limit := h.oldSize * 3 / 10; h.fragBytes > limit {
		h.fragBytes = limit
	}
	used := liveOldBytes + h.fragBytes
	if used > h.oldSize {
		used = h.oldSize
	}
	h.oldUsed = used
	h.stats.SweepCommits++
	return nil
}
