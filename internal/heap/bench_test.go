package heap

import "testing"

// BenchmarkTLABAlloc measures the bump-pointer fast path including
// periodic refills.
func BenchmarkTLABAlloc(b *testing.B) {
	h := New(Config{MinHeap: 256 << 20, Factor: 3, TLABSize: 64 << 10})
	var tlab TLAB
	h.RefillTLAB(&tlab, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !tlab.Alloc(96) {
			if !h.RefillTLAB(&tlab, 0) {
				h.CommitMinor(0, 0, 0, 0)
				h.RefillTLAB(&tlab, 0)
			}
			tlab.Alloc(96)
		}
	}
}

// BenchmarkCommitMinor measures the space bookkeeping of a collection.
func BenchmarkCommitMinor(b *testing.B) {
	h := New(Config{MinHeap: 256 << 20, Factor: 3})
	for i := 0; i < b.N; i++ {
		if err := h.CommitMinor(0, 1<<20, 64<<10, 1<<20); err != nil {
			h.CommitFull(0)
		}
	}
}
