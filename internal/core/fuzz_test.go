package core

import (
	"bytes"
	"testing"

	"javasim/internal/fit"
)

// FuzzLoadPlan throws arbitrary bytes at the plan loader. Whatever the
// input, LoadPlan must either return a plan its own Validate accepts or
// a clear error — never panic, and never let a degenerate usl sweep
// (fewer than fit.MinPoints thread counts, which the fitter would turn
// into a mid-plan failure) through validation. The seed corpus covers
// the usl report schema specifically: valid plans, short sweeps,
// unknown fields/kinds/metrics/outputs, and rate-sweep cross-references.
func FuzzLoadPlan(f *testing.F) {
	seeds := []string{
		``,
		`not json`,
		`{}`,
		`{"Scenarios":[]}`,
		`{"Scenarios":[{"Name":"a","Workload":"xalan"}]}`,
		// A valid usl plan: report plus per-scenario output over a
		// 3-point sweep.
		`{"ThreadCounts":[2,4,8],"Scenarios":[{"Name":"a","Workload":"xalan","Outputs":["usl"]}],"Reports":[{"Name":"r","Kind":"usl"}]}`,
		// Degenerate sweeps: a usl report or output over < 3 points must
		// be rejected at validation time with a clear error, not NaN.
		`{"ThreadCounts":[4,32],"Scenarios":[{"Name":"a","Workload":"xalan"}],"Reports":[{"Name":"r","Kind":"usl"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"xalan","ThreadCounts":[8],"Outputs":["usl"]}]}`,
		`{"ThreadCounts":[2,4,8],"Scenarios":[{"Name":"a","Workload":"xalan","ThreadCounts":[4,32]}],"Reports":[{"Name":"r","Kind":"usl","Scenarios":["a"]}]}`,
		// Unknown fields, kinds, metrics, outputs.
		`{"Scenarios":[{"Name":"a","Workload":"xalan","Sigma":1}]}`,
		`{"ThreadCounts":[2,4,8],"Scenarios":[{"Name":"a","Workload":"xalan"}],"Reports":[{"Name":"r","Kind":"lsu"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"xalan"}],"Reports":[{"Name":"r","Kind":"series","Metric":"sigma"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"xalan","Outputs":["lsu"]}]}`,
		// usl across a rate sweep: must be rejected (the fit reads the
		// thread axis).
		`{"Scenarios":[{"Name":"a","Workload":"server","Traffic":{"Process":"poisson","Rates":[100,200]}}],"Reports":[{"Name":"r","Kind":"usl"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"server","Traffic":{"Process":"poisson","Rates":[100,200]},"Outputs":["usl"]}]}`,
		// Structural traps around validation edges.
		`{"ThreadCounts":[8,4],"Scenarios":[{"Name":"a","Workload":"xalan"}]}`,
		`{"Scale":7,"Scenarios":[{"Name":"a","Workload":"xalan"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"xalan"},{"Name":"a","Workload":"xalan"}]}`,
		`{"Scenarios":[{"Name":"a","Workload":"no-such-workload"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := LoadPlan(bytes.NewReader(data))
		if err != nil {
			if p != nil {
				t.Fatalf("LoadPlan returned a plan alongside error %v", err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("LoadPlan accepted a plan its own Validate rejects: %v", err)
		}
		// The fitter's precondition must be enforced at the schema
		// level: anything declaring a usl artifact sweeps enough thread
		// counts to fit.
		for i := range p.Scenarios {
			sc := &p.Scenarios[i]
			for _, out := range sc.Outputs {
				if out == OutputUSL && sc.Traffic == nil && len(sc.threadCounts(p)) < fit.MinPoints {
					t.Fatalf("scenario %q passed validation with a %d-point usl sweep", sc.Name, len(sc.threadCounts(p)))
				}
			}
		}
		for i := range p.Reports {
			rs := &p.Reports[i]
			if rs.Kind != ReportUSL {
				continue
			}
			for _, name := range p.reportScenarios(rs) {
				for j := range p.Scenarios {
					sc := &p.Scenarios[j]
					if sc.Name == name && sc.Traffic == nil && len(sc.threadCounts(p)) < fit.MinPoints {
						t.Fatalf("report %q passed validation over scenario %q's %d-point sweep", rs.Name, name, len(sc.threadCounts(p)))
					}
				}
			}
		}
	})
}
