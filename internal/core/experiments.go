package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"javasim/internal/gc"
	"javasim/internal/report"
	"javasim/internal/sim"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// ExperimentConfig parameterizes the reproduction suite. The zero value
// reproduces the paper's setup at full scale.
type ExperimentConfig struct {
	// ThreadCounts is the sweep; nil means the paper's {4,8,16,24,32,48}.
	ThreadCounts []int
	// Scale shrinks every workload (0 < Scale <= 1); 0 means full scale.
	// Benchmarks and CI use reduced scales.
	Scale float64
	// Seed drives all randomness; 0 means 42.
	Seed uint64
	// Workloads restricts the benchmark set; nil means all six.
	Workloads []workload.Spec
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if len(c.ThreadCounts) == 0 {
		c.ThreadCounts = DefaultThreadCounts
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.All()
	}
	return c
}

// Suite lazily runs and caches the per-workload sweeps behind every
// figure and table, so regenerating all artifacts costs one sweep per
// workload. The sweep cache is concurrency-safe: any number of
// goroutines may generate figures, studies, and ablations on one suite
// at once, and a sweep two of them need simulates exactly once — the
// second caller waits for the first and receives the identical *Sweep
// pointer. Construct suites through Engine.Suite (or the deprecated
// NewSuite, which binds to the shared default engine).
type Suite struct {
	cfg ExperimentConfig
	eng *Engine

	mu     sync.Mutex
	sweeps map[string]*sweepCell
}

// sweepCell memoizes one workload's sweep, singleflight-style: the first
// requester becomes the leader and runs the sweep; later requesters wait
// on done. Failed sweeps are evicted so a live context can retry after a
// canceled one.
type sweepCell struct {
	done chan struct{}
	sw   *Sweep
	err  error
}

// NewSuite builds a suite on the shared default engine.
//
// Deprecated: construct an Engine and use Engine.Suite for control over
// parallelism, caching, and progress observation.
func NewSuite(cfg ExperimentConfig) *Suite {
	return DefaultEngine().Suite(cfg)
}

// Config returns the defaulted configuration.
func (s *Suite) Config() ExperimentConfig { return s.cfg }

// Engine returns the engine the suite dispatches through.
func (s *Suite) Engine() *Engine { return s.eng }

// SweepFor returns the memoized sweep of the named workload, simulating
// it (through the engine's bounded pool) at most once per suite no matter
// how many figures, studies, or concurrent callers ask for it. Repeated
// calls return the identical *Sweep pointer.
func (s *Suite) SweepFor(ctx context.Context, name string) (*Sweep, error) {
	s.mu.Lock()
	cell, ok := s.sweeps[name]
	if !ok {
		cell = &sweepCell{done: make(chan struct{})}
		s.sweeps[name] = cell
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-cell.done:
			if cell.err != nil && ctx.Err() == nil &&
				(errors.Is(cell.err, context.Canceled) || errors.Is(cell.err, context.DeadlineExceeded)) {
				// The leader's context died but ours is live; the cell was
				// evicted, so retry and likely become the new leader.
				return s.SweepFor(ctx, name)
			}
			return cell.sw, cell.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	cell.sw, cell.err = s.runSweep(ctx, name)
	if cell.err != nil {
		// Do not poison the cache: a canceled or failed sweep must be
		// retryable by the next caller.
		s.mu.Lock()
		delete(s.sweeps, name)
		s.mu.Unlock()
	}
	close(cell.done)
	return cell.sw, cell.err
}

// runSweep executes the suite's sweep for one workload.
func (s *Suite) runSweep(ctx context.Context, name string) (*Sweep, error) {
	var spec workload.Spec
	found := false
	for _, w := range s.cfg.Workloads {
		if w.Name == name {
			spec, found = w, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: workload %q not in suite", name)
	}
	return s.eng.Sweep(ctx, spec.Scale(s.cfg.Scale), SweepConfig{
		ThreadCounts: s.cfg.ThreadCounts,
		Base:         vm.Config{Seed: s.cfg.Seed},
	})
}

// artifact emits the rendered-artifact event on success and passes the
// generator's result through.
func (s *Suite) artifact(name string, t *report.Table, err error) (*report.Table, error) {
	if err == nil {
		s.eng.emit(Event{Kind: ArtifactRendered, Artifact: name})
	}
	return t, err
}

func (s *Suite) threadHeaders(key string) []string {
	hs := []string{key}
	for _, n := range s.cfg.ThreadCounts {
		hs = append(hs, fmt.Sprintf("t=%d", n))
	}
	return hs
}

// seriesTable renders one number per (workload, thread count).
func (s *Suite) seriesTable(ctx context.Context, title, key string, f func(*Sweep) []float64, format func(float64) string) (*report.Table, error) {
	t := &report.Table{Title: title, Headers: s.threadHeaders(key)}
	for _, w := range s.cfg.Workloads {
		sw, err := s.SweepFor(ctx, w.Name)
		if err != nil {
			return nil, err
		}
		row := []string{w.Name}
		for _, v := range f(sw) {
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig1a reproduces Figure 1a: total lock acquisitions per run versus
// thread count, for all six benchmarks.
func (s *Suite) Fig1a(ctx context.Context) (*report.Table, error) {
	t, err := s.seriesTable(ctx,
		"Figure 1a — lock acquisitions vs threads",
		"workload",
		func(sw *Sweep) []float64 { return sw.Acquisitions() },
		func(v float64) string { return report.FormatCount(int64(v)) },
	)
	if err != nil {
		return nil, err
	}
	t.Note = "paper: acquisitions grow with threads for scalable apps, flat for non-scalable"
	return s.artifact("Fig1a", t, nil)
}

// Fig1b reproduces Figure 1b: lock contention instances versus threads.
func (s *Suite) Fig1b(ctx context.Context) (*report.Table, error) {
	t, err := s.seriesTable(ctx,
		"Figure 1b — lock contentions vs threads",
		"workload",
		func(sw *Sweep) []float64 { return sw.Contentions() },
		func(v float64) string { return report.FormatCount(int64(v)) },
	)
	if err != nil {
		return nil, err
	}
	t.Note = "paper: contentions grow with threads for scalable apps, flat for non-scalable"
	return s.artifact("Fig1b", t, nil)
}

// cdfLimits are the lifespan bucket boundaries (bytes) used for the
// Figure 1c/1d distributions.
var cdfLimits = []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// LifespanCDF reproduces a Figure 1c/1d panel: the cumulative lifespan
// distribution of one workload at two thread counts.
func (s *Suite) LifespanCDF(ctx context.Context, name string, lowThreads, highThreads int) (*report.Table, error) {
	sw, err := s.SweepFor(ctx, name)
	if err != nil {
		return nil, err
	}
	var low, high *vm.Result
	for _, p := range sw.Points {
		if p.Threads == lowThreads {
			low = p.Result
		}
		if p.Threads == highThreads {
			high = p.Result
		}
	}
	if low == nil || high == nil {
		return nil, fmt.Errorf("core: thread counts %d/%d not in sweep for %s",
			lowThreads, highThreads, name)
	}
	t := &report.Table{
		Title: fmt.Sprintf("%s object lifetime CDF (%% of objects with lifespan < X bytes)", name),
		Headers: []string{"lifespan <",
			fmt.Sprintf("%d threads", lowThreads),
			fmt.Sprintf("%d threads", highThreads)},
	}
	for _, lim := range cdfLimits {
		t.AddRow(formatBytes(lim),
			report.FormatPct(low.Lifespans.FractionBelow(lim)),
			report.FormatPct(high.Lifespans.FractionBelow(lim)))
	}
	return t, nil
}

// Fig1c reproduces Figure 1c: eclipse's lifetime CDF at 4 vs 48 threads
// (insensitive to thread count — non-scalable).
func (s *Suite) Fig1c(ctx context.Context) (*report.Table, error) {
	lo, hi := s.loHi()
	t, err := s.LifespanCDF(ctx, "eclipse", lo, hi)
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 1c — " + t.Title
	t.Note = "paper: eclipse's distribution shows almost no change with thread count"
	return s.artifact("Fig1c", t, nil)
}

// Fig1d reproduces Figure 1d: xalan's lifetime CDF at 4 vs 48 threads
// (lifespans stretch as threads scale — the paper's headline GC finding).
func (s *Suite) Fig1d(ctx context.Context) (*report.Table, error) {
	lo, hi := s.loHi()
	t, err := s.LifespanCDF(ctx, "xalan", lo, hi)
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 1d — " + t.Title
	t.Note = "paper: xalan drops from >80% of objects <1KB at 4 threads to ~50% at 48"
	return s.artifact("Fig1d", t, nil)
}

func (s *Suite) loHi() (int, int) {
	tc := s.cfg.ThreadCounts
	return tc[0], tc[len(tc)-1]
}

// Fig2 reproduces Figure 2: the mutator/GC time split of the scalable
// trio across the thread sweep.
func (s *Suite) Fig2(ctx context.Context) (*report.Table, error) {
	t := &report.Table{
		Title:   "Figure 2 — distribution of mutator and GC times (scalable applications)",
		Headers: []string{"workload", "threads", "mutator", "gc", "gc-share", "minor", "full"},
		Note:    "paper: mutator time keeps falling through 48 threads while GC time grows",
	}
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		if !s.hasWorkload(name) {
			continue
		}
		sw, err := s.SweepFor(ctx, name)
		if err != nil {
			return nil, err
		}
		for _, p := range sw.Points {
			r := p.Result
			t.AddRow(name, fmt.Sprintf("%d", p.Threads),
				r.MutatorTime.String(), r.GCTime.String(),
				report.FormatPct(r.GCShare()),
				fmt.Sprintf("%d", r.GCStats.MinorCount),
				fmt.Sprintf("%d", r.GCStats.FullCount))
		}
	}
	return s.artifact("Fig2", t, nil)
}

// Fig2Chart renders Figure 2 as an ASCII chart: per scalable workload,
// the mutator and GC time series against the thread sweep — the quickest
// way to eyeball the crossing shapes in a terminal.
func (s *Suite) Fig2Chart(ctx context.Context) ([]*report.Chart, error) {
	var out []*report.Chart
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		if !s.hasWorkload(name) {
			continue
		}
		sw, err := s.SweepFor(ctx, name)
		if err != nil {
			return nil, err
		}
		ticks := make([]string, len(sw.Points))
		for i, p := range sw.Points {
			ticks[i] = fmt.Sprintf("%d", p.Threads)
		}
		mut := sw.MutatorSeconds()
		gcs := sw.GCSeconds()
		ms := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = x * 1000
			}
			return out
		}
		out = append(out, &report.Chart{
			Title:  fmt.Sprintf("Figure 2 — %s: mutator vs GC time (ms)", name),
			XLabel: "threads (= cores)",
			XTicks: ticks,
			Series: []report.Series{
				{Name: "mutator ms", Points: ms(mut)},
				{Name: "gc ms", Points: ms(gcs)},
			},
		})
	}
	return out, nil
}

func (s *Suite) hasWorkload(name string) bool {
	for _, w := range s.cfg.Workloads {
		if w.Name == name {
			return true
		}
	}
	return false
}

// ClassificationTable reproduces the §II-C characterization: which
// applications are scalable, with speedups and the paper agreement check.
func (s *Suite) ClassificationTable(ctx context.Context) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table — scalability classification (paper §II-C)",
		Headers: []string{"workload", "max-speedup", "at-threads", "final-eff", "verdict", "paper", "match"},
	}
	for _, w := range s.cfg.Workloads {
		sw, err := s.SweepFor(ctx, w.Name)
		if err != nil {
			return nil, err
		}
		c := sw.Classify(DefaultSpeedupThreshold)
		verdict := map[bool]string{true: "scalable", false: "non-scalable"}
		t.AddRow(c.Name,
			fmt.Sprintf("%.2fx", c.MaxSpeedup),
			fmt.Sprintf("%d", c.AtThreads),
			fmt.Sprintf("%.2f", c.FinalEfficiency),
			verdict[c.Scalable], verdict[c.PaperScalable],
			map[bool]string{true: "yes", false: "NO"}[c.Matches()])
	}
	return s.artifact("ClassificationTable", t, nil)
}

// WorkDistributionTable reproduces the §III workload-distribution
// observation: non-scalable applications concentrate work in 3-4 threads.
func (s *Suite) WorkDistributionTable(ctx context.Context) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table — per-thread work distribution at the largest thread count",
		Headers: []string{"workload", "threads", "busy-threads", "top4-share", "max/mean"},
		Note:    "paper §III: jython uses 3-4 threads for most work; xalan/lusearch/sunflow are near-uniform",
	}
	for _, w := range s.cfg.Workloads {
		sw, err := s.SweepFor(ctx, w.Name)
		if err != nil {
			return nil, err
		}
		last := sw.Points[len(sw.Points)-1]
		shares := make([]float64, len(last.Result.PerThreadUnits))
		busy := 0
		for i, u := range last.Result.PerThreadUnits {
			shares[i] = float64(u)
			if u > 0 {
				busy++
			}
		}
		f := sw.ComputeFactors()
		t.AddRow(w.Name, fmt.Sprintf("%d", last.Threads), fmt.Sprintf("%d", busy),
			report.FormatPct(f.Top4Share),
			fmt.Sprintf("%.2f", imbalance(shares)))
	}
	return s.artifact("WorkDistributionTable", t, nil)
}

func imbalance(shares []float64) float64 {
	var max, sum float64
	for _, s := range shares {
		if s > max {
			max = s
		}
		sum += s
	}
	if sum == 0 || len(shares) == 0 {
		return 1
	}
	return max / (sum / float64(len(shares)))
}

// FactorsTable summarizes the factor decomposition for every workload —
// the paper's analysis condensed to one row per benchmark.
func (s *Suite) FactorsTable(ctx context.Context) (*report.Table, error) {
	t := &report.Table{
		Title: "Table — scalability factor decomposition",
		Headers: []string{"workload", "amdahl-f", "acq-growth", "cont-growth",
			"gc-growth", "gc-share", "lifespan-shift", "lifespan-ks", "top4-share"},
	}
	for _, w := range s.cfg.Workloads {
		sw, err := s.SweepFor(ctx, w.Name)
		if err != nil {
			return nil, err
		}
		f := sw.ComputeFactors()
		t.AddRow(w.Name,
			fmt.Sprintf("%.3f", f.SequentialFraction),
			fmt.Sprintf("%.2fx", f.AcquisitionGrowth),
			fmt.Sprintf("%.2fx", f.ContentionGrowth),
			fmt.Sprintf("%.2fx", f.GCTimeGrowth),
			report.FormatPct(f.GCShareFirst)+"->"+report.FormatPct(f.GCShareLast),
			fmt.Sprintf("%+.1fpt", 100*f.LifespanShift),
			fmt.Sprintf("%.3f", f.LifespanKS),
			report.FormatPct(f.Top4Share))
	}
	return s.artifact("FactorsTable", t, nil)
}

// AblationBias evaluates the paper's first future-work proposal (§IV):
// phase-biased scheduling, which staggers worker-thread groups in time to
// reduce lifetime interference. Reported on xalan at the largest count.
func (s *Suite) AblationBias(ctx context.Context) (*report.Table, error) {
	t, err := s.ablation(ctx, "Ablation — phase-biased scheduling (paper §IV, suggestion 1)",
		func(cfg *vm.Config) {
			cfg.Sched.Bias.Groups = 2
			cfg.Sched.Bias.PhaseLength = 2 * sim.Millisecond
		},
		"paper hypothesis: staggering threads shortens lifespans and cuts contention at some throughput cost")
	return s.artifact("AblationBias", t, err)
}

// AblationCompartments evaluates the paper's second future-work proposal
// (§IV): a compartmentalized heap isolating thread groups' objects, which
// should shorten collection pauses.
func (s *Suite) AblationCompartments(ctx context.Context) (*report.Table, error) {
	t, err := s.ablation(ctx, "Ablation — compartmentalized heap (paper §IV, suggestion 2)",
		func(cfg *vm.Config) { cfg.Compartments = 4 },
		"paper hypothesis: per-group heap compartments shorten GC pause times")
	return s.artifact("AblationCompartments", t, err)
}

func (s *Suite) ablation(ctx context.Context, title string, modify func(*vm.Config), note string) (*report.Table, error) {
	spec, ok := workload.ByName("xalan")
	if !ok {
		return nil, fmt.Errorf("core: xalan spec missing")
	}
	spec = spec.Scale(s.cfg.Scale)
	_, hi := s.loHi()

	runOne := func(mod func(*vm.Config)) (*vm.Result, error) {
		cfg := vm.Config{Seed: s.cfg.Seed, Threads: hi}
		if mod != nil {
			mod(&cfg)
		}
		return s.eng.Run(ctx, spec, cfg)
	}
	base, err := runOne(nil)
	if err != nil {
		return nil, err
	}
	mod, err := runOne(modify)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   title + fmt.Sprintf(" — xalan @ %d threads", hi),
		Headers: []string{"metric", "baseline", "modified"},
		Note:    note,
	}
	t.AddRow("total time", base.TotalTime.String(), mod.TotalTime.String())
	t.AddRow("gc time", base.GCTime.String(), mod.GCTime.String())
	t.AddRow("mean gc pause", meanPause(base.GCPauses).String(), meanPause(mod.GCPauses).String())
	t.AddRow("max gc pause", maxPause(base.GCPauses).String(), maxPause(mod.GCPauses).String())
	t.AddRow("collections", fmt.Sprintf("%d", len(base.GCPauses)), fmt.Sprintf("%d", len(mod.GCPauses)))
	t.AddRow("lifespan cdf@1KB", report.FormatPct(base.Lifespans.FractionBelow(1024)),
		report.FormatPct(mod.Lifespans.FractionBelow(1024)))
	t.AddRow("mean lifespan", formatBytes(int64(base.Lifespans.Mean())), formatBytes(int64(mod.Lifespans.Mean())))
	t.AddRow("lock contentions", report.FormatCount(base.LockContentions), report.FormatCount(mod.LockContentions))
	t.AddRow("utilization", fmt.Sprintf("%.2f", base.Utilization), fmt.Sprintf("%.2f", mod.Utilization))
	return t, nil
}

func meanPause(ps []gc.Pause) sim.Time {
	if len(ps) == 0 {
		return 0
	}
	var sum sim.Time
	for _, p := range ps {
		sum += p.Duration
	}
	return sum / sim.Time(len(ps))
}

func maxPause(ps []gc.Pause) sim.Time {
	var m sim.Time
	for _, p := range ps {
		if p.Duration > m {
			m = p.Duration
		}
	}
	return m
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// AllArtifacts regenerates every figure and table of the reproduction, in
// the paper's order. A canceled context stops the batch at the next
// artifact (and aborts the in-flight sweeps promptly).
func (s *Suite) AllArtifacts(ctx context.Context) ([]*report.Table, error) {
	gens := []func(context.Context) (*report.Table, error){
		s.Fig1a, s.Fig1b, s.Fig1c, s.Fig1d, s.Fig2,
		s.ClassificationTable, s.WorkDistributionTable, s.FactorsTable,
		s.AblationBias, s.AblationCompartments,
	}
	var out []*report.Table
	for _, g := range gens {
		t, err := g(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
