package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"javasim/internal/gc"
	"javasim/internal/report"
	"javasim/internal/sim"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// ExperimentConfig parameterizes the reproduction suite. The zero value
// reproduces the paper's setup at full scale.
type ExperimentConfig struct {
	// ThreadCounts is the sweep; nil means the paper's {4,8,16,24,32,48}.
	ThreadCounts []int
	// Scale shrinks every workload (0 < Scale <= 1); 0 means full scale.
	// Benchmarks and CI use reduced scales.
	Scale float64
	// Seed drives all randomness; 0 means 42.
	Seed uint64
	// Workloads restricts the benchmark set; nil means all six.
	Workloads []workload.Spec
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if len(c.ThreadCounts) == 0 {
		c.ThreadCounts = DefaultThreadCounts
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.PaperSet()
	}
	return c
}

// Suite lazily runs and caches the per-workload sweeps behind every
// figure and table, so regenerating all artifacts costs one sweep per
// workload. The sweep cache is concurrency-safe: any number of
// goroutines may generate figures, studies, and ablations on one suite
// at once, and a sweep two of them need simulates exactly once — the
// second caller waits for the first and receives the identical *Sweep
// pointer. Construct suites through Engine.Suite (or the deprecated
// NewSuite, which binds to the shared default engine).
type Suite struct {
	cfg ExperimentConfig
	eng *Engine

	mu     sync.Mutex
	sweeps map[string]*sweepCell
}

// sweepCell memoizes one workload's sweep, singleflight-style: the first
// requester becomes the leader and runs the sweep; later requesters wait
// on done. Failed sweeps are evicted so a live context can retry after a
// canceled one.
type sweepCell struct {
	done chan struct{}
	sw   *Sweep
	err  error
}

// NewSuite builds a suite on the shared default engine.
//
// Deprecated: construct an Engine and use Engine.Suite for control over
// parallelism, caching, and progress observation.
func NewSuite(cfg ExperimentConfig) *Suite {
	return DefaultEngine().Suite(cfg)
}

// Config returns the defaulted configuration.
func (s *Suite) Config() ExperimentConfig { return s.cfg }

// Engine returns the engine the suite dispatches through.
func (s *Suite) Engine() *Engine { return s.eng }

// SweepFor returns the memoized sweep of the named workload, simulating
// it (through the engine's bounded pool) at most once per suite no matter
// how many figures, studies, or concurrent callers ask for it. Repeated
// calls return the identical *Sweep pointer.
func (s *Suite) SweepFor(ctx context.Context, name string) (*Sweep, error) {
	s.mu.Lock()
	cell, ok := s.sweeps[name]
	if !ok {
		cell = &sweepCell{done: make(chan struct{})}
		s.sweeps[name] = cell
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-cell.done:
			if cell.err != nil && ctx.Err() == nil &&
				(errors.Is(cell.err, context.Canceled) || errors.Is(cell.err, context.DeadlineExceeded)) {
				// The leader's context died but ours is live; the cell was
				// evicted, so retry and likely become the new leader.
				return s.SweepFor(ctx, name)
			}
			return cell.sw, cell.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	cell.sw, cell.err = s.runSweep(ctx, name)
	if cell.err != nil {
		// Do not poison the cache: a canceled or failed sweep must be
		// retryable by the next caller.
		s.mu.Lock()
		delete(s.sweeps, name)
		s.mu.Unlock()
	}
	close(cell.done)
	return cell.sw, cell.err
}

// runSweep executes the suite's sweep for one workload.
func (s *Suite) runSweep(ctx context.Context, name string) (*Sweep, error) {
	var spec workload.Spec
	found := false
	for _, w := range s.cfg.Workloads {
		if w.Name == name {
			spec, found = w, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: workload %q not in suite", name)
	}
	return s.eng.Sweep(ctx, spec.Scale(s.cfg.Scale), SweepConfig{
		ThreadCounts: s.cfg.ThreadCounts,
		Base:         vm.Config{Seed: s.cfg.Seed},
	})
}

// artifact emits the rendered-artifact event on success and passes the
// generator's result through.
func (s *Suite) artifact(ctx context.Context, name string, t *report.Table, err error) (*report.Table, error) {
	if err == nil {
		s.eng.emit(ctx, Event{Kind: ArtifactRendered, Artifact: name})
	}
	return t, err
}

// workloadSweeps collects the memoized sweep of every suite workload, in
// configuration order, with the workload names as row labels.
func (s *Suite) workloadSweeps(ctx context.Context) ([]string, []*Sweep, error) {
	labels := make([]string, 0, len(s.cfg.Workloads))
	sweeps := make([]*Sweep, 0, len(s.cfg.Workloads))
	for _, w := range s.cfg.Workloads {
		sw, err := s.SweepFor(ctx, w.Name)
		if err != nil {
			return nil, nil, err
		}
		labels = append(labels, w.Name)
		sweeps = append(sweeps, sw)
	}
	return labels, sweeps, nil
}

// seriesTable renders one metric per (workload, thread count).
func (s *Suite) seriesTable(ctx context.Context, title string, m Metric) (*report.Table, error) {
	labels, sweeps, err := s.workloadSweeps(ctx)
	if err != nil {
		return nil, err
	}
	return renderSeries(title, "workload", labels, sweeps, m)
}

// Fig1a reproduces Figure 1a: total lock acquisitions per run versus
// thread count, for all six benchmarks.
func (s *Suite) Fig1a(ctx context.Context) (*report.Table, error) {
	t, err := s.seriesTable(ctx, "Figure 1a — lock acquisitions vs threads", MetricAcquisitions)
	if err != nil {
		return nil, err
	}
	t.Note = "paper: acquisitions grow with threads for scalable apps, flat for non-scalable"
	return s.artifact(ctx, "Fig1a", t, nil)
}

// Fig1b reproduces Figure 1b: lock contention instances versus threads.
func (s *Suite) Fig1b(ctx context.Context) (*report.Table, error) {
	t, err := s.seriesTable(ctx, "Figure 1b — lock contentions vs threads", MetricContentions)
	if err != nil {
		return nil, err
	}
	t.Note = "paper: contentions grow with threads for scalable apps, flat for non-scalable"
	return s.artifact(ctx, "Fig1b", t, nil)
}

// cdfLimits are the lifespan bucket boundaries (bytes) used for the
// Figure 1c/1d distributions.
var cdfLimits = []int64{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// LifespanCDF reproduces a Figure 1c/1d panel: the cumulative lifespan
// distribution of one workload at two thread counts.
func (s *Suite) LifespanCDF(ctx context.Context, name string, lowThreads, highThreads int) (*report.Table, error) {
	sw, err := s.SweepFor(ctx, name)
	if err != nil {
		return nil, err
	}
	return renderLifespanCDF(sw, lowThreads, highThreads)
}

// Fig1c reproduces Figure 1c: eclipse's lifetime CDF at 4 vs 48 threads
// (insensitive to thread count — non-scalable).
func (s *Suite) Fig1c(ctx context.Context) (*report.Table, error) {
	lo, hi := s.loHi()
	t, err := s.LifespanCDF(ctx, "eclipse", lo, hi)
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 1c — " + t.Title
	t.Note = "paper: eclipse's distribution shows almost no change with thread count"
	return s.artifact(ctx, "Fig1c", t, nil)
}

// Fig1d reproduces Figure 1d: xalan's lifetime CDF at 4 vs 48 threads
// (lifespans stretch as threads scale — the paper's headline GC finding).
func (s *Suite) Fig1d(ctx context.Context) (*report.Table, error) {
	lo, hi := s.loHi()
	t, err := s.LifespanCDF(ctx, "xalan", lo, hi)
	if err != nil {
		return nil, err
	}
	t.Title = "Figure 1d — " + t.Title
	t.Note = "paper: xalan drops from >80% of objects <1KB at 4 threads to ~50% at 48"
	return s.artifact(ctx, "Fig1d", t, nil)
}

func (s *Suite) loHi() (int, int) {
	tc := s.cfg.ThreadCounts
	return tc[0], tc[len(tc)-1]
}

// Fig2 reproduces Figure 2: the mutator/GC time split of the scalable
// trio across the thread sweep.
func (s *Suite) Fig2(ctx context.Context) (*report.Table, error) {
	var labels []string
	var sweeps []*Sweep
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		if !s.hasWorkload(name) {
			continue
		}
		sw, err := s.SweepFor(ctx, name)
		if err != nil {
			return nil, err
		}
		labels = append(labels, name)
		sweeps = append(sweeps, sw)
	}
	t := renderMutatorGC(
		"Figure 2 — distribution of mutator and GC times (scalable applications)",
		"paper: mutator time keeps falling through 48 threads while GC time grows",
		labels, sweeps)
	return s.artifact(ctx, "Fig2", t, nil)
}

// Fig2Chart renders Figure 2 as an ASCII chart: per scalable workload,
// the mutator and GC time series against the thread sweep — the quickest
// way to eyeball the crossing shapes in a terminal.
func (s *Suite) Fig2Chart(ctx context.Context) ([]*report.Chart, error) {
	var out []*report.Chart
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		if !s.hasWorkload(name) {
			continue
		}
		sw, err := s.SweepFor(ctx, name)
		if err != nil {
			return nil, err
		}
		ticks := make([]string, len(sw.Points))
		for i, p := range sw.Points {
			ticks[i] = fmt.Sprintf("%d", p.Threads)
		}
		mut := sw.MutatorSeconds()
		gcs := sw.GCSeconds()
		ms := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = x * 1000
			}
			return out
		}
		out = append(out, &report.Chart{
			Title:  fmt.Sprintf("Figure 2 — %s: mutator vs GC time (ms)", name),
			XLabel: "threads (= cores)",
			XTicks: ticks,
			Series: []report.Series{
				{Name: "mutator ms", Points: ms(mut)},
				{Name: "gc ms", Points: ms(gcs)},
			},
		})
	}
	return out, nil
}

func (s *Suite) hasWorkload(name string) bool {
	for _, w := range s.cfg.Workloads {
		if w.Name == name {
			return true
		}
	}
	return false
}

// ClassificationTable reproduces the §II-C characterization: which
// applications are scalable, with speedups and the paper agreement check.
func (s *Suite) ClassificationTable(ctx context.Context) (*report.Table, error) {
	labels, sweeps, err := s.workloadSweeps(ctx)
	if err != nil {
		return nil, err
	}
	return s.artifact(ctx, "ClassificationTable", renderClassification(labels, sweeps), nil)
}

// WorkDistributionTable reproduces the §III workload-distribution
// observation: non-scalable applications concentrate work in 3-4 threads.
func (s *Suite) WorkDistributionTable(ctx context.Context) (*report.Table, error) {
	labels, sweeps, err := s.workloadSweeps(ctx)
	if err != nil {
		return nil, err
	}
	return s.artifact(ctx, "WorkDistributionTable", renderWorkDistribution(labels, sweeps), nil)
}

func imbalance(shares []float64) float64 {
	var max, sum float64
	for _, s := range shares {
		if s > max {
			max = s
		}
		sum += s
	}
	if sum == 0 || len(shares) == 0 {
		return 1
	}
	return max / (sum / float64(len(shares)))
}

// FactorsTable summarizes the factor decomposition for every workload —
// the paper's analysis condensed to one row per benchmark.
func (s *Suite) FactorsTable(ctx context.Context) (*report.Table, error) {
	labels, sweeps, err := s.workloadSweeps(ctx)
	if err != nil {
		return nil, err
	}
	return s.artifact(ctx, "FactorsTable", renderFactors(labels, sweeps), nil)
}

// AblationBias evaluates the paper's first future-work proposal (§IV):
// phase-biased scheduling, which staggers worker-thread groups in time to
// reduce lifetime interference. Reported on xalan at the largest count.
func (s *Suite) AblationBias(ctx context.Context) (*report.Table, error) {
	t, err := s.ablation(ctx, "Ablation — phase-biased scheduling (paper §IV, suggestion 1)",
		func(cfg *vm.Config) {
			cfg.Sched.Bias.Groups = 2
			cfg.Sched.Bias.PhaseLength = 2 * sim.Millisecond
		},
		"paper hypothesis: staggering threads shortens lifespans and cuts contention at some throughput cost")
	return s.artifact(ctx, "AblationBias", t, err)
}

// AblationCompartments evaluates the paper's second future-work proposal
// (§IV): a compartmentalized heap isolating thread groups' objects, which
// should shorten collection pauses.
func (s *Suite) AblationCompartments(ctx context.Context) (*report.Table, error) {
	t, err := s.ablation(ctx, "Ablation — compartmentalized heap (paper §IV, suggestion 2)",
		func(cfg *vm.Config) { cfg.Compartments = 4 },
		"paper hypothesis: per-group heap compartments shorten GC pause times")
	return s.artifact(ctx, "AblationCompartments", t, err)
}

func (s *Suite) ablation(ctx context.Context, title string, modify func(*vm.Config), note string) (*report.Table, error) {
	spec, ok := workload.Lookup("xalan")
	if !ok {
		return nil, fmt.Errorf("core: xalan spec missing")
	}
	spec = spec.Scale(s.cfg.Scale)
	_, hi := s.loHi()

	runOne := func(mod func(*vm.Config)) (*vm.Result, error) {
		cfg := vm.Config{Seed: s.cfg.Seed, Threads: hi}
		if mod != nil {
			mod(&cfg)
		}
		return s.eng.Run(ctx, spec, cfg)
	}
	base, err := runOne(nil)
	if err != nil {
		return nil, err
	}
	mod, err := runOne(modify)
	if err != nil {
		return nil, err
	}
	return renderCompare(title+fmt.Sprintf(" — xalan @ %d threads", hi), note, base, mod), nil
}

func meanPause(ps []gc.Pause) sim.Time {
	if len(ps) == 0 {
		return 0
	}
	var sum sim.Time
	for _, p := range ps {
		sum += p.Duration
	}
	return sum / sim.Time(len(ps))
}

func maxPause(ps []gc.Pause) sim.Time {
	var m sim.Time
	for _, p := range ps {
		if p.Duration > m {
			m = p.Duration
		}
	}
	return m
}

func formatBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// AllArtifacts regenerates every figure and table of the reproduction, in
// the paper's order, by executing the declarative PaperPlan through the
// suite's engine: all sweeps dispatch concurrently through the bounded
// pool, identical points are memoized, and a canceled context aborts the
// in-flight sweeps promptly. The rendered tables are byte-identical to
// calling the individual figure/table methods.
func (s *Suite) AllArtifacts(ctx context.Context) ([]*report.Table, error) {
	pr, err := s.eng.RunPlan(ctx, PaperPlan(s.cfg))
	if err != nil {
		return nil, err
	}
	return pr.Reports, nil
}
