package core

import (
	"context"
	"strings"
	"testing"

	"javasim/internal/locks"
	"javasim/internal/metrics"
	"javasim/internal/sched"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// TestPlanRejectsUnknownPolicyNames checks that bad policy names surface
// at validation (and therefore load) time, naming the known set.
func TestPlanRejectsUnknownPolicyNames(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"override lock policy", func(p *Plan) {
			p.Scenarios[0].Overrides = &ConfigOverrides{LockPolicy: "no-such-policy"}
		}},
		{"override placement", func(p *Plan) {
			p.Scenarios[0].Overrides = &ConfigOverrides{Placement: "no-such-placement"}
		}},
		{"plan lock policy", func(p *Plan) { p.LockPolicy = "no-such-policy" }},
		{"plan placement", func(p *Plan) { p.Placement = "no-such-placement" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testPlan()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("unknown policy name validated")
			}
			if !strings.Contains(err.Error(), "no-such-") || !strings.Contains(err.Error(), "known:") {
				t.Errorf("error %q does not name the offender and the known set", err)
			}
		})
	}
	// The built-in names validate, at both levels.
	p := testPlan()
	p.LockPolicy = locks.PolicySpinThenPark
	p.Placement = sched.PlacementRoundRobin
	p.Scenarios[0].Overrides = &ConfigOverrides{
		LockPolicy: locks.PolicyRestricted, Placement: sched.PlacementLeastLoaded,
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid policy names rejected: %v", err)
	}
}

// TestPlanPolicyInheritance checks the config a scenario actually runs
// under: plan-level defaults apply to every scenario, and per-scenario
// overrides win.
func TestPlanPolicyInheritance(t *testing.T) {
	plan := &Plan{
		Name:       "policy-inheritance",
		Seed:       7,
		Scale:      0.02,
		LockPolicy: locks.PolicyBarging,
		Placement:  sched.PlacementRoundRobin,
		Scenarios: []Scenario{
			{Name: "inherits", Workload: workload.NameRef("xalan"), ThreadCounts: []int{2}},
			{Name: "overrides", Workload: workload.NameRef("xalan"), ThreadCounts: []int{2},
				Overrides: &ConfigOverrides{LockPolicy: locks.PolicyRestricted, Placement: sched.PlacementAffinity}},
		},
	}
	eng := NewEngine()
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	inherited := pr.Scenario("inherits").Sweep().Points[0].Result
	if inherited.LockPolicy != locks.PolicyBarging || inherited.Placement != sched.PlacementRoundRobin {
		t.Errorf("inherited run labeled %s/%s, want barging/round-robin",
			inherited.LockPolicy, inherited.Placement)
	}
	overridden := pr.Scenario("overrides").Sweep().Points[0].Result
	if overridden.LockPolicy != locks.PolicyRestricted || overridden.Placement != sched.PlacementAffinity {
		t.Errorf("overridden run labeled %s/%s, want restricted/affinity",
			overridden.LockPolicy, overridden.Placement)
	}
}

// TestPolicyTagLabeling pins the series-labeling rule: default policies
// stay untagged (the golden artifacts depend on it), non-default ones
// self-identify in factor rows and compare headers.
func TestPolicyTagLabeling(t *testing.T) {
	cases := []struct {
		lock, place, want string
	}{
		{"", "", ""},
		{locks.PolicyFIFO, sched.PlacementAffinity, ""},
		{locks.PolicyRestricted, "", "restricted"},
		{locks.PolicyRestricted, sched.PlacementAffinity, "restricted"},
		{"", sched.PlacementRoundRobin, "fifo/round-robin"},
		{locks.PolicyBarging, sched.PlacementLeastLoaded, "barging/least-loaded"},
	}
	for _, tc := range cases {
		r := &vm.Result{LockPolicy: tc.lock, Placement: tc.place}
		if got := policyTag(r); got != tc.want {
			t.Errorf("policyTag(%q, %q) = %q, want %q", tc.lock, tc.place, got, tc.want)
		}
	}

	base := &vm.Result{LockPolicy: locks.PolicyFIFO, Placement: sched.PlacementAffinity}
	mod := &vm.Result{LockPolicy: locks.PolicyRestricted, Placement: sched.PlacementAffinity}
	for _, r := range []*vm.Result{base, mod} {
		r.Lifespans = metrics.NewHistogram("t")
	}
	tbl := renderCompare("t", "", base, mod)
	if tbl.Headers[1] != "baseline" || tbl.Headers[2] != "modified [restricted]" {
		t.Errorf("compare headers = %v", tbl.Headers)
	}
}
