package core

import (
	"context"
	"fmt"

	"javasim/internal/sim"
)

// EventKind classifies an engine progress event.
type EventKind int

const (
	// RunStarted fires when a simulation is actually dispatched to a
	// worker slot (cache hits never produce it).
	RunStarted EventKind = iota
	// RunFinished fires when a dispatched simulation returns; Err carries
	// its failure, if any.
	RunFinished
	// RunCached fires when a run request is answered from the engine's
	// memoizing result cache without simulating.
	RunCached
	// SweepPointDone fires as each point of a sweep completes (whether
	// simulated or cached).
	SweepPointDone
	// SweepDone fires when a whole sweep is assembled.
	SweepDone
	// ArtifactRendered fires when a suite figure, table, or study has been
	// generated; Artifact names it.
	ArtifactRendered
	// ScenarioDone fires when a plan scenario's sweeps and outputs are
	// complete; Scenario names it.
	ScenarioDone
	// PlanDone fires when a whole plan — every scenario and report — has
	// executed; Plan names it.
	PlanDone
)

// String returns the kind's wire-stable name.
func (k EventKind) String() string {
	switch k {
	case RunStarted:
		return "run-started"
	case RunFinished:
		return "run-finished"
	case RunCached:
		return "run-cached"
	case SweepPointDone:
		return "sweep-point-done"
	case SweepDone:
		return "sweep-done"
	case ArtifactRendered:
		return "artifact-rendered"
	case ScenarioDone:
		return "scenario-done"
	case PlanDone:
		return "plan-done"
	default:
		return fmt.Sprintf("event-kind-%d", int(k))
	}
}

// Event is one progress notification from an Engine. Fields beyond Kind
// are populated where they make sense: run and sweep events carry the
// workload identity, artifact events carry the artifact name.
type Event struct {
	Kind EventKind
	// Workload is the benchmark name for run and sweep events.
	Workload string
	// Threads is the mutator thread count of the run or sweep point.
	Threads int
	// Seed is the deterministic seed of the run.
	Seed uint64
	// VirtualTime is the simulated duration of a finished run.
	VirtualTime sim.Time
	// Artifact names the rendered figure/table for ArtifactRendered.
	Artifact string
	// Scenario names the completed scenario for ScenarioDone.
	Scenario string
	// Plan names the completed plan for PlanDone.
	Plan string
	// Err is the failure of a finished run, nil on success.
	Err error
}

// String renders the event for logs and progress displays.
func (e Event) String() string {
	switch e.Kind {
	case ArtifactRendered:
		return fmt.Sprintf("%s %s", e.Kind, e.Artifact)
	case RunFinished:
		if e.Err != nil {
			return fmt.Sprintf("%s %s t=%d error: %v", e.Kind, e.Workload, e.Threads, e.Err)
		}
		return fmt.Sprintf("%s %s t=%d virtual=%v", e.Kind, e.Workload, e.Threads, e.VirtualTime)
	case SweepDone:
		return fmt.Sprintf("%s %s", e.Kind, e.Workload)
	case ScenarioDone:
		return fmt.Sprintf("%s %s (%s)", e.Kind, e.Scenario, e.Workload)
	case PlanDone:
		return fmt.Sprintf("%s %s", e.Kind, e.Plan)
	default:
		return fmt.Sprintf("%s %s t=%d", e.Kind, e.Workload, e.Threads)
	}
}

// Observer receives engine progress events. Events are delivered
// synchronously from whatever goroutine produced them — possibly several
// at once under a parallel sweep — so implementations must be safe for
// concurrent use and should return quickly.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f(ev).
func (f ObserverFunc) Observe(ev Event) { f(ev) }

// observerCtxKey keys the context-scoped observer.
type observerCtxKey struct{}

// ContextWithObserver returns a context that routes every engine event
// produced by work dispatched under it to o, in addition to the
// engine's own observers. This is how a server multiplexing many
// concurrent plans over one shared engine attributes progress to the
// right client: each plan runs under its own observer-carrying context,
// and cache hits are reported to whichever plan requested them, even
// when the simulation that populated the cache belonged to another.
// The same concurrency contract as WithObserver applies.
func ContextWithObserver(ctx context.Context, o Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerCtxKey{}, o)
}

// contextObserver extracts the observer attached by ContextWithObserver,
// or nil.
func contextObserver(ctx context.Context) Observer {
	o, _ := ctx.Value(observerCtxKey{}).(Observer)
	return o
}
