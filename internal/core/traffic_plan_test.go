package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"javasim/internal/workload"
)

// trafficTestPlan is a small open-system ablation: the server workload
// under fifo vs restricted locking, swept across an underloaded and an
// overloaded offered rate.
func trafficTestPlan() *Plan {
	spec := func() *TrafficSpec {
		return &TrafficSpec{
			Process:  "poisson",
			Rates:    []float64{100000, 1500000},
			Threads:  8,
			Requests: 500,
		}
	}
	return &Plan{
		Name:  "traffic-test",
		Seed:  7,
		Scale: 0.2,
		Scenarios: []Scenario{
			{Name: "fifo", Workload: workload.NameRef("server"), Traffic: spec(),
				Outputs: []Output{OutputGoodput}},
			{Name: "restricted", Workload: workload.NameRef("server"), Traffic: spec(),
				Overrides: &ConfigOverrides{LockPolicy: "restricted"}},
			{Name: "closed", Workload: workload.NameRef("server"), ThreadCounts: []int{2, 4}},
		},
		Reports: []ReportSpec{
			{Name: "goodput", Kind: ReportGoodput, Scenarios: []string{"fifo", "restricted"}},
		},
	}
}

func TestTrafficPlanRuns(t *testing.T) {
	p := trafficTestPlan()
	pr, err := NewEngine(WithParallelism(2)).RunPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fifo", "restricted"} {
		sw := pr.Scenario(name).Sweep()
		if !sw.Open() {
			t.Fatalf("%s: traffic scenario produced a closed sweep", name)
		}
		for i, pt := range sw.Points {
			if pt.Rate != p.Scenarios[0].Traffic.Rates[i] {
				t.Errorf("%s point %d: rate %v, want %v", name, i, pt.Rate, p.Scenarios[0].Traffic.Rates[i])
			}
			if pt.Threads != 8 {
				t.Errorf("%s point %d: threads %d, want the fixed pool of 8", name, i, pt.Threads)
			}
			st := pt.Result.Traffic
			if st == nil {
				t.Fatalf("%s point %d: no traffic stats", name, i)
			}
			if st.Offered != st.Completed+st.TimedOut {
				t.Errorf("%s point %d: offered %d != completed %d + timed-out %d",
					name, i, st.Offered, st.Completed, st.TimedOut)
			}
		}
	}
	if sw := pr.Scenario("closed").Sweep(); sw.Open() {
		t.Error("closed scenario produced an open sweep")
	}
	if len(pr.Reports) != 1 {
		t.Fatalf("rendered %d reports, want 1", len(pr.Reports))
	}
	// One row per (scenario, rate), plus the per-scenario goodput output.
	if rows := len(pr.Reports[0].Rows); rows != 4 {
		t.Errorf("goodput report has %d rows, want 4", rows)
	}
	fifo := pr.Scenario("fifo")
	if len(fifo.Tables) != 1 || len(fifo.Tables[0].Rows) != 2 {
		t.Errorf("per-scenario goodput output missing or malformed: %+v", fifo.Tables)
	}
}

func TestTrafficPlanJSONRoundTrip(t *testing.T) {
	p := trafficTestPlan()
	var first bytes.Buffer
	if err := p.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	decoded, err := LoadPlan(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := decoded.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("encode not stable:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	ts := decoded.Scenarios[0].Traffic
	if ts == nil || ts.Process != "poisson" || len(ts.Rates) != 2 || ts.Threads != 8 {
		t.Errorf("traffic spec lost in round trip: %+v", ts)
	}
}

func TestTrafficPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		warp func(*Plan)
		want string
	}{
		{"traffic with thread counts", func(p *Plan) {
			p.Scenarios[0].ThreadCounts = []int{4, 8}
		}, "not ThreadCounts"},
		{"empty rates", func(p *Plan) { p.Scenarios[0].Traffic.Rates = nil }, "Rates is empty"},
		{"descending rates", func(p *Plan) {
			p.Scenarios[0].Traffic.Rates = []float64{200, 100}
		}, "strictly ascending"},
		{"negative rate", func(p *Plan) {
			p.Scenarios[0].Traffic.Rates = []float64{-1, 100}
		}, "rate"},
		{"unknown process", func(p *Plan) {
			p.Scenarios[0].Traffic.Process = "bogus"
		}, "unknown arrival process"},
		{"closed process", func(p *Plan) {
			p.Scenarios[0].Traffic.Process = "closed"
		}, "open arrival process"},
		{"iterations in open mode", func(p *Plan) {
			p.Scenarios[0].Overrides = &ConfigOverrides{Iterations: 3}
		}, "single iteration"},
		{"goodput output without traffic", func(p *Plan) {
			p.Scenarios[2].Outputs = []Output{OutputGoodput}
		}, "needs a Traffic block"},
		{"sweep output on traffic scenario", func(p *Plan) {
			p.Scenarios[0].Outputs = []Output{OutputSweep}
		}, "reads thread sweeps"},
		{"series report over traffic scenario", func(p *Plan) {
			p.Reports = append(p.Reports, ReportSpec{Name: "bad", Kind: ReportSeries,
				Metric: MetricGCSeconds, Scenarios: []string{"fifo"}})
		}, "sweeps offered rates"},
		{"goodput report over closed scenario", func(p *Plan) {
			p.Reports[0].Scenarios = []string{"fifo", "closed"}
		}, "no Traffic block"},
		{"goodput over mismatched rate grids", func(p *Plan) {
			p.Scenarios[1].Traffic.Rates = []float64{100000, 2000000}
		}, "share the rate grid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := trafficTestPlan()
			tc.warp(p)
			err := p.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}
