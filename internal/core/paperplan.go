package core

import (
	"fmt"

	"javasim/internal/fit"
	"javasim/internal/sim"
	"javasim/internal/workload"
)

// PaperPlan expresses the paper's entire figure suite — Figures 1a-1d and
// 2, the classification, work-distribution, and factor tables, and the
// two §IV ablations — as one declarative Plan: six sweep scenarios (one
// per benchmark), three single-point ablation scenarios on xalan, and ten
// cross-scenario reports. Suite.AllArtifacts executes exactly this plan,
// so the declarative API provably covers everything the imperative one
// hard-coded. The zero ExperimentConfig reproduces the paper's full-scale
// setup.
func PaperPlan(cfg ExperimentConfig) *Plan {
	cfg = cfg.withDefaults()
	hi := cfg.ThreadCounts[len(cfg.ThreadCounts)-1]

	p := &Plan{
		Name:         "paper",
		Seed:         cfg.Seed,
		Scale:        cfg.Scale,
		ThreadCounts: cfg.ThreadCounts,
	}

	// One sweep scenario per workload, named after it. Workloads matching
	// their registry entry travel as name references; custom specs inline.
	var workloadNames []string
	for _, w := range cfg.Workloads {
		ref := workload.SpecRef(w)
		if reg, ok := workload.Lookup(w.Name); ok && reg == w {
			ref = workload.NameRef(w.Name)
		}
		p.Scenarios = append(p.Scenarios, Scenario{Name: w.Name, Workload: ref})
		workloadNames = append(workloadNames, w.Name)
	}

	// The §IV ablations: xalan at the top of the sweep, baseline against
	// each future-work proposal. The baseline point coincides with the
	// xalan sweep's last point, so the run cache serves it for free.
	p.Scenarios = append(p.Scenarios,
		Scenario{Name: "xalan-max", Workload: workload.NameRef("xalan"), ThreadCounts: []int{hi}},
		Scenario{Name: "xalan-biased", Workload: workload.NameRef("xalan"), ThreadCounts: []int{hi},
			Overrides: &ConfigOverrides{BiasGroups: 2, BiasPhase: 2 * sim.Millisecond}},
		Scenario{Name: "xalan-compartmented", Workload: workload.NameRef("xalan"), ThreadCounts: []int{hi},
			Overrides: &ConfigOverrides{Compartments: 4}},
	)

	// Figure 2 covers the scalable trio; like the imperative suite, it
	// silently narrows to whichever of the three the config kept.
	var trio []string
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		for _, w := range workloadNames {
			if w == name {
				trio = append(trio, name)
			}
		}
	}

	p.Reports = []ReportSpec{
		{Name: "Fig1a", Kind: ReportSeries, Metric: MetricAcquisitions, Key: "workload",
			Scenarios: workloadNames,
			Title:     "Figure 1a — lock acquisitions vs threads",
			Note:      "paper: acquisitions grow with threads for scalable apps, flat for non-scalable"},
		{Name: "Fig1b", Kind: ReportSeries, Metric: MetricContentions, Key: "workload",
			Scenarios: workloadNames,
			Title:     "Figure 1b — lock contentions vs threads",
			Note:      "paper: contentions grow with threads for scalable apps, flat for non-scalable"},
		{Name: "Fig1c", Kind: ReportLifespanCDF, Scenarios: []string{"eclipse"},
			Title: "Figure 1c",
			Note:  "paper: eclipse's distribution shows almost no change with thread count"},
		{Name: "Fig1d", Kind: ReportLifespanCDF, Scenarios: []string{"xalan"},
			Title: "Figure 1d",
			Note:  "paper: xalan drops from >80% of objects <1KB at 4 threads to ~50% at 48"},
		{Name: "Fig2", Kind: ReportMutatorGC, Scenarios: trio,
			Title: "Figure 2 — distribution of mutator and GC times (scalable applications)",
			Note:  "paper: mutator time keeps falling through 48 threads while GC time grows"},
		{Name: "ClassificationTable", Kind: ReportClassification, Scenarios: workloadNames},
		{Name: "WorkDistributionTable", Kind: ReportWorkDistribution, Scenarios: workloadNames},
		{Name: "FactorsTable", Kind: ReportFactors, Scenarios: workloadNames},
		{Name: "AblationBias", Kind: ReportCompare, Baseline: "xalan-max", Modified: "xalan-biased",
			Title: fmt.Sprintf("Ablation — phase-biased scheduling (paper §IV, suggestion 1) — xalan @ %d threads", hi),
			Note:  "paper hypothesis: staggering threads shortens lifespans and cuts contention at some throughput cost"},
		{Name: "AblationCompartments", Kind: ReportCompare, Baseline: "xalan-max", Modified: "xalan-compartmented",
			Title: fmt.Sprintf("Ablation — compartmentalized heap (paper §IV, suggestion 2) — xalan @ %d threads", hi),
			Note:  "paper hypothesis: per-group heap compartments shorten GC pause times"},
	}
	// The analytic cross-validation of the factor table (ROADMAP item 1):
	// fit the USL to every workload sweep and report sigma/kappa next to
	// the ablation-derived factors. A fit needs at least fit.MinPoints
	// sweep points, so shortened test configs (the 2-point golden setup)
	// keep their historical artifact set byte-identical.
	if len(cfg.ThreadCounts) >= fit.MinPoints {
		p.Reports = append(p.Reports, ReportSpec{
			Name: "USLFitTable", Kind: ReportUSL, Scenarios: workloadNames,
		})
	}
	return p
}
