package core

import (
	"context"
	"strings"
	"testing"

	"javasim/internal/gc"
	"javasim/internal/locks"
	"javasim/internal/metrics"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// TestPlanRejectsUnknownGCPolicyNames checks that bad GC-policy names
// surface at validation (and therefore load) time, naming the known set,
// at both the plan level and inside scenario overrides.
func TestPlanRejectsUnknownGCPolicyNames(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Plan)
	}{
		{"override gc policy", func(p *Plan) {
			p.Scenarios[0].Overrides = &ConfigOverrides{GCPolicy: "no-such-gc"}
		}},
		{"plan gc policy", func(p *Plan) { p.GCPolicy = "no-such-gc" }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := testPlan()
			tc.mutate(p)
			err := p.Validate()
			if err == nil {
				t.Fatal("unknown gc policy validated")
			}
			if !strings.Contains(err.Error(), "no-such-gc") || !strings.Contains(err.Error(), "known:") {
				t.Errorf("error %q does not name the offender and the known set", err)
			}
		})
	}
	p := testPlan()
	p.GCPolicy = gc.PolicyStwParallel
	p.Scenarios[0].Overrides = &ConfigOverrides{GCPolicy: gc.PolicyCompartment, NewRatio: 4}
	if err := p.Validate(); err != nil {
		t.Errorf("valid gc policy names rejected: %v", err)
	}
	p.Scenarios[0].Overrides = &ConfigOverrides{NewRatio: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative NewRatio override validated")
	}
}

// TestPlanGCPolicyInheritance checks the config a scenario actually runs
// under: the plan-level GC policy applies to every scenario, and
// per-scenario overrides win.
func TestPlanGCPolicyInheritance(t *testing.T) {
	plan := &Plan{
		Name:     "gc-inheritance",
		Seed:     7,
		Scale:    0.02,
		GCPolicy: gc.PolicyStwParallel,
		Scenarios: []Scenario{
			{Name: "inherits", Workload: workload.NameRef("xalan"), ThreadCounts: []int{2}},
			{Name: "overrides", Workload: workload.NameRef("xalan"), ThreadCounts: []int{2},
				Overrides: &ConfigOverrides{GCPolicy: gc.PolicyCompartment}},
		},
	}
	eng := NewEngine()
	pr, err := eng.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.Scenario("inherits").Sweep().Points[0].Result.GCPolicy; got != gc.PolicyStwParallel {
		t.Errorf("inherited run labeled %q, want stw-parallel", got)
	}
	if got := pr.Scenario("overrides").Sweep().Points[0].Result.GCPolicy; got != gc.PolicyCompartment {
		t.Errorf("overridden run labeled %q, want compartment", got)
	}
}

// TestGCPolicyTagLabeling pins the labeling rule extension: default GC
// stays untagged (the golden artifacts depend on it) and non-default GC
// appends a gc= marker after any lock/placement tag.
func TestGCPolicyTagLabeling(t *testing.T) {
	for _, tc := range []struct {
		lock, gcp, want string
	}{
		{"", "", ""},
		{"", gc.PolicyStwSerial, ""},
		{"", gc.PolicyConcurrent, "gc=concurrent"},
		{locks.PolicyRestricted, gc.PolicyCompartment, "restricted gc=compartment"},
	} {
		r := &vm.Result{LockPolicy: tc.lock, GCPolicy: tc.gcp}
		if got := policyTag(r); got != tc.want {
			t.Errorf("policyTag(lock=%q, gc=%q) = %q, want %q", tc.lock, tc.gcp, got, tc.want)
		}
	}
}

// TestCompareValidationVariants pins the compare report's two shapes:
// the Baseline/Modified pair, or a Scenarios list of at least two —
// never both, never a partial pair.
func TestCompareValidationVariants(t *testing.T) {
	mkPlan := func(rs ReportSpec) *Plan {
		return &Plan{
			Name: "cmp",
			Scenarios: []Scenario{
				{Name: "a", Workload: workload.NameRef("xalan")},
				{Name: "b", Workload: workload.NameRef("xalan")},
				{Name: "c", Workload: workload.NameRef("xalan")},
			},
			Reports: []ReportSpec{rs},
		}
	}
	if err := mkPlan(ReportSpec{Name: "r", Kind: ReportCompare,
		Scenarios: []string{"a", "b", "c"}}).Validate(); err != nil {
		t.Errorf("multi-scenario compare rejected: %v", err)
	}
	if err := mkPlan(ReportSpec{Name: "r", Kind: ReportCompare,
		Scenarios: []string{"a"}}).Validate(); err == nil {
		t.Error("one-scenario compare validated")
	}
	if err := mkPlan(ReportSpec{Name: "r", Kind: ReportCompare,
		Baseline: "a"}).Validate(); err == nil {
		t.Error("partial Baseline/Modified pair validated")
	}
	if err := mkPlan(ReportSpec{Name: "r", Kind: ReportCompare,
		Baseline: "a", Modified: "b", Scenarios: []string{"c"}}).Validate(); err == nil {
		t.Error("Baseline/Modified plus Scenarios validated")
	}
	// Mismatched top thread counts still fail for the list form.
	p := mkPlan(ReportSpec{Name: "r", Kind: ReportCompare, Scenarios: []string{"a", "b"}})
	p.Scenarios[1].ThreadCounts = []int{2}
	if err := p.Validate(); err == nil {
		t.Error("mismatched top thread counts validated")
	}
}

// TestRenderCompareColumns checks the multi-column compare shape: one
// column per scenario, headers carrying the runs' gc tags, and the
// per-phase GC CPU row present once any column deviates from stw-serial.
func TestRenderCompareColumns(t *testing.T) {
	mk := func(gcp string) *vm.Result {
		return &vm.Result{GCPolicy: gcp, Lifespans: metrics.NewHistogram("t")}
	}
	names := []string{"serial", "parallel", "conc"}
	results := []*vm.Result{mk(gc.PolicyStwSerial), mk(gc.PolicyStwParallel), mk(gc.PolicyConcurrent)}
	tbl := renderCompareColumns("t", "", names, results)
	wantHeaders := []string{"metric", "serial", "parallel [gc=stw-parallel]", "conc [gc=concurrent]"}
	if len(tbl.Headers) != len(wantHeaders) {
		t.Fatalf("headers = %v", tbl.Headers)
	}
	for i, h := range wantHeaders {
		if tbl.Headers[i] != h {
			t.Errorf("header[%d] = %q, want %q", i, tbl.Headers[i], h)
		}
	}
	foundPhases := false
	for _, row := range tbl.Rows {
		if row[0] == "gc phases s/s/c" {
			foundPhases = true
		}
	}
	if !foundPhases {
		t.Error("per-phase GC CPU row missing from a non-default-GC compare")
	}

	// All-default columns keep the historical row set: no phases row.
	tbl = renderCompareColumns("t", "", []string{"a", "b"}, []*vm.Result{mk(""), mk(gc.PolicyStwSerial)})
	for _, row := range tbl.Rows {
		if row[0] == "gc phases s/s/c" {
			t.Error("phases row rendered for all-default GC columns")
		}
	}
}
