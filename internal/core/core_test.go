package core

import (
	"context"
	"strings"
	"testing"

	"javasim/internal/metrics"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// testSweep runs a reduced-scale sweep for unit tests.
func testSweep(t *testing.T, name string, counts []int) *Sweep {
	t.Helper()
	spec, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	sw, err := RunSweep(spec.Scale(0.08), SweepConfig{
		ThreadCounts: counts,
		Base:         vm.Config{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestRunSweepBasics(t *testing.T) {
	sw := testSweep(t, "xalan", []int{2, 4, 8})
	if len(sw.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(sw.Points))
	}
	for i, p := range sw.Points {
		if p.Result == nil || p.Result.Threads != p.Threads {
			t.Errorf("point %d inconsistent", i)
		}
	}
	curve := sw.Curve()
	if len(curve) != 3 || curve[0].Threads != 2 {
		t.Errorf("curve = %+v", curve)
	}
	if len(sw.MutatorSeconds()) != 3 || len(sw.GCSeconds()) != 3 ||
		len(sw.Acquisitions()) != 3 || len(sw.Contentions()) != 3 {
		t.Error("series lengths wrong")
	}
}

func TestClassifyScalableAndNot(t *testing.T) {
	x := testSweep(t, "xalan", []int{2, 8, 16}).Classify(DefaultSpeedupThreshold)
	if !x.Scalable {
		t.Errorf("xalan classified non-scalable: %+v", x)
	}
	if !x.Matches() {
		t.Error("xalan verdict does not match paper")
	}
	j := testSweep(t, "jython", []int{2, 8, 16}).Classify(DefaultSpeedupThreshold)
	if j.Scalable {
		t.Errorf("jython classified scalable: %+v", j)
	}
	if !j.Matches() {
		t.Error("jython verdict does not match paper")
	}
}

func TestComputeFactors(t *testing.T) {
	sw := testSweep(t, "xalan", []int{2, 8, 16})
	f := sw.ComputeFactors()
	if f.AcquisitionGrowth < 1 {
		t.Errorf("xalan acquisition growth %v < 1", f.AcquisitionGrowth)
	}
	if f.ContentionGrowth <= 1 {
		t.Errorf("xalan contention growth %v <= 1", f.ContentionGrowth)
	}
	if f.SequentialFraction < 0 || f.SequentialFraction > 0.3 {
		t.Errorf("xalan amdahl fit %v outside plausible range", f.SequentialFraction)
	}
	if f.Top4Share <= 0 || f.Top4Share > 1 {
		t.Errorf("top4 share %v", f.Top4Share)
	}
	if f.ReadyWaitShare < 0 || f.ReadyWaitShare > 1 {
		t.Errorf("ready-wait share %v", f.ReadyWaitShare)
	}
}

func TestSuiteCachesSweeps(t *testing.T) {
	s := NewSuite(ExperimentConfig{
		ThreadCounts: []int{2, 4},
		Scale:        0.02,
		Workloads:    []workload.Spec{workload.XalanSpec()},
	})
	a, err := s.SweepFor(context.Background(), "xalan")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SweepFor(context.Background(), "xalan")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("sweep not cached")
	}
	if _, err := s.SweepFor(context.Background(), "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSuiteDefaults(t *testing.T) {
	s := NewSuite(ExperimentConfig{})
	cfg := s.Config()
	if cfg.Scale != 1 || cfg.Seed != 42 || len(cfg.Workloads) != 6 {
		t.Errorf("defaults = %+v", cfg)
	}
	if len(cfg.ThreadCounts) != len(DefaultThreadCounts) {
		t.Error("default thread counts not applied")
	}
}

func smallSuite(counts ...int) *Suite {
	if len(counts) == 0 {
		counts = []int{2, 4, 8}
	}
	return NewSuite(ExperimentConfig{
		ThreadCounts: counts,
		Scale:        0.04,
		Seed:         13,
	})
}

func TestFig1aTable(t *testing.T) {
	tb, err := smallSuite().Fig1a(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "1a") {
		t.Error("title missing figure id")
	}
	out := tb.String()
	for _, w := range []string{"xalan", "jython", "t=2", "t=8"} {
		if !strings.Contains(out, w) {
			t.Errorf("table missing %q", w)
		}
	}
}

func TestFig1bTable(t *testing.T) {
	tb, err := smallSuite().Fig1b(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestFig1cdTables(t *testing.T) {
	s := smallSuite()
	c, err := s.Fig1c(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Title, "eclipse") {
		t.Error("Fig1c is not eclipse")
	}
	d, err := s.Fig1d(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.Title, "xalan") {
		t.Error("Fig1d is not xalan")
	}
	if len(d.Rows) != len(cdfLimits) {
		t.Errorf("cdf rows = %d, want %d", len(d.Rows), len(cdfLimits))
	}
}

func TestLifespanCDFUnknownThreads(t *testing.T) {
	if _, err := smallSuite().LifespanCDF(context.Background(), "xalan", 3, 999); err == nil {
		t.Error("bogus thread counts accepted")
	}
}

func TestFig2Table(t *testing.T) {
	s := smallSuite()
	tb, err := s.Fig2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Scalable trio x 3 thread counts.
	if len(tb.Rows) != 9 {
		t.Errorf("rows = %d, want 9", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "gc-share") {
		t.Error("missing gc-share column")
	}
}

func TestClassificationTable(t *testing.T) {
	tb, err := smallSuite(2, 8, 16).ClassificationTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if strings.Contains(out, "NO") {
		t.Errorf("classification mismatch with paper:\n%s", out)
	}
}

func TestWorkDistributionTable(t *testing.T) {
	tb, err := smallSuite(2, 8, 16).WorkDistributionTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestFactorsTable(t *testing.T) {
	tb, err := smallSuite().FactorsTable(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestAblations(t *testing.T) {
	s := smallSuite(2, 8)
	bias, err := s.AblationBias(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(bias.Rows) == 0 || !strings.Contains(bias.Title, "xalan") {
		t.Error("bias ablation malformed")
	}
	comp, err := s.AblationCompartments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Rows) == 0 {
		t.Error("compartment ablation malformed")
	}
}

func TestAllArtifacts(t *testing.T) {
	tables, err := smallSuite().AllArtifacts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 10 historical artifacts plus the USLFitTable (the suite's 3-point
	// sweep is long enough to fit).
	if len(tables) != 11 {
		t.Errorf("artifacts = %d, want 11", len(tables))
	}
	for _, tb := range tables {
		if tb.Title == "" || len(tb.Rows) == 0 {
			t.Errorf("empty artifact %q", tb.Title)
		}
	}
}

// TestPaperShapes is the integration acceptance test: at reduced scale,
// every experiment must reproduce the paper's qualitative findings (the
// E1-E9 criteria in DESIGN.md, relaxed to the reduced sweep).
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs full workloads; skipped in -short")
	}
	s := NewSuite(ExperimentConfig{
		ThreadCounts: []int{4, 16, 32},
		Scale:        0.3,
		Seed:         42,
	})

	// E6: classification matches the paper for all six benchmarks.
	for _, w := range workload.PaperSet() {
		sw, err := s.SweepFor(context.Background(), w.Name)
		if err != nil {
			t.Fatal(err)
		}
		c := sw.Classify(DefaultSpeedupThreshold)
		if !c.Matches() {
			t.Errorf("E6 %s: verdict %v, paper says %v (max speedup %.2fx)",
				w.Name, c.Scalable, c.PaperScalable, c.MaxSpeedup)
		}
	}

	scalable := []string{"sunflow", "lusearch", "xalan"}
	nonScalable := []string{"h2", "eclipse", "jython"}

	// E1/E2: lock acquisitions and contentions grow for scalable apps,
	// stay near-flat for non-scalable ones.
	for _, name := range scalable {
		sw, _ := s.SweepFor(context.Background(), name)
		if g := metrics.GrowthFactor(sw.Acquisitions()); g < 1.15 {
			t.Errorf("E1 %s: acquisition growth %.2fx, want >= 1.15x", name, g)
		}
		if g := metrics.GrowthFactor(sw.Contentions()); g < 2 {
			t.Errorf("E2 %s: contention growth %.2fx, want >= 2x", name, g)
		}
	}
	for _, name := range nonScalable {
		sw, _ := s.SweepFor(context.Background(), name)
		if g := metrics.GrowthFactor(sw.Acquisitions()); g > 1.3 {
			t.Errorf("E1 %s: acquisition growth %.2fx, want flat (<1.3x)", name, g)
		}
		if g := metrics.GrowthFactor(sw.Contentions()); g > 2 {
			t.Errorf("E2 %s: contention growth %.2fx, want near-flat", name, g)
		}
	}

	// E3: eclipse's lifetime CDF at 1KB moves < 5 points.
	ec, _ := s.SweepFor(context.Background(), "eclipse")
	ecCDF := ec.CDFBelow(1024)
	if d := ecCDF[0] - ecCDF[len(ecCDF)-1]; d > 0.05 || d < -0.05 {
		t.Errorf("E3 eclipse: CDF@1KB shifted %.1f points, want |shift| < 5", 100*d)
	}

	// E4: xalan's CDF@1KB declines by >= 10 points over the sweep.
	xa, _ := s.SweepFor(context.Background(), "xalan")
	xaCDF := xa.CDFBelow(1024)
	if d := xaCDF[0] - xaCDF[len(xaCDF)-1]; d < 0.10 {
		t.Errorf("E4 xalan: CDF@1KB declined only %.1f points (%.2f -> %.2f), want >= 10",
			100*d, xaCDF[0], xaCDF[len(xaCDF)-1])
	}
	if xaCDF[0] < 0.60 {
		t.Errorf("E4 xalan: CDF@1KB at 4 threads %.2f, want >= 0.60", xaCDF[0])
	}

	// E5: for the scalable trio, mutator time decreases monotonically and
	// GC time grows.
	for _, name := range scalable {
		sw, _ := s.SweepFor(context.Background(), name)
		if !metrics.MonotoneDecreasing(sw.MutatorSeconds(), 0.02) {
			t.Errorf("E5 %s: mutator time not decreasing: %v", name, sw.MutatorSeconds())
		}
		gcs := sw.GCSeconds()
		if g := metrics.GrowthFactor(gcs); g < 1.05 {
			t.Errorf("E5 %s: GC time growth %.2fx, want > 1.05x: %v", name, g, gcs)
		}
		f := sw.ComputeFactors()
		if f.GCShareLast <= f.GCShareFirst {
			t.Errorf("E5 %s: GC share did not grow (%.3f -> %.3f)",
				name, f.GCShareFirst, f.GCShareLast)
		}
	}

	// E7: work distribution — non-scalable apps concentrate work.
	for _, name := range nonScalable {
		sw, _ := s.SweepFor(context.Background(), name)
		if f := sw.ComputeFactors(); f.Top4Share < 0.7 {
			t.Errorf("E7 %s: top-4 share %.2f, want >= 0.7", name, f.Top4Share)
		}
	}
	for _, name := range scalable {
		sw, _ := s.SweepFor(context.Background(), name)
		last := sw.Points[len(sw.Points)-1].Result
		shares := make([]float64, len(last.PerThreadUnits))
		for i, u := range last.PerThreadUnits {
			shares[i] = float64(u)
		}
		if r := metrics.ImbalanceRatio(shares); r > 2 {
			t.Errorf("E7 %s: imbalance %.2f, want <= 2 (near-uniform)", name, r)
		}
	}
}
