package core

import (
	"context"
	"strings"
	"testing"
)

func studySuite() *Suite {
	return NewSuite(ExperimentConfig{
		ThreadCounts: []int{2, 8},
		Scale:        0.05,
		Seed:         17,
	})
}

func TestStudyHeapFactor(t *testing.T) {
	tb, err := studySuite().StudyHeapFactor(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "heap factor") {
		t.Error("title wrong")
	}
}

func TestStudyGCWorkersMonotone(t *testing.T) {
	tb, err := studySuite().StudyGCWorkers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	// The first column of the first and last rows bracket the sweep; GC
	// time with 1 worker must exceed GC time with 33 (parallelism helps).
	if tb.Rows[0][1] == tb.Rows[len(tb.Rows)-1][1] {
		t.Error("worker count had no effect on GC time")
	}
}

func TestStudyTenuring(t *testing.T) {
	tb, err := studySuite().StudyTenuring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	// Threshold 1 promotes everything that survives once: zero survivor
	// copying.
	if tb.Rows[0][2] != "0.00" {
		t.Errorf("threshold-1 copied %s MB, want 0.00 (immediate promotion)", tb.Rows[0][2])
	}
}

func TestStudyNUMA(t *testing.T) {
	tb, err := studySuite().StudyNUMA(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][0], "NUMA") || !strings.Contains(tb.Rows[1][0], "flat") {
		t.Errorf("machine labels wrong: %v", tb.Rows)
	}
}

func TestStudyCollector(t *testing.T) {
	tb, err := studySuite().StudyCollector(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[1][0], "concurrent") {
		t.Errorf("second row %v, want concurrent mode", tb.Rows[1])
	}
}

func TestStudyPretenuring(t *testing.T) {
	tb, err := studySuite().StudyPretenuring(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if tb.Rows[0][5] != "0" {
		t.Errorf("baseline diverted %s objects, want 0", tb.Rows[0][5])
	}
}

func TestAllStudies(t *testing.T) {
	tables, err := studySuite().AllStudies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 7 {
		t.Errorf("studies = %d, want 7", len(tables))
	}
}
