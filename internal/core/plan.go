package core

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"javasim/internal/fit"
	"javasim/internal/gc"
	"javasim/internal/locks"
	"javasim/internal/machine"
	"javasim/internal/report"
	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/traffic"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// This file is the declarative plan layer: experiments as data. A
// Scenario describes one experiment — a workload reference, thread
// counts, config overrides, repeats — and a Plan is an ordered set of
// scenarios plus the cross-scenario reports rendered from them.
// Plans round-trip through JSON, so whole experiment matrices live in
// files (cmd/javasim -plan) and the paper's own figure suite is just a
// built-in plan (PaperPlan).

// Output names a per-scenario artifact rendered from the scenario's own
// sweeps.
type Output string

const (
	// OutputSweep renders the headline measurements at every thread count.
	OutputSweep Output = "sweep"
	// OutputClassification renders the scenario's §II-C scalability verdict.
	OutputClassification Output = "classification"
	// OutputFactors renders the scenario's factor decomposition.
	OutputFactors Output = "factors"
	// OutputLifespanCDF renders the lifespan CDF at the scenario's lowest
	// and highest thread counts (the Figure 1c/1d panel).
	OutputLifespanCDF Output = "lifespan-cdf"
	// OutputReplication summarizes metric spread across the scenario's
	// repeats; it requires Repeats >= 2.
	OutputReplication Output = "replication"
	// OutputGoodput renders the open-system headline table — offered vs
	// completed throughput and the latency tail at every swept rate. It
	// requires (and is the only output allowed on) a Traffic scenario.
	OutputGoodput Output = "goodput"
	// OutputUSL renders the scenario's analytic scalability fit: the
	// predicted-vs-measured throughput curve under the best of the USL
	// and Amdahl models, with the fitted sigma/kappa/R^2 and predicted
	// peak in the footnote. It needs at least fit.MinPoints thread
	// counts to fit.
	OutputUSL Output = "usl"
)

var validOutputs = map[Output]bool{
	OutputSweep: true, OutputClassification: true, OutputFactors: true,
	OutputLifespanCDF: true, OutputReplication: true, OutputGoodput: true,
	OutputUSL: true,
}

// knownNames lists a validity map's keys, sorted, for "unknown X"
// error messages — a rejection should always name what would have been
// accepted.
func knownNames[K ~string](valid map[K]bool) string {
	names := make([]string, 0, len(valid))
	for k := range valid {
		names = append(names, string(k))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ConfigOverrides is the serializable subset of vm.Config a scenario may
// override — the ablation deltas of the paper's studies. The zero value
// of every field means "leave the default".
type ConfigOverrides struct {
	// HeapFactor overrides the heap multiple (paper default 3x).
	HeapFactor float64 `json:",omitempty"`
	// Compartments enables the compartmentalized heap (§IV suggestion 2).
	Compartments int `json:",omitempty"`
	// BiasGroups/BiasPhase enable phase-biased scheduling (§IV suggestion
	// 1). BiasPhase is virtual nanoseconds; zero with BiasGroups set
	// selects 2ms.
	BiasGroups int      `json:",omitempty"`
	BiasPhase  sim.Time `json:",omitempty"`
	// GCWorkers overrides the parallel collector's thread count.
	GCWorkers int `json:",omitempty"`
	// TenuringThreshold overrides the survivor-promotion age.
	TenuringThreshold int `json:",omitempty"`
	// ConcurrentGC selects the CMS-style concurrent collector;
	// GCTriggerRatio sets its occupancy trigger.
	ConcurrentGC   bool    `json:",omitempty"`
	GCTriggerRatio float64 `json:",omitempty"`
	// Pretenuring enables the allocation-site pretenuring learner.
	Pretenuring bool `json:",omitempty"`
	// Iterations repeats the workload inside one JVM, DaCapo-style.
	Iterations int `json:",omitempty"`
	// LockPolicy selects the contended-monitor discipline by locks
	// registry name ("fifo", "barging", "spin-then-park", "restricted");
	// empty inherits the plan's (ultimately fifo). Unknown names are
	// rejected at plan-load time.
	LockPolicy string `json:",omitempty"`
	// Placement selects the scheduler's run-queue placement by sched
	// registry name ("affinity", "round-robin", "least-loaded"); empty
	// inherits the plan's (ultimately affinity).
	Placement string `json:",omitempty"`
	// GCPolicy selects the collection discipline by gc registry name
	// ("stw-serial", "stw-parallel", "concurrent", "compartment"); empty
	// inherits the plan's (ultimately stw-serial). Unknown names are
	// rejected at plan-load time.
	GCPolicy string `json:",omitempty"`
	// NewRatio and SurvivorRatio override the heap's generation split
	// (HotSpot defaults 2 and 8) — the heap-sizing ablation knobs.
	NewRatio      int `json:",omitempty"`
	SurvivorRatio int `json:",omitempty"`
	// Machine selects the hardware model by machine registry name
	// ("opteron-6168", "sparc-t3-4", "opteron-6168-bw"); empty inherits
	// the plan's (ultimately opteron-6168). Unknown names are rejected at
	// plan-load time.
	Machine string `json:",omitempty"`
}

// apply writes the non-zero overrides onto a vm.Config.
func (o *ConfigOverrides) apply(cfg *vm.Config) {
	if o == nil {
		return
	}
	if o.HeapFactor != 0 {
		cfg.HeapFactor = o.HeapFactor
	}
	if o.Compartments != 0 {
		cfg.Compartments = o.Compartments
	}
	if o.BiasGroups != 0 {
		cfg.Sched.Bias.Groups = o.BiasGroups
		cfg.Sched.Bias.PhaseLength = o.BiasPhase
		if cfg.Sched.Bias.PhaseLength <= 0 {
			cfg.Sched.Bias.PhaseLength = 2 * sim.Millisecond
		}
	}
	if o.GCWorkers != 0 {
		cfg.GC.Workers = o.GCWorkers
	}
	if o.TenuringThreshold != 0 {
		cfg.GC.TenuringThreshold = uint8(o.TenuringThreshold)
	}
	if o.ConcurrentGC {
		cfg.GC.Concurrent = true
	}
	if o.GCTriggerRatio != 0 {
		cfg.GC.TriggerRatio = o.GCTriggerRatio
	}
	if o.Pretenuring {
		cfg.Pretenuring = true
	}
	if o.Iterations != 0 {
		cfg.Iterations = o.Iterations
	}
	if o.LockPolicy != "" {
		cfg.LockPolicy = o.LockPolicy
	}
	if o.Placement != "" {
		cfg.Sched.Placement = o.Placement
	}
	if o.GCPolicy != "" {
		cfg.GCPolicy = o.GCPolicy
	}
	if o.NewRatio != 0 {
		cfg.NewRatio = o.NewRatio
	}
	if o.SurvivorRatio != 0 {
		cfg.SurvivorRatio = o.SurvivorRatio
	}
	if o.Machine != "" {
		cfg.MachineName = o.Machine
	}
}

// validate reports structurally impossible overrides.
func (o *ConfigOverrides) validate() error {
	if o == nil {
		return nil
	}
	if o.HeapFactor < 0 {
		return fmt.Errorf("HeapFactor = %v", o.HeapFactor)
	}
	if o.Compartments < 0 || o.BiasGroups < 0 || o.GCWorkers < 0 || o.Iterations < 0 {
		return fmt.Errorf("negative override")
	}
	if o.TenuringThreshold < 0 || o.TenuringThreshold > 255 {
		return fmt.Errorf("TenuringThreshold = %d", o.TenuringThreshold)
	}
	if o.BiasPhase < 0 {
		return fmt.Errorf("BiasPhase = %v", o.BiasPhase)
	}
	if o.BiasPhase != 0 && o.BiasGroups == 0 {
		return fmt.Errorf("BiasPhase set without BiasGroups")
	}
	if o.GCTriggerRatio < 0 || o.GCTriggerRatio > 1 {
		return fmt.Errorf("GCTriggerRatio = %v", o.GCTriggerRatio)
	}
	if o.NewRatio < 0 || o.SurvivorRatio < 0 {
		return fmt.Errorf("negative heap ratio override")
	}
	if err := locks.ValidatePolicy(o.LockPolicy); err != nil {
		return err
	}
	if err := sched.ValidatePlacement(o.Placement); err != nil {
		return err
	}
	if err := gc.ValidatePolicy(o.GCPolicy); err != nil {
		return err
	}
	if err := machine.ValidateModel(o.Machine); err != nil {
		return err
	}
	return nil
}

// TrafficSpec switches a scenario to the open-system model: instead of a
// fixed thread pool looping over the workload (the closed system, where
// offered load falls as the system slows), requests arrive from a seeded
// generator process at a swept offered rate and queue for a fixed server
// pool — the model under which queueing delay compounds into tail latency
// and goodput diverges from offered load past saturation.
type TrafficSpec struct {
	// Process names the arrival process by traffic registry name
	// ("poisson", "bursty", "diurnal", or a registered custom). Required.
	Process string
	// Rates are the offered request rates (requests/second) to sweep,
	// strictly ascending. Required, non-empty.
	Rates []float64
	// Threads is the server-pool size at every rate point; 0 means
	// DefaultOpenThreads.
	Threads int `json:",omitempty"`
	// Requests bounds offered requests per run; 0 derives a budget from
	// the workload's unit count.
	Requests int `json:",omitempty"`
	// Timeout abandons requests that queue longer than this (virtual
	// nanoseconds); 0 never abandons.
	Timeout sim.Time `json:",omitempty"`
	// BurstFactor, BurstOnFraction, and BurstPeriod tune the bursty
	// process; zero picks the traffic package defaults.
	BurstFactor     float64  `json:",omitempty"`
	BurstOnFraction float64  `json:",omitempty"`
	BurstPeriod     sim.Time `json:",omitempty"`
	// DiurnalPeriod and DiurnalAmplitude tune the diurnal process; zero
	// picks the traffic package defaults.
	DiurnalPeriod    sim.Time `json:",omitempty"`
	DiurnalAmplitude float64  `json:",omitempty"`
}

// config builds the per-point traffic configuration at one offered rate.
func (ts *TrafficSpec) config(rate float64) traffic.Config {
	return traffic.Config{
		Process: ts.Process, RatePerSec: rate,
		Requests: ts.Requests, Timeout: ts.Timeout,
		BurstFactor: ts.BurstFactor, BurstOnFraction: ts.BurstOnFraction,
		BurstPeriod:   ts.BurstPeriod,
		DiurnalPeriod: ts.DiurnalPeriod, DiurnalAmplitude: ts.DiurnalAmplitude,
	}
}

func (ts *TrafficSpec) threads() int {
	if ts.Threads <= 0 {
		return DefaultOpenThreads
	}
	return ts.Threads
}

func (ts *TrafficSpec) validate() error {
	if ts.Process == "" || ts.Process == traffic.ProcessClosed {
		return fmt.Errorf("Traffic.Process must name an open arrival process (have %q)", ts.Process)
	}
	if len(ts.Rates) == 0 {
		return fmt.Errorf("Traffic.Rates is empty")
	}
	for i, r := range ts.Rates {
		if r <= 0 {
			return fmt.Errorf("Traffic rate %v", r)
		}
		if i > 0 && r <= ts.Rates[i-1] {
			return fmt.Errorf("Traffic rates must be strictly ascending (%v after %v)", r, ts.Rates[i-1])
		}
	}
	if ts.Threads < 0 {
		return fmt.Errorf("Traffic.Threads = %d", ts.Threads)
	}
	return ts.config(ts.Rates[0]).Validate()
}

// Scenario declaratively describes one experiment: sweep a workload
// across thread counts under a (possibly overridden) JVM configuration,
// optionally repeated under derived seeds. Zero-valued fields inherit the
// enclosing plan's defaults.
type Scenario struct {
	// Name identifies the scenario; reports reference scenarios by it and
	// it labels the scenario's rows and tables. Required, unique in plan.
	Name string
	// Workload references a registered workload by name or carries an
	// inline spec.
	Workload workload.Ref
	// ThreadCounts to sweep, ascending; nil inherits the plan's (and
	// ultimately the paper's {4,8,16,24,32,48}). Mutually exclusive with
	// Traffic, which sweeps offered rates at a fixed pool size instead.
	ThreadCounts []int `json:",omitempty"`
	// Traffic switches the scenario to the open-system model: the sweep
	// axis becomes Traffic.Rates and every point runs Traffic.Threads
	// servers fed by the named arrival process.
	Traffic *TrafficSpec `json:",omitempty"`
	// Scale shrinks the workload (0 < Scale <= 1); 0 inherits the plan's.
	Scale float64 `json:",omitempty"`
	// Seed drives the scenario's randomness; 0 inherits the plan's.
	Seed uint64 `json:",omitempty"`
	// Repeats runs the whole sweep this many times under derived seeds
	// (repeat i uses Seed + i*1000, so repeat 0 shares cache entries with
	// unrepeated scenarios of the same seed). 0 means 1.
	Repeats int `json:",omitempty"`
	// Overrides are the scenario's JVM-config deltas.
	Overrides *ConfigOverrides `json:",omitempty"`
	// Outputs are the per-scenario artifacts to render.
	Outputs []Output `json:",omitempty"`
}

// validate checks one scenario against the plan's defaults.
func (sc *Scenario) validate(p *Plan) error {
	if sc.Name == "" {
		return fmt.Errorf("core: scenario with empty name")
	}
	if _, err := sc.Workload.Resolve(); err != nil {
		return fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	if err := validThreadCounts(sc.ThreadCounts); err != nil {
		return fmt.Errorf("core: scenario %q: %w", sc.Name, err)
	}
	if sc.Scale < 0 || sc.Scale > 1 {
		return fmt.Errorf("core: scenario %q: scale %v outside (0,1]", sc.Name, sc.Scale)
	}
	if sc.Repeats < 0 {
		return fmt.Errorf("core: scenario %q: repeats %d", sc.Name, sc.Repeats)
	}
	if err := sc.Overrides.validate(); err != nil {
		return fmt.Errorf("core: scenario %q: overrides: %w", sc.Name, err)
	}
	if sc.Traffic != nil {
		if len(sc.ThreadCounts) > 0 {
			return fmt.Errorf("core: scenario %q: Traffic scenarios sweep rates, not ThreadCounts", sc.Name)
		}
		if err := sc.Traffic.validate(); err != nil {
			return fmt.Errorf("core: scenario %q: %w", sc.Name, err)
		}
		if sc.Overrides != nil && sc.Overrides.Iterations > 1 {
			return fmt.Errorf("core: scenario %q: open-system runs take a single iteration", sc.Name)
		}
	}
	for _, out := range sc.Outputs {
		if !validOutputs[out] {
			return fmt.Errorf("core: scenario %q: unknown output %q (known: %s)", sc.Name, out, knownNames(validOutputs))
		}
		if out == OutputReplication && sc.repeats() < 2 {
			return fmt.Errorf("core: scenario %q: replication output needs Repeats >= 2", sc.Name)
		}
		// The scalability outputs read thread sweeps and the goodput
		// output reads rate sweeps; neither renders the other's axis.
		if sc.Traffic != nil && out != OutputGoodput && out != OutputReplication {
			return fmt.Errorf("core: scenario %q: output %q reads thread sweeps — Traffic scenarios render %q", sc.Name, out, OutputGoodput)
		}
		if sc.Traffic == nil && out == OutputGoodput {
			return fmt.Errorf("core: scenario %q: output %q needs a Traffic block", sc.Name, OutputGoodput)
		}
		if out == OutputUSL && sc.Traffic == nil {
			if counts := sc.threadCounts(p); len(counts) < fit.MinPoints {
				return fmt.Errorf("core: scenario %q: usl output needs at least %d thread counts to fit, have %v — a degenerate sweep cannot separate contention from coherency",
					sc.Name, fit.MinPoints, counts)
			}
		}
	}
	return nil
}

func (sc *Scenario) threadCounts(p *Plan) []int {
	switch {
	case len(sc.ThreadCounts) > 0:
		return sc.ThreadCounts
	case len(p.ThreadCounts) > 0:
		return p.ThreadCounts
	default:
		return DefaultThreadCounts
	}
}

func (sc *Scenario) scale(p *Plan) float64 {
	switch {
	case sc.Scale != 0:
		return sc.Scale
	case p.Scale != 0:
		return p.Scale
	default:
		return 1
	}
}

func (sc *Scenario) seed(p *Plan) uint64 {
	switch {
	case sc.Seed != 0:
		return sc.Seed
	case p.Seed != 0:
		return p.Seed
	default:
		return 42
	}
}

func (sc *Scenario) repeats() int {
	if sc.Repeats < 1 {
		return 1
	}
	return sc.Repeats
}

// validThreadCounts requires strictly ascending positive counts: every
// downstream analysis (speedup baselines, "largest thread count" tables,
// lifespan low/high panels) reads the first point as the lowest count
// and the last as the highest.
func validThreadCounts(counts []int) error {
	for i, n := range counts {
		if n < 1 {
			return fmt.Errorf("thread count %d", n)
		}
		if i > 0 && n <= counts[i-1] {
			return fmt.Errorf("thread counts must be strictly ascending (%d after %d)", n, counts[i-1])
		}
	}
	return nil
}

// deriveSeed derives the seed of repeat i from a scenario's base seed.
// Repeat 0 is the base seed itself, so a repeated scenario's first sweep
// shares memoized results with unrepeated scenarios at the same seed.
func deriveSeed(base uint64, i int) uint64 { return base + uint64(i)*1000 }

// ReportKind names a cross-scenario report shape.
type ReportKind string

const (
	// ReportSeries renders one metric per (scenario, thread count) — the
	// Figure 1a/1b shape.
	ReportSeries ReportKind = "series"
	// ReportLifespanCDF renders one scenario's lifespan CDF at a low and
	// a high thread count — the Figure 1c/1d shape.
	ReportLifespanCDF ReportKind = "lifespan-cdf"
	// ReportMutatorGC renders the mutator/GC split of each scenario at
	// every thread count — the Figure 2 shape.
	ReportMutatorGC ReportKind = "mutator-gc"
	// ReportClassification renders the §II-C verdict per scenario.
	ReportClassification ReportKind = "classification"
	// ReportWorkDistribution renders the §III per-thread work spread.
	ReportWorkDistribution ReportKind = "work-distribution"
	// ReportFactors renders the factor decomposition per scenario.
	ReportFactors ReportKind = "factors"
	// ReportCompare contrasts two scenarios' results at their largest
	// thread counts — the ablation shape.
	ReportCompare ReportKind = "compare"
	// ReportGoodput renders offered vs completed throughput and the
	// latency tail of open-system scenarios across their swept rates —
	// the goodput-under-overload shape. It may only reference Traffic
	// scenarios, and they must share one rate grid.
	ReportGoodput ReportKind = "goodput"
	// ReportUSL renders the analytic scalability fit across scenarios:
	// one row per scenario with the fitted USL/Amdahl parameters (sigma,
	// kappa, R^2), the residual-selected model, the predicted peak
	// concurrency, and the worst predicted-vs-measured deviation. Every
	// referenced scenario must sweep at least fit.MinPoints thread
	// counts.
	ReportUSL ReportKind = "usl"
)

var validReportKinds = map[ReportKind]bool{
	ReportSeries: true, ReportLifespanCDF: true, ReportMutatorGC: true,
	ReportClassification: true, ReportWorkDistribution: true,
	ReportFactors: true, ReportCompare: true, ReportGoodput: true,
	ReportUSL: true,
}

// Metric selects the number a series report extracts from each sweep
// point.
type Metric string

const (
	MetricAcquisitions   Metric = "acquisitions"
	MetricContentions    Metric = "contentions"
	MetricTotalSeconds   Metric = "total-seconds"
	MetricMutatorSeconds Metric = "mutator-seconds"
	MetricGCSeconds      Metric = "gc-seconds"
	MetricGCShare        Metric = "gc-share"
	MetricCDFBelow1KB    Metric = "cdf-below-1kb"
)

var validMetrics = map[Metric]bool{
	MetricAcquisitions: true, MetricContentions: true, MetricTotalSeconds: true,
	MetricMutatorSeconds: true, MetricGCSeconds: true, MetricGCShare: true,
	MetricCDFBelow1KB: true,
}

// ReportSpec declares one cross-scenario artifact of a plan.
type ReportSpec struct {
	// Name identifies the rendered artifact (progress events and
	// PlanResult lookups use it). Required, unique in plan.
	Name string
	// Kind selects the report shape.
	Kind ReportKind
	// Title overrides the report's default title. For lifespan-cdf it is
	// a prefix joined to the generated panel title with " — ".
	Title string `json:",omitempty"`
	// Note is the table's footnote.
	Note string `json:",omitempty"`
	// Key is the series row-key header; default "scenario".
	Key string `json:",omitempty"`
	// Metric selects the series number.
	Metric Metric `json:",omitempty"`
	// Scenarios are the contributing scenario names, in row order; empty
	// means every scenario in plan order. lifespan-cdf takes exactly one.
	// For compare, Scenarios (>= 2, first is the baseline) is the
	// multi-column alternative to the Baseline/Modified pair — the shape
	// of a whole policy ablation in one table.
	Scenarios []string `json:",omitempty"`
	// LowThreads/HighThreads pick the lifespan-cdf panel's two counts;
	// zero selects the scenario's first/last thread count.
	LowThreads  int `json:",omitempty"`
	HighThreads int `json:",omitempty"`
	// Baseline and Modified name the two scenarios of a two-column
	// compare report; leave both empty and list Scenarios instead for a
	// multi-column compare.
	Baseline string `json:",omitempty"`
	Modified string `json:",omitempty"`
}

// compareScenarios resolves the columns of a compare report: the
// Baseline/Modified pair, or the explicit Scenarios list (first entry is
// the baseline).
func (rs *ReportSpec) compareScenarios() []string {
	if rs.Baseline != "" || rs.Modified != "" {
		return []string{rs.Baseline, rs.Modified}
	}
	return rs.Scenarios
}

// validate checks a report against the plan's scenario set.
func (rs *ReportSpec) validate(scenarios map[string]bool) error {
	if rs.Name == "" {
		return fmt.Errorf("core: report with empty name")
	}
	ref := func(name string) error {
		if !scenarios[name] {
			return fmt.Errorf("core: report %q references unknown scenario %q", rs.Name, name)
		}
		return nil
	}
	for _, n := range rs.Scenarios {
		if err := ref(n); err != nil {
			return err
		}
	}
	if !validReportKinds[rs.Kind] {
		return fmt.Errorf("core: report %q: unknown kind %q (known: %s)", rs.Name, rs.Kind, knownNames(validReportKinds))
	}
	// Fields that only apply to one kind are rejected elsewhere, so a
	// setting that would be silently ignored surfaces at validation time.
	inapplicable := func(field string, set bool, kind ReportKind) error {
		if set && rs.Kind != kind {
			return fmt.Errorf("core: report %q: %s only applies to %q reports", rs.Name, field, kind)
		}
		return nil
	}
	for _, err := range []error{
		inapplicable("Metric", rs.Metric != "", ReportSeries),
		inapplicable("Key", rs.Key != "", ReportSeries),
		inapplicable("LowThreads/HighThreads", rs.LowThreads != 0 || rs.HighThreads != 0, ReportLifespanCDF),
		inapplicable("Baseline/Modified", rs.Baseline != "" || rs.Modified != "", ReportCompare),
	} {
		if err != nil {
			return err
		}
	}
	switch rs.Kind {
	case ReportSeries:
		if !validMetrics[rs.Metric] {
			return fmt.Errorf("core: report %q: unknown metric %q (known: %s)", rs.Name, rs.Metric, knownNames(validMetrics))
		}
	case ReportLifespanCDF:
		if len(rs.Scenarios) != 1 {
			return fmt.Errorf("core: report %q: lifespan-cdf takes exactly one scenario", rs.Name)
		}
	case ReportMutatorGC, ReportClassification, ReportWorkDistribution, ReportFactors, ReportGoodput, ReportUSL:
	case ReportCompare:
		switch {
		case rs.Baseline == "" && rs.Modified == "":
			if len(rs.Scenarios) < 2 {
				return fmt.Errorf("core: report %q: compare needs Baseline and Modified, or at least two Scenarios", rs.Name)
			}
		case rs.Baseline == "" || rs.Modified == "":
			return fmt.Errorf("core: report %q: compare needs Baseline and Modified", rs.Name)
		case len(rs.Scenarios) > 0:
			return fmt.Errorf("core: report %q: compare takes either Baseline/Modified or Scenarios, not both", rs.Name)
		default:
			if err := ref(rs.Baseline); err != nil {
				return err
			}
			if err := ref(rs.Modified); err != nil {
				return err
			}
		}
	}
	return nil
}

// Plan is an ordered set of scenarios plus the reports rendered across
// them — a whole experiment matrix as one serializable value.
type Plan struct {
	// Name labels the plan in progress events and results.
	Name string `json:",omitempty"`
	// Seed, Scale, and ThreadCounts are the defaults scenarios inherit.
	Seed         uint64  `json:",omitempty"`
	Scale        float64 `json:",omitempty"`
	ThreadCounts []int   `json:",omitempty"`
	// LockPolicy, Placement, and GCPolicy are the policy defaults every
	// scenario inherits; a scenario's ConfigOverrides take precedence.
	// Empty means fifo/affinity/stw-serial, the paper's baseline.
	// Unknown names are rejected at plan-load time.
	LockPolicy string `json:",omitempty"`
	Placement  string `json:",omitempty"`
	GCPolicy   string `json:",omitempty"`
	// Machine is the hardware-model default every scenario inherits; a
	// scenario's Overrides.Machine takes precedence. Empty means
	// opteron-6168, the paper's testbed. Unknown names are rejected at
	// plan-load time.
	Machine string `json:",omitempty"`
	// Scenarios are the experiments, executed through the engine's pool.
	Scenarios []Scenario
	// Reports are the cross-scenario artifacts, rendered in order once
	// every scenario has run.
	Reports []ReportSpec `json:",omitempty"`
}

// Validate reports structural errors: missing or duplicate scenario
// names, unresolvable workload references, unknown outputs, metrics, or
// report kinds, and reports referencing absent scenarios.
func (p *Plan) Validate() error {
	if len(p.Scenarios) == 0 {
		return fmt.Errorf("core: plan %q has no scenarios", p.Name)
	}
	if p.Scale < 0 || p.Scale > 1 {
		return fmt.Errorf("core: plan %q: scale %v outside (0,1]", p.Name, p.Scale)
	}
	if err := validThreadCounts(p.ThreadCounts); err != nil {
		return fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	if err := locks.ValidatePolicy(p.LockPolicy); err != nil {
		return fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	if err := sched.ValidatePlacement(p.Placement); err != nil {
		return fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	if err := gc.ValidatePolicy(p.GCPolicy); err != nil {
		return fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	if err := machine.ValidateModel(p.Machine); err != nil {
		return fmt.Errorf("core: plan %q: %w", p.Name, err)
	}
	names := make(map[string]bool, len(p.Scenarios))
	for i := range p.Scenarios {
		sc := &p.Scenarios[i]
		if err := sc.validate(p); err != nil {
			return err
		}
		if names[sc.Name] {
			return fmt.Errorf("core: duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
	}
	reports := make(map[string]bool, len(p.Reports))
	for i := range p.Reports {
		rs := &p.Reports[i]
		if err := rs.validate(names); err != nil {
			return err
		}
		if reports[rs.Name] {
			return fmt.Errorf("core: duplicate report name %q", rs.Name)
		}
		reports[rs.Name] = true
		if err := p.checkTrafficRefs(rs); err != nil {
			return err
		}
		switch rs.Kind {
		case ReportSeries:
			if err := p.checkSeriesCounts(rs); err != nil {
				return err
			}
		case ReportLifespanCDF:
			if err := p.checkCDFThreads(rs); err != nil {
				return err
			}
		case ReportCompare:
			if err := p.checkCompareThreads(rs); err != nil {
				return err
			}
		case ReportGoodput:
			if err := p.checkGoodputRates(rs); err != nil {
				return err
			}
		case ReportUSL:
			if err := p.checkUSLCounts(rs); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkTrafficRefs enforces the axis split between report kinds: goodput
// reports read rate sweeps, every other kind reads thread sweeps, and a
// report referencing the wrong scenario flavor would render nonsense.
func (p *Plan) checkTrafficRefs(rs *ReportSpec) error {
	byName := make(map[string]*Scenario, len(p.Scenarios))
	for i := range p.Scenarios {
		byName[p.Scenarios[i].Name] = &p.Scenarios[i]
	}
	names := p.reportScenarios(rs)
	if rs.Kind == ReportCompare && (rs.Baseline != "" || rs.Modified != "") {
		names = rs.compareScenarios()
	}
	for _, name := range names {
		sc := byName[name]
		if sc == nil {
			continue // unknown references were rejected above
		}
		if rs.Kind == ReportGoodput && sc.Traffic == nil {
			return fmt.Errorf("core: report %q: goodput reports read rate sweeps, but scenario %q has no Traffic block", rs.Name, name)
		}
		if rs.Kind != ReportGoodput && sc.Traffic != nil {
			return fmt.Errorf("core: report %q: kind %q reads thread sweeps, but scenario %q sweeps offered rates", rs.Name, rs.Kind, name)
		}
	}
	return nil
}

// checkGoodputRates rejects goodput reports whose scenarios sweep
// different rate grids: their rows would compare unlike offered loads.
func (p *Plan) checkGoodputRates(rs *ReportSpec) error {
	byName := make(map[string]*Scenario, len(p.Scenarios))
	for i := range p.Scenarios {
		byName[p.Scenarios[i].Name] = &p.Scenarios[i]
	}
	picked := p.reportScenarios(rs)
	var first []float64
	for i, name := range picked {
		rates := byName[name].Traffic.Rates
		if i == 0 {
			first = rates
			continue
		}
		same := len(rates) == len(first)
		for j := 0; same && j < len(rates); j++ {
			same = rates[j] == first[j]
		}
		if !same {
			return fmt.Errorf("core: report %q: scenario %q sweeps rates %v but %q sweeps %v — goodput rows must share the rate grid",
				rs.Name, picked[0], first, name, rates)
		}
	}
	return nil
}

// checkUSLCounts rejects usl reports over sweeps too short to fit: with
// two shape parameters plus the throughput scale, fewer than
// fit.MinPoints points is an interpolation, and the typo surfaces
// before simulating rather than as a fit error mid-plan.
func (p *Plan) checkUSLCounts(rs *ReportSpec) error {
	byName := make(map[string]*Scenario, len(p.Scenarios))
	for i := range p.Scenarios {
		byName[p.Scenarios[i].Name] = &p.Scenarios[i]
	}
	for _, name := range p.reportScenarios(rs) {
		sc := byName[name]
		if sc == nil || sc.Traffic != nil {
			continue // unknown and rate-sweep references were rejected above
		}
		counts := sc.threadCounts(p)
		if len(counts) < fit.MinPoints {
			return fmt.Errorf("core: report %q: scenario %q sweeps only %d thread counts (%v) — a usl fit needs at least %d points to separate contention from coherency",
				rs.Name, name, len(counts), counts, fit.MinPoints)
		}
	}
	return nil
}

// checkCompareThreads rejects compare reports whose scenarios top out at
// different thread counts: the contrast would mix a config delta with a
// thread-count delta and silently mislead.
func (p *Plan) checkCompareThreads(rs *ReportSpec) error {
	top := func(name string) int {
		for i := range p.Scenarios {
			if p.Scenarios[i].Name == name {
				counts := p.Scenarios[i].threadCounts(p)
				return counts[len(counts)-1]
			}
		}
		return 0
	}
	names := rs.compareScenarios()
	base := top(names[0])
	for _, name := range names[1:] {
		if m := top(name); m != base {
			return fmt.Errorf("core: report %q: %q tops out at %d threads but %q at %d — compare contrasts the largest points, which must match",
				rs.Name, names[0], base, name, m)
		}
	}
	return nil
}

// checkCDFThreads rejects lifespan-cdf reports whose explicit low/high
// thread counts are not points of their scenario's sweep — the sweep
// counts are known statically, so the typo surfaces before simulating.
func (p *Plan) checkCDFThreads(rs *ReportSpec) error {
	var counts []int
	for i := range p.Scenarios {
		if p.Scenarios[i].Name == rs.Scenarios[0] {
			counts = p.Scenarios[i].threadCounts(p)
		}
	}
	for _, want := range []int{rs.LowThreads, rs.HighThreads} {
		if want == 0 {
			continue
		}
		found := false
		for _, n := range counts {
			if n == want {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("core: report %q: thread count %d not in scenario %q's sweep %v",
				rs.Name, want, rs.Scenarios[0], counts)
		}
	}
	return nil
}

// reportScenarios resolves which scenarios feed a report: its explicit
// list, or every scenario in plan order when the list is empty. Both
// validation and rendering use this one rule.
func (p *Plan) reportScenarios(rs *ReportSpec) []string {
	if len(rs.Scenarios) > 0 {
		return rs.Scenarios
	}
	names := make([]string, len(p.Scenarios))
	for i := range p.Scenarios {
		names[i] = p.Scenarios[i].Name
	}
	return names
}

// checkSeriesCounts rejects series reports whose scenarios sweep
// different thread counts: their rows would not share columns.
func (p *Plan) checkSeriesCounts(rs *ReportSpec) error {
	byName := make(map[string]*Scenario, len(p.Scenarios))
	for i := range p.Scenarios {
		byName[p.Scenarios[i].Name] = &p.Scenarios[i]
	}
	picked := p.reportScenarios(rs)
	var first []int
	for i, name := range picked {
		counts := byName[name].threadCounts(p)
		if i == 0 {
			first = counts
			continue
		}
		same := len(counts) == len(first)
		for j := 0; same && j < len(counts); j++ {
			same = counts[j] == first[j]
		}
		if !same {
			return fmt.Errorf("core: report %q: scenario %q sweeps %v but %q sweeps %v — series rows must share thread counts",
				rs.Name, picked[0], first, name, counts)
		}
	}
	return nil
}

// WriteJSON renders the plan as indented JSON — the plan-file format
// cmd/javasim -plan reads.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// LoadPlan reads and validates a plan from JSON. Unknown fields are
// rejected so typos in hand-written plan files surface immediately.
func LoadPlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("core: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ScenarioResult is one scenario's execution record.
type ScenarioResult struct {
	// Name is the scenario name; Workload the resolved spec name.
	Name     string
	Workload string
	// Sweeps holds one sweep per repeat, repeat 0 first.
	Sweeps []*Sweep
	// Tables are the scenario's rendered Outputs, in declaration order.
	Tables []*report.Table
}

// Sweep returns the first repeat's sweep — the scenario's primary result.
func (r *ScenarioResult) Sweep() *Sweep { return r.Sweeps[0] }

// PlanResult is the complete outcome of Engine.RunPlan.
type PlanResult struct {
	// Plan is the executed plan's name.
	Plan string
	// Scenarios hold per-scenario results, in plan order.
	Scenarios []*ScenarioResult
	// Reports are the plan's cross-scenario tables, in plan order.
	Reports []*report.Table
}

// Scenario returns the named scenario's result, or nil.
func (pr *PlanResult) Scenario(name string) *ScenarioResult {
	for _, r := range pr.Scenarios {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Tables returns every rendered table — scenario outputs in plan order,
// then the cross-scenario reports.
func (pr *PlanResult) Tables() []*report.Table {
	var out []*report.Table
	for _, r := range pr.Scenarios {
		out = append(out, r.Tables...)
	}
	return append(out, pr.Reports...)
}

// RunPlan validates and executes a declarative plan: scenarios run
// concurrently through the engine's bounded worker pool (identical points
// across overlapping scenarios are deduplicated and memoized by the
// run cache), progress streams to the engine's observers, and the plan's
// reports are rendered once every scenario has finished. A canceled
// context aborts the in-flight sweeps and returns the context's error.
func (e *Engine) RunPlan(ctx context.Context, p *Plan) (*PlanResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Scenarios run concurrently; the first real failure cancels the
	// siblings so a doomed plan does not simulate its whole remaining
	// matrix before reporting the error.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*ScenarioResult, len(p.Scenarios))
	var (
		wg        sync.WaitGroup
		failOnce  sync.Once
		firstErr  error
		firstName string
	)
	for i := range p.Scenarios {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			results[i], err = e.runScenario(runCtx, p, &p.Scenarios[i])
			if err != nil {
				failOnce.Do(func() {
					firstErr, firstName = err, p.Scenarios[i].Name
					cancel()
				})
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("core: scenario %s: %w", firstName, firstErr)
	}
	pr := &PlanResult{Plan: p.Name, Scenarios: results}
	byName := make(map[string]*ScenarioResult, len(results))
	for _, r := range results {
		byName[r.Name] = r
	}
	for i := range p.Reports {
		rs := &p.Reports[i]
		t, err := renderReport(p, rs, byName)
		if err != nil {
			return nil, err
		}
		pr.Reports = append(pr.Reports, t)
		e.emit(ctx, Event{Kind: ArtifactRendered, Artifact: rs.Name})
	}
	e.emit(ctx, Event{Kind: PlanDone, Plan: p.Name})
	return pr, nil
}

// runScenario executes one scenario's repeats and renders its outputs.
func (e *Engine) runScenario(ctx context.Context, p *Plan, sc *Scenario) (*ScenarioResult, error) {
	spec, err := sc.Workload.Resolve()
	if err != nil {
		return nil, err
	}
	if scale := sc.scale(p); scale != 1 {
		spec = spec.Scale(scale)
	}
	seed := sc.seed(p)
	base := vm.Config{Seed: seed, LockPolicy: p.LockPolicy, GCPolicy: p.GCPolicy, MachineName: p.Machine}
	base.Sched.Placement = p.Placement
	sc.Overrides.apply(&base)
	swCfg := SweepConfig{ThreadCounts: sc.threadCounts(p)}
	if sc.Traffic != nil {
		// The rate becomes the sweep axis; Sweep fills it in per point.
		base.Threads = sc.Traffic.threads()
		base.Traffic = sc.Traffic.config(0)
		swCfg = SweepConfig{Rates: sc.Traffic.Rates}
	}

	res := &ScenarioResult{Name: sc.Name, Workload: spec.Name}
	for i := 0; i < sc.repeats(); i++ {
		cfg := base
		cfg.Seed = deriveSeed(seed, i)
		swCfg.Base = cfg
		sw, err := e.Sweep(ctx, spec, swCfg)
		if err != nil {
			return nil, err
		}
		res.Sweeps = append(res.Sweeps, sw)
	}
	for _, out := range sc.Outputs {
		t, err := renderOutput(sc, out, res.Sweeps)
		if err != nil {
			return nil, err
		}
		res.Tables = append(res.Tables, t)
	}
	e.emit(ctx, Event{Kind: ScenarioDone, Scenario: sc.Name, Workload: spec.Name, Seed: seed})
	return res, nil
}

// renderOutput renders one per-scenario artifact.
func renderOutput(sc *Scenario, out Output, sweeps []*Sweep) (*report.Table, error) {
	sw := sweeps[0]
	switch out {
	case OutputSweep:
		return renderSweepTable(sc.Name, sw), nil
	case OutputClassification:
		return renderClassification([]string{sc.Name}, []*Sweep{sw}), nil
	case OutputFactors:
		return renderFactors([]string{sc.Name}, []*Sweep{sw}), nil
	case OutputLifespanCDF:
		lo := sw.Points[0].Threads
		hi := sw.Points[len(sw.Points)-1].Threads
		return renderLifespanCDF(sw, lo, hi)
	case OutputReplication:
		return renderReplication(sc.Name, sweeps), nil
	case OutputGoodput:
		return renderGoodput("", "", []string{sc.Name}, []*Sweep{sw})
	case OutputUSL:
		return renderUSLOutput(sc.Name, sw)
	default:
		return nil, fmt.Errorf("core: unknown output %q", out)
	}
}

// renderReport renders one cross-scenario report from the finished
// scenario results.
func renderReport(p *Plan, rs *ReportSpec, byName map[string]*ScenarioResult) (*report.Table, error) {
	picked := p.reportScenarios(rs)
	sweeps := make([]*Sweep, len(picked))
	for i, name := range picked {
		sweeps[i] = byName[name].Sweep()
	}

	var t *report.Table
	switch rs.Kind {
	case ReportSeries:
		key := rs.Key
		if key == "" {
			key = "scenario"
		}
		title := rs.Title
		if title == "" {
			title = fmt.Sprintf("%s vs threads", rs.Metric)
		}
		var err error
		t, err = renderSeries(title, key, picked, sweeps, rs.Metric)
		if err != nil {
			return nil, err
		}
	case ReportLifespanCDF:
		sw := sweeps[0]
		lo, hi := rs.LowThreads, rs.HighThreads
		if lo == 0 {
			lo = sw.Points[0].Threads
		}
		if hi == 0 {
			hi = sw.Points[len(sw.Points)-1].Threads
		}
		var err error
		t, err = renderLifespanCDF(sw, lo, hi)
		if err != nil {
			return nil, err
		}
		if rs.Title != "" {
			t.Title = rs.Title + " — " + t.Title
		}
	case ReportMutatorGC:
		title := rs.Title
		if title == "" {
			title = "Mutator and GC time split"
		}
		t = renderMutatorGC(title, rs.Note, picked, sweeps)
	case ReportClassification:
		t = renderClassification(picked, sweeps)
	case ReportWorkDistribution:
		t = renderWorkDistribution(picked, sweeps)
	case ReportFactors:
		t = renderFactors(picked, sweeps)
	case ReportGoodput:
		var err error
		t, err = renderGoodput(rs.Title, rs.Note, picked, sweeps)
		if err != nil {
			return nil, err
		}
	case ReportUSL:
		var err error
		t, err = renderUSL(picked, sweeps)
		if err != nil {
			return nil, err
		}
	case ReportCompare:
		names := rs.compareScenarios()
		title := rs.Title
		if title == "" {
			title = "Compare — " + strings.Join(names, " vs ")
		}
		last := func(name string) *vm.Result {
			sw := byName[name].Sweep()
			return sw.Points[len(sw.Points)-1].Result
		}
		if rs.Baseline != "" {
			t = renderCompare(title, rs.Note, last(rs.Baseline), last(rs.Modified))
		} else {
			results := make([]*vm.Result, len(names))
			for i, name := range names {
				results[i] = last(name)
			}
			t = renderCompareColumns(title, rs.Note, names, results)
		}
	default:
		return nil, fmt.Errorf("core: unknown report kind %q", rs.Kind)
	}
	if rs.Title != "" && rs.Kind != ReportLifespanCDF {
		t.Title = rs.Title
	}
	if rs.Note != "" {
		t.Note = rs.Note
	}
	return t, nil
}
