package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"javasim/internal/vm"
	"javasim/internal/workload"
)

// Engine is the long-lived entry point of the framework: it owns a
// bounded worker pool and a concurrency-safe memoizing result cache, and
// every run, sweep, and suite dispatched through it shares both. Many
// goroutines may call an Engine concurrently — concurrent figure
// generation, batch studies, servers sweeping on behalf of request
// handlers — and the engine guarantees that at most Parallelism
// simulations execute at once, that identical in-flight requests are
// deduplicated, and that completed results are memoized.
//
// Construct engines with NewEngine and functional options; the zero
// Engine is not usable.
type Engine struct {
	parallelism int
	seed        uint64
	cacheSize   int
	observers   []Observer
	store       ResultStore
	runner      Runner

	sem     chan struct{} // worker-slot semaphore, capacity = parallelism
	cache   *resultCache
	flights flightGroup

	simulations atomic.Int64
	memoryHits  atomic.Int64
	diskHits    atomic.Int64
	shared      atomic.Int64
	diskWrites  atomic.Int64
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithParallelism bounds the number of simulations the engine executes
// concurrently. Values below 1 are clamped to 1; the default is
// runtime.GOMAXPROCS(0). Sweeps and suites never spawn more simulation
// goroutines than this bound.
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithSeed sets the seed substituted into runs whose Config.Seed is zero.
// The default is 0, which leaves configs untouched.
func WithSeed(seed uint64) Option {
	return func(e *Engine) { e.seed = seed }
}

// WithObserver registers an observer for the engine's progress events.
// Several observers may be registered; each receives every event.
func WithObserver(o Observer) Option {
	return func(e *Engine) {
		if o != nil {
			e.observers = append(e.observers, o)
		}
	}
}

// WithCache sizes the memoizing result cache (entries, not bytes). A size
// of zero or below disables memoization entirely. The default is 256
// entries — comfortably a full six-workload sweep of the paper's
// methodology plus every study configuration.
func WithCache(entries int) Option {
	return func(e *Engine) { e.cacheSize = entries }
}

// DefaultCacheEntries is the result-cache capacity used when WithCache is
// not given.
const DefaultCacheEntries = 256

// ResultStore is a persistent second cache tier behind the in-memory
// LRU, keyed by Fingerprint hashes. Implementations must be safe for
// concurrent use and must treat stored results as immutable. Get
// returning false means "not present" — a store is a cache, so it may
// drop or fail to persist entries, but it must never return a wrong or
// partially-decoded result (see javasim/internal/store for the
// content-addressed on-disk implementation).
type ResultStore interface {
	Get(fingerprint string) (*vm.Result, bool)
	Put(fingerprint string, res *vm.Result)
}

// WithDiskStore backs the engine's result cache with a persistent
// store: cache misses read through to it before simulating, and every
// completed cacheable simulation is written through, so no fingerprint
// the store has ever seen is simulated twice — across engines,
// processes, or restarts.
func WithDiskStore(s ResultStore) Option {
	return func(e *Engine) { e.store = s }
}

// Runner executes one simulation. The engine's default runner is
// vm.RunContext; WithRunner substitutes a different execution substrate
// — e.g. the serving daemon's worker-process pool, which shards sweep
// points across child processes by fingerprint.
type Runner func(ctx context.Context, spec workload.Spec, cfg vm.Config) (*vm.Result, error)

// WithRunner replaces the engine's simulation executor. The runner is
// invoked under the engine's parallelism bound and its results flow
// into the memoizing cache and the disk store exactly as local runs do;
// it must be deterministic for equal (spec, canonical config, seed)
// inputs or cached results will diverge from fresh ones.
func WithRunner(r Runner) Option {
	return func(e *Engine) {
		if r != nil {
			e.runner = r
		}
	}
}

// NewEngine builds an engine from the options.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		parallelism: runtime.GOMAXPROCS(0),
		cacheSize:   DefaultCacheEntries,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallelism < 1 {
		e.parallelism = 1
	}
	if e.runner == nil {
		e.runner = vm.RunContext
	}
	e.sem = make(chan struct{}, e.parallelism)
	e.cache = newResultCache(e.cacheSize)
	return e
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the shared process-wide engine that the
// deprecated free functions (Run, RunSweep, NewSuite) delegate to.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = NewEngine() })
	return defaultEngine
}

// Parallelism reports the engine's simulation concurrency bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// Stats is a snapshot of the engine's lifetime counters.
type Stats struct {
	// Simulations counts runs actually executed by the VM.
	Simulations int64
	// CacheHits counts run requests answered from the memoizing cache
	// (including singleflight waiters that shared a leader's simulation).
	CacheHits int64
	// CachedResults is the number of results currently memoized.
	CachedResults int
}

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Simulations:   e.simulations.Load(),
		CacheHits:     e.memoryHits.Load() + e.diskHits.Load() + e.shared.Load(),
		CachedResults: e.cache.len(),
	}
}

// CacheStats breaks the engine's cache behavior down by tier: where
// each run request was answered from, how many were deduplicated
// in-flight, and how many fell all the way through to a simulation.
type CacheStats struct {
	// MemoryHits counts requests answered from the in-memory LRU.
	MemoryHits int64
	// DiskHits counts requests answered from the disk store (the result
	// is promoted into the LRU on the way).
	DiskHits int64
	// Shared counts singleflight deduplications: requests that arrived
	// while an identical run was in flight and shared its result
	// instead of simulating.
	Shared int64
	// Misses counts requests that dispatched a simulation — the only
	// path that consumes a worker slot for a cacheable run.
	Misses int64
	// DiskWrites counts results written through to the disk store.
	DiskWrites int64
	// Entries is the number of results currently memoized in memory.
	Entries int
}

// CacheStats returns the per-tier cache counters. A plan POSTed twice
// to a daemon (even across restarts, given a disk store) shows
// Misses == 0 on its second submission.
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{
		MemoryHits: e.memoryHits.Load(),
		DiskHits:   e.diskHits.Load(),
		Shared:     e.shared.Load(),
		Misses:     e.simulations.Load(),
		DiskWrites: e.diskWrites.Load(),
		Entries:    e.cache.len(),
	}
}

// emit delivers ev to every engine observer in registration order, then
// to the context-scoped observer, if the work was dispatched under one
// (see ContextWithObserver).
func (e *Engine) emit(ctx context.Context, ev Event) {
	for _, o := range e.observers {
		o.Observe(ev)
	}
	if o := contextObserver(ctx); o != nil {
		o.Observe(ev)
	}
}

// Run executes one benchmark configuration, answering from the memoizing
// cache when an identical run (same spec, same canonicalized config) has
// already completed, and deduplicating identical runs that are in flight
// concurrently. Cache hits return the same *vm.Result pointer; results
// must be treated as immutable. Runs carrying a TraceSink or LockProfiler
// bypass the cache, since their value is the side-effecting event stream.
//
// Run blocks until a worker slot is free (at most Parallelism simulations
// execute concurrently, across all of the engine's callers) or ctx is
// done. A canceled context aborts the simulation at the simulator's next
// event-loop checkpoint and returns an error wrapping ctx.Err().
func (e *Engine) Run(ctx context.Context, spec workload.Spec, cfg vm.Config) (*vm.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = e.seed
	}
	key, cacheable := runKey(spec, cfg)
	if !cacheable {
		return e.simulate(ctx, spec, cfg)
	}
	hit := func(res *vm.Result, tier *atomic.Int64) *vm.Result {
		tier.Add(1)
		e.emit(ctx, Event{Kind: RunCached, Workload: spec.Name, Threads: cfg.Canonical().Threads, Seed: cfg.Seed})
		return res
	}
	for {
		if res, ok := e.cache.get(key); ok {
			return hit(res, &e.memoryHits), nil
		}
		fl, leader := e.flights.join(key)
		if leader {
			// Re-check under the flight: a previous leader may have
			// finished (and populated the cache) between our miss and our
			// join, and re-simulating a cached run would waste a slot.
			if res, ok := e.cache.get(key); ok {
				e.flights.leave(key, fl, res, nil)
				return hit(res, &e.memoryHits), nil
			}
			// Second tier: the disk store. Only the flight leader reads
			// it, so a popular fingerprint costs one read, not a herd.
			if e.store != nil {
				if res, ok := e.store.Get(key); ok {
					e.cache.put(key, res)
					e.flights.leave(key, fl, res, nil)
					return hit(res, &e.diskHits), nil
				}
			}
			res, err := e.simulate(ctx, spec, cfg)
			if err == nil {
				e.cache.put(key, res)
				if e.store != nil {
					e.store.Put(key, res)
					e.diskWrites.Add(1)
				}
			}
			e.flights.leave(key, fl, res, err)
			return res, err
		}
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err == nil {
			return hit(fl.res, &e.shared), nil
		}
		// The leader failed. If its failure was its own context dying, our
		// context may still be live — retry (we will likely become the new
		// leader). Any other failure is deterministic and shared.
		if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
			continue
		}
		return nil, fl.err
	}
}

// simulate acquires a worker slot and runs the VM.
func (e *Engine) simulate(ctx context.Context, spec workload.Spec, cfg vm.Config) (*vm.Result, error) {
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-e.sem }()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	threads := cfg.Canonical().Threads
	e.emit(ctx, Event{Kind: RunStarted, Workload: spec.Name, Threads: threads, Seed: cfg.Seed})
	e.simulations.Add(1)
	res, err := e.runner(ctx, spec, cfg)
	fin := Event{Kind: RunFinished, Workload: spec.Name, Threads: threads, Seed: cfg.Seed, Err: err}
	if res != nil {
		fin.VirtualTime = res.TotalTime
	}
	e.emit(ctx, fin)
	return res, err
}

// Sweep measures spec across the configured thread counts — or, when
// cfg.Rates is set, across offered request rates at a fixed server pool —
// through the engine's worker pool: points run concurrently, but never on
// more goroutines than the engine's parallelism bound, and each point is
// memoized individually. A base config carrying a TraceSink or
// LockProfiler forces the sweep sequential so the sinks observe one
// coherent event stream per point.
//
// Sweep returns ctx.Err() as soon as the context dies; already-completed
// points stay memoized for a later retry.
func (e *Engine) Sweep(ctx context.Context, spec workload.Spec, cfg SweepConfig) (*Sweep, error) {
	open := len(cfg.Rates) > 0
	if open && !cfg.Base.Traffic.Open() {
		return nil, fmt.Errorf("core: sweep %s: Rates set but Base.Traffic names no open arrival process", spec.Name)
	}
	counts := cfg.threadCounts()
	openThreads := cfg.Base.Threads
	if openThreads <= 0 {
		openThreads = DefaultOpenThreads
	}
	n := len(counts)
	if open {
		n = len(cfg.Rates)
	}
	// Warm-start: every point of the sweep forks its workload generation
	// from one shared snapshot (pre-generated unit tapes) instead of
	// re-deriving the same draws per thread count or rate — see
	// vm.Snapshot. The snapshot rides the context, never the config, so
	// cache keys and disk fingerprints are identical to cold runs; the
	// lazy provider resolves on the first point that actually simulates,
	// so fully cached sweeps never pay the tape build.
	if !cfg.Base.DisableSnapshot {
		scfg := cfg.Base
		if scfg.Seed == 0 {
			scfg.Seed = e.seed
		}
		ctx = vm.ContextWithSnapshotProvider(ctx, vm.NewSnapshotProvider(spec, scfg))
	}
	results := make([]*vm.Result, n)
	errs := make([]error, n)
	runPoint := func(i int) {
		vcfg := cfg.Base
		if open {
			vcfg.Threads = openThreads
			vcfg.Traffic.RatePerSec = cfg.Rates[i]
		} else {
			vcfg.Threads = counts[i]
		}
		vcfg.Cores = 0 // paper methodology: cores = threads
		results[i], errs[i] = e.Run(ctx, spec, vcfg)
		if errs[i] == nil {
			e.emit(ctx, Event{Kind: SweepPointDone, Workload: spec.Name, Threads: vcfg.Threads, Seed: vcfg.Seed})
		}
	}
	if cfg.Base.TraceSink != nil || cfg.Base.LockProfiler != nil {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			runPoint(i)
		}
	} else {
		workers := min(e.parallelism, n)
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					runPoint(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			if open {
				return nil, fmt.Errorf("core: sweep %s at %v req/s: %w", spec.Name, cfg.Rates[i], err)
			}
			return nil, fmt.Errorf("core: sweep %s at %d threads: %w", spec.Name, counts[i], err)
		}
	}
	s := &Sweep{Spec: spec}
	if open {
		for i, r := range cfg.Rates {
			s.Points = append(s.Points, Point{Threads: openThreads, Rate: r, Result: results[i]})
		}
	} else {
		for i, c := range counts {
			s.Points = append(s.Points, Point{Threads: c, Result: results[i]})
		}
	}
	e.emit(ctx, Event{Kind: SweepDone, Workload: spec.Name, Seed: cfg.Base.Seed})
	return s, nil
}

// Suite builds an experiment suite bound to this engine: its sweeps run
// through the engine's worker pool, its repeated figure/study requests
// share the engine's memoizing cache, and its progress streams to the
// engine's observers.
func (e *Engine) Suite(cfg ExperimentConfig) *Suite {
	return &Suite{
		cfg:    cfg.withDefaults(),
		eng:    e,
		sweeps: make(map[string]*sweepCell),
	}
}
