package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"javasim/internal/workload"
)

// testPlan is a small two-scenario plan used by the serialization tests.
func testPlan() *Plan {
	return &Plan{
		Name:         "test-plan",
		Seed:         7,
		Scale:        0.02,
		ThreadCounts: []int{2, 4},
		Scenarios: []Scenario{
			{Name: "base", Workload: workload.NameRef("xalan"), Outputs: []Output{OutputSweep}},
			{Name: "small-heap", Workload: workload.NameRef("xalan"),
				Overrides: &ConfigOverrides{HeapFactor: 1.5}},
			{Name: "inline", Workload: workload.SpecRef(workload.JythonSpec()),
				ThreadCounts: []int{2}, Repeats: 2, Outputs: []Output{OutputReplication}},
		},
		Reports: []ReportSpec{
			{Name: "gc", Kind: ReportSeries, Metric: MetricGCSeconds,
				Scenarios: []string{"base", "small-heap"}},
			{Name: "heap", Kind: ReportCompare, Baseline: "base", Modified: "small-heap",
				Title: "heap ablation"},
			{Name: "class", Kind: ReportClassification,
				Scenarios: []string{"base", "small-heap"}},
		},
	}
}

// TestPlanJSONRoundTripStable asserts encode→decode→encode is
// byte-stable, so plan files survive rewriting.
func TestPlanJSONRoundTripStable(t *testing.T) {
	p := testPlan()
	var first bytes.Buffer
	if err := p.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	decoded, err := LoadPlan(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := decoded.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("encode not stable:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	if decoded.Scenarios[2].Workload.Spec == nil {
		t.Error("inline workload lost in round trip")
	}
	if decoded.Scenarios[1].Overrides == nil || decoded.Scenarios[1].Overrides.HeapFactor != 1.5 {
		t.Error("overrides lost in round trip")
	}
}

func TestLoadPlanRejectsUnknownFieldsAndBadRefs(t *testing.T) {
	if _, err := LoadPlan(strings.NewReader(`{"Scenarios":[],"Typo":1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
	bad := `{"Scenarios":[{"Name":"a","Workload":"no-such-workload"}]}`
	_, err := LoadPlan(strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "no-such-workload") {
		t.Errorf("unknown workload reference error = %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		warp func(*Plan)
		want string
	}{
		{"no scenarios", func(p *Plan) { p.Scenarios = nil }, "no scenarios"},
		{"empty scenario name", func(p *Plan) { p.Scenarios[0].Name = "" }, "empty name"},
		{"duplicate scenario", func(p *Plan) { p.Scenarios[1].Name = "base" }, "duplicate scenario"},
		{"bad thread count", func(p *Plan) { p.Scenarios[0].ThreadCounts = []int{0} }, "thread count"},
		{"descending thread counts", func(p *Plan) {
			p.Scenarios[0].ThreadCounts = []int{8, 4}
		}, "strictly ascending"},
		{"duplicate thread counts", func(p *Plan) { p.ThreadCounts = []int{4, 4} }, "strictly ascending"},
		{"bad scale", func(p *Plan) { p.Scenarios[0].Scale = 1.5 }, "scale"},
		{"unknown output", func(p *Plan) { p.Scenarios[0].Outputs = []Output{"bogus"} }, "unknown output"},
		{"replication needs repeats", func(p *Plan) {
			p.Scenarios[0].Outputs = []Output{OutputReplication}
		}, "Repeats >= 2"},
		{"bad override", func(p *Plan) {
			p.Scenarios[1].Overrides = &ConfigOverrides{GCTriggerRatio: 2}
		}, "overrides"},
		{"unknown report kind", func(p *Plan) { p.Reports[0].Kind = "bogus" }, "unknown kind"},
		{"unknown metric", func(p *Plan) { p.Reports[0].Metric = "bogus" }, "unknown metric"},
		{"report on unknown scenario", func(p *Plan) {
			p.Reports[0].Scenarios = []string{"ghost"}
		}, "unknown scenario"},
		{"compare missing sides", func(p *Plan) { p.Reports[1].Modified = "" }, "Baseline and Modified"},
		{"duplicate report", func(p *Plan) { p.Reports[1].Name = "gc" }, "duplicate report"},
		{"series over mismatched counts", func(p *Plan) {
			p.Scenarios[1].ThreadCounts = []int{4}
		}, "share thread counts"},
		{"cdf threads not in sweep", func(p *Plan) {
			p.Reports = append(p.Reports, ReportSpec{Name: "cdf", Kind: ReportLifespanCDF,
				Scenarios: []string{"base"}, LowThreads: 3})
		}, "not in scenario"},
		{"metric on non-series report", func(p *Plan) {
			p.Reports[1].Metric = MetricGCSeconds
		}, "only applies to"},
		{"baseline on series report", func(p *Plan) {
			p.Reports[0].Baseline = "base"
		}, "only applies to"},
		{"compare over mismatched maxima", func(p *Plan) {
			p.Scenarios[1].ThreadCounts = []int{2}
			p.Reports[0].Scenarios = []string{"base"} // keep the series report legal
		}, "largest points"},
		{"bias phase without groups", func(p *Plan) {
			p.Scenarios[1].Overrides = &ConfigOverrides{BiasPhase: 100}
		}, "BiasPhase set without BiasGroups"},
		{"unknown plan machine", func(p *Plan) { p.Machine = "vax-780" }, "unknown machine model"},
		{"unknown override machine", func(p *Plan) {
			p.Scenarios[1].Overrides = &ConfigOverrides{Machine: "vax-780"}
		}, "unknown machine model"},
		// Rejection messages must teach the schema: every "unknown X"
		// error lists the valid values, sorted.
		{"unknown output lists valid outputs", func(p *Plan) {
			p.Scenarios[0].Outputs = []Output{"bogus"}
		}, "(known: classification, factors, goodput, lifespan-cdf, replication, sweep, usl)"},
		{"unknown kind lists valid kinds", func(p *Plan) {
			p.Reports[0].Kind = "bogus"
		}, "(known: classification, compare, factors, goodput, lifespan-cdf, mutator-gc, series, usl, work-distribution)"},
		{"unknown metric lists valid metrics", func(p *Plan) {
			p.Reports[0].Metric = "bogus"
		}, "(known: acquisitions, cdf-below-1kb, contentions, gc-seconds, gc-share, mutator-seconds, total-seconds)"},
		// The fitter needs fit.MinPoints sweep points; shorter sweeps must
		// die at validation, not as NaN mid-plan.
		{"usl output over short sweep", func(p *Plan) {
			p.Scenarios[0].Outputs = []Output{OutputUSL} // plan sweeps only {2, 4}
		}, "usl output needs at least"},
		{"usl report over short sweep", func(p *Plan) {
			p.Reports = append(p.Reports, ReportSpec{Name: "usl", Kind: ReportUSL,
				Scenarios: []string{"base"}})
		}, "separate contention from coherency"},
		{"usl report over rate sweep", func(p *Plan) {
			p.Scenarios = append(p.Scenarios, Scenario{Name: "open",
				Workload: workload.NameRef("server"),
				Traffic:  &TrafficSpec{Process: "poisson", Rates: []float64{100, 200}}})
			p.Reports = append(p.Reports, ReportSpec{Name: "usl", Kind: ReportUSL,
				Scenarios: []string{"open"}})
		}, "reads thread sweeps"},
		{"usl output on traffic scenario", func(p *Plan) {
			p.Scenarios = append(p.Scenarios, Scenario{Name: "open",
				Workload: workload.NameRef("server"),
				Traffic:  &TrafficSpec{Process: "poisson", Rates: []float64{100, 200}},
				Outputs:  []Output{OutputUSL}})
		}, "Traffic scenarios render"},
	}
	for _, tc := range cases {
		p := testPlan()
		tc.warp(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if err := testPlan().Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestRunPlanMemoization asserts that overlapping scenarios share
// simulations through the engine's run cache: two scenarios describing
// the same (workload, config, threads) points simulate each point once.
func TestRunPlanMemoization(t *testing.T) {
	eng := NewEngine(WithParallelism(2))
	p := &Plan{
		Seed:         5,
		Scale:        0.02,
		ThreadCounts: []int{2, 4},
		Scenarios: []Scenario{
			{Name: "a", Workload: workload.NameRef("xalan")},
			{Name: "b", Workload: workload.NameRef("xalan")}, // identical matrix
		},
	}
	pr, err := eng.RunPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Simulations != 2 {
		t.Errorf("simulations = %d, want 2 (two unique points)", st.Simulations)
	}
	if st.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 (scenario b served from cache/singleflight)", st.CacheHits)
	}
	// The shared points are literally the same memoized results.
	a, b := pr.Scenario("a").Sweep(), pr.Scenario("b").Sweep()
	for i := range a.Points {
		if a.Points[i].Result != b.Points[i].Result {
			t.Errorf("point %d not shared between overlapping scenarios", i)
		}
	}
}

func TestRunPlanOutputsReportsAndEvents(t *testing.T) {
	// Observers must be concurrency-safe: scenarios emit ScenarioDone
	// from the plan's parallel goroutines.
	var mu sync.Mutex
	var scenarios, artifacts, plans int
	eng := NewEngine(WithObserver(ObserverFunc(func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Kind {
		case ScenarioDone:
			scenarios++
		case ArtifactRendered:
			artifacts++
		case PlanDone:
			plans++
		}
	})))
	pr, err := eng.RunPlan(context.Background(), testPlan())
	if err != nil {
		t.Fatal(err)
	}
	if scenarios != 3 || artifacts != 3 || plans != 1 {
		t.Errorf("events: scenarios=%d artifacts=%d plans=%d", scenarios, artifacts, plans)
	}
	if got := len(pr.Tables()); got != 5 {
		t.Errorf("tables = %d, want 5 (2 outputs + 3 reports)", got)
	}
	if pr.Reports[1].Title != "heap ablation" {
		t.Errorf("report title = %q", pr.Reports[1].Title)
	}
	// Cross-scenario rows are labeled by scenario name, so two scenarios
	// of the same workload stay distinguishable.
	if class := pr.Reports[2]; class.Rows[0][0] != "base" || class.Rows[1][0] != "small-heap" {
		t.Errorf("classification row labels = %q, %q; want scenario names",
			class.Rows[0][0], class.Rows[1][0])
	}
	if inline := pr.Scenario("inline"); len(inline.Sweeps) != 2 {
		t.Errorf("inline repeats = %d, want 2", len(inline.Sweeps))
	} else if inline.Sweeps[0].Points[0].Result == inline.Sweeps[1].Points[0].Result {
		t.Error("derived-seed repeats returned the identical result")
	}
	if pr.Scenario("ghost") != nil {
		t.Error("unknown scenario lookup returned non-nil")
	}
}

func TestRunPlanCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := NewEngine(WithParallelism(1))
	if _, err := eng.RunPlan(ctx, testPlan()); err == nil {
		t.Error("canceled plan succeeded")
	}
}

// TestPaperPlanShape checks the built-in plan covers the full artifact
// suite and round-trips through JSON like any user plan.
func TestPaperPlanShape(t *testing.T) {
	p := PaperPlan(ExperimentConfig{ThreadCounts: []int{2, 4}, Scale: 0.02, Seed: 1})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios) != 9 { // six workloads + three ablation scenarios
		t.Errorf("scenarios = %d, want 9", len(p.Scenarios))
	}
	wantReports := []string{"Fig1a", "Fig1b", "Fig1c", "Fig1d", "Fig2",
		"ClassificationTable", "WorkDistributionTable", "FactorsTable",
		"AblationBias", "AblationCompartments"}
	if len(p.Reports) != len(wantReports) {
		t.Fatalf("reports = %d, want %d", len(p.Reports), len(wantReports))
	}
	for i, w := range wantReports {
		if p.Reports[i].Name != w {
			t.Errorf("report %d = %q, want %q", i, p.Reports[i].Name, w)
		}
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlan(bytes.NewReader(data)); err != nil {
		t.Errorf("paper plan does not round-trip: %v", err)
	}

	// At three or more thread counts the plan grows the USL fit table;
	// the two-count variant above must stay at the historical report set
	// so its golden artifacts remain byte-identical.
	p3 := PaperPlan(ExperimentConfig{ThreadCounts: []int{2, 4, 8}, Scale: 0.02, Seed: 1})
	if err := p3.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p3.Reports) != len(wantReports)+1 {
		t.Fatalf("3-count reports = %d, want %d", len(p3.Reports), len(wantReports)+1)
	}
	if last := p3.Reports[len(p3.Reports)-1]; last.Name != "USLFitTable" || last.Kind != ReportUSL {
		t.Errorf("3-count plan last report = %q kind %q, want USLFitTable/usl", last.Name, last.Kind)
	}
}

// TestSuiteMethodsMatchPlanReports asserts the imperative figure methods
// and the declarative plan render byte-identical artifacts.
func TestSuiteMethodsMatchPlanReports(t *testing.T) {
	cfg := ExperimentConfig{ThreadCounts: []int{2, 4}, Scale: 0.02, Seed: 99}
	eng := NewEngine()
	ctx := context.Background()

	pr, err := eng.RunPlan(ctx, PaperPlan(cfg))
	if err != nil {
		t.Fatal(err)
	}
	suite := eng.Suite(cfg)
	fig1a, err := suite.Fig1a(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var imperative, declarative bytes.Buffer
	if err := fig1a.WriteASCII(&imperative); err != nil {
		t.Fatal(err)
	}
	if err := pr.Reports[0].WriteASCII(&declarative); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imperative.Bytes(), declarative.Bytes()) {
		t.Errorf("Fig1a diverged:\n--- imperative\n%s\n--- declarative\n%s",
			imperative.String(), declarative.String())
	}
}
