// Package core is the reproduction's primary contribution: the
// scalability-factor analysis framework from "Factors Affecting Scalability
// of Multithreaded Java Applications on Manycore Systems" (Qian et al.,
// ISPASS 2015).
//
// It sweeps a workload across thread/core counts on the simulated JVM,
// splits execution into mutator and GC time, tracks the lock and
// object-lifespan profiles, classifies applications as scalable or
// non-scalable by the paper's operational definition, and decomposes the
// observed scaling loss into the paper's factors: sequential fraction,
// lock contention, GC share growth, lifespan shift, and work imbalance.
//
// Experiments are data: a Scenario declares one experiment (workload
// reference, thread counts, config overrides, repeats, outputs), a Plan
// is an ordered set of scenarios plus cross-scenario reports, and
// Engine.RunPlan executes the whole matrix through the engine's bounded
// pool and memoizing cache. Plans round-trip through JSON, and the
// paper's own figure suite is the built-in PaperPlan.
package core

import (
	"context"

	"javasim/internal/fit"
	"javasim/internal/metrics"
	"javasim/internal/sim"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// DefaultThreadCounts is the paper's sweep: threads = enabled cores, from
// 4 up to the full 48-core machine.
var DefaultThreadCounts = []int{4, 8, 16, 24, 32, 48}

// DefaultOpenThreads is the server-pool size of an open-system rate sweep
// when neither the traffic spec nor the base config picks one.
const DefaultOpenThreads = 16

// SweepConfig drives one workload across thread counts, or — when Rates
// is set — across offered request rates at a fixed server-pool size.
type SweepConfig struct {
	// ThreadCounts to sweep; nil means DefaultThreadCounts. Ignored when
	// Rates is set.
	ThreadCounts []int
	// Rates switches the sweep to the open-system axis: each point runs
	// Base.Traffic's arrival process at one offered rate (requests/second)
	// with Base.Threads servers (DefaultOpenThreads when zero). Base.Traffic
	// must name an open arrival process.
	Rates []float64
	// Base is the VM configuration template; Threads/Cores (thread sweeps)
	// or Traffic.RatePerSec (rate sweeps) are overridden per point.
	Base vm.Config
}

func (c SweepConfig) threadCounts() []int {
	if len(c.ThreadCounts) == 0 {
		return DefaultThreadCounts
	}
	return c.ThreadCounts
}

// Point is one sweep measurement.
type Point struct {
	Threads int
	// Rate is the offered request rate of an open-system point
	// (requests/second); 0 on closed-loop thread-sweep points.
	Rate   float64
	Result *vm.Result
}

// Sweep is a workload's measurements across thread counts (closed-loop)
// or offered rates (open-system), ascending.
type Sweep struct {
	Spec   workload.Spec
	Points []Point
}

// Open reports whether the sweep varied offered rate rather than thread
// count. Open sweeps feed goodput reports; the scalability analyses
// (Curve, Classify, ComputeFactors) assume thread sweeps.
func (s *Sweep) Open() bool { return len(s.Points) > 0 && s.Points[0].Rate > 0 }

// RunSweep executes spec at every configured thread count on the shared
// default engine. Points run concurrently through the engine's bounded
// worker pool — results are deterministic per (seed, threads) regardless
// of host scheduling — unless the base config carries shared sinks (trace
// or lock profiler), in which case the sweep runs sequentially to keep
// their event streams coherent.
//
// Deprecated: construct an Engine and use Engine.Sweep, which adds
// context cancellation, progress observation, and control over the
// parallelism bound and cache.
func RunSweep(spec workload.Spec, cfg SweepConfig) (*Sweep, error) {
	return DefaultEngine().Sweep(context.Background(), spec, cfg)
}

// Curve returns the total-execution-time scaling curve.
func (s *Sweep) Curve() metrics.ScalingCurve {
	var c metrics.ScalingCurve
	for _, p := range s.Points {
		c = append(c, metrics.ScalingPoint{Threads: p.Threads, Seconds: p.Result.TotalTime.Seconds()})
	}
	return c
}

// MutatorSeconds returns per-point mutator time in seconds.
func (s *Sweep) MutatorSeconds() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Result.MutatorTime.Seconds()
	}
	return out
}

// GCSeconds returns per-point GC (stop-the-world) time in seconds.
func (s *Sweep) GCSeconds() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Result.GCTime.Seconds()
	}
	return out
}

// Acquisitions returns the Figure 1a series.
func (s *Sweep) Acquisitions() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = float64(p.Result.LockAcquisitions)
	}
	return out
}

// Contentions returns the Figure 1b series.
func (s *Sweep) Contentions() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = float64(p.Result.LockContentions)
	}
	return out
}

// CDFBelow returns, per point, the fraction of object lifespans below the
// given byte limit — the Figure 1c/1d statistic.
func (s *Sweep) CDFBelow(limit int64) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Result.Lifespans.FractionBelow(limit)
	}
	return out
}

// Throughputs returns per-point throughput in work units per virtual
// second — the axis the analytic scalability models fit. The absolute
// unit is arbitrary (the fitted scale lambda absorbs it); only the shape
// across thread counts matters.
func (s *Sweep) Throughputs() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		var units int64
		for _, u := range p.Result.PerThreadUnits {
			units += u
		}
		if secs := p.Result.TotalTime.Seconds(); secs > 0 {
			out[i] = float64(units) / secs
		}
	}
	return out
}

// FitUSL fits the Universal Scalability Law and the Amdahl special case
// to the sweep's throughput curve, selecting between them by residual —
// the analytic counterpart to ComputeFactors' ablation-style
// decomposition (sigma tracks the lock-contention factors, kappa the
// coherency-flavored ones: GC growth, bandwidth, placement).
func (s *Sweep) FitUSL() (fit.Fit, error) {
	threads := make([]int, len(s.Points))
	for i, p := range s.Points {
		threads[i] = p.Threads
	}
	pts, err := fit.Series(threads, s.Throughputs())
	if err != nil {
		return fit.Fit{}, err
	}
	return fit.Both(pts)
}

// DefaultSpeedupThreshold is the end-of-sweep speedup separating scalable
// from non-scalable applications in Classify: the paper's scalable trio
// gains 3-5x from 4 to 48 threads, while the non-scalable trio stays
// within 1.2x, so a 2x threshold splits them with wide margin.
const DefaultSpeedupThreshold = 2.0

// DefaultEfficiencyFloor is retained for reference in reports; it is not
// the classification criterion (parallel efficiency at 48 threads falls
// below any fixed floor even for workloads the paper calls scalable).
const DefaultEfficiencyFloor = 0.3

// Classification is the §II-C verdict for one workload.
type Classification struct {
	Name string
	// Scalable is the measured verdict.
	Scalable bool
	// PaperScalable is the paper's published classification.
	PaperScalable bool
	// MaxSpeedup and AtThreads locate the best point of the curve.
	MaxSpeedup float64
	AtThreads  int
	// FinalEfficiency is parallel efficiency at the largest thread count.
	FinalEfficiency float64
}

// Matches reports whether the measured verdict agrees with the paper.
func (c Classification) Matches() bool { return c.Scalable == c.PaperScalable }

// Classify applies the paper's scalability definition to the sweep.
func (s *Sweep) Classify(effFloor float64) Classification {
	curve := s.Curve()
	eff := curve.Efficiency()
	sp, at := curve.MaxSpeedup()
	return Classification{
		Name:            s.Spec.Name,
		Scalable:        curve.IsScalable(effFloor),
		PaperScalable:   workload.Scalable(s.Spec.Name),
		MaxSpeedup:      sp,
		AtThreads:       at,
		FinalEfficiency: eff[len(eff)-1],
	}
}

// Factors decomposes the scaling behavior into the paper's contributing
// factors, each a dimensionless "how much did this grow across the sweep"
// statistic.
type Factors struct {
	// SequentialFraction is the Amdahl fit of the total-time curve.
	SequentialFraction float64
	// AcquisitionGrowth is acquisitions(last)/acquisitions(first) — Fig 1a.
	AcquisitionGrowth float64
	// ContentionGrowth is contentions(last)/contentions(first) — Fig 1b.
	ContentionGrowth float64
	// GCShareFirst/Last track how much of total time GC consumed — Fig 2.
	GCShareFirst float64
	GCShareLast  float64
	// GCTimeGrowth is gc(last)/gc(first) in absolute time.
	GCTimeGrowth float64
	// LifespanShift is the drop (in CDF points) of the fraction of objects
	// dying within 1KB, first to last — Fig 1c/1d.
	LifespanShift float64
	// LifespanKS is the Kolmogorov-Smirnov distance between the first and
	// last points' full lifespan distributions — the whole-distribution
	// version of LifespanShift.
	LifespanKS float64
	// Top4Share is the fraction of work executed by the four busiest
	// threads at the largest thread count — the §III distribution check.
	Top4Share float64
	// ReadyWaitShare is time threads spent runnable-but-descheduled as a
	// fraction of total CPU demand at the last point — the suspension
	// pressure the paper ties to lifespan stretching.
	ReadyWaitShare float64
	// BandwidthShare is aggregate memory-channel stall across all threads
	// as a fraction of aggregate thread-time (threads x total time) at the
	// largest thread count — the bandwidth-saturation term. Zero on
	// machines without a SocketBandwidth ceiling.
	BandwidthShare float64
}

// ComputeFactors derives the factor decomposition from the sweep.
func (s *Sweep) ComputeFactors() Factors {
	f := Factors{
		SequentialFraction: s.Curve().AmdahlFit(),
		AcquisitionGrowth:  metrics.GrowthFactor(s.Acquisitions()),
		ContentionGrowth:   metrics.GrowthFactor(s.Contentions()),
		GCTimeGrowth:       metrics.GrowthFactor(s.GCSeconds()),
	}
	first, last := s.Points[0].Result, s.Points[len(s.Points)-1].Result
	f.GCShareFirst = first.GCShare()
	f.GCShareLast = last.GCShare()
	cdf := s.CDFBelow(1024)
	f.LifespanShift = cdf[0] - cdf[len(cdf)-1]
	f.LifespanKS = metrics.KSDistance(first.Lifespans, last.Lifespans)

	shares := make([]float64, len(last.PerThreadUnits))
	for i, u := range last.PerThreadUnits {
		shares[i] = float64(u)
	}
	f.Top4Share = metrics.TopKShare(shares, 4)

	var cpu, wait sim.Time
	for i := range last.PerThreadCPU {
		cpu += last.PerThreadCPU[i]
		wait += last.PerThreadReadyWait[i]
	}
	if cpu+wait > 0 {
		f.ReadyWaitShare = float64(wait) / float64(cpu+wait)
	}
	if last.TotalTime > 0 && last.Threads > 0 {
		f.BandwidthShare = float64(last.MemBWStall) / (float64(last.TotalTime) * float64(last.Threads))
	}
	return f
}
