package core

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"javasim/internal/workload"
)

// TestUSLCrossValidation is the analytic-vs-ablation agreement test
// (ROADMAP item 1): fit the six PaperSet workload sweeps and check the
// fitted parameters against the factor table's independent, ablation-
// style decomposition. Contention-bound workloads must rank the same by
// fitted sigma as by the factor table's sequential fraction, and the
// GC-bound non-scalable pair must carry the dominant coherency terms.
func TestUSLCrossValidation(t *testing.T) {
	eng := NewEngine()
	sigma := map[string]float64{}
	kappa := map[string]float64{}
	seqFrac := map[string]float64{}
	for _, w := range workload.PaperSet() {
		cfg := SweepConfig{ThreadCounts: []int{2, 4, 8}}
		cfg.Base.Seed = 13
		sw, err := eng.Sweep(context.Background(), w.Scale(0.04), cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sw.FitUSL()
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		m := f.Best()
		if math.IsNaN(m.Sigma) || math.IsNaN(m.Kappa) || m.Sigma < 0 || m.Kappa < 0 {
			t.Fatalf("%s: degenerate fit %+v", w.Name, m)
		}
		if m.R2 < 0.9 {
			t.Errorf("%s: R2 %.4f — the law should explain a simulated sweep", w.Name, m.R2)
		}
		sigma[w.Name], kappa[w.Name] = m.Sigma, m.Kappa
		seqFrac[w.Name] = sw.ComputeFactors().SequentialFraction
	}

	// The contention-bound workloads (the scalable trio plus h2, whose
	// non-scalability the paper ties to serialization) must rank
	// identically by fitted sigma and by the factor table's Amdahl
	// sequential fraction — the same ordering recovered two independent
	// ways. Eclipse and jython are excluded from the rank check: their
	// losses are GC-shaped (kappa), not serialization-shaped.
	contentionBound := []string{"sunflow", "lusearch", "xalan", "h2"}
	bySigma := append([]string(nil), contentionBound...)
	byFrac := append([]string(nil), contentionBound...)
	sort.SliceStable(bySigma, func(i, j int) bool { return sigma[bySigma[i]] < sigma[bySigma[j]] })
	sort.SliceStable(byFrac, func(i, j int) bool { return seqFrac[byFrac[i]] < seqFrac[byFrac[j]] })
	for i := range bySigma {
		if bySigma[i] != byFrac[i] {
			t.Fatalf("sigma ordering %v disagrees with factor-table sequential-fraction ordering %v\nsigma=%v seqFrac=%v",
				bySigma, byFrac, sigma, seqFrac)
		}
	}

	// The GC-bound non-scalable pair must fit clearly larger coherency
	// terms than every contention-bound workload.
	gcBound := math.Min(kappa["eclipse"], kappa["jython"])
	for _, name := range contentionBound {
		if gcBound <= 2*kappa[name] {
			t.Errorf("kappa(%s)=%.3e not clearly below the GC-bound floor %.3e", name, kappa[name], gcBound)
		}
	}

	// And the scalable trio must fit near-zero contention while h2 —
	// the paper's serialization-bound workload — fits an order of
	// magnitude more.
	for _, name := range []string{"sunflow", "lusearch", "xalan"} {
		if sigma[name] >= 0.1 {
			t.Errorf("sigma(%s)=%.4f — scalable workloads should fit low contention", name, sigma[name])
		}
	}
	if sigma["h2"] < 10*sigma["xalan"] {
		t.Errorf("sigma(h2)=%.4f not clearly above the scalable trio (xalan %.4f)", sigma["h2"], sigma["xalan"])
	}
}

// TestPolicySigmaOrdering pins the tentpole's marquee claim on the
// lock-policy ablation: on the contended server workload, Dice & Kogan's
// restricted policy must fit a lower contention coefficient than the
// fifo baseline — the analytic echo of its lower contention growth in
// the factor table.
func TestPolicySigmaOrdering(t *testing.T) {
	eng := NewEngine()
	fit := func(policy string) float64 {
		spec, ok := workload.Lookup("server-contended")
		if !ok {
			t.Fatal("server-contended not registered")
		}
		cfg := SweepConfig{ThreadCounts: []int{4, 16, 32}}
		cfg.Base.Seed = 42
		cfg.Base.LockPolicy = policy
		sw, err := eng.Sweep(context.Background(), spec.Scale(0.1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := sw.FitUSL()
		if err != nil {
			t.Fatal(err)
		}
		return f.Best().Sigma
	}
	fifo, restricted := fit(""), fit("restricted")
	if restricted >= fifo {
		t.Errorf("restricted sigma %.4f >= fifo sigma %.4f — concurrency restriction should cut the fitted contention term", restricted, fifo)
	}
}

// TestGoldenUSLPlan locks the rendered usl report and output bytes at a
// tiny fixed configuration, through the same declarative path plan files
// take. Run `go test ./internal/core/ -run TestGoldenUSL -update` to
// accept deliberate changes.
func TestGoldenUSLPlan(t *testing.T) {
	p := &Plan{
		Name:         "usl-golden",
		Seed:         7,
		Scale:        0.05,
		ThreadCounts: []int{2, 4, 8},
		Scenarios: []Scenario{
			{Name: "fifo", Workload: workload.NameRef("server-contended"), Outputs: []Output{OutputUSL}},
			{Name: "restricted", Workload: workload.NameRef("server-contended"),
				Overrides: &ConfigOverrides{LockPolicy: "restricted"}},
		},
		Reports: []ReportSpec{{Name: "usl", Kind: ReportUSL}},
	}
	pr, err := NewEngine().RunPlan(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range pr.Tables() {
		if err := tb.WriteASCII(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "usl.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing — run with -update to create it: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("usl artifact output changed:\n got:\n%s\nwant:\n%s\n(run with -update to accept)", got, want)
	}
}
