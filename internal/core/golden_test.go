package core

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact file")

// TestGoldenArtifacts locks the rendered output of every artifact at a
// tiny fixed configuration. Any change to workload calibration, the cost
// models, the RNG, or table rendering shows up as a diff here — run
// `go test ./internal/core/ -run TestGolden -update` to accept it
// deliberately.
func TestGoldenArtifacts(t *testing.T) {
	suite := NewSuite(ExperimentConfig{
		ThreadCounts: []int{2, 4},
		Scale:        0.02,
		Seed:         12345,
	})
	tables, err := suite.AllArtifacts(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.WriteASCII(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "artifacts.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing — run with -update to create it: %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first differing line for a readable failure.
		gotLines := bytes.Split(got, []byte("\n"))
		wantLines := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if !bytes.Equal(gotLines[i], wantLines[i]) {
				t.Fatalf("artifact output changed at line %d:\n got: %s\nwant: %s\n(run with -update to accept)",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("artifact output length changed: got %d lines, want %d (run with -update to accept)",
			len(gotLines), len(wantLines))
	}
}
