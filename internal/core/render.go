package core

import (
	"fmt"
	"math"

	"javasim/internal/fit"
	"javasim/internal/gc"
	"javasim/internal/locks"
	"javasim/internal/machine"
	"javasim/internal/metrics"
	"javasim/internal/report"
	"javasim/internal/sched"
	"javasim/internal/sim"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// policyTag names a result's non-default policies so factor rows and
// compare columns self-identify when one plan A/Bs disciplines:
// "restricted", "fifo/round-robin", "barging/least-loaded",
// "gc=concurrent", "restricted gc=compartment". Runs under the default
// fifo + affinity + stw-serial triple yield "" and every historical
// artifact keeps its byte-identical form.
func policyTag(r *vm.Result) string {
	lock, place := r.LockPolicy, r.Placement
	defaultLock := lock == "" || lock == locks.PolicyFIFO
	defaultPlace := place == "" || place == sched.PlacementAffinity
	var tag string
	switch {
	case defaultLock && defaultPlace:
		tag = ""
	case defaultPlace:
		tag = lock
	case defaultLock:
		tag = locks.PolicyFIFO + "/" + place
	default:
		tag = lock + "/" + place
	}
	if g := r.GCPolicy; g != "" && g != gc.PolicyStwSerial {
		if tag != "" {
			tag += " "
		}
		tag += "gc=" + g
	}
	if m := r.Machine; m != "" && m != machine.DefaultModel {
		if tag != "" {
			tag += " "
		}
		tag += "machine=" + m
	}
	return tag
}

// tagLabel suffixes a row label with the sweep's policy tag, if any.
func tagLabel(label string, sw *Sweep) string {
	if tag := policyTag(sw.Points[0].Result); tag != "" {
		return label + " [" + tag + "]"
	}
	return label
}

// This file holds the rendering layer shared by the imperative Suite
// methods and the declarative plan reports: every figure and table is a
// pure function of one or more sweeps, so the two APIs produce
// byte-identical artifacts from the same simulation results.

// metricSeries extracts one per-point series from a sweep.
func metricSeries(sw *Sweep, m Metric) ([]float64, error) {
	switch m {
	case MetricAcquisitions:
		return sw.Acquisitions(), nil
	case MetricContentions:
		return sw.Contentions(), nil
	case MetricTotalSeconds:
		curve := sw.Curve()
		out := make([]float64, len(curve))
		for i, p := range curve {
			out[i] = p.Seconds
		}
		return out, nil
	case MetricMutatorSeconds:
		return sw.MutatorSeconds(), nil
	case MetricGCSeconds:
		return sw.GCSeconds(), nil
	case MetricGCShare:
		out := make([]float64, len(sw.Points))
		for i, p := range sw.Points {
			out[i] = p.Result.GCShare()
		}
		return out, nil
	case MetricCDFBelow1KB:
		return sw.CDFBelow(1024), nil
	default:
		return nil, fmt.Errorf("core: unknown metric %q", m)
	}
}

// metricFormat returns the cell formatter for a metric.
func metricFormat(m Metric) func(float64) string {
	switch m {
	case MetricAcquisitions, MetricContentions:
		return func(v float64) string { return report.FormatCount(int64(v)) }
	case MetricGCShare, MetricCDFBelow1KB:
		return report.FormatPct
	default:
		return func(v float64) string { return fmt.Sprintf("%.4fs", v) }
	}
}

// threadHeaders builds the {key, "t=4", "t=8", ...} header row from a
// sweep's points.
func threadHeaders(key string, sw *Sweep) []string {
	hs := []string{key}
	for _, p := range sw.Points {
		hs = append(hs, fmt.Sprintf("t=%d", p.Threads))
	}
	return hs
}

// renderSeries builds a one-number-per-(row, thread-count) table: each
// labeled sweep becomes a row, each sweep point a column.
func renderSeries(title, key string, labels []string, sweeps []*Sweep, m Metric) (*report.Table, error) {
	if len(sweeps) == 0 {
		return nil, fmt.Errorf("core: series table %q has no sweeps", title)
	}
	t := &report.Table{Title: title, Headers: threadHeaders(key, sweeps[0])}
	format := metricFormat(m)
	for i, sw := range sweeps {
		if len(sw.Points) != len(sweeps[0].Points) {
			return nil, fmt.Errorf("core: series table %q: %s has %d points, %s has %d — rows must share thread counts",
				title, labels[i], len(sw.Points), labels[0], len(sweeps[0].Points))
		}
		series, err := metricSeries(sw, m)
		if err != nil {
			return nil, err
		}
		row := []string{labels[i]}
		for _, v := range series {
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// renderLifespanCDF builds a Figure 1c/1d panel: the cumulative lifespan
// distribution of one sweep's workload at two thread counts.
func renderLifespanCDF(sw *Sweep, lowThreads, highThreads int) (*report.Table, error) {
	var low, high *vm.Result
	for _, p := range sw.Points {
		if p.Threads == lowThreads {
			low = p.Result
		}
		if p.Threads == highThreads {
			high = p.Result
		}
	}
	if low == nil || high == nil {
		return nil, fmt.Errorf("core: thread counts %d/%d not in sweep for %s",
			lowThreads, highThreads, sw.Spec.Name)
	}
	t := &report.Table{
		Title: fmt.Sprintf("%s object lifetime CDF (%% of objects with lifespan < X bytes)", sw.Spec.Name),
		Headers: []string{"lifespan <",
			fmt.Sprintf("%d threads", lowThreads),
			fmt.Sprintf("%d threads", highThreads)},
	}
	for _, lim := range cdfLimits {
		t.AddRow(formatBytes(lim),
			report.FormatPct(low.Lifespans.FractionBelow(lim)),
			report.FormatPct(high.Lifespans.FractionBelow(lim)))
	}
	return t, nil
}

// renderMutatorGC builds the Figure 2 table: the mutator/GC time split of
// each labeled sweep across its thread counts, one row per point.
func renderMutatorGC(title, note string, labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "threads", "mutator", "gc", "gc-share", "minor", "full"},
		Note:    note,
	}
	for i, sw := range sweeps {
		for _, p := range sw.Points {
			r := p.Result
			t.AddRow(labels[i], fmt.Sprintf("%d", p.Threads),
				r.MutatorTime.String(), r.GCTime.String(),
				report.FormatPct(r.GCShare()),
				fmt.Sprintf("%d", r.GCStats.MinorCount),
				fmt.Sprintf("%d", r.GCStats.FullCount))
		}
	}
	return t
}

// renderClassification builds the §II-C characterization table, one row
// per labeled sweep. The paper columns key off the workload (the paper
// classified benchmarks, not scenarios); the row label is the scenario's.
func renderClassification(labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   "Table — scalability classification (paper §II-C)",
		Headers: []string{"workload", "max-speedup", "at-threads", "final-eff", "verdict", "paper", "match"},
	}
	for i, sw := range sweeps {
		c := sw.Classify(DefaultSpeedupThreshold)
		verdict := map[bool]string{true: "scalable", false: "non-scalable"}
		// The paper only classified its own six benchmarks; extensions and
		// custom workloads have no published verdict to agree with.
		paper, match := "-", "-"
		if workload.IsPaperBenchmark(c.Name) {
			paper = verdict[c.PaperScalable]
			match = map[bool]string{true: "yes", false: "NO"}[c.Matches()]
		}
		t.AddRow(labels[i],
			fmt.Sprintf("%.2fx", c.MaxSpeedup),
			fmt.Sprintf("%d", c.AtThreads),
			fmt.Sprintf("%.2f", c.FinalEfficiency),
			verdict[c.Scalable], paper, match)
	}
	return t
}

// renderWorkDistribution builds the §III work-distribution table, one row
// per labeled sweep, from each sweep's largest thread count.
func renderWorkDistribution(labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   "Table — per-thread work distribution at the largest thread count",
		Headers: []string{"workload", "threads", "busy-threads", "top4-share", "max/mean"},
		Note:    "paper §III: jython uses 3-4 threads for most work; xalan/lusearch/sunflow are near-uniform",
	}
	for i, sw := range sweeps {
		last := sw.Points[len(sw.Points)-1]
		shares := make([]float64, len(last.Result.PerThreadUnits))
		busy := 0
		for j, u := range last.Result.PerThreadUnits {
			shares[j] = float64(u)
			if u > 0 {
				busy++
			}
		}
		f := sw.ComputeFactors()
		t.AddRow(labels[i], fmt.Sprintf("%d", last.Threads), fmt.Sprintf("%d", busy),
			report.FormatPct(f.Top4Share),
			fmt.Sprintf("%.2f", imbalance(shares)))
	}
	return t
}

// renderFactors builds the factor-decomposition table, one row per
// labeled sweep. A bw-share column appears only when some sweep ran on a
// bandwidth-limited machine, so historical artifacts keep their
// byte-identical form.
func renderFactors(labels []string, sweeps []*Sweep) *report.Table {
	bw := false
	for _, sw := range sweeps {
		for _, p := range sw.Points {
			if p.Result.MemTraffic > 0 {
				bw = true
			}
		}
	}
	headers := []string{"workload", "amdahl-f", "acq-growth", "cont-growth",
		"gc-growth", "gc-share", "lifespan-shift", "lifespan-ks", "top4-share"}
	if bw {
		headers = append(headers, "bw-share")
	}
	t := &report.Table{
		Title:   "Table — scalability factor decomposition",
		Headers: headers,
	}
	for i, sw := range sweeps {
		f := sw.ComputeFactors()
		row := []string{tagLabel(labels[i], sw),
			fmt.Sprintf("%.3f", f.SequentialFraction),
			fmt.Sprintf("%.2fx", f.AcquisitionGrowth),
			fmt.Sprintf("%.2fx", f.ContentionGrowth),
			fmt.Sprintf("%.2fx", f.GCTimeGrowth),
			report.FormatPct(f.GCShareFirst) + "->" + report.FormatPct(f.GCShareLast),
			fmt.Sprintf("%+.1fpt", 100*f.LifespanShift),
			fmt.Sprintf("%.3f", f.LifespanKS),
			report.FormatPct(f.Top4Share)}
		if bw {
			row = append(row, report.FormatPct(f.BandwidthShare))
		}
		t.AddRow(row...)
	}
	return t
}

// nonDefaultGC reports whether any result ran under a GC policy other
// than the stw-serial default.
func nonDefaultGC(results []*vm.Result) bool {
	for _, r := range results {
		if r.GCPolicy != "" && r.GCPolicy != gc.PolicyStwSerial {
			return true
		}
	}
	return false
}

// bandwidthLimited reports whether any result ran on a machine that
// billed memory traffic against a per-socket bandwidth ceiling.
func bandwidthLimited(results []*vm.Result) bool {
	for _, r := range results {
		if r.MemTraffic > 0 {
			return true
		}
	}
	return false
}

// formatPhases renders a pause-phase breakdown as setup/scan/copy.
func formatPhases(b gc.Breakdown) string {
	return fmt.Sprintf("%v/%v/%v", b.Setup, b.Scan, b.Copy)
}

// compareRows fills a compare table's metric rows from one result per
// column. The per-phase GC CPU and concurrent-GC rows appear only when a
// column ran a non-default GC policy, so historical two-column artifacts
// keep their byte-identical form.
func compareRows(t *report.Table, results []*vm.Result) {
	row := func(name string, cell func(*vm.Result) string) {
		cells := []string{name}
		for _, r := range results {
			cells = append(cells, cell(r))
		}
		t.AddRow(cells...)
	}
	row("total time", func(r *vm.Result) string { return r.TotalTime.String() })
	row("gc time", func(r *vm.Result) string { return r.GCTime.String() })
	row("mean gc pause", func(r *vm.Result) string { return meanPause(r.GCPauses).String() })
	row("max gc pause", func(r *vm.Result) string { return maxPause(r.GCPauses).String() })
	row("collections", func(r *vm.Result) string { return fmt.Sprintf("%d", len(r.GCPauses)) })
	if nonDefaultGC(results) {
		row("gc phases s/s/c", func(r *vm.Result) string { return formatPhases(r.GCPhases) })
		row("conc gc cpu", func(r *vm.Result) string { return r.ConcGCCPUTime.String() })
	}
	if bandwidthLimited(results) {
		row("mem-bw stall", func(r *vm.Result) string { return r.MemBWStall.String() })
	}
	row("lifespan cdf@1KB", func(r *vm.Result) string { return report.FormatPct(r.Lifespans.FractionBelow(1024)) })
	row("mean lifespan", func(r *vm.Result) string { return formatBytes(int64(r.Lifespans.Mean())) })
	row("lock contentions", func(r *vm.Result) string { return report.FormatCount(r.LockContentions) })
	row("utilization", func(r *vm.Result) string { return fmt.Sprintf("%.2f", r.Utilization) })
}

// renderCompare builds a baseline-vs-modified ablation table from two
// results of the same workload. Columns carry the runs' policy tags when
// either side deviates from the fifo + affinity + stw-serial default, so
// a policy A/B labels itself.
func renderCompare(title, note string, base, mod *vm.Result) *report.Table {
	baseHdr, modHdr := "baseline", "modified"
	if tag := policyTag(base); tag != "" {
		baseHdr += " [" + tag + "]"
	}
	if tag := policyTag(mod); tag != "" {
		modHdr += " [" + tag + "]"
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"metric", baseHdr, modHdr},
		Note:    note,
	}
	compareRows(t, []*vm.Result{base, mod})
	return t
}

// renderCompareColumns builds a multi-column compare table: one column
// per named scenario (the first is the baseline), each header suffixed
// with the run's policy tag — the one-table shape of a whole policy
// ablation.
func renderCompareColumns(title, note string, names []string, results []*vm.Result) *report.Table {
	headers := []string{"metric"}
	for i, name := range names {
		if tag := policyTag(results[i]); tag != "" {
			name += " [" + tag + "]"
		}
		headers = append(headers, name)
	}
	t := &report.Table{Title: title, Headers: headers, Note: note}
	compareRows(t, results)
	return t
}

// renderGoodput builds the open-system headline table: one row per
// (scenario, offered rate) with offered vs completed throughput, the
// abandonment count, the per-request latency tail, and the peak queue
// depth. The figure's point is the knee: goodput tracks offered load up
// to saturation, then flattens or collapses while the tail explodes.
func renderGoodput(title, note string, labels []string, sweeps []*Sweep) (*report.Table, error) {
	if title == "" {
		title = "Goodput and latency vs offered rate"
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"scenario", "rate/s", "offered/s", "goodput/s", "timed-out", "p50", "p99", "p99.9", "max-queue"},
		Note:    note,
	}
	for i, sw := range sweeps {
		label := tagLabel(labels[i], sw)
		for _, p := range sw.Points {
			st := p.Result.Traffic
			if st == nil {
				return nil, fmt.Errorf("core: goodput table %q: %s at %v req/s carries no traffic stats",
					title, labels[i], p.Rate)
			}
			pct := func(q float64) string { return sim.Time(st.Latency.Percentile(q)).String() }
			t.AddRow(label,
				fmt.Sprintf("%.0f", p.Rate),
				fmt.Sprintf("%.0f", st.OfferedPerSec(p.Result.TotalTime)),
				fmt.Sprintf("%.0f", st.GoodputPerSec(p.Result.TotalTime)),
				fmt.Sprintf("%d", st.TimedOut),
				pct(50), pct(99), pct(99.9),
				fmt.Sprintf("%d", st.QueueDepthMax))
		}
	}
	return t, nil
}

// renderUSL builds the analytic-fit table, one row per labeled sweep:
// the residual-selected model's fitted parameters, the predicted peak
// concurrency, and the worst predicted-vs-measured deviation — the
// cross-scenario shape of ROADMAP item 1's scalability diagnosis.
// Sigma tracks the paper's lock-contention factors, kappa the
// coherency-flavored ones (GC growth, memory bandwidth, placement), so
// policy ablations should reorder sigma and machine ablations kappa.
func renderUSL(labels []string, sweeps []*Sweep) (*report.Table, error) {
	t := &report.Table{
		Title:   "Table — USL scalability fit, C(N) = N / (1 + sigma*(N-1) + kappa*N*(N-1))",
		Headers: []string{"scenario", "model", "sigma", "kappa", "r2", "peak-N", "max-dev"},
		Note:    "sigma = contention (lock serialization), kappa = coherency (GC/bandwidth/placement); model picked by residual, amdahl = no measurable coherency term; peak-N '-' = saturates without a finite peak",
	}
	for i, sw := range sweeps {
		f, err := sw.FitUSL()
		if err != nil {
			return nil, fmt.Errorf("core: usl fit for %s: %w", labels[i], err)
		}
		m := f.Best()
		peak := "-"
		if n := m.PeakN(); n > 0 {
			peak = fmt.Sprintf("%d", n)
		}
		t.AddRow(tagLabel(labels[i], sw), m.Kind,
			fmt.Sprintf("%.4f", m.Sigma),
			fmt.Sprintf("%.6f", m.Kappa),
			fmt.Sprintf("%.4f", m.R2),
			peak,
			report.FormatPct(maxDeviation(sw, m)))
	}
	return t, nil
}

// maxDeviation is the largest relative predicted-vs-measured throughput
// error of a fitted model across a sweep's points.
func maxDeviation(sw *Sweep, m fit.Model) float64 {
	xs := sw.Throughputs()
	var worst float64
	for i, p := range sw.Points {
		if xs[i] <= 0 {
			continue
		}
		if d := math.Abs(m.Predict(float64(p.Threads))-xs[i]) / xs[i]; d > worst {
			worst = d
		}
	}
	return worst
}

// renderUSLOutput builds one scenario's predicted-vs-measured curve:
// the measured throughput at every thread count next to both fitted
// models' predictions, with the preferred model's parameters and
// predicted peak in the footnote.
func renderUSLOutput(label string, sw *Sweep) (*report.Table, error) {
	f, err := sw.FitUSL()
	if err != nil {
		return nil, fmt.Errorf("core: usl fit for %s: %w", label, err)
	}
	best := f.Best()
	t := &report.Table{
		Title:   fmt.Sprintf("USL fit — %s", tagLabel(label, sw)),
		Headers: []string{"threads", "measured/s", "usl/s", "amdahl/s", "best-dev"},
	}
	xs := sw.Throughputs()
	for i, p := range sw.Points {
		n := float64(p.Threads)
		dev := 0.0
		if xs[i] > 0 {
			dev = math.Abs(best.Predict(n)-xs[i]) / xs[i]
		}
		t.AddRow(fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.1f", xs[i]),
			fmt.Sprintf("%.1f", f.USL.Predict(n)),
			fmt.Sprintf("%.1f", f.Amdahl.Predict(n)),
			report.FormatPct(dev))
	}
	peak := "saturates without a finite peak"
	if n := best.PeakN(); n > 0 {
		peak = fmt.Sprintf("predicted peak N* = %d", n)
	}
	t.Note = fmt.Sprintf("preferred %s: sigma=%.4f kappa=%.6f r2=%.4f, %s",
		best.Kind, best.Sigma, best.Kappa, best.R2, peak)
	return t, nil
}

// renderSweepTable builds the per-scenario sweep summary: the headline
// measurements at every thread count.
func renderSweepTable(label string, sw *Sweep) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Sweep — %s", label),
		Headers: []string{"threads", "total", "mutator", "gc", "gc-share", "contentions", "<1KB"},
	}
	for _, p := range sw.Points {
		r := p.Result
		t.AddRow(fmt.Sprintf("%d", p.Threads),
			r.TotalTime.String(), r.MutatorTime.String(), r.GCTime.String(),
			report.FormatPct(r.GCShare()),
			report.FormatCount(r.LockContentions),
			report.FormatPct(r.Lifespans.FractionBelow(1024)))
	}
	return t
}

// renderReplication summarizes a scenario's repeats: mean, stddev, and
// range of the headline metrics at each repeat's largest thread count.
func renderReplication(label string, sweeps []*Sweep) *report.Table {
	var totals, gcs, cdfs, conts []float64
	for _, sw := range sweeps {
		last := sw.Points[len(sw.Points)-1].Result
		totals = append(totals, last.TotalTime.Seconds()*1000)
		gcs = append(gcs, last.GCTime.Seconds()*1000)
		cdfs = append(cdfs, 100*last.Lifespans.FractionBelow(1024))
		conts = append(conts, float64(last.LockContentions))
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Replication — %s, %d repeats", label, len(sweeps)),
		Headers: []string{"metric", "mean", "stddev", "min", "max"},
		Note:    "repeats derive their seeds from the scenario seed; the spread bounds seed sensitivity",
	}
	row := func(name, unit string, xs []float64) {
		sm := metrics.Summarize(xs)
		t.AddRow(name,
			fmt.Sprintf("%.2f%s", sm.Mean, unit),
			fmt.Sprintf("%.2f", sm.Stddev),
			fmt.Sprintf("%.2f", sm.Min),
			fmt.Sprintf("%.2f", sm.Max))
	}
	row("total time", "ms", totals)
	row("gc time", "ms", gcs)
	row("objects <1KB", "%", cdfs)
	row("lock contentions", "", conts)
	return t
}
