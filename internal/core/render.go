package core

import (
	"fmt"

	"javasim/internal/locks"
	"javasim/internal/metrics"
	"javasim/internal/report"
	"javasim/internal/sched"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// policyTag names a result's non-default contention policies so factor
// rows and compare columns self-identify when one plan A/Bs disciplines:
// "restricted", "fifo/round-robin", "barging/least-loaded". Runs under
// the default fifo + affinity pair yield "" and every historical artifact
// keeps its byte-identical form.
func policyTag(r *vm.Result) string {
	lock, place := r.LockPolicy, r.Placement
	defaultLock := lock == "" || lock == locks.PolicyFIFO
	defaultPlace := place == "" || place == sched.PlacementAffinity
	switch {
	case defaultLock && defaultPlace:
		return ""
	case defaultPlace:
		return lock
	case defaultLock:
		return locks.PolicyFIFO + "/" + place
	default:
		return lock + "/" + place
	}
}

// tagLabel suffixes a row label with the sweep's policy tag, if any.
func tagLabel(label string, sw *Sweep) string {
	if tag := policyTag(sw.Points[0].Result); tag != "" {
		return label + " [" + tag + "]"
	}
	return label
}

// This file holds the rendering layer shared by the imperative Suite
// methods and the declarative plan reports: every figure and table is a
// pure function of one or more sweeps, so the two APIs produce
// byte-identical artifacts from the same simulation results.

// metricSeries extracts one per-point series from a sweep.
func metricSeries(sw *Sweep, m Metric) ([]float64, error) {
	switch m {
	case MetricAcquisitions:
		return sw.Acquisitions(), nil
	case MetricContentions:
		return sw.Contentions(), nil
	case MetricTotalSeconds:
		curve := sw.Curve()
		out := make([]float64, len(curve))
		for i, p := range curve {
			out[i] = p.Seconds
		}
		return out, nil
	case MetricMutatorSeconds:
		return sw.MutatorSeconds(), nil
	case MetricGCSeconds:
		return sw.GCSeconds(), nil
	case MetricGCShare:
		out := make([]float64, len(sw.Points))
		for i, p := range sw.Points {
			out[i] = p.Result.GCShare()
		}
		return out, nil
	case MetricCDFBelow1KB:
		return sw.CDFBelow(1024), nil
	default:
		return nil, fmt.Errorf("core: unknown metric %q", m)
	}
}

// metricFormat returns the cell formatter for a metric.
func metricFormat(m Metric) func(float64) string {
	switch m {
	case MetricAcquisitions, MetricContentions:
		return func(v float64) string { return report.FormatCount(int64(v)) }
	case MetricGCShare, MetricCDFBelow1KB:
		return report.FormatPct
	default:
		return func(v float64) string { return fmt.Sprintf("%.4fs", v) }
	}
}

// threadHeaders builds the {key, "t=4", "t=8", ...} header row from a
// sweep's points.
func threadHeaders(key string, sw *Sweep) []string {
	hs := []string{key}
	for _, p := range sw.Points {
		hs = append(hs, fmt.Sprintf("t=%d", p.Threads))
	}
	return hs
}

// renderSeries builds a one-number-per-(row, thread-count) table: each
// labeled sweep becomes a row, each sweep point a column.
func renderSeries(title, key string, labels []string, sweeps []*Sweep, m Metric) (*report.Table, error) {
	if len(sweeps) == 0 {
		return nil, fmt.Errorf("core: series table %q has no sweeps", title)
	}
	t := &report.Table{Title: title, Headers: threadHeaders(key, sweeps[0])}
	format := metricFormat(m)
	for i, sw := range sweeps {
		if len(sw.Points) != len(sweeps[0].Points) {
			return nil, fmt.Errorf("core: series table %q: %s has %d points, %s has %d — rows must share thread counts",
				title, labels[i], len(sw.Points), labels[0], len(sweeps[0].Points))
		}
		series, err := metricSeries(sw, m)
		if err != nil {
			return nil, err
		}
		row := []string{labels[i]}
		for _, v := range series {
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// renderLifespanCDF builds a Figure 1c/1d panel: the cumulative lifespan
// distribution of one sweep's workload at two thread counts.
func renderLifespanCDF(sw *Sweep, lowThreads, highThreads int) (*report.Table, error) {
	var low, high *vm.Result
	for _, p := range sw.Points {
		if p.Threads == lowThreads {
			low = p.Result
		}
		if p.Threads == highThreads {
			high = p.Result
		}
	}
	if low == nil || high == nil {
		return nil, fmt.Errorf("core: thread counts %d/%d not in sweep for %s",
			lowThreads, highThreads, sw.Spec.Name)
	}
	t := &report.Table{
		Title: fmt.Sprintf("%s object lifetime CDF (%% of objects with lifespan < X bytes)", sw.Spec.Name),
		Headers: []string{"lifespan <",
			fmt.Sprintf("%d threads", lowThreads),
			fmt.Sprintf("%d threads", highThreads)},
	}
	for _, lim := range cdfLimits {
		t.AddRow(formatBytes(lim),
			report.FormatPct(low.Lifespans.FractionBelow(lim)),
			report.FormatPct(high.Lifespans.FractionBelow(lim)))
	}
	return t, nil
}

// renderMutatorGC builds the Figure 2 table: the mutator/GC time split of
// each labeled sweep across its thread counts, one row per point.
func renderMutatorGC(title, note string, labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   title,
		Headers: []string{"workload", "threads", "mutator", "gc", "gc-share", "minor", "full"},
		Note:    note,
	}
	for i, sw := range sweeps {
		for _, p := range sw.Points {
			r := p.Result
			t.AddRow(labels[i], fmt.Sprintf("%d", p.Threads),
				r.MutatorTime.String(), r.GCTime.String(),
				report.FormatPct(r.GCShare()),
				fmt.Sprintf("%d", r.GCStats.MinorCount),
				fmt.Sprintf("%d", r.GCStats.FullCount))
		}
	}
	return t
}

// renderClassification builds the §II-C characterization table, one row
// per labeled sweep. The paper columns key off the workload (the paper
// classified benchmarks, not scenarios); the row label is the scenario's.
func renderClassification(labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   "Table — scalability classification (paper §II-C)",
		Headers: []string{"workload", "max-speedup", "at-threads", "final-eff", "verdict", "paper", "match"},
	}
	for i, sw := range sweeps {
		c := sw.Classify(DefaultSpeedupThreshold)
		verdict := map[bool]string{true: "scalable", false: "non-scalable"}
		// The paper only classified its own six benchmarks; extensions and
		// custom workloads have no published verdict to agree with.
		paper, match := "-", "-"
		if workload.IsPaperBenchmark(c.Name) {
			paper = verdict[c.PaperScalable]
			match = map[bool]string{true: "yes", false: "NO"}[c.Matches()]
		}
		t.AddRow(labels[i],
			fmt.Sprintf("%.2fx", c.MaxSpeedup),
			fmt.Sprintf("%d", c.AtThreads),
			fmt.Sprintf("%.2f", c.FinalEfficiency),
			verdict[c.Scalable], paper, match)
	}
	return t
}

// renderWorkDistribution builds the §III work-distribution table, one row
// per labeled sweep, from each sweep's largest thread count.
func renderWorkDistribution(labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title:   "Table — per-thread work distribution at the largest thread count",
		Headers: []string{"workload", "threads", "busy-threads", "top4-share", "max/mean"},
		Note:    "paper §III: jython uses 3-4 threads for most work; xalan/lusearch/sunflow are near-uniform",
	}
	for i, sw := range sweeps {
		last := sw.Points[len(sw.Points)-1]
		shares := make([]float64, len(last.Result.PerThreadUnits))
		busy := 0
		for j, u := range last.Result.PerThreadUnits {
			shares[j] = float64(u)
			if u > 0 {
				busy++
			}
		}
		f := sw.ComputeFactors()
		t.AddRow(labels[i], fmt.Sprintf("%d", last.Threads), fmt.Sprintf("%d", busy),
			report.FormatPct(f.Top4Share),
			fmt.Sprintf("%.2f", imbalance(shares)))
	}
	return t
}

// renderFactors builds the factor-decomposition table, one row per
// labeled sweep.
func renderFactors(labels []string, sweeps []*Sweep) *report.Table {
	t := &report.Table{
		Title: "Table — scalability factor decomposition",
		Headers: []string{"workload", "amdahl-f", "acq-growth", "cont-growth",
			"gc-growth", "gc-share", "lifespan-shift", "lifespan-ks", "top4-share"},
	}
	for i, sw := range sweeps {
		f := sw.ComputeFactors()
		t.AddRow(tagLabel(labels[i], sw),
			fmt.Sprintf("%.3f", f.SequentialFraction),
			fmt.Sprintf("%.2fx", f.AcquisitionGrowth),
			fmt.Sprintf("%.2fx", f.ContentionGrowth),
			fmt.Sprintf("%.2fx", f.GCTimeGrowth),
			report.FormatPct(f.GCShareFirst)+"->"+report.FormatPct(f.GCShareLast),
			fmt.Sprintf("%+.1fpt", 100*f.LifespanShift),
			fmt.Sprintf("%.3f", f.LifespanKS),
			report.FormatPct(f.Top4Share))
	}
	return t
}

// renderCompare builds a baseline-vs-modified ablation table from two
// results of the same workload. Columns carry the runs' contention-policy
// tags when either side deviates from the fifo + affinity default, so a
// policy A/B labels itself.
func renderCompare(title, note string, base, mod *vm.Result) *report.Table {
	baseHdr, modHdr := "baseline", "modified"
	if tag := policyTag(base); tag != "" {
		baseHdr += " [" + tag + "]"
	}
	if tag := policyTag(mod); tag != "" {
		modHdr += " [" + tag + "]"
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"metric", baseHdr, modHdr},
		Note:    note,
	}
	t.AddRow("total time", base.TotalTime.String(), mod.TotalTime.String())
	t.AddRow("gc time", base.GCTime.String(), mod.GCTime.String())
	t.AddRow("mean gc pause", meanPause(base.GCPauses).String(), meanPause(mod.GCPauses).String())
	t.AddRow("max gc pause", maxPause(base.GCPauses).String(), maxPause(mod.GCPauses).String())
	t.AddRow("collections", fmt.Sprintf("%d", len(base.GCPauses)), fmt.Sprintf("%d", len(mod.GCPauses)))
	t.AddRow("lifespan cdf@1KB", report.FormatPct(base.Lifespans.FractionBelow(1024)),
		report.FormatPct(mod.Lifespans.FractionBelow(1024)))
	t.AddRow("mean lifespan", formatBytes(int64(base.Lifespans.Mean())), formatBytes(int64(mod.Lifespans.Mean())))
	t.AddRow("lock contentions", report.FormatCount(base.LockContentions), report.FormatCount(mod.LockContentions))
	t.AddRow("utilization", fmt.Sprintf("%.2f", base.Utilization), fmt.Sprintf("%.2f", mod.Utilization))
	return t
}

// renderSweepTable builds the per-scenario sweep summary: the headline
// measurements at every thread count.
func renderSweepTable(label string, sw *Sweep) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Sweep — %s", label),
		Headers: []string{"threads", "total", "mutator", "gc", "gc-share", "contentions", "<1KB"},
	}
	for _, p := range sw.Points {
		r := p.Result
		t.AddRow(fmt.Sprintf("%d", p.Threads),
			r.TotalTime.String(), r.MutatorTime.String(), r.GCTime.String(),
			report.FormatPct(r.GCShare()),
			report.FormatCount(r.LockContentions),
			report.FormatPct(r.Lifespans.FractionBelow(1024)))
	}
	return t
}

// renderReplication summarizes a scenario's repeats: mean, stddev, and
// range of the headline metrics at each repeat's largest thread count.
func renderReplication(label string, sweeps []*Sweep) *report.Table {
	var totals, gcs, cdfs, conts []float64
	for _, sw := range sweeps {
		last := sw.Points[len(sw.Points)-1].Result
		totals = append(totals, last.TotalTime.Seconds()*1000)
		gcs = append(gcs, last.GCTime.Seconds()*1000)
		cdfs = append(cdfs, 100*last.Lifespans.FractionBelow(1024))
		conts = append(conts, float64(last.LockContentions))
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Replication — %s, %d repeats", label, len(sweeps)),
		Headers: []string{"metric", "mean", "stddev", "min", "max"},
		Note:    "repeats derive their seeds from the scenario seed; the spread bounds seed sensitivity",
	}
	row := func(name, unit string, xs []float64) {
		sm := metrics.Summarize(xs)
		t.AddRow(name,
			fmt.Sprintf("%.2f%s", sm.Mean, unit),
			fmt.Sprintf("%.2f", sm.Stddev),
			fmt.Sprintf("%.2f", sm.Min),
			fmt.Sprintf("%.2f", sm.Max))
	}
	row("total time", "ms", totals)
	row("gc time", "ms", gcs)
	row("objects <1KB", "%", cdfs)
	row("lock contentions", "", conts)
	return t
}
