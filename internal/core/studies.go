package core

import (
	"context"
	"fmt"

	"javasim/internal/gc"
	"javasim/internal/machine"
	"javasim/internal/metrics"
	"javasim/internal/report"
	"javasim/internal/sim"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

// This file holds the design-choice studies: parameter sweeps over the
// simulator's own knobs. They are not paper artifacts; they validate that
// the cost models respond the way the real mechanisms do (and they are
// the ablations DESIGN.md's experiment index points at for the modeling
// decisions).

// studySpec picks the workload and thread count for the studies: xalan at
// the top of the sweep, where every GC effect is strongest.
func (s *Suite) studySpec() (workload.Spec, int, error) {
	spec, ok := workload.Lookup("xalan")
	if !ok {
		return workload.Spec{}, 0, fmt.Errorf("core: xalan spec missing")
	}
	_, hi := s.loHi()
	return spec.Scale(s.cfg.Scale), hi, nil
}

// StudyHeapFactor sweeps the heap-size multiple — the paper's "3x the
// minimum heap" methodology knob (§II-C). Shrinking the heap multiplies
// collections and GC time; growing it buys them back. This validates the
// generational cost model against the standard GC time/space trade-off.
func (s *Suite) StudyHeapFactor(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Study — heap factor sweep (xalan @ %d threads)", threads),
		Headers: []string{"heap-factor", "total", "gc", "gc-share", "minor", "full", "promoted-MB"},
		Note:    "the paper runs everything at 3x the minimum heap; the GC time/space trade-off validates the heap model",
	}
	for _, factor := range []float64{1.5, 2, 3, 4, 6} {
		res, err := s.eng.Run(ctx, spec, vm.Config{
			Threads: threads, Seed: s.cfg.Seed, HeapFactor: factor,
		})
		if err != nil {
			return nil, fmt.Errorf("core: heap factor %v: %w", factor, err)
		}
		t.AddRow(fmt.Sprintf("%.1fx", factor),
			res.TotalTime.String(), res.GCTime.String(),
			report.FormatPct(res.GCShare()),
			fmt.Sprintf("%d", res.GCStats.MinorCount),
			fmt.Sprintf("%d", res.GCStats.FullCount),
			fmt.Sprintf("%.2f", float64(res.GCStats.PromotedBytes)/(1<<20)))
	}
	return s.artifact(ctx, "StudyHeapFactor", t, nil)
}

// StudyGCWorkers sweeps the parallel GC thread count, validating the
// synchronization-limited speedup curve of the collection cost model
// (HotSpot defaults to 33 workers on the 48-core testbed).
func (s *Suite) StudyGCWorkers(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Study — GC worker sweep (xalan @ %d threads)", threads),
		Headers: []string{"workers", "gc", "mean-pause", "max-pause"},
		Note:    "pause time divides across workers with contention-limited efficiency, never linearly",
	}
	for _, w := range []int{1, 2, 4, 8, 16, 33} {
		res, err := s.eng.Run(ctx, spec, vm.Config{
			Threads: threads, Seed: s.cfg.Seed, GC: gc.Config{Workers: w},
		})
		if err != nil {
			return nil, fmt.Errorf("core: gc workers %d: %w", w, err)
		}
		t.AddRow(fmt.Sprintf("%d", w), res.GCTime.String(),
			meanPause(res.GCPauses).String(), maxPause(res.GCPauses).String())
	}
	return s.artifact(ctx, "StudyGCWorkers", t, nil)
}

// StudyTenuring sweeps the tenuring threshold: promote-early floods the
// old generation (more full collections), promote-late recopies survivors
// in the nursery. The paper's survivor-copying story (§III-B) lives on
// exactly this dial.
func (s *Suite) StudyTenuring(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Study — tenuring threshold sweep (xalan @ %d threads)", threads),
		Headers: []string{"threshold", "gc", "copied-MB", "promoted-MB", "full-gcs"},
	}
	for _, th := range []uint8{1, 2, 4, 8} {
		res, err := s.eng.Run(ctx, spec, vm.Config{
			Threads: threads, Seed: s.cfg.Seed, GC: gc.Config{TenuringThreshold: th},
		})
		if err != nil {
			return nil, fmt.Errorf("core: tenuring %d: %w", th, err)
		}
		t.AddRow(fmt.Sprintf("%d", th), res.GCTime.String(),
			fmt.Sprintf("%.2f", float64(res.GCStats.CopiedBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(res.GCStats.PromotedBytes)/(1<<20)),
			fmt.Sprintf("%d", res.GCStats.FullCount))
	}
	return s.artifact(ctx, "StudyTenuring", t, nil)
}

// StudyNUMA contrasts the NUMA machine against a hypothetical flat
// (uniform-memory) 48-core machine, isolating how much of the mutator
// slowdown at high thread counts the remote-access model contributes.
func (s *Suite) StudyNUMA(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	numa := machine.Opteron6168()
	flat := numa
	flat.RemoteAccessPerHop = 0
	flat.MigrationCost = 0

	t := &report.Table{
		Title:   fmt.Sprintf("Study — NUMA vs flat memory (xalan @ %d threads)", threads),
		Headers: []string{"machine", "total", "mutator", "gc"},
		Note:    "the paper's testbed pays cross-socket latency above 12 threads; a flat machine is the counterfactual",
	}
	for _, m := range []struct {
		name string
		cfg  machine.Config
	}{{"opteron-6168 (NUMA)", numa}, {"flat 48-core", flat}} {
		res, err := s.eng.Run(ctx, spec, vm.Config{Machine: m.cfg, Threads: threads, Seed: s.cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", m.name, err)
		}
		t.AddRow(m.name, res.TotalTime.String(), res.MutatorTime.String(), res.GCTime.String())
	}
	return s.artifact(ctx, "StudyNUMA", t, nil)
}

// StudyCollector contrasts the paper's stop-the-world throughput
// collector with the simulator's concurrent (CMS-style) extension on the
// server workload — the application class the paper's §IV says suffers
// most from pause times. The comparison shows the classic trade: the
// concurrent collector converts stop-the-world full collections into
// background CPU consumption (mutator dilation) plus brief bracketing
// pauses.
func (s *Suite) StudyCollector(ctx context.Context) (*report.Table, error) {
	spec, ok := workload.Lookup("server")
	if !ok {
		return nil, fmt.Errorf("core: server spec missing")
	}
	spec = spec.Scale(s.cfg.Scale)
	_, hi := s.loHi()

	t := &report.Table{
		Title: fmt.Sprintf("Study — throughput vs concurrent collector (server @ %d threads, 1.6x heap)", hi),
		Headers: []string{"collector", "total", "stw-gc", "max-pause", "full-gcs",
			"conc-cycles", "conc-cpu"},
		Note: "the concurrent collector trades stop-the-world time for background GC CPU and fragmentation",
	}
	for _, mode := range []struct {
		name string
		conc bool
	}{{"throughput (paper)", false}, {"concurrent (CMS-like)", true}} {
		cfg := vm.Config{Threads: hi, Seed: s.cfg.Seed, HeapFactor: 1.6}
		cfg.GC.Concurrent = mode.conc
		if mode.conc {
			cfg.GC.TriggerRatio = 0.5
		}
		res, err := s.eng.Run(ctx, spec, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: collector study %s: %w", mode.name, err)
		}
		t.AddRow(mode.name, res.TotalTime.String(), res.GCTime.String(),
			maxPause(res.GCPauses).String(),
			fmt.Sprintf("%d", res.GCStats.FullCount),
			fmt.Sprintf("%d", res.ConcCycles),
			res.ConcGCCPUTime.String())
	}
	return s.artifact(ctx, "StudyCollector", t, nil)
}

// StudyPretenuring evaluates allocation-site pretenuring — the classic
// JVM countermeasure to exactly the failure the paper diagnoses: once
// lifespan-stretched objects stop flowing through the nursery, the
// survivor copying that inflates minor pauses at high thread counts
// disappears with them.
func (s *Suite) StudyPretenuring(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Study — allocation-site pretenuring (xalan @ %d threads)", threads),
		Headers: []string{"mode", "gc", "copied-MB", "mean-minor-pause",
			"full-gcs", "pretenured"},
		Note: "long-lived sites allocate straight to the old generation, skipping the survivor copying the paper blames",
	}
	for _, mode := range []struct {
		name string
		on   bool
	}{{"baseline", false}, {"pretenuring", true}} {
		res, err := s.eng.Run(ctx, spec, vm.Config{Threads: threads, Seed: s.cfg.Seed, Pretenuring: mode.on})
		if err != nil {
			return nil, fmt.Errorf("core: pretenuring study %s: %w", mode.name, err)
		}
		var minorSum sim.Time
		var minorN int64
		for _, p := range res.GCPauses {
			if p.Kind == gc.Minor {
				minorSum += p.Duration
				minorN++
			}
		}
		var meanMinor sim.Time
		if minorN > 0 {
			meanMinor = minorSum / sim.Time(minorN)
		}
		t.AddRow(mode.name, res.GCTime.String(),
			fmt.Sprintf("%.2f", float64(res.GCStats.CopiedBytes)/(1<<20)),
			meanMinor.String(),
			fmt.Sprintf("%d", res.GCStats.FullCount),
			fmt.Sprintf("%d", res.HeapStats.PretenuredAllocs))
	}
	return s.artifact(ctx, "StudyPretenuring", t, nil)
}

// StudyReplication reruns the headline configuration under several seeds
// and reports mean and standard deviation of the key metrics —
// methodological due diligence that the conclusions do not hinge on one
// random stream.
func (s *Suite) StudyReplication(ctx context.Context) (*report.Table, error) {
	spec, threads, err := s.studySpec()
	if err != nil {
		return nil, err
	}
	var totals, gcs, cdfs, conts []float64
	for i := 0; i < 5; i++ {
		res, err := s.eng.Run(ctx, spec, vm.Config{Threads: threads, Seed: deriveSeed(s.cfg.Seed, i)})
		if err != nil {
			return nil, fmt.Errorf("core: replication seed %d: %w", i, err)
		}
		totals = append(totals, res.TotalTime.Seconds()*1000)
		gcs = append(gcs, res.GCTime.Seconds()*1000)
		cdfs = append(cdfs, 100*res.Lifespans.FractionBelow(1024))
		conts = append(conts, float64(res.LockContentions))
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Study — seed replication, 5 seeds (xalan @ %d threads)", threads),
		Headers: []string{"metric", "mean", "stddev", "min", "max"},
		Note:    "every figure in this repository is deterministic per seed; this table bounds the across-seed spread",
	}
	row := func(name, unit string, xs []float64) {
		sm := metrics.Summarize(xs)
		t.AddRow(name,
			fmt.Sprintf("%.2f%s", sm.Mean, unit),
			fmt.Sprintf("%.2f", sm.Stddev),
			fmt.Sprintf("%.2f", sm.Min),
			fmt.Sprintf("%.2f", sm.Max))
	}
	row("total time", "ms", totals)
	row("gc time", "ms", gcs)
	row("objects <1KB", "%", cdfs)
	row("lock contentions", "", conts)
	return s.artifact(ctx, "StudyReplication", t, nil)
}

// AllStudies regenerates the design-choice study tables.
func (s *Suite) AllStudies(ctx context.Context) ([]*report.Table, error) {
	gens := []func(context.Context) (*report.Table, error){
		s.StudyHeapFactor, s.StudyGCWorkers, s.StudyTenuring, s.StudyNUMA,
		s.StudyCollector, s.StudyPretenuring, s.StudyReplication,
	}
	var out []*report.Table
	for _, g := range gens {
		t, err := g(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
