package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"javasim/internal/lockprof"
	"javasim/internal/trace"
	"javasim/internal/vm"
	"javasim/internal/workload"
)

func testSpec(t testing.TB, name string, scale float64) workload.Spec {
	t.Helper()
	spec, ok := workload.Lookup(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return spec.Scale(scale)
}

// countingObserver tallies events and tracks the maximum number of
// simulations in flight at once. Safe for concurrent use.
type countingObserver struct {
	mu       sync.Mutex
	counts   map[EventKind]int
	inFlight int
	maxSeen  int
}

func newCountingObserver() *countingObserver {
	return &countingObserver{counts: map[EventKind]int{}}
}

func (o *countingObserver) Observe(ev Event) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.counts[ev.Kind]++
	switch ev.Kind {
	case RunStarted:
		o.inFlight++
		if o.inFlight > o.maxSeen {
			o.maxSeen = o.inFlight
		}
	case RunFinished:
		o.inFlight--
	}
}

func (o *countingObserver) count(k EventKind) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts[k]
}

func (o *countingObserver) maxInFlight() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.maxSeen
}

func TestEngineRunMemoizes(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithObserver(obs))
	spec := testSpec(t, "xalan", 0.02)
	cfg := vm.Config{Threads: 4, Seed: 7}

	a, err := e.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second identical run did not return the memoized *Result")
	}
	if got := obs.count(RunStarted); got != 1 {
		t.Errorf("simulations = %d, want 1", got)
	}
	if got := obs.count(RunCached); got != 1 {
		t.Errorf("cache-hit events = %d, want 1", got)
	}
	st := e.Stats()
	if st.Simulations != 1 || st.CacheHits != 1 || st.CachedResults != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineRunCanonicalizesConfigKeys(t *testing.T) {
	e := NewEngine()
	spec := testSpec(t, "jython", 0.02)
	// Threads 0 defaults to 4; both configs describe the same run and must
	// share one cache entry.
	a, err := e.Run(context.Background(), spec, vm.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(context.Background(), spec, vm.Config{Threads: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero-value and explicit-default configs did not share a cache entry")
	}
}

func TestEngineSinkRunsBypassCache(t *testing.T) {
	spec := testSpec(t, "h2", 0.02)
	if _, ok := runKey(spec, vm.Config{Threads: 2, Seed: 7}); !ok {
		t.Fatal("plain config should be cacheable")
	}
	if _, ok := runKey(spec, vm.Config{Threads: 2, Seed: 7, LockProfiler: lockprof.New()}); ok {
		t.Error("profiler-carrying config must not be cacheable")
	}
	if _, ok := runKey(spec, vm.Config{Threads: 2, Seed: 7, TraceSink: &trace.MemorySink{}}); ok {
		t.Error("trace-carrying config must not be cacheable")
	}
}

func TestEngineSingleflightDeduplicates(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithParallelism(4), WithObserver(obs))
	spec := testSpec(t, "xalan", 0.02)
	cfg := vm.Config{Threads: 4, Seed: 9}

	const callers = 8
	results := make([]*vm.Result, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			res, err := e.Run(context.Background(), spec, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if got := obs.count(RunStarted); got != 1 {
		t.Errorf("concurrent identical requests ran %d simulations, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d received a different *Result", i)
		}
	}
}

func TestEngineSweepBoundsParallelism(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithParallelism(2), WithObserver(obs))
	spec := testSpec(t, "sunflow", 0.02)
	sw, err := e.Sweep(context.Background(), spec, SweepConfig{
		ThreadCounts: []int{2, 3, 4, 6, 8, 12},
		Base:         vm.Config{Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(sw.Points))
	}
	if got := obs.maxInFlight(); got > 2 {
		t.Errorf("max concurrent simulations = %d, want <= 2", got)
	}
	if got := obs.count(SweepPointDone); got != 6 {
		t.Errorf("sweep-point events = %d, want 6", got)
	}
	if got := obs.count(SweepDone); got != 1 {
		t.Errorf("sweep-done events = %d, want 1", got)
	}
}

func TestEngineParallelMatchesSequential(t *testing.T) {
	spec := testSpec(t, "lusearch", 0.03)
	counts := []int{2, 4, 8}
	seq, err := NewEngine(WithParallelism(1)).Sweep(context.Background(), spec,
		SweepConfig{ThreadCounts: counts, Base: vm.Config{Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(WithParallelism(8)).Sweep(context.Background(), spec,
		SweepConfig{ThreadCounts: counts, Base: vm.Config{Seed: 21}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if !reflect.DeepEqual(seq.Points[i].Result, par.Points[i].Result) {
			t.Errorf("point t=%d differs between sequential and parallel engines", counts[i])
		}
	}
}

func TestEngineSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first simulation starts: the remaining points
	// must abort mid-run instead of draining the whole sweep.
	e := NewEngine(WithParallelism(1), WithObserver(ObserverFunc(func(ev Event) {
		if ev.Kind == RunStarted {
			cancel()
		}
	})))
	spec := testSpec(t, "xalan", 0.3)
	_, err := e.Sweep(ctx, spec, SweepConfig{
		ThreadCounts: []int{4, 8, 16, 32, 48},
		Base:         vm.Config{Seed: 3},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
}

func TestEngineRunPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine()
	_, err := e.Run(ctx, testSpec(t, "xalan", 0.02), vm.Config{Threads: 2, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.Stats(); st.Simulations != 0 {
		t.Errorf("pre-canceled run still simulated: %+v", st)
	}
}

func TestEngineWithSeedDefault(t *testing.T) {
	e := NewEngine(WithSeed(77))
	spec := testSpec(t, "jython", 0.02)
	a, err := e.Run(context.Background(), spec, vm.Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(context.Background(), spec, vm.Config{Threads: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("WithSeed default did not map to the explicit-seed cache entry")
	}
}

func TestSuiteSweepsArePointerEqual(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithObserver(obs))
	s := e.Suite(ExperimentConfig{ThreadCounts: []int{2, 4}, Scale: 0.02})
	ctx := context.Background()

	a, err := s.SweepFor(ctx, "xalan")
	if err != nil {
		t.Fatal(err)
	}
	simsAfterFirst := obs.count(RunStarted)
	b, err := s.SweepFor(ctx, "xalan")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("repeated SweepFor did not return the identical *Sweep")
	}
	if got := obs.count(RunStarted); got != simsAfterFirst {
		t.Errorf("repeated SweepFor simulated again: %d -> %d", simsAfterFirst, got)
	}
}

func TestSuiteRepeatedFiguresHitCache(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithObserver(obs))
	s := e.Suite(ExperimentConfig{ThreadCounts: []int{2, 4}, Scale: 0.02})
	ctx := context.Background()

	if _, err := s.Fig1a(ctx); err != nil {
		t.Fatal(err)
	}
	sims := obs.count(RunStarted)
	if sims == 0 {
		t.Fatal("first figure simulated nothing")
	}
	// Fig1b and Fig2 draw on the same sweeps; a second Fig1a is free too.
	if _, err := s.Fig1b(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig2(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fig1a(ctx); err != nil {
		t.Fatal(err)
	}
	if got := obs.count(RunStarted); got != sims {
		t.Errorf("repeated figures re-simulated: %d -> %d", sims, got)
	}
	if got := obs.count(ArtifactRendered); got != 4 {
		t.Errorf("artifact events = %d, want 4", got)
	}
}

func TestSuiteConcurrentFigureGeneration(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithParallelism(4), WithObserver(obs))
	s := e.Suite(ExperimentConfig{ThreadCounts: []int{2, 4}, Scale: 0.02})
	ctx := context.Background()

	gens := []func(context.Context) (any, error){
		func(ctx context.Context) (any, error) { return s.Fig1a(ctx) },
		func(ctx context.Context) (any, error) { return s.Fig1b(ctx) },
		func(ctx context.Context) (any, error) { return s.Fig1c(ctx) },
		func(ctx context.Context) (any, error) { return s.Fig1d(ctx) },
		func(ctx context.Context) (any, error) { return s.Fig2(ctx) },
		func(ctx context.Context) (any, error) { return s.ClassificationTable(ctx) },
		func(ctx context.Context) (any, error) { return s.FactorsTable(ctx) },
	}
	var wg sync.WaitGroup
	wg.Add(len(gens))
	for _, g := range gens {
		go func(g func(context.Context) (any, error)) {
			defer wg.Done()
			if _, err := g(ctx); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()

	// Six workloads x two thread counts: every figure shares the same 12
	// simulations no matter how many generators raced.
	if got := obs.count(RunStarted); got != 12 {
		t.Errorf("concurrent figure generation ran %d simulations, want 12", got)
	}
}

func TestResultCacheLRUEvicts(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &vm.Result{Threads: 1}, &vm.Result{Threads: 2}, &vm.Result{Threads: 3}
	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r3)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if got, _ := c.get("a"); got != r1 {
		t.Error("a evicted or wrong")
	}
	if got, _ := c.get("c"); got != r3 {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestDisabledCacheStillRuns(t *testing.T) {
	obs := newCountingObserver()
	e := NewEngine(WithCache(0), WithObserver(obs))
	spec := testSpec(t, "jython", 0.02)
	cfg := vm.Config{Threads: 2, Seed: 3}
	if _, err := e.Run(context.Background(), spec, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), spec, cfg); err != nil {
		t.Fatal(err)
	}
	if got := obs.count(RunStarted); got != 2 {
		t.Errorf("uncached engine simulated %d times, want 2", got)
	}
	if st := e.Stats(); st.CachedResults != 0 {
		t.Errorf("disabled cache holds %d results", st.CachedResults)
	}
}
