package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"

	"javasim/internal/vm"
	"javasim/internal/workload"
)

// Fingerprint returns the content hash that identifies one (spec,
// canonical config) run everywhere results are shared: the engine's
// in-memory LRU, the on-disk result store, and the sweep-shard worker
// protocol all key by it. The config is canonicalized first, so
// configurations that only differ in unresolved zero values (Threads 0
// vs the default 4, say) map to the same fingerprint. The second return
// is false for runs that cannot be cached — those carrying a trace sink
// or lock profiler, whose value is the side-effecting event stream.
func Fingerprint(spec workload.Spec, cfg vm.Config) (string, bool) {
	return runKey(spec, cfg)
}

// runKey fingerprints one (spec, config) pair for the engine's result
// cache. The config is canonicalized first, so configurations that only
// differ in unresolved zero values (Threads 0 vs the default 4, say) map
// to the same entry. Runs that attach side-effecting sinks — a trace sink
// or a lock profiler — are not cacheable: replaying a memoized Result
// would silently skip their event streams.
func runKey(spec workload.Spec, cfg vm.Config) (string, bool) {
	if cfg.TraceSink != nil || cfg.LockProfiler != nil {
		return "", false
	}
	canon := cfg.Canonical()
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(&spec); err != nil {
		return "", false
	}
	if err := enc.Encode(&canon); err != nil {
		return "", false
	}
	return hex.EncodeToString(h.Sum(nil)), true
}

// resultCache is a concurrency-safe LRU of memoized run results keyed by
// runKey fingerprints. Results are stored by pointer and shared between
// callers; they are treated as immutable after a run completes.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *vm.Result
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (*vm.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) put(key string, res *vm.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// flight tracks one in-progress simulation so concurrent requests for the
// same fingerprint wait for the leader instead of simulating twice.
type flight struct {
	done chan struct{}
	res  *vm.Result
	err  error
}

// flightGroup is a minimal singleflight keyed by runKey fingerprints.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// join returns the flight for key and whether the caller is its leader.
// The leader must call leave once the work settles.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	if fl, ok := g.flights[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.flights[key] = fl
	return fl, true
}

// leave publishes the leader's outcome and wakes the waiters.
func (g *flightGroup) leave(key string, fl *flight, res *vm.Result, err error) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	fl.res, fl.err = res, err
	close(fl.done)
}
