// Package machine models the hardware testbed: a cache-coherent NUMA
// multiprocessor composed of sockets, each holding a set of cores and a
// local memory node.
//
// The paper's experiments ran on a four-socket AMD Opteron 6168 system (12
// cores per socket, 48 cores total, 64 GB RAM). Opteron6168 reproduces that
// topology. The model captures the properties the experiments depend on —
// core counts, socket locality, and the relative cost of local versus
// remote memory access — not microarchitectural detail.
package machine

import (
	"fmt"

	"javasim/internal/sim"
)

// Config describes a NUMA machine.
type Config struct {
	// Sockets is the number of processor packages; each is one NUMA node.
	Sockets int
	// CoresPerSocket is the number of cores in each package.
	CoresPerSocket int
	// MemoryPerNode is the RAM attached to each socket, in bytes.
	MemoryPerNode int64
	// LocalAccess is the cost of a memory access that hits the socket's own
	// node.
	LocalAccess sim.Time
	// RemoteAccessPerHop is the additional cost per interconnect hop for an
	// access to another socket's node.
	RemoteAccessPerHop sim.Time
	// MigrationCost is the scheduling penalty when a thread moves between
	// cores: cache and TLB refill expressed as a lump sum. Cross-socket
	// migrations additionally pay RemoteAccessPerHop-scaled costs through
	// the latency model.
	MigrationCost sim.Time
}

// Opteron6168 returns the configuration of the paper's testbed: four AMD
// Opteron 6168 sockets, 12 cores each, 64 GB total RAM. Latency magnitudes
// follow the published ~1.4–2.2x local-to-remote NUMA factor for that
// platform generation.
func Opteron6168() Config {
	return Config{
		Sockets:            4,
		CoresPerSocket:     12,
		MemoryPerNode:      16 << 30, // 64 GB / 4 nodes
		LocalAccess:        65 * sim.Nanosecond,
		RemoteAccessPerHop: 45 * sim.Nanosecond,
		MigrationCost:      3 * sim.Microsecond,
	}
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("machine: Sockets = %d, need > 0", c.Sockets)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("machine: CoresPerSocket = %d, need > 0", c.CoresPerSocket)
	}
	if c.MemoryPerNode <= 0 {
		return fmt.Errorf("machine: MemoryPerNode = %d, need > 0", c.MemoryPerNode)
	}
	if c.LocalAccess < 0 || c.RemoteAccessPerHop < 0 || c.MigrationCost < 0 {
		return fmt.Errorf("machine: negative latency in config")
	}
	return nil
}

// TotalCores returns Sockets * CoresPerSocket.
func (c Config) TotalCores() int { return c.Sockets * c.CoresPerSocket }

// Core is one processing core. Utilization accounting is filled in by the
// scheduler as threads run.
type Core struct {
	// ID is the global core index in socket-major order.
	ID int
	// Socket is the package (and NUMA node) holding this core.
	Socket int
	// Enabled reports whether the experiment has switched this core on.
	// The paper enables subsets of cores to sweep machine sizes.
	Enabled bool
	// BusyTime accumulates virtual time during which a thread occupied the
	// core.
	BusyTime sim.Time
}

// Machine is an instantiated NUMA system.
type Machine struct {
	cfg   Config
	cores []Core
}

// New builds a machine from cfg with every core enabled. It panics if the
// configuration is invalid; machines are constructed from static presets or
// validated experiment configs.
func New(cfg Config) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{cfg: cfg, cores: make([]Core, cfg.TotalCores())}
	for i := range m.cores {
		m.cores[i] = Core{ID: i, Socket: i / cfg.CoresPerSocket, Enabled: true}
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the total number of cores, enabled or not.
func (m *Machine) NumCores() int { return len(m.cores) }

// NumSockets returns the number of sockets.
func (m *Machine) NumSockets() int { return m.cfg.Sockets }

// Core returns the core with the given global index.
func (m *Machine) Core(i int) *Core { return &m.cores[i] }

// EnableCores switches on the first n cores in socket-major order and
// disables the rest, mirroring how the paper's experiments enabled core
// subsets (fill one socket before spilling to the next). It returns an
// error if n is out of range.
func (m *Machine) EnableCores(n int) error {
	if n < 1 || n > len(m.cores) {
		return fmt.Errorf("machine: EnableCores(%d) out of range [1,%d]", n, len(m.cores))
	}
	for i := range m.cores {
		m.cores[i].Enabled = i < n
	}
	return nil
}

// EnabledCores returns the indices of all enabled cores in order.
func (m *Machine) EnabledCores() []int {
	out := make([]int, 0, len(m.cores))
	for i := range m.cores {
		if m.cores[i].Enabled {
			out = append(out, i)
		}
	}
	return out
}

// SocketOf returns the socket index of a core.
func (m *Machine) SocketOf(core int) int { return m.cores[core].Socket }

// Distance returns the number of interconnect hops between two sockets.
// The Opteron 6100 HyperTransport mesh keeps every socket within one hop of
// every other, so distance is 0 (same socket) or 1 (different socket).
// Larger systems could override this with a routed topology; the
// experiments here need only the local/remote distinction.
func (m *Machine) Distance(socketA, socketB int) int {
	if socketA == socketB {
		return 0
	}
	return 1
}

// MemoryLatency returns the cost of one memory access issued by core
// against the memory node of socket node.
func (m *Machine) MemoryLatency(core, node int) sim.Time {
	hops := m.Distance(m.cores[core].Socket, node)
	return m.cfg.LocalAccess + sim.Time(hops)*m.cfg.RemoteAccessPerHop
}

// RemotePenalty returns the multiplicative slowdown a thread suffers when
// running on core but touching memory homed on node, relative to an
// all-local run. It is >= 1.
func (m *Machine) RemotePenalty(core, node int) float64 {
	local := float64(m.cfg.LocalAccess)
	if local == 0 {
		return 1
	}
	return float64(m.MemoryLatency(core, node)) / local
}
