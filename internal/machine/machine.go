// Package machine models the hardware testbed: a cache-coherent NUMA
// multiprocessor composed of sockets, each holding a set of cores and a
// local memory node. Cores may expose several hardware threads (strands)
// sharing one issue pipeline, as on CMT parts such as the SPARC T3, and
// sockets may carry a finite memory-bandwidth budget.
//
// The paper's experiments ran on a four-socket AMD Opteron 6168 system (12
// cores per socket, 48 cores total, 64 GB RAM). Opteron6168 reproduces that
// topology. The model captures the properties the experiments depend on —
// core counts, socket locality, and the relative cost of local versus
// remote memory access — not microarchitectural detail. Alternative
// machines are published through a string-keyed model registry (see
// model.go) so plans can sweep the same workload across hardware
// generations.
package machine

import (
	"fmt"

	"javasim/internal/sim"
)

// Config describes a NUMA machine.
type Config struct {
	// Sockets is the number of processor packages; each is one NUMA node.
	Sockets int
	// CoresPerSocket is the number of physical cores in each package.
	CoresPerSocket int
	// ThreadsPerCore is the number of hardware threads (strands) each
	// physical core exposes. Zero means 1: one schedulable unit per core,
	// the pre-CMT default.
	ThreadsPerCore int `json:",omitempty"`
	// IssueWidth is how many of a core's hardware threads can issue at
	// full speed concurrently. When more strands of one core are busy than
	// the pipeline can issue, each runs at IssueWidth/busy of nominal
	// throughput. Zero means 1. Irrelevant when ThreadsPerCore <= 1.
	IssueWidth int `json:",omitempty"`
	// MemoryPerNode is the RAM attached to each socket, in bytes.
	MemoryPerNode int64
	// SocketBandwidth is each socket's memory-bandwidth budget in bytes
	// per virtual second. Traffic past the ceiling queues and stretches
	// memory stalls. Zero means unlimited (bandwidth is not modeled).
	SocketBandwidth int64 `json:",omitempty"`
	// LocalAccess is the cost of a memory access that hits the socket's own
	// node.
	LocalAccess sim.Time
	// RemoteAccessPerHop is the additional cost per interconnect hop for an
	// access to another socket's node.
	RemoteAccessPerHop sim.Time
	// MigrationCost is the scheduling penalty when a thread moves between
	// cores: cache and TLB refill expressed as a lump sum. Cross-socket
	// migrations additionally pay RemoteAccessPerHop-scaled costs through
	// the latency model.
	MigrationCost sim.Time
}

// Opteron6168 returns the configuration of the paper's testbed: four AMD
// Opteron 6168 sockets, 12 cores each, 64 GB total RAM. Latency magnitudes
// follow the published ~1.4–2.2x local-to-remote NUMA factor for that
// platform generation.
func Opteron6168() Config {
	return Config{
		Sockets:            4,
		CoresPerSocket:     12,
		MemoryPerNode:      16 << 30, // 64 GB / 4 nodes
		LocalAccess:        65 * sim.Nanosecond,
		RemoteAccessPerHop: 45 * sim.Nanosecond,
		MigrationCost:      3 * sim.Microsecond,
	}
}

// WithDefaults returns the configuration with zero-valued CMT knobs
// normalized: ThreadsPerCore and IssueWidth become 1. Machines built from
// normalized and raw configs behave identically; normalizing keeps derived
// quantities (TotalCores, UnitsPerSocket) simple.
func (c Config) WithDefaults() Config {
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 1
	}
	if c.IssueWidth == 0 {
		c.IssueWidth = 1
	}
	return c
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Sockets <= 0 {
		return fmt.Errorf("machine: Sockets = %d, need > 0", c.Sockets)
	}
	if c.CoresPerSocket <= 0 {
		return fmt.Errorf("machine: CoresPerSocket = %d, need > 0", c.CoresPerSocket)
	}
	if c.ThreadsPerCore < 0 {
		return fmt.Errorf("machine: ThreadsPerCore = %d, need >= 0 (0 means 1)", c.ThreadsPerCore)
	}
	if c.IssueWidth < 0 {
		return fmt.Errorf("machine: IssueWidth = %d, need >= 0 (0 means 1)", c.IssueWidth)
	}
	if c.MemoryPerNode <= 0 {
		return fmt.Errorf("machine: MemoryPerNode = %d, need > 0", c.MemoryPerNode)
	}
	if c.SocketBandwidth < 0 {
		return fmt.Errorf("machine: SocketBandwidth = %d, need >= 0 (0 means unlimited)", c.SocketBandwidth)
	}
	if c.LocalAccess < 0 || c.RemoteAccessPerHop < 0 || c.MigrationCost < 0 {
		return fmt.Errorf("machine: negative latency in config")
	}
	return nil
}

// threadsPerCore returns the effective strand count (>= 1).
func (c Config) threadsPerCore() int {
	if c.ThreadsPerCore < 1 {
		return 1
	}
	return c.ThreadsPerCore
}

// issueWidth returns the effective issue width (>= 1).
func (c Config) issueWidth() int {
	if c.IssueWidth < 1 {
		return 1
	}
	return c.IssueWidth
}

// UnitsPerSocket returns the number of schedulable units (hardware
// threads) per socket: CoresPerSocket * ThreadsPerCore.
func (c Config) UnitsPerSocket() int { return c.CoresPerSocket * c.threadsPerCore() }

// TotalCores returns the total number of schedulable units: Sockets *
// CoresPerSocket * ThreadsPerCore. The name survives from when every core
// was single-threaded; on CMT machines the units are hardware threads.
func (c Config) TotalCores() int { return c.Sockets * c.UnitsPerSocket() }

// Core is one schedulable unit — a hardware thread of a physical core.
// On machines with ThreadsPerCore <= 1 a unit is a whole core.
// Utilization accounting is filled in by the scheduler as threads run.
type Core struct {
	// ID is the global unit index in socket-major order. Within a socket,
	// strands spread round-robin across the physical cores so that
	// enabling the first n units fills distinct pipelines before doubling
	// up.
	ID int
	// Socket is the package (and NUMA node) holding this unit.
	Socket int
	// Pipeline is the global physical-core index this unit issues
	// through. Units sharing a Pipeline contend for its issue slots.
	Pipeline int
	// Strand is this unit's hardware-thread index within its pipeline.
	Strand int
	// Enabled reports whether the experiment has switched this unit on.
	// The paper enables subsets of cores to sweep machine sizes.
	Enabled bool
	// BusyTime accumulates virtual time during which a thread occupied the
	// unit.
	BusyTime sim.Time
}

// Machine is an instantiated NUMA system.
type Machine struct {
	cfg      Config
	cores    []Core
	distance func(socketA, socketB int) int

	// Memory-bandwidth queueing state, one virtual clock per socket.
	// bwFree[s] is the virtual time at which socket s's memory channel
	// next has spare capacity; traffic arriving earlier queues behind it.
	bwFree  []sim.Time
	bwStall sim.Time
	bwBytes int64
}

// defaultDistance is the flat HyperTransport-style topology: every socket
// is one hop from every other.
func defaultDistance(socketA, socketB int) int {
	if socketA == socketB {
		return 0
	}
	return 1
}

// New builds a machine from cfg with every unit enabled. It returns an
// error if the configuration is invalid, so bad plan- or CLI-supplied
// configs surface as load errors rather than panics.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:      cfg,
		cores:    make([]Core, cfg.TotalCores()),
		distance: defaultDistance,
	}
	ups := cfg.UnitsPerSocket()
	cps := cfg.CoresPerSocket
	for i := range m.cores {
		socket := i / ups
		u := i % ups
		coreInSocket := u % cps
		m.cores[i] = Core{
			ID:       i,
			Socket:   socket,
			Pipeline: socket*cps + coreInSocket,
			Strand:   u / cps,
			Enabled:  true,
		}
	}
	if cfg.SocketBandwidth > 0 {
		m.bwFree = make([]sim.Time, cfg.Sockets)
	}
	return m, nil
}

// MustNew is New for static presets and tests where the configuration is
// known valid; it panics on error.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFromModel builds a machine from a registered model, installing the
// model's Distance topology hook.
func NewFromModel(mdl Model) (*Machine, error) {
	m, err := New(mdl.Config())
	if err != nil {
		return nil, fmt.Errorf("machine: model %q: %w", mdl.Name(), err)
	}
	m.distance = mdl.Distance
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the total number of schedulable units, enabled or not.
func (m *Machine) NumCores() int { return len(m.cores) }

// NumSockets returns the number of sockets.
func (m *Machine) NumSockets() int { return m.cfg.Sockets }

// Core returns the unit with the given global index.
func (m *Machine) Core(i int) *Core { return &m.cores[i] }

// ThreadsPerCore returns the effective strand count per pipeline (>= 1).
func (m *Machine) ThreadsPerCore() int { return m.cfg.threadsPerCore() }

// IssueWidth returns the effective issue width per pipeline (>= 1).
func (m *Machine) IssueWidth() int { return m.cfg.issueWidth() }

// EnableCores switches on the first n units in index order and disables
// the rest, mirroring how the paper's experiments enabled core subsets
// (fill one socket before spilling to the next). On CMT machines the
// index order spreads strands round-robin across a socket's pipelines,
// so small n occupies distinct pipelines before siblings double up. It
// returns an error if n is out of range.
func (m *Machine) EnableCores(n int) error {
	if n < 1 || n > len(m.cores) {
		return fmt.Errorf("machine: EnableCores(%d) out of range [1,%d]", n, len(m.cores))
	}
	for i := range m.cores {
		m.cores[i].Enabled = i < n
	}
	return nil
}

// EnabledCores returns the indices of all enabled units in order.
func (m *Machine) EnabledCores() []int {
	out := make([]int, 0, len(m.cores))
	for i := range m.cores {
		if m.cores[i].Enabled {
			out = append(out, i)
		}
	}
	return out
}

// SocketOf returns the socket index of a unit.
func (m *Machine) SocketOf(core int) int { return m.cores[core].Socket }

// PipelineOf returns the global physical-core index a unit issues
// through.
func (m *Machine) PipelineOf(core int) int { return m.cores[core].Pipeline }

// Distance returns the number of interconnect hops between two sockets.
// The default topology is the Opteron 6100 HyperTransport mesh, which
// keeps every socket within one hop of every other: distance is 0 (same
// socket) or 1 (different socket). Machines built through NewFromModel
// use the model's topology hook instead, so routed multi-hop systems are
// expressible.
func (m *Machine) Distance(socketA, socketB int) int {
	return m.distance(socketA, socketB)
}

// MemoryLatency returns the cost of one memory access issued by core
// against the memory node of socket node.
func (m *Machine) MemoryLatency(core, node int) sim.Time {
	hops := m.Distance(m.cores[core].Socket, node)
	return m.cfg.LocalAccess + sim.Time(hops)*m.cfg.RemoteAccessPerHop
}

// RemotePenalty returns the multiplicative slowdown a thread suffers when
// running on core but touching memory homed on node, relative to an
// all-local run. It is >= 1.
func (m *Machine) RemotePenalty(core, node int) float64 {
	local := float64(m.cfg.LocalAccess)
	if local == 0 {
		return 1
	}
	return float64(m.MemoryLatency(core, node)) / local
}

// HasBandwidthLimit reports whether the machine models a finite per-socket
// memory-bandwidth budget.
func (m *Machine) HasBandwidthLimit() bool { return m.bwFree != nil }

// BillTraffic charges bytes of memory traffic against socket's bandwidth
// budget at virtual time now and returns the stall the issuing thread
// must absorb before the traffic completes. Each socket's channel is a
// single-server queue with deterministic service time bytes/bandwidth:
// traffic arriving while the channel is free pays nothing extra, traffic
// arriving while earlier transfers still occupy the channel waits out the
// backlog. On machines without a bandwidth limit it returns 0.
func (m *Machine) BillTraffic(socket int, bytes int64, now sim.Time) sim.Time {
	if m.bwFree == nil || bytes <= 0 {
		return 0
	}
	m.bwBytes += bytes
	stall := m.bwFree[socket] - now
	if stall < 0 {
		stall = 0
	}
	start := now + stall
	service := sim.Time(bytes * int64(sim.Second) / m.cfg.SocketBandwidth)
	m.bwFree[socket] = start + service
	m.bwStall += stall
	return stall
}

// BandwidthStall returns the total stall time billed by BillTraffic.
func (m *Machine) BandwidthStall() sim.Time { return m.bwStall }

// TrafficBytes returns the total memory traffic billed by BillTraffic.
func (m *Machine) TrafficBytes() int64 { return m.bwBytes }
