package machine

import (
	"fmt"

	"javasim/internal/registry"
	"javasim/internal/sim"
)

// Model is a named, registrable machine description: a Config plus the
// topology hooks a plain Config cannot express. Models are stateless;
// per-run state (core utilization, bandwidth clocks) lives in the Machine
// built from one via NewFromModel.
type Model interface {
	// Name is the registry key, e.g. "opteron-6168".
	Name() string
	// Config returns the machine configuration.
	Config() Config
	// Distance returns the number of interconnect hops between two
	// sockets. Same-socket distance must be 0.
	Distance(socketA, socketB int) int
}

// Registry names for the built-in machine models.
const (
	// DefaultModel is the paper's testbed, the four-socket Opteron 6168.
	DefaultModel = "opteron-6168"
	// ModelSparcT3 is a four-socket SPARC T3-4 CMT system: 16 cores per
	// socket, 8 hardware threads per core sharing a dual-issue pipeline,
	// 512 hardware threads total.
	ModelSparcT3 = "sparc-t3-4"
	// ModelOpteronBW is the Opteron 6168 testbed with a finite per-socket
	// memory-bandwidth budget, so allocation and GC copy traffic past the
	// ceiling stretches memory stalls.
	ModelOpteronBW = "opteron-6168-bw"
)

// basicModel is a Model with a flat (0/1 hop) topology, sufficient for
// the built-ins and most user machines.
type basicModel struct {
	name string
	cfg  Config
}

func (m basicModel) Name() string                      { return m.name }
func (m basicModel) Config() Config                    { return m.cfg }
func (m basicModel) Distance(socketA, socketB int) int { return defaultDistance(socketA, socketB) }

// NewModel wraps a Config as a Model with the default flat 0/1 socket
// distance. Implement the Model interface directly to supply a routed
// multi-hop topology.
func NewModel(name string, cfg Config) Model { return basicModel{name: name, cfg: cfg} }

// SparcT3_4 returns the configuration of a four-socket SPARC T3-4: 16
// cores per socket, 8 strands per core sharing a dual-issue pipeline (512
// hardware threads), 512 GB RAM. Per-strand throughput is a fraction of
// an Opteron core's, and memory latencies are higher — the machine trades
// single-thread speed for thread count.
func SparcT3_4() Config {
	return Config{
		Sockets:            4,
		CoresPerSocket:     16,
		ThreadsPerCore:     8,
		IssueWidth:         2,
		MemoryPerNode:      128 << 30, // 512 GB / 4 nodes
		LocalAccess:        150 * sim.Nanosecond,
		RemoteAccessPerHop: 90 * sim.Nanosecond,
		MigrationCost:      2 * sim.Microsecond,
	}
}

// Opteron6168BW returns the Opteron 6168 testbed with each socket's
// memory channel capped. The ceiling sits well below the part's peak
// DDR3 figure: it models the sustainable rate left to the JVM's
// allocation and copy traffic after the mutators' own loads, low enough
// that a heavily allocating workload saturates it within a socket.
func Opteron6168BW() Config {
	cfg := Opteron6168()
	cfg.SocketBandwidth = 512 << 20 // 512 MB per virtual second per socket
	return cfg
}

// models is the global machine-model registry. Factories return the
// Model itself — models are stateless, so one value serves every lookup.
var models = registry.New[Model]("machine model")

func init() {
	MustRegisterModel(NewModel(DefaultModel, Opteron6168()))
	MustRegisterModel(NewModel(ModelSparcT3, SparcT3_4()))
	MustRegisterModel(NewModel(ModelOpteronBW, Opteron6168BW()))
}

// RegisterModel adds a model to the registry under its Name. Duplicate or
// empty names and invalid configurations are rejected.
func RegisterModel(m Model) error {
	if m == nil {
		return fmt.Errorf("machine: nil model")
	}
	if err := m.Config().Validate(); err != nil {
		return fmt.Errorf("machine: model %q: %w", m.Name(), err)
	}
	return models.Register(m.Name(), func() Model { return m })
}

// MustRegisterModel is RegisterModel that panics on error — for package
// init blocks wiring in built-ins.
func MustRegisterModel(m Model) {
	if err := RegisterModel(m); err != nil {
		panic(err)
	}
}

// LookupModel returns the registered model with the given name.
func LookupModel(name string) (Model, error) { return models.New(name) }

// KnownModel reports whether name is a registered model.
func KnownModel(name string) bool { return models.Known(name) }

// ValidateModel checks a plan- or CLI-supplied model name. The empty
// string is valid and means "the default model".
func ValidateModel(name string) error {
	if name == "" || models.Known(name) {
		return nil
	}
	_, err := models.New(name)
	return err
}

// ModelNames returns every registered model name in registration order.
func ModelNames() []string { return models.Names() }
