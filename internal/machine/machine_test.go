package machine

import (
	"testing"
	"testing/quick"

	"javasim/internal/sim"
)

func TestOpteron6168Preset(t *testing.T) {
	cfg := Opteron6168()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	if got := cfg.TotalCores(); got != 48 {
		t.Errorf("TotalCores = %d, want 48", got)
	}
	if cfg.Sockets != 4 || cfg.CoresPerSocket != 12 {
		t.Errorf("topology %dx%d, want 4x12", cfg.Sockets, cfg.CoresPerSocket)
	}
	if total := cfg.MemoryPerNode * int64(cfg.Sockets); total != 64<<30 {
		t.Errorf("total memory = %d, want 64 GiB", total)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Sockets: 0, CoresPerSocket: 4, MemoryPerNode: 1},
		{Sockets: 2, CoresPerSocket: 0, MemoryPerNode: 1},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 0},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 1, LocalAccess: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
}

func TestSocketAssignment(t *testing.T) {
	m := New(Opteron6168())
	for i := 0; i < m.NumCores(); i++ {
		want := i / 12
		if got := m.SocketOf(i); got != want {
			t.Errorf("core %d on socket %d, want %d", i, got, want)
		}
	}
}

func TestEnableCores(t *testing.T) {
	m := New(Opteron6168())
	if err := m.EnableCores(16); err != nil {
		t.Fatal(err)
	}
	enabled := m.EnabledCores()
	if len(enabled) != 16 {
		t.Fatalf("enabled %d cores, want 16", len(enabled))
	}
	for i, c := range enabled {
		if c != i {
			t.Errorf("enabled[%d] = %d, want %d (socket-major fill)", i, c, i)
		}
	}
	if m.Core(16).Enabled {
		t.Error("core 16 still enabled")
	}
}

func TestEnableCoresRange(t *testing.T) {
	m := New(Opteron6168())
	if err := m.EnableCores(0); err == nil {
		t.Error("EnableCores(0) accepted")
	}
	if err := m.EnableCores(49); err == nil {
		t.Error("EnableCores(49) accepted")
	}
	if err := m.EnableCores(48); err != nil {
		t.Errorf("EnableCores(48) rejected: %v", err)
	}
}

func TestDistance(t *testing.T) {
	m := New(Opteron6168())
	if d := m.Distance(2, 2); d != 0 {
		t.Errorf("same-socket distance = %d, want 0", d)
	}
	if d := m.Distance(0, 3); d != 1 {
		t.Errorf("cross-socket distance = %d, want 1", d)
	}
	// Symmetry.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if m.Distance(a, b) != m.Distance(b, a) {
				t.Errorf("Distance(%d,%d) asymmetric", a, b)
			}
		}
	}
}

func TestMemoryLatency(t *testing.T) {
	cfg := Opteron6168()
	m := New(cfg)
	local := m.MemoryLatency(0, 0) // core 0 is on socket 0
	remote := m.MemoryLatency(0, 1)
	if local != cfg.LocalAccess {
		t.Errorf("local latency %v, want %v", local, cfg.LocalAccess)
	}
	if remote != cfg.LocalAccess+cfg.RemoteAccessPerHop {
		t.Errorf("remote latency %v, want %v", remote, cfg.LocalAccess+cfg.RemoteAccessPerHop)
	}
	if remote <= local {
		t.Error("remote access not slower than local")
	}
}

func TestRemotePenalty(t *testing.T) {
	m := New(Opteron6168())
	if p := m.RemotePenalty(0, 0); p != 1 {
		t.Errorf("local penalty = %v, want 1", p)
	}
	if p := m.RemotePenalty(0, 2); p <= 1 {
		t.Errorf("remote penalty = %v, want > 1", p)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid config")
		}
	}()
	New(Config{})
}

// Property: for any valid small topology, every core maps to a valid
// socket, and memory latency is minimized at the local node.
func TestTopologyProperty(t *testing.T) {
	f := func(sockets, cores uint8) bool {
		s := int(sockets%8) + 1
		c := int(cores%16) + 1
		m := New(Config{
			Sockets: s, CoresPerSocket: c, MemoryPerNode: 1 << 30,
			LocalAccess: 60 * sim.Nanosecond, RemoteAccessPerHop: 40 * sim.Nanosecond,
		})
		for i := 0; i < m.NumCores(); i++ {
			sk := m.SocketOf(i)
			if sk < 0 || sk >= s {
				return false
			}
			localLat := m.MemoryLatency(i, sk)
			for node := 0; node < s; node++ {
				if m.MemoryLatency(i, node) < localLat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
