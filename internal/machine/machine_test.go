package machine

import (
	"strings"
	"testing"
	"testing/quick"

	"javasim/internal/sim"
)

func TestOpteron6168Preset(t *testing.T) {
	cfg := Opteron6168()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	if got := cfg.TotalCores(); got != 48 {
		t.Errorf("TotalCores = %d, want 48", got)
	}
	if cfg.Sockets != 4 || cfg.CoresPerSocket != 12 {
		t.Errorf("topology %dx%d, want 4x12", cfg.Sockets, cfg.CoresPerSocket)
	}
	if total := cfg.MemoryPerNode * int64(cfg.Sockets); total != 64<<30 {
		t.Errorf("total memory = %d, want 64 GiB", total)
	}
}

func TestSparcT3Preset(t *testing.T) {
	cfg := SparcT3_4()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	if got := cfg.TotalCores(); got != 512 {
		t.Errorf("TotalCores = %d, want 512 hardware threads", got)
	}
	if got := cfg.UnitsPerSocket(); got != 128 {
		t.Errorf("UnitsPerSocket = %d, want 128", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Sockets: 0, CoresPerSocket: 4, MemoryPerNode: 1},
		{Sockets: 2, CoresPerSocket: 0, MemoryPerNode: 1},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 0},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 1, LocalAccess: -1},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 1, ThreadsPerCore: -1},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 1, IssueWidth: -2},
		{Sockets: 2, CoresPerSocket: 4, MemoryPerNode: 1, SocketBandwidth: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config %+v", i, c)
		}
	}
}

func TestSocketAssignment(t *testing.T) {
	m := MustNew(Opteron6168())
	for i := 0; i < m.NumCores(); i++ {
		want := i / 12
		if got := m.SocketOf(i); got != want {
			t.Errorf("core %d on socket %d, want %d", i, got, want)
		}
		// Single-threaded cores: one unit per pipeline, strand always 0.
		if p := m.PipelineOf(i); p != i {
			t.Errorf("core %d pipeline %d, want %d", i, p, i)
		}
		if s := m.Core(i).Strand; s != 0 {
			t.Errorf("core %d strand %d, want 0", i, s)
		}
	}
}

func TestCMTUnitLayout(t *testing.T) {
	m := MustNew(SparcT3_4())
	cps, ups := 16, 128
	for i := 0; i < m.NumCores(); i++ {
		c := m.Core(i)
		wantSocket := i / ups
		u := i % ups
		wantPipeline := wantSocket*cps + u%cps
		wantStrand := u / cps
		if c.Socket != wantSocket || c.Pipeline != wantPipeline || c.Strand != wantStrand {
			t.Fatalf("unit %d = (socket %d, pipeline %d, strand %d), want (%d, %d, %d)",
				i, c.Socket, c.Pipeline, c.Strand, wantSocket, wantPipeline, wantStrand)
		}
	}
	// First 16 units fill 16 distinct pipelines before strands double up.
	seen := map[int]bool{}
	for i := 0; i < cps; i++ {
		p := m.PipelineOf(i)
		if seen[p] {
			t.Fatalf("unit %d repeats pipeline %d before all pipelines used", i, p)
		}
		seen[p] = true
	}
	if m.PipelineOf(cps) != m.PipelineOf(0) {
		t.Errorf("unit %d should share pipeline with unit 0", cps)
	}
}

func TestEnableCores(t *testing.T) {
	m := MustNew(Opteron6168())
	if err := m.EnableCores(16); err != nil {
		t.Fatal(err)
	}
	enabled := m.EnabledCores()
	if len(enabled) != 16 {
		t.Fatalf("enabled %d cores, want 16", len(enabled))
	}
	for i, c := range enabled {
		if c != i {
			t.Errorf("enabled[%d] = %d, want %d (socket-major fill)", i, c, i)
		}
	}
	if m.Core(16).Enabled {
		t.Error("core 16 still enabled")
	}
}

func TestEnableCoresRange(t *testing.T) {
	m := MustNew(Opteron6168())
	if err := m.EnableCores(0); err == nil {
		t.Error("EnableCores(0) accepted")
	}
	if err := m.EnableCores(49); err == nil {
		t.Error("EnableCores(49) accepted")
	}
	if err := m.EnableCores(48); err != nil {
		t.Errorf("EnableCores(48) rejected: %v", err)
	}
}

func TestDistance(t *testing.T) {
	m := MustNew(Opteron6168())
	if d := m.Distance(2, 2); d != 0 {
		t.Errorf("same-socket distance = %d, want 0", d)
	}
	if d := m.Distance(0, 3); d != 1 {
		t.Errorf("cross-socket distance = %d, want 1", d)
	}
	// Symmetry.
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			if m.Distance(a, b) != m.Distance(b, a) {
				t.Errorf("Distance(%d,%d) asymmetric", a, b)
			}
		}
	}
}

// ringModel is a routed topology: sockets on a ring, distance = minimal
// hop count around it. Exercises the Distance model hook.
type ringModel struct{ cfg Config }

func (r ringModel) Name() string   { return "ring-test" }
func (r ringModel) Config() Config { return r.cfg }
func (r ringModel) Distance(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if wrap := r.cfg.Sockets - d; wrap < d {
		return wrap
	}
	return d
}

func TestDistanceModelHook(t *testing.T) {
	cfg := Config{
		Sockets: 8, CoresPerSocket: 2, MemoryPerNode: 1 << 30,
		LocalAccess: 60 * sim.Nanosecond, RemoteAccessPerHop: 40 * sim.Nanosecond,
	}
	m, err := NewFromModel(ringModel{cfg: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Distance(0, 4); d != 4 {
		t.Errorf("Distance(0,4) = %d, want 4 (opposite side of ring)", d)
	}
	if d := m.Distance(0, 7); d != 1 {
		t.Errorf("Distance(0,7) = %d, want 1 (wraparound)", d)
	}
	// Multi-hop distances compound through the latency model.
	far := m.MemoryLatency(0, 4)
	near := m.MemoryLatency(0, 1)
	if far <= near {
		t.Errorf("4-hop latency %v not beyond 1-hop %v", far, near)
	}
}

func TestMemoryLatency(t *testing.T) {
	cfg := Opteron6168()
	m := MustNew(cfg)
	local := m.MemoryLatency(0, 0) // core 0 is on socket 0
	remote := m.MemoryLatency(0, 1)
	if local != cfg.LocalAccess {
		t.Errorf("local latency %v, want %v", local, cfg.LocalAccess)
	}
	if remote != cfg.LocalAccess+cfg.RemoteAccessPerHop {
		t.Errorf("remote latency %v, want %v", remote, cfg.LocalAccess+cfg.RemoteAccessPerHop)
	}
	if remote <= local {
		t.Error("remote access not slower than local")
	}
}

func TestRemotePenalty(t *testing.T) {
	m := MustNew(Opteron6168())
	if p := m.RemotePenalty(0, 0); p != 1 {
		t.Errorf("local penalty = %v, want 1", p)
	}
	if p := m.RemotePenalty(0, 2); p <= 1 {
		t.Errorf("remote penalty = %v, want > 1", p)
	}
}

func TestNewErrorsOnInvalid(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew accepted invalid config")
		}
	}()
	MustNew(Config{})
}

func TestBillTraffic(t *testing.T) {
	cfg := Opteron6168()
	cfg.SocketBandwidth = 1 << 20 // 1 MiB per virtual second
	m := MustNew(cfg)
	if !m.HasBandwidthLimit() {
		t.Fatal("HasBandwidthLimit = false with SocketBandwidth set")
	}
	// First transfer on an idle channel: no stall, channel busy for
	// bytes/bandwidth.
	if stall := m.BillTraffic(0, 512<<10, 0); stall != 0 {
		t.Errorf("idle-channel stall = %v, want 0", stall)
	}
	// Second transfer arrives immediately: waits out the 0.5 s backlog.
	stall := m.BillTraffic(0, 512<<10, 0)
	if want := 500 * sim.Millisecond; stall != want {
		t.Errorf("backlogged stall = %v, want %v", stall, want)
	}
	// Another socket's channel is independent.
	if stall := m.BillTraffic(1, 512<<10, 0); stall != 0 {
		t.Errorf("cross-socket stall = %v, want 0", stall)
	}
	// After the backlog drains, traffic is free again.
	if stall := m.BillTraffic(0, 512<<10, 2*sim.Second); stall != 0 {
		t.Errorf("post-drain stall = %v, want 0", stall)
	}
	if got := m.TrafficBytes(); got != 4*(512<<10) {
		t.Errorf("TrafficBytes = %d, want %d", got, 4*(512<<10))
	}
	if got := m.BandwidthStall(); got != 500*sim.Millisecond {
		t.Errorf("BandwidthStall = %v, want %v", got, 500*sim.Millisecond)
	}
}

func TestBillTrafficUnlimited(t *testing.T) {
	m := MustNew(Opteron6168())
	if m.HasBandwidthLimit() {
		t.Fatal("HasBandwidthLimit = true without SocketBandwidth")
	}
	if stall := m.BillTraffic(0, 1<<30, 0); stall != 0 {
		t.Errorf("unlimited machine stalled %v", stall)
	}
}

func TestModelRegistry(t *testing.T) {
	for _, name := range []string{DefaultModel, ModelSparcT3, ModelOpteronBW} {
		mdl, err := LookupModel(name)
		if err != nil {
			t.Fatalf("LookupModel(%q): %v", name, err)
		}
		if mdl.Name() != name {
			t.Errorf("model %q reports name %q", name, mdl.Name())
		}
		if !KnownModel(name) {
			t.Errorf("KnownModel(%q) = false", name)
		}
	}
	if err := RegisterModel(NewModel(DefaultModel, Opteron6168())); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := LookupModel("no-such-machine"); err == nil {
		t.Error("unknown model lookup succeeded")
	} else if !strings.Contains(err.Error(), "no-such-machine") {
		t.Errorf("unknown-model error %q does not name the model", err)
	}
	if err := RegisterModel(NewModel("bad-config", Config{})); err == nil {
		t.Error("invalid model config accepted")
	}
}

func TestValidateModel(t *testing.T) {
	if err := ValidateModel(""); err != nil {
		t.Errorf("empty name rejected: %v", err)
	}
	if err := ValidateModel(DefaultModel); err != nil {
		t.Errorf("default model rejected: %v", err)
	}
	if err := ValidateModel("no-such-machine"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelNamesIncludeBuiltins(t *testing.T) {
	names := ModelNames()
	want := map[string]bool{DefaultModel: false, ModelSparcT3: false, ModelOpteronBW: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("built-in model %q missing from ModelNames", n)
		}
	}
}

// Property: for any valid small topology, every unit maps to a valid
// socket and pipeline, and memory latency is minimized at the local node.
func TestTopologyProperty(t *testing.T) {
	f := func(sockets, cores, strands uint8) bool {
		s := int(sockets%8) + 1
		c := int(cores%16) + 1
		tpc := int(strands%4) + 1
		m := MustNew(Config{
			Sockets: s, CoresPerSocket: c, ThreadsPerCore: tpc,
			MemoryPerNode: 1 << 30,
			LocalAccess:   60 * sim.Nanosecond, RemoteAccessPerHop: 40 * sim.Nanosecond,
		})
		if m.NumCores() != s*c*tpc {
			return false
		}
		for i := 0; i < m.NumCores(); i++ {
			sk := m.SocketOf(i)
			if sk < 0 || sk >= s {
				return false
			}
			p := m.PipelineOf(i)
			if p < 0 || p >= s*c || p/c != sk {
				return false
			}
			localLat := m.MemoryLatency(i, sk)
			for node := 0; node < s; node++ {
				if m.MemoryLatency(i, node) < localLat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
