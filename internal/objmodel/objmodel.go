// Package objmodel tracks every simulated heap object from allocation to
// death, reproducing the measurement model of Elephant Tracks (Ricci,
// Guyer, Moss — ISMM 2013), the tracer the paper uses.
//
// The central metric is the paper's definition of object lifespan (§II-A):
// the amount of heap memory allocated to other objects between an object's
// creation and its death. The registry therefore timestamps each object
// with the global allocation clock — cumulative bytes ever allocated — at
// birth and at death; the difference is the lifespan in bytes.
package objmodel

import (
	"fmt"

	"javasim/internal/sim"
)

// ID names an object within one registry. IDs are dense, starting at 0.
type ID uint32

// NoID is the sentinel for "no object".
const NoID ID = ^ID(0)

// Generation is the heap generation holding an object.
type Generation uint8

const (
	// Young objects live in the nursery (eden or a survivor space).
	Young Generation = iota
	// Old objects have been promoted to the mature generation.
	Old
)

// String returns the generation name.
func (g Generation) String() string {
	if g == Young {
		return "young"
	}
	return "old"
}

// Object is the per-object record. Records are stored by value inside the
// registry; callers receive pointers that remain valid for the lifetime of
// the registry (the backing store is append-only).
type Object struct {
	// Size is the object's size in bytes, including header.
	Size int32
	// Thread is the allocating mutator thread index.
	Thread int32
	// Birth is the global allocation clock (bytes allocated by everyone,
	// ever) when the object was created.
	Birth int64
	// Death is the allocation clock at death, or -1 while the object lives.
	Death int64
	// BirthTime and DeathTime are the virtual times of the same events.
	BirthTime sim.Time
	DeathTime sim.Time
	// Age counts the minor collections this object has survived; it drives
	// the tenuring decision.
	Age uint8
	// Gen is the generation currently holding the object.
	Gen Generation
	// Compartment is the heap compartment (future-work feature) the object
	// was allocated into; 0 when compartmentalization is off.
	Compartment uint16
}

// Live reports whether the object has not yet died.
func (o *Object) Live() bool { return o.Death < 0 }

// Lifespan returns the object's lifespan in allocation-clock bytes. It
// panics if the object is still live; callers check Live first or only ask
// after the run retires all objects.
func (o *Object) Lifespan() int64 {
	if o.Death < 0 {
		panic("objmodel: Lifespan of live object")
	}
	return o.Death - o.Birth
}

// Registry owns all object records for one VM run.
type Registry struct {
	objects []Object

	liveCount int64
	liveBytes int64

	allocated      int64 // objects ever allocated
	allocatedBytes int64 // == the allocation clock

	diedCount int64
	diedBytes int64
}

// NewRegistry returns an empty registry with capacity hint n objects.
func NewRegistry(n int) *Registry {
	return &Registry{objects: make([]Object, 0, n)}
}

// Alloc records a new young object of the given size by thread at the
// current virtual time and returns its ID. It advances the allocation
// clock by size. The birth clock is sampled after the object's own bytes
// are counted, so a lifespan measures only memory allocated to *other*
// objects between creation and death — the paper's §II-A definition.
func (r *Registry) Alloc(size int32, thread int32, now sim.Time) ID {
	if size <= 0 {
		panic(fmt.Sprintf("objmodel: Alloc size %d", size))
	}
	id := ID(len(r.objects))
	r.allocated++
	r.allocatedBytes += int64(size)
	r.objects = append(r.objects, Object{
		Size:      size,
		Thread:    thread,
		Birth:     r.allocatedBytes,
		Death:     -1,
		BirthTime: now,
		Gen:       Young,
	})
	r.liveCount++
	r.liveBytes += int64(size)
	return id
}

// Kill marks an object dead at the current allocation clock. Killing an
// already-dead object panics: the workload driver owns each object's single
// death, and a double kill means lifespans would be corrupted.
func (r *Registry) Kill(id ID, now sim.Time) {
	o := &r.objects[id]
	if o.Death >= 0 {
		panic(fmt.Sprintf("objmodel: double kill of object %d", id))
	}
	o.Death = r.allocatedBytes
	o.DeathTime = now
	r.liveCount--
	r.liveBytes -= int64(o.Size)
	r.diedCount++
	r.diedBytes += int64(o.Size)
}

// Get returns the record for id. The pointer stays valid until the
// registry is discarded but may describe a dead object.
func (r *Registry) Get(id ID) *Object { return &r.objects[id] }

// Clock returns the global allocation clock: total bytes ever allocated.
func (r *Registry) Clock() int64 { return r.allocatedBytes }

// Count returns the number of objects ever allocated.
func (r *Registry) Count() int64 { return r.allocated }

// LiveCount returns the number of currently live objects.
func (r *Registry) LiveCount() int64 { return r.liveCount }

// LiveBytes returns the bytes held by live objects.
func (r *Registry) LiveBytes() int64 { return r.liveBytes }

// DeadCount returns the number of objects that have died.
func (r *Registry) DeadCount() int64 { return r.diedCount }

// KillAllLive retires every live object at the current clock; the VM calls
// it at program exit so that end-of-run objects contribute lifespans, as
// Elephant Tracks does when the traced program terminates.
func (r *Registry) KillAllLive(now sim.Time) {
	for i := range r.objects {
		if r.objects[i].Death < 0 {
			r.Kill(ID(i), now)
		}
	}
}

// ForEach calls fn for every object ever allocated, in allocation order.
func (r *Registry) ForEach(fn func(ID, *Object)) {
	for i := range r.objects {
		fn(ID(i), &r.objects[i])
	}
}

// ForEachLive calls fn for every object live at the time of the call, in
// allocation order, without materializing an ID list. The registry tracks
// the live count, so the scan stops as soon as the last live object has
// been visited instead of walking the entire allocation history. fn may
// kill the object it is handed (the VM's end-of-run retirement does);
// such objects still count as live at call time. fn must not kill
// not-yet-visited objects or allocate new ones.
func (r *Registry) ForEachLive(fn func(ID, *Object)) {
	left := r.liveCount
	for i := 0; i < len(r.objects) && left > 0; i++ {
		if o := &r.objects[i]; o.Live() {
			left--
			fn(ID(i), o)
		}
	}
}
