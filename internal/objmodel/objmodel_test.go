package objmodel

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	r := NewRegistry(16)
	id := r.Alloc(128, 3, 100)
	o := r.Get(id)
	if o.Size != 128 || o.Thread != 3 || o.BirthTime != 100 {
		t.Errorf("object fields %+v", o)
	}
	if !o.Live() {
		t.Error("fresh object not live")
	}
	if o.Birth != 128 {
		t.Errorf("first object birth clock = %d, want 128 (after own bytes)", o.Birth)
	}
	if r.Clock() != 128 {
		t.Errorf("clock = %d, want 128", r.Clock())
	}
	id2 := r.Alloc(64, 1, 200)
	if r.Get(id2).Birth != 192 {
		t.Errorf("second object birth = %d, want 192", r.Get(id2).Birth)
	}
}

func TestLifespanMetric(t *testing.T) {
	// The paper (§II-A) measures lifespan as heap memory allocated to
	// *other* objects between an object's creation and its death: allocate
	// A (100B), then B (50B), then kill A — A's lifespan is exactly B's 50
	// bytes. An object killed immediately has lifespan 0.
	r := NewRegistry(4)
	a := r.Alloc(100, 0, 0)
	r.Alloc(50, 1, 10)
	r.Kill(a, 20)
	if got := r.Get(a).Lifespan(); got != 50 {
		t.Errorf("lifespan = %d, want 50 (B's bytes only)", got)
	}
	c := r.Alloc(32, 0, 30)
	r.Kill(c, 30)
	if got := r.Get(c).Lifespan(); got != 0 {
		t.Errorf("immediate-death lifespan = %d, want 0", got)
	}
}

func TestKillAccounting(t *testing.T) {
	r := NewRegistry(4)
	a := r.Alloc(100, 0, 0)
	b := r.Alloc(200, 0, 0)
	if r.LiveCount() != 2 || r.LiveBytes() != 300 {
		t.Fatalf("live %d/%d, want 2/300", r.LiveCount(), r.LiveBytes())
	}
	r.Kill(a, 5)
	if r.LiveCount() != 1 || r.LiveBytes() != 200 {
		t.Errorf("after kill live %d/%d, want 1/200", r.LiveCount(), r.LiveBytes())
	}
	if r.DeadCount() != 1 {
		t.Errorf("dead = %d, want 1", r.DeadCount())
	}
	r.Kill(b, 6)
	if r.LiveCount() != 0 || r.LiveBytes() != 0 {
		t.Errorf("final live %d/%d, want 0/0", r.LiveCount(), r.LiveBytes())
	}
}

func TestDoubleKillPanics(t *testing.T) {
	r := NewRegistry(1)
	id := r.Alloc(10, 0, 0)
	r.Kill(id, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double kill did not panic")
		}
	}()
	r.Kill(id, 2)
}

func TestZeroSizeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size alloc did not panic")
		}
	}()
	NewRegistry(1).Alloc(0, 0, 0)
}

func TestLifespanOfLivePanics(t *testing.T) {
	r := NewRegistry(1)
	id := r.Alloc(10, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Lifespan of live object did not panic")
		}
	}()
	_ = r.Get(id).Lifespan()
}

func TestKillAllLive(t *testing.T) {
	r := NewRegistry(8)
	for i := 0; i < 5; i++ {
		r.Alloc(100, 0, 0)
	}
	r.Kill(2, 1)
	r.KillAllLive(99)
	if r.LiveCount() != 0 {
		t.Errorf("live after KillAllLive = %d", r.LiveCount())
	}
	r.ForEach(func(id ID, o *Object) {
		if o.Live() {
			t.Errorf("object %d still live", id)
		}
	})
	if r.Get(4).DeathTime != 99 {
		t.Errorf("death time = %v, want 99", r.Get(4).DeathTime)
	}
}

func TestForEachOrder(t *testing.T) {
	r := NewRegistry(8)
	for i := 1; i <= 5; i++ {
		r.Alloc(int32(i*10), 0, 0)
	}
	var sizes []int32
	r.ForEach(func(id ID, o *Object) { sizes = append(sizes, o.Size) })
	for i, s := range sizes {
		if s != int32((i+1)*10) {
			t.Errorf("ForEach out of allocation order: %v", sizes)
		}
	}
}

func TestGenerationString(t *testing.T) {
	if Young.String() != "young" || Old.String() != "old" {
		t.Error("generation names wrong")
	}
}

// Property: the allocation clock equals the sum of all object sizes, and
// live + dead bytes always equals that clock.
func TestClockConservationProperty(t *testing.T) {
	f := func(sizes []uint16, killMask []bool) bool {
		r := NewRegistry(len(sizes))
		var ids []ID
		var sum int64
		for _, s := range sizes {
			size := int32(s%1000) + 1
			ids = append(ids, r.Alloc(size, 0, 0))
			sum += int64(size)
		}
		for i, id := range ids {
			if i < len(killMask) && killMask[i] {
				r.Kill(id, 1)
			}
		}
		if r.Clock() != sum {
			return false
		}
		liveBytes, deadBytes := int64(0), int64(0)
		r.ForEach(func(_ ID, o *Object) {
			if o.Live() {
				liveBytes += int64(o.Size)
			} else {
				deadBytes += int64(o.Size)
			}
		})
		return liveBytes == r.LiveBytes() && liveBytes+deadBytes == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: lifespans are never negative, and an object allocated last has
// lifespan exactly 0 when everything is retired together.
func TestLifespanNonNegativeProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		r := NewRegistry(len(sizes))
		for _, s := range sizes {
			r.Alloc(int32(s%512)+1, 0, 0)
		}
		r.KillAllLive(1)
		ok := true
		var lastLifespan int64 = -1
		r.ForEach(func(id ID, o *Object) {
			ls := o.Lifespan()
			if ls < 0 {
				ok = false
			}
			if int(id) == len(sizes)-1 {
				lastLifespan = ls
			}
		})
		if len(sizes) > 0 && lastLifespan != 0 {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForEachLive(t *testing.T) {
	r := NewRegistry(8)
	var ids []ID
	for i := 0; i < 6; i++ {
		ids = append(ids, r.Alloc(64, 0, 0))
	}
	r.Kill(ids[1], 0)
	r.Kill(ids[4], 0)

	var visited []ID
	r.ForEachLive(func(id ID, o *Object) {
		if !o.Live() {
			t.Errorf("ForEachLive visited dead object %d", id)
		}
		visited = append(visited, id)
	})
	want := []ID{ids[0], ids[2], ids[3], ids[5]}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v (allocation order)", visited, want)
		}
	}
}

// ForEachLive's early exit must tolerate fn killing the object it was
// handed — the end-of-run retirement pattern — and still visit every
// object that was live at call time exactly once.
func TestForEachLiveKillDuringIteration(t *testing.T) {
	r := NewRegistry(8)
	for i := 0; i < 5; i++ {
		r.Alloc(32, 0, 0)
	}
	n := 0
	r.ForEachLive(func(id ID, o *Object) {
		n++
		r.Kill(id, 7)
	})
	if n != 5 {
		t.Errorf("visited %d objects, want 5", n)
	}
	if r.LiveCount() != 0 {
		t.Errorf("LiveCount = %d after retiring all, want 0", r.LiveCount())
	}
}
