package gc

import (
	"errors"
	"testing"
	"testing/quick"

	"javasim/internal/heap"
	"javasim/internal/objmodel"
)

func newWorld(minHeapMB int64, compartments int) (*heap.Heap, *objmodel.Registry, *Collector) {
	h := heap.New(heap.Config{
		MinHeap: minHeapMB << 20, Factor: 3, TLABSize: 16 << 10,
		Compartments: compartments,
	})
	reg := objmodel.NewRegistry(1024)
	c := New(Config{Workers: 4}, h, reg)
	return h, reg, c
}

func TestDefaultWorkers(t *testing.T) {
	cases := []struct{ cores, want int }{
		{0, 1}, {1, 1}, {4, 4}, {8, 8}, {16, 13}, {48, 33},
	}
	for _, c := range cases {
		if got := DefaultWorkers(c.cores); got != c.want {
			t.Errorf("DefaultWorkers(%d) = %d, want %d", c.cores, got, c.want)
		}
	}
}

func TestMinorReclaimsDead(t *testing.T) {
	_, reg, c := newWorld(4, 1)
	var ids []objmodel.ID
	for i := 0; i < 100; i++ {
		id := reg.Alloc(512, 0, 0)
		c.OnAlloc(id, 0)
		ids = append(ids, id)
	}
	// Kill the first 60.
	for _, id := range ids[:60] {
		reg.Kill(id, 1)
	}
	p, err := c.CollectMinor(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReclaimedObjs != 60 {
		t.Errorf("reclaimed %d, want 60", p.ReclaimedObjs)
	}
	if p.ScannedLive != 40 {
		t.Errorf("scanned %d, want 40", p.ScannedLive)
	}
	if p.CopiedBytes != 40*512 {
		t.Errorf("copied %d, want %d", p.CopiedBytes, 40*512)
	}
	if c.YoungCount(0) != 40 {
		t.Errorf("young population %d after GC, want 40", c.YoungCount(0))
	}
	if p.Duration <= 0 {
		t.Error("non-positive pause duration")
	}
}

func TestAgingAndPromotion(t *testing.T) {
	_, reg, c := newWorld(4, 1)
	id := reg.Alloc(1000, 0, 0)
	c.OnAlloc(id, 0)
	threshold := int(c.Config().TenuringThreshold)
	// The object stays young until it has survived threshold collections.
	for i := 0; i < threshold-1; i++ {
		if _, err := c.CollectMinor(0, 0); err != nil {
			t.Fatal(err)
		}
		if got := reg.Get(id).Gen; got != objmodel.Young {
			t.Fatalf("promoted after %d collections, want %d", i+1, threshold)
		}
	}
	p, err := c.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Get(id).Gen != objmodel.Old {
		t.Error("object not promoted at tenuring threshold")
	}
	if p.PromotedBytes != 1000 {
		t.Errorf("promoted bytes %d, want 1000", p.PromotedBytes)
	}
	if c.OldCount() != 1 || c.YoungCount(0) != 0 {
		t.Errorf("populations young=%d old=%d", c.YoungCount(0), c.OldCount())
	}
}

func TestSurvivorOverflowPromotes(t *testing.T) {
	h, reg, c := newWorld(1, 1) // tiny heap: survivor space is small
	cap := h.SurvivorSize()
	// Allocate live objects totalling 3x survivor capacity.
	objSize := int32(1024)
	n := int(3 * cap / int64(objSize))
	for i := 0; i < n; i++ {
		id := reg.Alloc(objSize, 0, 0)
		c.OnAlloc(id, 0)
	}
	p, err := c.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.PromotedBytes == 0 {
		t.Error("no overflow promotion despite survivor pressure")
	}
	if p.CopiedBytes > cap {
		t.Errorf("survivor bytes %d exceed capacity %d", p.CopiedBytes, cap)
	}
}

func TestFullCollection(t *testing.T) {
	_, reg, c := newWorld(4, 1)
	// Build an old population: allocate, survive to promotion via repeated
	// minors.
	var ids []objmodel.ID
	for i := 0; i < 50; i++ {
		id := reg.Alloc(2048, 0, 0)
		c.OnAlloc(id, 0)
		ids = append(ids, id)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.CollectMinor(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if c.OldCount() != 50 {
		t.Fatalf("old population %d, want 50", c.OldCount())
	}
	// Kill half the old objects, plus allocate some fresh young ones.
	for _, id := range ids[:25] {
		reg.Kill(id, 1)
	}
	young := reg.Alloc(512, 0, 0)
	c.OnAlloc(young, 0)
	p, err := c.CollectFull(5000)
	if err != nil {
		t.Fatal(err)
	}
	if p.ReclaimedObjs != 25 {
		t.Errorf("full reclaimed %d, want 25", p.ReclaimedObjs)
	}
	// Young survivor was promoted by the full collection.
	if reg.Get(young).Gen != objmodel.Old {
		t.Error("live young object not promoted by full collection")
	}
	if c.YoungCount(0) != 0 {
		t.Error("young population not emptied by full collection")
	}
	if c.OldCount() != 26 {
		t.Errorf("old population %d, want 26", c.OldCount())
	}
	if p.Kind != Full || p.Compartment != -1 {
		t.Errorf("pause metadata %+v", p)
	}
}

func TestOldGenFullError(t *testing.T) {
	h, reg, c := newWorld(1, 1)
	// Fill old gen nearly to capacity via forced promotion, then check a
	// minor that cannot promote returns ErrOldGenFull.
	objSize := int32(4096)
	budget := h.OldSize() - h.OldSize()/16
	var allocated int64
	for allocated < budget {
		id := reg.Alloc(objSize, 0, 0)
		c.OnAlloc(id, 0)
		allocated += int64(objSize)
		// Tenure fast: age objects by repeated collection every batch.
		if allocated%(budget/4) < int64(objSize) {
			for i := 0; i < 4; i++ {
				if _, err := c.CollectMinor(0, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Now add another survivor-overflowing batch of live objects.
	extra := h.SurvivorSize()*2/int64(objSize) + h.OldSize()/16/int64(objSize) + 2
	for i := int64(0); i < extra; i++ {
		id := reg.Alloc(objSize, 0, 0)
		c.OnAlloc(id, 0)
	}
	_, err := c.CollectMinor(0, 0)
	if !errors.Is(err, heap.ErrOldGenFull) {
		t.Fatalf("err = %v, want ErrOldGenFull", err)
	}
	// After a full collection (everything is live, so this may itself be
	// tight), dead space must be reclaimed. Kill everything and verify
	// recovery.
	reg.KillAllLive(0)
	if _, err := c.CollectFull(0); err != nil {
		t.Fatal(err)
	}
	if h.OldUsed() != 0 {
		t.Errorf("old gen %d bytes after collecting all-dead heap", h.OldUsed())
	}
	if _, err := c.CollectMinor(0, 0); err != nil {
		t.Errorf("minor after recovery failed: %v", err)
	}
}

func TestPauseCostScalesWithSurvivors(t *testing.T) {
	_, regA, cA := newWorld(64, 1)
	_, regB, cB := newWorld(64, 1)
	// A: 1000 dead objects. B: 1000 live objects (more copying).
	for i := 0; i < 1000; i++ {
		idA := regA.Alloc(1024, 0, 0)
		cA.OnAlloc(idA, 0)
		regA.Kill(idA, 0)
		idB := regB.Alloc(1024, 0, 0)
		cB.OnAlloc(idB, 0)
	}
	pA, err := cA.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := cB.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pB.Duration <= pA.Duration {
		t.Errorf("live-heavy pause %v not longer than dead-heavy pause %v",
			pB.Duration, pA.Duration)
	}
}

func TestMoreWorkersShortenPauses(t *testing.T) {
	mk := func(workers int) Pause {
		h := heap.New(heap.Config{MinHeap: 64 << 20, Factor: 3})
		reg := objmodel.NewRegistry(1024)
		c := New(Config{Workers: workers}, h, reg)
		for i := 0; i < 2000; i++ {
			id := reg.Alloc(1024, 0, 0)
			c.OnAlloc(id, 0)
		}
		p, err := c.CollectMinor(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p8 := mk(1), mk(8)
	if p8.Duration >= p1.Duration {
		t.Errorf("8 workers (%v) not faster than 1 worker (%v)", p8.Duration, p1.Duration)
	}
	// But not linearly: the efficiency curve must cost something.
	ideal := p1.Duration / 8
	if p8.Duration <= ideal {
		t.Errorf("8 workers (%v) faster than ideal linear (%v) — efficiency model missing", p8.Duration, ideal)
	}
}

func TestCompartmentLocalCollection(t *testing.T) {
	_, reg, c := newWorld(16, 4)
	// Populate two compartments.
	a := reg.Alloc(1024, 0, 0)
	c.OnAlloc(a, 0)
	b := reg.Alloc(1024, 1, 0)
	c.OnAlloc(b, 1)
	p, err := c.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Compartment != 0 {
		t.Errorf("pause compartment = %d", p.Compartment)
	}
	// Compartment 1's object must be untouched: age 0, still young-listed.
	if reg.Get(b).Age != 0 {
		t.Error("compartment-local collection aged a foreign object")
	}
	if c.YoungCount(1) != 1 {
		t.Error("compartment 1 population disturbed")
	}
	if reg.Get(a).Age != 1 {
		t.Error("collected compartment's object not aged")
	}
}

func TestPauseBreakdown(t *testing.T) {
	_, reg, c := newWorld(8, 1)
	for i := 0; i < 500; i++ {
		id := reg.Alloc(1024, 0, 0)
		c.OnAlloc(id, 0)
	}
	p, err := c.CollectMinor(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Phases.Total() != p.Duration {
		t.Errorf("phase sum %v != duration %v", p.Phases.Total(), p.Duration)
	}
	if p.Phases.Setup != c.Config().FixedMinorPause {
		t.Errorf("setup phase %v, want fixed pause", p.Phases.Setup)
	}
	if p.Phases.Copy <= 0 || p.Phases.Scan <= 0 {
		t.Errorf("degenerate phases %+v with live survivors", p.Phases)
	}
	fp, err := c.CollectFull(0)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Phases.Total() != fp.Duration {
		t.Errorf("full phase sum %v != duration %v", fp.Phases.Total(), fp.Duration)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, reg, c := newWorld(8, 1)
	for i := 0; i < 10; i++ {
		id := reg.Alloc(256, 0, 0)
		c.OnAlloc(id, 0)
	}
	c.CollectMinor(0, 0)
	c.CollectFull(0)
	st := c.Stats()
	if st.MinorCount != 1 || st.FullCount != 1 {
		t.Errorf("counts %d/%d, want 1/1", st.MinorCount, st.FullCount)
	}
	if st.TotalTime() != st.MinorTime+st.FullTime {
		t.Error("TotalTime inconsistent")
	}
	if len(c.Pauses()) != 2 {
		t.Errorf("pauses %d, want 2", len(c.Pauses()))
	}
	if c.PauseHistogram().Total() != 2 {
		t.Error("pause histogram not fed")
	}
}

func TestNewPanicsWithoutWorkers(t *testing.T) {
	h := heap.New(heap.Config{MinHeap: 1 << 20})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Workers=0")
		}
	}()
	New(Config{}, h, objmodel.NewRegistry(1))
}

// Property: across random alloc/kill/collect sequences, the collector
// never loses a live object and never resurrects a dead one — the young and
// old populations always partition the live set after each collection
// round, and heap accounting matches registry truth.
func TestLivenessPartitionProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		h, reg, c := newWorld(32, 1)
		var live []objmodel.ID
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // allocate
				id := reg.Alloc(int32(op%200)+1, 0, 0)
				c.OnAlloc(id, 0)
				live = append(live, id)
			case 2: // kill one live object
				if len(live) > 0 {
					idx := int(op) % len(live)
					reg.Kill(live[idx], 0)
					live = append(live[:idx], live[idx+1:]...)
				}
			case 3: // collect
				if op%8 < 6 {
					if _, err := c.CollectMinor(0, 0); err != nil {
						if _, ferr := c.CollectFull(0); ferr != nil {
							return false
						}
						if _, rerr := c.CollectMinor(0, 0); rerr != nil {
							return false
						}
					}
				} else {
					if _, err := c.CollectFull(0); err != nil {
						return false
					}
				}
				// After any collection, tracked populations contain every
				// live object exactly once.
				seen := map[objmodel.ID]int{}
				for _, id := range c.young[0] {
					if reg.Get(id).Live() {
						seen[id]++
					}
				}
				for _, id := range c.old {
					if reg.Get(id).Live() {
						seen[id]++
					}
				}
				if len(seen) < len(live) {
					// Some live objects may still be tracked as "dead
					// pending" in young lists between collections, but all
					// live ones must be present.
					return false
				}
				for _, id := range live {
					if seen[id] != 1 {
						return false
					}
				}
				// Heap's old usage covers at least the live promoted bytes.
				var oldLive int64
				for _, id := range c.old {
					if o := reg.Get(id); o.Live() {
						oldLive += int64(o.Size)
					}
				}
				if h.OldUsed() < oldLive {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
