package gc

import (
	"testing"

	"javasim/internal/heap"
	"javasim/internal/objmodel"
)

// BenchmarkCollectMinor measures a minor collection over a mixed
// live/dead young population of 10k objects.
func BenchmarkCollectMinor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := heap.New(heap.Config{MinHeap: 64 << 20, Factor: 3})
		reg := objmodel.NewRegistry(10000)
		c := New(Config{Workers: 8}, h, reg)
		for j := 0; j < 10000; j++ {
			id := reg.Alloc(128, 0, 0)
			c.OnAlloc(id, 0)
			if j%3 != 0 {
				reg.Kill(id, 0)
			}
		}
		b.StartTimer()
		if _, err := c.CollectMinor(0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCPolicy measures the minor-collection hot path under every
// registered GC policy, so policy-dispatch overhead regressions are
// visible in the bench smoke.
func BenchmarkGCPolicy(b *testing.B) {
	for _, name := range PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, err := NewPolicy(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := heap.New(heap.Config{MinHeap: 64 << 20, Factor: 3})
				reg := objmodel.NewRegistry(10000)
				c := NewWithPolicy(p, Config{Workers: 8}, h, reg)
				for j := 0; j < 10000; j++ {
					id := reg.Alloc(128, 0, 0)
					c.OnAlloc(id, 0)
					if j%3 != 0 {
						reg.Kill(id, 0)
					}
				}
				b.StartTimer()
				if _, err := c.CollectMinor(0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCollectFull measures a full collection over a populated old
// generation.
func BenchmarkCollectFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := heap.New(heap.Config{MinHeap: 64 << 20, Factor: 3})
		reg := objmodel.NewRegistry(10000)
		c := New(Config{Workers: 8}, h, reg)
		for j := 0; j < 10000; j++ {
			id := reg.Alloc(256, 0, 0)
			c.OnAlloc(id, 0)
		}
		// Promote everything, then kill half.
		for k := 0; k < 3; k++ {
			if _, err := c.CollectMinor(0, 0); err != nil {
				b.Fatal(err)
			}
		}
		reg.ForEach(func(id objmodel.ID, o *objmodel.Object) {
			if id%2 == 0 && o.Live() {
				reg.Kill(id, 0)
			}
		})
		b.StartTimer()
		if _, err := c.CollectFull(0); err != nil {
			b.Fatal(err)
		}
	}
}
