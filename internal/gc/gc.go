// Package gc implements the stop-the-world throughput-oriented parallel
// collector the paper's JVM was configured with (HotSpot "Parallel
// Scavenge" + parallel mark-compact full collections).
//
// Minor collections copy live young objects: survivors move to a survivor
// space and age; objects older than the tenuring threshold — or overflowing
// the survivor space — are promoted to the old generation. Full collections
// mark and compact the entire heap. Pause durations come from a cost model
// over the live data actually processed, divided across parallel GC worker
// threads with a contention-limited efficiency curve, which is how real
// parallel collectors behave as worker counts grow.
//
// The generational hypothesis is exactly what the paper shows breaking
// down: longer object lifespans mean more nursery survivors, more copying
// per minor collection, faster old-generation fill, and more full
// collections (§III-B, Figure 2).
//
// The collection discipline itself is a pluggable Policy resolved from a
// string-keyed registry (see policy.go): "stw-serial" is the behavior
// described above, and "stw-parallel", "concurrent", and "compartment"
// swap in alternative cost models, concurrent old-generation collection,
// and NUMA-homed per-group heaps.
package gc

import (
	"fmt"

	"javasim/internal/heap"
	"javasim/internal/metrics"
	"javasim/internal/objmodel"
	"javasim/internal/sim"
)

// Config parameterizes the collector.
type Config struct {
	// Workers is the number of parallel GC threads. Zero selects the
	// HotSpot default for the given core count (see DefaultWorkers).
	Workers int
	// TenuringThreshold is the number of minor collections an object must
	// survive before promotion.
	TenuringThreshold uint8
	// CopyCostPerKB is the time to evacuate 1 KiB of live data with one
	// worker.
	CopyCostPerKB sim.Time
	// ScanCostPerObject is the per-live-object tracing overhead.
	ScanCostPerObject sim.Time
	// FixedMinorPause is the setup/teardown floor of a minor collection.
	FixedMinorPause sim.Time
	// FixedFullPause is the setup/teardown floor of a full collection.
	FixedFullPause sim.Time
	// EfficiencyAlpha shapes parallel efficiency: eff(w) = 1/(1+alpha*(w-1)).
	// Larger alpha means worker synchronization costs bite sooner.
	EfficiencyAlpha float64
	// CompactCostPerKB is the per-KiB cost of sliding live old-generation
	// data during a full collection.
	CompactCostPerKB sim.Time

	// Concurrent enables the mostly-concurrent old-generation collector
	// (CMS-style) instead of stop-the-world full collections: brief
	// initial-mark/remark pauses piggybacked on minor collections,
	// marking and sweeping on background threads that compete with
	// mutators for cores, no compaction (fragmentation accrues until a
	// fallback full collection).
	Concurrent bool
	// ConcurrentThreads is the background GC thread count; zero selects
	// max(1, Workers/4), HotSpot's ConcGCThreads heuristic.
	ConcurrentThreads int
	// TriggerRatio is the old-generation occupancy starting a concurrent
	// cycle; zero means 0.65.
	TriggerRatio float64
	// ConcMarkCostPerObject is the live-object scanning cost during
	// concurrent marking (slower than STW scanning: barrier overhead).
	ConcMarkCostPerObject sim.Time
	// SweepCostPerKB is the concurrent sweep cost over the old region.
	SweepCostPerKB sim.Time
	// InitialMarkPause and RemarkPause are the brief stop-the-world
	// pauses bracketing the concurrent phases.
	InitialMarkPause sim.Time
	RemarkPause      sim.Time
	// FragmentationRatio is the fraction of swept (freed) bytes lost to
	// fragmentation until the next compacting collection; zero means 0.25.
	FragmentationRatio float64
}

// WithDefaults fills zero fields with defaults calibrated against the
// paper's platform generation (2010-era Opteron: ~1 GB/s/thread evacuation
// bandwidth, tens-of-microsecond safepoint machinery).
func (c Config) WithDefaults() Config {
	if c.TenuringThreshold == 0 {
		c.TenuringThreshold = 2
	}
	if c.CopyCostPerKB == 0 {
		c.CopyCostPerKB = 1200 * sim.Nanosecond
	}
	if c.ScanCostPerObject == 0 {
		c.ScanCostPerObject = 60 * sim.Nanosecond
	}
	if c.FixedMinorPause == 0 {
		c.FixedMinorPause = 30 * sim.Microsecond
	}
	if c.FixedFullPause == 0 {
		c.FixedFullPause = 400 * sim.Microsecond
	}
	if c.EfficiencyAlpha == 0 {
		c.EfficiencyAlpha = 0.09
	}
	if c.CompactCostPerKB == 0 {
		c.CompactCostPerKB = 1500 * sim.Nanosecond
	}
	if c.ConcurrentThreads == 0 {
		c.ConcurrentThreads = c.Workers / 4
		if c.ConcurrentThreads < 1 {
			c.ConcurrentThreads = 1
		}
	}
	if c.TriggerRatio == 0 {
		c.TriggerRatio = 0.65
	}
	if c.ConcMarkCostPerObject == 0 {
		c.ConcMarkCostPerObject = 120 * sim.Nanosecond
	}
	if c.SweepCostPerKB == 0 {
		c.SweepCostPerKB = 400 * sim.Nanosecond
	}
	if c.InitialMarkPause == 0 {
		c.InitialMarkPause = 40 * sim.Microsecond
	}
	if c.RemarkPause == 0 {
		c.RemarkPause = 60 * sim.Microsecond
	}
	if c.FragmentationRatio == 0 {
		c.FragmentationRatio = 0.25
	}
	return c
}

// DefaultWorkers returns HotSpot's ParallelGCThreads heuristic for a
// machine with the given core count: all cores up to 8, then five eighths
// of the remainder.
func DefaultWorkers(cores int) int {
	if cores <= 8 {
		if cores < 1 {
			return 1
		}
		return cores
	}
	return 8 + (cores-8)*5/8
}

// Kind distinguishes collection types.
type Kind uint8

const (
	// Minor is a young-generation (scavenge) collection.
	Minor Kind = iota
	// Full is a whole-heap mark-compact collection.
	Full
	// InitialMark is the brief pause opening a concurrent cycle.
	InitialMark
	// Remark is the brief pause closing concurrent marking.
	Remark
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Minor:
		return "minor"
	case Full:
		return "full"
	case InitialMark:
		return "initial-mark"
	case Remark:
		return "remark"
	default:
		return "invalid"
	}
}

// Breakdown splits a pause into its phases, mirroring HotSpot's
// PrintGCDetails: fixed setup/teardown (safepoint arming, worker
// spin-up), live-object scanning, and evacuation/compaction of bytes.
type Breakdown struct {
	Setup sim.Time
	Scan  sim.Time
	Copy  sim.Time
}

// Total returns the sum of the phases.
func (b Breakdown) Total() sim.Time { return b.Setup + b.Scan + b.Copy }

// Pause describes one completed collection.
type Pause struct {
	Kind          Kind
	Start         sim.Time
	Duration      sim.Time
	Phases        Breakdown
	Compartment   int // -1 for full collections
	ScannedLive   int64
	CopiedBytes   int64 // survivor bytes evacuated (minor only)
	PromotedBytes int64
	ReclaimedObjs int64
	ReclaimedB    int64
}

// Stats aggregates collector activity over a run.
type Stats struct {
	MinorCount    int64
	FullCount     int64
	MinorTime     sim.Time
	FullTime      sim.Time
	ConcCycles    int64    // completed concurrent mark-sweep cycles
	ConcPauseTime sim.Time // initial-mark + remark stop-the-world time
	PromotedBytes int64
	CopiedBytes   int64
	ReclaimedB    int64
}

// TotalTime returns the combined stop-the-world pause time.
func (s Stats) TotalTime() sim.Time { return s.MinorTime + s.FullTime + s.ConcPauseTime }

// Collector tracks generation membership and executes collections.
type Collector struct {
	cfg    Config
	policy Policy
	heap   *heap.Heap
	reg    *objmodel.Registry

	// copyFactor scales each compartment's minor-collection evacuation
	// cost; nil means 1.0 everywhere. The compartment policy sets it to
	// the local-to-interleaved memory-latency ratio of each compartment's
	// NUMA home, modeling region placement.
	copyFactor []float64

	// young holds the IDs of young-generation objects per compartment;
	// old holds promoted objects. Dead entries are filtered at collection
	// time, exactly when a real collector would discover them.
	young [][]objmodel.ID
	old   []objmodel.ID

	// survBytes tracks each compartment's share of the survivor space.
	survBytes []int64

	stats     Stats
	pauses    []Pause
	pauseHist *metrics.Histogram
	onPromote func(objmodel.ID)
}

// New builds a collector over h and reg under the default stw-serial
// policy. The worker count must be set (use DefaultWorkers) before any
// collection runs.
func New(cfg Config, h *heap.Heap, reg *objmodel.Registry) *Collector {
	return NewWithPolicy(StwSerial(), cfg, h, reg)
}

// NewWithPolicy builds a collector whose pause cost model and heap
// discipline come from p (nil selects stw-serial).
func NewWithPolicy(p Policy, cfg Config, h *heap.Heap, reg *objmodel.Registry) *Collector {
	cfg = cfg.WithDefaults()
	if cfg.Workers < 1 {
		panic(fmt.Sprintf("gc: Workers = %d, need >= 1 (use DefaultWorkers)", cfg.Workers))
	}
	if p == nil {
		p = StwSerial()
	}
	return &Collector{
		cfg:       cfg,
		policy:    p,
		heap:      h,
		reg:       reg,
		young:     make([][]objmodel.ID, h.Compartments()),
		survBytes: make([]int64, h.Compartments()),
		pauseHist: metrics.NewHistogram("gc-pause-ns"),
	}
}

// Policy returns the collector's collection discipline.
func (c *Collector) Policy() Policy { return c.policy }

// SetCopyFactors installs per-compartment evacuation cost multipliers
// (len must equal the heap's compartment count). The VM computes them
// from the machine's NUMA latencies when a policy homes compartment
// regions on specific sockets; factors below 1 model local evacuation
// beating the interleaved baseline the cost model is calibrated for.
func (c *Collector) SetCopyFactors(factors []float64) {
	if factors != nil && len(factors) != c.heap.Compartments() {
		panic(fmt.Sprintf("gc: %d copy factors for %d compartments", len(factors), c.heap.Compartments()))
	}
	c.copyFactor = factors
}

// Config returns the defaulted configuration.
func (c *Collector) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Collector) Stats() Stats { return c.stats }

// Pauses returns every recorded pause in order.
func (c *Collector) Pauses() []Pause { return c.pauses }

// PauseHistogram returns the distribution of pause durations (ns).
func (c *Collector) PauseHistogram() *metrics.Histogram { return c.pauseHist }

// OnAlloc registers a freshly allocated object with its compartment's
// young generation. The VM calls this for every allocation.
func (c *Collector) OnAlloc(id objmodel.ID, comp int) {
	c.young[comp] = append(c.young[comp], id)
}

// OnAllocOld registers a pretenured object directly with the old
// generation; it will never be touched by a minor collection.
func (c *Collector) OnAllocOld(id objmodel.ID) {
	o := c.reg.Get(id)
	o.Gen = objmodel.Old
	c.old = append(c.old, id)
}

// SetPromoteHook installs a callback observing every object promotion
// (aging or survivor overflow, not full-collection evacuation). The VM's
// pretenuring learner uses it: promotion is the strongest long-lived
// signal available before an object dies.
func (c *Collector) SetPromoteHook(fn func(objmodel.ID)) { c.onPromote = fn }

// YoungCount returns the tracked young population of a compartment
// (including not-yet-collected dead objects).
func (c *Collector) YoungCount(comp int) int { return len(c.young[comp]) }

// OldCount returns the tracked old-generation population.
func (c *Collector) OldCount() int { return len(c.old) }

// parallelTime maps one phase's sequential work onto elapsed pause time
// through the policy's cost model (for stw-serial, the calibrated
// synchronization-limited efficiency curve).
func (c *Collector) parallelTime(sequential sim.Time) sim.Time {
	return c.policy.PhaseTime(c.cfg, sequential)
}

// CollectMinor runs a minor collection of compartment comp at virtual time
// now. It returns the pause, or heap.ErrOldGenFull when promotion cannot
// fit — the caller must run CollectFull and retry.
func (c *Collector) CollectMinor(comp int, now sim.Time) (Pause, error) {
	var (
		survivors     []objmodel.ID
		survivorBytes int64
		promotedBytes int64
		scanned       int64
		reclaimedObjs int64
		reclaimedB    int64
	)
	// Each compartment may fill only its share of the shared survivor
	// space, so the aggregate never overflows.
	survivorCap := c.heap.SurvivorSize() / int64(c.heap.Compartments())
	// First pass: liveness and aging. Objects are processed in allocation
	// order; overflow beyond the survivor space promotes regardless of age,
	// as in HotSpot.
	var promoted []objmodel.ID
	for _, id := range c.young[comp] {
		o := c.reg.Get(id)
		if !o.Live() {
			reclaimedObjs++
			reclaimedB += int64(o.Size)
			continue
		}
		scanned++
		o.Age++
		if o.Age >= c.cfg.TenuringThreshold || survivorBytes+int64(o.Size) > survivorCap {
			o.Gen = objmodel.Old
			promoted = append(promoted, id)
			promotedBytes += int64(o.Size)
			continue
		}
		survivors = append(survivors, id)
		survivorBytes += int64(o.Size)
	}
	if err := c.heap.CommitMinor(comp, survivorBytes, promotedBytes, c.survBytes[comp]); err != nil {
		// Roll back aging and generation flags so the retry after a full
		// collection observes consistent state.
		for _, id := range promoted {
			c.reg.Get(id).Gen = objmodel.Young
		}
		for _, id := range c.young[comp] {
			if o := c.reg.Get(id); o.Live() {
				o.Age--
			}
		}
		return Pause{}, err
	}
	c.survBytes[comp] = survivorBytes
	c.young[comp] = survivors
	c.old = append(c.old, promoted...)
	if c.onPromote != nil {
		for _, id := range promoted {
			c.onPromote(id)
		}
	}

	copied := survivorBytes + promotedBytes
	scanCost := sim.Time(scanned) * c.cfg.ScanCostPerObject
	copyCost := sim.Time(copied/1024) * c.cfg.CopyCostPerKB
	if c.copyFactor != nil {
		copyCost = sim.Time(float64(copyCost) * c.copyFactor[comp])
	}
	phases := Breakdown{
		Setup: c.cfg.FixedMinorPause,
		Scan:  c.parallelTime(scanCost),
		Copy:  c.parallelTime(copyCost),
	}
	pause := Pause{
		Kind:          Minor,
		Start:         now,
		Duration:      phases.Total(),
		Phases:        phases,
		Compartment:   comp,
		ScannedLive:   scanned,
		CopiedBytes:   survivorBytes,
		PromotedBytes: promotedBytes,
		ReclaimedObjs: reclaimedObjs,
		ReclaimedB:    reclaimedB,
	}
	c.record(pause)
	return pause, nil
}

// CollectFull runs a whole-heap mark-compact collection at virtual time
// now. Live young objects are promoted (HotSpot's full collection empties
// the young generation into old), dead objects of both generations are
// reclaimed, and the old generation is compacted.
func (c *Collector) CollectFull(now sim.Time) (Pause, error) {
	var (
		liveOldBytes  int64
		promotedBytes int64
		scanned       int64
		reclaimedObjs int64
		reclaimedB    int64
	)
	newOld := c.old[:0]
	for _, id := range c.old {
		o := c.reg.Get(id)
		if !o.Live() {
			reclaimedObjs++
			reclaimedB += int64(o.Size)
			continue
		}
		scanned++
		liveOldBytes += int64(o.Size)
		newOld = append(newOld, id)
	}
	c.old = newOld
	for comp := range c.young {
		for _, id := range c.young[comp] {
			o := c.reg.Get(id)
			if !o.Live() {
				reclaimedObjs++
				reclaimedB += int64(o.Size)
				continue
			}
			scanned++
			o.Gen = objmodel.Old
			o.Age = 0
			c.old = append(c.old, id)
			promotedBytes += int64(o.Size)
			liveOldBytes += int64(o.Size)
		}
		c.young[comp] = c.young[comp][:0]
		c.survBytes[comp] = 0
	}
	if err := c.heap.CommitFull(liveOldBytes); err != nil {
		return Pause{}, err // genuine OutOfMemoryError
	}
	markFixup := sim.Time(scanned) * c.cfg.ScanCostPerObject * 2 // mark + fixup passes
	compact := sim.Time(liveOldBytes/1024) * c.cfg.CompactCostPerKB
	phases := Breakdown{
		Setup: c.cfg.FixedFullPause,
		Scan:  c.parallelTime(markFixup),
		Copy:  c.parallelTime(compact),
	}
	pause := Pause{
		Kind:          Full,
		Start:         now,
		Duration:      phases.Total(),
		Phases:        phases,
		Compartment:   -1,
		ScannedLive:   scanned,
		PromotedBytes: promotedBytes,
		ReclaimedObjs: reclaimedObjs,
		ReclaimedB:    reclaimedB,
	}
	c.record(pause)
	return pause, nil
}

func (c *Collector) record(p Pause) {
	c.pauses = append(c.pauses, p)
	c.pauseHist.Add(int64(p.Duration))
	switch p.Kind {
	case Minor:
		c.stats.MinorCount++
		c.stats.MinorTime += p.Duration
	case Full:
		c.stats.FullCount++
		c.stats.FullTime += p.Duration
	case InitialMark, Remark:
		c.stats.ConcPauseTime += p.Duration
	}
	c.stats.PromotedBytes += p.PromotedBytes
	c.stats.CopiedBytes += p.CopiedBytes
	c.stats.ReclaimedB += p.ReclaimedB
}
