package gc

import (
	"fmt"

	"javasim/internal/registry"
	"javasim/internal/sim"
)

// The collection discipline — how stop-the-world work maps onto elapsed
// pause time, whether the old generation is collected concurrently, and
// how the heap is laid out over the machine — is a Policy. The seed
// behavior (HotSpot-style throughput collector, one shared eden) is the
// "stw-serial" policy; the alternatives model the GC-side mitigation
// space the paper's fixed JVM could not explore: an explicitly
// synchronized parallel collector whose coordination tax grows with the
// worker count ("stw-parallel", the CMSSW-style GC-bound collapse on
// many-core machines), a mostly-concurrent old-generation collector that
// trades pauses for mutator-overlap CPU ("concurrent"), and per-thread-
// group heap compartments with NUMA-aware region placement
// ("compartment", the paper's §IV suggestion 2 taken to its NUMA-homed
// conclusion). Policies are stateless value objects, but the registry
// still mints a fresh instance per resolution for symmetry with the lock
// and placement registries.

// Registry names of the built-in policies.
const (
	// PolicyStwSerial is the seed collector: stop-the-world minor and
	// full collections, one collection at a time, with the calibrated
	// parallel-phase cost model. The default; golden artifacts are
	// byte-identical under it.
	PolicyStwSerial = "stw-serial"
	// PolicyStwParallel splits collection work across the GC workers
	// with an explicit fork/join synchronization tax per parallel phase:
	// better per-worker efficiency than the calibrated default, but a
	// coordination cost that grows with the worker count.
	PolicyStwParallel = "stw-parallel"
	// PolicyConcurrent collects the old generation with a CMS-style
	// background cycle: brief initial-mark/remark pauses piggybacked on
	// minor collections, marking and sweeping on GC threads that compete
	// with mutators for cores (accounted as mutator-overlap CPU, not
	// pause time), fragmentation until a fallback full collection.
	PolicyConcurrent = "concurrent"
	// PolicyCompartment splits eden into per-thread-group compartments —
	// one per NUMA socket by default — homes each compartment's region on
	// its socket's memory node, and groups mutators onto the compartment
	// local to their cores, so minor collections evacuate over local
	// memory instead of the interleaved average.
	PolicyCompartment = "compartment"
)

// DefaultParallelAlpha is the stw-parallel policy's efficiency-curve
// shape: lower than the calibrated throughput default (0.09), so the
// per-worker division scales better before its synchronization tax bites.
const DefaultParallelAlpha = 0.02

// DefaultSyncTax is the stw-parallel policy's per-worker fork/join cost,
// charged once per parallel phase: worker spin-up, termination detection,
// and work-stealing balance barriers.
const DefaultSyncTax = 3 * sim.Microsecond

// LayoutRequest carries the run shape a policy lays the heap out for.
type LayoutRequest struct {
	// Compartments is the compartment count the run's configuration
	// requested: 0 means unset (the policy may pick a default), 1 an
	// explicit single shared eden.
	Compartments int
	// Cores is the enabled core count.
	Cores int
	// Sockets is the number of NUMA sockets the enabled cores span.
	Sockets int
	// CoresPerSocket is the machine's cores-per-socket count.
	CoresPerSocket int
}

// Layout is the heap shaping a policy chose for one run.
type Layout struct {
	// Compartments is the eden slice count the heap is built with.
	Compartments int
	// HomeSockets, when non-nil, is the NUMA home socket of each
	// compartment's region (len == Compartments). Nil means the heap is
	// interleaved across nodes with no compartment affinity — the seed
	// behavior.
	HomeSockets []int
}

// Policy is the collection discipline of one run. Implementations run
// inside the single-threaded simulation and must be deterministic.
type Policy interface {
	// Name returns the discipline's canonical name (for the built-ins,
	// their registry name). A tuned variant registered under a custom key
	// still reports its family name here — the name a run actually
	// selected travels in the config string and vm.Result.GCPolicy.
	Name() string
	// PhaseTime maps one stop-the-world phase's sequential work (scan or
	// evacuation cost with a single worker) onto elapsed pause time given
	// the collector's configured worker pool.
	PhaseTime(cfg Config, sequential sim.Time) sim.Time
	// ConcurrentOld reports whether the old generation is collected by a
	// background concurrent cycle instead of stop-the-world full
	// collections.
	ConcurrentOld() bool
	// Layout resolves the heap shaping — compartment count and per-
	// compartment NUMA homes — before the VM assembles.
	Layout(req LayoutRequest) Layout
}

// --- Registry ----------------------------------------------------------

var policyRegistry = registry.New[Policy]("gc policy")

func init() {
	policyRegistry.MustRegister(PolicyStwSerial, func() Policy { return StwSerial() })
	policyRegistry.MustRegister(PolicyStwParallel, func() Policy {
		return StwParallel(DefaultParallelAlpha, DefaultSyncTax)
	})
	policyRegistry.MustRegister(PolicyConcurrent, func() Policy { return Concurrent() })
	policyRegistry.MustRegister(PolicyCompartment, func() Policy { return Compartment(0) })
}

// RegisterPolicy adds a policy factory to the registry under name. Names
// are unique; registering an existing name (including the built-ins) is
// an error.
func RegisterPolicy(name string, factory func() Policy) error {
	if err := policyRegistry.Register(name, factory); err != nil {
		return fmt.Errorf("gc: %w", err)
	}
	return nil
}

// NewPolicy builds a fresh instance of the named policy. The empty name
// selects the default stw-serial discipline.
func NewPolicy(name string) (Policy, error) {
	if name == "" {
		name = PolicyStwSerial
	}
	p, err := policyRegistry.New(name)
	if err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	return p, nil
}

// KnownPolicy reports whether name resolves in the registry (the empty
// name resolves to stw-serial).
func KnownPolicy(name string) bool {
	return name == "" || policyRegistry.Known(name)
}

// ValidatePolicy returns the canonical unknown-name error for a policy
// name that does not resolve, or nil — the one error every configuration
// layer (plans, vm config, CLI) reports, with the same prefix NewPolicy
// uses.
func ValidatePolicy(name string) error {
	if KnownPolicy(name) {
		return nil
	}
	_, err := NewPolicy(name)
	return err
}

// PolicyNames returns every registered policy name in registration order:
// the four built-ins, then user registrations.
func PolicyNames() []string { return policyRegistry.Names() }

// --- stw-serial --------------------------------------------------------

// StwSerial returns the default discipline: the seed's stop-the-world
// throughput collector with the calibrated contention-limited efficiency
// curve eff(w) = 1/(1+alpha*(w-1)).
func StwSerial() Policy { return stwSerialPolicy{} }

type stwSerialPolicy struct{}

func (stwSerialPolicy) Name() string        { return PolicyStwSerial }
func (stwSerialPolicy) ConcurrentOld() bool { return false }

func (stwSerialPolicy) PhaseTime(cfg Config, sequential sim.Time) sim.Time {
	w := float64(cfg.Workers)
	eff := 1 / (1 + cfg.EfficiencyAlpha*(w-1))
	return sim.Time(float64(sequential) / (w * eff))
}

func (stwSerialPolicy) Layout(req LayoutRequest) Layout {
	return Layout{Compartments: req.Compartments}
}

// --- stw-parallel ------------------------------------------------------

// StwParallel returns a stop-the-world discipline with an explicit
// fork/join model: work divides across the workers under its own
// efficiency curve (alpha; <= 0 selects DefaultParallelAlpha), and every
// parallel phase pays syncTax per extra worker (<= 0 selects
// DefaultSyncTax) for spin-up, termination detection, and balance
// barriers. Small collections are dominated by the tax — pause time
// *grows* with the worker count, the GC-bound scaling collapse CMSSW
// reports on many-core machines — while large collections benefit from
// the better efficiency curve.
func StwParallel(alpha float64, syncTax sim.Time) Policy {
	if alpha <= 0 {
		alpha = DefaultParallelAlpha
	}
	if syncTax <= 0 {
		syncTax = DefaultSyncTax
	}
	return &stwParallelPolicy{alpha: alpha, syncTax: syncTax}
}

type stwParallelPolicy struct {
	alpha   float64
	syncTax sim.Time
}

func (p *stwParallelPolicy) Name() string        { return PolicyStwParallel }
func (p *stwParallelPolicy) ConcurrentOld() bool { return false }

func (p *stwParallelPolicy) PhaseTime(cfg Config, sequential sim.Time) sim.Time {
	w := float64(cfg.Workers)
	eff := 1 / (1 + p.alpha*(w-1))
	return sim.Time(float64(sequential)/(w*eff)) + p.syncTax*sim.Time(cfg.Workers-1)
}

func (p *stwParallelPolicy) Layout(req LayoutRequest) Layout {
	return Layout{Compartments: req.Compartments}
}

// --- concurrent --------------------------------------------------------

// Concurrent returns the mostly-concurrent discipline: minor collections
// stay stop-the-world under the calibrated cost model, while the old
// generation is marked and swept by background GC threads whose CPU time
// is accounted as mutator-overlap (vm.Result.ConcGCCPUTime), bracketed by
// brief initial-mark/remark pauses. Collector-level knobs (trigger ratio,
// concurrent thread count, mark/sweep costs) stay in Config.
func Concurrent() Policy { return concurrentPolicy{} }

type concurrentPolicy struct{}

func (concurrentPolicy) Name() string        { return PolicyConcurrent }
func (concurrentPolicy) ConcurrentOld() bool { return true }

func (concurrentPolicy) PhaseTime(cfg Config, sequential sim.Time) sim.Time {
	return stwSerialPolicy{}.PhaseTime(cfg, sequential)
}

func (concurrentPolicy) Layout(req LayoutRequest) Layout {
	return Layout{Compartments: req.Compartments}
}

// --- compartment -------------------------------------------------------

// Compartment returns the per-thread-group heap discipline: eden splits
// into groups compartments (<= 0 selects one per NUMA socket the enabled
// cores span), each compartment's region is homed on one socket's memory
// node, and the VM groups mutators onto the compartment local to their
// cores. Minor collections then evacuate over local memory — the
// collector's copy phase is scaled by the local-to-interleaved latency
// ratio — and only stop the owning group, the §IV suggestion-2 pause
// isolation. An explicit vm.Config.Compartments count overrides groups.
func Compartment(groups int) Policy { return &compartmentPolicy{groups: groups} }

type compartmentPolicy struct {
	groups int
}

func (p *compartmentPolicy) Name() string        { return PolicyCompartment }
func (p *compartmentPolicy) ConcurrentOld() bool { return false }

func (p *compartmentPolicy) PhaseTime(cfg Config, sequential sim.Time) sim.Time {
	return stwSerialPolicy{}.PhaseTime(cfg, sequential)
}

func (p *compartmentPolicy) Layout(req LayoutRequest) Layout {
	// An explicit request (including 1: the single shared eden) wins;
	// only an unset count falls back to the tuned group count, then to
	// one compartment per spanned socket.
	comps := req.Compartments
	if comps == 0 {
		comps = p.groups
	}
	if comps <= 0 {
		comps = req.Sockets
	}
	if comps < 1 {
		comps = 1
	}
	homes := make([]int, comps)
	sockets := req.Sockets
	if sockets < 1 {
		sockets = 1
	}
	for c := range homes {
		homes[c] = c % sockets
	}
	return Layout{Compartments: comps, HomeSockets: homes}
}
