package gc

import (
	"testing"

	"javasim/internal/heap"
	"javasim/internal/objmodel"
)

func TestOldLiveCountAndMarkWork(t *testing.T) {
	_, reg, c := newWorld(8, 1)
	var ids []objmodel.ID
	for i := 0; i < 40; i++ {
		id := reg.Alloc(1024, 0, 0)
		c.OnAlloc(id, 0)
		ids = append(ids, id)
	}
	// Promote everything via repeated minors.
	for i := 0; i < int(c.Config().TenuringThreshold); i++ {
		if _, err := c.CollectMinor(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.OldLiveCount(); got != 40 {
		t.Fatalf("old live = %d, want 40", got)
	}
	reg.Kill(ids[0], 0)
	reg.Kill(ids[1], 0)
	if got := c.OldLiveCount(); got != 38 {
		t.Errorf("old live after kills = %d, want 38", got)
	}
	if c.MarkWork(38) != 38*c.Config().ConcMarkCostPerObject {
		t.Error("mark work miscomputed")
	}
	if c.SweepWork() <= 0 {
		t.Error("sweep work not positive")
	}
}

func TestSweepOldReclaimsWithFragmentation(t *testing.T) {
	h, reg, c := newWorld(8, 1)
	var ids []objmodel.ID
	for i := 0; i < 100; i++ {
		id := reg.Alloc(2048, 0, 0)
		c.OnAlloc(id, 0)
		ids = append(ids, id)
	}
	for i := 0; i < int(c.Config().TenuringThreshold); i++ {
		if _, err := c.CollectMinor(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids[:60] {
		reg.Kill(id, 0)
	}
	oldBefore := h.OldUsed()
	res := c.SweepOld(0)
	if res.ReclaimedObjs != 60 || res.ReclaimedB != 60*2048 {
		t.Errorf("reclaimed %d objs / %d B, want 60 / %d", res.ReclaimedObjs, res.ReclaimedB, 60*2048)
	}
	if res.LiveOldBytes != 40*2048 {
		t.Errorf("live %d, want %d", res.LiveOldBytes, 40*2048)
	}
	wantFrag := int64(float64(res.ReclaimedB) * c.Config().FragmentationRatio)
	if res.FragAdded != wantFrag {
		t.Errorf("frag %d, want %d", res.FragAdded, wantFrag)
	}
	if h.Fragmentation() != wantFrag {
		t.Errorf("heap frag %d, want %d", h.Fragmentation(), wantFrag)
	}
	// Occupancy dropped, but by less than the reclaimed bytes (the
	// fragmentation tax).
	if h.OldUsed() >= oldBefore {
		t.Error("sweep did not reduce old occupancy")
	}
	if oldBefore-h.OldUsed() >= res.ReclaimedB {
		t.Error("sweep reclaimed without fragmentation tax")
	}
	if c.OldCount() != 40 {
		t.Errorf("old population %d after sweep, want 40", c.OldCount())
	}
	if c.Stats().ConcCycles != 1 {
		t.Error("cycle not counted")
	}
	// A subsequent full collection compacts fragmentation away.
	if _, err := c.CollectFull(0); err != nil {
		t.Fatal(err)
	}
	if h.Fragmentation() != 0 {
		t.Error("full collection did not reset fragmentation")
	}
}

func TestInitialMarkRemarkPauses(t *testing.T) {
	_, _, c := newWorld(4, 1)
	im := c.InitialMark(100)
	if im.Kind != InitialMark || im.Duration != c.Config().InitialMarkPause {
		t.Errorf("initial mark pause %+v", im)
	}
	rm := c.Remark(200)
	if rm.Kind != Remark || rm.Duration != c.Config().RemarkPause {
		t.Errorf("remark pause %+v", rm)
	}
	st := c.Stats()
	if st.ConcPauseTime != im.Duration+rm.Duration {
		t.Errorf("conc pause time %v", st.ConcPauseTime)
	}
	if st.TotalTime() != st.ConcPauseTime {
		t.Error("TotalTime must include concurrent pauses")
	}
	if len(c.Pauses()) != 2 {
		t.Error("pauses not recorded")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Minor: "minor", Full: "full",
		InitialMark: "initial-mark", Remark: "remark",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFragmentationCap(t *testing.T) {
	h := heap.New(heap.Config{MinHeap: 1 << 20, Factor: 3})
	// Sweep huge fragmentation repeatedly; it must cap at 30% of old gen.
	for i := 0; i < 10; i++ {
		if err := h.CommitSweep(0, h.OldSize()); err != nil {
			t.Fatal(err)
		}
	}
	if h.Fragmentation() != h.OldSize()*3/10 {
		t.Errorf("fragmentation %d, want cap %d", h.Fragmentation(), h.OldSize()*3/10)
	}
	if err := h.CommitSweep(-1, 0); err == nil {
		t.Error("negative live bytes accepted")
	}
}
