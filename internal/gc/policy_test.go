package gc

import (
	"strings"
	"sync"
	"testing"

	"javasim/internal/heap"
	"javasim/internal/objmodel"
	"javasim/internal/sim"
)

// TestPolicyRegistry pins the registry contract: the four built-ins in
// registration order, unknown names rejected with the known set named,
// duplicates (including the built-ins) rejected, empty name resolving to
// the default.
func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	if len(names) < 4 {
		t.Fatalf("PolicyNames() = %v, want at least the four built-ins", names)
	}
	want := []string{PolicyStwSerial, PolicyStwParallel, PolicyConcurrent, PolicyCompartment}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("PolicyNames()[%d] = %q, want %q", i, names[i], w)
		}
	}

	if _, err := NewPolicy("no-such-gc"); err == nil {
		t.Error("unknown policy resolved")
	} else if !strings.Contains(err.Error(), "known:") || !strings.Contains(err.Error(), PolicyStwSerial) {
		t.Errorf("unknown-name error %q does not list the known set", err)
	}
	if err := ValidatePolicy("no-such-gc"); err == nil {
		t.Error("unknown policy validated")
	}
	if err := ValidatePolicy(""); err != nil {
		t.Errorf("empty name rejected: %v", err)
	}

	p, err := NewPolicy("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != PolicyStwSerial {
		t.Errorf("empty name resolved to %q, want stw-serial", p.Name())
	}

	if err := RegisterPolicy(PolicyConcurrent, func() Policy { return Concurrent() }); err == nil {
		t.Error("duplicate built-in registration succeeded")
	}
	if err := RegisterPolicy("", func() Policy { return StwSerial() }); err == nil {
		t.Error("empty-name registration succeeded")
	}
}

// TestPolicyRegistryConcurrentAccess hammers resolution and enumeration
// from many goroutines so the race detector watches the registry.
func TestPolicyRegistryConcurrentAccess(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				for _, name := range PolicyNames() {
					if _, err := NewPolicy(name); err != nil {
						t.Error(err)
					}
				}
				_ = KnownPolicy("no-such-gc")
			}
		}()
	}
	wg.Wait()
}

// TestStwSerialMatchesSeedCostModel pins the default policy's phase math
// to the seed formula: sequential / (w * eff), eff = 1/(1+alpha*(w-1)).
// The golden artifacts depend on this being bit-exact.
func TestStwSerialMatchesSeedCostModel(t *testing.T) {
	cfg := Config{Workers: 16}.WithDefaults()
	p := StwSerial()
	for _, seq := range []sim.Time{0, 1000, 123456, 7 * sim.Millisecond} {
		w := float64(cfg.Workers)
		eff := 1 / (1 + cfg.EfficiencyAlpha*(w-1))
		want := sim.Time(float64(seq) / (w * eff))
		if got := p.PhaseTime(cfg, seq); got != want {
			t.Errorf("PhaseTime(%v) = %v, want %v", seq, got, want)
		}
	}
	if p.ConcurrentOld() {
		t.Error("stw-serial reports a concurrent old generation")
	}
	if l := p.Layout(LayoutRequest{Compartments: 3, Cores: 8, Sockets: 1}); l.Compartments != 3 || l.HomeSockets != nil {
		t.Errorf("stw-serial layout = %+v, want passthrough", l)
	}
}

// TestStwParallelTaxGrowsWithWorkers checks the stw-parallel signature:
// for small collections the per-worker synchronization tax dominates, so
// pause time grows as workers are added — the GC-bound scaling collapse.
func TestStwParallelTaxGrowsWithWorkers(t *testing.T) {
	p := StwParallel(0, 0) // defaults
	seq := 50 * sim.Microsecond
	prev := sim.Time(-1)
	grewSomewhere := false
	for _, w := range []int{1, 4, 8, 16, 33} {
		cfg := Config{Workers: w}.WithDefaults()
		got := p.PhaseTime(cfg, seq)
		if prev >= 0 && got > prev {
			grewSomewhere = true
		}
		prev = got
	}
	if !grewSomewhere {
		t.Error("small-collection pause never grew with the worker count — no synchronization tax")
	}
	// A huge collection still benefits from more workers.
	big := 50 * sim.Millisecond
	one := p.PhaseTime(Config{Workers: 1}.WithDefaults(), big)
	many := p.PhaseTime(Config{Workers: 16}.WithDefaults(), big)
	if many >= one {
		t.Errorf("large collection: %v with 16 workers >= %v with 1", many, one)
	}
}

// TestCompartmentLayout checks the compartment policy's heap shaping:
// one compartment per spanned socket by default, explicit requests
// honored, homes cycling over the sockets.
func TestCompartmentLayout(t *testing.T) {
	p := Compartment(0)
	l := p.Layout(LayoutRequest{Compartments: 0, Cores: 48, Sockets: 4, CoresPerSocket: 12})
	if l.Compartments != 4 {
		t.Errorf("default layout has %d compartments, want one per socket (4)", l.Compartments)
	}
	if len(l.HomeSockets) != 4 {
		t.Fatalf("home sockets = %v", l.HomeSockets)
	}
	for c, s := range l.HomeSockets {
		if s != c {
			t.Errorf("compartment %d homed on socket %d, want %d", c, s, c)
		}
	}

	l = p.Layout(LayoutRequest{Compartments: 6, Cores: 48, Sockets: 4, CoresPerSocket: 12})
	if l.Compartments != 6 {
		t.Errorf("explicit request resolved to %d compartments, want 6", l.Compartments)
	}
	for c, s := range l.HomeSockets {
		if s != c%4 {
			t.Errorf("compartment %d homed on socket %d, want %d", c, s, c%4)
		}
	}

	// An explicit 1 is a request for the single shared eden, not unset.
	l = p.Layout(LayoutRequest{Compartments: 1, Cores: 48, Sockets: 4, CoresPerSocket: 12})
	if l.Compartments != 1 {
		t.Errorf("explicit Compartments=1 resolved to %d compartments", l.Compartments)
	}

	// A single-socket run degenerates to one compartment, home socket 0.
	l = p.Layout(LayoutRequest{Compartments: 0, Cores: 8, Sockets: 1, CoresPerSocket: 12})
	if l.Compartments != 1 || len(l.HomeSockets) != 1 || l.HomeSockets[0] != 0 {
		t.Errorf("single-socket layout = %+v", l)
	}

	// Tuned group count wins over the socket default (but not over an
	// explicit request).
	if l := Compartment(3).Layout(LayoutRequest{Compartments: 0, Sockets: 4}); l.Compartments != 3 {
		t.Errorf("tuned Compartment(3) laid out %d compartments", l.Compartments)
	}
}

// TestCopyFactorsScaleMinorCopyPhase checks that SetCopyFactors scales
// exactly the evacuation phase of a minor collection and nothing else.
func TestCopyFactorsScaleMinorCopyPhase(t *testing.T) {
	build := func(factors []float64) (*Collector, Pause) {
		h := heap.New(heap.Config{MinHeap: 64 << 20, Factor: 3})
		reg := objmodel.NewRegistry(4096)
		c := New(Config{Workers: 8}, h, reg)
		c.SetCopyFactors(factors)
		for j := 0; j < 4096; j++ {
			id := reg.Alloc(512, 0, 0)
			c.OnAlloc(id, 0)
		}
		p, err := c.CollectMinor(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c, p
	}
	_, base := build(nil)
	_, scaled := build([]float64{0.5})
	if scaled.Phases.Copy >= base.Phases.Copy {
		t.Errorf("copy phase %v not scaled below baseline %v", scaled.Phases.Copy, base.Phases.Copy)
	}
	if scaled.Phases.Scan != base.Phases.Scan || scaled.Phases.Setup != base.Phases.Setup {
		t.Error("copy factor leaked into scan or setup phases")
	}

	defer func() {
		if recover() == nil {
			t.Error("mismatched factor length did not panic")
		}
	}()
	c, _ := build(nil)
	c.SetCopyFactors([]float64{1, 1})
}
