package gc

import (
	"javasim/internal/sim"
)

// Concurrent-collection operations (CMS-style). The cycle state machine
// lives in the VM — it owns the scheduler threads that perform the
// concurrent work — while the collector provides the mark/sweep mechanics
// and the brief bracketing pauses.

// OldLiveCount returns the number of live old-generation objects: the
// concurrent marking workload at cycle start. Objects promoted after the
// count are floating garbage for this cycle, as in a real
// snapshot-at-the-beginning collector.
func (c *Collector) OldLiveCount() int64 {
	var n int64
	for _, id := range c.old {
		if c.reg.Get(id).Live() {
			n++
		}
	}
	return n
}

// MarkWork returns the total CPU time concurrent marking needs for the
// given live-object count, before division across concurrent GC threads.
func (c *Collector) MarkWork(liveObjects int64) sim.Time {
	return sim.Time(liveObjects) * c.cfg.ConcMarkCostPerObject
}

// SweepWork returns the total CPU time a concurrent sweep over the old
// region needs.
func (c *Collector) SweepWork() sim.Time {
	return sim.Time(c.heap.OldSize()/1024) * c.cfg.SweepCostPerKB
}

// InitialMark records the brief stop-the-world pause that begins a
// concurrent cycle. The caller adds the returned duration to the current
// stop-the-world window.
func (c *Collector) InitialMark(now sim.Time) Pause {
	p := Pause{
		Kind:        InitialMark,
		Start:       now,
		Duration:    c.cfg.InitialMarkPause,
		Phases:      Breakdown{Setup: c.cfg.InitialMarkPause},
		Compartment: -1,
	}
	c.record(p)
	return p
}

// Remark records the brief stop-the-world pause that closes concurrent
// marking.
func (c *Collector) Remark(now sim.Time) Pause {
	p := Pause{
		Kind:        Remark,
		Start:       now,
		Duration:    c.cfg.RemarkPause,
		Phases:      Breakdown{Setup: c.cfg.RemarkPause},
		Compartment: -1,
	}
	c.record(p)
	return p
}

// SweepResult summarizes a completed concurrent sweep.
type SweepResult struct {
	ReclaimedObjs int64
	ReclaimedB    int64
	LiveOldBytes  int64
	FragAdded     int64
}

// SweepOld reclaims dead old-generation objects in place — no compaction,
// so FragmentationRatio of the freed space is lost until the next full
// collection. It never fails: sweeping only shrinks occupancy.
func (c *Collector) SweepOld(now sim.Time) SweepResult {
	var res SweepResult
	newOld := c.old[:0]
	for _, id := range c.old {
		o := c.reg.Get(id)
		if !o.Live() {
			res.ReclaimedObjs++
			res.ReclaimedB += int64(o.Size)
			continue
		}
		res.LiveOldBytes += int64(o.Size)
		newOld = append(newOld, id)
	}
	c.old = newOld
	res.FragAdded = int64(float64(res.ReclaimedB) * c.cfg.FragmentationRatio)
	if err := c.heap.CommitSweep(res.LiveOldBytes, res.FragAdded); err != nil {
		// Sweeping with non-negative inputs cannot fail; a failure here is
		// a programming error in the collector.
		panic(err)
	}
	c.stats.ConcCycles++
	c.stats.ReclaimedB += res.ReclaimedB
	return res
}
