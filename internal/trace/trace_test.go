package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"javasim/internal/sim"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: ThreadStart, Time: 0, Thread: 0},
		{Kind: Alloc, Time: 100, Thread: 0, Object: 1, Size: 128, Clock: 128},
		{Kind: Alloc, Time: 150, Thread: 1, Object: 2, Size: 64, Clock: 192},
		{Kind: Death, Time: 200, Thread: 0, Object: 1, Clock: 192},
		{Kind: GCStart, Time: 300, Arg: 0},
		{Kind: GCEnd, Time: 301, Arg: 1500},
		{Kind: Death, Time: 400, Thread: 1, Object: 2, Clock: 192},
		{Kind: ThreadEnd, Time: 500, Thread: 0},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := sampleEvents()
	for _, ev := range events {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(events)) {
		t.Errorf("count = %d, want %d", w.Count(), len(events))
	}
	r := NewReader(&buf)
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Errorf("event %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("expected clean EOF, got %v", err)
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Alloc, Time: 100})
	w.Emit(Event{Kind: Alloc, Time: 50})
	if w.Err() == nil {
		t.Error("out-of-order event accepted")
	}
	if err := w.Flush(); err == nil {
		t.Error("Flush did not report the sticky error")
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTATRACEFILE")))
	if _, err := r.Read(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range sampleEvents() {
		w.Emit(ev)
	}
	w.Flush()
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-3]))
	var err error
	for err == nil {
		_, err = r.Read()
	}
	if errors.Is(err, io.EOF) {
		t.Error("truncated stream reported clean EOF")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want ErrUnexpectedEOF wrap", err)
	}
}

func TestMemorySink(t *testing.T) {
	var m MemorySink
	for _, ev := range sampleEvents() {
		m.Emit(ev)
	}
	if len(m.Events) != len(sampleEvents()) {
		t.Errorf("sink captured %d events", len(m.Events))
	}
}

func TestAnalyze(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, ev := range sampleEvents() {
		w.Emit(ev)
	}
	w.Flush()
	a, err := Analyze(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if a.Allocs != 2 || a.Deaths != 2 || a.GCs != 1 {
		t.Errorf("analysis %+v", a)
	}
	if a.Leaked != 0 {
		t.Errorf("leaked = %d, want 0", a.Leaked)
	}
	// Object 1: born at clock 128, died at 192 → lifespan 64.
	// Object 2: born at 192, died at 192 → lifespan 0.
	if a.Lifespans.Total() != 2 {
		t.Fatalf("lifespan samples = %d", a.Lifespans.Total())
	}
	if a.Lifespans.Max() != 64 || a.Lifespans.Min() != 0 {
		t.Errorf("lifespan min/max = %d/%d, want 0/64", a.Lifespans.Min(), a.Lifespans.Max())
	}
}

func TestAnalyzeLeaked(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Alloc, Time: 1, Object: 7, Size: 10, Clock: 10})
	w.Flush()
	a, err := Analyze(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if a.Leaked != 1 {
		t.Errorf("leaked = %d, want 1", a.Leaked)
	}
}

func TestAnalyzeUnknownDeath(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Death, Time: 1, Object: 9, Clock: 0})
	w.Flush()
	if _, err := Analyze(NewReader(&buf)); err == nil {
		t.Error("death of unknown object accepted")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Alloc: "alloc", Death: "death", GCStart: "gc-start",
		GCEnd: "gc-end", ThreadStart: "thread-start", ThreadEnd: "thread-end",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// Property: any monotone-time event sequence round-trips identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var events []Event
		tm := sim.Time(0)
		clock := int64(0)
		for i, v := range raw {
			tm += sim.Time(v % 1000)
			clock += int64(v % 512)
			events = append(events, Event{
				Kind:   Kind(v % uint32(numKinds)),
				Time:   tm,
				Thread: int32(v % 64),
				Object: uint32(i),
				Size:   int32(v % 4096),
				Clock:  clock,
				Arg:    int64(v),
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, ev := range events {
			w.Emit(ev)
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, want := range events {
			got, err := r.Read()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.Read()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: analysis lifespans are exactly death.Clock - alloc.Clock for
// every paired object.
func TestAnalyzeLifespanProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		clock := int64(0)
		tm := sim.Time(0)
		var want []int64
		for i, g := range gaps {
			tm++
			clock += 100
			birth := clock
			w.Emit(Event{Kind: Alloc, Time: tm, Object: uint32(i), Size: 100, Clock: clock})
			tm++
			clock += int64(g)
			w.Emit(Event{Kind: Death, Time: tm, Object: uint32(i), Clock: clock})
			want = append(want, clock-birth)
		}
		if w.Flush() != nil {
			return false
		}
		a, err := Analyze(NewReader(&buf))
		if err != nil {
			return false
		}
		if a.Lifespans.Total() != int64(len(want)) {
			return false
		}
		var sum int64
		for _, v := range want {
			sum += v
		}
		return a.Lifespans.Sum() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
