package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"

	"javasim/internal/metrics"
	"javasim/internal/sim"
)

// Detailed trace analyses beyond the basic lifespan statistics — the kind
// of per-thread and time-windowed views the Elephant Tracks ecosystem's
// downstream tools computed from its traces.

// ThreadProfile aggregates one thread's allocation behavior.
type ThreadProfile struct {
	Thread     int32
	Allocs     int64
	AllocBytes int64
	// Lifespans is the lifespan distribution of objects this thread
	// allocated.
	Lifespans *metrics.Histogram
}

// ChurnWindow is allocation volume within one fixed time window.
type ChurnWindow struct {
	Start      sim.Time
	AllocBytes int64
	Deaths     int64
}

// DetailedAnalysis extends Analysis with per-thread and time-windowed
// views.
type DetailedAnalysis struct {
	Analysis
	// Threads holds per-thread profiles, sorted by thread ID.
	Threads []ThreadProfile
	// Churn is allocation volume per window, in time order.
	Churn []ChurnWindow
	// WindowSize is the churn bucketing granularity.
	WindowSize sim.Time
}

// ctxCheckInterval is how many streamed events the analysis loops let
// pass between context checks — frequent enough that cancellation of a
// huge trace analysis is prompt, rare enough to cost nothing.
const ctxCheckInterval = 8192

// AnalyzeDetailed streams a trace and computes the full analysis. The
// churn windows use the given granularity; zero selects 1ms.
func AnalyzeDetailed(r *Reader, window sim.Time) (*DetailedAnalysis, error) {
	return AnalyzeDetailedContext(context.Background(), r, window)
}

// AnalyzeDetailedContext is AnalyzeDetailed with cancellation: the
// streaming loop checks ctx every ctxCheckInterval events.
func AnalyzeDetailedContext(ctx context.Context, r *Reader, window sim.Time) (*DetailedAnalysis, error) {
	if window <= 0 {
		window = sim.Millisecond
	}
	a := &DetailedAnalysis{
		Analysis:   Analysis{Lifespans: metrics.NewHistogram("lifespan-bytes")},
		WindowSize: window,
	}
	type birth struct {
		clock  int64
		thread int32
	}
	births := make(map[uint32]birth)
	threads := make(map[int32]*ThreadProfile)
	churn := make(map[sim.Time]*ChurnWindow)

	threadOf := func(id int32) *ThreadProfile {
		tp := threads[id]
		if tp == nil {
			tp = &ThreadProfile{
				Thread:    id,
				Lifespans: metrics.NewHistogram(fmt.Sprintf("thread-%d-lifespans", id)),
			}
			threads[id] = tp
		}
		return tp
	}
	windowOf := func(tm sim.Time) *ChurnWindow {
		start := tm / window * window
		w := churn[start]
		if w == nil {
			w = &ChurnWindow{Start: start}
			churn[start] = w
		}
		return w
	}

	for {
		if a.Events%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		a.Events++
		switch ev.Kind {
		case Alloc:
			a.Allocs++
			births[ev.Object] = birth{clock: ev.Clock, thread: ev.Thread}
			tp := threadOf(ev.Thread)
			tp.Allocs++
			tp.AllocBytes += int64(ev.Size)
			windowOf(ev.Time).AllocBytes += int64(ev.Size)
		case Death:
			a.Deaths++
			b, ok := births[ev.Object]
			if !ok {
				return nil, fmt.Errorf("trace: death of unknown object %d", ev.Object)
			}
			delete(births, ev.Object)
			ls := ev.Clock - b.clock
			a.Lifespans.Add(ls)
			threadOf(b.thread).Lifespans.Add(ls)
			windowOf(ev.Time).Deaths++
		case GCStart:
			a.GCs++
		}
	}
	a.Leaked = int64(len(births))

	for _, tp := range threads {
		a.Threads = append(a.Threads, *tp)
	}
	sort.Slice(a.Threads, func(i, j int) bool { return a.Threads[i].Thread < a.Threads[j].Thread })
	for _, w := range churn {
		a.Churn = append(a.Churn, *w)
	}
	sort.Slice(a.Churn, func(i, j int) bool { return a.Churn[i].Start < a.Churn[j].Start })
	return a, nil
}
