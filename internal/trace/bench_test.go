package trace

import (
	"bytes"
	"io"
	"testing"

	"javasim/internal/sim"
)

// BenchmarkWriterEmit measures varint encoding throughput.
func BenchmarkWriterEmit(b *testing.B) {
	w := NewWriter(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Emit(Event{
			Kind: Alloc, Time: sim.Time(i) * 100, Thread: int32(i % 48),
			Object: uint32(i), Size: 128, Clock: int64(i) * 128,
		})
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReaderRead measures decoding throughput over a 100k-event
// trace.
func BenchmarkReaderRead(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const n = 100000
	for i := 0; i < n; i++ {
		w.Emit(Event{Kind: Alloc, Time: sim.Time(i), Object: uint32(i), Size: 64, Clock: int64(i) * 64})
	}
	w.Flush()
	data := buf.Bytes()
	b.SetBytes(int64(len(data)) / n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(data))
		for {
			if _, err := r.Read(); err != nil {
				break
			}
		}
	}
}
