package trace

import (
	"bytes"
	"testing"

	"javasim/internal/sim"
)

func detailedFixture(t *testing.T) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Thread 0 allocates two objects in window 0; thread 1 allocates one
	// in window 1. All die later.
	evs := []Event{
		{Kind: Alloc, Time: 100, Thread: 0, Object: 1, Size: 100, Clock: 100},
		{Kind: Alloc, Time: 200, Thread: 0, Object: 2, Size: 50, Clock: 150},
		{Kind: Death, Time: 300, Thread: 0, Object: 1, Clock: 150},
		{Kind: Alloc, Time: sim.Millisecond + 10, Thread: 1, Object: 3, Size: 200, Clock: 350},
		{Kind: Death, Time: sim.Millisecond + 20, Thread: 1, Object: 3, Clock: 350},
		{Kind: Death, Time: sim.Millisecond + 30, Thread: 0, Object: 2, Clock: 350},
		{Kind: GCStart, Time: sim.Millisecond + 40},
	}
	for _, ev := range evs {
		w.Emit(ev)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return NewReader(&buf)
}

func TestAnalyzeDetailedThreads(t *testing.T) {
	a, err := AnalyzeDetailed(detailedFixture(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Allocs != 3 || a.Deaths != 3 || a.GCs != 1 || a.Leaked != 0 {
		t.Errorf("totals %+v", a.Analysis)
	}
	if len(a.Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(a.Threads))
	}
	t0, t1 := a.Threads[0], a.Threads[1]
	if t0.Thread != 0 || t0.Allocs != 2 || t0.AllocBytes != 150 {
		t.Errorf("thread 0 profile %+v", t0)
	}
	if t1.Thread != 1 || t1.Allocs != 1 || t1.AllocBytes != 200 {
		t.Errorf("thread 1 profile %+v", t1)
	}
	// Thread 0's objects: obj1 lifespan 50, obj2 lifespan 200.
	if t0.Lifespans.Total() != 2 || t0.Lifespans.Sum() != 250 {
		t.Errorf("thread 0 lifespans n=%d sum=%d", t0.Lifespans.Total(), t0.Lifespans.Sum())
	}
	// Object 3 died instantly.
	if t1.Lifespans.Sum() != 0 {
		t.Errorf("thread 1 lifespan sum %d, want 0", t1.Lifespans.Sum())
	}
}

func TestAnalyzeDetailedChurn(t *testing.T) {
	a, err := AnalyzeDetailed(detailedFixture(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Churn) != 2 {
		t.Fatalf("churn windows = %d, want 2", len(a.Churn))
	}
	w0, w1 := a.Churn[0], a.Churn[1]
	if w0.Start != 0 || w0.AllocBytes != 150 || w0.Deaths != 1 {
		t.Errorf("window 0 = %+v", w0)
	}
	if w1.Start != sim.Millisecond || w1.AllocBytes != 200 || w1.Deaths != 2 {
		t.Errorf("window 1 = %+v", w1)
	}
}

func TestAnalyzeDetailedMatchesBasic(t *testing.T) {
	// The detailed analysis must agree with the basic one on shared
	// statistics.
	basic, err := Analyze(detailedFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	detailed, err := AnalyzeDetailed(detailedFixture(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Lifespans.Sum() != detailed.Lifespans.Sum() ||
		basic.Lifespans.Total() != detailed.Lifespans.Total() {
		t.Error("detailed and basic lifespan stats disagree")
	}
}

func TestAnalyzeDetailedUnknownDeath(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Death, Time: 1, Object: 42})
	w.Flush()
	if _, err := AnalyzeDetailed(NewReader(&buf), 0); err == nil {
		t.Error("unknown death accepted")
	}
}
