// Package trace produces and consumes object-event traces in the style of
// Elephant Tracks (Ricci, Guyer, Moss — ISMM 2013), the profiling tool the
// paper used to capture per-object allocation and death events (§II-B).
//
// A trace is an in-order stream of events, each stamped with the virtual
// time and the global allocation clock. The binary format is a varint
// delta encoding: compact enough to trace millions of objects, and
// self-describing enough for the tracetool command to inspect.
package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"javasim/internal/metrics"
	"javasim/internal/sim"
)

// Kind is the event type.
type Kind uint8

const (
	// Alloc records an object allocation; Size and Clock are set.
	Alloc Kind = iota
	// Death records an object death; Clock is the death clock.
	Death
	// GCStart marks the beginning of a collection; Arg is the gc.Kind.
	GCStart
	// GCEnd marks the end of a collection; Arg is the pause in ns.
	GCEnd
	// ThreadStart records a mutator thread starting.
	ThreadStart
	// ThreadEnd records a mutator thread finishing its workload.
	ThreadEnd
	numKinds
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Alloc:
		return "alloc"
	case Death:
		return "death"
	case GCStart:
		return "gc-start"
	case GCEnd:
		return "gc-end"
	case ThreadStart:
		return "thread-start"
	case ThreadEnd:
		return "thread-end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Kind   Kind
	Time   sim.Time
	Thread int32
	Object uint32
	Size   int32
	Clock  int64
	Arg    int64
}

// Sink receives events as the VM emits them.
type Sink interface {
	Emit(Event)
}

// MemorySink buffers events in memory, for tests and small runs.
type MemorySink struct {
	Events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(ev Event) { m.Events = append(m.Events, ev) }

// magic identifies the binary format; the trailing digit is the version.
var magic = []byte("JSTRACE1")

// Writer encodes events to a binary stream. Events must be written in
// nondecreasing Time order (the simulator guarantees this); times and
// clocks are delta-encoded against the previous event.
type Writer struct {
	w         *bufio.Writer
	buf       [binary.MaxVarintLen64 * 7]byte
	prevTime  sim.Time
	prevClock int64
	count     int64
	err       error
	wroteHdr  bool
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Count returns the number of events written so far.
func (w *Writer) Count() int64 { return w.count }

// Err returns the first write error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Emit implements Sink; encoding errors are sticky and reported by Err and
// Flush.
func (w *Writer) Emit(ev Event) {
	if w.err != nil {
		return
	}
	if !w.wroteHdr {
		if _, err := w.w.Write(magic); err != nil {
			w.err = err
			return
		}
		w.wroteHdr = true
	}
	if ev.Time < w.prevTime {
		w.err = fmt.Errorf("trace: event at %v before previous %v", ev.Time, w.prevTime)
		return
	}
	n := 0
	n += binary.PutUvarint(w.buf[n:], uint64(ev.Kind))
	n += binary.PutUvarint(w.buf[n:], uint64(ev.Time-w.prevTime))
	n += binary.PutVarint(w.buf[n:], int64(ev.Thread))
	n += binary.PutUvarint(w.buf[n:], uint64(ev.Object))
	n += binary.PutVarint(w.buf[n:], int64(ev.Size))
	n += binary.PutVarint(w.buf[n:], ev.Clock-w.prevClock)
	n += binary.PutVarint(w.buf[n:], ev.Arg)
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		w.err = err
		return
	}
	w.prevTime = ev.Time
	w.prevClock = ev.Clock
	w.count++
}

// Flush drains buffered output and returns the first error seen.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes a binary trace stream.
type Reader struct {
	r         *bufio.Reader
	prevTime  sim.Time
	prevClock int64
	readHdr   bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// ErrBadMagic reports a stream that is not a javasim trace.
var ErrBadMagic = errors.New("trace: bad magic — not a javasim trace")

// Read returns the next event, or io.EOF at a clean end of stream.
func (r *Reader) Read() (Event, error) {
	if !r.readHdr {
		hdr := make([]byte, len(magic))
		if _, err := io.ReadFull(r.r, hdr); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return Event{}, ErrBadMagic
			}
			return Event{}, err
		}
		for i := range hdr {
			if hdr[i] != magic[i] {
				return Event{}, ErrBadMagic
			}
		}
		r.readHdr = true
	}
	kind, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, err // io.EOF here is a clean end
	}
	if kind >= uint64(numKinds) {
		return Event{}, fmt.Errorf("trace: invalid event kind %d", kind)
	}
	dt, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	thread, err := binary.ReadVarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	object, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	size, err := binary.ReadVarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	dClock, err := binary.ReadVarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	arg, err := binary.ReadVarint(r.r)
	if err != nil {
		return Event{}, corrupt(err)
	}
	r.prevTime += sim.Time(dt)
	r.prevClock += dClock
	return Event{
		Kind:   Kind(kind),
		Time:   r.prevTime,
		Thread: int32(thread),
		Object: uint32(object),
		Size:   int32(size),
		Clock:  r.prevClock,
		Arg:    arg,
	}, nil
}

// corrupt converts a mid-record EOF into a corruption error so that callers
// can distinguish truncation from a clean end of stream.
func corrupt(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

// Analysis summarizes a trace.
type Analysis struct {
	Events    int64
	Allocs    int64
	Deaths    int64
	GCs       int64
	Lifespans *metrics.Histogram
	// Leaked counts objects with an Alloc but no Death event.
	Leaked int64
}

// Analyze streams a trace and computes lifespan statistics by pairing each
// object's Alloc and Death clocks — exactly how the paper's Figure 1c/1d
// distributions are derived from Elephant Tracks output.
func Analyze(r *Reader) (*Analysis, error) {
	return AnalyzeContext(context.Background(), r)
}

// AnalyzeContext is Analyze with cancellation: the streaming loop checks
// ctx every ctxCheckInterval events, so analyses of arbitrarily large
// trace files abort promptly.
func AnalyzeContext(ctx context.Context, r *Reader) (*Analysis, error) {
	a := &Analysis{Lifespans: metrics.NewHistogram("lifespan-bytes")}
	births := make(map[uint32]int64)
	for {
		if a.Events%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ev, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		a.Events++
		switch ev.Kind {
		case Alloc:
			a.Allocs++
			births[ev.Object] = ev.Clock
		case Death:
			a.Deaths++
			birth, ok := births[ev.Object]
			if !ok {
				return nil, fmt.Errorf("trace: death of unknown object %d", ev.Object)
			}
			delete(births, ev.Object)
			a.Lifespans.Add(ev.Clock - birth)
		case GCStart:
			a.GCs++
		}
	}
	a.Leaked = int64(len(births))
	return a, nil
}
