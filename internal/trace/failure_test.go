package trace

import (
	"bytes"
	"errors"
	"testing"

	"javasim/internal/sim"
)

// failingWriter errors after n bytes, injecting mid-stream I/O failure.
type failingWriter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		ok := f.n - f.written
		if ok < 0 {
			ok = 0
		}
		f.written += ok
		return ok, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func TestWriterIOFailureSticky(t *testing.T) {
	fw := &failingWriter{n: 100}
	w := NewWriter(fw)
	// The bufio layer delays the error; Flush must surface it.
	for i := 0; i < 100000; i++ {
		w.Emit(Event{Kind: Alloc, Time: sim.Time(i), Object: uint32(i), Size: 64, Clock: int64(i) * 64})
	}
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Errorf("Flush error = %v, want disk full", err)
	}
	// Further emits are no-ops, not panics.
	w.Emit(Event{Kind: Death, Time: 1 << 40})
	if err := w.Flush(); !errors.Is(err, errDiskFull) {
		t.Error("sticky error lost")
	}
}

func TestReaderGarbageAfterValidPrefix(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Alloc, Time: 1, Object: 1, Size: 10, Clock: 10})
	w.Flush()
	// Append garbage: an invalid kind varint (200 > numKinds).
	buf.WriteByte(200)
	buf.WriteByte(1)
	r := NewReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatalf("valid prefix failed: %v", err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestAnalyzeCorruptStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Emit(Event{Kind: Alloc, Time: 1, Object: 1, Size: 10, Clock: 10})
	w.Flush()
	data := buf.Bytes()
	if _, err := Analyze(NewReader(bytes.NewReader(data[:len(data)-1]))); err == nil {
		t.Error("Analyze accepted truncated stream")
	}
}
