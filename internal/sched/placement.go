package sched

import (
	"fmt"

	"javasim/internal/registry"
)

// Where a waking thread's segment runs is a Placement: the discipline that
// picks the run queue for every enqueue. The seed behavior — prefer the
// thread's last core when free, otherwise the least-loaded queue with a
// home-socket tie-break — is the "affinity" placement; "round-robin" and
// "least-loaded" trade cache/NUMA locality for spread. Placements may hold
// per-scheduler state (the round-robin cursor), so each Scheduler builds
// its own instance through NewPlacement.

// Registry names of the built-in placements.
const (
	// PlacementAffinity prefers the thread's last core when idle, else the
	// least-loaded queue, breaking ties toward the home socket — the seed
	// behavior.
	PlacementAffinity = "affinity"
	// PlacementRoundRobin rotates enqueues across cores regardless of load
	// or locality.
	PlacementRoundRobin = "round-robin"
	// PlacementLeastLoaded always picks the shortest queue (ties to the
	// lowest index), ignoring cache affinity and NUMA homes.
	PlacementLeastLoaded = "least-loaded"
)

// Placement chooses the run queue for a waking thread. PickCore returns
// an index into the scheduler's core slice (not a machine core ID).
// Implementations run inside the single-threaded simulation and must be
// deterministic.
type Placement interface {
	// Name returns the discipline's canonical name (for the built-ins,
	// their registry name). A variant registered under a custom key still
	// reports its family name here — the selected key travels in the
	// config string and vm.Result.Placement.
	Name() string
	// PickCore returns the run-queue index thread t joins.
	PickCore(sc *Scheduler, t *Thread) int
}

var placementRegistry = registry.New[Placement]("placement")

func init() {
	placementRegistry.MustRegister(PlacementAffinity, func() Placement { return affinityPlacement{} })
	placementRegistry.MustRegister(PlacementRoundRobin, func() Placement { return &roundRobinPlacement{} })
	placementRegistry.MustRegister(PlacementLeastLoaded, func() Placement { return leastLoadedPlacement{} })
}

// RegisterPlacement adds a placement factory to the registry under name.
// The factory must return a fresh instance on every call — placements may
// hold per-scheduler state. Names are unique; registering an existing
// name (including the built-ins) is an error.
func RegisterPlacement(name string, factory func() Placement) error {
	if err := placementRegistry.Register(name, factory); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	return nil
}

// NewPlacement builds a fresh instance of the named placement. The empty
// name selects the default affinity discipline.
func NewPlacement(name string) (Placement, error) {
	if name == "" {
		name = PlacementAffinity
	}
	p, err := placementRegistry.New(name)
	if err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	return p, nil
}

// KnownPlacement reports whether name resolves in the registry (the empty
// name resolves to affinity).
func KnownPlacement(name string) bool {
	return name == "" || placementRegistry.Known(name)
}

// ValidatePlacement returns the canonical unknown-name error for a
// placement name that does not resolve, or nil — the one error every
// configuration layer (plans, vm config, CLI) reports, with the same
// prefix NewPlacement uses.
func ValidatePlacement(name string) error {
	if KnownPlacement(name) {
		return nil
	}
	_, err := NewPlacement(name)
	return err
}

// PlacementNames returns every registered placement name in registration
// order: the three built-ins, then user registrations.
func PlacementNames() []string { return placementRegistry.Names() }

// --- Built-in placements -----------------------------------------------

type affinityPlacement struct{}

func (affinityPlacement) Name() string { return PlacementAffinity }

// PickCore prefers the thread's last core when that core is free,
// otherwise the least-loaded core, breaking ties toward the thread's home
// socket, then (on CMT machines) toward the least-crowded pipeline, and
// finally the lowest index (determinism). The pipeline tie-break spreads
// sibling hardware threads across distinct issue pipelines before
// doubling up strands.
func (affinityPlacement) PickCore(sc *Scheduler, t *Thread) int {
	if t.core >= 0 {
		if idx, ok := sc.coreIndex(t.core); ok {
			c := &sc.cores[idx]
			if c.current == nil && len(c.queue) == 0 && sc.eligible(t) {
				return idx
			}
		}
	}
	cmt := sc.CMT()
	best, bestLoad, bestAffine, bestPipe := -1, int(^uint(0)>>1), false, 0
	for i := range sc.cores {
		load := sc.CoreLoad(i)
		affine := t.HomeSocket() >= 0 && sc.SocketOfCore(i) == t.HomeSocket()
		pipe := 0
		if cmt {
			pipe = sc.PipelineLoad(i)
		}
		better := load < bestLoad ||
			(load == bestLoad && affine && !bestAffine) ||
			(cmt && load == bestLoad && affine == bestAffine && pipe < bestPipe)
		if better {
			best, bestLoad, bestAffine, bestPipe = i, load, affine, pipe
		}
	}
	return best
}

type roundRobinPlacement struct {
	next int
}

func (*roundRobinPlacement) Name() string { return PlacementRoundRobin }

// PickCore rotates across run queues, blind to load, locality, and the
// thread's history.
func (p *roundRobinPlacement) PickCore(sc *Scheduler, t *Thread) int {
	idx := p.next % len(sc.cores)
	p.next++
	return idx
}

type leastLoadedPlacement struct{}

func (leastLoadedPlacement) Name() string { return PlacementLeastLoaded }

// PickCore returns the core with the fewest resident threads, breaking
// ties (on CMT machines) toward the least-crowded pipeline and then the
// lowest index.
func (leastLoadedPlacement) PickCore(sc *Scheduler, t *Thread) int {
	cmt := sc.CMT()
	best, bestLoad, bestPipe := 0, int(^uint(0)>>1), 0
	for i := range sc.cores {
		load := sc.CoreLoad(i)
		pipe := 0
		if cmt {
			pipe = sc.PipelineLoad(i)
		}
		if load < bestLoad || (cmt && load == bestLoad && pipe < bestPipe) {
			best, bestLoad, bestPipe = i, load, pipe
		}
	}
	return best
}
