package sched

import (
	"testing"
	"testing/quick"

	"javasim/internal/machine"
	"javasim/internal/sim"
)

func singleCoreMachine() *machine.Machine {
	return machine.MustNew(machine.Config{
		Sockets: 1, CoresPerSocket: 1, MemoryPerNode: 1 << 30,
		LocalAccess: 65, RemoteAccessPerHop: 45,
	})
}

func multiCoreMachine(cores int) *machine.Machine {
	return machine.MustNew(machine.Config{
		Sockets: 1, CoresPerSocket: cores, MemoryPerNode: 1 << 30,
		LocalAccess: 65, RemoteAccessPerHop: 45,
	})
}

func TestSingleSegmentCompletes(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("worker", 0)
	var doneAt sim.Time = -1
	sc.Submit(th, 100*sim.Microsecond, func() { doneAt = s.Now() })
	s.Run()
	if doneAt != 100*sim.Microsecond {
		t.Errorf("done at %v, want 100µs", doneAt)
	}
	if th.State() != Idle {
		t.Errorf("state = %v, want idle", th.State())
	}
	if th.CPUTime() != 100*sim.Microsecond {
		t.Errorf("cpu = %v, want 100µs", th.CPUTime())
	}
}

func TestZeroDurationSegment(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("worker", 0)
	called := false
	sc.Submit(th, 0, func() { called = true })
	s.Run()
	if !called {
		t.Error("zero-duration segment never completed")
	}
}

func TestContinuationKeepsCore(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("worker", 0)
	segments := 0
	var step func()
	step = func() {
		segments++
		if segments < 5 {
			sc.Submit(th, 10*sim.Microsecond, step)
		}
	}
	sc.Submit(th, 10*sim.Microsecond, step)
	s.Run()
	if segments != 5 {
		t.Fatalf("segments = %d, want 5", segments)
	}
	if th.Dispatches() != 1 {
		t.Errorf("dispatches = %d, want 1 (continuations keep the core)", th.Dispatches())
	}
	if s.Now() != 50*sim.Microsecond {
		t.Errorf("finished at %v, want 50µs", s.Now())
	}
}

func TestTwoThreadsShareOneCore(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{Quantum: sim.Millisecond})
	a := sc.NewThread("a", 0)
	b := sc.NewThread("b", 0)
	var aDone, bDone sim.Time
	sc.Submit(a, 3*sim.Millisecond, func() { aDone = s.Now() })
	sc.Submit(b, 3*sim.Millisecond, func() { bDone = s.Now() })
	s.Run()
	// Total work is 6ms on one core; the later finisher ends at 6ms.
	last := aDone
	if bDone > last {
		last = bDone
	}
	if last != 6*sim.Millisecond {
		t.Errorf("last completion %v, want 6ms", last)
	}
	// Fair sharing: both should finish within one quantum of each other.
	diff := aDone - bDone
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Millisecond {
		t.Errorf("unfair completion spread %v (a=%v b=%v)", diff, aDone, bDone)
	}
	if a.ReadyWait() == 0 && b.ReadyWait() == 0 {
		t.Error("no ready wait recorded under 2x oversubscription")
	}
	if a.Preemptions()+b.Preemptions() == 0 {
		t.Error("no preemptions under contention")
	}
}

func TestWeightedFairness(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{Quantum: 100 * sim.Microsecond})
	heavy := sc.NewThread("heavy", DefaultWeight)
	light := sc.NewThread("light", DefaultWeight/4)
	// Both want effectively unlimited work; run for a fixed window and
	// compare shares.
	keepRunning := func(th *Thread) func() {
		var f func()
		f = func() { sc.Submit(th, 100*sim.Microsecond, f) }
		return f
	}
	sc.Submit(heavy, 100*sim.Microsecond, keepRunning(heavy))
	sc.Submit(light, 100*sim.Microsecond, keepRunning(light))
	s.RunUntil(50 * sim.Millisecond)
	ratio := float64(heavy.CPUTime()) / float64(light.CPUTime())
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("cpu ratio heavy/light = %.2f, want ~4", ratio)
	}
}

func TestMultiCoreParallelism(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(4), Config{})
	var finished int
	for i := 0; i < 4; i++ {
		th := sc.NewThread("w", 0)
		sc.Submit(th, sim.Millisecond, func() { finished++ })
	}
	s.Run()
	if finished != 4 {
		t.Fatalf("finished = %d, want 4", finished)
	}
	if s.Now() != sim.Millisecond {
		t.Errorf("4 threads on 4 cores took %v, want 1ms", s.Now())
	}
}

func TestWorkStealing(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{Steal: true})
	// Three threads submitted at t=0: two dispatch, one queues. When a
	// core frees, the queued thread must run there even if it was queued
	// on the other core.
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		th := sc.NewThread(n, 0)
		sc.Submit(th, sim.Millisecond, func() { order = append(order, n) })
	}
	s.Run()
	if len(order) != 3 {
		t.Fatalf("completed %d, want 3", len(order))
	}
	if s.Now() != 2*sim.Millisecond {
		t.Errorf("makespan %v, want 2ms", s.Now())
	}
}

func TestBlockUnblock(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("w", 0)
	var resumed sim.Time
	sc.Submit(th, 10*sim.Microsecond, func() {
		sc.Block(th) // park at end of segment, inside own callback
	})
	// An external event unblocks and resubmits at t=1ms.
	s.At(sim.Millisecond, func() {
		sc.Unblock(th)
		sc.Submit(th, 10*sim.Microsecond, func() { resumed = s.Now() })
	})
	s.Run()
	if th.BlockedTime() != sim.Millisecond-10*sim.Microsecond {
		t.Errorf("blocked time %v, want 990µs", th.BlockedTime())
	}
	if resumed != sim.Millisecond+10*sim.Microsecond {
		t.Errorf("resumed work finished at %v", resumed)
	}
}

func TestTerminate(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("w", 0)
	sc.Submit(th, 10, func() { sc.Terminate(th) })
	s.Run()
	if th.State() != Terminated {
		t.Errorf("state = %v, want terminated", th.State())
	}
}

func TestSubmitOnTerminatedPanics(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("w", 0)
	sc.Submit(th, 10, func() { sc.Terminate(th) })
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("Submit on terminated thread did not panic")
		}
	}()
	sc.Submit(th, 10, func() {})
}

func TestDoubleSubmitPanics(t *testing.T) {
	s := sim.New()
	sc := New(s, singleCoreMachine(), Config{})
	th := sc.NewThread("w", 0)
	sc.Submit(th, 100, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("double Submit did not panic")
		}
	}()
	sc.Submit(th, 100, func() {})
}

func TestMigrationAccounting(t *testing.T) {
	s := sim.New()
	m := machine.MustNew(machine.Config{
		Sockets: 2, CoresPerSocket: 1, MemoryPerNode: 1 << 30,
		LocalAccess: 65, RemoteAccessPerHop: 45, MigrationCost: 10 * sim.Microsecond,
	})
	sc := New(s, m, Config{Steal: true, Quantum: 100 * sim.Microsecond})
	hog := sc.NewThread("hog", 0)
	mover := sc.NewThread("mover", 0)
	// mover runs on core 0 first (establishing home and affinity). After
	// it goes idle, the hog occupies core 0 (first free core), so mover's
	// next segment must land on core 1 — a migration.
	sc.Submit(mover, 10*sim.Microsecond, func() {})
	s.At(20*sim.Microsecond, func() {
		sc.Submit(hog, 10*sim.Millisecond, func() {})
	})
	s.At(50*sim.Microsecond, func() {
		sc.Submit(mover, 10*sim.Microsecond, func() {})
	})
	s.Run()
	if hog.Core() != 0 {
		t.Fatalf("hog ran on core %d, want 0 (test setup)", hog.Core())
	}
	if mover.Migrations() != 1 {
		t.Errorf("migrations = %d, want 1", mover.Migrations())
	}
	// The migrated slice pays the migration cost, so CPU time exceeds the
	// 20µs of requested work.
	if mover.CPUTime() <= 20*sim.Microsecond {
		t.Errorf("cpu = %v, want > 20µs (migration cost)", mover.CPUTime())
	}
}

func TestNUMAPenaltySlowsRemotePlacement(t *testing.T) {
	s := sim.New()
	m := machine.MustNew(machine.Config{
		Sockets: 2, CoresPerSocket: 1, MemoryPerNode: 1 << 30,
		LocalAccess: 50, RemoteAccessPerHop: 50, // remote = 2x local
	})
	sc := New(s, m, Config{Steal: true, Quantum: 10 * sim.Millisecond})
	hog := sc.NewThread("hog", 0)
	th := sc.NewThread("numa", 0)
	th.MemoryIntensity = 1.0
	var finished sim.Time
	// Establish home on core 0 (socket 0), then force the next segment to
	// core 1 (socket 1) by hogging core 0 while th is idle.
	sc.Submit(th, 10*sim.Microsecond, func() {})
	s.At(15*sim.Microsecond, func() {
		sc.Submit(hog, 100*sim.Millisecond, func() {})
	})
	s.At(20*sim.Microsecond, func() {
		sc.Submit(th, 100*sim.Microsecond, func() { finished = s.Now() })
	})
	s.Run()
	if hog.Core() != 0 {
		t.Fatalf("hog ran on core %d, want 0 (test setup)", hog.Core())
	}
	// Fully memory-bound on a 2x-remote node: the 100µs segment takes
	// 200µs of wall time, finishing at 20µs + 200µs.
	if finished != 220*sim.Microsecond {
		t.Errorf("remote segment finished at %v, want 220µs", finished)
	}
}

func TestPhaseBias(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{
		Bias: PhaseBias{Groups: 2, PhaseLength: sim.Millisecond},
	})
	g0 := sc.NewThread("g0", 0)
	g0.Group = 0
	g1 := sc.NewThread("g1", 0)
	g1.Group = 1
	var g0Done, g1Done sim.Time
	sc.Submit(g0, 100*sim.Microsecond, func() { g0Done = s.Now() })
	sc.Submit(g1, 100*sim.Microsecond, func() { g1Done = s.Now() })
	s.Run()
	// Group 0 is active initially; group 1 waits for the phase rotation at
	// 1ms even though a core sits idle.
	if g0Done != 100*sim.Microsecond {
		t.Errorf("g0 done at %v, want 100µs", g0Done)
	}
	if g1Done != sim.Millisecond+100*sim.Microsecond {
		t.Errorf("g1 done at %v, want 1.1ms", g1Done)
	}
}

func TestPhaseBiasExemptsNoGroup(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{
		Bias: PhaseBias{Groups: 2, PhaseLength: sim.Millisecond},
	})
	helper := sc.NewThread("helper", 0) // Group stays NoGroup
	var done sim.Time
	sc.Submit(helper, 50*sim.Microsecond, func() { done = s.Now() })
	s.Run()
	if done != 50*sim.Microsecond {
		t.Errorf("ungrouped thread gated by phase bias: done at %v", done)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{})
	th := sc.NewThread("w", 0)
	sc.Submit(th, sim.Millisecond, func() {})
	s.Run()
	// One of two cores busy for the whole run: utilization 0.5.
	u := sc.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

// Property: no thread is ever lost — for arbitrary segment counts and
// durations across a small thread pool, every submitted segment completes
// and total CPU time equals total requested time (single-socket machine,
// no migration cost, so effective == base).
func TestConservationProperty(t *testing.T) {
	f := func(plan []uint8) bool {
		if len(plan) == 0 {
			return true
		}
		if len(plan) > 24 {
			plan = plan[:24]
		}
		s := sim.New()
		sc := New(s, multiCoreMachine(3), Config{Steal: true, Quantum: 50 * sim.Microsecond})
		const nThreads = 4
		threads := make([]*Thread, nThreads)
		remaining := make([][]sim.Time, nThreads)
		for i := range threads {
			threads[i] = sc.NewThread("w", 0)
		}
		var total sim.Time
		for i, p := range plan {
			d := sim.Time(p%100+1) * sim.Microsecond
			remaining[i%nThreads] = append(remaining[i%nThreads], d)
			total += d
		}
		completed := 0
		var run func(i int)
		run = func(i int) {
			if len(remaining[i]) == 0 {
				return
			}
			d := remaining[i][0]
			remaining[i] = remaining[i][1:]
			sc.Submit(threads[i], d, func() {
				completed++
				run(i)
			})
		}
		expect := 0
		for i := 0; i < nThreads; i++ {
			expect += len(remaining[i])
			run(i)
		}
		s.Run()
		if completed != expect {
			return false
		}
		var cpu sim.Time
		for _, th := range threads {
			cpu += th.CPUTime()
		}
		return cpu == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCMTDispatchRespectsEnabledUnits is the hardware-thread safety
// property: after EnableCores(n) on a CMT machine, every dispatch lands
// on one of the first n units — never a disabled strand, never an index
// past the machine. Checked inside running segment callbacks, where the
// thread is live on its core.
func TestCMTDispatchRespectsEnabledUnits(t *testing.T) {
	f := func(nSeed, thSeed uint8) bool {
		m := machine.MustNew(machine.Config{
			Sockets: 2, CoresPerSocket: 4, ThreadsPerCore: 4, IssueWidth: 2,
			MemoryPerNode: 1 << 30, LocalAccess: 65, RemoteAccessPerHop: 45,
		})
		total := m.NumCores() // 32 hardware threads
		n := 1 + int(nSeed)%total
		if err := m.EnableCores(n); err != nil {
			t.Fatalf("EnableCores(%d): %v", n, err)
		}
		s := sim.New()
		sc := New(s, m, Config{Quantum: 100 * sim.Microsecond, Steal: true})
		nThreads := 1 + int(thSeed)%40
		ok := true
		for i := 0; i < nThreads; i++ {
			th := sc.NewThread("w", 0)
			segs := 0
			var step func()
			step = func() {
				if c := th.Core(); c < 0 || c >= n {
					ok = false
				}
				if segs++; segs < 5 {
					sc.Submit(th, 30*sim.Microsecond, step)
				}
			}
			sc.Submit(th, 30*sim.Microsecond, step)
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
