package sched

import (
	"testing"

	"javasim/internal/sim"
)

func TestPlacementRegistry(t *testing.T) {
	names := PlacementNames()
	want := []string{PlacementAffinity, PlacementRoundRobin, PlacementLeastLoaded}
	if len(names) < len(want) {
		t.Fatalf("registry names = %v, want at least %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("names[%d] = %q, want %q", i, names[i], w)
		}
	}
	if err := RegisterPlacement(PlacementAffinity, func() Placement { return affinityPlacement{} }); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := RegisterPlacement("", func() Placement { return affinityPlacement{} }); err == nil {
		t.Error("empty-name registration succeeded")
	}
	if _, err := NewPlacement("no-such-placement"); err == nil {
		t.Error("unknown placement resolved")
	}
	if p, err := NewPlacement(""); err != nil || p.Name() != PlacementAffinity {
		t.Errorf("NewPlacement(\"\") = %v, %v; want affinity", p, err)
	}
	if !KnownPlacement("") || !KnownPlacement(PlacementRoundRobin) || KnownPlacement("nope") {
		t.Error("KnownPlacement verdicts wrong")
	}
}

func TestUnknownPlacementPanicsAtConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown placement did not panic")
		}
	}()
	New(sim.New(), multiCoreMachine(2), Config{Placement: "no-such-placement"})
}

// TestRoundRobinPlacementSpreadsThreads checks that simultaneous wakeups
// land on distinct cores in rotation, where affinity would also spread
// them but by load, and that the scheduler reports its placement name.
func TestRoundRobinPlacementSpreadsThreads(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(4), Config{Placement: PlacementRoundRobin})
	if sc.PlacementName() != PlacementRoundRobin {
		t.Fatalf("placement = %q", sc.PlacementName())
	}
	var cores []int
	for i := 0; i < 4; i++ {
		th := sc.NewThread("w", 0)
		sc.Submit(th, sim.Microsecond, func() { cores = append(cores, th.Core()) })
	}
	s.Run()
	seen := map[int]bool{}
	for _, c := range cores {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin placed 4 threads on %d distinct cores (%v), want 4", len(seen), cores)
	}
}

// TestLeastLoadedPlacementIgnoresAffinity pins load on core 0 and checks
// that a rewaking thread whose last core is the loaded one moves to an
// empty queue instead of waiting behind it.
func TestLeastLoadedPlacementIgnoresAffinity(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{Placement: PlacementLeastLoaded})
	hog := sc.NewThread("hog", 0)
	worker := sc.NewThread("worker", 0)
	// Both start on core 0 (least loaded picks index order: hog -> 0,
	// worker -> 1). Run the worker once, then resubmit it while the hog
	// still occupies its core.
	sc.Submit(hog, 50*sim.Microsecond, func() {})
	var workerCores []int
	sc.Submit(worker, sim.Microsecond, func() {
		workerCores = append(workerCores, worker.Core())
		sc.Submit(worker, sim.Microsecond, func() {
			workerCores = append(workerCores, worker.Core())
		})
	})
	s.Run()
	if len(workerCores) != 2 {
		t.Fatalf("worker ran %d segments, want 2", len(workerCores))
	}
	if workerCores[0] != workerCores[1] {
		t.Errorf("least-loaded moved the worker from core %d to %d with no load delta",
			workerCores[0], workerCores[1])
	}
}

// TestAffinityPlacementKeepsLastCore re-wakes a thread on an otherwise
// idle machine and checks it returns to the core it warmed.
func TestAffinityPlacementKeepsLastCore(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(4), Config{})
	th := sc.NewThread("w", 0)
	var first, second int
	sc.Submit(th, sim.Microsecond, func() {
		first = th.Core()
		sc.Submit(th, sim.Microsecond, func() { second = th.Core() })
	})
	s.Run()
	if first != second {
		t.Errorf("affinity migrated an idle rewake: %d -> %d", first, second)
	}
	if th.Migrations() != 0 {
		t.Errorf("migrations = %d, want 0", th.Migrations())
	}
}
