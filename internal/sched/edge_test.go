package sched

import (
	"testing"

	"javasim/internal/sim"
)

// TestNoStealIsolation: with stealing disabled, a thread queued behind a
// busy core stays there even while another core idles.
func TestNoStealIsolation(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{Steal: false})
	// Occupy both cores, then queue a third thread; it lands on the
	// least-loaded queue and must wait for that core specifically.
	a := sc.NewThread("a", 0)
	b := sc.NewThread("b", 0)
	c := sc.NewThread("c", 0)
	var cDone sim.Time
	sc.Submit(a, 10*sim.Millisecond, func() {})
	sc.Submit(b, 1*sim.Millisecond, func() {})
	sc.Submit(c, 1*sim.Millisecond, func() { cDone = s.Now() })
	s.Run()
	// c queued behind one of the busy cores; with both equally loaded it
	// picks the lower index (a's core, 10ms) — without stealing it cannot
	// migrate to b's core when b finishes at 1ms.
	if cDone != 11*sim.Millisecond && cDone != 2*sim.Millisecond {
		t.Errorf("c done at %v, want 11ms (stuck) or 2ms (queued on b)", cDone)
	}
	// The same scenario with stealing enabled always finishes by 2ms.
	s2 := sim.New()
	sc2 := New(s2, multiCoreMachine(2), Config{Steal: true})
	a2 := sc2.NewThread("a", 0)
	b2 := sc2.NewThread("b", 0)
	c2 := sc2.NewThread("c", 0)
	var c2Done sim.Time
	sc2.Submit(a2, 10*sim.Millisecond, func() {})
	sc2.Submit(b2, 1*sim.Millisecond, func() {})
	sc2.Submit(c2, 1*sim.Millisecond, func() { c2Done = s2.Now() })
	s2.Run()
	if c2Done != 2*sim.Millisecond {
		t.Errorf("with stealing, c done at %v, want 2ms", c2Done)
	}
}

// TestGateOverride: a gated thread becomes schedulable while the override
// predicate holds, and is gated again when it clears.
func TestGateOverride(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(1), Config{
		Bias: PhaseBias{Groups: 2, PhaseLength: 10 * sim.Millisecond},
	})
	override := false
	sc.SetGateOverride(func() bool { return override })
	gated := sc.NewThread("gated", 0)
	gated.Group = 1 // inactive at t=0
	var done sim.Time
	sc.Submit(gated, 100*sim.Microsecond, func() { done = s.Now() })
	// Without the override the thread would wait until the 10ms phase
	// boundary. Flip the override at 1ms and kick.
	s.At(sim.Millisecond, func() {
		override = true
		sc.Kick()
	})
	s.RunUntil(5 * sim.Millisecond)
	if done != sim.Millisecond+100*sim.Microsecond {
		t.Errorf("gated thread done at %v, want 1.1ms (override)", done)
	}
}

// TestKickIdempotent: kicking with nothing to do is harmless.
func TestKickIdempotent(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(2), Config{})
	sc.Kick()
	sc.Kick()
	th := sc.NewThread("w", 0)
	ran := false
	sc.Submit(th, 10, func() { ran = true })
	sc.Kick()
	s.Run()
	if !ran {
		t.Error("thread lost after kicks")
	}
}

// TestBlockedTimeAccounting: blocked and ready waits accumulate into
// separate buckets.
func TestBlockedTimeAccounting(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(1), Config{})
	th := sc.NewThread("w", 0)
	sc.Submit(th, 100, func() { sc.Block(th) })
	s.At(10000, func() {
		sc.Unblock(th)
		sc.Submit(th, 100, func() {})
	})
	s.Run()
	if th.BlockedTime() != 10000-100 {
		t.Errorf("blocked time %v, want 9900", th.BlockedTime())
	}
	if th.CPUTime() != 200 {
		t.Errorf("cpu %v, want 200", th.CPUTime())
	}
}

// TestPhaseWakeRearm: a gated thread on an otherwise idle system is
// re-dispatched at each phase boundary without leaking wakeup events.
func TestPhaseWakeRearm(t *testing.T) {
	s := sim.New()
	sc := New(s, multiCoreMachine(1), Config{
		Bias: PhaseBias{Groups: 3, PhaseLength: sim.Millisecond},
	})
	th := sc.NewThread("w", 0)
	th.Group = 2 // active during [2ms, 3ms)
	var done sim.Time
	sc.Submit(th, 50*sim.Microsecond, func() { done = s.Now() })
	s.Run()
	if done != 2*sim.Millisecond+50*sim.Microsecond {
		t.Errorf("done at %v, want 2.05ms (third phase)", done)
	}
}
