package sched

import (
	"testing"

	"javasim/internal/machine"
	"javasim/internal/sim"
)

// BenchmarkDispatchCycle measures the submit→dispatch→complete round trip
// for short segments across a contended 8-core machine. The resubmit
// closures are pre-bound once per thread — mirroring how the VM drives
// the scheduler — so the cycle itself must report zero allocs/op.
func BenchmarkDispatchCycle(b *testing.B) {
	s := sim.New()
	sc := New(s, multiCoreMachine(8), Config{Steal: true})
	const nThreads = 16
	threads := make([]*Thread, nThreads)
	for i := range threads {
		threads[i] = sc.NewThread("w", 0)
	}
	remaining := b.N
	var spawn func(i int)
	conts := make([]func(), nThreads)
	for i := range conts {
		i := i
		conts[i] = func() { spawn(i) }
	}
	spawn = func(i int) {
		if remaining == 0 {
			return
		}
		remaining--
		sc.Submit(threads[i], 10*sim.Microsecond, conts[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range threads {
		spawn(i)
	}
	s.Run()
}

// BenchmarkSchedContinuation measures the continuation fast path: a
// single thread resubmitting from its own done callback with a pre-bound
// continuation, the shape of the VM's op-to-op inner loop. With pooled
// slice events and no closure churn this must report zero allocs/op.
func BenchmarkSchedContinuation(b *testing.B) {
	s := sim.New()
	sc := New(s, multiCoreMachine(1), Config{})
	th := sc.NewThread("w", 0)
	remaining := b.N
	var cont func()
	cont = func() {
		if remaining == 0 {
			return
		}
		remaining--
		sc.Submit(th, 2*sim.Microsecond, cont)
	}
	b.ReportAllocs()
	b.ResetTimer()
	cont()
	s.Run()
}

// BenchmarkNUMAPenaltyPath measures dispatch with the remote-placement
// arithmetic active.
func BenchmarkNUMAPenaltyPath(b *testing.B) {
	s := sim.New()
	m := machine.MustNew(machine.Opteron6168())
	sc := New(s, m, Config{Steal: true})
	th := sc.NewThread("w", 0)
	th.MemoryIntensity = 0.8
	remaining := b.N
	var loop func()
	loop = func() {
		if remaining == 0 {
			return
		}
		remaining--
		sc.Submit(th, 5*sim.Microsecond, loop)
	}
	b.ResetTimer()
	loop()
	s.Run()
}
